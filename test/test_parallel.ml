(* The sft.parallel pool and the serial/parallel bit-identity guarantees of
   the fault campaign, the PDF campaign and the resynthesis engine. *)

open Helpers

(* --- pool primitives ------------------------------------------------------- *)

let test_pool_map_ordered () =
  Pool.with_pool ~domains:4 (fun pool ->
      check int_ "four domains" 4 (Pool.domains pool);
      let input = Array.init 1000 (fun i -> i) in
      let got = Pool.map pool (fun x -> x * x) input in
      check bool_ "ordered map" true (got = Array.map (fun x -> x * x) input);
      (* reuse across submissions, odd sizes, chunk boundaries *)
      let got = Pool.map pool ~chunk:7 (fun x -> x - 1) (Array.init 13 (fun i -> i)) in
      check bool_ "second submission" true (got = Array.init 13 (fun i -> i - 1));
      check bool_ "empty input" true (Pool.map pool (fun x -> x) [||] = [||]));
  Pool.with_pool ~domains:1 (fun pool ->
      check int_ "serial pool" 1 (Pool.domains pool);
      let got = Pool.map pool (fun x -> x + 1) [| 1; 2; 3 |] in
      check bool_ "serial pool map" true (got = [| 2; 3; 4 |]))

let test_pool_map_chunks_state () =
  Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 257 (fun i -> i) in
      let got =
        Pool.map_chunks pool ~chunk:8
          ~state:(fun _slot -> Buffer.create 16)
          ~f:(fun buf _i x ->
            Buffer.clear buf;
            Buffer.add_string buf (string_of_int (x * 2));
            int_of_string (Buffer.contents buf))
          input
      in
      check bool_ "per-slot scratch state" true
        (got = Array.map (fun x -> x * 2) input))

exception Boom

let test_pool_exception_propagates () =
  Pool.with_pool ~domains:4 (fun pool ->
      (match
         Pool.map pool
           (fun x -> if x = 37 then raise Boom else x)
           (Array.init 100 (fun i -> i))
       with
      | exception Boom -> ()
      | _ -> Alcotest.fail "expected Boom to propagate");
      (* the pool survives a failed submission *)
      let got = Pool.map pool (fun x -> x + 1) [| 1; 2 |] in
      check bool_ "pool usable after failure" true (got = [| 2; 3 |]))

let test_lowest_bit () =
  let reference mask =
    let rec go i =
      if Int64.logand (Int64.shift_right_logical mask i) 1L = 1L then i
      else go (i + 1)
    in
    go 0
  in
  for i = 0 to 63 do
    check int_ "single bit" i (Campaign.lowest_bit (Int64.shift_left 1L i))
  done;
  let rng = Rng.create 5L in
  for _ = 1 to 1000 do
    let m = Rng.next64 rng in
    if m <> 0L then check int_ "random mask" (reference m) (Campaign.lowest_bit m)
  done

(* --- serial vs parallel bit-identity --------------------------------------- *)

let campaign_eq ?(max_patterns = 256) ~seed c =
  let cfg d = { Campaign.default with max_patterns; domains = d; seed } in
  let r1 = Campaign.exec (cfg 1) c in
  let r4 = Campaign.exec (cfg 4) c in
  r1 = r4
  && Campaign.survivors (cfg 1) c = Campaign.survivors (cfg 4) c

let test_campaign_parallel_identity () =
  check bool_ "c17" true (campaign_eq ~seed:11L (c17 ()));
  check bool_ "mixed" true (campaign_eq ~seed:12L (mixed ()));
  for seed = 1 to 6 do
    let c = random_circuit ~n_pi:8 ~n_gates:40 ~n_po:4 seed in
    if not (campaign_eq ~seed:(Int64.of_int (100 + seed)) c) then
      Alcotest.failf "seed %d: parallel campaign diverged from serial" seed
  done

let test_campaign_parallel_bench_files () =
  (* Bundled .bench circuits, when prepared on this machine (same
     convention as test_benchmarks.ml: vacuous otherwise). *)
  match List.filter Benchmarks.cached Benchmarks.all with
  | [] -> ()
  | e :: _ ->
    let c = Benchmarks.build e in
    check bool_ (e.Benchmarks.name ^ " campaign identical") true
      (campaign_eq ~max_patterns:128 ~seed:101L c)

let pdf_eq ~seed c =
  let cfg d =
    { Pdf_campaign.default with max_pairs = 400; stop_window = 80; domains = d; seed }
  in
  Pdf_campaign.exec (cfg 1) c = Pdf_campaign.exec (cfg 4) c

let test_pdf_parallel_identity () =
  check bool_ "c17" true (pdf_eq ~seed:21L (c17 ()));
  check bool_ "mixed" true (pdf_eq ~seed:22L (mixed ()));
  for seed = 40 to 44 do
    let c = random_circuit ~n_pi:6 ~n_gates:24 ~n_po:3 seed in
    if not (pdf_eq ~seed:(Int64.of_int (200 + seed)) c) then
      Alcotest.failf "seed %d: parallel PDF campaign diverged from serial" seed
  done

let engine_eq ~objective ~options c =
  let a = Circuit.copy c and b = Circuit.copy c in
  let run options c =
    match objective with
    | Engine.Gates -> Procedure2.run ~options c
    | Engine.Paths -> Procedure3.run ~options c
  in
  let sa = run { options with Engine.domains = 1 } a in
  let sb = run { options with Engine.domains = 4 } b in
  sa = sb && Bench_format.to_string a = Bench_format.to_string b

let base_options =
  { Engine.default_options with Engine.k = 4; max_candidates = 16; max_passes = 2 }

let ext_options =
  (* don't-cares and multi-unit covers exercise the per-candidate rng *)
  { base_options with Engine.use_dontcares = true; max_units = 2 }

let test_engine_parallel_identity () =
  for seed = 60 to 64 do
    let c = random_circuit ~n_pi:6 ~n_gates:28 ~n_po:4 seed in
    if not (engine_eq ~objective:Engine.Gates ~options:base_options c) then
      Alcotest.failf "seed %d: parallel procedure 2 diverged from serial" seed;
    if not (engine_eq ~objective:Engine.Paths ~options:base_options c) then
      Alcotest.failf "seed %d: parallel procedure 3 diverged from serial" seed
  done;
  for seed = 70 to 72 do
    let c = random_circuit ~n_pi:6 ~n_gates:28 ~n_po:4 seed in
    if not (engine_eq ~objective:Engine.Gates ~options:ext_options c) then
      Alcotest.failf "seed %d: parallel extended procedure 2 diverged" seed
  done

(* --- qcheck properties over Circuit_gen circuits ---------------------------- *)

let gen_profile seed =
  {
    Circuit_gen.name = "par";
    n_pi = 10;
    n_po = 6;
    n_gates = 60;
    depth = 8;
    combine_pct = 25;
    xor_pct = 5;
    seed = Int64.of_int seed;
  }

let prop_campaign_parallel =
  QCheck.Test.make ~name:"parallel campaign = serial (circuit_gen)" ~count:8
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let c = Circuit_gen.generate (gen_profile seed) in
      campaign_eq ~seed:(Int64.of_int ((seed * 3) + 1)) c)

let prop_engine_parallel =
  QCheck.Test.make ~name:"parallel engine = serial (circuit_gen)" ~count:4
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let c = Circuit_gen.generate (gen_profile seed) in
      engine_eq ~objective:Engine.Gates ~options:base_options c)

let suite =
  [
    ("pool: ordered map", `Quick, test_pool_map_ordered);
    ("pool: per-slot state", `Quick, test_pool_map_chunks_state);
    ("pool: exceptions propagate", `Quick, test_pool_exception_propagates);
    ("campaign: de Bruijn lowest_bit", `Quick, test_lowest_bit);
    ("campaign: parallel = serial", `Quick, test_campaign_parallel_identity);
    ("campaign: parallel = serial on .bench", `Quick, test_campaign_parallel_bench_files);
    ("pdf: parallel = serial", `Quick, test_pdf_parallel_identity);
    ("engine: parallel = serial", `Quick, test_engine_parallel_identity);
  ]

let qchecks = [ prop_campaign_parallel; prop_engine_parallel ]
