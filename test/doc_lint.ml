(* Interface-documentation lint (DESIGN.md §10, "Documentation build").

   The container building this repo has no odoc, so `dune build @doc` cannot
   act as the documentation gate. This tool checks the properties that make
   odoc runs fail, directly on the source `.mli` files:

   - the file opens with a module synopsis [(** ... *)];
   - every doc comment's odoc markup is well-formed: balanced [{ }] around
     markup constructs, terminated code spans [[...]] and code blocks
     [{[ ... ]}], non-empty [{!...}] references;
   - comment delimiters themselves are balanced.

   Usage: doc_lint.exe DIR... [--strict DIR...] — checks every .mli under
   the given directories (non-recursive). Directories after --strict are
   additionally held to full value coverage: every `val` declaration must
   carry an attached doc comment (directly above, on the same line, or in
   the lines immediately below — the placements odoc attaches). Exits 1
   listing each offending file:line. Where odoc is installed,
   `dune build @doc` remains the full build. *)

let errors = ref 0

let err file line fmt =
  Printf.ksprintf
    (fun msg ->
      incr errors;
      Printf.eprintf "%s:%d: %s\n" file line msg)
    fmt

(* Extract comments, tracking nesting; returns (start_line, is_doc, body). *)
let comments file s =
  let n = String.length s in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\n' -> incr line
    | '(' when !i + 1 < n && s.[!i + 1] = '*' ->
      let start_line = !line in
      let start = !i in
      let depth = ref 0 in
      let j = ref !i in
      let finished = ref false in
      while (not !finished) && !j < n do
        if !j + 1 < n && s.[!j] = '(' && s.[!j + 1] = '*' then begin
          incr depth;
          j := !j + 2
        end
        else if !j + 1 < n && s.[!j] = '*' && s.[!j + 1] = ')' then begin
          decr depth;
          j := !j + 2;
          if !depth = 0 then finished := true
        end
        else begin
          if s.[!j] = '\n' then incr line;
          incr j
        end
      done;
      if not !finished then err file start_line "unterminated comment"
      else begin
        let body = String.sub s start (!j - start) in
        let is_doc =
          String.length body > 4 && body.[2] = '*' && body.[3] <> '*'
        in
        out := (start_line, is_doc, body) :: !out;
        i := !j - 1
      end
    | _ -> ());
    incr i
  done;
  List.rev !out

(* Check odoc markup inside one doc-comment body. Code spans [...] and code
   blocks {[ ... ]} are verbatim (modulo bracket nesting), everything else
   must keep { } balanced and {! } references non-empty. *)
let check_markup file line body =
  let n = String.length body in
  let braces = ref 0 in
  let i = ref 0 in
  while !i < n do
    (if !i + 1 < n && body.[!i] = '{' && body.[!i + 1] = '[' then begin
       (* code block: skip to the matching ]} *)
       let j = ref (!i + 2) in
       while !j + 1 < n && not (body.[!j] = ']' && body.[!j + 1] = '}') do
         incr j
       done;
       if !j + 1 >= n then err file line "unterminated {[ ... ]} code block";
       i := !j + 1
     end
     else
       match body.[!i] with
       | '[' ->
         (* code span: brackets nest, content is verbatim *)
         let depth = ref 1 in
         let j = ref (!i + 1) in
         while !depth > 0 && !j < n do
           (match body.[!j] with
           | '[' -> incr depth
           | ']' -> decr depth
           | _ -> ());
           incr j
         done;
         if !depth > 0 then err file line "unterminated [...] code span";
         i := !j - 1
       | '{' ->
         incr braces;
         if !i + 1 < n && body.[!i + 1] = '!' then begin
           (* reference: {!Target} must name something *)
           let j = ref (!i + 2) in
           while !j < n && body.[!j] <> '}' do
             incr j
           done;
           if !j >= n then err file line "unterminated {!...} reference"
           else if String.trim (String.sub body (!i + 2) (!j - !i - 2)) = ""
           then err file line "empty {!} reference"
         end
       | '}' ->
         decr braces;
         if !braces < 0 then err file line "unmatched } in doc comment"
       | _ -> ());
    incr i
  done;
  if !braces > 0 then err file line "unclosed { in doc comment"

(* Strict value coverage: every `val` line must have a doc comment ending on
   the previous (or same) line, or starting within the few lines below it —
   the placements odoc attaches to the declaration. The window below the
   `val` must span the longest multi-line signature in the strict set
   (Pool.for_chunks is seven lines), hence 8. *)
let check_val_coverage file s cs =
  let docs =
    List.filter_map
      (fun (start_line, is_doc, body) ->
        if not is_doc then None
        else
          let ends = ref start_line in
          String.iter (fun c -> if c = '\n' then incr ends) body;
          Some (start_line, !ends))
      cs
  in
  let line_no = ref 0 in
  String.split_on_char '\n' s
  |> List.iter (fun raw ->
         incr line_no;
         let l = !line_no and t = String.trim raw in
         if String.length t > 4 && String.sub t 0 4 = "val " then
           let attached =
             List.exists
               (fun (ds, de) -> de = l - 1 || de = l || (ds >= l && ds <= l + 8))
               docs
           in
           if not attached then
             err file l "undocumented val (strict coverage): %s" t)

let check_file ~strict file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let cs = comments file s in
  (* Module synopsis: the first doc comment must precede any declaration. *)
  let first_code =
    let rec skip i =
      if i >= String.length s then i
      else
        match s.[i] with
        | ' ' | '\t' | '\n' | '\r' -> skip (i + 1)
        | _ -> i
    in
    skip 0
  in
  (match cs with
  | (1, true, _) :: _ when first_code < String.length s && s.[first_code] = '('
    -> ()
  | _ -> err file 1 "missing module synopsis (** ... *) at the top");
  List.iter (fun (line, is_doc, body) -> if is_doc then check_markup file line body) cs;
  if strict then check_val_coverage file s cs

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    prerr_endline "usage: doc_lint.exe DIR... [--strict DIR...]";
    exit 2
  end;
  let dirs, strict_dirs =
    match
      List.fold_left
        (fun (normal, strict, seen) a ->
          if a = "--strict" then (normal, strict, true)
          else if seen then (normal, a :: strict, true)
          else (a :: normal, strict, false))
        ([], [], false) args
    with
    | n, st, _ -> (List.rev n, List.rev st)
  in
  let list_mlis dir =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mli")
    |> List.map (Filename.concat dir)
    |> List.sort compare
  in
  let files =
    List.concat_map (fun d -> List.map (fun f -> (false, f)) (list_mlis d)) dirs
    @ List.concat_map
        (fun d -> List.map (fun f -> (true, f)) (list_mlis d))
        strict_dirs
  in
  List.iter (fun (strict, f) -> check_file ~strict f) files;
  if !errors > 0 then begin
    Printf.eprintf "doc-lint: %d error(s)\n" !errors;
    exit 1
  end;
  Printf.printf "doc-lint: %d interface file(s) clean\n" (List.length files)
