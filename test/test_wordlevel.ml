(* Differential tests for the word-parallel kernels (DESIGN.md §12): every
   64-bit kernel must be bit-identical to a naive per-minterm reference, the
   bit-parallel subcircuit extractor must match the scalar one on random
   cones, and the engine must produce the same results with the
   identification cache on or off, serial or pooled. *)

open Helpers

(* Naive reference: a plain [bool array] over all minterms. *)
let random_ref rng n =
  Array.init (1 lsl n) (fun _ -> Rng.int rng 2 = 1)

let tt_of_ref n r = Truthtable.create n (fun m -> r.(m))

let check_against_ref msg n r t =
  for m = 0 to (1 lsl n) - 1 do
    if Truthtable.get t m <> r.(m) then
      Alcotest.failf "%s: minterm %d of %d-input table disagrees" msg m n
  done

(* Reference cofactor: insert the fixed bit back at position [n - i]. *)
let ref_cofactor r n i v m' =
  let p = n - i in
  let orig =
    ((m' lsr p) lsl (p + 1)) lor ((if v then 1 else 0) lsl p) lor (m' land ((1 lsl p) - 1))
  in
  r.(orig)

(* Reference permute: new variable x_(j+1) feeds old variable pi.(j). *)
let ref_permute r n pi m =
  let old_m = ref 0 in
  for j = 0 to n - 1 do
    if (m lsr (n - 1 - j)) land 1 = 1 then
      old_m := !old_m lor (1 lsl (n - pi.(j)))
  done;
  r.(!old_m)

let ref_interval r =
  let on = ref [] in
  Array.iteri (fun m v -> if v then on := m :: !on) r;
  match List.rev !on with
  | [] -> None
  | lo :: _ as ms ->
    let hi = List.nth ms (List.length ms - 1) in
    if List.length ms = hi - lo + 1 then Some (lo, hi) else None

(* Exercise every kernel once against the reference for one random table. *)
let check_kernels n seed =
  let rng = Rng.create (Int64.of_int (seed + (n * 1000) + 7)) in
  let ra = random_ref rng n and rb = random_ref rng n in
  let a = tt_of_ref n ra and b = tt_of_ref n rb in
  let sz = 1 lsl n in
  check_against_ref "create/get" n ra a;
  check_against_ref "land" n (Array.init sz (fun m -> ra.(m) && rb.(m)))
    (Truthtable.land_ a b);
  check_against_ref "lor" n (Array.init sz (fun m -> ra.(m) || rb.(m)))
    (Truthtable.lor_ a b);
  check_against_ref "lxor" n (Array.init sz (fun m -> ra.(m) <> rb.(m)))
    (Truthtable.lxor_ a b);
  check_against_ref "lnot" n (Array.map not ra) (Truthtable.lnot a);
  check bool_ "equal vs ref" (ra = rb) (Truthtable.equal a b);
  check bool_ "equal reflexive" true (Truthtable.equal a (tt_of_ref n ra));
  check int_ "popcount" (Array.fold_left (fun k v -> if v then k + 1 else k) 0 ra)
    (Truthtable.popcount a);
  let ref_const =
    if Array.for_all Fun.id ra then Some true
    else if Array.for_all not ra then Some false
    else None
  in
  check bool_ "is_const" true (Truthtable.is_const a = ref_const);
  check bool_ "minterms" true
    (Truthtable.minterms a
    = List.filter (fun m -> ra.(m)) (List.init sz Fun.id));
  check bool_ "as_interval" true (Truthtable.as_interval a = ref_interval ra);
  for i = 1 to n do
    List.iter
      (fun v ->
        check_against_ref
          (Printf.sprintf "cofactor x%d=%b" i v)
          (n - 1)
          (Array.init (sz / 2) (ref_cofactor ra n i v))
          (Truthtable.cofactor a ~var:i v))
      [ false; true ]
  done;
  let pi = Array.init n (fun j -> j + 1) in
  Rng.shuffle rng pi;
  check_against_ref "permute" n
    (Array.init sz (ref_permute ra n pi))
    (Truthtable.permute a pi);
  (* hash must respect equality (and in practice separate distinct tables) *)
  check int_ "hash stable" (Truthtable.hash a) (Truthtable.hash (tt_of_ref n ra))

let test_kernels_small_arities () =
  for n = 0 to 8 do
    for seed = 1 to 3 do
      check_kernels n seed
    done
  done

let test_kernels_multiword () =
  (* 7..16 inputs cross the one-word boundary: 2, 4, ... 1024 words. *)
  List.iter (fun n -> check_kernels n 1) [ 7; 8; 9; 10; 13; 16 ]

let test_interval_word_level () =
  (* intervals crossing word boundaries, in particular at 64-multiples *)
  List.iter
    (fun (n, lo, hi) ->
      let t = Truthtable.interval n ~lo ~hi in
      check bool_ "interval round-trip" true (Truthtable.as_interval t = Some (lo, hi));
      check int_ "interval popcount" (hi - lo + 1) (Truthtable.popcount t))
    [ (7, 0, 127); (7, 63, 64); (8, 64, 191); (10, 1, 1022); (6, 0, 0); (9, 511, 511) ]

let test_of_words_patterns () =
  (* [var] must agree with the documented sim-pattern/word layout. *)
  for n = 0 to 10 do
    for i = 1 to n do
      let p = n - i in
      let nw = if n <= 6 then 1 else 1 lsl (n - 6) in
      let words =
        Array.init nw (fun w ->
            if p < 6 then Truthtable.sim_pattern p
            else if w land (1 lsl (p - 6)) <> 0 then -1L
            else 0L)
      in
      check bool_ "var = of_words(pattern)" true
        (Truthtable.equal (Truthtable.var n i) (Truthtable.of_words n words))
    done
  done

(* --- bit-parallel extraction ---------------------------------------------- *)

let gate_roots c =
  Array.to_list (Circuit.topo_order c)
  |> List.filter (fun id ->
         match Circuit.kind c id with
         | Gate.Input | Gate.Const0 | Gate.Const1 -> false
         | _ -> true)

let test_extract_matches_scalar () =
  for seed = 1 to 8 do
    let c = random_circuit ~n_pi:6 ~n_gates:24 seed in
    let scratch = Array.make (Circuit.size c) 0L in
    List.iter
      (fun root ->
        List.iter
          (fun sub ->
            let reference = Subcircuit.extract_scalar c sub in
            let word = Subcircuit.extract c sub in
            let word_scratch = Subcircuit.extract ~scratch c sub in
            if not (Truthtable.equal reference word) then
              Alcotest.failf "extract mismatch (seed %d, root %d)" seed root;
            if not (Truthtable.equal reference word_scratch) then
              Alcotest.failf "extract ~scratch mismatch (seed %d, root %d)" seed root)
          (Subcircuit.enumerate ~k:6 ~max_candidates:16 c root))
      (gate_roots c)
  done

let test_extract_matches_scalar_wide_cut () =
  (* k = 9 cuts need multiple 64-minterm sweeps per candidate. *)
  for seed = 1 to 4 do
    let c = random_circuit ~n_pi:9 ~n_gates:30 seed in
    List.iter
      (fun root ->
        List.iter
          (fun sub ->
            if not (Truthtable.equal (Subcircuit.extract_scalar c sub) (Subcircuit.extract c sub))
            then Alcotest.failf "wide extract mismatch (seed %d, root %d)" seed root)
          (Subcircuit.enumerate ~k:9 ~max_candidates:8 c root))
      (gate_roots c)
  done

let test_extract_scratch_too_small () =
  let c = c17 () in
  let root = (Circuit.outputs c).(0) in
  match Subcircuit.enumerate ~k:2 ~max_candidates:1 c root with
  | sub :: _ ->
    Alcotest.check_raises "undersized scratch rejected"
      (Invalid_argument "Subcircuit.extract: scratch smaller than the circuit")
      (fun () -> ignore (Subcircuit.extract ~scratch:(Array.make 1 0L) c sub))
  | [] -> Alcotest.fail "no candidate"

(* --- engine determinism with the identification cache ---------------------- *)

let optimize_fingerprint options c =
  let c = Circuit.copy c in
  let stats = Engine.optimize Engine.Gates options c in
  ( stats.Engine.passes,
    stats.Engine.replacements,
    stats.Engine.gates_after,
    stats.Engine.paths_after,
    Bench_format.to_string c )

let test_engine_cache_invariance () =
  for seed = 1 to 4 do
    let c = random_circuit ~n_pi:6 ~n_gates:30 seed in
    let base = { Engine.default_options with Engine.verify = `Off } in
    let reference = optimize_fingerprint { base with Engine.id_cache = false; domains = 1 } c in
    List.iter
      (fun (label, options) ->
        if optimize_fingerprint options c <> reference then
          Alcotest.failf "engine diverges under %s (seed %d)" label seed)
      [
        ("cache on, serial", { base with Engine.id_cache = true; domains = 1 });
        ("cache on, pooled", { base with Engine.id_cache = true; domains = 2 });
        ("cache off, pooled", { base with Engine.id_cache = false; domains = 2 });
      ]
  done

(* --- qcheck properties ----------------------------------------------------- *)

let arb_seed = QCheck.int_range 1 1_000_000

let prop_kernels_match_reference =
  QCheck.Test.make ~name:"word kernels match per-minterm reference" ~count:60
    (QCheck.pair (QCheck.int_range 0 10) arb_seed)
    (fun (n, seed) ->
      check_kernels n seed;
      true)

let prop_extract_matches_scalar =
  QCheck.Test.make ~name:"bit-parallel extract matches scalar on random cones" ~count:40
    arb_seed
    (fun seed ->
      let c = random_circuit ~n_pi:7 ~n_gates:20 seed in
      List.for_all
        (fun root ->
          List.for_all
            (fun sub ->
              Truthtable.equal (Subcircuit.extract_scalar c sub) (Subcircuit.extract c sub))
            (Subcircuit.enumerate ~k:7 ~max_candidates:6 c root))
        (gate_roots c))

let prop_compare_consistent =
  QCheck.Test.make ~name:"compare is a total order consistent with equal" ~count:100
    (QCheck.triple (QCheck.int_range 0 9) arb_seed arb_seed)
    (fun (n, s1, s2) ->
      let a = tt_of_ref n (random_ref (Rng.create (Int64.of_int s1)) n) in
      let b = tt_of_ref n (random_ref (Rng.create (Int64.of_int s2)) n) in
      let c = Truthtable.compare a b in
      (c = 0) = Truthtable.equal a b
      && Truthtable.compare b a = -c
      && Truthtable.compare a a = 0)

let suite =
  [
    Alcotest.test_case "kernels vs reference, arities 0-8" `Quick test_kernels_small_arities;
    Alcotest.test_case "kernels vs reference, multi-word arities" `Quick test_kernels_multiword;
    Alcotest.test_case "interval across word boundaries" `Quick test_interval_word_level;
    Alcotest.test_case "var agrees with of_words patterns" `Quick test_of_words_patterns;
    Alcotest.test_case "extract matches scalar (k=6)" `Quick test_extract_matches_scalar;
    Alcotest.test_case "extract matches scalar (k=9, multi-word)" `Quick
      test_extract_matches_scalar_wide_cut;
    Alcotest.test_case "extract rejects undersized scratch" `Quick test_extract_scratch_too_small;
    Alcotest.test_case "engine invariant under cache/domains" `Slow test_engine_cache_invariance;
  ]

let qchecks =
  [ prop_kernels_match_reference; prop_extract_matches_scalar; prop_compare_consistent ]
