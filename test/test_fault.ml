open Helpers

(* Naive single-pattern faulty evaluation used as the reference model. *)
let faulty_run c (f : Fault.t) inputs =
  let v = Array.make (Circuit.size c) false in
  let pis = Circuit.inputs c in
  Array.iteri (fun i pi -> v.(pi) <- inputs.(i)) pis;
  let force_stem id =
    match f.Fault.site with
    | Fault.Stem u when u = id -> v.(id) <- f.Fault.stuck
    | Fault.Stem _ | Fault.Branch _ -> ()
  in
  Array.iter
    (fun id ->
      (match Circuit.kind c id with
      | Gate.Input -> ()
      | k ->
        let fins = Circuit.fanins c id in
        let vals =
          Array.mapi
            (fun pin fanin ->
              match f.Fault.site with
              | Fault.Branch (g, p) when g = id && p = pin -> f.Fault.stuck
              | Fault.Branch _ | Fault.Stem _ -> v.(fanin))
            fins
        in
        v.(id) <- Gate.eval k vals);
      force_stem id)
    (Circuit.topo_order c);
  Array.map (fun o -> v.(o)) (Circuit.outputs c)

let test_fault_list_counts () =
  let c = c17 () in
  (* 11 stems (5 PI + 6 gates). Multi-fanout stems: G3 (2 pins), G11 (2),
     G16 (2) -> 6 branch sites. Total uncollapsed = 2*(11+6) = 34. *)
  check int_ "uncollapsed" 34 (List.length (Fault.all c));
  let col = List.length (Fault.collapsed c) in
  check bool_ "collapsing shrinks" true (col < 34);
  (* NAND-only circuit: every fanout-free stem loses its s-a-0; every branch
     pin loses its s-a-0. Fanout-free stems: G1,G2,G6,G7,G10,G19 (6 of them,
     G22/G23 are POs and keep both). 34 - 6 - 6 = 22. *)
  check int_ "collapsed" 22 col

let test_detect_matches_naive () =
  for seed = 1 to 8 do
    let c = random_circuit ~n_pi:5 ~n_gates:15 seed in
    let cmp = Compiled.of_circuit c in
    let sim = Fsim.create cmp in
    let faults = Fault.all c in
    let rng = Rng.create (Int64.of_int (100 + seed)) in
    let words = Array.init 5 (fun _ -> Rng.next64 rng) in
    Fsim.load_patterns sim words;
    List.iter
      (fun f ->
        let mask = Fsim.detect sim f in
        (* check 16 of the 64 slots against the naive model *)
        for slot = 0 to 15 do
          let inputs =
            Array.map
              (fun w -> Int64.logand (Int64.shift_right_logical w slot) 1L = 1L)
              words
          in
          let good = Eval.run c inputs in
          let bad = faulty_run c f inputs in
          let expect = good <> bad in
          let got = Int64.logand (Int64.shift_right_logical mask slot) 1L = 1L in
          if expect <> got then
            Alcotest.failf "seed %d fault %s slot %d: naive %b fsim %b" seed
              (Fault.to_string c f) slot expect got
        done)
      faults
  done

let test_campaign_c17 () =
  let c = c17 () in
  let r = Campaign.exec { Campaign.default with max_patterns = 10_000; seed = 7L } c in
  (* c17 is fully testable; a few dozen random patterns suffice. *)
  check int_ "all detected" 0 r.Campaign.remaining;
  check bool_ "effective pattern sane" true
    (r.Campaign.last_effective_pattern > 0
    && r.Campaign.last_effective_pattern <= r.Campaign.patterns_applied)

let test_campaign_detects_undetectable () =
  (* A redundant AND(a, a') gate yields an untestable s-a-0. *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let na = Circuit.add_gate c Gate.Not [| a |] in
  let dead = Circuit.add_gate c Gate.And [| a; na |] in
  let out = Circuit.add_gate c Gate.Or [| dead; b |] in
  Circuit.mark_output c out;
  let fault = { Fault.site = Fault.Stem dead; stuck = false } in
  let cfg =
    { Campaign.default with faults = Some [ fault ]; max_patterns = 4096; seed = 3L }
  in
  let r = Campaign.exec cfg c in
  check int_ "never detected" 1 r.Campaign.remaining;
  let survivors = Campaign.survivors cfg c in
  check int_ "survivor reported" 1 (List.length survivors)

let test_campaign_deterministic () =
  let c = c17 () in
  let r1 = Campaign.exec { Campaign.default with max_patterns = 1000; seed = 11L } c in
  let r2 = Campaign.exec { Campaign.default with max_patterns = 1000; seed = 11L } c in
  check int_ "same eff" r1.Campaign.last_effective_pattern r2.Campaign.last_effective_pattern;
  check int_ "same detected" r1.Campaign.detected r2.Campaign.detected

let suite =
  [
    ("fault list counts on c17", `Quick, test_fault_list_counts);
    ("PPSFP matches naive fault injection", `Quick, test_detect_matches_naive);
    ("random campaign covers c17", `Quick, test_campaign_c17);
    ("campaign reports undetectable faults", `Quick, test_campaign_detects_undetectable);
    ("campaign is deterministic", `Quick, test_campaign_deterministic);
  ]
