(* The NPN-canonical, disk-persistent identification cache (DESIGN.md §15):
   the flip kernel against a per-minterm reference, canonicalisation as an
   exact NPN-equivalence decision procedure (class counts are known for
   small arities), soundness of the layered cache against the exact
   identifier over whole orbits, and the disk store's round-trip,
   version-mismatch, torn-tail and warm-start behaviour. *)

open Helpers

let tt_of_ref n r = Truthtable.create n (fun m -> r.(m))

let random_table rng n =
  Truthtable.create n (fun _ -> Rng.int rng 2 = 1)

(* --- Truthtable.flip ------------------------------------------------------- *)

let test_flip_reference () =
  for n = 1 to 8 do
    let rng = Rng.create (Int64.of_int (100 + n)) in
    let r = Array.init (1 lsl n) (fun _ -> Rng.int rng 2 = 1) in
    let t = tt_of_ref n r in
    for var = 1 to n do
      let flipped = Truthtable.flip t ~var in
      for m = 0 to (1 lsl n) - 1 do
        let m' = m lxor (1 lsl (n - var)) in
        if Truthtable.get flipped m <> r.(m') then
          Alcotest.failf "flip n=%d var=%d minterm %d" n var m
      done;
      if not (Truthtable.equal (Truthtable.flip flipped ~var) t) then
        Alcotest.failf "flip^2 <> id (n=%d var=%d)" n var
    done
  done

(* --- NPN canonicalisation -------------------------------------------------- *)

let rec perms = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x -> List.map (fun r -> x :: r) (perms (List.filter (( <> ) x) l)))
      l

(* Every NPN transform of arity [n] (2^(n+1) * n! of them). *)
let all_transforms n =
  let pis = List.map Array.of_list (perms (List.init n (fun i -> i + 1))) in
  List.concat_map
    (fun pi ->
      List.concat_map
        (fun negate ->
          List.init (1 lsl n) (fun phase -> { Npn.pi; phase; negate }))
        [ false; true ])
    pis

let random_transform rng n =
  let pi = Array.init n (fun j -> j + 1) in
  for j = n - 1 downto 1 do
    let k = Rng.int rng (j + 1) in
    let t = pi.(j) in
    pi.(j) <- pi.(k);
    pi.(k) <- t
  done;
  { Npn.pi; phase = Rng.int rng (1 lsl n); negate = Rng.int rng 2 = 1 }

let test_canon_decomposition () =
  for n = 1 to 4 do
    let rng = Rng.create (Int64.of_int (200 + n)) in
    for _ = 1 to 20 do
      let f = random_table rng n in
      let c = Npn.canon f in
      if not (Truthtable.equal (Npn.apply c.Npn.tr f) c.Npn.repr) then
        Alcotest.failf "apply tr f <> repr (n=%d, f=%s)" n (Truthtable.to_string f);
      check int_ "psi = push_phase tr" (Npn.push_phase c.Npn.tr) c.Npn.psi
    done
  done

let test_canon_invariance_exhaustive () =
  (* n = 3, all 256 functions x all 96 transforms: the canonical
     representative is constant on every orbit. *)
  let n = 3 in
  let transforms = all_transforms n in
  for v = 0 to 255 do
    let f = Truthtable.of_minterms n (List.filter (fun m -> v land (1 lsl m) <> 0) (List.init 8 Fun.id)) in
    let repr = (Npn.canon f).Npn.repr in
    List.iter
      (fun tr ->
        let g = Npn.apply tr f in
        if not (Truthtable.equal (Npn.canon g).Npn.repr repr) then
          Alcotest.failf "canon not orbit-invariant (v=%d, g=%s)" v
            (Truthtable.to_string g))
      transforms
  done

(* canon(f) = canon(g) <=> f ~NPN g, checked exhaustively through the known
   NPN class counts: distinct representatives over all 2^(2^n) functions
   must number 2, 4, 14, 222 for n = 1..4 (e.g. Tarau & Luderman's
   catalogues; the counts pin both directions of the iff — fewer classes
   would mean a collision between inequivalent functions, more would mean
   an orbit with two representatives, given the orbit-invariance test
   above). *)
let test_canon_class_counts () =
  List.iter
    (fun (n, expected) ->
      let seen = Hashtbl.create 256 in
      for v = 0 to (1 lsl (1 lsl n)) - 1 do
        let f = Truthtable.create n (fun m -> v land (1 lsl m) <> 0) in
        Hashtbl.replace seen (Truthtable.to_string (Npn.canon f).Npn.repr) ()
      done;
      check int_ (Printf.sprintf "NPN classes at n=%d" n) expected
        (Hashtbl.length seen))
    [ (1, 2); (2, 4); (3, 14); (4, 222) ]

(* --- cache soundness over whole orbits ------------------------------------- *)

(* Populate a cache with every 3-input function's exact verdict, then query
   every NPN image of every function: a raw hit must replay the exact
   verdict, and an NPN-layer hit must only ever stand in for a genuine
   negative. This exercises the load-bearing subtlety that
   comparison-function-ness is *not* NPN-invariant (DESIGN.md §15). *)
let test_cache_sound_on_orbits () =
  let n = 3 in
  let cache = Idcache.create () in
  let all = List.init 256 Fun.id in
  let table_of v =
    Truthtable.create n (fun m -> v land (1 lsl m) <> 0)
  in
  List.iter
    (fun v ->
      let f = table_of v in
      match Idcache.find cache f with
      | Idcache.Hit _ | Idcache.Neg_hit -> ()
      | Idcache.Miss m -> Idcache.record cache m (Comparison_fn.identify_exact f))
    all;
  let transforms = all_transforms n in
  List.iter
    (fun v ->
      let f = table_of v in
      List.iter
        (fun tr ->
          let g = Npn.apply tr f in
          let truth = Comparison_fn.identify_exact g in
          match Idcache.find cache g with
          | Idcache.Miss _ -> ()
          | Idcache.Hit verdict ->
            if verdict <> truth then
              Alcotest.failf "raw hit returned a wrong verdict for %s"
                (Truthtable.to_string g)
          | Idcache.Neg_hit ->
            if truth <> None then
              Alcotest.failf
                "NPN layer claimed %s is not a comparison function, but it is"
                (Truthtable.to_string g))
        transforms)
    all

(* --- disk store ------------------------------------------------------------ *)

let tmpdir () =
  let d = Filename.temp_file "sft-idcache" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let populate_n3 cache count =
  (* Record the first [count] 3-input functions' verdicts (cache-miss order). *)
  for v = 0 to count - 1 do
    let f = Truthtable.create 3 (fun m -> v land (1 lsl m) <> 0) in
    match Idcache.find cache f with
    | Idcache.Hit _ | Idcache.Neg_hit -> ()
    | Idcache.Miss m -> Idcache.record cache m (Comparison_fn.identify_exact f)
  done

let test_disk_round_trip () =
  let dir = tmpdir () in
  let cold = Idcache.create ~dir () in
  populate_n3 cold 64;
  let raw_n = Idcache.length cold and npn_n = Idcache.npn_length cold in
  Idcache.finish cold;
  let warm = Idcache.create ~dir () in
  check int_ "raw entries survive the round trip" raw_n (Idcache.length warm);
  check int_ "npn entries survive the round trip" npn_n (Idcache.npn_length warm);
  for v = 0 to 63 do
    (* Every populated function must warm-hit: raw entries replay the exact
       verdict; functions that NPN-hit during population have no raw entry
       and must NPN-hit again, which is only sound for negatives. *)
    let f = Truthtable.create 3 (fun m -> v land (1 lsl m) <> 0) in
    let truth = Comparison_fn.identify_exact f in
    match Idcache.find warm f with
    | Idcache.Hit verdict ->
      if verdict <> truth then Alcotest.failf "warm verdict differs for %d" v
    | Idcache.Neg_hit ->
      if truth <> None then Alcotest.failf "unsound warm NPN hit for %d" v
    | Idcache.Miss _ -> Alcotest.failf "expected a warm hit for %d" v
  done

let test_disk_version_mismatch () =
  let dir = tmpdir () in
  let path = Id_store.file ~dir in
  (* A well-formed header with the wrong version must read as empty... *)
  let oc = open_out_bin path in
  output_string oc "SFTIDC";
  output_string oc "\x63\x00" (* version 99 *);
  output_string oc "garbage that must never be parsed as records";
  close_out oc;
  check int_ "version mismatch reads as empty" 0 (List.length (Id_store.load path));
  (* ...and the next append must rewrite the file, not extend it. *)
  let t = Truthtable.of_minterms 3 [ 1; 2; 3 ] in
  Id_store.append path [ Id_store.Raw (t, Comparison_fn.identify_exact t) ];
  (match Id_store.load path with
  | [ Id_store.Raw (t', v) ] ->
    check bool_ "table round-trips" true (Truthtable.equal t t');
    if v <> Comparison_fn.identify_exact t then Alcotest.fail "verdict changed"
  | _ -> Alcotest.fail "append after mismatch did not rewrite");
  ()

let test_disk_torn_tail () =
  let dir = tmpdir () in
  let path = Id_store.file ~dir in
  let tables =
    List.map (fun ms -> Truthtable.of_minterms 3 ms) [ [ 0 ]; [ 1; 2 ]; [ 3; 4; 5 ] ]
  in
  Id_store.append path
    (List.map (fun t -> Id_store.Raw (t, Comparison_fn.identify_exact t)) tables);
  check int_ "three records" 3 (List.length (Id_store.load path));
  (* Tear the last record: readers keep the prefix... *)
  let len = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len - 3);
  Unix.close fd;
  check int_ "torn tail drops one record" 2 (List.length (Id_store.load path));
  (* ...and the next append repairs the tail before extending. *)
  let extra = Truthtable.of_minterms 3 [ 6; 7 ] in
  Id_store.append path [ Id_store.Raw (extra, Comparison_fn.identify_exact extra) ];
  let entries = Id_store.load path in
  check int_ "repair + append" 3 (List.length entries);
  (match List.rev entries with
  | Id_store.Raw (t, _) :: _ ->
    check bool_ "appended record intact" true (Truthtable.equal t extra)
  | _ -> Alcotest.fail "unexpected tail entry")

let test_disk_corrupt_record () =
  let dir = tmpdir () in
  let path = Id_store.file ~dir in
  let raw ms =
    let t = Truthtable.of_minterms 3 ms in
    Id_store.Raw (t, Comparison_fn.identify_exact t)
  in
  (* Append the first record alone so its encoded length is observable
     (records vary in size with the verdict payload), then two more. *)
  Id_store.append path [ raw [ 0 ] ];
  let first_end = (Unix.stat path).Unix.st_size in
  Id_store.append path [ raw [ 1; 2 ]; raw [ 3; 4; 5 ] ];
  check int_ "three records before corruption" 3 (List.length (Id_store.load path));
  (* Flip a byte inside the second record's table words: the checksum
     rejects it and parsing stops — record 1 survives, 2 and 3 drop. *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (first_end + 4) Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
  ignore (Unix.lseek fd (first_end + 4) Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  check int_ "corruption truncates at the bad record" 1
    (List.length (Id_store.load path))

(* --- engine warm start ----------------------------------------------------- *)

let optimize_fingerprint options c =
  let c = Circuit.copy c in
  let stats = Engine.optimize Engine.Gates options c in
  ( stats.Engine.passes,
    stats.Engine.replacements,
    stats.Engine.gates_after,
    stats.Engine.paths_after,
    Bench_format.to_string c )

let counter v = Obs.Counter.value (Obs.Counter.make v)

let test_engine_warm_start_identity () =
  let dir = tmpdir () in
  let c = random_circuit ~n_pi:6 ~n_gates:40 3 in
  let base = { Engine.default_options with Engine.verify = `Off; domains = 1 } in
  Obs.enable ();
  let off = optimize_fingerprint { base with Engine.id_cache = false } c in
  let cold = optimize_fingerprint { base with Engine.cache_dir = Some dir } c in
  let d0 = counter "idcache.disk_hits" in
  let warm = optimize_fingerprint { base with Engine.cache_dir = Some dir } c in
  let disk_hits = counter "idcache.disk_hits" - d0 in
  Obs.disable ();
  if cold <> off then Alcotest.fail "cold cached run diverges from cache-off";
  if warm <> off then Alcotest.fail "warm cached run diverges from cache-off";
  if disk_hits = 0 then Alcotest.fail "warm run never hit the disk store"

(* --- qcheck ---------------------------------------------------------------- *)

let arb_seed = QCheck.int_range 1 1_000_000

let prop_canon_invariant_k56 =
  QCheck.Test.make ~name:"canon is NPN-orbit-invariant at K = 5, 6" ~count:60
    (QCheck.pair (QCheck.int_range 5 6) arb_seed)
    (fun (n, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let f = random_table rng n in
      let c = Npn.canon f in
      let g = Npn.apply (random_transform rng n) f in
      let cg = Npn.canon g in
      Truthtable.equal (Npn.apply c.Npn.tr f) c.Npn.repr
      && Truthtable.equal cg.Npn.repr c.Npn.repr
      && c.Npn.psi = Npn.push_phase c.Npn.tr)

let prop_store_round_trip =
  QCheck.Test.make ~name:"disk entries round-trip bit-exactly" ~count:30 arb_seed
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let dir = tmpdir () in
      let path = Id_store.file ~dir in
      let entries =
        List.init 5 (fun i ->
            let n = 1 + Rng.int rng 6 in
            let t = random_table rng n in
            if i mod 2 = 0 then Id_store.Raw (t, Comparison_fn.identify_exact t)
            else
              let c = Npn.canon t in
              Id_store.Npn_neg (c.Npn.repr, c.Npn.psi))
      in
      Id_store.append path entries;
      let back = Id_store.load path in
      List.length back = List.length entries
      && List.for_all2
           (fun a b ->
             match (a, b) with
             | Id_store.Raw (t, v), Id_store.Raw (t', v') ->
               Truthtable.equal t t' && v = v'
             | Id_store.Npn_neg (t, p), Id_store.Npn_neg (t', p') ->
               Truthtable.equal t t' && p = p'
             | _ -> false)
           entries back)

let suite =
  [
    Alcotest.test_case "flip matches per-minterm reference" `Quick test_flip_reference;
    Alcotest.test_case "canon decomposes: apply tr f = repr" `Quick
      test_canon_decomposition;
    Alcotest.test_case "canon orbit-invariant (n=3, exhaustive)" `Quick
      test_canon_invariance_exhaustive;
    Alcotest.test_case "NPN class counts 2/4/14/222 (n=1..4)" `Slow
      test_canon_class_counts;
    Alcotest.test_case "cache sound over whole orbits (n=3)" `Slow
      test_cache_sound_on_orbits;
    Alcotest.test_case "disk round trip" `Quick test_disk_round_trip;
    Alcotest.test_case "version mismatch reads empty, append rewrites" `Quick
      test_disk_version_mismatch;
    Alcotest.test_case "torn tail: reader keeps prefix, writer repairs" `Quick
      test_disk_torn_tail;
    Alcotest.test_case "checksum rejects corrupt record" `Quick
      test_disk_corrupt_record;
    Alcotest.test_case "engine warm start: identical circuits, disk hits" `Slow
      test_engine_warm_start_identity;
  ]

let qchecks = [ prop_canon_invariant_k56; prop_store_round_trip ]
