open Helpers

let wave init final hf = { Wave.init; final; hf }

let test_wave_and_rules () =
  let s0 = Wave.stable false and s1 = Wave.stable true in
  let r = Wave.rising and f = Wave.falling in
  (* controlling stable masks hazards *)
  let hazardous = wave true true false in
  let out = Wave.eval Gate.And [| s0; hazardous |] in
  check bool_ "masked hf" true out.Wave.hf;
  check bool_ "masked value" false out.Wave.final;
  (* rising and falling mix glitches *)
  let out = Wave.eval Gate.And [| r; f |] in
  check bool_ "r&f not hf" false out.Wave.hf;
  check bool_ "r&f static 0" true ((not out.Wave.init) && not out.Wave.final);
  (* rising with stable 1 stays clean *)
  let out = Wave.eval Gate.And [| r; s1 |] in
  check bool_ "clean rising" true (out.Wave.hf && Wave.has_transition out);
  (* two rising inputs stay clean *)
  let out = Wave.eval Gate.And [| r; r |] in
  check bool_ "two rising clean" true (out.Wave.hf && out.Wave.final)

let test_wave_or_xor_rules () =
  let s1 = Wave.stable true in
  let r = Wave.rising and f = Wave.falling in
  let hazardous = wave false false false in
  let out = Wave.eval Gate.Or [| s1; hazardous |] in
  check bool_ "or masks with stable 1" true out.Wave.hf;
  let out = Wave.eval Gate.Xor [| r; f |] in
  check bool_ "xor two transitions hazardous" false out.Wave.hf;
  let out = Wave.eval Gate.Xor [| r; Wave.stable false |] in
  check bool_ "xor single transition clean" true (out.Wave.hf && Wave.has_transition out);
  let out = Wave.eval Gate.Nor [| Wave.stable false; f |] in
  check bool_ "nor inverts falling to rising" true (out.Wave.final && not out.Wave.init)

let test_wave_simulation_endpoints () =
  (* init/final planes of the wave sim must match two independent logic
     simulations. *)
  for seed = 1 to 8 do
    let c = random_circuit ~n_pi:5 ~n_gates:20 seed in
    let cmp = Compiled.of_circuit c in
    let rng = Rng.create (Int64.of_int seed) in
    let v1 = Array.init 5 (fun _ -> Rng.bool rng) in
    let v2 = Array.init 5 (fun _ -> Rng.bool rng) in
    let waves = Wave.simulate cmp ~v1 ~v2 in
    let val1 = Eval.node_values c v1 and val2 = Eval.node_values c v2 in
    Circuit.iter_live c (fun id ->
        check bool_ "init" val1.(id) waves.(id).Wave.init;
        check bool_ "final" val2.(id) waves.(id).Wave.final)
  done

let test_robust_detection_inverter_chain () =
  (* a -> NOT -> NOT -> out: both path faults robustly testable. *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let n1 = Circuit.add_gate c Gate.Not [| a |] in
  let n2 = Circuit.add_gate c Gate.Not [| n1 |] in
  Circuit.mark_output c n2;
  let path = [| a; n1; n2 |] in
  (match Robust.detects_vectors c ~v1:[| false |] ~v2:[| true |] path with
  | Some Robust.Rising -> ()
  | Some Robust.Falling | None -> Alcotest.fail "rising test");
  match Robust.detects_vectors c ~v1:[| true |] ~v2:[| false |] path with
  | Some Robust.Falling -> ()
  | Some Robust.Rising | None -> Alcotest.fail "falling test"

let test_robust_side_input_conditions () =
  (* AND(a, b): rising on a (controlling -> non-controlling) needs b stable 1. *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let g = Circuit.add_gate c Gate.And [| a; b |] in
  Circuit.mark_output c g;
  let path = [| a; g |] in
  (* b stable 1: robust *)
  (match Robust.detects_vectors c ~v1:[| false; true |] ~v2:[| true; true |] path with
  | Some Robust.Rising -> ()
  | Some Robust.Falling | None -> Alcotest.fail "should be robust");
  (* b rising alongside: not robust for the rising a transition *)
  match Robust.detects_vectors c ~v1:[| false; false |] ~v2:[| true; true |] path with
  | None -> ()
  | Some _ -> Alcotest.fail "side input transitioning must not be robust"

let test_robust_hazard_asymmetry () =
  (* Side input statically 1 but hazardous (OR of a rising and a falling
     signal). A transition to the controlling value tolerates the hazard; a
     transition to the non-controlling value does not. *)
  let c = Circuit.create () in
  let p = Circuit.add_input c in
  let q = Circuit.add_input c in
  let r = Circuit.add_input c in
  let side = Circuit.add_gate c Gate.Or [| q; r |] in
  let g = Circuit.add_gate c Gate.And [| p; side |] in
  Circuit.mark_output c g;
  let path = [| p; g |] in
  (* q: 0->1, r: 1->0 keeps side at static 1 with a possible glitch *)
  (match
     Robust.detects_vectors c ~v1:[| true; false; true |] ~v2:[| false; true; false |] path
   with
  | Some Robust.Falling -> ()
  | Some Robust.Rising | None ->
    Alcotest.fail "falling to controlling tolerates a hazardous stable side");
  match
    Robust.detects_vectors c ~v1:[| false; false; true |] ~v2:[| true; true; false |] path
  with
  | None -> ()
  | Some _ ->
    Alcotest.fail "rising to non-controlling requires a hazard-free side"

let test_count_matches_marking () =
  (* count_robust (DP) must equal the number of faults the marking DFS finds
     on a fresh campaign state; cross-check via per-path Robust.detects. *)
  for seed = 1 to 8 do
    let c = random_circuit ~n_pi:5 ~n_gates:15 seed in
    let cmp = Compiled.of_circuit c in
    let rng = Rng.create (Int64.of_int (seed * 31)) in
    let v1 = Array.init 5 (fun _ -> Rng.bool rng) in
    let v2 = Array.init 5 (fun _ -> Rng.bool rng) in
    let waves = Wave.simulate cmp ~v1 ~v2 in
    let dp = Pdf_campaign.count_robust cmp waves in
    let brute =
      List.length
        (List.filter
           (fun p -> Robust.detects cmp waves p <> None)
           (Paths.enumerate c))
    in
    check int_ (Printf.sprintf "seed %d count" seed) brute dp
  done

let test_pdf_campaign_runs () =
  let c = c17 () in
  let r =
    Pdf_campaign.exec
      { Pdf_campaign.default with max_pairs = 20_000; stop_window = 2_000; seed = 17L }
      c
  in
  check int_ "paths" 11 r.Pdf_campaign.total_paths;
  check int_ "faults" 22 r.Pdf_campaign.total_faults;
  check bool_ "detects most of c17" true (r.Pdf_campaign.detected > 10);
  check bool_ "detected bounded" true (r.Pdf_campaign.detected <= 22);
  (* determinism *)
  let r2 =
    Pdf_campaign.exec
      { Pdf_campaign.default with max_pairs = 20_000; stop_window = 2_000; seed = 17L }
      c
  in
  check int_ "deterministic" r.Pdf_campaign.detected r2.Pdf_campaign.detected

let test_pdf_campaign_against_enumeration () =
  (* On a small circuit, campaign detection must equal the union over applied
     tests of per-path robust detection. We replicate the campaign's RNG. *)
  let c = mixed () in
  let cmp = Compiled.of_circuit c in
  let paths = Paths.enumerate c in
  let detected = Hashtbl.create 32 in
  let rng = Rng.create 23L in
  let pairs = 2_000 in
  for _ = 1 to pairs do
    let v1 = Array.init 3 (fun _ -> Rng.bool rng) in
    let v2 = Array.init 3 (fun _ -> Rng.bool rng) in
    let waves = Wave.simulate cmp ~v1 ~v2 in
    List.iter
      (fun p ->
        match Robust.detects cmp waves p with
        | Some dir -> Hashtbl.replace detected (p, dir) ()
        | None -> ())
      paths
  done;
  let r =
    Pdf_campaign.exec
      { Pdf_campaign.default with max_pairs = pairs; stop_window = pairs; seed = 23L }
      c
  in
  check int_ "union matches campaign" (Hashtbl.length detected) r.Pdf_campaign.detected

let suite =
  [
    ("wave algebra: AND", `Quick, test_wave_and_rules);
    ("wave algebra: OR/XOR/NOR", `Quick, test_wave_or_xor_rules);
    ("wave sim endpoints = two logic sims", `Quick, test_wave_simulation_endpoints);
    ("robust: inverter chain", `Quick, test_robust_detection_inverter_chain);
    ("robust: side-input conditions", `Quick, test_robust_side_input_conditions);
    ("robust: hazard asymmetry", `Quick, test_robust_hazard_asymmetry);
    ("count_robust DP = path enumeration", `Quick, test_count_matches_marking);
    ("pdf campaign on c17", `Quick, test_pdf_campaign_runs);
    ("pdf campaign matches brute-force union", `Quick, test_pdf_campaign_against_enumeration);
  ]
