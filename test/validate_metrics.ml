(* CI helper for the @metrics-smoke alias: validate that a --metrics json
   document parses and carries the documented keys (DESIGN.md §9 schema).

   Usage: validate_metrics.exe FILE *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_metrics: " ^ m); exit 1) fmt

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else die "usage: validate_metrics FILE" in
  let text = In_channel.with_open_bin file In_channel.input_all in
  let doc =
    match Obs_json.parse text with
    | Ok doc -> doc
    | Error msg -> die "%s: invalid JSON: %s" file msg
  in
  if Obs_json.member "schema_version" doc <> Some (Obs_json.Int 1) then
    die "%s: schema_version 1 missing" file;
  if Obs_json.member "enabled" doc <> Some (Obs_json.Bool true) then
    die "%s: enabled flag missing or false" file;
  let counters =
    match Obs_json.member "counters" doc with
    | Some (Obs_json.Obj kvs) -> kvs
    | _ -> die "%s: counters object missing" file
  in
  (match List.assoc_opt "fsim.patterns" counters with
  | Some (Obs_json.Int n) when n > 0 -> ()
  | Some _ | None -> die "%s: counter fsim.patterns missing or not positive" file);
  if not (List.mem_assoc "pool.chunks" counters) then
    die "%s: counter pool.chunks missing" file;
  (match Obs_json.member "histograms" doc with
  | Some (Obs_json.Obj _) -> ()
  | _ -> die "%s: histograms object missing" file);
  (match Obs_json.member "trace" doc with
  | Some (Obs_json.List _) -> ()
  | _ -> die "%s: trace list missing" file);
  Printf.printf "%s: metrics document valid\n" file
