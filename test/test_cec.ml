(* SAT-based equivalence checking: solver, encoder and miter tests.

   The CEC result is cross-validated against the simulation oracle in both
   directions: counterexamples are replayed through Eval.run (also done
   internally by Cec.check), and Equivalent verdicts are compared with
   Eval.equivalent_exhaustive on small circuits. *)

open Helpers

(* --- tiny SAT instances --------------------------------------------------- *)

let test_sat_basics () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [| Sat.lit a; Sat.lit b |];
  Sat.add_clause s [| Sat.neg (Sat.lit a) |];
  (match Sat.solve s with
  | Sat.Sat ->
    check bool_ "a false" false (Sat.value s a);
    check bool_ "b true" true (Sat.value s b)
  | Sat.Unsat | Sat.Unknown -> Alcotest.fail "expected SAT");
  let s = Sat.create () in
  let a = Sat.new_var s in
  Sat.add_clause s [| Sat.lit a |];
  Sat.add_clause s [| Sat.neg (Sat.lit a) |];
  (match Sat.solve s with
  | Sat.Unsat -> ()
  | Sat.Sat | Sat.Unknown -> Alcotest.fail "expected UNSAT")

(* Pigeonhole PHP(n+1, n): n+1 pigeons into n holes, classic UNSAT family
   that actually exercises conflict analysis and restarts. *)
let php pigeons holes =
  let s = Sat.create () in
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Sat.new_var s)) in
  for p = 0 to pigeons - 1 do
    Sat.add_clause s (Array.init holes (fun h -> Sat.lit v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Sat.add_clause s [| Sat.neg (Sat.lit v.(p1).(h)); Sat.neg (Sat.lit v.(p2).(h)) |]
      done
    done
  done;
  s

let test_sat_pigeonhole () =
  (match Sat.solve (php 5 4) with
  | Sat.Unsat -> ()
  | Sat.Sat | Sat.Unknown -> Alcotest.fail "PHP(5,4) must be UNSAT");
  (match Sat.solve (php 4 4) with
  | Sat.Sat -> ()
  | Sat.Unsat | Sat.Unknown -> Alcotest.fail "PHP(4,4) must be SAT");
  (* The conflict budget turns a hard instance into Unknown, not a hang. *)
  match
    Sat.solve
      ~options:{ Sat.Options.default with Sat.Options.budget = Some 5 }
      (php 7 6)
  with
  | Sat.Unknown -> ()
  | Sat.Sat -> Alcotest.fail "PHP(7,6) must not be SAT"
  | Sat.Unsat -> () (* a tiny budget may still suffice; fine either way *)

(* --- equivalence of structurally different implementations ----------------- *)

let test_demorgan_equivalent () =
  let build_and () =
    let c = Circuit.create ~name:"and" () in
    let a = Circuit.add_input ~name:"a" c in
    let b = Circuit.add_input ~name:"b" c in
    let g = Circuit.add_gate c Gate.And [| a; b |] in
    Circuit.mark_output ~name:"y" c g;
    c
  in
  let build_nor () =
    let c = Circuit.create ~name:"nor-form" () in
    let a = Circuit.add_input ~name:"a" c in
    let b = Circuit.add_input ~name:"b" c in
    let na = Circuit.add_gate c Gate.Not [| a |] in
    let nb = Circuit.add_gate c Gate.Not [| b |] in
    let g = Circuit.add_gate c Gate.Nor [| na; nb |] in
    Circuit.mark_output ~name:"y" c g;
    c
  in
  match Cec.check (build_and ()) (build_nor ()) with
  | Cec.Equivalent -> ()
  | v -> Alcotest.failf "expected equivalent, got %a" Cec.pp_verdict v

let test_constant_equivalent () =
  (* x AND NOT x == CONST0, via a nontrivial encoding path. *)
  let lhs =
    let c = Circuit.create () in
    let x = Circuit.add_input ~name:"x" c in
    let nx = Circuit.add_gate c Gate.Not [| x |] in
    let g = Circuit.add_gate c Gate.And [| x; nx |] in
    Circuit.mark_output ~name:"y" c g;
    c
  in
  let rhs =
    let c = Circuit.create () in
    let _ = Circuit.add_input ~name:"x" c in
    let z = Circuit.add_const c false in
    Circuit.mark_output ~name:"y" c z;
    c
  in
  match Cec.check lhs rhs with
  | Cec.Equivalent -> ()
  | v -> Alcotest.failf "expected equivalent, got %a" Cec.pp_verdict v

let test_name_matching () =
  (* Same function, inputs declared in a different order: name matching must
     line them up. f = a AND (b OR c). *)
  let build order =
    let c = Circuit.create () in
    let ids = Hashtbl.create 3 in
    List.iter (fun n -> Hashtbl.add ids n (Circuit.add_input ~name:n c)) order;
    let g1 =
      Circuit.add_gate c Gate.Or [| Hashtbl.find ids "b"; Hashtbl.find ids "c" |]
    in
    let g2 = Circuit.add_gate c Gate.And [| Hashtbl.find ids "a"; g1 |] in
    Circuit.mark_output ~name:"y" c g2;
    c
  in
  (match Cec.check (build [ "a"; "b"; "c" ]) (build [ "c"; "a"; "b" ]) with
  | Cec.Equivalent -> ()
  | v -> Alcotest.failf "expected equivalent, got %a" Cec.pp_verdict v);
  (* Positionally they differ — drop the names to verify the detector sees
     a real difference. *)
  let anon order =
    let c = build order in
    let c' = Circuit.create () in
    let ids = Hashtbl.create 3 in
    Array.iter
      (fun id ->
        Hashtbl.add ids (Option.get (Circuit.node_name c id)) (Circuit.add_input c'))
      (Circuit.inputs c);
    let g1 = Circuit.add_gate c' Gate.Or [| Hashtbl.find ids "b"; Hashtbl.find ids "c" |] in
    let g2 = Circuit.add_gate c' Gate.And [| Hashtbl.find ids "a"; g1 |] in
    Circuit.mark_output c' g2;
    c'
  in
  match Cec.check (anon [ "a"; "b"; "c" ]) (anon [ "c"; "a"; "b" ]) with
  | Cec.Counterexample _ -> ()
  | v -> Alcotest.failf "expected counterexample, got %a" Cec.pp_verdict v

let test_interface_mismatch () =
  let one_input =
    let c = Circuit.create () in
    let x = Circuit.add_input ~name:"x" c in
    Circuit.mark_output ~name:"y" c x;
    c
  in
  Alcotest.check_raises "input counts"
    (Cec.Interface_mismatch "input counts differ: 5 vs 1") (fun () ->
      ignore (Cec.check (c17 ()) one_input))

(* --- hand-mutated miters must be SAT, with a replayable counterexample ----- *)

(* Apply [mutate] to a copy of [c]; if the mutation really changed the
   function (checked with the exhaustive oracle), Cec.check must produce a
   counterexample whose replay through Eval.run distinguishes the pair. *)
let expect_cex name c mutate =
  let m = Circuit.copy c in
  mutate m;
  let really_different = not (Eval.equivalent_exhaustive c m) in
  check bool_ (name ^ ": mutation changed the function") true really_different;
  match Cec.check c m with
  | Cec.Counterexample cex ->
    let oa = Eval.run c cex and ob = Eval.run m cex in
    check bool_ (name ^ ": replay distinguishes") true (oa <> ob)
  | v -> Alcotest.failf "%s: expected counterexample, got %a" name Cec.pp_verdict v

let mutated_gate_kind c =
  (* c17: flip the last NAND to AND. *)
  let last = ref (-1) in
  Circuit.iter_live c (fun id -> if Circuit.kind c id = Gate.Nand then last := id);
  Circuit.set_kind c !last Gate.And

let mutated_fanin c =
  (* Rewire one fanin of the last gate to primary input 0. *)
  let last = ref (-1) in
  Circuit.iter_live c (fun id -> if Circuit.kind c id = Gate.Nand then last := id);
  let fins = Array.copy (Circuit.fanins c !last) in
  fins.(0) <- (Circuit.inputs c).(0);
  Circuit.set_fanins c !last fins

let test_mutations () =
  expect_cex "kind flip" (c17 ()) mutated_gate_kind;
  expect_cex "fanin rewire" (c17 ()) mutated_fanin;
  expect_cex "mixed: xor to xnor" (mixed ()) (fun m ->
      Circuit.iter_live m (fun id ->
          if Circuit.kind m id = Gate.Xor then Circuit.set_kind m id Gate.Xnor))

(* --- pool path ------------------------------------------------------------- *)

let test_pool_verdicts () =
  let c = c17 () in
  let m = Circuit.copy c in
  mutated_gate_kind m;
  Pool.with_pool ~domains:2 (fun pool ->
      (match Cec.check ~pool c (Circuit.copy c) with
      | Cec.Equivalent -> ()
      | v -> Alcotest.failf "pool: expected equivalent, got %a" Cec.pp_verdict v);
      match (Cec.check c m, Cec.check ~pool c m) with
      | Cec.Counterexample v1, Cec.Counterexample v2 ->
        check bool_ "same counterexample serial vs pool" true (v1 = v2)
      | v, _ -> Alcotest.failf "pool: expected counterexample, got %a" Cec.pp_verdict v)

(* --- engine integration: unsound rewrites are refused ---------------------- *)

let test_engine_refuses_unsound () =
  (* Corrupt the first accepted replacement via the engine's fault-injection
     hook. The corruption happens after local verification, so only the
     whole-circuit miter (verify:`Full) can catch it; the engine must roll
     the splice back and still finish with an equivalent circuit. *)
  let reference = c17 () in
  let c = Circuit.copy reference in
  let opts =
    {
      Engine.default_options with
      Engine.verify = `Full;
      inject_unsound = 1;
      seed = 7L;
    }
  in
  let stats = Engine.optimize Engine.Gates opts c in
  check bool_ "at least one miter check ran" true (stats.Engine.verify_checks >= 1);
  check bool_ "the corrupted replacement was refused" true
    (stats.Engine.verify_refused >= 1);
  check bool_ "final circuit equivalent to the original" true
    (Eval.equivalent_exhaustive reference c);
  (* Sanity: the same run without injection refuses nothing. *)
  let c2 = Circuit.copy reference in
  let stats2 =
    Engine.optimize Engine.Gates
      { opts with Engine.inject_unsound = 0 }
      c2
  in
  check int_ "clean run refuses nothing" 0 stats2.Engine.verify_refused;
  check bool_ "clean run still equivalent" true
    (Eval.equivalent_exhaustive reference c2)

(* --- qcheck: agreement with the exhaustive oracle -------------------------- *)

let circuit_of_seed seed =
  let n_pi = 3 + (seed mod 8) in
  (* 3..10 inputs *)
  let n_gates = 6 + (seed * 7 mod 40) in
  random_circuit ~n_pi ~n_gates ~n_po:3 seed

let qcheck_matches_exhaustive =
  QCheck.Test.make ~count:60 ~name:"cec agrees with exhaustive equivalence"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (s1, s2) ->
      let c1 = circuit_of_seed s1 in
      let c2 = circuit_of_seed s2 in
      QCheck.assume (Circuit.num_inputs c1 = Circuit.num_inputs c2);
      let expected = Eval.equivalent_exhaustive c1 c2 in
      match Cec.check c1 c2 with
      | Cec.Equivalent -> expected
      | Cec.Counterexample cex ->
        (not expected) && Eval.run c1 cex <> Eval.run c2 cex
      | Cec.Unknown _ -> false)

let qcheck_copy_equivalent =
  QCheck.Test.make ~count:60 ~name:"cec proves function-preserving rewrites"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c = circuit_of_seed seed in
      (* A chain of function-preserving transformations: structural cleanup
         then dense renumbering — structurally different, same function. *)
      let m = Circuit.copy c in
      ignore (Cleanup.propagate_constants m);
      ignore (Cleanup.collapse_wires m);
      let m, _ = Circuit.compact m in
      match Cec.check c m with
      | Cec.Equivalent -> true
      | Cec.Counterexample _ | Cec.Unknown _ -> false)

let suite =
  [
    Alcotest.test_case "sat basics" `Quick test_sat_basics;
    Alcotest.test_case "sat pigeonhole + budget" `Quick test_sat_pigeonhole;
    Alcotest.test_case "De Morgan forms equivalent" `Quick test_demorgan_equivalent;
    Alcotest.test_case "constant equivalence" `Quick test_constant_equivalent;
    Alcotest.test_case "input matching by name" `Quick test_name_matching;
    Alcotest.test_case "interface mismatch" `Quick test_interface_mismatch;
    Alcotest.test_case "mutations yield counterexamples" `Quick test_mutations;
    Alcotest.test_case "pool path matches serial" `Quick test_pool_verdicts;
    Alcotest.test_case "engine refuses unsound rewrites" `Quick
      test_engine_refuses_unsound;
  ]

let qchecks = [ qcheck_matches_exhaustive; qcheck_copy_equivalent ]
