(* Incremental, region-parallel resynthesis (DESIGN.md §13): dirty-region
   tracking, deferred splice commits, the enumeration dedup table and the
   pool work-size cutoff. The load-bearing property is bit-identity — every
   incremental/batched/parallel configuration must reproduce the full
   re-enumeration engine exactly. *)

open Helpers

(* --- Footprint ------------------------------------------------------------- *)

let test_footprint_set () =
  let s = Footprint.create 1 in
  check int_ "empty" 0 (Footprint.count s);
  check bool_ "no member" false (Footprint.mem s 0);
  Footprint.add s 0;
  Footprint.add s 100 (* forces growth *);
  Footprint.add s 100;
  check int_ "two members" 2 (Footprint.count s);
  check bool_ "grown member" true (Footprint.mem s 100);
  check bool_ "out of range" false (Footprint.mem s 101);
  check bool_ "negative" false (Footprint.mem s (-1));
  Footprint.remove s 100;
  Footprint.remove s 100;
  check int_ "after remove" 1 (Footprint.count s);
  let all = Footprint.create ~all:true 4 in
  check int_ "all-dirty" 4 (Footprint.count all);
  check bool_ "all member" true (Footprint.mem all 3)

let test_footprint_cone () =
  (* mixed(): nb = NOT b feeds x1 and x2; x3 = XOR(x1, x2). The fanout cone
     of nb is {nb, x1, x2, x3}; the inputs a, b, d stay clean. *)
  let c = mixed () in
  let order = Circuit.topo_order c in
  let nb = order.(3) in
  let s = Footprint.create (Circuit.size c) in
  let added = Footprint.mark_fanout_cone c s [ nb ] in
  check int_ "cone size" 4 added;
  check int_ "count agrees" 4 (Footprint.count s);
  check bool_ "nb dirty" true (Footprint.mem s nb);
  Array.iteri
    (fun i id ->
      if i < 3 then check bool_ "input clean" false (Footprint.mem s id))
    order;
  (* re-marking from inside the cone adds nothing new *)
  check int_ "idempotent" 0 (Footprint.mark_fanout_cone c s [ order.(4) ]);
  (* a fresh seed outside the cone adds just itself (inputs have their
     whole fanout already dirty here) *)
  check int_ "input seed" 1 (Footprint.mark_fanout_cone c s [ order.(1) ])

let test_footprint_setops () =
  (* clear keeps the backing store but empties the membership *)
  let s = Footprint.create 4 in
  Footprint.add s 2;
  Footprint.add s 9;
  Footprint.clear s;
  check int_ "cleared" 0 (Footprint.count s);
  check bool_ "cleared member" false (Footprint.mem s 2);
  Footprint.add s 9;
  check int_ "reusable after clear" 1 (Footprint.count s);
  (* intersects: word-level fast path and byte tail, across growth *)
  let a = Footprint.create 4 and b = Footprint.create 200 in
  check bool_ "empty vs empty" false (Footprint.intersects a b);
  Footprint.add a 3;
  Footprint.add b 100;
  check bool_ "disjoint" false (Footprint.intersects a b);
  Footprint.add a 100 (* grows [a] past [b]'s word boundary *);
  check bool_ "overlap" true (Footprint.intersects a b);
  check bool_ "symmetric" true (Footprint.intersects b a);
  Footprint.remove a 100;
  check bool_ "overlap removed" false (Footprint.intersects a b);
  (* union_into grows the destination and leaves the source unchanged *)
  let dst = Footprint.create 2 in
  Footprint.add dst 1;
  Footprint.union_into dst b;
  check bool_ "union member" true (Footprint.mem dst 100);
  check int_ "union count" 2 (Footprint.count dst);
  check int_ "source unchanged" 1 (Footprint.count b);
  Footprint.union_into dst b (* idempotent *);
  check int_ "union idempotent" 2 (Footprint.count dst)

(* --- Worklist ordering ------------------------------------------------------- *)

(* Emulate the engine's contract: a popped root is processed, i.e. removed
   from the dirty set; un-popped ids stay dirty for the next rebuild. *)
let drain wl =
  let rec go acc =
    match Footprint.Worklist.pop wl with
    | None -> List.rev acc
    | Some id ->
      Footprint.remove (Footprint.Worklist.fp wl) id;
      go (id :: acc)
  in
  go []

let test_worklist_ordering () =
  (* all-dirty seed pops in descending topological position *)
  let wl = Footprint.Worklist.create ~all:true 4 in
  Footprint.Worklist.start_pass wl ~pos:[| 0; 1; 2; 3 |];
  check (Alcotest.list int_) "descending" [ 3; 2; 1; 0 ] (drain wl);
  (* ...of the *position*, not the id: a permuted table reorders pops *)
  let wl = Footprint.Worklist.create ~all:true 4 in
  Footprint.Worklist.start_pass wl ~pos:[| 3; 2; 1; 0 |];
  check (Alcotest.list int_) "by position" [ 0; 1; 2; 3 ] (drain wl);
  (* track:false degrades to a plain set wrapper *)
  let wl = Footprint.Worklist.create ~all:true ~track:false 4 in
  Footprint.Worklist.start_pass wl ~pos:[| 0; 1; 2; 3 |];
  check bool_ "untracked pops nothing" true (Footprint.Worklist.pop wl = None);
  check int_ "untracked set intact" 4 (Footprint.count (Footprint.Worklist.fp wl))

let test_worklist_cursor () =
  (* The sweep-cascade boundary case: a splice at the cursor re-dirties an
     upstream root (smaller position), which the same pass must still
     reach; a downstream push (larger position) waits for the next pass. *)
  let wl = Footprint.Worklist.create 8 in
  let pos = Array.init 8 (fun i -> i) in
  Footprint.Worklist.push wl 6;
  Footprint.Worklist.start_pass wl ~pos;
  check (Alcotest.option int_) "first pop" (Some 6) (Footprint.Worklist.pop wl);
  Footprint.remove (Footprint.Worklist.fp wl) 6;
  Footprint.Worklist.push wl 2 (* upstream: re-enqueued into this pass *);
  Footprint.Worklist.push wl 2 (* duplicate push is absorbed *);
  Footprint.Worklist.push wl 7 (* downstream: deferred *);
  check (Alcotest.list int_) "upstream reached once" [ 2 ] (drain wl);
  check bool_ "deferred id still dirty" true
    (Footprint.mem (Footprint.Worklist.fp wl) 7);
  Footprint.Worklist.start_pass wl ~pos;
  check (Alcotest.list int_) "next pass picks deferral" [ 7 ] (drain wl);
  (* an id dirtied mid-pass with no position (freshly spliced) also waits *)
  let wl = Footprint.Worklist.create 4 in
  Footprint.Worklist.push wl 3;
  Footprint.Worklist.start_pass wl ~pos:(Array.init 4 (fun i -> i));
  check (Alcotest.option int_) "pop placed" (Some 3) (Footprint.Worklist.pop wl);
  Footprint.remove (Footprint.Worklist.fp wl) 3;
  Footprint.Worklist.push wl 9 (* beyond the position table *);
  check bool_ "unplaced id deferred" true (Footprint.Worklist.pop wl = None);
  Footprint.Worklist.start_pass wl ~pos:(Array.init 10 (fun i -> i));
  check (Alcotest.list int_) "placed next pass" [ 9 ] (drain wl)

(* --- Subcircuit dedup reuse ------------------------------------------------- *)

let test_enumerate_dedup_reuse () =
  let dedup = Subcircuit.dedup () in
  let same_on c =
    Array.iter
      (fun g ->
        match Circuit.kind c g with
        | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
        | _ ->
          let fresh = Subcircuit.enumerate ~k:4 ~max_candidates:16 c g in
          let reused = Subcircuit.enumerate ~dedup ~k:4 ~max_candidates:16 c g in
          if fresh <> reused then
            Alcotest.failf "root %d: dedup reuse changed enumeration" g)
      (Circuit.topo_order c)
  in
  same_on (c17 ());
  same_on (mixed ());
  for seed = 1 to 5 do
    same_on (random_circuit ~n_pi:6 ~n_gates:25 seed)
  done

(* --- Pool work-size cutoff -------------------------------------------------- *)

let test_pool_serial_cutoff () =
  Pool.with_pool ~domains:4 (fun pool ->
      let n = 100 in
      let slots = Array.make n (-1) in
      Pool.for_chunks pool ~serial_below:1000 ~n (fun ~slot ~lo ~hi ->
          for i = lo to hi - 1 do
            slots.(i) <- slot
          done);
      check bool_ "below cutoff stays on the calling domain" true
        (Array.for_all (fun s -> s = 0) slots);
      let input = Array.init 257 (fun i -> i) in
      let expect = Array.map (fun x -> x * 3) input in
      check bool_ "map below cutoff" true
        (Pool.map pool ~serial_below:1000 (fun x -> x * 3) input = expect);
      check bool_ "map above cutoff" true
        (Pool.map pool ~serial_below:10 (fun x -> x * 3) input = expect);
      check bool_ "map at boundary" true
        (Pool.map pool ~serial_below:257 (fun x -> x * 3) input = expect))

(* --- Bit-identity: incremental = full re-enumeration ------------------------ *)

let fingerprint objective options c0 =
  let c = Circuit.copy c0 in
  let stats =
    match objective with
    | Engine.Gates -> Procedure2.run ~options c
    | Engine.Paths -> Procedure3.run ~options c
  in
  Check.validate c;
  (stats, Bench_format.to_string c)

let base =
  { Engine.default_options with Engine.k = 4; max_candidates = 16; max_passes = 8 }

let full = { base with Engine.incremental = false }

(* [base] inherits the defaults: incremental, worklist walk, graph
   scheduler, commit_batch 8. The variants cover both walks and both
   schedulers — every row must reproduce the full re-enumeration walk
   bit-exactly. *)
let variants =
  [
    ( "scan serial-commit",
      { base with Engine.worklist = false; commit_batch = 1 } );
    ( "scan flush-batched",
      { base with Engine.worklist = false; scheduler = Engine.Flush; commit_batch = 4 } );
    ("worklist flush-batched", { base with Engine.scheduler = Engine.Flush });
    ("worklist graph serial-commit", { base with Engine.commit_batch = 1 });
    ("worklist graph (defaults)", base);
    ("worklist graph domains=3", { base with Engine.domains = 3 });
    ("no-id-cache", { base with Engine.id_cache = false });
  ]

let identical_on objective c seed =
  let want = fingerprint objective full c in
  List.iter
    (fun (label, options) ->
      if fingerprint objective options c <> want then
        Alcotest.failf "seed %d: incremental (%s) diverged from full path" seed
          label)
    variants

let test_incremental_identity_gates () =
  identical_on Engine.Gates (c17 ()) 0;
  for seed = 120 to 130 do
    identical_on Engine.Gates (random_circuit ~n_pi:6 ~n_gates:40 ~n_po:4 seed) seed
  done

let test_incremental_identity_paths () =
  for seed = 131 to 138 do
    identical_on Engine.Paths (random_circuit ~n_pi:6 ~n_gates:40 ~n_po:4 seed) seed
  done

let test_incremental_identity_extensions () =
  (* don't-cares and multi-unit covers exercise the per-candidate rng and
     the care-set verification path *)
  let ext = { base with Engine.use_dontcares = true; max_units = 2 } in
  let full = { ext with Engine.incremental = false } in
  for seed = 140 to 144 do
    let c = random_circuit ~n_pi:6 ~n_gates:32 ~n_po:4 seed in
    let want = fingerprint Engine.Gates full c in
    let got =
      fingerprint Engine.Gates
        { ext with Engine.incremental = true; commit_batch = 4 }
        c
    in
    if got <> want then
      Alcotest.failf "seed %d: incremental extensions diverged" seed
  done

let test_incremental_equivalence () =
  (* The optimised circuit must stay functionally equal to the original
     under the default (incremental, batched) options. *)
  for seed = 150 to 156 do
    let c = random_circuit ~n_pi:6 ~n_gates:36 ~n_po:4 seed in
    let reference = Circuit.copy c in
    ignore (Procedure2.run ~options:base c);
    Check.validate c;
    if not (Eval.equivalent_exhaustive reference c) then
      Alcotest.failf "seed %d: incremental engine broke the function" seed
  done

let test_incremental_skips_clean_roots () =
  (* A multi-pass run must actually skip work. The scan walk visits every
     root and skips the clean ones (the skip counter moves); the worklist
     walk never visits them at all (the skip counter stays put and the pop
     counter stays well below a full visit count). *)
  let skipped = Obs.Counter.make "engine.reenum_skipped" in
  let candidates = Obs.Counter.make "engine.candidates" in
  let popped = Obs.Counter.make "engine.worklist_popped" in
  Obs.enable ();
  Fun.protect ~finally:Obs.disable (fun () ->
      let c = random_circuit ~n_pi:8 ~n_gates:120 ~n_po:6 160 in
      let s0 = Obs.Counter.value skipped in
      let stats =
        Procedure2.run ~options:{ base with Engine.worklist = false } c
      in
      let s1 = Obs.Counter.value skipped in
      if stats.Engine.replacements > 0 && stats.Engine.passes > 1 then
        check bool_ "clean roots were skipped" true (s1 - s0 > 0);
      (* the worklist walk pops instead of skipping *)
      let c2 = random_circuit ~n_pi:8 ~n_gates:120 ~n_po:6 160 in
      let s2 = Obs.Counter.value skipped in
      let p0 = Obs.Counter.value popped in
      let stats2 = Procedure2.run ~options:base c2 in
      check int_ "worklist walk never skip-scans" s2 (Obs.Counter.value skipped);
      let pops = Obs.Counter.value popped - p0 in
      check bool_ "worklist popped dirty roots" true (pops > 0);
      check bool_ "worklist pops below full visits" true
        (pops < stats2.Engine.passes * Circuit.size c2);
      (* and a --no-incremental run never skips, but re-enumerates more *)
      let c3 = random_circuit ~n_pi:8 ~n_gates:120 ~n_po:6 160 in
      let s3 = Obs.Counter.value skipped in
      let c0 = Obs.Counter.value candidates in
      ignore (Procedure2.run ~options:{ base with Engine.incremental = false } c3);
      check int_ "full path skips nothing" s3 (Obs.Counter.value skipped);
      check bool_ "full path enumerates at least as much" true
        (Obs.Counter.value candidates - c0 >= 0))

(* Sweep-cascade regression: [Replace.splice] ends in a sweep that can kill
   nodes upstream of the cut (a cut input left without consumers dies, then
   its fanins lose a consumer, ...). Survivors on that boundary change
   fanout degree, which removability accounting reads, so roots downstream
   of them must be re-dirtied. These seeds all diverged (full found more
   replacements than incremental) before the boundary marking in
   [Engine.commit_one]. *)
let test_sweep_cascade_boundary () =
  List.iter
    (fun seed ->
      let profile =
        {
          Circuit_gen.name = "incr";
          n_pi = 10;
          n_po = 6;
          n_gates = 70;
          depth = 8;
          combine_pct = 25;
          xor_pct = 5;
          seed = Int64.of_int seed;
        }
      in
      let c = Circuit_gen.generate profile in
      let want = fingerprint Engine.Gates full c in
      List.iter
        (fun (label, options) ->
          if fingerprint Engine.Gates options c <> want then
            Alcotest.failf "seed %d: incremental (%s) missed a swept-boundary region"
              seed label)
        variants)
    [ 83418; 83420; 83490; 83566 ]

(* --- qcheck: identity over generated circuits -------------------------------- *)

let gen_profile seed =
  {
    Circuit_gen.name = "incr";
    n_pi = 10;
    n_po = 6;
    n_gates = 70;
    depth = 8;
    combine_pct = 25;
    xor_pct = 5;
    seed = Int64.of_int seed;
  }

let prop_incremental_identity =
  QCheck.Test.make ~name:"incremental = full (circuit_gen)" ~count:6
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let c = Circuit_gen.generate (gen_profile seed) in
      let want = fingerprint Engine.Gates full c in
      List.for_all
        (fun (_, options) -> fingerprint Engine.Gates options c = want)
        variants)

(* Full worklist matrix: scheduler x domains x commit batch, every cell
   bit-identical to the full re-enumeration walk. *)
let worklist_matrix =
  List.concat_map
    (fun scheduler ->
      List.concat_map
        (fun domains ->
          List.map
            (fun commit_batch ->
              { base with Engine.scheduler; domains; commit_batch })
            [ 1; 8 ])
        [ 1; 3 ])
    [ Engine.Flush; Engine.Graph ]

let prop_worklist_matrix =
  QCheck.Test.make
    ~name:"worklist x {flush,graph} x domains x batch = full (circuit_gen)"
    ~count:4
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let c = Circuit_gen.generate (gen_profile seed) in
      let want = fingerprint Engine.Gates full c in
      List.for_all
        (fun options -> fingerprint Engine.Gates options c = want)
        worklist_matrix)

let suite =
  [
    ("footprint: set operations", `Quick, test_footprint_set);
    ("footprint: clear / intersects / union_into", `Quick, test_footprint_setops);
    ("footprint: fanout cone marking", `Quick, test_footprint_cone);
    ("worklist: topological pop order", `Quick, test_worklist_ordering);
    ("worklist: cursor and deferral", `Quick, test_worklist_cursor);
    ("enumerate: dedup reuse is invisible", `Quick, test_enumerate_dedup_reuse);
    ("pool: work-size cutoff", `Quick, test_pool_serial_cutoff);
    ("identity: gates objective", `Quick, test_incremental_identity_gates);
    ("identity: paths objective", `Quick, test_incremental_identity_paths);
    ("identity: don't-cares and multi-unit", `Quick, test_incremental_identity_extensions);
    ("equivalence under default options", `Quick, test_incremental_equivalence);
    ("second pass skips clean roots", `Quick, test_incremental_skips_clean_roots);
    ("sweep-cascade boundary re-dirtied", `Quick, test_sweep_cascade_boundary);
  ]

let qchecks = [ prop_incremental_identity; prop_worklist_matrix ]
