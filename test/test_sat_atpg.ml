(* SAT-powered ATPG: incremental-solver semantics, fault-miter soundness
   and exact redundancy proofs.

   Verdicts are cross-validated against the fault simulator in both
   directions: every Test vector must detect its fault under Fsim (also
   enforced internally by Sat_atpg.run), and Redundant verdicts are
   compared with exhaustive simulation of all 2^n input vectors on small
   circuits. *)

open Helpers

(* Exhaustive ground truth: is the fault detected by any input vector? *)
let detectable_exhaustive c f =
  let fsim = Fsim.create (Compiled.of_circuit c) in
  let n = Circuit.num_inputs c in
  let found = ref false in
  for v = 0 to (1 lsl n) - 1 do
    if not !found then begin
      let vec = Array.init n (fun i -> (v lsr i) land 1 = 1) in
      if Fsim.detect_single fsim f vec then found := true
    end
  done;
  !found

(* --- incremental solver semantics ----------------------------------------- *)

let test_solve_assuming_basics () =
  let s = Sat.create () in
  let a = Sat.new_var s and b = Sat.new_var s in
  Sat.add_clause s [| Sat.lit a; Sat.lit b |];
  (* Assuming ~a forces b. *)
  (match Sat.solve_assuming s [| Sat.neg (Sat.lit a) |] with
  | Sat.Sat ->
    check bool_ "a false under assumption" false (Sat.value s a);
    check bool_ "b true under assumption" true (Sat.value s b)
  | Sat.Unsat | Sat.Unknown -> Alcotest.fail "expected SAT under ~a");
  (* Assuming ~a and ~b contradicts the clause — but only under the
     assumptions: the instance itself stays alive. *)
  (match Sat.solve_assuming s [| Sat.neg (Sat.lit a); Sat.neg (Sat.lit b) |] with
  | Sat.Unsat -> ()
  | Sat.Sat | Sat.Unknown -> Alcotest.fail "expected UNSAT under ~a ~b");
  (match Sat.solve s with
  | Sat.Sat -> ()
  | Sat.Unsat | Sat.Unknown -> Alcotest.fail "instance must stay satisfiable");
  (* Clauses can be added after a solve; a top-level contradiction is
     permanent. *)
  Sat.add_clause s [| Sat.neg (Sat.lit a) |];
  Sat.add_clause s [| Sat.neg (Sat.lit b) |];
  (match Sat.solve s with
  | Sat.Unsat -> ()
  | Sat.Sat | Sat.Unknown -> Alcotest.fail "expected global UNSAT");
  match Sat.solve_assuming s [| Sat.lit a |] with
  | Sat.Unsat -> ()
  | Sat.Sat | Sat.Unknown -> Alcotest.fail "dead instance must stay UNSAT"

(* The same first query on a reused and a fresh solver is bit-identical:
   same outcome, same model, same statistics. Later queries on the reused
   solver keep their learned clauses, so only verdicts must agree. *)
let test_reuse_matches_fresh () =
  let c = c17 () in
  let encode () =
    let s = Sat.create () in
    let env = Cnf.create s in
    let pi_vars = Array.map (fun _ -> Sat.new_var s) (Circuit.inputs c) in
    let po = Cnf.encode env ~pi_lits:(Array.map Sat.lit pi_vars) c in
    (s, pi_vars, po)
  in
  let shared, pi_vars, po = encode () in
  Array.iteri
    (fun j lit_o ->
      List.iter
        (fun phase ->
          let assumption = if phase then lit_o else Sat.neg lit_o in
          let fresh_s, fresh_pi, fresh_po = encode () in
          let fresh_assumption =
            if phase then fresh_po.(j) else Sat.neg fresh_po.(j)
          in
          let shared_r = Sat.solve_assuming shared [| assumption |] in
          let fresh_r = Sat.solve_assuming fresh_s [| fresh_assumption |] in
          check bool_ "reused and fresh solver verdicts agree" true
            (shared_r = fresh_r);
          match (shared_r, fresh_r) with
          | Sat.Sat, Sat.Sat ->
            (* Both models must actually drive output j to [phase]. *)
            let vec vars s = Array.map (fun v -> Sat.value s v) vars in
            let out_shared = (Eval.run c (vec pi_vars shared)).(j) in
            let out_fresh = (Eval.run c (vec fresh_pi fresh_s)).(j) in
            check bool_ "shared model drives the output" phase out_shared;
            check bool_ "fresh model drives the output" phase out_fresh
          | _ -> ())
        [ false; true ])
    po

(* --- fault miters ---------------------------------------------------------- *)

(* Every verdict on every collapsed fault agrees with exhaustive
   simulation; Test vectors are replayed through Fsim. *)
let check_circuit_exact c =
  let engine = Sat_atpg.create c in
  let fsim = Fsim.create (Compiled.of_circuit c) in
  List.iter
    (fun f ->
      match Sat_atpg.run engine f with
      | Sat_atpg.Test v ->
        check bool_ "SAT vector detects the fault" true
          (Fsim.detect_single fsim f v);
        check bool_ "fault is exhaustively detectable" true
          (detectable_exhaustive c f)
      | Sat_atpg.Redundant ->
        check bool_ "Redundant fault is exhaustively undetectable" false
          (detectable_exhaustive c f)
      | Sat_atpg.Unknown _ ->
        Alcotest.fail "budget must not run out on a small circuit")
    (Fault.collapsed c)

let test_c17_exact () = check_circuit_exact (c17 ())
let test_mixed_exact () = check_circuit_exact (mixed ())

let test_random_exact () =
  for seed = 60 to 67 do
    check_circuit_exact (random_circuit ~n_pi:5 ~n_gates:14 seed)
  done

(* The shared-engine sweep and per-fault fresh engines give the same
   verdict for every fault (solver reuse must not change answers). *)
let test_escalate_matches_fresh () =
  for seed = 70 to 73 do
    let c = random_circuit ~n_pi:5 ~n_gates:16 seed in
    let faults = Fault.collapsed c in
    let engine = Sat_atpg.create c in
    List.iter
      (fun f ->
        let shared = Sat_atpg.run engine f in
        let fresh = Sat_atpg.run (Sat_atpg.create c) f in
        let tag = function
          | Sat_atpg.Test _ -> 0
          | Sat_atpg.Redundant -> 1
          | Sat_atpg.Unknown _ -> 2
        in
        check int_ "shared vs fresh engine verdict" (tag fresh) (tag shared))
      faults
  done

(* escalate covers the whole worklist and partitions it. *)
let test_escalate_partition () =
  let c = c17 () in
  let faults = Fault.collapsed c in
  let esc = Sat_atpg.escalate c faults in
  check int_ "everything escalated" (List.length faults) esc.Sat_atpg.escalated;
  check int_ "partitioned"
    (List.length faults)
    (List.length esc.Sat_atpg.tests
    + List.length esc.Sat_atpg.redundant
    + List.length esc.Sat_atpg.unknown);
  (* c17 is fully testable. *)
  check int_ "c17 has no redundancy" 0 (List.length esc.Sat_atpg.redundant);
  check int_ "c17 decided" 0 (List.length esc.Sat_atpg.unknown)

(* Redundancy.remove with SAT escalation must still preserve the function
   even when PODEM is crippled enough to abort constantly. *)
let test_remove_with_tiny_podem () =
  for seed = 80 to 83 do
    let c = random_circuit ~n_pi:5 ~n_gates:18 seed in
    let reference = Circuit.copy c in
    let limits = { Limits.default with Limits.podem_backtracks = 0 } in
    let _report = Redundancy.remove ~limits ~seed:9L c in
    check bool_ "function preserved under SAT-justified removal" true
      (Eval.equivalent_exhaustive reference c)
  done

(* --- qcheck: injected redundancies ---------------------------------------- *)

(* Splice a provably constant-0 net (a & ~a) into a fresh OR output: its
   stuck-at-0 fault can never be activated, so the exact engine must prove
   it redundant, and tying it off must not change the function. *)
let inject_redundancy seed =
  let c = random_circuit ~n_pi:4 ~n_gates:10 seed in
  let a = (Circuit.inputs c).(0) in
  let na = Circuit.add_gate c Gate.Not [| a |] in
  let z = Circuit.add_gate c Gate.And [| a; na |] in
  let carrier = (Circuit.outputs c).(0) in
  let y = Circuit.add_gate c Gate.Or [| carrier; z |] in
  Circuit.mark_output ~name:"inj" c y;
  (c, { Fault.site = Fault.Stem z; stuck = false })

let qcheck_injected_redundant =
  QCheck.Test.make ~count:40 ~name:"injected constant nets are proved redundant"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c, f = inject_redundancy seed in
      let engine = Sat_atpg.create c in
      (match Sat_atpg.run engine f with
      | Sat_atpg.Redundant -> ()
      | Sat_atpg.Test _ -> QCheck.Test.fail_report "constant net reported testable"
      | Sat_atpg.Unknown _ -> QCheck.Test.fail_report "budget ran out");
      true)

let qcheck_verdicts_exact =
  QCheck.Test.make ~count:25 ~name:"sat-atpg agrees with exhaustive simulation"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let c = random_circuit ~n_pi:4 ~n_gates:12 (seed mod 100_000) in
      let engine = Sat_atpg.create c in
      List.for_all
        (fun f ->
          match Sat_atpg.run engine f with
          | Sat_atpg.Test _ -> detectable_exhaustive c f
          | Sat_atpg.Redundant -> not (detectable_exhaustive c f)
          | Sat_atpg.Unknown _ -> false)
        (Fault.collapsed c))

let suite =
  [
    ("solve_assuming basics", `Quick, test_solve_assuming_basics);
    ("solver reuse matches fresh solver", `Quick, test_reuse_matches_fresh);
    ("c17 verdicts exact", `Quick, test_c17_exact);
    ("mixed verdicts exact", `Quick, test_mixed_exact);
    ("random circuits exact", `Quick, test_random_exact);
    ("shared engine matches fresh engines", `Quick, test_escalate_matches_fresh);
    ("escalate partitions the worklist", `Quick, test_escalate_partition);
    ("removal sound with crippled PODEM", `Quick, test_remove_with_tiny_podem);
  ]

let qchecks = [ qcheck_injected_redundant; qcheck_verdicts_exact ]
