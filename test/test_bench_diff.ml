(* Bench_diff: snapshot alignment, threshold logic and the exit-code
   contract (0 clean / 1 regression / 2 incomparable) behind
   `sft bench-diff`, exercised on synthetically perturbed snapshots. *)

open Helpers

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

(* A minimal but complete bench --json snapshot, parameterised on the
   fields the diff tool compares. *)
let snap ?(version = 2) ?(name = "micro") ?(gates = 170) ?(paths = 639)
    ?(wall = 1.5) ?(speedup = 1.8) ?(verdict = "equivalent") ?(detected = 50)
    () =
  Printf.sprintf
    {|{
  "schema_version": %d,
  "generator": "sft bench harness",
  "mode": "quick",
  "domains": 2,
  "only_circuits": null,
  "recommended_domains": 2,
  "sections": [
    {"id": "micro", "title": "Bechamel micro-benchmarks", "wall_seconds": %f}
  ],
  "circuits": [
    {"name": "%s", "inputs": 24, "outputs": 16, "gates2": %d, "paths": %d}
  ],
  "speedups": [
    {"kernel": "fault_sim_campaign", "circuit": "%s", "domains": 2,
     "serial_seconds": 1.0, "parallel_seconds": 0.5, "speedup": %f,
     "identical_results": true}
  ],
  "cec": [
    {"circuit": "%s", "pair": "orig-vs-p2", "verdict": "%s",
     "outputs_solved": 16, "decisions": 10, "conflicts": 0, "wall_seconds": 0.1}
  ],
  "trace_events": {"enabled": false, "rings": 0, "recorded": 0, "dropped": 0},
  "metrics": {"counters": {"fsim.faults_dropped": 420, "pdf.faults_detected": %d}}
}|}
    version wall name gates paths name speedup name verdict detected

let diff ?threshold ?metrics old_text new_text =
  Bench_diff.diff ?threshold ?metrics ~old_name:"old.json" ~old_text
    ~new_name:"new.json" ~new_text ()

let expect_exit label want result =
  check int_ (label ^ ": exit code") want (Bench_diff.exit_code result)

let test_identical_is_clean () =
  let s = snap () in
  let r = diff s s in
  expect_exit "identical snapshots" 0 r;
  match r with
  | Ok (report, Bench_diff.Clean) ->
    check bool_ "report names the circuit" true
      (String.length report > 0
      && contains ~affix:"micro" report)
  | Ok (_, Bench_diff.Regressions n) -> Alcotest.failf "%d phantom regressions" n
  | Error msg -> Alcotest.failf "identical snapshots incomparable: %s" msg

let test_gate_regression_detected () =
  (* +10 gates at threshold 0: the regression path the CI gate relies on. *)
  let r = diff ~threshold:0. ~metrics:[ "gates"; "paths" ] (snap ()) (snap ~gates:180 ()) in
  expect_exit "worse gates, threshold 0" 1 r;
  (match r with
  | Ok (report, Bench_diff.Regressions n) ->
    check int_ "exactly the gates row regressed" 1 n;
    check bool_ "report flags the regression" true
      (contains ~affix:"REGRESSION" report)
  | Ok (_, Bench_diff.Clean) -> Alcotest.fail "regression missed"
  | Error msg -> Alcotest.failf "incomparable: %s" msg);
  (* The same pair passes once the threshold absorbs the delta (10/170 < 10%). *)
  expect_exit "worse gates, threshold 10%" 0
    (diff ~threshold:10. ~metrics:[ "gates"; "paths" ] (snap ()) (snap ~gates:180 ()))

let test_improvement_is_clean () =
  let r =
    diff ~threshold:0. (snap ())
      (snap ~gates:150 ~paths:500 ~wall:1.0 ~speedup:2.5 ~detected:80 ())
  in
  expect_exit "all metrics improved" 0 r;
  match r with
  | Ok (report, _) ->
    check bool_ "improvements labelled" true
      (contains ~affix:"improved" report)
  | Error msg -> Alcotest.failf "incomparable: %s" msg

let test_coverage_drop_is_regression () =
  (* Fewer detected faults is worse even though the number got smaller:
     coverage is a higher-is-better metric. *)
  expect_exit "coverage drop" 1
    (diff ~threshold:5. ~metrics:[ "coverage" ] (snap ()) (snap ~detected:20 ()))

let test_cec_degradation_ignores_threshold () =
  let r =
    diff ~threshold:1000. (snap ())
      (snap ~verdict:"unknown (budget 100000 conflicts)" ())
  in
  expect_exit "lost equivalence proof" 1 r

let test_schema_mismatch_is_incomparable () =
  let r = diff (snap ~version:1 ()) (snap ()) in
  expect_exit "v1 vs v2" 2 r;
  match r with
  | Error msg ->
    check bool_ "error names both versions" true
      (contains ~affix:"v1" msg
      && contains ~affix:"v2" msg)
  | Ok _ -> Alcotest.fail "schema mismatch not rejected"

let test_unsupported_schema_is_incomparable () =
  expect_exit "future schema version" 2 (diff (snap ~version:99 ()) (snap ~version:99 ()))

let test_malformed_snapshot_is_incomparable () =
  expect_exit "malformed JSON" 2 (diff "{\"schema_version\": 2," (snap ()));
  expect_exit "not a snapshot" 2 (diff "{\"foo\": 1}" (snap ()))

let test_disjoint_sets_are_incomparable () =
  (* Restricted to circuit metrics, two snapshots about different circuits
     have no aligned rows — a vacuous "no regression" would be a lie. *)
  let r =
    diff ~metrics:[ "gates"; "paths" ] (snap ()) (snap ~name:"other" ())
  in
  expect_exit "disjoint circuits" 2 r

let test_unknown_metric_rejected () =
  expect_exit "unknown metric name" 2 (diff ~metrics:[ "bogus" ] (snap ()) (snap ()))

let suite =
  [
    ("identical snapshots diff clean", `Quick, test_identical_is_clean);
    ("gate regression trips the gate", `Quick, test_gate_regression_detected);
    ("improvements stay clean", `Quick, test_improvement_is_clean);
    ("coverage drop is a regression", `Quick, test_coverage_drop_is_regression);
    ("cec degradation ignores threshold", `Quick, test_cec_degradation_ignores_threshold);
    ("schema mismatch is incomparable", `Quick, test_schema_mismatch_is_incomparable);
    ("unsupported schema is incomparable", `Quick, test_unsupported_schema_is_incomparable);
    ("malformed snapshot is incomparable", `Quick, test_malformed_snapshot_is_incomparable);
    ("disjoint circuit sets are incomparable", `Quick, test_disjoint_sets_are_incomparable);
    ("unknown metric is rejected", `Quick, test_unknown_metric_rejected);
  ]
