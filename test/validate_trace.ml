(* CI helper for the @trace-smoke alias: validate that a --trace-out file is
   a well-formed Chrome trace-event JSON array (DESIGN.md §11).

   Checks, per the trace-event format:
     - the document is a JSON array of event objects;
     - every event carries string "name"/"ph" and integer "pid"/"tid";
     - "ph" is one of B, E, i, X, M;
     - all events share a single pid;
     - per tid, B and E events balance and nest properly (every E closes
       the most recent open B of the same name);
     - B/E/i/X events carry a non-negative numeric "ts" (and X a
       non-negative "dur").

   Usage: validate_trace.exe FILE *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_trace: " ^ m); exit 1) fmt

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else die "usage: validate_trace FILE" in
  let text = In_channel.with_open_bin file In_channel.input_all in
  let events =
    match Obs_json.parse text with
    | Ok (Obs_json.List events) -> events
    | Ok _ -> die "%s: top-level value is not an array" file
    | Error msg -> die "%s: invalid JSON: %s" file msg
  in
  let str_field ev key =
    match Obs_json.member key ev with
    | Some (Obs_json.String s) -> s
    | _ -> die "%s: event without string %S field" file key
  in
  let int_field ev key =
    match Obs_json.member key ev with
    | Some (Obs_json.Int n) -> n
    | _ -> die "%s: event without integer %S field" file key
  in
  let num_field ev key =
    match Obs_json.member key ev with
    | Some (Obs_json.Int n) -> float_of_int n
    | Some (Obs_json.Float f) -> f
    | _ -> die "%s: event without numeric %S field" file key
  in
  let pids = Hashtbl.create 4 in
  let tids = Hashtbl.create 8 in
  (* per-tid stack of open B event names *)
  let open_spans : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack_of tid =
    match Hashtbl.find_opt open_spans tid with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add open_spans tid s;
      s
  in
  let n_events = ref 0 in
  List.iter
    (fun ev ->
      incr n_events;
      let name = str_field ev "name" in
      let ph = str_field ev "ph" in
      Hashtbl.replace pids (int_field ev "pid") ();
      let tid = int_field ev "tid" in
      Hashtbl.replace tids tid ();
      (match ph with
      | "B" | "E" | "i" | "X" ->
        if num_field ev "ts" < 0. then die "%s: %s event %S with negative ts" file ph name
      | "M" -> ()
      | other -> die "%s: event %S with unknown phase %S" file name other);
      match ph with
      | "B" ->
        let s = stack_of tid in
        s := name :: !s
      | "E" -> (
        let s = stack_of tid in
        match !s with
        | top :: rest ->
          if top <> name then
            die "%s: tid %d: E %S closes open B %S (improper nesting)" file tid name top;
          s := rest
        | [] -> die "%s: tid %d: E %S without a matching B" file tid name)
      | "X" ->
        if num_field ev "dur" < 0. then die "%s: X event %S with negative dur" file name
      | _ -> ())
    events;
  if !n_events = 0 then die "%s: empty trace (no events recorded)" file;
  if Hashtbl.length pids <> 1 then
    die "%s: expected a single pid, found %d" file (Hashtbl.length pids);
  Hashtbl.iter
    (fun tid s ->
      match !s with
      | [] -> ()
      | top :: _ -> die "%s: tid %d: B %S left open at end of trace" file tid top)
    open_spans;
  Printf.printf "%s: trace valid (%d events, %d threads)\n" file !n_events
    (Hashtbl.length tids)
