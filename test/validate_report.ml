(* CI helper for the @journal-smoke alias: validate that an `sft report
   --json` document parses and carries the documented keys (DESIGN.md §16
   schema), and that the reported decision funnel holds.

   Usage: validate_report.exe FILE *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_report: " ^ m); exit 1) fmt

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else die "usage: validate_report FILE" in
  let text = In_channel.with_open_bin file In_channel.input_all in
  let doc =
    match Obs_json.parse text with
    | Ok doc -> doc
    | Error msg -> die "%s: invalid JSON: %s" file msg
  in
  if Obs_json.member "report_version" doc <> Some (Obs_json.Int 1) then
    die "%s: report_version 1 missing" file;
  if Obs_json.member "funnel_ok" doc <> Some (Obs_json.Bool true) then
    die "%s: top-level funnel_ok missing or false" file;
  let runs =
    match Obs_json.member "runs" doc with
    | Some (Obs_json.List (_ :: _ as runs)) -> runs
    | Some (Obs_json.List []) -> die "%s: runs list empty" file
    | _ -> die "%s: runs list missing" file
  in
  List.iteri
    (fun i run ->
      let need k =
        match Obs_json.member k run with
        | Some v -> v
        | None -> die "%s: runs[%d]: key %s missing" file i k
      in
      (match need "cmd" with
      | Obs_json.String _ -> ()
      | _ -> die "%s: runs[%d]: cmd not a string" file i);
      (match need "events" with
      | Obs_json.Int n when n > 0 -> ()
      | _ -> die "%s: runs[%d]: events missing or not positive" file i);
      (match need "truncated" with
      | Obs_json.Bool false -> ()
      | _ -> die "%s: runs[%d]: journal truncated" file i);
      (match need "funnel" with
      | Obs_json.Obj f ->
        let stage k =
          match List.assoc_opt k f with
          | Some (Obs_json.Int n) when n >= 0 -> n
          | _ -> die "%s: runs[%d]: funnel stage %s missing" file i k
        in
        let candidates = stage "candidates" and identified = stage "identified" in
        let verified = stage "verified" and committed = stage "committed" in
        if
          not
            (committed <= verified && verified <= identified
           && identified <= candidates)
        then
          die "%s: runs[%d]: funnel violated (%d -> %d -> %d -> %d)" file i
            candidates identified verified committed
      | _ -> die "%s: runs[%d]: funnel not an object" file i);
      (match need "phases" with
      | Obs_json.List (_ :: _) -> ()
      | _ -> die "%s: runs[%d]: phases missing or empty" file i);
      match need "runtime" with
      | Obs_json.Obj kvs ->
        if not (List.mem_assoc "samples" kvs) then
          die "%s: runs[%d]: runtime.samples missing" file i
      | _ -> die "%s: runs[%d]: runtime not an object" file i)
    runs;
  Printf.printf "%s: report document valid (%d run(s))\n" file (List.length runs)
