(* The sft.obs observability subsystem: atomic counters under domain pools,
   span nesting, the JSON exporter, and the guarantee that enabling probes
   never changes a computation's result. *)

open Helpers

(* Every test flips the global switch; leave the registry disabled and
   empty for whoever runs next. *)
let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let test_counter_atomic_under_pool () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.obs.atomic" in
      let h = Obs.Histogram.make "test.obs.atomic_h" in
      let n = 100_000 in
      Pool.with_pool ~domains:4 (fun pool ->
          Pool.for_chunks pool ~chunk:97 ~n (fun ~slot:_ ~lo ~hi ->
              for _ = lo to hi - 1 do
                Obs.Counter.incr c
              done;
              Obs.Counter.add c (hi - lo);
              Obs.Histogram.observe h (hi - lo)));
      check int_ "no lost increments across 4 domains" (2 * n) (Obs.Counter.value c);
      check int_ "histogram sum equals range total" n (Obs.Histogram.sum h))

let test_disabled_probes_record_nothing () =
  Obs.reset ();
  Obs.disable ();
  let c = Obs.Counter.make "test.obs.disabled" in
  let h = Obs.Histogram.make "test.obs.disabled_h" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Obs.Histogram.observe h 7;
  let r = Obs.Span.with_ "test.obs.disabled_span" (fun () -> 11) in
  check int_ "span passes the result through" 11 r;
  check int_ "disabled counter stays zero" 0 (Obs.Counter.value c);
  check int_ "disabled histogram stays empty" 0 (Obs.Histogram.count h);
  check bool_ "disabled span records nothing" true
    (not
       (List.exists
          (fun s -> s.Obs.Span.name = "test.obs.disabled_span")
          (Obs.Span.snapshot ())))

let test_span_nesting () =
  with_obs (fun () ->
      for _ = 1 to 3 do
        Obs.Span.with_ "test.obs.outer" (fun () ->
            Obs.Span.with_ "test.obs.inner" ignore;
            Obs.Span.with_ "test.obs.inner" ignore)
      done;
      (* an exception must still close the span *)
      (try Obs.Span.with_ "test.obs.outer" (fun () -> failwith "boom")
       with Failure _ -> ());
      let outer =
        List.find (fun s -> s.Obs.Span.name = "test.obs.outer") (Obs.Span.snapshot ())
      in
      check int_ "outer calls" 4 outer.Obs.Span.calls;
      check bool_ "outer wall is non-negative" true (outer.Obs.Span.wall >= 0.);
      match outer.Obs.Span.children with
      | [ inner ] ->
        check bool_ "inner nested under outer" true (inner.Obs.Span.name = "test.obs.inner");
        check int_ "inner calls accumulate" 6 inner.Obs.Span.calls
      | kids -> Alcotest.failf "expected one child, got %d" (List.length kids))

let test_json_roundtrip () =
  let v =
    Obs_json.Obj
      [
        ("int", Obs_json.Int 42);
        ("neg", Obs_json.Int (-7));
        ("float", Obs_json.Float 0.125);
        ("string", Obs_json.String "a \"quoted\"\nline\twith \\ escapes");
        ("null", Obs_json.Null);
        ("bools", Obs_json.List [ Obs_json.Bool true; Obs_json.Bool false ]);
        ("nested", Obs_json.Obj [ ("empty_list", Obs_json.List []); ("empty_obj", Obs_json.Obj []) ]);
      ]
  in
  (match Obs_json.parse (Obs_json.to_string v) with
  | Ok v' -> check bool_ "print/parse round-trip" true (v = v')
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg);
  (match Obs_json.parse "{\"a\": [1, 2" with
  | Ok _ -> Alcotest.fail "truncated input parsed"
  | Error _ -> ());
  match Obs_json.parse "  {\"u\": \"\\u0041\\u00e9\"}  " with
  | Ok (Obs_json.Obj [ ("u", Obs_json.String s) ]) ->
    check bool_ "unicode escapes decode to UTF-8" true (s = "A\xc3\xa9")
  | Ok _ | Error _ -> Alcotest.fail "unicode escape parse failed"

let test_export_schema () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.obs.export" in
      Obs.Counter.add c 5;
      Obs.Histogram.observe (Obs.Histogram.make "test.obs.export_h") 3;
      Obs.Span.with_ "test.obs.export_span" ignore;
      match Obs_json.parse (Obs.Export.to_json ()) with
      | Error msg -> Alcotest.failf "exporter emits invalid JSON: %s" msg
      | Ok doc ->
        check bool_ "schema_version is 1" true
          (Obs_json.member "schema_version" doc = Some (Obs_json.Int 1));
        check bool_ "enabled is true" true
          (Obs_json.member "enabled" doc = Some (Obs_json.Bool true));
        (match Obs_json.member "counters" doc with
        | Some (Obs_json.Obj kvs) ->
          check bool_ "counter value exported" true
            (List.assoc_opt "test.obs.export" kvs = Some (Obs_json.Int 5))
        | _ -> Alcotest.fail "counters object missing");
        (match Obs_json.member "histograms" doc with
        | Some (Obs_json.Obj kvs) -> (
          match List.assoc_opt "test.obs.export_h" kvs with
          | Some h ->
            check bool_ "histogram count exported" true
              (Obs_json.member "count" h = Some (Obs_json.Int 1));
            check bool_ "histogram sum exported" true
              (Obs_json.member "sum" h = Some (Obs_json.Int 3))
          | None -> Alcotest.fail "histogram missing from export")
        | _ -> Alcotest.fail "histograms object missing");
        match Obs_json.member "trace" doc with
        | Some (Obs_json.List spans) ->
          check bool_ "span exported in trace" true
            (List.exists
               (fun s ->
                 Obs_json.member "name" s
                 = Some (Obs_json.String "test.obs.export_span"))
               spans)
        | _ -> Alcotest.fail "trace list missing")

let test_json_error_paths () =
  let expect_error label s =
    match Obs_json.parse s with
    | Ok _ -> Alcotest.failf "%s: malformed input parsed" label
    | Error msg ->
      check bool_ (label ^ ": error message is non-empty") true (String.length msg > 0)
  in
  expect_error "unknown escape" "\"a\\qb\"";
  expect_error "truncated unicode escape" "\"\\u00\"";
  expect_error "non-hex unicode escape" "{\"u\": \"\\uZZZZ\"}";
  expect_error "unterminated string" "\"abc";
  expect_error "trailing garbage" "{\"a\": 1} extra";
  expect_error "lone minus" "-";
  expect_error "bare word" "nul";
  expect_error "empty input" "   ";
  (* Nesting is depth-limited (clean error, not Stack_overflow). *)
  let deep n = String.make n '[' ^ String.make n ']' in
  (match Obs_json.parse (deep 100) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "depth 100 rejected: %s" msg);
  match Obs_json.parse (deep 100_000) with
  | Ok _ -> Alcotest.fail "absurdly deep nesting parsed"
  | Error msg ->
    check bool_ "deep-nesting error names the limit" true
      (String.length msg > 0)

let test_histogram_edges () =
  with_obs (fun () ->
      let h = Obs.Histogram.make "test.obs.edges_h" in
      Obs.Histogram.observe h 0;
      Obs.Histogram.observe h 1;
      Obs.Histogram.observe h (-5);
      Obs.Histogram.observe h max_int;
      check int_ "all edge observations counted" 4 (Obs.Histogram.count h);
      check int_ "sum is exact" (max_int - 4) (Obs.Histogram.sum h);
      (* The exporter must survive the extremes (min/max/buckets). *)
      match Obs_json.parse (Obs.Export.to_json ()) with
      | Error msg -> Alcotest.failf "export with edge values invalid: %s" msg
      | Ok doc -> (
        match
          Option.bind (Obs_json.member "histograms" doc)
            (Obs_json.member "test.obs.edges_h")
        with
        | Some hj ->
          check bool_ "min exported" true
            (Obs_json.member "min" hj = Some (Obs_json.Int (-5)));
          check bool_ "max exported" true
            (Obs_json.member "max" hj = Some (Obs_json.Int max_int))
        | None -> Alcotest.fail "edge histogram missing from export"))

(* --- event tracing -------------------------------------------------------- *)

let with_trace f =
  let cap0 = Obs.Trace.capacity () in
  Obs.reset ();
  Obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.disable ();
      Obs.Trace.set_capacity cap0;
      Obs.reset ())
    f

(* Count B/E balance and proper nesting per tid over an exported trace. *)
let check_balanced events =
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun ev ->
      let field k =
        match Obs_json.member k ev with
        | Some (Obs_json.String s) -> s
        | _ -> ""
      in
      let tid =
        match Obs_json.member "tid" ev with Some (Obs_json.Int t) -> t | _ -> -1
      in
      let s =
        match Hashtbl.find_opt stacks tid with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.add stacks tid s;
          s
      in
      match field "ph" with
      | "B" -> s := field "name" :: !s
      | "E" -> (
        match !s with
        | top :: rest ->
          check bool_ "E matches innermost B" true (top = field "name");
          s := rest
        | [] -> Alcotest.fail "E without matching B")
      | _ -> ())
    events;
  Hashtbl.iter
    (fun _ s -> check bool_ "no span left open" true (!s = []))
    stacks

let test_trace_disabled_is_silent () =
  Obs.reset ();
  Obs.Trace.disable ();
  Obs.Trace.instant "test.trace.noop";
  Obs.Trace.complete "test.trace.noop" ~ts:0. ~dur:1.;
  let s = Obs.Trace.stats () in
  check int_ "nothing recorded while disabled" 0 s.Obs.Trace.recorded;
  check int_ "nothing dropped while disabled" 0 s.Obs.Trace.dropped

let test_trace_records_and_exports () =
  with_trace (fun () ->
      Obs.Span.with_ "test.trace.outer" (fun () ->
          Obs.Trace.instant ~cat:"test" "test.trace.tick";
          Obs.Span.with_ "test.trace.inner" ignore);
      Obs.Trace.complete ~cat:"test" "test.trace.block" ~ts:(Obs.now ()) ~dur:0.25;
      let s = Obs.Trace.stats () in
      check int_ "B+E pairs, instant and X recorded" 6 s.Obs.Trace.recorded;
      check int_ "nothing dropped" 0 s.Obs.Trace.dropped;
      match Obs_json.parse (Obs.Trace.to_json ()) with
      | Error msg -> Alcotest.failf "trace export invalid: %s" msg
      | Ok (Obs_json.List events) ->
        check_balanced events;
        let has name ph =
          List.exists
            (fun ev ->
              Obs_json.member "name" ev = Some (Obs_json.String name)
              && Obs_json.member "ph" ev = Some (Obs_json.String ph))
            events
        in
        check bool_ "instant exported as i" true (has "test.trace.tick" "i");
        check bool_ "complete exported as X" true (has "test.trace.block" "X");
        check bool_ "thread metadata exported" true (has "thread_name" "M");
        List.iter
          (fun ev ->
            (match Obs_json.member "pid" ev with
            | Some (Obs_json.Int 1) -> ()
            | _ -> Alcotest.fail "event without pid 1");
            match Obs_json.member "ts" ev with
            | Some (Obs_json.Float ts) ->
              check bool_ "ts clamped to >= 0" true (ts >= 0.)
            | Some (Obs_json.Int ts) ->
              check bool_ "ts clamped to >= 0" true (ts >= 0)
            | Some _ -> Alcotest.fail "non-numeric ts"
            | None -> () (* M metadata carries no ts *))
          events
      | Ok _ -> Alcotest.fail "trace export is not an array")

let test_trace_overflow_stays_balanced () =
  with_trace (fun () ->
      Obs.Trace.set_capacity 16;
      (* The capacity applies to buffers created after the call; force a
         fresh ring for this domain. *)
      Obs.Trace.reset ();
      for _ = 1 to 100 do
        Obs.Span.with_ "test.trace.span" (fun () ->
            Obs.Trace.instant "test.trace.tick")
      done;
      let s = Obs.Trace.stats () in
      check bool_ "overflow drops are counted" true (s.Obs.Trace.dropped > 0);
      check bool_ "recorded events bounded by capacity" true (s.Obs.Trace.recorded <= 16);
      match Obs_json.parse (Obs.Trace.to_json ()) with
      | Error msg -> Alcotest.failf "overflowed trace export invalid: %s" msg
      | Ok (Obs_json.List events) ->
        check_balanced events;
        check bool_ "dropped-events marker present" true
          (List.exists
             (fun ev ->
               Obs_json.member "name" ev = Some (Obs_json.String "trace.dropped"))
             events)
      | Ok _ -> Alcotest.fail "trace export is not an array")

let test_trace_overflow_balanced_under_pool () =
  (* The documented drop contract from multiple domains: tiny rings, pool
     workers emitting concurrently — drops are counted and the exported
     stream still has balanced B/E pairs on every tid. *)
  with_trace (fun () ->
      Obs.Trace.set_capacity 16;
      Obs.Trace.reset ();
      (* Chunks this small can all be drained by the submitting domain
         before a worker wakes; block each chunk until two have started so
         at least two domains (two rings) demonstrably participate. *)
      let started = Atomic.make 0 in
      Pool.with_pool ~domains:4 (fun pool ->
          Pool.for_chunks pool ~chunk:5 ~n:400 (fun ~slot:_ ~lo ~hi ->
              Atomic.incr started;
              while Atomic.get started < 2 do
                Domain.cpu_relax ()
              done;
              for _ = lo to hi - 1 do
                Obs.Span.with_ "test.trace.pool_span" (fun () ->
                    Obs.Trace.instant "test.trace.pool_tick")
              done));
      let s = Obs.Trace.stats () in
      check bool_ "pool workers overflowed the rings" true
        (s.Obs.Trace.dropped > 0);
      check bool_ "multiple rings participated" true (s.Obs.Trace.rings > 1);
      match Obs_json.parse (Obs.Trace.to_json ()) with
      | Error msg -> Alcotest.failf "pool-overflow trace invalid: %s" msg
      | Ok (Obs_json.List events) ->
        check_balanced events;
        check bool_ "dropped-events marker present" true
          (List.exists
             (fun ev ->
               Obs_json.member "name" ev = Some (Obs_json.String "trace.dropped"))
             events)
      | Ok _ -> Alcotest.fail "trace export is not an array")

(* --- journal -------------------------------------------------------------- *)

let with_journal path f =
  let cap0 = Obs.Journal.capacity () in
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      ignore (Obs.Journal.finish ());
      Obs.Journal.set_capacity cap0;
      Obs.disable ();
      Obs.reset ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Obs.Journal.start ~cmd:"test" path;
      f ())

let journal_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev_map
    (fun l ->
      match Obs_json.parse l with
      | Ok j -> j
      | Error msg -> Alcotest.failf "journal line unparseable: %s: %s" msg l)
    !lines

let test_journal_disabled_is_silent () =
  Obs.reset ();
  Obs.Journal.emit "test_noop" [];
  let s = Obs.Journal.stats () in
  check int_ "nothing buffered while disabled" 0 s.Obs.Journal.recorded;
  check int_ "nothing dropped while disabled" 0 s.Obs.Journal.dropped;
  check int_ "finish without start writes nothing" 0
    (Obs.Journal.finish ()).Obs.Journal.recorded

let test_journal_roundtrip_multidomain () =
  let path = Filename.temp_file "sft_test" ".journal" in
  with_journal path (fun () ->
      (* Same rendezvous as the trace-overflow test: hold each chunk until
         two have started, so the events provably land in more than one
         domain-local buffer. *)
      let started = Atomic.make 0 in
      Pool.with_pool ~domains:4 (fun pool ->
          Pool.for_chunks pool ~chunk:7 ~n:200 (fun ~slot ~lo ~hi ->
              Atomic.incr started;
              while Atomic.get started < 2 do
                Domain.cpu_relax ()
              done;
              for i = lo to hi - 1 do
                Obs.Journal.emit "test_event"
                  [ ("i", Obs_json.Int i); ("slot", Obs_json.Int slot) ]
              done));
      (* The pool itself journals a [runtime_sample] after the fan-out
         drains, so counts are lower bounds; payload checks below filter
         to our own event kind. *)
      let s = Obs.Journal.stats () in
      check bool_ "every event buffered" true (s.Obs.Journal.recorded >= 200);
      check bool_ "events spread across domain buffers" true
        (s.Obs.Journal.buffers > 1);
      let w = Obs.Journal.finish () in
      check bool_ "finish reports all events" true (w.Obs.Journal.recorded >= 200);
      check int_ "no drops" 0 w.Obs.Journal.dropped;
      match journal_lines path with
      | header :: rest ->
        check bool_ "header is journal_begin" true
          (Obs_json.member "ev" header
          = Some (Obs_json.String "journal_begin"));
        check bool_ "header carries version 1" true
          (Obs_json.member "journal_version" header = Some (Obs_json.Int 1));
        let events, footer =
          match List.rev rest with
          | f :: revd -> (List.rev revd, f)
          | [] -> Alcotest.fail "no footer"
        in
        check bool_ "footer is journal_end" true
          (Obs_json.member "ev" footer = Some (Obs_json.String "journal_end"));
        check bool_ "footer embeds counters" true
          (match Obs_json.member "counters" footer with
          | Some (Obs_json.Obj _) -> true
          | _ -> false);
        check bool_ "one line per event" true (List.length events >= 200);
        (* Global sequence ids give a total order across domains: the
           merged stream must be strictly increasing, with timestamps
           relative and clamped. *)
        let last = ref (-1) in
        let seen = Array.make 200 false in
        List.iter
          (fun ev ->
            (match Obs_json.member "seq" ev with
            | Some (Obs_json.Int s) ->
              check bool_ "seq strictly increasing" true (s > !last);
              last := s
            | _ -> Alcotest.fail "event without seq");
            (match Obs_json.member "ts" ev with
            | Some (Obs_json.Float ts) ->
              check bool_ "ts clamped to >= 0" true (ts >= 0.)
            | _ -> Alcotest.fail "event without float ts");
            (match Obs_json.member "dom" ev with
            | Some (Obs_json.Int _) -> ()
            | _ -> Alcotest.fail "event without dom");
            if Obs_json.member "ev" ev = Some (Obs_json.String "test_event")
            then
              match Obs_json.member "i" ev with
              | Some (Obs_json.Int i) -> seen.(i) <- true
              | _ -> Alcotest.fail "test_event without payload field")
          events;
        check bool_ "every emitted payload present exactly once" true
          (Array.for_all Fun.id seen)
      | [] -> Alcotest.fail "empty journal file")

let test_journal_overflow_drops_counted () =
  let path = Filename.temp_file "sft_test" ".journal" in
  with_journal path (fun () ->
      ignore (Obs.Journal.finish ());
      Obs.Journal.start ~capacity:16 ~cmd:"test" path;
      for i = 1 to 100 do
        Obs.Journal.emit "test_event" [ ("i", Obs_json.Int i) ]
      done;
      let s = Obs.Journal.stats () in
      check bool_ "overflow drops are counted" true (s.Obs.Journal.dropped > 0);
      check bool_ "recorded bounded by capacity" true
        (s.Obs.Journal.recorded <= 16);
      let w = Obs.Journal.finish () in
      check bool_ "footer records the drops" true (w.Obs.Journal.dropped > 0);
      match journal_lines path with
      | _ :: rest ->
        let footer = List.nth rest (List.length rest - 1) in
        check bool_ "dropped field in footer positive" true
          (match Obs_json.member "dropped" footer with
          | Some (Obs_json.Int d) -> d > 0
          | _ -> false)
      | [] -> Alcotest.fail "empty journal file")

let test_journal_survives_obs_reset () =
  let path = Filename.temp_file "sft_test" ".journal" in
  with_journal path (fun () ->
      Obs.Journal.emit "test_before" [];
      (* reset drops buffered events but keeps the journal open (obs.mli
         header): events after the reset still land in the file. *)
      Obs.reset ();
      check int_ "reset drops buffered events" 0
        (Obs.Journal.stats ()).Obs.Journal.recorded;
      check bool_ "journal still enabled after reset" true
        (Obs.Journal.enabled ());
      Obs.Journal.emit "test_after" [];
      ignore (Obs.Journal.finish ());
      let kinds =
        List.filter_map
          (fun j ->
            match Obs_json.member "ev" j with
            | Some (Obs_json.String s) -> Some s
            | _ -> None)
          (journal_lines path)
      in
      check bool_ "pre-reset event dropped" true
        (not (List.mem "test_before" kinds));
      check bool_ "post-reset event written" true (List.mem "test_after" kinds))

let test_runtime_sampler_and_reset () =
  with_obs (fun () ->
      Obs.Runtime.sample ();
      Obs.Runtime.sample ();
      check int_ "samples counted" 2 (Obs.Runtime.samples ());
      let samples_c =
        List.assoc "runtime.samples" (Obs.Export.counters ())
      in
      check int_ "runtime.samples counter moves" 2 samples_c;
      (* Obs.reset must also zero the sampler state (not just counters). *)
      Obs.reset ();
      check int_ "reset zeroes the sampler" 0 (Obs.Runtime.samples ());
      check int_ "reset zeroes runtime counters" 0
        (List.assoc "runtime.samples" (Obs.Export.counters ())))

let test_campaign_unchanged_by_journal () =
  let c = mixed () in
  let cfg = { Campaign.default with max_patterns = 2_048; domains = 2; seed = 9L } in
  Obs.disable ();
  Obs.reset ();
  let plain = Campaign.exec cfg (Circuit.copy c) in
  let path = Filename.temp_file "sft_test" ".journal" in
  let journaled =
    with_journal path (fun () ->
        Obs.enable ();
        Campaign.exec cfg (Circuit.copy c))
  in
  check bool_ "journaled campaign is bit-identical" true (plain = journaled)

let test_campaign_unchanged_by_tracing () =
  let c = mixed () in
  let cfg = { Campaign.default with max_patterns = 2_048; domains = 2; seed = 9L } in
  Obs.disable ();
  Obs.Trace.disable ();
  Obs.reset ();
  let plain = Campaign.exec cfg (Circuit.copy c) in
  let traced = with_trace (fun () -> Campaign.exec cfg (Circuit.copy c)) in
  check bool_ "traced campaign is bit-identical" true (plain = traced);
  let overflowed =
    with_trace (fun () ->
        Obs.Trace.set_capacity 16;
        Obs.Trace.reset ();
        (* Saturate this domain's buffer so every event of the campaign
           itself lands in the overflow path. *)
        for _ = 1 to 32 do
          Obs.Trace.instant "test.trace.fill"
        done;
        let r = Campaign.exec cfg (Circuit.copy c) in
        let s = Obs.Trace.stats () in
        check bool_ "tiny buffers overflow during the campaign" true
          (s.Obs.Trace.dropped > 0);
        r)
  in
  check bool_ "campaign under buffer overflow is bit-identical" true
    (plain = overflowed)

let test_campaign_unchanged_by_obs () =
  let c = mixed () in
  let cfg = { Campaign.default with max_patterns = 2_048; domains = 2; seed = 9L } in
  Obs.disable ();
  Obs.reset ();
  let plain = Campaign.exec cfg (Circuit.copy c) in
  let observed =
    with_obs (fun () -> Campaign.exec cfg (Circuit.copy c))
  in
  check bool_ "instrumented campaign is bit-identical" true (plain = observed);
  let via_config =
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.reset ())
      (fun () -> Campaign.exec { cfg with obs = true } (Circuit.copy c))
  in
  check bool_ "config-enabled obs is bit-identical too" true (plain = via_config)

let suite =
  [
    ("counters: atomic under 4 domains", `Quick, test_counter_atomic_under_pool);
    ("disabled probes record nothing", `Quick, test_disabled_probes_record_nothing);
    ("spans: nesting and call counts", `Quick, test_span_nesting);
    ("json: round-trip and errors", `Quick, test_json_roundtrip);
    ("json: parser error paths", `Quick, test_json_error_paths);
    ("histograms: edge observations", `Quick, test_histogram_edges);
    ("export: documented schema keys", `Quick, test_export_schema);
    ("trace: disabled is silent", `Quick, test_trace_disabled_is_silent);
    ("trace: records and exports events", `Quick, test_trace_records_and_exports);
    ("trace: overflow stays balanced", `Quick, test_trace_overflow_stays_balanced);
    ( "trace: pool overflow balanced per domain",
      `Quick,
      test_trace_overflow_balanced_under_pool );
    ("journal: disabled is silent", `Quick, test_journal_disabled_is_silent);
    ( "journal: multi-domain round-trip",
      `Quick,
      test_journal_roundtrip_multidomain );
    ("journal: overflow drops counted", `Quick, test_journal_overflow_drops_counted);
    ("journal: survives Obs.reset", `Quick, test_journal_survives_obs_reset);
    ("runtime: sampler counts and resets", `Quick, test_runtime_sampler_and_reset);
    ("campaign: trace on = trace off", `Quick, test_campaign_unchanged_by_tracing);
    ("campaign: obs on = obs off", `Quick, test_campaign_unchanged_by_obs);
    ("campaign: journal on = journal off", `Quick, test_campaign_unchanged_by_journal);
  ]
