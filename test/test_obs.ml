(* The sft.obs observability subsystem: atomic counters under domain pools,
   span nesting, the JSON exporter, and the guarantee that enabling probes
   never changes a computation's result. *)

open Helpers

(* Every test flips the global switch; leave the registry disabled and
   empty for whoever runs next. *)
let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let test_counter_atomic_under_pool () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.obs.atomic" in
      let h = Obs.Histogram.make "test.obs.atomic_h" in
      let n = 100_000 in
      Pool.with_pool ~domains:4 (fun pool ->
          Pool.for_chunks pool ~chunk:97 ~n (fun ~slot:_ ~lo ~hi ->
              for _ = lo to hi - 1 do
                Obs.Counter.incr c
              done;
              Obs.Counter.add c (hi - lo);
              Obs.Histogram.observe h (hi - lo)));
      check int_ "no lost increments across 4 domains" (2 * n) (Obs.Counter.value c);
      check int_ "histogram sum equals range total" n (Obs.Histogram.sum h))

let test_disabled_probes_record_nothing () =
  Obs.reset ();
  Obs.disable ();
  let c = Obs.Counter.make "test.obs.disabled" in
  let h = Obs.Histogram.make "test.obs.disabled_h" in
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Obs.Histogram.observe h 7;
  let r = Obs.Span.with_ "test.obs.disabled_span" (fun () -> 11) in
  check int_ "span passes the result through" 11 r;
  check int_ "disabled counter stays zero" 0 (Obs.Counter.value c);
  check int_ "disabled histogram stays empty" 0 (Obs.Histogram.count h);
  check bool_ "disabled span records nothing" true
    (not
       (List.exists
          (fun s -> s.Obs.Span.name = "test.obs.disabled_span")
          (Obs.Span.snapshot ())))

let test_span_nesting () =
  with_obs (fun () ->
      for _ = 1 to 3 do
        Obs.Span.with_ "test.obs.outer" (fun () ->
            Obs.Span.with_ "test.obs.inner" ignore;
            Obs.Span.with_ "test.obs.inner" ignore)
      done;
      (* an exception must still close the span *)
      (try Obs.Span.with_ "test.obs.outer" (fun () -> failwith "boom")
       with Failure _ -> ());
      let outer =
        List.find (fun s -> s.Obs.Span.name = "test.obs.outer") (Obs.Span.snapshot ())
      in
      check int_ "outer calls" 4 outer.Obs.Span.calls;
      check bool_ "outer wall is non-negative" true (outer.Obs.Span.wall >= 0.);
      match outer.Obs.Span.children with
      | [ inner ] ->
        check bool_ "inner nested under outer" true (inner.Obs.Span.name = "test.obs.inner");
        check int_ "inner calls accumulate" 6 inner.Obs.Span.calls
      | kids -> Alcotest.failf "expected one child, got %d" (List.length kids))

let test_json_roundtrip () =
  let v =
    Obs_json.Obj
      [
        ("int", Obs_json.Int 42);
        ("neg", Obs_json.Int (-7));
        ("float", Obs_json.Float 0.125);
        ("string", Obs_json.String "a \"quoted\"\nline\twith \\ escapes");
        ("null", Obs_json.Null);
        ("bools", Obs_json.List [ Obs_json.Bool true; Obs_json.Bool false ]);
        ("nested", Obs_json.Obj [ ("empty_list", Obs_json.List []); ("empty_obj", Obs_json.Obj []) ]);
      ]
  in
  (match Obs_json.parse (Obs_json.to_string v) with
  | Ok v' -> check bool_ "print/parse round-trip" true (v = v')
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg);
  (match Obs_json.parse "{\"a\": [1, 2" with
  | Ok _ -> Alcotest.fail "truncated input parsed"
  | Error _ -> ());
  match Obs_json.parse "  {\"u\": \"\\u0041\\u00e9\"}  " with
  | Ok (Obs_json.Obj [ ("u", Obs_json.String s) ]) ->
    check bool_ "unicode escapes decode to UTF-8" true (s = "A\xc3\xa9")
  | Ok _ | Error _ -> Alcotest.fail "unicode escape parse failed"

let test_export_schema () =
  with_obs (fun () ->
      let c = Obs.Counter.make "test.obs.export" in
      Obs.Counter.add c 5;
      Obs.Histogram.observe (Obs.Histogram.make "test.obs.export_h") 3;
      Obs.Span.with_ "test.obs.export_span" ignore;
      match Obs_json.parse (Obs.Export.to_json ()) with
      | Error msg -> Alcotest.failf "exporter emits invalid JSON: %s" msg
      | Ok doc ->
        check bool_ "schema_version is 1" true
          (Obs_json.member "schema_version" doc = Some (Obs_json.Int 1));
        check bool_ "enabled is true" true
          (Obs_json.member "enabled" doc = Some (Obs_json.Bool true));
        (match Obs_json.member "counters" doc with
        | Some (Obs_json.Obj kvs) ->
          check bool_ "counter value exported" true
            (List.assoc_opt "test.obs.export" kvs = Some (Obs_json.Int 5))
        | _ -> Alcotest.fail "counters object missing");
        (match Obs_json.member "histograms" doc with
        | Some (Obs_json.Obj kvs) -> (
          match List.assoc_opt "test.obs.export_h" kvs with
          | Some h ->
            check bool_ "histogram count exported" true
              (Obs_json.member "count" h = Some (Obs_json.Int 1));
            check bool_ "histogram sum exported" true
              (Obs_json.member "sum" h = Some (Obs_json.Int 3))
          | None -> Alcotest.fail "histogram missing from export")
        | _ -> Alcotest.fail "histograms object missing");
        match Obs_json.member "trace" doc with
        | Some (Obs_json.List spans) ->
          check bool_ "span exported in trace" true
            (List.exists
               (fun s ->
                 Obs_json.member "name" s
                 = Some (Obs_json.String "test.obs.export_span"))
               spans)
        | _ -> Alcotest.fail "trace list missing")

let test_campaign_unchanged_by_obs () =
  let c = mixed () in
  let cfg = { Campaign.default with max_patterns = 2_048; domains = 2; seed = 9L } in
  Obs.disable ();
  Obs.reset ();
  let plain = Campaign.exec cfg (Circuit.copy c) in
  let observed =
    with_obs (fun () -> Campaign.exec cfg (Circuit.copy c))
  in
  check bool_ "instrumented campaign is bit-identical" true (plain = observed);
  let via_config =
    Fun.protect
      ~finally:(fun () ->
        Obs.disable ();
        Obs.reset ())
      (fun () -> Campaign.exec { cfg with obs = true } (Circuit.copy c))
  in
  check bool_ "config-enabled obs is bit-identical too" true (plain = via_config)

let suite =
  [
    ("counters: atomic under 4 domains", `Quick, test_counter_atomic_under_pool);
    ("disabled probes record nothing", `Quick, test_disabled_probes_record_nothing);
    ("spans: nesting and call counts", `Quick, test_span_nesting);
    ("json: round-trip and errors", `Quick, test_json_roundtrip);
    ("export: documented schema keys", `Quick, test_export_schema);
    ("campaign: obs on = obs off", `Quick, test_campaign_unchanged_by_obs);
  ]
