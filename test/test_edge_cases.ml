open Helpers

(* --- netlist edges ----------------------------------------------------------- *)

let test_name_uniquification () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"sig" c in
  let b = Circuit.add_input ~name:"sig" c in
  let g = Circuit.add_gate ~name:"sig" c Gate.And [| a; b |] in
  Circuit.mark_output c g;
  let text = Bench_format.to_string c in
  let c2 = Bench_format.of_string text in
  check bool_ "roundtrips despite name clashes" true (Eval.equivalent_exhaustive c c2)

let test_const_roundtrip () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let one = Circuit.add_const c true in
  let g = Circuit.add_gate c Gate.Xor [| a; one |] in
  Circuit.mark_output c g;
  let c2 = Bench_format.of_string (Bench_format.to_string c) in
  check bool_ "const roundtrip" true (Eval.equivalent_exhaustive c c2)

let test_overwrite () =
  let a = c17 () in
  let b = mixed () in
  let snapshot = Circuit.copy b in
  Circuit.overwrite b ~with_:a;
  check bool_ "b now behaves like c17" true (Eval.equivalent_exhaustive a b);
  Circuit.overwrite b ~with_:snapshot;
  check int_ "restored inputs" 3 (Circuit.num_inputs b)

let test_compact_idempotent () =
  for seed = 1 to 6 do
    let c = random_circuit ~n_pi:5 ~n_gates:18 seed in
    let c1, _ = Circuit.compact c in
    let c2, _ = Circuit.compact c1 in
    check bool_ "same function" true (Eval.equivalent_exhaustive c c1);
    check int_ "same size after recompaction" (Circuit.num_live_nodes c1)
      (Circuit.num_live_nodes c2)
  done

let test_output_on_input () =
  let c = Circuit.create () in
  let a = Circuit.add_input ~name:"a" c in
  Circuit.mark_output ~name:"o" c a;
  check int_ "one path" 1 (Paths.total c);
  check int_ "depth zero" 0 (Levelize.depth c);
  let outs = Eval.run c [| true |] in
  check bool_ "wire" true outs.(0)

let test_duplicate_po_designation () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let g = Circuit.add_gate c Gate.Or [| a; b |] in
  Circuit.mark_output ~name:"o1" c g;
  Circuit.mark_output ~name:"o2" c g;
  (* both designations count separately in the path total, as in Procedure 1 *)
  check int_ "paths double" 4 (Paths.total c);
  check int_ "two outputs" 2 (Circuit.num_outputs c)

(* --- fault-model edges -------------------------------------------------------- *)

let test_branch_fault_independence () =
  (* stem s fans out to g1 and g2; a branch fault on the g1 pin must not
     affect g2. *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let s = Circuit.add_gate c Gate.And [| a; b |] in
  let g1 = Circuit.add_gate c Gate.Not [| s |] in
  let g2 = Circuit.add_gate c Gate.Buf [| s |] in
  Circuit.mark_output c g1;
  Circuit.mark_output c g2;
  let cmp = Compiled.of_circuit c in
  let sim = Fsim.create cmp in
  let fault = { Fault.site = Fault.Branch (g1, 0); stuck = false } in
  (* pattern 11: s=1; branch s-a-0 flips g1 only *)
  Fsim.load_patterns sim [| -1L; -1L |];
  let mask = Fsim.detect sim fault in
  check bool_ "detected" true (Int64.logand mask 1L = 1L);
  (* g2 unaffected: the faulty value of g2 must equal the good one; detection
     mask must come from g1 alone, so flipping the observation works out *)
  let stem_fault = { Fault.site = Fault.Stem s; stuck = false } in
  let mask2 = Fsim.detect sim stem_fault in
  check bool_ "stem detected too" true (Int64.logand mask2 1L = 1L)

let test_fault_on_po_stem () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  Circuit.mark_output c a;
  let faults = Fault.all c in
  check int_ "two faults on the only line" 2 (List.length faults);
  let cmp = Compiled.of_circuit c in
  let sim = Fsim.create cmp in
  Fsim.load_patterns sim [| 0b10L |];
  List.iter
    (fun f ->
      let mask = Fsim.detect sim f in
      (* s-a-1 detected by pattern 0 (a=0), s-a-0 by pattern 1 (a=1) *)
      check bool_ "one pattern detects" true (mask <> 0L))
    faults

(* --- comparison edges ----------------------------------------------------------- *)

let test_unit_n1 () =
  List.iter
    (fun (lo, hi) ->
      let b = Comparison_unit.build_interval ~lo ~hi 1 in
      let spec =
        { Comparison_fn.perm = [| 1 |]; lo; hi; complemented = false }
      in
      check bool_
        (Printf.sprintf "n=1 [%d,%d]" lo hi)
        true
        (Comparison_unit.verify ~n:1 spec b))
    [ (0, 0); (1, 1); (0, 1) ]

let test_unit_single_minterm () =
  (* lo = hi: every variable is free; the unit is one AND of literals *)
  let b = Comparison_unit.build_interval ~lo:9 ~hi:9 4 in
  check int_ "one AND gate" 3 b.Comparison_unit.gates2;
  check int_ "depth 1" 1 b.Comparison_unit.depth;
  Array.iter (fun p -> check int_ "single path" 1 p) b.Comparison_unit.input_paths

let test_identify_all_n3_functions () =
  (* Exhaustive ground truth for every 3-variable function: the exact engine
     must agree with brute-force over all 6 permutations. *)
  let perms =
    [ [| 1; 2; 3 |]; [| 1; 3; 2 |]; [| 2; 1; 3 |]; [| 2; 3; 1 |]; [| 3; 1; 2 |]; [| 3; 2; 1 |] ]
  in
  for code = 0 to 255 do
    let f = Truthtable.create 3 (fun m -> code land (1 lsl m) <> 0) in
    let brute =
      List.exists
        (fun p ->
          let g = Truthtable.permute f p in
          Truthtable.as_interval g <> None
          || Truthtable.as_interval (Truthtable.lnot g) <> None)
        perms
    in
    let exact = Comparison_fn.identify_exact f <> None in
    (* empty/full functions: exact identifies via the complement rule *)
    if brute <> exact then
      Alcotest.failf "function %02x: brute %b, exact %b" code brute exact
  done

(* --- techmap edges ---------------------------------------------------------------- *)

let test_aoi21_matches () =
  (* INV(NAND(NAND(a,b), INV c)) should map to a single AOI21 (3 literals). *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let d = Circuit.add_input c in
  let ab = Circuit.add_gate c Gate.And [| a; b |] in
  let g = Circuit.add_gate c Gate.Nor [| ab; d |] in
  Circuit.mark_output c g;
  let r = Mapper.map c in
  check int_ "AOI21 literals" 3 r.Mapper.literals;
  check int_ "single cell" 1 r.Mapper.cells_used

let test_map_const_output () =
  let c = Circuit.create () in
  let _ = Circuit.add_input c in
  let k = Circuit.add_const c true in
  Circuit.mark_output c k;
  let r = Mapper.map c in
  check int_ "no cells" 0 r.Mapper.cells_used;
  check int_ "no literals" 0 r.Mapper.literals

(* --- delay edges -------------------------------------------------------------------- *)

let test_wave_constants () =
  let w = Wave.eval Gate.And [| Wave.stable true; Wave.eval Gate.Const0 [||] |] in
  check bool_ "and with const0" true (w = Wave.stable false);
  let w = Wave.eval Gate.Nor [| Wave.stable false; Wave.eval Gate.Const0 [||] |] in
  check bool_ "nor of zeros" true (w = Wave.stable true)

let test_pdf_campaign_wire_circuit () =
  (* PI directly observed: two faults, both robustly detected by any pair
     with a transition. *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  Circuit.mark_output c a;
  let r =
    Pdf_campaign.exec
      { Pdf_campaign.default with max_pairs = 100; stop_window = 100; seed = 1L }
      c
  in
  check int_ "both detected" 2 r.Pdf_campaign.detected

(* --- multi-unit / dc edges ------------------------------------------------------------ *)

let test_multi_unit_single_run_degenerates () =
  let f = Truthtable.interval 4 ~lo:3 ~hi:9 in
  let rng = Rng.create 7L in
  match Multi_unit.find rng f with
  | None -> Alcotest.fail "interval has a 1-unit cover"
  | Some cover ->
    check int_ "one unit" 1 (List.length cover.Multi_unit.specs);
    check bool_ "exact" true (Multi_unit.verify ~n:4 f (Multi_unit.build ~n:4 cover))

let test_dontcare_observed () =
  let c = c17 () in
  let cmp = Compiled.of_circuit c in
  let rng = Rng.create 11L in
  let batches =
    Array.init 8 (fun _ -> Compiled.simulate cmp (Array.init 5 (fun _ -> Rng.next64 rng)))
  in
  let inputs = Circuit.inputs c in
  (* all 32 combinations of 5 free PIs are reachable; with 512 random
     patterns the observed table should be full or nearly so *)
  let seen = Dontcare.observed cmp batches [| inputs.(0); inputs.(1) |] in
  check bool_ "everything observed on a 2-input cut" true
    (Truthtable.is_const seen = Some true)

let suite =
  [
    ("bench names uniquified", `Quick, test_name_uniquification);
    ("bench constants roundtrip", `Quick, test_const_roundtrip);
    ("circuit overwrite", `Quick, test_overwrite);
    ("compact is idempotent", `Quick, test_compact_idempotent);
    ("output directly on an input", `Quick, test_output_on_input);
    ("duplicate output designation", `Quick, test_duplicate_po_designation);
    ("branch faults are pin-local", `Quick, test_branch_fault_independence);
    ("faults on an observed input", `Quick, test_fault_on_po_stem);
    ("units of one variable", `Quick, test_unit_n1);
    ("single-minterm unit", `Quick, test_unit_single_minterm);
    ("exact engine vs brute force on all 3-var functions", `Quick, test_identify_all_n3_functions);
    ("AOI21 single-cell match", `Quick, test_aoi21_matches);
    ("mapping a constant output", `Quick, test_map_const_output);
    ("wave constants", `Quick, test_wave_constants);
    ("pdf campaign on a wire", `Quick, test_pdf_campaign_wire_circuit);
    ("multi-unit degenerates to one unit", `Quick, test_multi_unit_single_run_degenerates);
    ("don't-care observation on a narrow cut", `Quick, test_dontcare_observed);
  ]
