open Helpers

let test_int_formatting () =
  check bool_ "groups" true (Table.int 1192971 = "1,192,971");
  check bool_ "small" true (Table.int 42 = "42");
  check bool_ "boundary" true (Table.int 1000 = "1,000");
  check bool_ "negative" true (Table.int (-1234) = "-1,234")

let test_render () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta"; "22" ];
  let s = Table.render t in
  check bool_ "title" true (String.length s > 0 && String.sub s 0 7 = "== demo");
  check bool_ "row order kept" true
    (let a = String.index s 'a' in
     String.length s > a)

(* --- run reports (Obs.Journal files) -------------------------------------- *)

let write_journal lines =
  let path = Filename.temp_file "sft_test" ".journal" in
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  path

let with_journal lines f =
  let path = write_journal lines in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let header = {|{"ev":"journal_begin","journal_version":1,"tool":"sft","cmd":"optimize","ts":100.0}|}

let footer ~candidates ~identified =
  Printf.sprintf
    {|{"ev":"journal_end","events":5,"dropped":0,"wall_s":2.5,"counters":{"engine.candidates":%d,"engine.realised":%d}}|}
    candidates identified

let body =
  [
    {|{"ev":"span","seq":0,"ts":0.5,"dom":0,"name":"engine.pass","dur_s":0.4}|};
    {|{"ev":"identify","seq":1,"ts":0.6,"dom":0,"src":"fresh","verdict":true}|};
    {|{"ev":"identify","seq":2,"ts":0.7,"dom":1,"src":"run_cache","verdict":true}|};
    {|{"ev":"splice_accept","seq":3,"ts":0.8,"dom":0,"root":7,"idx":0,"gain":2,"new_paths":10,"cut":4,"exact":true}|};
    {|{"ev":"splice_rollback","seq":4,"ts":0.9,"dom":0,"root":9,"idx":1,"reason":"cec_counterexample"}|};
  ]

let load_ok path =
  match Run_report.load path with
  | Ok r -> r
  | Error msg -> Alcotest.failf "load failed: %s" msg

let test_run_report_load_and_funnel () =
  with_journal
    ((header :: body) @ [ footer ~candidates:50 ~identified:10 ])
    (fun path ->
      let r = load_ok path in
      check bool_ "cmd from header" true (Run_report.cmd r = "optimize");
      check int_ "event count" 5 (Run_report.events r);
      check bool_ "not truncated" true (not (Run_report.truncated r));
      check bool_ "wall from footer" true (Run_report.wall_s r = 2.5);
      let f = Run_report.funnel r in
      check int_ "candidates from counter" 50 f.Run_report.candidates;
      check int_ "identified from counter" 10 f.Run_report.identified;
      check int_ "verified = accepts + rollbacks" 2 f.Run_report.verified;
      check int_ "committed = accepts" 1 f.Run_report.committed;
      check bool_ "funnel holds" true (Run_report.funnel_ok r);
      (match Run_report.phases r with
      | [ p ] ->
        check bool_ "phase name" true (p.Run_report.ph_name = "engine.pass");
        check int_ "phase calls" 1 p.Run_report.ph_calls
      | ps -> Alcotest.failf "expected one phase, got %d" (List.length ps));
      let text = Run_report.render r in
      check bool_ "render mentions the funnel" true (contains ~affix:"funnel" text))

let test_run_report_funnel_violation () =
  (* More commit attempts than identifications: the invariant must trip
     both per-run and in the top-level JSON conjunction. *)
  with_journal
    ((header :: body) @ [ footer ~candidates:50 ~identified:1 ])
    (fun path ->
      let r = load_ok path in
      check bool_ "funnel violated" true (not (Run_report.funnel_ok r));
      match Run_report.to_json_value [ r ] with
      | Obs_json.Obj fields ->
        check bool_ "top-level funnel_ok false" true
          (List.assoc "funnel_ok" fields = Obs_json.Bool false)
      | _ -> Alcotest.fail "to_json_value not an object")

let test_run_report_truncated () =
  (* No footer at all (crashed run): load succeeds, counter-derived funnel
     stages are skipped, wall falls back to the event high-water mark. *)
  with_journal (header :: body) (fun path ->
      let r = load_ok path in
      check bool_ "truncated flagged" true (Run_report.truncated r);
      check int_ "events still counted" 5 (Run_report.events r);
      check bool_ "wall from last event ts" true (Run_report.wall_s r = 0.9);
      check bool_ "funnel vacuously ok without footer" true
        (Run_report.funnel_ok r))

let test_run_report_rejects_non_journal () =
  with_journal [ {|{"not":"a journal"}|} ] (fun path ->
      match Run_report.load path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "loaded a non-journal");
  with_journal
    [ {|{"ev":"journal_begin","journal_version":999,"cmd":"x","ts":0.0}|} ]
    (fun path ->
      match Run_report.load path with
      | Error msg -> check bool_ "version named in error" true (contains ~affix:"999" msg)
      | Ok _ -> Alcotest.fail "loaded an unsupported version")

let test_run_report_json_and_diff () =
  with_journal
    ((header :: body) @ [ footer ~candidates:50 ~identified:10 ])
    (fun path ->
      let r = load_ok path in
      (* The JSON document must re-parse and carry the documented keys. *)
      (match Obs_json.parse (Obs_json.to_string (Run_report.to_json_value [ r ])) with
      | Error msg -> Alcotest.failf "report JSON invalid: %s" msg
      | Ok doc ->
        check bool_ "report_version present" true
          (Obs_json.member "report_version" doc = Some (Obs_json.Int 1));
        (match Obs_json.member "runs" doc with
        | Some (Obs_json.List [ run ]) ->
          List.iter
            (fun k ->
              check bool_ (k ^ " present") true
                (Obs_json.member k run <> None))
            [
              "path"; "cmd"; "events"; "funnel"; "phases"; "runtime";
              "identify"; "sat_escalations"; "cec_checks";
            ]
        | _ -> Alcotest.fail "runs is not a one-element list"));
      let d = Run_report.diff r r in
      check bool_ "self-diff renders" true (String.length d > 0))

let suite =
  [
    ("thousands separators", `Quick, test_int_formatting);
    ("render", `Quick, test_render);
    ("run report: load and funnel", `Quick, test_run_report_load_and_funnel);
    ("run report: funnel violation", `Quick, test_run_report_funnel_violation);
    ("run report: truncated journal", `Quick, test_run_report_truncated);
    ("run report: rejects non-journals", `Quick, test_run_report_rejects_non_journal);
    ("run report: json schema and diff", `Quick, test_run_report_json_and_diff);
  ]
