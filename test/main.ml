let () =
  Alcotest.run "sft"
    [
      ("netlist", Test_netlist.suite);
      ("logic", Test_logic.suite);
      Helpers.qsuite "logic-properties" Test_logic.qchecks;
      ("wordlevel", Test_wordlevel.suite);
      Helpers.qsuite "wordlevel-properties" Test_wordlevel.qchecks;
      ("sim", Test_sim.suite);
      ("fault", Test_fault.suite);
      ("atpg", Test_atpg.suite);
      ("delay", Test_delay.suite);
      ("comparison", Test_comparison.suite);
      ("synth", Test_synth.suite);
      ("rar", Test_rar.suite);
      ("techmap", Test_techmap.suite);
      ("gen", Test_gen.suite);
      ("report", Test_report.suite);
      Helpers.qsuite "properties" Test_properties.suite;
      ("extensions", Test_extensions.suite);
      ("pdf-atpg", Test_pdf_atpg.suite);
      ("sop", Test_sop.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("integration", Test_integration.suite);
      ("more", Test_more.suite);
      Helpers.qsuite "extension-properties" Test_extensions.qchecks;
      ("parallel", Test_parallel.suite);
      Helpers.qsuite "parallel-properties" Test_parallel.qchecks;
      ("incremental", Test_incremental.suite);
      Helpers.qsuite "incremental-properties" Test_incremental.qchecks;
      ("obs", Test_obs.suite);
      ("bench-diff", Test_bench_diff.suite);
      ("cec", Test_cec.suite);
      Helpers.qsuite "cec-properties" Test_cec.qchecks;
      ("sat-atpg", Test_sat_atpg.suite);
      Helpers.qsuite "sat-atpg-properties" Test_sat_atpg.qchecks;
      ("idcache", Test_idcache.suite);
      Helpers.qsuite "idcache-properties" Test_idcache.qchecks;
    ]
