open Helpers

let test_podem_finds_tests_c17 () =
  let c = c17 () in
  let cmp = Compiled.of_circuit c in
  let sim = Fsim.create cmp in
  List.iter
    (fun f ->
      match Podem.generate c f with
      | Podem.Test v ->
        check bool_
          (Printf.sprintf "test for %s really detects" (Fault.to_string c f))
          true
          (Fsim.detect_single sim f v)
      | Podem.Untestable ->
        Alcotest.failf "c17 fault %s wrongly untestable" (Fault.to_string c f)
      | Podem.Aborted ->
        Alcotest.failf "c17 fault %s aborted" (Fault.to_string c f))
    (Fault.all c)

let test_podem_untestable () =
  (* AND(a, a') output s-a-0 is untestable. *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let na = Circuit.add_gate c Gate.Not [| a |] in
  let dead = Circuit.add_gate c Gate.And [| a; na |] in
  let out = Circuit.add_gate c Gate.Or [| dead; b |] in
  Circuit.mark_output c out;
  (match Podem.generate c { Fault.site = Fault.Stem dead; stuck = false } with
  | Podem.Untestable -> ()
  | Podem.Test _ -> Alcotest.fail "should be untestable"
  | Podem.Aborted -> Alcotest.fail "should not abort");
  (* ... but its s-a-1 is testable (set a so that dead=0 matters? dead is
     always 0; s-a-1 flips it to 1 and b=0 observes it). *)
  match Podem.generate c { Fault.site = Fault.Stem dead; stuck = true } with
  | Podem.Test v ->
    let cmp = Compiled.of_circuit c in
    let sim = Fsim.create cmp in
    check bool_ "s-a-1 detected" true
      (Fsim.detect_single sim { Fault.site = Fault.Stem dead; stuck = true } v)
  | Podem.Untestable | Podem.Aborted -> Alcotest.fail "s-a-1 should be testable"

let test_podem_agrees_with_exhaustive () =
  (* On small random circuits, PODEM's testable/untestable verdict must agree
     with exhaustive simulation over all input vectors. *)
  for seed = 1 to 12 do
    let c = random_circuit ~n_pi:4 ~n_gates:10 seed in
    let cmp = Compiled.of_circuit c in
    let sim = Fsim.create cmp in
    List.iter
      (fun f ->
        let exhaustively_testable =
          let found = ref false in
          for m = 0 to 15 do
            let v = Array.init 4 (fun j -> m land (1 lsl (3 - j)) <> 0) in
            if Fsim.detect_single sim f v then found := true
          done;
          !found
        in
        match Podem.generate c f with
        | Podem.Test v ->
          if not (Fsim.detect_single sim f v) then
            Alcotest.failf "seed %d: PODEM test for %s does not detect" seed
              (Fault.to_string c f);
          check bool_ "agrees testable" true exhaustively_testable
        | Podem.Untestable ->
          if exhaustively_testable then
            Alcotest.failf "seed %d: %s is testable but PODEM says untestable"
              seed (Fault.to_string c f)
        | Podem.Aborted -> ())
      (Fault.all c)
  done

let test_redundancy_removal () =
  (* Circuit with an obviously redundant cone. *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let d = Circuit.add_input c in
  let na = Circuit.add_gate c Gate.Not [| a |] in
  let dead = Circuit.add_gate c Gate.And [| a; na |] in
  let mid = Circuit.add_gate c Gate.Or [| dead; b |] in
  let out = Circuit.add_gate c Gate.And [| mid; d |] in
  Circuit.mark_output c out;
  let reference = Circuit.copy c in
  let fresh, report = Redundancy.make_irredundant ~seed:5L c in
  check bool_ "something removed" true (report.Redundancy.removed > 0);
  check bool_ "function preserved" true (Eval.equivalent_exhaustive reference fresh);
  check bool_ "smaller" true
    (Circuit.two_input_gate_count fresh < Circuit.two_input_gate_count reference);
  (* The result must have no untestable collapsed faults left. *)
  let found = Redundancy.find_untestable ~seed:6L fresh in
  check int_ "no redundancy left" 0 (List.length found.Redundancy.untestable);
  check int_ "no SAT redundancy left" 0 (List.length found.Redundancy.sat_redundant);
  check int_ "no aborts" 0 (List.length found.Redundancy.unresolved)

let test_redundancy_preserves_random () =
  for seed = 30 to 36 do
    let c = random_circuit ~n_pi:5 ~n_gates:18 seed in
    let reference = Circuit.copy c in
    let fresh, _ = Redundancy.make_irredundant ~seed:(Int64.of_int seed) c in
    check bool_
      (Printf.sprintf "seed %d function preserved" seed)
      true
      (Eval.equivalent_exhaustive reference fresh)
  done

let test_equiv () =
  let c = c17 () in
  let c2 = Bench_format.of_string (Bench_format.to_string c) in
  (match Equiv.check ~seed:1L c c2 with
  | Equiv.Equivalent -> ()
  | Equiv.Counterexample _ | Equiv.Unknown -> Alcotest.fail "c17 = c17");
  let c3 = Circuit.copy c in
  let order = Circuit.topo_order c3 in
  Circuit.set_kind c3 order.(Array.length order - 1) Gate.And;
  match Equiv.check ~seed:1L c c3 with
  | Equiv.Counterexample v ->
    check bool_ "cex differs" true (Eval.run c v <> Eval.run c3 v)
  | Equiv.Equivalent | Equiv.Unknown -> Alcotest.fail "must find counterexample"

let test_equiv_beyond_simulation () =
  (* Two structurally different implementations of the same function, where
     random simulation alone cannot conclude equivalence. *)
  let majority () =
    let c = Circuit.create () in
    let a = Circuit.add_input c in
    let b = Circuit.add_input c in
    let d = Circuit.add_input c in
    let ab = Circuit.add_gate c Gate.And [| a; b |] in
    let ad = Circuit.add_gate c Gate.And [| a; d |] in
    let bd = Circuit.add_gate c Gate.And [| b; d |] in
    let out = Circuit.add_gate c Gate.Or [| ab; ad; bd |] in
    Circuit.mark_output c out;
    c
  in
  let majority2 () =
    let c = Circuit.create () in
    let a = Circuit.add_input c in
    let b = Circuit.add_input c in
    let d = Circuit.add_input c in
    let ab_or = Circuit.add_gate c Gate.Or [| a; b |] in
    let ab_and = Circuit.add_gate c Gate.And [| a; b |] in
    let sel = Circuit.add_gate c Gate.And [| ab_or; d |] in
    let out = Circuit.add_gate c Gate.Or [| ab_and; sel |] in
    Circuit.mark_output c out;
    c
  in
  match Equiv.check ~sim_patterns:0 ~seed:2L (majority ()) (majority2 ()) with
  | Equiv.Equivalent -> ()
  | Equiv.Counterexample _ | Equiv.Unknown ->
    Alcotest.fail "majority implementations are equivalent"

let suite =
  [
    ("PODEM covers c17", `Quick, test_podem_finds_tests_c17);
    ("PODEM proves untestability", `Quick, test_podem_untestable);
    ("PODEM agrees with exhaustive simulation", `Quick, test_podem_agrees_with_exhaustive);
    ("redundancy removal", `Quick, test_redundancy_removal);
    ("redundancy removal preserves function", `Quick, test_redundancy_preserves_random);
    ("miter equivalence", `Quick, test_equiv);
    ("miter equivalence via PODEM only", `Quick, test_equiv_beyond_simulation);
  ]
