open Helpers

(* Assorted second-pass coverage: API contracts and small behaviours not
   exercised by the main suites. *)

let test_longest_path_endpoints () =
  let c = c17 () in
  let p = Levelize.longest_path c in
  check bool_ "starts at an input" true (Circuit.kind c p.(0) = Gate.Input);
  check bool_ "ends at an output" true (Circuit.is_output c p.(Array.length p - 1));
  check int_ "length = depth + 1" (Levelize.depth c + 1) (Array.length p)

let test_gate_arity_errors () =
  (match Gate.eval Gate.Not [| true; false |] with
  | _ -> Alcotest.fail "NOT with two inputs must fail"
  | exception Invalid_argument _ -> ());
  (match Gate.eval Gate.And [||] with
  | _ -> Alcotest.fail "AND with no inputs must fail"
  | exception Invalid_argument _ -> ());
  match Gate.eval_word Gate.Buf [||] with
  | _ -> Alcotest.fail "BUF with no inputs must fail"
  | exception Invalid_argument _ -> ()

let test_truthtable_set_immutable () =
  let f = Truthtable.const 3 false in
  let g = Truthtable.set f 5 true in
  check bool_ "original untouched" false (Truthtable.get f 5);
  check bool_ "copy updated" true (Truthtable.get g 5)

let test_rng_split_independent () =
  let parent = Rng.create 7L in
  let child = Rng.split parent in
  let a = Array.init 16 (fun _ -> Rng.next64 parent) in
  let b = Array.init 16 (fun _ -> Rng.next64 child) in
  check bool_ "streams differ" true (a <> b)

let test_bench_whitespace_and_comments () =
  let text =
    "  # leading comment\n\n INPUT( a )\nINPUT(b)   # trailing\nOUTPUT(z)\n\
     z = AND( a , b )\n"
  in
  let c = Bench_format.of_string text in
  check int_ "two inputs" 2 (Circuit.num_inputs c);
  check int_ "one gate" 1 (Circuit.num_gates c)

let test_bench_input_as_gate_rejected () =
  match Bench_format.of_string "INPUT(a)\nOUTPUT(z)\nz = INPUT(a)\n" with
  | _ -> Alcotest.fail "INPUT as a gate kind must fail"
  | exception Bench_format.Parse_error _ -> ()

let test_campaign_tiny_budget () =
  let c = c17 () in
  let r = Campaign.exec { Campaign.default with max_patterns = 10; seed = 3L } c in
  check int_ "exactly 10 patterns" 10 r.Campaign.patterns_applied;
  check bool_ "eff within budget" true (r.Campaign.last_effective_pattern <= 10)

let test_detect_single () =
  let c = c17 () in
  let cmp = Compiled.of_circuit c in
  let sim = Fsim.create cmp in
  (* G22 output s-a-0: pattern with G22 = 1 detects it. All-ones input:
     G10 = NAND(1,1) = 0, G11 = 0, G16 = 1, G19 = 1, G22 = NAND(0,1) = 1. *)
  let g22 = (Circuit.outputs c).(0) in
  let fault = { Fault.site = Fault.Stem g22; stuck = false } in
  check bool_ "detected" true
    (Fsim.detect_single sim fault [| true; true; true; true; true |])

let test_equiv_random_finds_const_diff () =
  let mk v =
    let c = Circuit.create () in
    let a = Circuit.add_input c in
    let k = Circuit.add_const c v in
    let g = Circuit.add_gate c Gate.And [| a; k |] in
    Circuit.mark_output c g;
    c
  in
  check bool_ "differs" false (Eval.equivalent_random ~seed:1L (mk true) (mk false))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_pp_smoke () =
  let spec = { Comparison_fn.perm = [| 2; 1 |]; lo = 1; hi = 2; complemented = true } in
  let s = Format.asprintf "%a" Comparison_fn.pp_spec spec in
  check bool_ "mentions lower bound" true (contains s "L=1");
  check bool_ "mentions complement" true (contains s "complemented")

let test_table_alignment () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "xxxx"; "1" ];
  Table.add_row t [ "y"; "22" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (* all data lines start at column 0 and the second column is aligned *)
  match lines with
  | _title :: header :: _sep :: r1 :: r2 :: _ ->
    check int_ "b column aligned" (String.index header 'b') (String.index r1 '1');
    check bool_ "second row aligned" true (String.index r2 '2' = String.index header 'b')
  | _ -> Alcotest.fail "unexpected render shape"

let test_subcircuit_cap_respected () =
  let c = c17 () in
  let g22 = (Circuit.outputs c).(0) in
  let subs = Subcircuit.enumerate ~k:5 ~max_candidates:2 c g22 in
  check bool_ "capped" true (List.length subs <= 2)

let test_engine_max_passes () =
  let c = random_circuit ~n_pi:5 ~n_gates:25 3 in
  let options = { Engine.default_options with Engine.k = 4; max_passes = 1 } in
  let stats = Procedure2.run ~options c in
  check bool_ "at most one pass" true (stats.Engine.passes <= 1)

let test_mapper_depth_positive () =
  let r = Mapper.map (mixed ()) in
  check bool_ "depth at least 1" true (r.Mapper.longest >= 1)

let suite =
  [
    ("longest path endpoints", `Quick, test_longest_path_endpoints);
    ("gate arity errors", `Quick, test_gate_arity_errors);
    ("truthtable set is persistent", `Quick, test_truthtable_set_immutable);
    ("rng split independence", `Quick, test_rng_split_independent);
    ("bench whitespace/comments", `Quick, test_bench_whitespace_and_comments);
    ("bench INPUT as gate rejected", `Quick, test_bench_input_as_gate_rejected);
    ("campaign with budget < batch", `Quick, test_campaign_tiny_budget);
    ("detect_single", `Quick, test_detect_single);
    ("random equivalence finds constant diff", `Quick, test_equiv_random_finds_const_diff);
    ("pp_spec smoke", `Quick, test_pp_smoke);
    ("table column alignment", `Quick, test_table_alignment);
    ("subcircuit candidate cap", `Quick, test_subcircuit_cap_respected);
    ("engine pass limit", `Quick, test_engine_max_passes);
    ("mapper depth positive", `Quick, test_mapper_depth_positive);
  ]
