open Helpers

(* End-to-end flows at toy scale, mirroring the bench harness pipelines. *)

let toy_profile seed =
  {
    Circuit_gen.name = "flow";
    n_pi = 12;
    n_po = 8;
    n_gates = 70;
    depth = 8;
    combine_pct = 25;
    xor_pct = 4;
    seed;
  }

let prepared seed =
  let raw = Circuit_gen.generate (toy_profile seed) in
  let c, _ = Redundancy.make_irredundant ~seed:(Int64.add seed 5L) raw in
  c

let test_table2_flow () =
  (* original -> Procedure 2 -> redundancy removal, function preserved and
     both metrics monotone as the paper's Table 2 requires. *)
  let c0 = prepared 101L in
  let g0 = Circuit.two_input_gate_count c0 and p0 = Paths.total c0 in
  let c = Circuit.copy c0 in
  ignore (Procedure2.run ~options:{ Engine.default_options with Engine.k = 5 } c);
  let g1 = Circuit.two_input_gate_count c and p1 = Paths.total c in
  ignore (Redundancy.remove ~seed:9L c);
  let g2 = Circuit.two_input_gate_count c and p2 = Paths.total c in
  check bool_ "gates never grow" true (g1 <= g0 && g2 <= g1);
  check bool_ "paths do not grow under Procedure 2" true (p1 <= p0);
  check bool_ "red.rem does not grow paths" true (p2 <= p1);
  check bool_ "equivalent via random patterns" true
    (Eval.equivalent_random ~patterns:4096 ~seed:3L c0 c)

let test_table5_flow () =
  let c0 = prepared 202L in
  let p0 = Paths.total c0 in
  let c = Circuit.copy c0 in
  ignore (Procedure3.run ~options:{ Engine.default_options with Engine.k = 5 } c);
  check bool_ "paths reduced or equal" true (Paths.total c <= p0);
  check bool_ "equivalent" true (Eval.equivalent_random ~patterns:4096 ~seed:4L c0 c)

let test_table6_flow () =
  (* same seeds, same budget: testability metrics comparable pre/post *)
  let c0 = prepared 303L in
  let c = Circuit.copy c0 in
  ignore (Procedure2.run ~options:{ Engine.default_options with Engine.k = 5 } c);
  ignore (Redundancy.remove ~seed:10L c);
  let cfg = { Campaign.default with max_patterns = 30_000; seed = 55L } in
  let r0 = Campaign.exec cfg c0 in
  let r1 = Campaign.exec cfg c in
  (* the modified circuit has no catastrophic testability loss: undetected
     fraction within a few percent of the original *)
  let frac r =
    float_of_int r.Campaign.remaining /. float_of_int (max 1 r.Campaign.total_faults)
  in
  check bool_ "testability preserved" true (frac r1 <= frac r0 +. 0.05)

let test_table7_flow () =
  let c0 = prepared 404L in
  let c = Circuit.copy c0 in
  ignore (Procedure3.run ~options:{ Engine.default_options with Engine.k = 5 } c);
  let cfg =
    { Pdf_campaign.default with max_pairs = 4_000; stop_window = 4_000; seed = 66L }
  in
  let r0 = Pdf_campaign.exec cfg c0 in
  let r1 = Pdf_campaign.exec cfg c in
  check bool_ "fewer or equal path faults" true
    (r1.Pdf_campaign.total_faults <= r0.Pdf_campaign.total_faults);
  (* coverage may not drop: detected/total ratio *)
  let cov r =
    float_of_int r.Pdf_campaign.detected /. float_of_int (max 1 r.Pdf_campaign.total_faults)
  in
  check bool_ "robust coverage does not collapse" true (cov r1 >= cov r0 -. 0.02)

let test_rar_then_proc2_flow () =
  let c0 = prepared 505L in
  let c = Circuit.copy c0 in
  let rar_opts =
    { Rar.default_options with Rar.max_additions = 3; max_trials = 40; seed = 2L }
  in
  ignore (Rar.optimize ~options:rar_opts c);
  let g_rar = Circuit.two_input_gate_count c in
  ignore (Procedure2.run ~options:{ Engine.default_options with Engine.k = 5 } c);
  check bool_ "P2 after RAR never grows gates" true
    (Circuit.two_input_gate_count c <= g_rar);
  check bool_ "equivalent" true (Eval.equivalent_random ~patterns:4096 ~seed:6L c0 c)

let test_techmap_tracks_gates () =
  let c0 = prepared 606L in
  let c = Circuit.copy c0 in
  ignore (Procedure2.run ~options:{ Engine.default_options with Engine.k = 5 } c);
  let m0 = Mapper.map c0 and m1 = Mapper.map c in
  (* mapping must succeed on both and stay within a sane band *)
  check bool_ "literals positive" true (m0.Mapper.literals > 0 && m1.Mapper.literals > 0);
  check bool_ "mapped subject graphs equivalent" true
    (Eval.equivalent_random ~patterns:2048 ~seed:8L m0.Mapper.subject m1.Mapper.subject)

let suite =
  [
    ("table 2 flow", `Quick, test_table2_flow);
    ("table 5 flow", `Quick, test_table5_flow);
    ("table 6 flow", `Quick, test_table6_flow);
    ("table 7 flow", `Quick, test_table7_flow);
    ("table 3 flow (RAR then Procedure 2)", `Quick, test_rar_then_proc2_flow);
    ("table 4 flow (mapping)", `Quick, test_techmap_tracks_gates);
  ]
