(* Resynthesis flow: Procedure 2 (gate reduction) and Procedure 3 (path
   reduction) on a synthetic multi-level circuit, with equivalence checking
   and technology mapping before and after — the full flow behind Tables 2,
   4 and 5 of the paper, at toy scale so it runs in seconds.

   Run with: dune exec examples/resynthesis_flow.exe *)

let profile =
  {
    Circuit_gen.name = "demo";
    n_pi = 40;
    n_po = 30;
    n_gates = 260;
    depth = 14;
    combine_pct = 25;
    xor_pct = 4;
    seed = 2024L;
  }

let describe label c =
  Printf.printf "%-22s gates(2-inp) %4d   paths %7s   depth %2d\n" label
    (Circuit.two_input_gate_count c)
    (Table.int (Paths.total c))
    (Levelize.depth_logic c)

let () =
  (* 1. prepare an irredundant starting point, as the paper does with [15] *)
  let raw = Circuit_gen.generate profile in
  let c0, report = Redundancy.make_irredundant ~seed:7L raw in
  Format.printf "preparation: %a@." Redundancy.pp_report report;
  describe "original (irredundant)" c0;

  (* 2. Procedure 2: minimise gates, tie-break on paths *)
  let p2 = Circuit.copy c0 in
  let stats2 = Procedure2.run p2 in
  describe "after Procedure 2" p2;
  Format.printf "  %a@." Engine.pp_stats stats2;

  (* 3. Procedure 3: minimise paths (gates may grow) *)
  let p3 = Circuit.copy c0 in
  let stats3 = Procedure3.run p3 in
  describe "after Procedure 3" p3;
  Format.printf "  %a@." Engine.pp_stats stats3;

  (* 4. both results must implement the original function. Every splice was
     already verified exhaustively against its subcircuit; the global check
     here hunts for counterexamples with simulation plus a bounded miter
     proof (complete only for small circuits). *)
  let check label c =
    match Equiv.check ~sim_patterns:262_144 ~seed:99L c0 c with
    | Equiv.Equivalent -> Printf.printf "  equivalence %s: proved\n" label
    | Equiv.Unknown ->
      Printf.printf
        "  equivalence %s: no counterexample in 262k patterns (miter proof hit its bound)\n"
        label
    | Equiv.Counterexample _ -> failwith ("equivalence broken: " ^ label)
  in
  check "P2" p2;
  check "P3" p3;

  (* 5. technology mapping (Table 4): literals and cell depth *)
  let m0 = Mapper.map c0 and m2 = Mapper.map p2 in
  Printf.printf "technology mapping:  original %d literals / depth %d,  Proc.2 %d literals / depth %d\n"
    m0.Mapper.literals m0.Mapper.longest m2.Mapper.literals m2.Mapper.longest;

  (* 6. any redundancy introduced by Procedure 2 is removed again, as in the
     paper's red.rem columns *)
  let rr = Redundancy.remove ~seed:11L p2 in
  Format.printf "post-P2 redundancy removal: %a@." Redundancy.pp_report rr;
  describe "P2 + red. removal" p2
