(* Quickstart: identify a comparison function and build its comparison unit.

   Reproduces the paper's running example (Sec. 3.1): the 4-input function f2
   with ON-set {1, 5, 6, 9, 10, 14} is a comparison function — under the
   bit-reversal permutation its minterms become the contiguous range [5, 10]
   — and is realised by a >= 5 block, a <= 10 block and an output AND.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "--- Identify the paper's f2 -------------------------------";
  let f2 = Truthtable.of_minterms 4 [ 1; 5; 6; 9; 10; 14 ] in
  (match Comparison_fn.identify_exact f2 with
  | None -> print_endline "not a comparison function?!"
  | Some spec ->
    Format.printf "f2 is a comparison function: %a@." Comparison_fn.pp_spec spec;
    let unit_ = Comparison_unit.build ~n:4 spec in
    print_endline "comparison unit (Figure 1 structure):";
    print_string (Comparison_unit.describe unit_);
    Format.printf "verified against the spec: %b@."
      (Comparison_unit.verify ~n:4 spec unit_));

  print_endline "";
  print_endline "--- Special cases of Section 3.2 --------------------------";
  List.iter
    (fun (lo, hi) ->
      Printf.printf "unit for [%d, %d] over 4 inputs:\n" lo hi;
      print_string (Comparison_unit.describe (Comparison_unit.build_interval ~lo ~hi 4)))
    [ (3, 15) (* >= 3 block only, Figure 3(a) *);
      (12, 15) (* >= 12 degenerates to an AND, Figure 3(b) *);
      (0, 12) (* <= 12 block only, Figure 3(c) *);
      (5, 7) (* free variables x1 x2, Figure 5 *) ];

  print_endline "--- A function that is not comparable ----------------------";
  let majority = Truthtable.of_minterms 3 [ 3; 5; 6; 7 ] in
  (match Comparison_fn.identify_exact majority with
  | None -> print_endline "2-of-3 majority: correctly rejected"
  | Some _ -> print_endline "unexpected!");

  print_endline "";
  print_endline "--- Robust testability (Sec. 3.3, Figure 6) ----------------";
  let unit_ = Comparison_unit.build_interval ~lo:11 ~hi:12 4 in
  let r = Unit_testgen.generate unit_ in
  Printf.printf "unit for [11, 12]: %d path delay faults, all robustly tested: %b\n"
    (List.length r.Unit_testgen.tests + List.length r.Unit_testgen.untested)
    (r.Unit_testgen.untested = []);
  let c = unit_.Comparison_unit.circuit in
  List.iter
    (fun t -> Format.printf "  %a@." (Unit_testgen.pp_test c) t)
    r.Unit_testgen.tests
