(* Section 2 in practice: the same function as a minimal two-level
   sum-of-products versus a comparison unit.

   For an interval function the unit wins on every axis the paper cares
   about: equivalent 2-input gates, paths, and robust path-delay-fault
   testability (here verified with the exact PDF test generator).

   Run with: dune exec examples/two_level_vs_unit.exe *)

let report label c =
  let s = Pdf_atpg.classify_all ~seed:7L c in
  Printf.printf
    "%-18s gates(2-inp) %2d   paths %3d   depth %d   PDF faults: %d testable, %d untestable\n"
    label
    (Circuit.two_input_gate_count c)
    (Paths.total c) (Levelize.depth_logic c) s.Pdf_atpg.testable
    s.Pdf_atpg.untestable

let () =
  (* the running example of the paper: ON-set = [5, 10] over 4 inputs *)
  let f = Truthtable.interval 4 ~lo:5 ~hi:10 in

  print_endline "function: minterms 5..10 of 4 variables\n";

  (* 1. minimal two-level implementation (Quine-McCluskey) *)
  let cover = Sop.minimise f in
  Printf.printf "two-level cover (%d cubes, %d literals):\n"
    (List.length cover) (Sop.literals cover);
  List.iter (fun c -> Format.printf "  %a@." (Sop.pp_cube ~n:4) c) cover;
  let sop = Sop.to_circuit 4 cover in

  (* 2. the comparison unit *)
  let unit_ =
    match Comparison_fn.identify_exact f with
    | Some spec -> Comparison_unit.build ~n:4 spec
    | None -> failwith "an interval is always a comparison function"
  in
  let uc = unit_.Comparison_unit.circuit in
  print_endline "\ncomparison unit:";
  print_string (Comparison_unit.describe unit_);

  (* 3. same function? *)
  assert (Eval.equivalent_exhaustive sop uc);
  print_endline "both implement the same function.\n";

  (* 4. the paper's metrics side by side *)
  report "two-level SOP" sop;
  report "comparison unit" uc;

  (* 5. and Procedure 2 discovers the rewrite on its own *)
  let rewritten = Circuit.copy sop in
  let stats = Procedure2.run rewritten in
  Format.printf "\nProcedure 2 on the SOP netlist: %a@." Engine.pp_stats stats;
  assert (Eval.equivalent_exhaustive sop rewritten)
