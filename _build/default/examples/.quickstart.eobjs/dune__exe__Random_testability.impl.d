examples/random_testability.ml: Campaign Circuit Circuit_gen Paths Printf Procedure2 Redundancy Table
