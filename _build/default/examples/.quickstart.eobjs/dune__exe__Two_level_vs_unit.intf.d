examples/two_level_vs_unit.mli:
