examples/quickstart.mli:
