examples/delay_testing.ml: Circuit Circuit_gen Comparison_unit List Paths Pdf_campaign Printf Procedure3 Redundancy Table Unit_testgen
