examples/random_testability.mli:
