examples/delay_testing.mli:
