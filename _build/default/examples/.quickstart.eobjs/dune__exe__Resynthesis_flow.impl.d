examples/resynthesis_flow.ml: Circuit Circuit_gen Engine Equiv Format Levelize Mapper Paths Printf Procedure2 Procedure3 Redundancy Table
