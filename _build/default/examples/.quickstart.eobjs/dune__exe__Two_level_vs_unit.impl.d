examples/two_level_vs_unit.ml: Circuit Comparison_fn Comparison_unit Engine Eval Format Levelize List Paths Pdf_atpg Printf Procedure2 Sop Truthtable
