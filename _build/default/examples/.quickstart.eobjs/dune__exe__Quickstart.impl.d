examples/quickstart.ml: Comparison_fn Comparison_unit Format List Printf Truthtable Unit_testgen
