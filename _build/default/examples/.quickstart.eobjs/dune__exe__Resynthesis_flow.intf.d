examples/resynthesis_flow.mli:
