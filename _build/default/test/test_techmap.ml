open Helpers

let test_subject_graph_equivalence () =
  let c = c17 () in
  let s = Mapper.subject_graph c in
  Check.validate s;
  check bool_ "same function" true (Eval.equivalent_exhaustive c s);
  (* only NAND2 / NOT remain *)
  Circuit.iter_live s (fun id ->
      match Circuit.kind s id with
      | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Not -> ()
      | Gate.Nand -> check int_ "nand2" 2 (Circuit.fanin_count s id)
      | k -> Alcotest.failf "unexpected %s in subject graph" (Gate.to_string k))

let test_subject_graph_random () =
  for seed = 1 to 10 do
    let c = random_circuit ~n_pi:5 ~n_gates:20 seed in
    let s = Mapper.subject_graph c in
    Check.validate s;
    if not (Eval.equivalent_exhaustive c s) then
      Alcotest.failf "seed %d: subject graph not equivalent" seed
  done

let test_map_c17 () =
  let r = Mapper.map (c17 ()) in
  check bool_ "literals sane" true (r.Mapper.literals >= 8 && r.Mapper.literals <= 20);
  check bool_ "depth sane" true (r.Mapper.longest >= 2 && r.Mapper.longest <= 6);
  check bool_ "cells sane" true (r.Mapper.cells_used >= 4)

let test_map_monotonic_in_size () =
  (* Mapping an obviously larger circuit should cost more literals. *)
  let small = c17 () in
  let big = random_circuit ~n_pi:6 ~n_gates:60 ~n_po:4 3 in
  let rs = Mapper.map small and rb = Mapper.map big in
  check bool_ "bigger maps bigger" true (rb.Mapper.literals > rs.Mapper.literals)

let test_inverter_chain_collapses () =
  (* INV(INV(x)) vanishes in the subject graph. *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let n1 = Circuit.add_gate c Gate.Not [| a |] in
  let n2 = Circuit.add_gate c Gate.Not [| n1 |] in
  let g = Circuit.add_gate c Gate.And [| n2; b |] in
  Circuit.mark_output c g;
  let r = Mapper.map c in
  (* AND2 = one cell of 2 literals *)
  check int_ "two literals" 2 r.Mapper.literals;
  check int_ "one cell level" 1 r.Mapper.longest

let test_nand4_matches () =
  (* A 4-input NAND should map to a single NAND4 cell (4 literals, depth 1). *)
  let c = Circuit.create () in
  let xs = Array.init 4 (fun _ -> Circuit.add_input c) in
  let g = Circuit.add_gate c Gate.Nand xs in
  Circuit.mark_output c g;
  let r = Mapper.map c in
  check int_ "4 literals" 4 r.Mapper.literals;
  check int_ "single cell" 1 r.Mapper.cells_used

let test_xor_maps () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let g = Circuit.add_gate c Gate.Xor [| a; b |] in
  Circuit.mark_output c g;
  let r = Mapper.map c in
  (* the 4-NAND network: internal fanout forces >= 3 cells *)
  check bool_ "xor cost" true (r.Mapper.literals >= 6 && r.Mapper.literals <= 8)

let suite =
  [
    ("subject graph: c17 equivalent, NAND2/INV only", `Quick, test_subject_graph_equivalence);
    ("subject graph: random circuits", `Quick, test_subject_graph_random);
    ("map c17", `Quick, test_map_c17);
    ("map grows with circuit size", `Quick, test_map_monotonic_in_size);
    ("double inverter collapses", `Quick, test_inverter_chain_collapses);
    ("NAND4 single-cell match", `Quick, test_nand4_matches);
    ("XOR decomposition maps", `Quick, test_xor_maps);
  ]
