open Helpers

let small_profile seed =
  {
    Circuit_gen.name = "toy";
    n_pi = 10;
    n_po = 6;
    n_gates = 60;
    depth = 8;
    combine_pct = 25;
    xor_pct = 5;
    seed;
  }

let test_generate_valid_and_deterministic () =
  let a = Circuit_gen.generate (small_profile 11L) in
  let b = Circuit_gen.generate (small_profile 11L) in
  Check.validate a;
  check int_ "same gates" (Circuit.num_gates a) (Circuit.num_gates b);
  check int_ "same paths" (Paths.total a) (Paths.total b);
  check bool_ "same text" true (Bench_format.to_string a = Bench_format.to_string b)

let test_generate_respects_interface () =
  let c = Circuit_gen.generate (small_profile 13L) in
  check int_ "inputs" 10 (Circuit.num_inputs c);
  check int_ "outputs" 6 (Circuit.num_outputs c)

let test_generate_depth_control () =
  let deep = Circuit_gen.generate { (small_profile 17L) with Circuit_gen.depth = 16; n_gates = 120 } in
  let shallow = Circuit_gen.generate { (small_profile 17L) with Circuit_gen.depth = 4; n_gates = 120 } in
  check bool_ "depth tracks profile" true (Levelize.depth deep > Levelize.depth shallow);
  check bool_ "deep within bound" true (Levelize.depth deep <= 16)

let test_generate_mostly_observable () =
  let p = small_profile 19L in
  let c = Circuit_gen.generate p in
  (* after sweep, most of the requested gates must have survived *)
  check bool_ "most gates observable" true
    (Circuit.num_gates c * 10 >= p.Circuit_gen.n_gates * 7)

let test_registry_consistency () =
  check int_ "eight stand-ins" 8 (List.length Benchmarks.all);
  check int_ "four small" 4 (List.length Benchmarks.small);
  let e = Benchmarks.find "irs5378" in
  check int_ "interface follows the paper" e.Benchmarks.paper_inputs
    e.Benchmarks.profile.Circuit_gen.n_pi;
  let c = Benchmarks.c17 () in
  check int_ "c17 gates" 6 (Circuit.num_gates c)

let suite =
  [
    ("generator: valid and deterministic", `Quick, test_generate_valid_and_deterministic);
    ("generator: interface", `Quick, test_generate_respects_interface);
    ("generator: depth control", `Quick, test_generate_depth_control);
    ("generator: observability", `Quick, test_generate_mostly_observable);
    ("registry", `Quick, test_registry_consistency);
  ]
