open Helpers

let test_int_formatting () =
  check bool_ "groups" true (Table.int 1192971 = "1,192,971");
  check bool_ "small" true (Table.int 42 = "42");
  check bool_ "boundary" true (Table.int 1000 = "1,000");
  check bool_ "negative" true (Table.int (-1234) = "-1,234")

let test_render () =
  let t = Table.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta"; "22" ];
  let s = Table.render t in
  check bool_ "title" true (String.length s > 0 && String.sub s 0 7 = "== demo");
  check bool_ "row order kept" true
    (let a = String.index s 'a' in
     String.length s > a)

let suite =
  [ ("thousands separators", `Quick, test_int_formatting); ("render", `Quick, test_render) ]
