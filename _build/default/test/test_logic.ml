open Helpers

let tt = Alcotest.testable Truthtable.pp Truthtable.equal

let test_create_get () =
  let f = Truthtable.create 3 (fun m -> m >= 2 && m <= 5) in
  check bool_ "m0" false (Truthtable.get f 0);
  check bool_ "m2" true (Truthtable.get f 2);
  check bool_ "m5" true (Truthtable.get f 5);
  check bool_ "m6" false (Truthtable.get f 6);
  check int_ "popcount" 4 (Truthtable.popcount f);
  check bool_ "minterms" true (Truthtable.minterms f = [ 2; 3; 4; 5 ])

let test_var_msb_convention () =
  (* x1 is the MSB: var 3 1 is true exactly on minterms >= 4. *)
  let x1 = Truthtable.var 3 1 in
  check bool_ "x1 on 4" true (Truthtable.get x1 4);
  check bool_ "x1 off 3" false (Truthtable.get x1 3);
  let x3 = Truthtable.var 3 3 in
  check bool_ "x3 on odd" true (Truthtable.get x3 5);
  check bool_ "x3 off even" false (Truthtable.get x3 4)

let test_ops () =
  let a = Truthtable.var 2 1 and b = Truthtable.var 2 2 in
  let f = Truthtable.land_ a b in
  check bool_ "and minterm" true (Truthtable.minterms f = [ 3 ]);
  let g = Truthtable.lor_ a b in
  check bool_ "or" true (Truthtable.minterms g = [ 1; 2; 3 ]);
  let h = Truthtable.lxor_ a b in
  check bool_ "xor" true (Truthtable.minterms h = [ 1; 2 ]);
  check tt "de morgan"
    (Truthtable.lnot (Truthtable.land_ a b))
    (Truthtable.lor_ (Truthtable.lnot a) (Truthtable.lnot b))

let test_cofactor () =
  let f = Truthtable.interval 3 ~lo:2 ~hi:5 in
  (* x1=0 half: minterms 0..3 -> shifted: {2,3}; x1=1 half: {4,5} -> {0,1} *)
  let f0 = Truthtable.cofactor f ~var:1 false in
  let f1 = Truthtable.cofactor f ~var:1 true in
  check bool_ "f0" true (Truthtable.minterms f0 = [ 2; 3 ]);
  check bool_ "f1" true (Truthtable.minterms f1 = [ 0; 1 ]);
  (* cofactor on the LSB x3 keeps x1 x2 *)
  let g = Truthtable.cofactor f ~var:3 false in
  (* minterms of f with x3=0: 2=010, 4=100 -> over (x1,x2): 01, 10 *)
  check bool_ "lsb cofactor" true (Truthtable.minterms g = [ 1; 2 ])

let test_support () =
  let f = Truthtable.land_ (Truthtable.var 4 1) (Truthtable.var 4 3) in
  check bool_ "support" true (Truthtable.support f = [ 1; 3 ]);
  check bool_ "depends 1" true (Truthtable.depends_on f 1);
  check bool_ "independent of 2" false (Truthtable.depends_on f 2)

let test_permute_identity_and_swap () =
  let f = Truthtable.interval 3 ~lo:1 ~hi:4 in
  let id = [| 1; 2; 3 |] in
  check tt "identity" f (Truthtable.permute f id);
  (* swapping x1 x3: minterm (a,b,c) value of new fn at (c,b,a) *)
  let sw = Truthtable.permute f [| 3; 2; 1 |] in
  check bool_ "swap twice is identity" true
    (Truthtable.equal f (Truthtable.permute sw [| 3; 2; 1 |]))

let test_as_interval () =
  check bool_ "interval" true
    (Truthtable.as_interval (Truthtable.interval 4 ~lo:3 ~hi:9) = Some (3, 9));
  check bool_ "full" true
    (Truthtable.as_interval (Truthtable.const 3 true) = Some (0, 7));
  check bool_ "empty" true (Truthtable.as_interval (Truthtable.const 3 false) = None);
  check bool_ "non-interval" true
    (Truthtable.as_interval (Truthtable.of_minterms 3 [ 1; 3 ]) = None)

let test_eval () =
  let f = Truthtable.interval 3 ~lo:5 ~hi:6 in
  check bool_ "101" true (Truthtable.eval f [| true; false; true |]);
  check bool_ "110" true (Truthtable.eval f [| true; true; false |]);
  check bool_ "111" false (Truthtable.eval f [| true; true; true |])

(* Property tests *)

let gen_tt n =
  QCheck.Gen.(
    map
      (fun bits -> Truthtable.of_minterms n (List.filteri (fun i _ -> List.nth bits i) (List.init (1 lsl n) Fun.id)))
      (list_size (return (1 lsl n)) bool))

let arb_tt n = QCheck.make ~print:Truthtable.to_string (gen_tt n)

let prop_permute_inverse =
  QCheck.Test.make ~name:"permute then inverse permute is identity" ~count:200
    (QCheck.pair (arb_tt 4) (QCheck.make QCheck.Gen.(return ())))
    (fun (f, ()) ->
      let rng = Rng.create 42L in
      let p = Array.init 4 (fun i -> i + 1) in
      Rng.shuffle rng p;
      let inv = Array.make 4 0 in
      Array.iteri (fun j v -> inv.(v - 1) <- j + 1) p;
      Truthtable.equal f (Truthtable.permute (Truthtable.permute f p) inv))

let prop_cofactor_shannon =
  QCheck.Test.make ~name:"Shannon expansion reconstructs the function" ~count:200
    (arb_tt 4) (fun f ->
      let ok = ref true in
      for v = 1 to 4 do
        let f0 = Truthtable.cofactor f ~var:v false in
        let f1 = Truthtable.cofactor f ~var:v true in
        for m = 0 to 15 do
          let bit = m land (1 lsl (4 - v)) <> 0 in
          let low_bits = 4 - v in
          let m' = ((m lsr (low_bits + 1)) lsl low_bits) lor (m land ((1 lsl low_bits) - 1)) in
          let expect = Truthtable.get f m in
          let got = Truthtable.get (if bit then f1 else f0) m' in
          if expect <> got then ok := false
        done
      done;
      !ok)

let prop_popcount_ops =
  QCheck.Test.make ~name:"inclusion-exclusion for or" ~count:200
    (QCheck.pair (arb_tt 4) (arb_tt 4)) (fun (a, b) ->
      Truthtable.popcount (Truthtable.lor_ a b)
      = Truthtable.popcount a + Truthtable.popcount b
        - Truthtable.popcount (Truthtable.land_ a b))

let suite =
  [
    ("create/get/minterms", `Quick, test_create_get);
    ("MSB-first variable convention", `Quick, test_var_msb_convention);
    ("boolean operations", `Quick, test_ops);
    ("cofactors", `Quick, test_cofactor);
    ("support", `Quick, test_support);
    ("permute", `Quick, test_permute_identity_and_swap);
    ("as_interval", `Quick, test_as_interval);
    ("eval", `Quick, test_eval);
  ]

let qchecks =
  [ prop_permute_inverse; prop_cofactor_shannon; prop_popcount_ops ]
