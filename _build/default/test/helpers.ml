(* Shared circuit fixtures and small utilities for the test suites. *)

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int

(* The classic ISCAS-85 c17 netlist: 5 inputs, 2 outputs, 6 NAND gates. *)
let c17_text =
  "# c17\n\
   INPUT(G1)\nINPUT(G2)\nINPUT(G3)\nINPUT(G6)\nINPUT(G7)\n\
   OUTPUT(G22)\nOUTPUT(G23)\n\
   G10 = NAND(G1, G3)\n\
   G11 = NAND(G3, G6)\n\
   G16 = NAND(G2, G11)\n\
   G19 = NAND(G11, G7)\n\
   G22 = NAND(G10, G16)\n\
   G23 = NAND(G16, G19)\n"

let c17 () = Bench_format.of_string ~name:"c17" c17_text

(* A small two-output circuit with reconvergence, XOR and an inverter. *)
let mixed () =
  let c = Circuit.create ~name:"mixed" () in
  let a = Circuit.add_input ~name:"a" c in
  let b = Circuit.add_input ~name:"b" c in
  let d = Circuit.add_input ~name:"d" c in
  let nb = Circuit.add_gate ~name:"nb" c Gate.Not [| b |] in
  let x1 = Circuit.add_gate ~name:"x1" c Gate.And [| a; nb |] in
  let x2 = Circuit.add_gate ~name:"x2" c Gate.Or [| nb; d |] in
  let x3 = Circuit.add_gate ~name:"x3" c Gate.Xor [| x1; x2 |] in
  Circuit.mark_output ~name:"o1" c x3;
  Circuit.mark_output ~name:"o2" c x2;
  c

(* Deterministic random circuit for property tests: n_pi inputs, n_gates
   gates with random kinds and fanins drawn from earlier nodes, last few
   nodes marked as outputs. *)
let random_circuit ?(n_pi = 5) ?(n_gates = 20) ?(n_po = 3) seed =
  let rng = Rng.create (Int64.of_int seed) in
  let c = Circuit.create ~name:(Printf.sprintf "rand%d" seed) () in
  let nodes = ref [] in
  for i = 0 to n_pi - 1 do
    nodes := Circuit.add_input ~name:(Printf.sprintf "i%d" i) c :: !nodes
  done;
  let kinds = [| Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Not; Gate.And; Gate.Or |] in
  for _ = 1 to n_gates do
    let pool = Array.of_list !nodes in
    let kind = kinds.(Rng.int rng (Array.length kinds)) in
    let arity =
      match kind with Gate.Not -> 1 | _ -> 2 + Rng.int rng 2
    in
    let fins = Array.init arity (fun _ -> pool.(Rng.int rng (Array.length pool))) in
    (* And/Or/Nand/Nor reject duplicate fanins in Check; dedup here. *)
    let fins =
      let seen = Hashtbl.create 4 in
      Array.to_list fins
      |> List.filter (fun f ->
             if Hashtbl.mem seen f then false
             else begin
               Hashtbl.add seen f ();
               true
             end)
      |> Array.of_list
    in
    nodes := Circuit.add_gate c kind fins :: !nodes
  done;
  let pool = Array.of_list !nodes in
  for k = 0 to n_po - 1 do
    Circuit.mark_output ~name:(Printf.sprintf "o%d" k) c pool.(k mod Array.length pool)
  done;
  c

let qsuite name cases = (name, List.map QCheck_alcotest.to_alcotest cases)
