(* Cross-cutting property-based tests (qcheck). *)

let arb_seed = QCheck.int_range 1 1_000_000

(* --- comparison units ------------------------------------------------------ *)

let prop_unit_implements_interval =
  QCheck.Test.make ~name:"comparison unit implements its interval (n=6)" ~count:150
    (QCheck.pair (QCheck.int_range 0 63) (QCheck.int_range 0 63))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      let built = Comparison_unit.build_interval ~lo ~hi 6 in
      let spec =
        {
          Comparison_fn.perm = Array.init 6 (fun i -> i + 1);
          lo;
          hi;
          complemented = false;
        }
      in
      Comparison_unit.verify ~n:6 spec built
      && Array.for_all (fun p -> p <= 2) built.Comparison_unit.input_paths)

let prop_identify_scrambled_interval =
  QCheck.Test.make ~name:"exact engine identifies scrambled intervals (n=6)" ~count:150
    (QCheck.triple (QCheck.int_range 0 63) (QCheck.int_range 0 63) arb_seed)
    (fun (a, b, seed) ->
      let lo = min a b and hi = max a b in
      let rng = Rng.create (Int64.of_int seed) in
      let p = Array.init 6 (fun i -> i + 1) in
      Rng.shuffle rng p;
      let f = Truthtable.permute (Truthtable.interval 6 ~lo ~hi) p in
      match Comparison_fn.identify_exact f with
      | Some s -> Comparison_fn.check f s
      | None -> false)

let prop_spec_table_roundtrip =
  QCheck.Test.make ~name:"spec_table respects check" ~count:200
    (QCheck.quad (QCheck.int_range 0 31) (QCheck.int_range 0 31) arb_seed QCheck.bool)
    (fun (a, b, seed, complemented) ->
      let lo = min a b and hi = max a b in
      let rng = Rng.create (Int64.of_int seed) in
      let perm = Array.init 5 (fun i -> i + 1) in
      Rng.shuffle rng perm;
      let spec = { Comparison_fn.perm; lo; hi; complemented } in
      let f = Comparison_fn.spec_table 5 spec in
      Comparison_fn.check f spec)

(* --- wave algebra ------------------------------------------------------------ *)

(* Discrete waveform model: each input switches once at an arbitrary time.
   When the algebra says a gate output is hazard-free, no timing assignment
   may produce more than one output transition, and the endpoints must match
   the algebra's init/final values. *)
let prop_wave_hazard_free_is_sound =
  let gen =
    QCheck.make
      QCheck.Gen.(
        triple (oneofl [ Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Xnor ])
          (list_size (int_range 2 3) (triple bool bool (int_range 1 8)))
          unit)
  in
  QCheck.Test.make ~name:"hazard-free verdicts survive arbitrary switch times"
    ~count:300 gen
    (fun (kind, inputs, ()) ->
      let waves =
        Array.of_list
          (List.map (fun (i, f, _) -> { Wave.init = i; final = f; hf = true }) inputs)
      in
      let out = Wave.eval kind waves in
      let times = List.map (fun (_, _, t) -> t) inputs in
      (* waveform value of input j at time t *)
      let value_at t =
        List.mapi
          (fun _ ((i, f, sw) : bool * bool * int) -> if t < sw then i else f)
          inputs
        |> Array.of_list
      in
      let samples = List.init 10 (fun t -> Gate.eval kind (value_at t)) in
      let transitions =
        let rec count prev = function
          | [] -> 0
          | v :: rest -> (if v <> prev then 1 else 0) + count v rest
        in
        match samples with [] -> 0 | first :: rest -> count first rest
      in
      let endpoints_ok =
        match samples with
        | [] -> false
        | first :: _ ->
          first = out.Wave.init
          && List.nth samples (List.length samples - 1) = out.Wave.final
      in
      ignore times;
      endpoints_ok && ((not out.Wave.hf) || transitions <= 1))

(* --- paths -------------------------------------------------------------------- *)

let prop_paths_match_enumeration =
  QCheck.Test.make ~name:"Procedure 1 label sum equals explicit enumeration" ~count:60
    arb_seed
    (fun seed ->
      let c = Helpers.random_circuit ~n_pi:4 ~n_gates:14 seed in
      Paths.total c = List.length (Paths.enumerate c))

(* --- resynthesis -------------------------------------------------------------- *)

let prop_procedure2_safe =
  QCheck.Test.make ~name:"Procedure 2 preserves function and never grows gates"
    ~count:25 arb_seed
    (fun seed ->
      let c = Helpers.random_circuit ~n_pi:5 ~n_gates:24 ~n_po:3 seed in
      let reference = Circuit.copy c in
      let options =
        { Engine.default_options with Engine.k = 4; max_candidates = 16; max_passes = 4 }
      in
      let stats = Procedure2.run ~options c in
      Eval.equivalent_exhaustive reference c
      && stats.Engine.gates_after <= stats.Engine.gates_before)

let prop_procedure3_safe =
  QCheck.Test.make ~name:"Procedure 3 preserves function and never grows paths"
    ~count:25 arb_seed
    (fun seed ->
      let c = Helpers.random_circuit ~n_pi:5 ~n_gates:24 ~n_po:3 seed in
      let reference = Circuit.copy c in
      let options =
        { Engine.default_options with Engine.k = 4; max_candidates = 16; max_passes = 4 }
      in
      let stats = Procedure3.run ~options c in
      Eval.equivalent_exhaustive reference c
      && stats.Engine.paths_after <= stats.Engine.paths_before)

(* --- fault model ---------------------------------------------------------------- *)

let prop_collapsed_subset =
  QCheck.Test.make ~name:"collapsed fault list is a subset of the full list" ~count:60
    arb_seed
    (fun seed ->
      let c = Helpers.random_circuit ~n_pi:5 ~n_gates:16 seed in
      let full = Fault.all c in
      List.for_all (fun f -> List.mem f full) (Fault.collapsed c))

let prop_collapsing_preserves_campaign_completeness =
  QCheck.Test.make
    ~name:"a pattern set detecting all collapsed faults detects all faults" ~count:20
    arb_seed
    (fun seed ->
      let c = Helpers.random_circuit ~n_pi:4 ~n_gates:12 seed in
      let cmp = Compiled.of_circuit c in
      let sim = Fsim.create cmp in
      (* exhaustive 16-pattern set *)
      let words =
        Array.init 4 (fun j ->
            (* bit m of word j = value of input j in minterm m *)
            let w = ref 0L in
            for m = 0 to 15 do
              if m land (1 lsl (3 - j)) <> 0 then
                w := Int64.logor !w (Int64.shift_left 1L m)
            done;
            !w)
      in
      Fsim.load_patterns sim words;
      let mask = Int64.sub (Int64.shift_left 1L 16) 1L in
      let detected f = Int64.logand (Fsim.detect sim f) mask <> 0L in
      let all_collapsed_detected = List.for_all detected (Fault.collapsed c) in
      let all_detected = List.for_all detected (Fault.all c) in
      (* equivalence collapsing keeps detection equivalence classes intact *)
      (not all_collapsed_detected) || all_detected)

let suite =
  [
    prop_unit_implements_interval;
    prop_identify_scrambled_interval;
    prop_spec_table_roundtrip;
    prop_wave_hazard_free_is_sound;
    prop_paths_match_enumeration;
    prop_procedure2_safe;
    prop_procedure3_safe;
    prop_collapsed_subset;
    prop_collapsing_preserves_campaign_completeness;
  ]
