open Helpers

(* --- Subcircuit enumeration ------------------------------------------------ *)

let test_enumerate_c17 () =
  let c = c17 () in
  let outs = Circuit.outputs c in
  let g22 = outs.(0) in
  let subs = Subcircuit.enumerate ~k:5 ~max_candidates:64 c g22 in
  check bool_ "several candidates" true (List.length subs >= 2);
  (* first candidate is the single gate *)
  (match subs with
  | first :: _ ->
    check int_ "single-gate candidate" 1 (List.length first.Subcircuit.gates);
    check int_ "two inputs" 2 (Array.length first.Subcircuit.inputs)
  | [] -> Alcotest.fail "no candidates");
  List.iter
    (fun s ->
      check bool_ "inputs within limit" true (Array.length s.Subcircuit.inputs <= 5);
      check bool_ "root member" true (List.mem g22 s.Subcircuit.gates))
    subs

let test_extract_single_gate () =
  let c = c17 () in
  let g22 = (Circuit.outputs c).(0) in
  let subs = Subcircuit.enumerate ~k:2 ~max_candidates:4 c g22 in
  match subs with
  | first :: _ ->
    let tt = Subcircuit.extract c first in
    (* a NAND2: ON-set {0,1,2} *)
    check bool_ "nand tt" true (Truthtable.minterms tt = [ 0; 1; 2 ])
  | [] -> Alcotest.fail "no candidate"

let test_extract_matches_cone_eval () =
  (* Extraction must agree with whole-circuit evaluation on the cone. *)
  for seed = 1 to 6 do
    let c = random_circuit ~n_pi:5 ~n_gates:14 seed in
    let order = Circuit.topo_order c in
    let root = order.(Array.length order - 1) in
    match Circuit.kind c root with
    | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
    | _ ->
      let subs = Subcircuit.enumerate ~k:4 ~max_candidates:16 c root in
      List.iter
        (fun s ->
          let tt = Subcircuit.extract c s in
          (* pick a few random input assignments of the whole circuit and
             compare the subcircuit input/output values *)
          let rng = Rng.create (Int64.of_int (seed * 13)) in
          for _ = 1 to 16 do
            let vec = Array.init 5 (fun _ -> Rng.bool rng) in
            let values = Eval.node_values c vec in
            let sub_in = Array.map (fun i -> values.(i)) s.Subcircuit.inputs in
            check bool_ "extract consistent" values.(root) (Truthtable.eval tt sub_in)
          done)
        subs
  done

let test_removable_respects_sharing () =
  (* b = AND(x,y); z1 = OR(b, w); z2 = NOT(b): a subcircuit {z1, b} cannot
     count b as removable because z2 still reads it. *)
  let c = Circuit.create () in
  let x = Circuit.add_input c in
  let y = Circuit.add_input c in
  let w = Circuit.add_input c in
  let b = Circuit.add_gate c Gate.And [| x; y |] in
  let z1 = Circuit.add_gate c Gate.Or [| b; w |] in
  let z2 = Circuit.add_gate c Gate.Not [| b |] in
  Circuit.mark_output c z1;
  Circuit.mark_output c z2;
  let s = { Subcircuit.root = z1; gates = [ b; z1 ]; inputs = [| x; y; w |] } in
  let removable = Subcircuit.removable_gates c s in
  check bool_ "b kept" false (List.mem b removable);
  check bool_ "root removable" true (List.mem z1 removable);
  check int_ "cost counts only the OR" 1 (Subcircuit.removable_cost c s)

(* --- Replacement ------------------------------------------------------------ *)

let test_splice_preserves_function () =
  let c = c17 () in
  let reference = Circuit.copy c in
  let g22 = (Circuit.outputs c).(0) in
  let subs = Subcircuit.enumerate ~k:5 ~max_candidates:32 c g22 in
  (* find an identifiable multi-gate candidate and splice it *)
  let rng = Rng.create 5L in
  let candidate =
    List.find_map
      (fun s ->
        if List.length s.Subcircuit.gates < 2 then None
        else
          let tt = Subcircuit.extract c s in
          Option.map
            (fun spec -> (s, spec))
            (Comparison_fn.identify Comparison_fn.Exact rng tt))
      subs
  in
  match candidate with
  | None -> Alcotest.fail "expected an identifiable subcircuit in c17"
  | Some (s, spec) ->
    let built = Comparison_unit.build ~n:(Array.length s.Subcircuit.inputs) spec in
    let _out = Replace.splice c s built in
    Check.validate c;
    check bool_ "function preserved" true (Eval.equivalent_exhaustive reference c)

(* --- Procedures -------------------------------------------------------------- *)

let proc_options =
  { Engine.default_options with Engine.k = 4; max_candidates = 24; max_passes = 6 }

let test_procedure2_c17 () =
  let c = c17 () in
  let reference = Circuit.copy c in
  let stats = Procedure2.run ~options:proc_options c in
  Check.validate c;
  check bool_ "equivalent" true (Eval.equivalent_exhaustive reference c);
  check bool_ "gates not increased" true
    (stats.Engine.gates_after <= stats.Engine.gates_before)

let test_procedure2_random () =
  for seed = 50 to 62 do
    let c = random_circuit ~n_pi:6 ~n_gates:30 ~n_po:4 seed in
    let reference = Circuit.copy c in
    let stats = Procedure2.run ~options:proc_options c in
    Check.validate c;
    if not (Eval.equivalent_exhaustive reference c) then
      Alcotest.failf "seed %d: procedure 2 broke the function" seed;
    if stats.Engine.gates_after > stats.Engine.gates_before then
      Alcotest.failf "seed %d: procedure 2 increased gates (%d -> %d)" seed
        stats.Engine.gates_before stats.Engine.gates_after
  done

let test_procedure3_random () =
  for seed = 70 to 82 do
    let c = random_circuit ~n_pi:6 ~n_gates:30 ~n_po:4 seed in
    let reference = Circuit.copy c in
    let stats = Procedure3.run ~options:proc_options c in
    Check.validate c;
    if not (Eval.equivalent_exhaustive reference c) then
      Alcotest.failf "seed %d: procedure 3 broke the function" seed;
    if stats.Engine.paths_after > stats.Engine.paths_before then
      Alcotest.failf "seed %d: procedure 3 increased paths (%d -> %d)" seed
        stats.Engine.paths_before stats.Engine.paths_after
  done

let test_procedure2_reduces_on_chain_example () =
  (* A >= block implemented wastefully as two-level logic: x1 + x2 x3 + x2 x4
     ... actually use ON-set [3..15] over 4 vars in sum-of-products form:
     f = x1 + x2 x3 + x2 x4 — that's >= 3? minterms with value >= 3 over
     (x1,x2,x3,x4): f = x1 + x2 + x3 x4. Build it as SOP with 5 2-input
     equivalent gates; the comparison unit needs 3. *)
  let c = Circuit.create () in
  let x1 = Circuit.add_input c in
  let x2 = Circuit.add_input c in
  let x3 = Circuit.add_input c in
  let x4 = Circuit.add_input c in
  let t = Circuit.add_gate c Gate.And [| x3; x4 |] in
  let u = Circuit.add_gate c Gate.Or [| x1; x2 |] in
  let f = Circuit.add_gate c Gate.Or [| u; t |] in
  Circuit.mark_output c f;
  let reference = Circuit.copy c in
  let c2 = Circuit.copy c in
  let stats = Procedure2.run ~options:proc_options c2 in
  check bool_ "equivalent" true (Eval.equivalent_exhaustive reference c2);
  check bool_ "no growth" true (stats.Engine.gates_after <= stats.Engine.gates_before);
  (* The >= 3 structure is already minimal: expect it unchanged (3 gates). *)
  check int_ "stays at 3" 3 stats.Engine.gates_after

let test_procedure2_removes_waste () =
  (* An ON-interval function implemented redundantly wide:
     f = interval [5,10] over 4 inputs as a two-level SOP. Procedure 2 should
     rebuild it as the 7-gate comparison unit of Figure 1 or better. *)
  let c = Circuit.create () in
  let x = Array.init 4 (fun _ -> Circuit.add_input c) in
  let inv = Array.map (fun v -> Circuit.add_gate c Gate.Not [| v |]) x in
  let product bits =
    let lits =
      List.mapi (fun i b -> match b with
        | `P -> x.(i)
        | `N -> inv.(i)
        | `D -> -1)
        bits
      |> List.filter (fun v -> v >= 0)
    in
    Circuit.add_gate c Gate.And (Array.of_list lits)
  in
  (* minterms 5,6,7,8,9,10 = 0101,0110,0111,1000,1001,1010 *)
  let terms =
    [
      product [ `N; `P; `N; `P ] (* 0101 *);
      product [ `N; `P; `P; `D ] (* 011- *);
      product [ `P; `N; `N; `D ] (* 100- *);
      product [ `P; `N; `P; `N ] (* 1010 *);
    ]
  in
  let f = Circuit.add_gate c Gate.Or (Array.of_list terms) in
  Circuit.mark_output c f;
  let reference = Circuit.copy c in
  let options = { proc_options with Engine.k = 5 } in
  let stats = Procedure2.run ~options c in
  check bool_ "equivalent" true (Eval.equivalent_exhaustive reference c);
  check bool_ "shrank" true (stats.Engine.gates_after < stats.Engine.gates_before);
  check bool_ "unit-sized result" true (stats.Engine.gates_after <= 7)

let test_sampled_engine_also_works () =
  let options =
    { proc_options with Engine.engine = Comparison_fn.Sampled 200 }
  in
  for seed = 90 to 94 do
    let c = random_circuit ~n_pi:5 ~n_gates:25 ~n_po:3 seed in
    let reference = Circuit.copy c in
    ignore (Procedure2.run ~options c);
    if not (Eval.equivalent_exhaustive reference c) then
      Alcotest.failf "seed %d: sampled engine broke the function" seed
  done

let suite =
  [
    ("enumerate: c17 candidates", `Quick, test_enumerate_c17);
    ("extract: single NAND", `Quick, test_extract_single_gate);
    ("extract agrees with cone evaluation", `Quick, test_extract_matches_cone_eval);
    ("removable gates respect sharing", `Quick, test_removable_respects_sharing);
    ("splice preserves function", `Quick, test_splice_preserves_function);
    ("procedure 2 on c17", `Quick, test_procedure2_c17);
    ("procedure 2 on random circuits", `Quick, test_procedure2_random);
    ("procedure 3 on random circuits", `Quick, test_procedure3_random);
    ("procedure 2 keeps minimal >=3 structure", `Quick, test_procedure2_reduces_on_chain_example);
    ("procedure 2 rebuilds wasteful interval logic", `Quick, test_procedure2_removes_waste);
    ("procedure 2 with sampled identification", `Quick, test_sampled_engine_also_works);
  ]
