open Helpers

let tt = Alcotest.testable Truthtable.pp Truthtable.equal

let test_primes_classic () =
  (* f(x1,x2,x3) = Σ(0,1,2,5,6,7): classic QM example with primes
     x1'x2', x2'x3, x1x3, x1x2, x2x3' and the two cyclic cores. *)
  let f = Truthtable.of_minterms 3 [ 0; 1; 2; 5; 6; 7 ] in
  let ps = Sop.primes f in
  check int_ "six primes" 6 (List.length ps);
  List.iter
    (fun p ->
      (* every prime is an implicant *)
      for m = 0 to 7 do
        if Sop.cube_covers p m then
          check bool_ "implicant" true (Truthtable.get f m)
      done)
    ps

let test_minimise_covers () =
  let rng = Rng.create 5L in
  for _ = 1 to 60 do
    let n = 3 + Rng.int rng 3 in
    let f = Truthtable.create n (fun _ -> Rng.bool rng) in
    let cover = Sop.minimise f in
    check tt "cover computes f" f (Sop.to_truthtable n cover)
  done

let test_minimise_interval_is_compact () =
  (* A single prime implicant function minimises to exactly one cube. *)
  let f = Truthtable.land_ (Truthtable.var 4 1) (Truthtable.var 4 3) in
  let cover = Sop.minimise f in
  check int_ "one cube" 1 (List.length cover);
  check int_ "two literals" 2 (Sop.literals cover)

let test_to_circuit () =
  let rng = Rng.create 9L in
  for _ = 1 to 30 do
    let n = 3 + Rng.int rng 2 in
    let f = Truthtable.create n (fun _ -> Rng.bool rng) in
    let c = Sop.to_circuit n (Sop.minimise f) in
    Check.validate c;
    check tt "circuit computes f" f (Eval.output_table c 0)
  done

let test_paper_section2_example () =
  (* f1 of Sec. 2: both printed SOPs have 9 literals; our minimiser must do
     at least as well and Procedure 2's input cost model (literal count)
     should agree with the built circuit. *)
  let f1 =
    Truthtable.lor_
      (Truthtable.lor_
         (* x1' x2 x4 *)
         (Truthtable.land_
            (Truthtable.lnot (Truthtable.var 4 1))
            (Truthtable.land_ (Truthtable.var 4 2) (Truthtable.var 4 4)))
         (* x1 x2' x3' *)
         (Truthtable.land_ (Truthtable.var 4 1)
            (Truthtable.land_
               (Truthtable.lnot (Truthtable.var 4 2))
               (Truthtable.lnot (Truthtable.var 4 3)))))
      (* x2 x3' x4 *)
      (Truthtable.land_ (Truthtable.var 4 2)
         (Truthtable.land_ (Truthtable.lnot (Truthtable.var 4 3)) (Truthtable.var 4 4)))
  in
  let cover = Sop.minimise f1 in
  check tt "exact" f1 (Sop.to_truthtable 4 cover);
  check bool_ "at most 9 literals" true (Sop.literals cover <= 9);
  check int_ "three cubes" 3 (List.length cover)

let suite =
  [
    ("primes: classic QM example", `Quick, test_primes_classic);
    ("minimise covers the function", `Quick, test_minimise_covers);
    ("single-implicant compactness", `Quick, test_minimise_interval_is_compact);
    ("to_circuit", `Quick, test_to_circuit);
    ("paper Sec. 2 f1", `Quick, test_paper_section2_example);
  ]
