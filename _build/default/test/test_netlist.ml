open Helpers

(* --- Gate ---------------------------------------------------------------- *)

let test_gate_eval () =
  check bool_ "and" true (Gate.eval Gate.And [| true; true; true |]);
  check bool_ "and0" false (Gate.eval Gate.And [| true; false |]);
  check bool_ "nand" true (Gate.eval Gate.Nand [| true; false |]);
  check bool_ "or" true (Gate.eval Gate.Or [| false; true |]);
  check bool_ "nor" true (Gate.eval Gate.Nor [| false; false |]);
  check bool_ "xor odd" true (Gate.eval Gate.Xor [| true; true; true |]);
  check bool_ "xnor" true (Gate.eval Gate.Xnor [| true; true |]);
  check bool_ "not" false (Gate.eval Gate.Not [| true |]);
  check bool_ "buf" true (Gate.eval Gate.Buf [| true |]);
  check bool_ "const1" true (Gate.eval Gate.Const1 [||])

let test_gate_word_matches_bool () =
  let kinds = [ Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Xor; Gate.Xnor ] in
  List.iter
    (fun k ->
      for m = 0 to 7 do
        let bools = Array.init 3 (fun i -> m land (1 lsl i) <> 0) in
        let words = Array.map (fun b -> if b then 1L else 0L) bools in
        let expect = Gate.eval k bools in
        let got = Int64.logand (Gate.eval_word k words) 1L = 1L in
        check bool_ (Gate.to_string k) expect got
      done)
    kinds

let test_gate_misc () =
  check int_ "2eq of 4-AND" 3 (Gate.two_input_equivalents Gate.And 4);
  check int_ "2eq of NOT" 0 (Gate.two_input_equivalents Gate.Not 1);
  check bool_ "of_string" true (Gate.of_string "buff" = Some Gate.Buf);
  check bool_ "of_string inv" true (Gate.of_string "INV" = Some Gate.Not);
  check bool_ "of_string bad" true (Gate.of_string "FOO" = None);
  check bool_ "controlling and" true (Gate.controlling Gate.And = Some false);
  check bool_ "controlling xor" true (Gate.controlling Gate.Xor = None)

(* --- Circuit -------------------------------------------------------------- *)

let test_circuit_basics () =
  let c = c17 () in
  check int_ "pis" 5 (Circuit.num_inputs c);
  check int_ "pos" 2 (Circuit.num_outputs c);
  check int_ "gates" 6 (Circuit.num_gates c);
  check int_ "2-input" 6 (Circuit.two_input_gate_count c);
  Check.validate c

let test_topo_order () =
  let c = mixed () in
  let order = Circuit.topo_order c in
  let pos = Array.make (Circuit.size c) (-1) in
  Array.iteri (fun i id -> pos.(id) <- i) order;
  Circuit.iter_live c (fun id ->
      Array.iter
        (fun f -> check bool_ "fanin before fanout" true (pos.(f) < pos.(id)))
        (Circuit.fanins c id))

let test_fanouts () =
  let c = mixed () in
  let inputs = Circuit.inputs c in
  let b = inputs.(1) in
  check int_ "b read once" 1 (Circuit.fanout_degree c b);
  (* nb feeds x1 and x2 *)
  let nb = List.hd (Circuit.fanouts c b) in
  check int_ "nb fans out twice" 2 (Circuit.fanout_degree c nb)

let test_retarget_and_delete () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let g1 = Circuit.add_gate c Gate.And [| a; b |] in
  let g2 = Circuit.add_gate c Gate.Or [| g1; a |] in
  Circuit.mark_output c g2;
  let g3 = Circuit.add_gate c Gate.Nand [| a; b |] in
  Circuit.retarget c ~from_:g1 ~to_:g3;
  check bool_ "g1 unused" true (Circuit.fanouts c g1 = []);
  Circuit.delete c g1;
  check bool_ "g1 dead" false (Circuit.is_alive c g1);
  check int_ "sweep removes nothing else" 0 (Circuit.sweep c);
  Check.validate c

let test_delete_guard () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let g = Circuit.add_gate c Gate.Not [| a |] in
  Circuit.mark_output c g;
  (match Circuit.delete c g with
  | () -> Alcotest.fail "deleting a PO should fail"
  | exception Invalid_argument _ -> ());
  match Circuit.delete c a with
  | () -> Alcotest.fail "deleting a read node should fail"
  | exception Invalid_argument _ -> ()

let test_compact () =
  let c = mixed () in
  (* kill one output's cone by retargeting o2 to a fresh const *)
  let k = Circuit.add_const c true in
  let out2 = (Circuit.outputs c).(1) in
  Circuit.retarget c ~from_:out2 ~to_:k;
  ignore (Circuit.sweep c);
  let fresh, remap = Circuit.compact c in
  Check.validate fresh;
  check int_ "same inputs" (Circuit.num_inputs c) (Circuit.num_inputs fresh);
  check int_ "same outputs" (Circuit.num_outputs c) (Circuit.num_outputs fresh);
  Circuit.iter_live c (fun id -> check bool_ "remapped" true (remap.(id) >= 0))

let test_replace_node () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let g = Circuit.add_gate c Gate.And [| a; b |] in
  Circuit.mark_output c g;
  Circuit.replace_node c g Gate.Const1 [||];
  check bool_ "kind" true (Circuit.kind c g = Gate.Const1);
  check int_ "no fanins" 0 (Circuit.fanin_count c g)

(* --- Bench format ---------------------------------------------------------- *)

let test_bench_roundtrip () =
  let c = c17 () in
  let text = Bench_format.to_string c in
  let c2 = Bench_format.of_string text in
  check bool_ "roundtrip equivalent" true (Eval.equivalent_exhaustive c c2);
  check int_ "same gate count" (Circuit.num_gates c) (Circuit.num_gates c2)

let test_bench_out_of_order () =
  let text =
    "OUTPUT(z)\nINPUT(a)\nINPUT(b)\nz = AND(t, b)\nt = NOT(a)\n"
  in
  let c = Bench_format.of_string text in
  check int_ "gates" 2 (Circuit.num_gates c);
  Check.validate c

let test_bench_errors () =
  let expect_error text =
    match Bench_format.of_string text with
    | _ -> Alcotest.fail "expected parse error"
    | exception Bench_format.Parse_error _ -> ()
  in
  expect_error "INPUT(a)\nz = FROB(a)\nOUTPUT(z)\n";
  expect_error "INPUT(a)\nOUTPUT(z)\n";
  (* undefined z *)
  expect_error "INPUT(a)\nz = AND(a, w)\nw = NOT(z)\nOUTPUT(z)\n";
  (* cycle *)
  expect_error "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n"

(* --- Paths (Procedure 1) --------------------------------------------------- *)

let test_paths_c17 () =
  (* Count against explicit enumeration. *)
  let c = c17 () in
  let total = Paths.total c in
  let listed = List.length (Paths.enumerate c) in
  check int_ "total = enumerate" listed total;
  check int_ "c17 paths" 11 total

let test_paths_example_from_paper () =
  (* The paper's Sec. 2 example: two equivalent two-level implementations of
     f_1 embedded behind subcircuits with N_p labels 10/100/20/20. Fewer
     literal occurrences on the high-label input means fewer total paths
     (the paper's printed total has an arithmetic slip; we assert the exact
     sums its own formula gives: 400 vs 390). *)
  let build terms =
    let c = Circuit.create () in
    let mk_label n =
      (* a node with exactly n paths from the inputs *)
      let ins = Array.init n (fun _ -> Circuit.add_input c) in
      if n = 1 then ins.(0) else Circuit.add_gate c Gate.Or ins
    in
    let x1 = mk_label 10
    and x2 = mk_label 100
    and x3 = mk_label 20
    and x4 = mk_label 20 in
    let n1 = Circuit.add_gate c Gate.Not [| x1 |] in
    let n2 = Circuit.add_gate c Gate.Not [| x2 |] in
    let n3 = Circuit.add_gate c Gate.Not [| x3 |] in
    let lit = function
      | 1 -> x1 | -1 -> n1 | 2 -> x2 | -2 -> n2
      | 3 -> x3 | -3 -> n3 | 4 -> x4
      | _ -> assert false
    in
    let ands =
      List.map
        (fun t -> Circuit.add_gate c Gate.And (Array.of_list (List.map lit t)))
        terms
    in
    let f = Circuit.add_gate c Gate.Or (Array.of_list ands) in
    Circuit.mark_output c f;
    Paths.total c
  in
  (* f_{1,1} = x1'x2x4 + x1x2'x3' + x2x3'x4 *)
  let p11 = build [ [ -1; 2; 4 ]; [ 1; -2; -3 ]; [ 2; -3; 4 ] ] in
  (* f_{1,2} = x1'x2x4 + x1x2'x3' + x1x2'x4 *)
  let p12 = build [ [ -1; 2; 4 ]; [ 1; -2; -3 ]; [ 1; -2; 4 ] ] in
  check int_ "f11 paths" 400 p11;
  check int_ "f12 paths" 390 p12;
  check bool_ "f12 has fewer paths" true (p12 < p11)

let test_paths_random_against_enumeration () =
  for seed = 1 to 10 do
    let c = random_circuit ~n_pi:4 ~n_gates:12 seed in
    let total = Paths.total c in
    let listed = List.length (Paths.enumerate c) in
    check int_ (Printf.sprintf "seed %d" seed) listed total
  done

(* --- Levelize --------------------------------------------------------------- *)

let test_levels () =
  let c = c17 () in
  check int_ "c17 depth" 3 (Levelize.depth c);
  check int_ "c17 logic depth" 3 (Levelize.depth_logic c);
  let path = Levelize.longest_path c in
  check int_ "longest path length" 4 (Array.length path)

let test_logic_levels_skip_inverters () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let n1 = Circuit.add_gate c Gate.Not [| a |] in
  let n2 = Circuit.add_gate c Gate.Not [| n1 |] in
  let b = Circuit.add_input c in
  let g = Circuit.add_gate c Gate.And [| n2; b |] in
  Circuit.mark_output c g;
  check int_ "depth counts inverters" 3 (Levelize.depth c);
  check int_ "logic depth skips inverters" 1 (Levelize.depth_logic c)

(* --- Cleanup ----------------------------------------------------------------- *)

let test_constant_folding () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let one = Circuit.add_const c true in
  let zero = Circuit.add_const c false in
  let g1 = Circuit.add_gate c Gate.And [| a; one |] in
  let g2 = Circuit.add_gate c Gate.Or [| g1; zero |] in
  let g3 = Circuit.add_gate c Gate.Nand [| g2; zero |] in
  Circuit.mark_output c g3;
  Cleanup.simplify c;
  Check.validate c;
  (* NAND with a 0 input is constant 1 *)
  let out = (Circuit.outputs c).(0) in
  check bool_ "folds to const1" true (Circuit.kind c out = Gate.Const1)

let test_xor_cancellation () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let g = Circuit.add_gate c Gate.Xor [| a; a; b |] in
  Circuit.mark_output c g;
  let reference = Circuit.copy c in
  Cleanup.simplify c;
  Check.validate c;
  check bool_ "xor(a,a,b) = b" true (Eval.equivalent_exhaustive reference c)

let test_simplify_preserves_function () =
  for seed = 20 to 40 do
    let c = random_circuit ~n_pi:5 ~n_gates:25 seed in
    let reference = Circuit.copy c in
    Cleanup.simplify c;
    Check.validate c;
    check bool_
      (Printf.sprintf "seed %d preserves function" seed)
      true
      (Eval.equivalent_exhaustive reference c)
  done

let suite =
  [
    ("gate eval", `Quick, test_gate_eval);
    ("gate word eval matches bool eval", `Quick, test_gate_word_matches_bool);
    ("gate misc", `Quick, test_gate_misc);
    ("circuit basics", `Quick, test_circuit_basics);
    ("topological order", `Quick, test_topo_order);
    ("fanout index", `Quick, test_fanouts);
    ("retarget and delete", `Quick, test_retarget_and_delete);
    ("delete guards", `Quick, test_delete_guard);
    ("compact", `Quick, test_compact);
    ("replace_node", `Quick, test_replace_node);
    ("bench roundtrip", `Quick, test_bench_roundtrip);
    ("bench out-of-order definitions", `Quick, test_bench_out_of_order);
    ("bench parse errors", `Quick, test_bench_errors);
    ("paths: c17", `Quick, test_paths_c17);
    ("paths: paper Sec.2 example (310)", `Quick, test_paths_example_from_paper);
    ("paths: random circuits vs enumeration", `Quick, test_paths_random_against_enumeration);
    ("levels: c17", `Quick, test_levels);
    ("levels: inverters are transparent", `Quick, test_logic_levels_skip_inverters);
    ("cleanup: constant folding", `Quick, test_constant_folding);
    ("cleanup: xor cancellation", `Quick, test_xor_cancellation);
    ("cleanup: random circuits preserve function", `Quick, test_simplify_preserves_function);
  ]
