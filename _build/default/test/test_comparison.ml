open Helpers

(* The paper's running example f2: minterms {1,5,6,9,10,14} over (y1..y4),
   which under the bit-reversal permutation becomes the interval [5,10]. *)
let f2 = Truthtable.of_minterms 4 [ 1; 5; 6; 9; 10; 14 ]

let test_identify_f2 () =
  match Comparison_fn.identify_exact f2 with
  | None -> Alcotest.fail "f2 is a comparison function"
  | Some s ->
    check bool_ "spec checks" true (Comparison_fn.check f2 s);
    check bool_ "not complemented" false s.Comparison_fn.complemented;
    check int_ "width of interval" 6 (s.Comparison_fn.hi - s.Comparison_fn.lo + 1)

let test_identify_f2_sampled () =
  let rng = Rng.create 3L in
  match Comparison_fn.identify_sampled rng f2 with
  | None -> Alcotest.fail "sampled engine must find f2 (4! < 200)"
  | Some s -> check bool_ "spec checks" true (Comparison_fn.check f2 s)

let test_identify_intervals_after_scrambling () =
  (* Any interval function scrambled by a random permutation must be
     identified by the exact engine. *)
  let rng = Rng.create 5L in
  for n = 2 to 6 do
    for _ = 1 to 20 do
      let total = 1 lsl n in
      let lo = Rng.int rng total in
      let hi = lo + Rng.int rng (total - lo) in
      let base = Truthtable.interval n ~lo ~hi in
      let p = Array.init n (fun i -> i + 1) in
      Rng.shuffle rng p;
      let scrambled = Truthtable.permute base p in
      match Comparison_fn.identify_exact scrambled with
      | None ->
        Alcotest.failf "n=%d [%d,%d] not identified after scrambling" n lo hi
      | Some s ->
        check bool_ "spec checks" true (Comparison_fn.check scrambled s)
    done
  done

let test_identify_complement () =
  (* OFF-set contiguous: accepted with complemented = true. *)
  let f = Truthtable.lnot (Truthtable.interval 4 ~lo:3 ~hi:11) in
  match Comparison_fn.identify_exact f with
  | None -> Alcotest.fail "complement must be identified"
  | Some s ->
    check bool_ "spec checks" true (Comparison_fn.check f s)

let test_identify_rejects_non_comparison () =
  (* 2-out-of-3 majority is not a comparison function: its ON-set {3,5,6,7}
     has popcount 4 but every permutation keeps minterm weights, and no
     4-interval of Z_8 consists of three weight-2 minterms plus 7. *)
  let majority = Truthtable.of_minterms 3 [ 3; 5; 6; 7 ] in
  check bool_ "majority rejected" true (Comparison_fn.identify_exact majority = None);
  (* XOR of 3 variables is also not a comparison function, nor its complement. *)
  let xor3 = Truthtable.of_minterms 3 [ 1; 2; 4; 7 ] in
  check bool_ "xor3 rejected" true (Comparison_fn.identify_exact xor3 = None)

let test_exact_vs_exhaustive_sampled () =
  (* For n <= 4 the sampled engine is exhaustive, hence complete: both
     engines must agree on comparison-or-not for every function tried. *)
  let rng = Rng.create 9L in
  let sample_rng = Rng.create 10L in
  for _ = 1 to 300 do
    let n = 3 + Rng.int rng 2 in
    let f =
      Truthtable.create n (fun _ -> Rng.bool rng)
    in
    let exact = Comparison_fn.identify_exact f in
    let sampled = Comparison_fn.identify_sampled ~budget:1000 sample_rng f in
    (match (exact, sampled) with
    | Some _, Some _ | None, None -> ()
    | Some s, None ->
      Alcotest.failf "exact found %s, exhaustive-sampled missed (tt %s)"
        (Format.asprintf "%a" Comparison_fn.pp_spec s)
        (Truthtable.to_string f)
    | None, Some s ->
      Alcotest.failf "sampled found %s but exact missed (tt %s)"
        (Format.asprintf "%a" Comparison_fn.pp_spec s)
        (Truthtable.to_string f));
    match exact with
    | Some s -> check bool_ "exact spec checks" true (Comparison_fn.check f s)
    | None -> ()
  done

(* --- Comparison units ----------------------------------------------------- *)

let test_unit_figure1 () =
  (* Figure 1: L=5, U=10 over 4 inputs. *)
  let b = Comparison_unit.build_interval ~lo:5 ~hi:10 4 in
  let spec =
    { Comparison_fn.perm = [| 1; 2; 3; 4 |]; lo = 5; hi = 10; complemented = false }
  in
  check bool_ "unit computes [5,10]" true (Comparison_unit.verify ~n:4 spec b);
  Array.iter
    (fun p -> check bool_ "at most two paths" true (p <= 2))
    b.Comparison_unit.input_paths

let test_unit_figure3_special_cases () =
  (* >= 3 = (0011): x1 OR x2 OR (x3 AND x4); >= 12 = (1100): x1 AND x2. *)
  let geq3 = Comparison_unit.build_interval ~lo:3 ~hi:15 4 in
  check int_ ">=3 gates" 3 geq3.Comparison_unit.gates2;
  let geq12 = Comparison_unit.build_interval ~lo:12 ~hi:15 4 in
  check int_ ">=12 gates" 1 geq12.Comparison_unit.gates2;
  (* <= 12 = (1100): x1' OR x2' OR (x3' AND x4'); <= 3: x1' AND x2'. *)
  let leq12 = Comparison_unit.build_interval ~lo:0 ~hi:12 4 in
  check int_ "<=12 gates" 3 leq12.Comparison_unit.gates2;
  let leq3 = Comparison_unit.build_interval ~lo:0 ~hi:3 4 in
  check int_ "<=3 gates" 1 leq3.Comparison_unit.gates2;
  (* spot-check functions *)
  let t = Eval.output_table geq12.Comparison_unit.circuit 0 in
  check bool_ ">=12 correct" true
    (Truthtable.equal t (Truthtable.interval 4 ~lo:12 ~hi:15))

let test_unit_free_variables () =
  (* L=5=(0101), U=7=(0111): free variables x1 x2; unit is x1' AND x2 AND
     (core over x3 x4 with [01..11] -> >= 1 chain only). *)
  check int_ "free count" 2 (Comparison_unit.free_variable_count ~n:4 ~lo:5 ~hi:7);
  let b = Comparison_unit.build_interval ~lo:5 ~hi:7 4 in
  let t = Eval.output_table b.Comparison_unit.circuit 0 in
  check bool_ "function" true (Truthtable.equal t (Truthtable.interval 4 ~lo:5 ~hi:7));
  (* free variables have exactly one path *)
  check int_ "x1 one path" 1 b.Comparison_unit.input_paths.(0);
  check int_ "x2 one path" 1 b.Comparison_unit.input_paths.(1)

let test_unit_single_implicant () =
  (* f(y1,y2,y3) = y1 y3: permutation (y1,y3,y2), L=6, U=7 -> single AND. *)
  let spec =
    { Comparison_fn.perm = [| 1; 3; 2 |]; lo = 6; hi = 7; complemented = false }
  in
  let b = Comparison_unit.build ~n:3 spec in
  check int_ "single AND gate" 1 b.Comparison_unit.gates2;
  let t = Eval.output_table b.Comparison_unit.circuit 0 in
  let expected = Truthtable.land_ (Truthtable.var 3 1) (Truthtable.var 3 3) in
  check bool_ "function is y1 y3" true (Truthtable.equal t expected)

let test_unit_all_specs_exhaustive_small () =
  (* Every interval over 1..5 variables, with and without merging, must
     verify; input path counts never exceed 2. *)
  for n = 1 to 5 do
    let total = 1 lsl n in
    for lo = 0 to total - 1 do
      for hi = lo to total - 1 do
        List.iter
          (fun merge ->
            let b = Comparison_unit.build_interval ~merge ~lo ~hi n in
            let spec =
              {
                Comparison_fn.perm = Array.init n (fun i -> i + 1);
                lo;
                hi;
                complemented = false;
              }
            in
            if not (Comparison_unit.verify ~n spec b) then
              Alcotest.failf "unit n=%d [%d,%d] merge=%b wrong" n lo hi merge;
            Array.iter
              (fun p ->
                if p > 2 then
                  Alcotest.failf "unit n=%d [%d,%d]: input with %d paths" n lo hi p)
              b.Comparison_unit.input_paths)
          [ true; false ]
      done
    done
  done

let test_unit_complemented () =
  let spec =
    { Comparison_fn.perm = [| 2; 1; 3 |]; lo = 2; hi = 5; complemented = true }
  in
  let b = Comparison_unit.build ~n:3 spec in
  check bool_ "complemented unit verifies" true (Comparison_unit.verify ~n:3 spec b)

let test_unit_merging_reduces_depth () =
  (* >= 7 over 4 bits (Figure 4): the two rightmost ANDs merge. *)
  let merged = Comparison_unit.build_interval ~merge:true ~lo:7 ~hi:15 4 in
  let plain = Comparison_unit.build_interval ~merge:false ~lo:7 ~hi:15 4 in
  check bool_ "same gate count" true
    (merged.Comparison_unit.gates2 = plain.Comparison_unit.gates2);
  check bool_ "depth reduced" true
    (merged.Comparison_unit.depth < plain.Comparison_unit.depth)

(* --- Robust testability of units (Sec. 3.3) -------------------------------- *)

let test_unit_fully_robustly_testable () =
  (* The paper's Figure 6 unit: L=11, U=12 -> free x1, core [3,4]. *)
  let b = Comparison_unit.build_interval ~lo:11 ~hi:12 4 in
  let r = Unit_testgen.generate b in
  check int_ "no untestable path faults" 0 (List.length r.Unit_testgen.untested);
  (* verify every generated pair against the robust simulator *)
  let cmp = Compiled.of_circuit b.Comparison_unit.circuit in
  List.iter
    (fun t ->
      let waves = Wave.simulate cmp ~v1:t.Unit_testgen.v1 ~v2:t.Unit_testgen.v2 in
      match Robust.detects cmp waves t.Unit_testgen.path with
      | Some dir -> check bool_ "direction" true (dir = t.Unit_testgen.direction)
      | None -> Alcotest.fail "generated test not robust")
    r.Unit_testgen.tests

let test_units_fully_testable_sweep () =
  (* All 4-variable units are fully robustly testable. *)
  for lo = 0 to 15 do
    for hi = lo to 15 do
      let b = Comparison_unit.build_interval ~lo ~hi 4 in
      if not (Unit_testgen.fully_testable b) then
        Alcotest.failf "unit [%d,%d] not fully robustly testable" lo hi
    done
  done

let suite =
  [
    ("identify: paper example f2", `Quick, test_identify_f2);
    ("identify: f2 with sampled engine", `Quick, test_identify_f2_sampled);
    ("identify: scrambled intervals", `Quick, test_identify_intervals_after_scrambling);
    ("identify: complemented comparison", `Quick, test_identify_complement);
    ("identify: rejects non-comparison functions", `Quick, test_identify_rejects_non_comparison);
    ("identify: exact agrees with exhaustive search", `Quick, test_exact_vs_exhaustive_sampled);
    ("unit: Figure 1", `Quick, test_unit_figure1);
    ("unit: Figure 3 special cases", `Quick, test_unit_figure3_special_cases);
    ("unit: free variables", `Quick, test_unit_free_variables);
    ("unit: single prime implicant", `Quick, test_unit_single_implicant);
    ("unit: exhaustive sweep n<=5", `Quick, test_unit_all_specs_exhaustive_small);
    ("unit: complemented", `Quick, test_unit_complemented);
    ("unit: merging reduces depth (Fig. 4)", `Quick, test_unit_merging_reduces_depth);
    ("unit: Figure 6 robust test set", `Quick, test_unit_fully_robustly_testable);
    ("unit: all 4-var units fully robustly testable", `Quick, test_units_fully_testable_sweep);
  ]
