open Helpers

let test_inverter_chain () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let n1 = Circuit.add_gate c Gate.Not [| a |] in
  let n2 = Circuit.add_gate c Gate.Not [| n1 |] in
  Circuit.mark_output c n2;
  let path = [| a; n1; n2 |] in
  (match Pdf_atpg.generate ~seed:1L c ~path ~direction:Robust.Rising with
  | Pdf_atpg.Test (v1, v2) ->
    check bool_ "launch 0" false v1.(0);
    check bool_ "capture 1" true v2.(0)
  | Pdf_atpg.Untestable | Pdf_atpg.Aborted | Pdf_atpg.Unsupported ->
    Alcotest.fail "inverter chain is robustly testable");
  match Pdf_atpg.generate ~seed:1L c ~path ~direction:Robust.Falling with
  | Pdf_atpg.Test _ -> ()
  | _ -> Alcotest.fail "falling too"

let test_untestable_path () =
  (* f = AND(a, OR(a, b)): the path a -> OR -> AND is robustly untestable:
     propagating a transition through the OR requires b = 0 stable, but then
     the AND's other (on-path-side) input a transitions as well - the side
     input of the AND is a itself, which must be stable non-controlling.
     Conflict: a transitions and must be stable. *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let o = Circuit.add_gate c Gate.Or [| a; b |] in
  let g = Circuit.add_gate c Gate.And [| a; o |] in
  Circuit.mark_output c g;
  let path = [| a; o; g |] in
  (match Pdf_atpg.generate ~seed:2L c ~path ~direction:Robust.Rising with
  | Pdf_atpg.Untestable -> ()
  | other ->
    Alcotest.failf "expected untestable, got %s"
      (Format.asprintf "%a" Pdf_atpg.pp_outcome other));
  (* the direct path a -> AND is testable: set o's side via b... o must be
     stable 1 while a rises; o = a OR b with b=1 gives stable 1. *)
  let direct = [| a; g |] in
  match Pdf_atpg.generate ~seed:2L c ~path:direct ~direction:Robust.Rising with
  | Pdf_atpg.Test _ -> ()
  | other ->
    Alcotest.failf "expected testable, got %s"
      (Format.asprintf "%a" Pdf_atpg.pp_outcome other)

let test_xor_unsupported () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let g = Circuit.add_gate c Gate.Xor [| a; b |] in
  Circuit.mark_output c g;
  match Pdf_atpg.generate ~seed:3L c ~path:[| a; g |] ~direction:Robust.Rising with
  | Pdf_atpg.Unsupported -> ()
  | _ -> Alcotest.fail "xor paths are unsupported"

let test_atpg_agrees_with_exhaustive () =
  (* On small XOR-free circuits, the ATPG verdict must agree with exhaustive
     two-pattern search under the same robust criteria. *)
  let mk_circuit seed =
    let rng = Rng.create (Int64.of_int seed) in
    let c = Circuit.create () in
    let nodes = ref [] in
    for _ = 1 to 4 do
      nodes := Circuit.add_input c :: !nodes
    done;
    for _ = 1 to 10 do
      let pool = Array.of_list !nodes in
      let kinds = [| Gate.And; Gate.Or; Gate.Nand; Gate.Nor; Gate.Not |] in
      let kind = kinds.(Rng.int rng 5) in
      let arity = match kind with Gate.Not -> 1 | _ -> 2 in
      let seen = Hashtbl.create 4 in
      let fins = ref [] in
      while List.length !fins < arity do
        let f = pool.(Rng.int rng (Array.length pool)) in
        if not (Hashtbl.mem seen f) then begin
          Hashtbl.add seen f ();
          fins := f :: !fins
        end
      done;
      nodes := Circuit.add_gate c kind (Array.of_list !fins) :: !nodes
    done;
    (match !nodes with o :: _ -> Circuit.mark_output c o | [] -> assert false);
    ignore (Circuit.sweep c);
    c
  in
  for seed = 1 to 8 do
    let c = mk_circuit seed in
    let cmp = Compiled.of_circuit c in
    let n = Circuit.num_inputs c in
    let exhaustive_testable path direction =
      let found = ref false in
      for m1 = 0 to (1 lsl n) - 1 do
        for m2 = 0 to (1 lsl n) - 1 do
          if not !found then begin
            let vec m = Array.init n (fun j -> m land (1 lsl (n - 1 - j)) <> 0) in
            let waves = Wave.simulate cmp ~v1:(vec m1) ~v2:(vec m2) in
            if Robust.detects cmp waves path = Some direction then found := true
          end
        done
      done;
      !found
    in
    List.iter
      (fun path ->
        List.iter
          (fun direction ->
            match Pdf_atpg.generate ~backtrack_limit:100_000 ~seed:9L c ~path ~direction with
            | Pdf_atpg.Test (v1, v2) ->
              let waves = Wave.simulate cmp ~v1 ~v2 in
              if Robust.detects cmp waves path <> Some direction then
                Alcotest.failf "seed %d: returned test is not robust" seed
            | Pdf_atpg.Untestable ->
              if exhaustive_testable path direction then
                Alcotest.failf "seed %d: claimed untestable but a test exists" seed
            | Pdf_atpg.Aborted | Pdf_atpg.Unsupported -> ())
          [ Robust.Rising; Robust.Falling ])
      (Paths.enumerate c)
  done

let test_classify_comparison_unit () =
  (* A comparison unit must classify as fully robustly testable. *)
  let b = Comparison_unit.build_interval ~lo:11 ~hi:12 4 in
  let s = Pdf_atpg.classify_all ~seed:4L b.Comparison_unit.circuit in
  check int_ "no untestable" 0 s.Pdf_atpg.untestable;
  check int_ "no aborts" 0 s.Pdf_atpg.aborted;
  check bool_ "all testable" true (s.Pdf_atpg.testable > 0)

let suite =
  [
    ("inverter chain", `Quick, test_inverter_chain);
    ("reconvergent untestable path", `Quick, test_untestable_path);
    ("xor paths unsupported", `Quick, test_xor_unsupported);
    ("agrees with exhaustive two-pattern search", `Quick, test_atpg_agrees_with_exhaustive);
    ("comparison units classify fully testable", `Quick, test_classify_comparison_unit);
  ]
