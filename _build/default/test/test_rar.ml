open Helpers

let test_rar_preserves_function () =
  for seed = 1 to 6 do
    let c = random_circuit ~n_pi:5 ~n_gates:22 ~n_po:3 seed in
    let reference = Circuit.copy c in
    let options =
      { Rar.default_options with Rar.max_additions = 4; max_trials = 60; seed = Int64.of_int seed }
    in
    let stats = Rar.optimize ~options c in
    Check.validate c;
    if not (Eval.equivalent_exhaustive reference c) then
      Alcotest.failf "seed %d: RAR broke the function" seed;
    check bool_ "never grows" true (stats.Rar.gates_after <= stats.Rar.gates_before)
  done

let test_rar_finds_classic_rewrite () =
  (* The textbook RAR example shape: adding a redundant connection makes an
     existing wire redundant. We at least require the optimizer to remove the
     straightforward redundancy AND(a, a'). *)
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let d = Circuit.add_input c in
  let na = Circuit.add_gate c Gate.Not [| a |] in
  let dead = Circuit.add_gate c Gate.And [| a; na |] in
  let mid = Circuit.add_gate c Gate.Or [| dead; b |] in
  let out = Circuit.add_gate c Gate.And [| mid; d |] in
  Circuit.mark_output c out;
  let reference = Circuit.copy c in
  let stats = Rar.optimize ~options:{ Rar.default_options with Rar.max_additions = 2; max_trials = 40 } c in
  check bool_ "equivalent" true (Eval.equivalent_exhaustive reference c);
  check bool_ "removed redundancy" true (stats.Rar.removals > 0);
  check bool_ "shrank" true (stats.Rar.gates_after < stats.Rar.gates_before)

let test_rar_deterministic () =
  let run () =
    let c = random_circuit ~n_pi:5 ~n_gates:20 ~n_po:3 7 in
    let options = { Rar.default_options with Rar.max_additions = 3; max_trials = 50; seed = 9L } in
    let stats = Rar.optimize ~options c in
    (stats.Rar.gates_after, Circuit.two_input_gate_count c)
  in
  check bool_ "deterministic" true (run () = run ())

let suite =
  [
    ("RAR preserves function", `Quick, test_rar_preserves_function);
    ("RAR removes obvious redundancy", `Quick, test_rar_finds_classic_rewrite);
    ("RAR is deterministic", `Quick, test_rar_deterministic);
  ]
