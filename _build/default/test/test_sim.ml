open Helpers

let test_eval_c17 () =
  let c = c17 () in
  (* G22 = NAND(G10, G16); all-zero inputs: G10=1, G11=1, G16=1, G19=1,
     G22 = NAND(1,1)=0, G23=0. *)
  let outs = Eval.run c [| false; false; false; false; false |] in
  check bool_ "G22" false outs.(0);
  check bool_ "G23" false outs.(1)

let test_output_table_matches_eval () =
  let c = mixed () in
  let t0 = Eval.output_table c 0 in
  for m = 0 to 7 do
    let inputs = Array.init 3 (fun j -> m land (1 lsl (2 - j)) <> 0) in
    check bool_
      (Printf.sprintf "minterm %d" m)
      (Eval.run c inputs).(0)
      (Truthtable.get t0 m)
  done

let test_word_sim_matches_scalar () =
  for seed = 1 to 10 do
    let c = random_circuit ~n_pi:6 ~n_gates:30 seed in
    let cmp = Compiled.of_circuit c in
    let rng = Rng.create (Int64.of_int (seed * 7)) in
    let words = Array.init 6 (fun _ -> Rng.next64 rng) in
    let values = Compiled.simulate cmp words in
    (* compare 8 of the 64 slots against scalar evaluation *)
    for slot = 0 to 7 do
      let inputs =
        Array.map
          (fun w -> Int64.logand (Int64.shift_right_logical w slot) 1L = 1L)
          words
      in
      let scalar = Eval.run c inputs in
      Array.iteri
        (fun k o ->
          let parallel =
            Int64.logand (Int64.shift_right_logical values.(o) slot) 1L = 1L
          in
          check bool_ (Printf.sprintf "seed %d slot %d out %d" seed slot k)
            scalar.(k) parallel)
        (Circuit.outputs c)
    done
  done

let test_equivalence_checks () =
  let c = c17 () in
  let c2 = Bench_format.of_string (Bench_format.to_string c) in
  check bool_ "exhaustive equal" true (Eval.equivalent_exhaustive c c2);
  check bool_ "random equal" true (Eval.equivalent_random ~seed:1L c c2);
  (* flip one gate kind *)
  let c3 = Circuit.copy c in
  let order = Circuit.topo_order c3 in
  let g = order.(Array.length order - 1) in
  Circuit.set_kind c3 g Gate.And;
  check bool_ "exhaustive differ" false (Eval.equivalent_exhaustive c c3);
  check bool_ "random differ" false (Eval.equivalent_random ~seed:1L c c3)

let test_rng_determinism () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 1 to 100 do
    check bool_ "same stream" true (Rng.next64 a = Rng.next64 b)
  done;
  let xs = Array.init 1000 (fun _ -> Rng.int a 10) in
  Array.iter (fun x -> check bool_ "in range" true (x >= 0 && x < 10)) xs

let suite =
  [
    ("c17 single-pattern", `Quick, test_eval_c17);
    ("output_table matches eval", `Quick, test_output_table_matches_eval);
    ("64-way word sim matches scalar", `Quick, test_word_sim_matches_scalar);
    ("equivalence checkers", `Quick, test_equivalence_checks);
    ("rng determinism", `Quick, test_rng_determinism);
  ]
