open Helpers

(* These tests only run against the on-disk prepared circuits; they never
   trigger the expensive preparation step. *)

let cached_entries () = List.filter Benchmarks.cached Benchmarks.all

let test_cached_circuits_valid () =
  match cached_entries () with
  | [] -> () (* nothing prepared on this machine: vacuous *)
  | entries ->
    List.iter
      (fun e ->
        let c = Benchmarks.build e in
        Check.validate c;
        check int_ (e.Benchmarks.name ^ " inputs")
          e.Benchmarks.profile.Circuit_gen.n_pi (Circuit.num_inputs c);
        check int_ (e.Benchmarks.name ^ " outputs")
          e.Benchmarks.profile.Circuit_gen.n_po (Circuit.num_outputs c);
        check bool_ "has gates" true (Circuit.num_gates c > 100);
        check bool_ "paths computable" true (Paths.total c > 0))
      entries

let test_cached_deterministic_copy () =
  match cached_entries () with
  | [] -> ()
  | e :: _ ->
    let a = Benchmarks.build e in
    let b = Benchmarks.build e in
    check bool_ "two builds identical" true
      (Bench_format.to_string a = Bench_format.to_string b)

let suite =
  [
    ("cached stand-ins are valid", `Quick, test_cached_circuits_valid);
    ("builds are identical copies", `Quick, test_cached_deterministic_copy);
  ]
