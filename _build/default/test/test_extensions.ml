open Helpers

(* --- Justification ----------------------------------------------------------- *)

let test_justify_agrees_with_exhaustive () =
  for seed = 1 to 10 do
    let c = random_circuit ~n_pi:5 ~n_gates:14 seed in
    let rng = Rng.create (Int64.of_int (seed * 3)) in
    let order = Circuit.topo_order c in
    for _ = 1 to 10 do
      (* pick 1-2 random target lines with random values *)
      let pick () = (order.(Rng.int rng (Array.length order)), Rng.bool rng) in
      let targets = if Rng.bool rng then [ pick () ] else [ pick (); pick () ] in
      (* skip degenerate duplicate-node targets with conflicting values *)
      let consistent =
        List.for_all
          (fun (n, v) -> List.for_all (fun (n', v') -> n <> n' || v = v') targets)
          targets
      in
      if consistent then begin
        let truth = Justify.reachable_exhaustive c targets in
        match Justify.search ~backtrack_limit:10_000 c targets with
        | Justify.Sat vec ->
          if not truth then Alcotest.failf "seed %d: SAT but unreachable" seed;
          let values = Eval.node_values c vec in
          List.iter
            (fun (node, want) ->
              check bool_ "witness achieves target" want values.(node))
            targets
        | Justify.Unsat ->
          if truth then Alcotest.failf "seed %d: UNSAT but reachable" seed
        | Justify.Unknown -> ()
      end
    done
  done

let test_justify_simple () =
  let c = Circuit.create () in
  let a = Circuit.add_input c in
  let b = Circuit.add_input c in
  let na = Circuit.add_gate c Gate.Not [| a |] in
  let g = Circuit.add_gate c Gate.And [| a; na |] in
  let h = Circuit.add_gate c Gate.Or [| a; b |] in
  Circuit.mark_output c g;
  Circuit.mark_output c h;
  (match Justify.search c [ (g, true) ] with
  | Justify.Unsat -> ()
  | Justify.Sat _ | Justify.Unknown -> Alcotest.fail "a AND a' = 1 is unreachable");
  match Justify.search c [ (h, true); (a, false) ] with
  | Justify.Sat vec ->
    check bool_ "a=0" false vec.(0);
    check bool_ "b=1" true vec.(1)
  | Justify.Unsat | Justify.Unknown -> Alcotest.fail "h=1, a=0 is reachable"

(* --- Don't-care identification ------------------------------------------------ *)

let test_identify_dc_basic () =
  (* ON = {2,3}, OFF = {0,5}, DC = rest. Under the identity order the span
     [2,3] avoids the care-OFF minterms -> identified without permutation. *)
  let care_on = Truthtable.of_minterms 3 [ 2; 3 ] in
  let dc = Truthtable.of_minterms 3 [ 1; 4; 6; 7 ] in
  let rng = Rng.create 1L in
  match Comparison_fn.identify_dc rng ~care_on ~dc with
  | None -> Alcotest.fail "should identify with don't-cares"
  | Some spec ->
    check bool_ "agrees on cares" true (Comparison_fn.dc_matches ~care_on ~dc spec)

let test_identify_dc_needs_dc () =
  (* 2-of-3 majority is not a comparison function (see the comparison suite),
     but declaring its OFF-set a don't-care trivially allows a span. *)
  let care_on = Truthtable.of_minterms 3 [ 3; 5; 6; 7 ] in
  let none = Truthtable.const 3 false in
  let all_dc = Truthtable.lnot care_on in
  let rng = Rng.create 2L in
  check bool_ "without DCs it fails" true
    (Comparison_fn.identify_exact care_on = None);
  (match Comparison_fn.identify_dc rng ~care_on ~dc:none with
  | Some s ->
    (* with no don't-cares the result must be a real comparison function *)
    check bool_ "no-DC result is sound" true (Comparison_fn.check care_on s)
  | None -> ());
  match Comparison_fn.identify_dc rng ~care_on ~dc:all_dc with
  | None -> Alcotest.fail "full DC freedom must succeed"
  | Some s -> check bool_ "sound" true (Comparison_fn.dc_matches ~care_on ~dc:all_dc s)

let prop_identify_dc_sound =
  QCheck.Test.make ~name:"identify_dc results agree on every care minterm" ~count:200
    (QCheck.pair (QCheck.int_range 1 1000) (QCheck.int_range 0 255))
    (fun (seed, mask) ->
      let rng = Rng.create (Int64.of_int seed) in
      let care_on = Truthtable.create 4 (fun _ -> Rng.bool rng) in
      let dc =
        Truthtable.land_
          (Truthtable.create 4 (fun m -> (mask lsr (m land 7)) land 1 = 1))
          (Truthtable.lnot care_on)
      in
      let care_on = Truthtable.land_ care_on (Truthtable.lnot dc) in
      match Comparison_fn.identify_dc rng ~care_on ~dc with
      | None -> true
      | Some spec -> Comparison_fn.dc_matches ~care_on ~dc spec)

(* --- Multi-unit covers -------------------------------------------------------- *)

let test_multi_unit_xor3 () =
  (* XOR of 3 variables is not a comparison function but has a 2-unit cover:
     ON = {1,2,4,7} -> runs {1,2},{4},{7}? Under some permutation fewer runs
     exist; the cover search must find one within 3 units and the built
     circuit must compute XOR exactly. *)
  let xor3 = Truthtable.of_minterms 3 [ 1; 2; 4; 7 ] in
  let rng = Rng.create 3L in
  match Multi_unit.find ~max_units:3 rng xor3 with
  | None -> Alcotest.fail "xor3 must have a small cover"
  | Some cover ->
    check bool_ "at most 3 units" true (List.length cover.Multi_unit.specs <= 3);
    let built = Multi_unit.build ~n:3 cover in
    check bool_ "computes xor3" true (Multi_unit.verify ~n:3 xor3 built)

let prop_multi_unit_exact =
  QCheck.Test.make ~name:"multi-unit covers compute the function exactly" ~count:200
    (QCheck.int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let f = Truthtable.create 4 (fun _ -> Rng.bool rng) in
      match Truthtable.is_const f with
      | Some _ -> true
      | None -> (
        match Multi_unit.find ~max_units:8 rng f with
        | None -> false (* with 8 units every 4-var function is coverable *)
        | Some cover -> Multi_unit.verify ~n:4 f (Multi_unit.build ~n:4 cover)))

let test_multi_unit_respects_limit () =
  let rng = Rng.create 9L in
  (* checkerboard needs many runs; with max_units 2 it must be rejected or
     covered within 2 *)
  let f = Truthtable.of_minterms 4 [ 0; 2; 4; 6; 8; 10; 12; 14 ] in
  match Multi_unit.find ~max_units:2 rng f with
  | None -> ()
  | Some cover -> check bool_ "limit" true (List.length cover.Multi_unit.specs <= 2)

(* --- Engine with extensions ----------------------------------------------------- *)

let ext_options =
  {
    Engine.default_options with
    Engine.k = 4;
    max_candidates = 16;
    max_passes = 4;
    use_dontcares = true;
    max_units = 3;
  }

let test_procedure2_with_extensions_safe () =
  (* Don't-care replacements only differ on proved-unreachable input
     combinations, so whole-circuit equivalence must still hold exactly. *)
  for seed = 200 to 216 do
    let c = random_circuit ~n_pi:6 ~n_gates:28 ~n_po:4 seed in
    let reference = Circuit.copy c in
    let stats = Procedure2.run ~options:ext_options c in
    Check.validate c;
    if not (Eval.equivalent_exhaustive reference c) then
      Alcotest.failf "seed %d: extended procedure 2 broke the function" seed;
    if stats.Engine.gates_after > stats.Engine.gates_before then
      Alcotest.failf "seed %d: extended procedure 2 grew gates" seed
  done

let test_procedure3_with_extensions_safe () =
  for seed = 230 to 242 do
    let c = random_circuit ~n_pi:6 ~n_gates:28 ~n_po:4 seed in
    let reference = Circuit.copy c in
    let stats = Procedure3.run ~options:ext_options c in
    Check.validate c;
    if not (Eval.equivalent_exhaustive reference c) then
      Alcotest.failf "seed %d: extended procedure 3 broke the function" seed;
    if stats.Engine.paths_after > stats.Engine.paths_before then
      Alcotest.failf "seed %d: extended procedure 3 grew paths" seed
  done

let suite =
  [
    ("justify agrees with exhaustive reachability", `Quick, test_justify_agrees_with_exhaustive);
    ("justify basics", `Quick, test_justify_simple);
    ("identify_dc basic", `Quick, test_identify_dc_basic);
    ("identify_dc needs don't-cares", `Quick, test_identify_dc_needs_dc);
    ("multi-unit: xor3", `Quick, test_multi_unit_xor3);
    ("multi-unit respects unit limit", `Quick, test_multi_unit_respects_limit);
    ("procedure 2 with extensions is safe", `Quick, test_procedure2_with_extensions_safe);
    ("procedure 3 with extensions is safe", `Quick, test_procedure3_with_extensions_safe);
  ]

let qchecks = [ prop_identify_dc_sound; prop_multi_unit_exact ]
