test/test_benchmarks.ml: Bench_format Benchmarks Check Circuit Circuit_gen Helpers List Paths
