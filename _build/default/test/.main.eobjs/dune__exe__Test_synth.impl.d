test/test_synth.ml: Alcotest Array Check Circuit Comparison_fn Comparison_unit Engine Eval Gate Helpers Int64 List Option Procedure2 Procedure3 Replace Rng Subcircuit Truthtable
