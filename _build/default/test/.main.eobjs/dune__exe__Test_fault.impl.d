test/test_fault.ml: Alcotest Array Campaign Circuit Compiled Eval Fault Fsim Gate Helpers Int64 List Rng
