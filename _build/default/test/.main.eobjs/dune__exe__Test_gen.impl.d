test/test_gen.ml: Bench_format Benchmarks Check Circuit Circuit_gen Helpers Levelize List Paths
