test/test_integration.ml: Campaign Circuit Circuit_gen Engine Eval Helpers Int64 Mapper Paths Pdf_campaign Procedure2 Procedure3 Rar Redundancy
