test/test_report.ml: Helpers String Table
