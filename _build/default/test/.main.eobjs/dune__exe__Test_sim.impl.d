test/test_sim.ml: Array Bench_format Circuit Compiled Eval Gate Helpers Int64 Printf Rng Truthtable
