test/test_netlist.ml: Alcotest Array Bench_format Check Circuit Cleanup Eval Gate Helpers Int64 Levelize List Paths Printf
