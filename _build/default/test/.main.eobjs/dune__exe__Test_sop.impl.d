test/test_sop.ml: Alcotest Check Eval Helpers List Rng Sop Truthtable
