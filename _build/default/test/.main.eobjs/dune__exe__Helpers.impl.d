test/helpers.ml: Alcotest Array Bench_format Circuit Gate Hashtbl Int64 List Printf QCheck_alcotest Rng
