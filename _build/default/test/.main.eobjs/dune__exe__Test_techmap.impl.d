test/test_techmap.ml: Alcotest Array Check Circuit Eval Gate Helpers Mapper
