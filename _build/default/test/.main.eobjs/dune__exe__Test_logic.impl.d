test/test_logic.ml: Alcotest Array Fun Helpers List QCheck Rng Truthtable
