test/test_delay.ml: Alcotest Array Circuit Compiled Eval Gate Hashtbl Helpers Int64 List Paths Pdf_campaign Printf Rng Robust Wave
