test/test_comparison.ml: Alcotest Array Comparison_fn Comparison_unit Compiled Eval Format Helpers List Rng Robust Truthtable Unit_testgen Wave
