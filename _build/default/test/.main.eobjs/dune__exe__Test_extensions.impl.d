test/test_extensions.ml: Alcotest Array Check Circuit Comparison_fn Engine Eval Gate Helpers Int64 Justify List Multi_unit Procedure2 Procedure3 QCheck Rng Truthtable
