test/main.mli:
