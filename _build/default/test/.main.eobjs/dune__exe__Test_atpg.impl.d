test/test_atpg.ml: Alcotest Array Bench_format Circuit Compiled Equiv Eval Fault Fsim Gate Helpers Int64 List Podem Printf Redundancy
