test/test_rar.ml: Alcotest Check Circuit Eval Gate Helpers Int64 Rar
