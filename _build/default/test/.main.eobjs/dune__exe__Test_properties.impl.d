test/test_properties.ml: Array Circuit Comparison_fn Comparison_unit Compiled Engine Eval Fault Fsim Gate Helpers Int64 List Paths Procedure2 Procedure3 QCheck Rng Truthtable Wave
