test/test_pdf_atpg.ml: Alcotest Array Circuit Comparison_unit Compiled Format Gate Hashtbl Helpers Int64 List Paths Pdf_atpg Rng Robust Wave
