(** Procedure 3: reduce the number of paths by comparison-unit replacement;
    the gate count is not a secondary objective and may grow (Sec. 4.2). *)

val run : ?options:Engine.options -> Circuit.t -> Engine.stats
