let run ?(options = Engine.default_options) c = Engine.optimize Engine.Gates options c
