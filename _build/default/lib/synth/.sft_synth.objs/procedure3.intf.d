lib/synth/procedure3.mli: Circuit Engine
