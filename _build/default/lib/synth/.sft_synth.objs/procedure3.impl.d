lib/synth/procedure3.ml: Engine
