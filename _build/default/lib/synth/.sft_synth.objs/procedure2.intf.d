lib/synth/procedure2.mli: Circuit Engine
