lib/synth/replace.ml: Array Circuit Comparison_unit Eval Gate Subcircuit Truthtable
