lib/synth/procedure2.ml: Engine
