lib/synth/subcircuit.mli: Circuit Format Truthtable
