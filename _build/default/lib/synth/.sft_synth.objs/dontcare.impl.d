lib/synth/dontcare.ml: Array Int64 Justify List Truthtable
