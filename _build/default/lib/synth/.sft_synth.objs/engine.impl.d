lib/synth/engine.ml: Array Circuit Comparison_fn Comparison_unit Compiled Dontcare Eval Format Gate Int64 List Multi_unit Paths Replace Rng Subcircuit Truthtable
