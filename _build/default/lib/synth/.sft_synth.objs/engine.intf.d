lib/synth/engine.mli: Circuit Comparison_fn Format
