lib/synth/subcircuit.ml: Array Circuit Format Gate Hashtbl Int List Queue Set String Truthtable
