lib/synth/dontcare.mli: Circuit Compiled Truthtable
