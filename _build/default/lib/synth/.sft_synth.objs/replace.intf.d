lib/synth/replace.mli: Circuit Comparison_unit Subcircuit
