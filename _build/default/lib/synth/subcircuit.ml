type t = {
  root : int;
  gates : int list;
  inputs : int array;
}

let pp ppf s =
  Format.fprintf ppf "root %d, gates {%s}, inputs [%s]" s.root
    (String.concat " " (List.map string_of_int s.gates))
    (String.concat " " (Array.to_list (Array.map string_of_int s.inputs)))

let is_gate c id =
  match Circuit.kind c id with
  | Gate.Input | Gate.Const0 | Gate.Const1 -> false
  | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
  | Gate.Xnor -> true

let is_const c id =
  match Circuit.kind c id with
  | Gate.Const0 | Gate.Const1 -> true
  | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
  | Gate.Nor | Gate.Xor | Gate.Xnor -> false

module ISet = Set.Make (Int)

(* Input cut of a gate set: fanins of members outside the set, constants
   excluded, sorted. *)
let cut_of c set =
  ISet.fold
    (fun g acc ->
      Array.fold_left
        (fun acc f ->
          if ISet.mem f set || is_const c f then acc else ISet.add f acc)
        acc (Circuit.fanins c g))
    set ISet.empty

let enumerate ~k ~max_candidates c root =
  if not (is_gate c root) then invalid_arg "Subcircuit.enumerate: root not a gate";
  let seen = Hashtbl.create 64 in
  let results = ref [] in
  let count = ref 0 in
  let pushes = ref 0 in
  let push_budget = max 256 (max_candidates * 20) in
  let queue = Queue.create () in
  let key set = String.concat "," (List.map string_of_int (ISet.elements set)) in
  let push set =
    let id = key set in
    if !pushes < push_budget && not (Hashtbl.mem seen id) then begin
      incr pushes;
      Hashtbl.add seen id ();
      Queue.add set queue
    end
  in
  push (ISet.singleton root);
  while (not (Queue.is_empty queue)) && !count < max_candidates do
    let set = Queue.pop queue in
    let cut = cut_of c set in
    if ISet.cardinal cut <= k then begin
      incr count;
      results :=
        {
          root;
          gates = ISet.elements set;
          inputs = Array.of_list (ISet.elements cut);
        }
        :: !results;
      (* expand by absorbing each gate on the cut *)
      ISet.iter (fun h -> if is_gate c h then push (ISet.add h set)) cut
    end
    else
      (* over budget: absorbing more gates can still shrink the cut when the
         absorbed gate's fanins are already inputs; keep expanding within a
         small slack to find such reconvergences *)
      if ISet.cardinal cut <= k + 2 then
        ISet.iter (fun h -> if is_gate c h then push (ISet.add h set)) cut
  done;
  List.rev !results

let member_order c s =
  let set = List.fold_left (fun acc g -> ISet.add g acc) ISet.empty s.gates in
  Array.of_list
    (List.filter (fun id -> ISet.mem id set) (Array.to_list (Circuit.topo_order c)))

let extract c s =
  let n = Array.length s.inputs in
  if n > 16 then invalid_arg "Subcircuit.extract: too many inputs";
  let order = member_order c s in
  let values = Array.make (Circuit.size c) false in
  Truthtable.create n (fun m ->
      Array.iteri
        (fun j input -> values.(input) <- m land (1 lsl (n - 1 - j)) <> 0)
        s.inputs;
      Array.iter
        (fun g ->
          let fins = Circuit.fanins c g in
          let vals =
            Array.map
              (fun f ->
                match Circuit.kind c f with
                | Gate.Const0 -> false
                | Gate.Const1 -> true
                | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Or
                | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor -> values.(f))
              fins
          in
          values.(g) <- Gate.eval (Circuit.kind c g) vals)
        order;
      values.(s.root))

let removable_gates c s =
  let set = List.fold_left (fun acc g -> ISet.add g acc) ISet.empty s.gates in
  let externally_visible g =
    g <> s.root
    && (Circuit.is_output c g
       || List.exists (fun r -> not (ISet.mem r set)) (Circuit.fanouts c g))
  in
  let kept = ref ISet.empty in
  let rec keep g =
    if (not (ISet.mem g !kept)) && ISet.mem g set && g <> s.root then begin
      kept := ISet.add g !kept;
      Array.iter keep (Circuit.fanins c g)
    end
  in
  List.iter (fun g -> if externally_visible g then keep g) s.gates;
  List.filter (fun g -> not (ISet.mem g !kept)) s.gates

let removable_cost c s =
  List.fold_left
    (fun acc g ->
      acc + Gate.two_input_equivalents (Circuit.kind c g) (Circuit.fanin_count c g))
    0 (removable_gates c s)
