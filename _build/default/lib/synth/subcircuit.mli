(** Candidate subcircuit enumeration for resynthesis (Sec. 4.1).

    Candidates with output [root] are grown by repeatedly absorbing a gate
    that feeds the current input cut, as long as the cut stays within [k]
    inputs. Constant fanins never count as inputs (they are folded into the
    extracted function). Candidates are deduplicated by gate set and capped. *)

type t = {
  root : int;  (** the gate whose output the subcircuit drives *)
  gates : int list;  (** member gates, sorted ascending, [root] included *)
  inputs : int array;
      (** boundary nodes feeding the subcircuit from outside, sorted
          ascending; position [j] is truth-table variable [x_(j+1)] (MSB
          first) *)
}

val pp : Format.formatter -> t -> unit

val enumerate : k:int -> max_candidates:int -> Circuit.t -> int -> t list
(** All candidates rooted at a gate, smallest first (the single-gate
    subcircuit is always first when it fits in [k] inputs). *)

val extract : Circuit.t -> t -> Truthtable.t
(** The function computed on [root] in terms of [inputs] (exhaustive local
    simulation; at most [2^k] evaluations of the member gates). *)

val removable_gates : Circuit.t -> t -> int list
(** Member gates that die if the subcircuit is replaced: everything except
    the backward closure of members that are primary outputs or still drive
    logic outside the subcircuit. The root is always removable. *)

val removable_cost : Circuit.t -> t -> int
(** Equivalent-2-input-gate count of {!removable_gates} — the paper's [N]. *)
