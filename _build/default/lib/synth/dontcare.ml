let observed cmp batches inputs =
  let k = Array.length inputs in
  if k > 16 then invalid_arg "Dontcare.observed: cut too wide";
  let seen = Array.make (1 lsl k) false in
  Array.iter
    (fun values ->
      for bit = 0 to 63 do
        let m = ref 0 in
        for j = 0 to k - 1 do
          if Int64.logand (Int64.shift_right_logical values.(inputs.(j)) bit) 1L = 1L
          then m := !m lor (1 lsl (k - 1 - j))
        done;
        seen.(!m) <- true
      done)
    batches;
  ignore cmp;
  Truthtable.create k (fun m -> seen.(m))

let prove_unreachable ?(backtrack_limit = 200) c inputs minterms =
  let k = Array.length inputs in
  List.for_all
    (fun m ->
      let targets =
        Array.to_list
          (Array.mapi (fun j input -> (input, m land (1 lsl (k - 1 - j)) <> 0)) inputs)
      in
      match Justify.search ~backtrack_limit c targets with
      | Justify.Unsat -> true
      | Justify.Sat _ | Justify.Unknown -> false)
    minterms
