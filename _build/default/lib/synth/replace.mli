(** Splicing a comparison unit in place of a subcircuit. *)

val splice :
  ?verify_local:bool ->
  Circuit.t ->
  Subcircuit.t ->
  Comparison_unit.built ->
  int
(** Import the unit into the circuit (its input [j] wired to
    [subcircuit.inputs.(j)]), retarget the root's fanouts and output
    designations to the unit output, and sweep the dead subcircuit gates.
    Returns the node id now carrying the function.

    With [verify_local] (default true) the unit's function is checked
    exhaustively against the subcircuit's extracted function before touching
    the circuit; a mismatch raises [Failure]. *)
