(** Controllability don't-cares on a subcircuit's input cut.

    An input combination the surrounding logic can never produce is a
    don't-care for the replacement: the spliced unit may disagree with the
    original function there. Candidates come from cheap bit-parallel
    simulation (combinations never observed); each disagreement actually
    exploited is then {e proved} unreachable with {!Justify}, so replacements
    stay sound. This implements the paper's first "remaining issue" (Sec. 6). *)

val observed :
  Compiled.t -> int64 array array -> int array -> Truthtable.t
(** [observed cmp batches inputs]: truth table marking every input-cut
    minterm seen in the simulated batches (per-node 64-bit value arrays). *)

val prove_unreachable :
  ?backtrack_limit:int -> Circuit.t -> int array -> int list -> bool
(** [prove_unreachable c inputs minterms]: true iff {e every} listed cut
    minterm is proved unreachable by exhaustive justification search.
    [Unknown] (budget) counts as reachable, keeping callers sound. *)
