(** Procedure 2: reduce the equivalent-2-input-gate count by comparison-unit
    replacement; ties broken towards fewer paths (Sec. 4.1). Repeats passes
    until no further reduction. *)

val run : ?options:Engine.options -> Circuit.t -> Engine.stats
