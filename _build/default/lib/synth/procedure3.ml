let run ?(options = Engine.default_options) c = Engine.optimize Engine.Paths options c
