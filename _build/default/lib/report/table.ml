type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
}

let create ~title ~columns = { title; columns; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i ch ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init n_cols width in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_row row =
    let cells =
      List.mapi
        (fun i w -> pad w (Option.value ~default:"" (List.nth_opt row i)))
        widths
    in
    let line = String.concat "  " cells in
    (* trim trailing spaces *)
    let len = ref (String.length line) in
    while !len > 0 && line.[!len - 1] = ' ' do
      decr len
    done;
    String.sub line 0 !len
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ "\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.contents buf

let print t = print_string (render t)
