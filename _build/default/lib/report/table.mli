(** Plain-text table rendering for the bench harness and CLI. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
val int : int -> string
(** Thousands-separated rendering, e.g. [1_192_971] -> "1,192,971". *)

val render : t -> string
val print : t -> unit
