type cube = {
  mask : int;
  value : int;
}

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let cube_literals c = popcount c.mask
let cube_covers c m = m land c.mask = c.value

let pp_cube ~n ppf c =
  if c.mask = 0 then Format.pp_print_string ppf "1"
  else begin
    let first = ref true in
    for j = 0 to n - 1 do
      let bit = 1 lsl (n - 1 - j) in
      if c.mask land bit <> 0 then begin
        if not !first then Format.pp_print_char ppf ' ';
        first := false;
        Format.fprintf ppf "x%d%s" (j + 1)
          (if c.value land bit <> 0 then "" else "'")
      end
    done
  end

let primes t =
  let n = Truthtable.arity t in
  let full = (1 lsl n) - 1 in
  let current = Hashtbl.create 97 in
  List.iter
    (fun m -> Hashtbl.replace current (full, m) ())
    (Truthtable.minterms t);
  let primes = ref [] in
  let continue = ref (Hashtbl.length current > 0) in
  let seen_level = ref current in
  while !continue do
    let level = !seen_level in
    let next = Hashtbl.create 97 in
    let merged = Hashtbl.create 97 in
    Hashtbl.iter
      (fun (mask, value) () ->
        for j = 0 to n - 1 do
          let bit = 1 lsl j in
          if mask land bit <> 0 then begin
            let partner = (mask, value lxor bit) in
            if Hashtbl.mem level partner then begin
              Hashtbl.replace merged (mask, value) ();
              Hashtbl.replace merged partner ();
              Hashtbl.replace next (mask land lnot bit, value land lnot bit) ()
            end
          end
        done)
      level;
    Hashtbl.iter
      (fun key () -> if not (Hashtbl.mem merged key) then primes := key :: !primes)
      level;
    seen_level := next;
    continue := Hashtbl.length next > 0
  done;
  !primes
  |> List.map (fun (mask, value) -> { mask; value })
  |> List.sort_uniq compare

let minimise t =
  let ons = Truthtable.minterms t in
  match ons with
  | [] -> []
  | _ :: _ ->
    let ps = Array.of_list (primes t) in
    let covered = Hashtbl.create 97 in
    let chosen = ref [] in
    let choose p =
      chosen := p :: !chosen;
      List.iter (fun m -> if cube_covers p m then Hashtbl.replace covered m ()) ons
    in
    (* essential primes *)
    List.iter
      (fun m ->
        let covering = Array.to_list ps |> List.filter (fun p -> cube_covers p m) in
        match covering with
        | [ only ] when not (List.mem only !chosen) -> choose only
        | _ -> ())
      ons;
    (* greedy cover of the rest *)
    let remaining () = List.filter (fun m -> not (Hashtbl.mem covered m)) ons in
    let rec cover () =
      match remaining () with
      | [] -> ()
      | rest ->
        let score p = List.length (List.filter (cube_covers p) rest) in
        let best = ref None in
        Array.iter
          (fun p ->
            let s = score p in
            if s > 0 then
              match !best with
              | Some (bs, bp) when (bs, -cube_literals bp) >= (s, -cube_literals p) -> ()
              | Some _ | None -> best := Some (s, p))
          ps;
        (match !best with
        | Some (_, p) -> choose p
        | None -> failwith "Sop.minimise: uncoverable minterm");
        cover ()
    in
    cover ();
    List.rev !chosen

let literals cubes = List.fold_left (fun acc c -> acc + cube_literals c) 0 cubes

let to_truthtable n cubes =
  Truthtable.create n (fun m -> List.exists (fun c -> cube_covers c m) cubes)

let to_circuit ?(name = "sop") n cubes =
  let c = Circuit.create ~name () in
  let inputs =
    Array.init n (fun j -> Circuit.add_input ~name:(Printf.sprintf "y%d" (j + 1)) c)
  in
  let not_cache = Hashtbl.create 8 in
  let negate id =
    match Hashtbl.find_opt not_cache id with
    | Some t -> t
    | None ->
      let t = Circuit.add_gate c Gate.Not [| id |] in
      Hashtbl.add not_cache id t;
      t
  in
  let term cube =
    if cube.mask = 0 then Circuit.add_const c true
    else begin
      let lits = ref [] in
      for j = n - 1 downto 0 do
        let bit = 1 lsl (n - 1 - j) in
        if cube.mask land bit <> 0 then
          lits :=
            (if cube.value land bit <> 0 then inputs.(j) else negate inputs.(j))
            :: !lits
      done;
      match !lits with
      | [ single ] -> single
      | several -> Circuit.add_gate c Gate.And (Array.of_list several)
    end
  in
  let out =
    match List.map term cubes with
    | [] -> Circuit.add_const c false
    | [ single ] -> single
    | several -> Circuit.add_gate c Gate.Or (Array.of_list several)
  in
  Circuit.mark_output ~name:"f" c out;
  ignore (Circuit.sweep c);
  c
