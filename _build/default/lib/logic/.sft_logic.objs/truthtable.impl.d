lib/logic/truthtable.ml: Array Buffer Bytes Char Format Hashtbl List Printf Stdlib
