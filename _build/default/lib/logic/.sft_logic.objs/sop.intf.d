lib/logic/sop.mli: Circuit Format Truthtable
