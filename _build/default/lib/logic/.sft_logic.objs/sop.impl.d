lib/logic/sop.ml: Array Circuit Format Gate Hashtbl List Printf Truthtable
