type t = { n : int; bits : Bytes.t }

let max_arity = 16

let check_arity n =
  if n < 0 || n > max_arity then
    invalid_arg (Printf.sprintf "Truthtable: arity %d out of [0, %d]" n max_arity)

let nbytes n = max 1 (((1 lsl n) + 7) / 8)

let make n = { n; bits = Bytes.make (nbytes n) '\000' }
let arity t = t.n
let size t = 1 lsl t.n

let get t m =
  if m < 0 || m >= size t then invalid_arg "Truthtable.get: minterm out of range";
  Char.code (Bytes.get t.bits (m lsr 3)) land (1 lsl (m land 7)) <> 0

let set_mut t m v =
  let byte = m lsr 3 and bit = m land 7 in
  let old = Char.code (Bytes.get t.bits byte) in
  let fresh = if v then old lor (1 lsl bit) else old land lnot (1 lsl bit) in
  Bytes.set t.bits byte (Char.chr (fresh land 0xff))

let create n f =
  check_arity n;
  let t = make n in
  for m = 0 to size t - 1 do
    if f m then set_mut t m true
  done;
  t

let set t m v =
  if m < 0 || m >= size t then invalid_arg "Truthtable.set: minterm out of range";
  let fresh = { n = t.n; bits = Bytes.copy t.bits } in
  set_mut fresh m v;
  fresh

let const n v = create n (fun _ -> v)

let var n i =
  if i < 1 || i > n then invalid_arg "Truthtable.var: variable out of range";
  create n (fun m -> m land (1 lsl (n - i)) <> 0)

(* Mask off the padding bits of the last byte so equality/hash are canonical. *)
let normalize t =
  let total = size t in
  if total land 7 <> 0 then begin
    let last = Bytes.length t.bits - 1 in
    let keep = (1 lsl (total land 7)) - 1 in
    Bytes.set t.bits last (Char.chr (Char.code (Bytes.get t.bits last) land keep))
  end;
  t

let equal a b = a.n = b.n && Bytes.equal a.bits b.bits

let compare a b =
  let c = Stdlib.compare a.n b.n in
  if c <> 0 then c else Bytes.compare a.bits b.bits

let hash t = Hashtbl.hash (t.n, Bytes.to_string t.bits)

let of_minterms n ms =
  check_arity n;
  let t = make n in
  List.iter
    (fun m ->
      if m < 0 || m >= size t then invalid_arg "Truthtable.of_minterms: out of range";
      set_mut t m true)
    ms;
  t

let minterms t =
  let acc = ref [] in
  for m = size t - 1 downto 0 do
    if get t m then acc := m :: !acc
  done;
  !acc

let popcount t =
  let k = ref 0 in
  for m = 0 to size t - 1 do
    if get t m then incr k
  done;
  !k

let is_const t =
  let p = popcount t in
  if p = 0 then Some false else if p = size t then Some true else None

let map2 f a b =
  if a.n <> b.n then invalid_arg "Truthtable: arity mismatch";
  let t = make a.n in
  for i = 0 to Bytes.length t.bits - 1 do
    Bytes.set t.bits i
      (Char.chr (f (Char.code (Bytes.get a.bits i)) (Char.code (Bytes.get b.bits i)) land 0xff))
  done;
  normalize t

let lnot a =
  let t = make a.n in
  for i = 0 to Bytes.length t.bits - 1 do
    Bytes.set t.bits i (Char.chr (lnot (Char.code (Bytes.get a.bits i)) land 0xff))
  done;
  normalize t

let land_ = map2 ( land )
let lor_ = map2 ( lor )
let lxor_ = map2 ( lxor )

let cofactor t ~var v =
  if var < 1 || var > t.n then invalid_arg "Truthtable.cofactor: variable out of range";
  let n' = t.n - 1 in
  let low_bits = t.n - var in
  (* number of variables below x_var *)
  let low_mask = (1 lsl low_bits) - 1 in
  create n' (fun m ->
      let high = m lsr low_bits and low = m land low_mask in
      let m' = (high lsl (low_bits + 1)) lor ((if v then 1 else 0) lsl low_bits) lor low in
      get t m')

let depends_on t i = not (equal (cofactor t ~var:i true) (cofactor t ~var:i false))

let support t =
  let acc = ref [] in
  for i = t.n downto 1 do
    if depends_on t i then acc := i :: !acc
  done;
  !acc

let permute t pi =
  if Array.length pi <> t.n then invalid_arg "Truthtable.permute: bad permutation size";
  let seen = Array.make (t.n + 1) false in
  Array.iter
    (fun v ->
      if v < 1 || v > t.n || seen.(v) then
        invalid_arg "Truthtable.permute: not a permutation";
      seen.(v) <- true)
    pi;
  create t.n (fun m ->
      let m' = ref 0 in
      for j = 0 to t.n - 1 do
        let bit = (m lsr (t.n - 1 - j)) land 1 in
        if bit = 1 then m' := !m' lor (1 lsl (t.n - pi.(j)))
      done;
      get t !m')

let interval n ~lo ~hi =
  check_arity n;
  if lo < 0 || hi >= 1 lsl n || lo > hi then
    invalid_arg "Truthtable.interval: bad bounds";
  create n (fun m -> lo <= m && m <= hi)

let as_interval t =
  match minterms t with
  | [] -> None
  | first :: rest ->
    let rec consecutive prev = function
      | [] -> Some (first, prev)
      | m :: tl -> if m = prev + 1 then consecutive m tl else None
    in
    consecutive first rest

let eval t inputs =
  if Array.length inputs <> t.n then invalid_arg "Truthtable.eval: arity mismatch";
  let m = ref 0 in
  for j = 0 to t.n - 1 do
    if inputs.(j) then m := !m lor (1 lsl (t.n - 1 - j))
  done;
  get t !m

let to_string t =
  let buf = Buffer.create (2 * Bytes.length t.bits) in
  Buffer.add_string buf (Printf.sprintf "%d:" t.n);
  for i = Bytes.length t.bits - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "%02x" (Char.code (Bytes.get t.bits i)))
  done;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
