(** Redundancy addition and removal — the RAMBO_C [1] stand-in baseline.

    The optimizer alternates two moves:
    - {e removal}: tie off stuck-at-untestable lines ({!Redundancy});
    - {e addition}: splice a functionally redundant extra input onto an
      And/Nand (or Or/Nor) gate. A candidate wire (source node, destination
      gate) is filtered by bit-parallel simulation — the destination output
      must never be at its non-controlled value while the new input is
      controlling — and then proved redundant exactly: with the wire added,
      the new pin's stuck-at-non-controlling fault must be untestable.
      Additions are kept only when the removal they unlock shrinks the
      circuit; otherwise they are reverted.

    Like the original, this targets area only, so the path count typically
    grows — the behaviour Table 3 of the paper contrasts against. *)

type options = {
  max_additions : int;  (** accepted-addition budget *)
  max_trials : int;  (** candidate wires proved per addition round *)
  sim_patterns : int;  (** bit-parallel filter depth *)
  backtrack_limit : int;  (** PODEM budget for wire-addition proofs *)
  removal_backtracks : int;  (** PODEM budget inside redundancy removal *)
  seed : int64;
}

val default_options : options

type stats = {
  additions : int;
  removals : int;
  gates_before : int;
  gates_after : int;
}

val pp_stats : Format.formatter -> stats -> unit

val optimize : ?options:options -> Circuit.t -> stats
(** Mutates the circuit; the result is equivalent to the input. *)
