type profile = {
  name : string;
  n_pi : int;
  n_po : int;
  n_gates : int;
  depth : int;
  combine_pct : int;
  xor_pct : int;
  seed : int64;
}

let pick_kind rng xor_pct =
  if Rng.int rng 100 < xor_pct then
    if Rng.bool rng then Gate.Xor else Gate.Xnor
  else
    match Rng.int rng 10 with
    | 0 | 1 -> Gate.And
    | 2 | 3 -> Gate.Or
    | 4 | 5 | 6 -> Gate.Nand
    | 7 | 8 -> Gate.Nor
    | _ -> Gate.Not

let pick_arity rng kind =
  match kind with
  | Gate.Not -> 1
  | Gate.Xor | Gate.Xnor -> 2
  | _ -> (
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 | 5 -> 2
    | 6 | 7 | 8 -> 3
    | _ -> 4)

let generate p =
  if p.n_pi < 2 || p.n_gates < 1 || p.n_po < 1 || p.depth < 1 then
    invalid_arg "Circuit_gen.generate: degenerate profile";
  let rng = Rng.create p.seed in
  let c = Circuit.create ~name:p.name () in
  let pis =
    Array.init p.n_pi (fun i -> Circuit.add_input ~name:(Printf.sprintf "i%d" i) c)
  in
  let depth = min p.depth (max 1 (p.n_gates / 2)) in
  let levels = Array.make (depth + 1) [||] in
  levels.(0) <- pis;
  let read = Hashtbl.create (p.n_pi + p.n_gates) in
  let unread_of level =
    Array.to_list levels.(level)
    |> List.filter (fun id -> not (Hashtbl.mem read id))
  in
  let any_of rng level = levels.(level).(Rng.int rng (Array.length levels.(level))) in
  (* Distribute gates over levels, at least one per level. *)
  let per_level = Array.make (depth + 1) 0 in
  let remaining = ref p.n_gates in
  for l = 1 to depth do
    per_level.(l) <- 1;
    decr remaining
  done;
  while !remaining > 0 do
    let l = 1 + Rng.int rng depth in
    per_level.(l) <- per_level.(l) + 1;
    decr remaining
  done;
  for l = 1 to depth do
    let fresh = ref [] in
    let loose = ref (unread_of (l - 1)) in
    for _ = 1 to per_level.(l) do
      let kind = pick_kind rng p.xor_pct in
      let arity = pick_arity rng kind in
      let first =
        match !loose with
        | id :: rest ->
          loose := rest;
          id
        | [] -> any_of rng (l - 1)
      in
      Hashtbl.replace read first ();
      let seen = Hashtbl.create 4 in
      Hashtbl.add seen first ();
      let fanins = ref [ first ] in
      let attempts = ref 0 in
      while List.length !fanins < arity && !attempts < 20 do
        incr attempts;
        let f =
          if Rng.int rng 100 < p.combine_pct then begin
            (* reconverge: a node from a recent high level *)
            let back = 1 + Rng.int rng (min 3 l) in
            any_of rng (l - back)
          end
          else begin
            (* fresh support: a primary input or a very low level *)
            let low = Rng.int rng (1 + (l / 4)) in
            any_of rng low
          end
        in
        if not (Hashtbl.mem seen f) then begin
          Hashtbl.add seen f ();
          Hashtbl.replace read f ();
          fanins := f :: !fanins
        end
      done;
      let fanins = Array.of_list (List.rev !fanins) in
      let kind = if Array.length fanins = 1 then Gate.Not else kind in
      fresh := Circuit.add_gate c kind fanins :: !fresh
    done;
    levels.(l) <- Array.of_list (List.rev !fresh)
  done;
  (* Primary outputs: every loose end from the top levels first, then random
     high-level gates. *)
  let chosen = ref [] in
  let l = ref depth in
  while List.length !chosen < p.n_po && !l >= 1 do
    List.iter
      (fun id -> if List.length !chosen < p.n_po then chosen := id :: !chosen)
      (unread_of !l);
    decr l
  done;
  let fill_attempts = ref 0 in
  while List.length !chosen < p.n_po do
    incr fill_attempts;
    let level = 1 + Rng.int rng depth in
    let id = any_of rng level in
    if (not (List.mem id !chosen)) || !fill_attempts > 20 * p.n_po then
      chosen := id :: !chosen
  done;
  List.iteri
    (fun i id -> Circuit.mark_output ~name:(Printf.sprintf "o%d" i) c id)
    (List.rev !chosen);
  (* Keep leftover loose ends observable: absorb each unchosen loose gate as
     an extra fanin of some later-level And/Or-family gate. *)
  let absorbable id =
    match Circuit.kind c id with
    | Gate.And | Gate.Or | Gate.Nand | Gate.Nor -> Circuit.fanin_count c id < 5
    | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not | Gate.Xor
    | Gate.Xnor -> false
  in
  for l = 1 to depth - 1 do
    List.iter
      (fun id ->
        if not (List.mem id !chosen) then begin
          let target_level = l + 1 + Rng.int rng (depth - l) in
          let candidates =
            Array.to_list levels.(target_level) |> List.filter absorbable
          in
          match candidates with
          | [] -> ()
          | cs ->
            let t = List.nth cs (Rng.int rng (List.length cs)) in
            let fins = Circuit.fanins c t in
            if not (Array.exists (( = ) id) fins) then
              Circuit.set_fanins c t (Array.append fins [| id |])
        end)
      (unread_of l)
  done;
  ignore (Circuit.sweep c);
  Cleanup.simplify c;
  Check.validate c;
  c
