(** Registry of the stand-in benchmark circuits.

    The paper uses the irredundant, fully-scanned ISCAS-89 circuits with more
    than 10,000 paths (named [irs*]). Those netlists are not redistributable
    here, so each entry is a deterministic synthetic circuit whose interface
    size and structural shape follow the paper's Table 5 columns, with the
    largest circuits scaled down for runtime (see DESIGN.md). Each circuit is
    made irredundant with {!Redundancy} before use, exactly as the paper
    prepares its inputs with [15]. *)

type entry = {
  name : string;
  profile : Circuit_gen.profile;
  paper_inputs : int;
  paper_outputs : int;
  paper_gates2 : int;  (** paper's original 2-input gate count *)
  paper_paths : int;  (** paper's original path count *)
}

val all : entry list
(** The eight [irs*] stand-ins, smallest first. *)

val small : entry list
(** The four circuits used in the paper's Tables 3 and 4. *)

val find : string -> entry
(** Raises [Not_found]. *)

val build : entry -> Circuit.t
(** Fresh copy of the irredundant stand-in. Preparation (generation +
    redundancy removal) is memoised in memory and cached on disk under
    [data/benchmarks/] (or [$SFT_DATA]), so it runs once per machine. *)

val cached : entry -> bool
(** Is the prepared circuit already on disk? ({!build} is cheap iff so.) *)

val c17 : unit -> Circuit.t
(** The classic 6-NAND ISCAS-85 toy circuit, for examples and tests. *)
