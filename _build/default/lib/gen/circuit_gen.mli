(** Deterministic synthetic benchmark circuits.

    Circuits are built level by level so structural depth is controlled
    directly. Each gate takes its first fanin from the previous level
    (preferring nodes nothing reads yet, which keeps the logic observable);
    the remaining fanins come from high levels with probability
    [combine_pct]% — the knob that governs path-count growth, since the
    Procedure-1 label of a gate multiplies only when several high-label
    signals reconverge — and otherwise from primary inputs or low levels.
    All randomness comes from the profile's seed. *)

type profile = {
  name : string;
  n_pi : int;
  n_po : int;
  n_gates : int;
  depth : int;  (** number of gate levels *)
  combine_pct : int;  (** 0..100: how often extra fanins reconverge *)
  xor_pct : int;  (** percentage of Xor/Xnor gates (0..100) *)
  seed : int64;
}

val generate : profile -> Circuit.t
(** Structurally valid, acyclic, swept and constant-folded. *)
