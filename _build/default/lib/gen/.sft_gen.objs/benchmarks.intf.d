lib/gen/benchmarks.mli: Circuit Circuit_gen
