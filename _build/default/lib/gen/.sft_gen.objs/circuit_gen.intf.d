lib/gen/circuit_gen.mli: Circuit
