lib/gen/circuit_gen.ml: Array Check Circuit Cleanup Gate Hashtbl List Printf Rng
