lib/gen/benchmarks.ml: Bench_format Circuit Circuit_gen Filename Hashtbl Int64 List Redundancy Sys
