let node_values c inputs =
  let pis = Circuit.inputs c in
  if Array.length inputs <> Array.length pis then
    invalid_arg "Eval.run: input vector length mismatch";
  let v = Array.make (Circuit.size c) false in
  Array.iteri (fun i pi -> v.(pi) <- inputs.(i)) pis;
  let order = Circuit.topo_order c in
  Array.iter
    (fun id ->
      match Circuit.kind c id with
      | Gate.Input -> ()
      | k ->
        let fins = Circuit.fanins c id in
        v.(id) <- Gate.eval k (Array.map (fun f -> v.(f)) fins))
    order;
  v

let run c inputs =
  let v = node_values c inputs in
  Array.map (fun o -> v.(o)) (Circuit.outputs c)

let output_table c k =
  let n = Circuit.num_inputs c in
  if n > 16 then invalid_arg "Eval.output_table: more than 16 inputs";
  let outs = Circuit.outputs c in
  if k < 0 || k >= Array.length outs then invalid_arg "Eval.output_table: bad output";
  Truthtable.create n (fun m ->
      let inputs = Array.init n (fun j -> m land (1 lsl (n - 1 - j)) <> 0) in
      (run c inputs).(k))

let equivalent_exhaustive a b =
  let n = Circuit.num_inputs a in
  if n <> Circuit.num_inputs b || Circuit.num_outputs a <> Circuit.num_outputs b
  then false
  else if n > 20 then invalid_arg "Eval.equivalent_exhaustive: too many inputs"
  else begin
    let ok = ref true in
    let m = ref 0 in
    let total = 1 lsl n in
    while !ok && !m < total do
      let inputs = Array.init n (fun j -> !m land (1 lsl (n - 1 - j)) <> 0) in
      if run a inputs <> run b inputs then ok := false;
      incr m
    done;
    !ok
  end

let word_values c words =
  let v = Array.make (Circuit.size c) 0L in
  let pis = Circuit.inputs c in
  Array.iteri (fun i pi -> v.(pi) <- words.(i)) pis;
  Array.iter
    (fun id ->
      match Circuit.kind c id with
      | Gate.Input -> ()
      | k -> v.(id) <- Gate.eval_word k (Array.map (fun f -> v.(f)) (Circuit.fanins c id)))
    (Circuit.topo_order c);
  v

let equivalent_random ?(patterns = 256) ~seed a b =
  let n = Circuit.num_inputs a in
  if n <> Circuit.num_inputs b || Circuit.num_outputs a <> Circuit.num_outputs b
  then false
  else begin
    let rng = Rng.create seed in
    let ok = ref true in
    let batch = ref 0 in
    let batches = (patterns + 63) / 64 in
    while !ok && !batch < batches do
      let words = Array.init n (fun _ -> Rng.next64 rng) in
      let va = word_values a words and vb = word_values b words in
      let oa = Circuit.outputs a and ob = Circuit.outputs b in
      Array.iteri (fun i o -> if va.(o) <> vb.(ob.(i)) then ok := false) oa;
      incr batch
    done;
    !ok
  end
