lib/sim/compiled.mli: Circuit Gate
