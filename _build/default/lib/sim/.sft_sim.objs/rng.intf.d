lib/sim/rng.mli:
