lib/sim/eval.ml: Array Circuit Gate Rng Truthtable
