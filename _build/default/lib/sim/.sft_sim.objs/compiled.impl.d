lib/sim/compiled.ml: Array Circuit Gate Int64
