lib/sim/eval.mli: Circuit Truthtable
