(** Single-pattern logic simulation and functional extraction. *)

val run : Circuit.t -> bool array -> bool array
(** [run c inputs] evaluates the circuit on one input vector (indexed like
    {!Circuit.inputs}) and returns the primary-output values (indexed like
    {!Circuit.outputs}). *)

val node_values : Circuit.t -> bool array -> bool array
(** Value of every node (indexed by node id; dead nodes get [false]). *)

val output_table : Circuit.t -> int -> Truthtable.t
(** [output_table c k] tabulates primary output [k] as a function of the
    primary inputs (at most 16 of them), input 0 being the MSB. *)

val equivalent_exhaustive : Circuit.t -> Circuit.t -> bool
(** Exhaustive equivalence of two circuits with identical input/output counts
    (inputs matched positionally; at most 20 inputs). *)

val equivalent_random : ?patterns:int -> seed:int64 -> Circuit.t -> Circuit.t -> bool
(** Random-pattern equivalence filter (64 [patterns] words by default 256;
    sound only for inequivalence). *)
