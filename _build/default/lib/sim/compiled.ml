type t = {
  circuit : Circuit.t;
  size : int;
  order : int array;
  topo_index : int array;
  kinds : Gate.kind array;
  fanins : int array array;
  fanouts : int array array;
  inputs : int array;
  outputs : int array;
  po_flags : bool array;
}

let of_circuit c =
  let size = Circuit.size c in
  let order = Circuit.topo_order c in
  let topo_index = Array.make size (-1) in
  Array.iteri (fun pos id -> topo_index.(id) <- pos) order;
  let kinds = Array.make size Gate.Const0 in
  let fanins = Array.make size [||] in
  let fanouts = Array.make size [||] in
  Circuit.iter_live c (fun id ->
      kinds.(id) <- Circuit.kind c id;
      fanins.(id) <- Array.copy (Circuit.fanins c id);
      fanouts.(id) <- Array.of_list (Circuit.fanouts c id));
  let outputs = Circuit.outputs c in
  let po_flags = Array.make size false in
  Array.iter (fun o -> po_flags.(o) <- true) outputs;
  {
    circuit = c;
    size;
    order;
    topo_index;
    kinds;
    fanins;
    fanouts;
    inputs = Circuit.inputs c;
    outputs;
    po_flags;
  }

let circuit t = t.circuit
let size t = t.size
let order t = t.order
let topo_index t = t.topo_index
let kind t id = t.kinds.(id)
let fanins t id = t.fanins.(id)
let fanouts t id = t.fanouts.(id)
let inputs t = t.inputs
let outputs t = t.outputs
let is_po t id = t.po_flags.(id)

let eval_node t values id =
  let fins = t.fanins.(id) in
  let n = Array.length fins in
  match t.kinds.(id) with
  | Gate.Input -> values.(id)
  | Gate.Const0 -> 0L
  | Gate.Const1 -> -1L
  | Gate.Buf -> values.(fins.(0))
  | Gate.Not -> Int64.lognot values.(fins.(0))
  | Gate.And ->
    let acc = ref values.(fins.(0)) in
    for i = 1 to n - 1 do
      acc := Int64.logand !acc values.(fins.(i))
    done;
    !acc
  | Gate.Nand ->
    let acc = ref values.(fins.(0)) in
    for i = 1 to n - 1 do
      acc := Int64.logand !acc values.(fins.(i))
    done;
    Int64.lognot !acc
  | Gate.Or ->
    let acc = ref values.(fins.(0)) in
    for i = 1 to n - 1 do
      acc := Int64.logor !acc values.(fins.(i))
    done;
    !acc
  | Gate.Nor ->
    let acc = ref values.(fins.(0)) in
    for i = 1 to n - 1 do
      acc := Int64.logor !acc values.(fins.(i))
    done;
    Int64.lognot !acc
  | Gate.Xor ->
    let acc = ref values.(fins.(0)) in
    for i = 1 to n - 1 do
      acc := Int64.logxor !acc values.(fins.(i))
    done;
    !acc
  | Gate.Xnor ->
    let acc = ref values.(fins.(0)) in
    for i = 1 to n - 1 do
      acc := Int64.logxor !acc values.(fins.(i))
    done;
    Int64.lognot !acc

let simulate_into t pi_words values =
  if Array.length pi_words <> Array.length t.inputs then
    invalid_arg "Compiled.simulate: input word count mismatch";
  Array.iteri (fun i pi -> values.(pi) <- pi_words.(i)) t.inputs;
  Array.iter
    (fun id ->
      match t.kinds.(id) with
      | Gate.Input -> ()
      | _ -> values.(id) <- eval_node t values id)
    t.order

let simulate t pi_words =
  let values = Array.make t.size 0L in
  simulate_into t pi_words values;
  values
