(** Flattened, topologically-ordered circuit view for fast simulation.

    Node ids are re-used from the source circuit (the source must not be
    mutated while the compiled view is alive). All arrays are indexed by
    node id unless stated otherwise. *)

type t

val of_circuit : Circuit.t -> t
val circuit : t -> Circuit.t
val size : t -> int
val order : t -> int array
(** Topological order over live nodes. *)

val topo_index : t -> int array
(** Inverse of {!order}; dead nodes get [-1]. *)

val kind : t -> int -> Gate.kind
val fanins : t -> int -> int array
val fanouts : t -> int -> int array
val inputs : t -> int array
val outputs : t -> int array
val is_po : t -> int -> bool

val eval_node : t -> int64 array -> int -> int64
(** Evaluate one gate from the value array (gate kinds only). *)

val simulate : t -> int64 array -> int64 array
(** [simulate t pi_words] runs 64 parallel patterns; [pi_words] is indexed
    like {!inputs}. Returns the per-node value array (fresh). *)

val simulate_into : t -> int64 array -> int64 array -> unit
(** As {!simulate} but fills a caller-provided per-node array. *)
