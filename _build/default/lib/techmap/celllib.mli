(** A small standard-cell library over the NAND2/INV subject graph
    (the SIS stand-in's library). Cell cost is measured in literals
    (= number of cell inputs), the metric Table 4 reports. *)

type pattern =
  | P_input  (** a leaf: matches any subject node *)
  | P_inv of pattern
  | P_nand of pattern * pattern

type cell = {
  name : string;
  pattern : pattern;
  literals : int;
}

val cells : cell list
(** INV, NAND2/3/4 (all skews), AND2, OR2, AOI21, OAI21, AOI22. *)

val pattern_inputs : pattern -> int
