type result = {
  literals : int;
  longest : int;
  cells_used : int;
  subject : Circuit.t;
}

(* --- Subject graph -------------------------------------------------------- *)

let subject_graph c =
  let s = Circuit.create ~name:(Circuit.name c ^ "_subject") () in
  let inv x =
    match Circuit.kind s x with
    | Gate.Not -> (Circuit.fanins s x).(0)
    | Gate.Const0 -> Circuit.add_const s true
    | Gate.Const1 -> Circuit.add_const s false
    | _ -> Circuit.add_gate s Gate.Not [| x |]
  in
  let nand2 a b = Circuit.add_gate s Gate.Nand [| a; b |] in
  let and2 a b = inv (nand2 a b) in
  let or2 a b = nand2 (inv a) (inv b) in
  let xor2 a b =
    let t = nand2 a b in
    nand2 (nand2 a t) (nand2 t b)
  in
  let rec reduce f = function
    | [] -> invalid_arg "subject_graph: empty gate"
    | [ x ] -> x
    | xs ->
      let rec split k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | x :: rest -> split (k - 1) (x :: acc) rest
        | [] -> (List.rev acc, [])
      in
      let l, r = split (List.length xs / 2) [] xs in
      f (reduce f l) (reduce f r)
  in
  let remap = Array.make (Circuit.size c) (-1) in
  (* Distinct source fanins can map to one subject node (e.g. through
     inverter-pair elision), so And/Or-family fanins are deduplicated and
     Xor-family pairs cancelled before building the reduction tree. *)
  let dedup fins = List.sort_uniq compare fins in
  let cancel_pairs fins =
    let occ = Hashtbl.create 4 in
    List.iter
      (fun f ->
        let n = try Hashtbl.find occ f with Not_found -> 0 in
        Hashtbl.replace occ f (n + 1))
      fins;
    List.filter
      (fun f ->
        match Hashtbl.find_opt occ f with
        | Some n when n land 1 = 1 ->
          Hashtbl.replace occ f 0;
          true
        | Some _ | None -> false)
      fins
  in
  Array.iter
    (fun id ->
      let mapped_fanins () =
        Array.to_list (Array.map (fun f -> remap.(f)) (Circuit.fanins c id))
      in
      let and_or_fanins () = dedup (mapped_fanins ()) in
      let xor_fanins () = cancel_pairs (mapped_fanins ()) in
      remap.(id) <-
        (match Circuit.kind c id with
        | Gate.Input -> Circuit.add_input ?name:(Circuit.node_name c id) s
        | Gate.Const0 -> Circuit.add_const s false
        | Gate.Const1 -> Circuit.add_const s true
        | Gate.Buf -> List.hd (mapped_fanins ())
        | Gate.Not -> inv (List.hd (mapped_fanins ()))
        | Gate.And -> reduce and2 (and_or_fanins ())
        | Gate.Nand -> inv (reduce and2 (and_or_fanins ()))
        | Gate.Or -> reduce or2 (and_or_fanins ())
        | Gate.Nor -> inv (reduce or2 (and_or_fanins ()))
        | Gate.Xor -> (
          match xor_fanins () with
          | [] -> Circuit.add_const s false
          | fins -> reduce xor2 fins)
        | Gate.Xnor -> (
          match xor_fanins () with
          | [] -> Circuit.add_const s true
          | fins -> inv (reduce xor2 fins))))
    (Circuit.topo_order c);
  Array.iter (fun o -> Circuit.mark_output s remap.(o)) (Circuit.outputs c);
  ignore (Circuit.sweep s);
  s

(* --- Tree covering --------------------------------------------------------- *)

type chosen = {
  cell : Celllib.cell;
  leaves : int list;
}

let is_source c id =
  match Circuit.kind c id with
  | Gate.Input | Gate.Const0 | Gate.Const1 -> true
  | _ -> false

let map c =
  let s = subject_graph c in
  let boundary id =
    is_source s id || Circuit.is_output s id || Circuit.fanout_degree s id <> 1
  in
  (* Match a pattern at a node. Descent below the root is only allowed
     through fanout-free non-boundary nodes. Returns leaves left-to-right. *)
  let rec matches ~root id (p : Celllib.pattern) =
    match p with
    | Celllib.P_input -> Some [ id ]
    | Celllib.P_inv q ->
      if (not root) && boundary id then None
      else if Circuit.kind s id = Gate.Not then
        matches ~root:false (Circuit.fanins s id).(0) q
      else None
    | Celllib.P_nand (ql, qr) ->
      if (not root) && boundary id then None
      else if Circuit.kind s id = Gate.Nand && Circuit.fanin_count s id = 2 then begin
        let fins = Circuit.fanins s id in
        match matches ~root:false fins.(0) ql with
        | None -> None
        | Some ll -> (
          match matches ~root:false fins.(1) qr with
          | None -> None
          | Some lr -> Some (ll @ lr))
      end
      else None
  in
  let size = Circuit.size s in
  let cost = Array.make size max_int in
  let choice : chosen option array = Array.make size None in
  let order = Circuit.topo_order s in
  Array.iter
    (fun id ->
      if is_source s id then cost.(id) <- 0
      else begin
        List.iter
          (fun (cell : Celllib.cell) ->
            match matches ~root:true id cell.Celllib.pattern with
            | None -> ()
            | Some leaves ->
              let leaf_cost l =
                if boundary l || is_source s l then 0 else cost.(l)
              in
              let total =
                List.fold_left
                  (fun acc l ->
                    let lc = leaf_cost l in
                    if lc = max_int || acc = max_int then max_int else acc + lc)
                  cell.Celllib.literals leaves
              in
              if total < cost.(id) then begin
                cost.(id) <- total;
                choice.(id) <- Some { cell; leaves }
              end)
          Celllib.cells;
        if cost.(id) = max_int then
          failwith "Mapper.map: node not coverable by the cell library"
      end)
    order;
  (* Walk the chosen cover from the boundary roots, counting each cell once
     and computing arrival times in cells. *)
  let arrival = Array.make size (-1) in
  let counted = Bytes.make size '\000' in
  let literals = ref 0 in
  let cells_used = ref 0 in
  let rec walk id =
    if arrival.(id) >= 0 then arrival.(id)
    else if is_source s id then begin
      arrival.(id) <- 0;
      0
    end
    else begin
      match choice.(id) with
      | None -> failwith "Mapper.map: uncovered node"
      | Some { cell; leaves } ->
        if Bytes.get counted id = '\000' then begin
          Bytes.set counted id '\001';
          literals := !literals + cell.Celllib.literals;
          incr cells_used
        end;
        let worst = List.fold_left (fun acc l -> max acc (walk l)) 0 leaves in
        arrival.(id) <- worst + 1;
        arrival.(id)
    end
  in
  (* Logic feeding no output was swept with the subject graph, so walking
     from the outputs counts the full cover. *)
  let longest =
    Array.fold_left (fun acc o -> max acc (walk o)) 0 (Circuit.outputs s)
  in
  { literals = !literals; longest; cells_used = !cells_used; subject = s }
