type pattern =
  | P_input
  | P_inv of pattern
  | P_nand of pattern * pattern

type cell = {
  name : string;
  pattern : pattern;
  literals : int;
}

let rec pattern_inputs = function
  | P_input -> 1
  | P_inv p -> pattern_inputs p
  | P_nand (a, b) -> pattern_inputs a + pattern_inputs b

let i = P_input
let inv p = P_inv p
let nand a b = P_nand (a, b)

(* NAND3 = NAND(a, INV(NAND(b, c))) and its mirror; NAND4 both skews and the
   balanced shape. AOI21 = INV(NAND(NAND(a,b), INV(c))); OAI21 =
   NAND(INV(NAND(INV a, INV b))... = NAND(OR(a,b), c) expressed over the
   subject graph as NAND(INV(NAND(INV a, INV b)), c)? OR(a,b) =
   NAND(INV a, INV b), so OAI21 = INV(AND(OR(a,b), c)) = NAND(OR(a,b), c) =
   NAND(NAND(INV a, INV b), c). AOI22 = INV(OR(AND(a,b), AND(c,d))) =
   INV(NAND(NAND(a,b), NAND(c,d)))... NAND(x,y) with x=NAND(a,b) gives
   INV(AND(INV(ab), INV(cd))) = ab + cd, so AOI22 = INV of that =
   INV(INV(NAND(NAND... — worked out below. *)
let cells =
  [
    { name = "INV"; pattern = inv i; literals = 1 };
    { name = "NAND2"; pattern = nand i i; literals = 2 };
    { name = "NAND3"; pattern = nand i (inv (nand i i)); literals = 3 };
    { name = "NAND3'"; pattern = nand (inv (nand i i)) i; literals = 3 };
    {
      name = "NAND4";
      pattern = nand (inv (nand i i)) (inv (nand i i));
      literals = 4;
    };
    { name = "NAND4l"; pattern = nand i (inv (nand i (inv (nand i i)))); literals = 4 };
    { name = "NAND4r"; pattern = nand (inv (nand (inv (nand i i)) i)) i; literals = 4 };
    { name = "AND2"; pattern = inv (nand i i); literals = 2 };
    (* OR2 = NAND(INV a, INV b) *)
    { name = "OR2"; pattern = nand (inv i) (inv i); literals = 2 };
    (* NOR2 = INV(OR2) *)
    { name = "NOR2"; pattern = inv (nand (inv i) (inv i)); literals = 2 };
    (* AOI21 = INV(ab + c): ab + c = NAND(NAND(a,b), INV c) *)
    { name = "AOI21"; pattern = inv (nand (nand i i) (inv i)); literals = 3 };
    { name = "AOI21'"; pattern = inv (nand (inv i) (nand i i)); literals = 3 };
    (* OAI21 = INV((a+b)c) = NAND(OR(a,b), c) = NAND(NAND(INV a, INV b), c) *)
    { name = "OAI21"; pattern = nand (nand (inv i) (inv i)) i; literals = 3 };
    { name = "OAI21'"; pattern = nand i (nand (inv i) (inv i)); literals = 3 };
    (* AOI22 = INV(ab + cd): ab + cd = NAND(NAND(a,b), NAND(c,d)) *)
    { name = "AOI22"; pattern = inv (nand (nand i i) (nand i i)); literals = 4 };
  ]
