(** SIS-substitute technology mapping.

    Pipeline: decompose the netlist into a NAND2/INV subject graph (multi-
    input gates become balanced trees, Xor/Xnor the classic four-NAND
    network), partition at fanout points into trees, and cover each tree by
    dynamic programming over {!Celllib.cells} minimising literals. Reports
    the two columns of Table 4: total literals and the number of cells on
    the longest input-to-output path. *)

type result = {
  literals : int;
  longest : int;  (** cells on the longest path *)
  cells_used : int;
  subject : Circuit.t;  (** the NAND2/INV subject graph (for inspection) *)
}

val subject_graph : Circuit.t -> Circuit.t
(** Decomposition only (exposed for testing; function-preserving). *)

val map : Circuit.t -> result
