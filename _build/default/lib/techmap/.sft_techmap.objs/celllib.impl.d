lib/techmap/celllib.ml:
