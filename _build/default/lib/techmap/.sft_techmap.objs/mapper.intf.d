lib/techmap/mapper.mli: Circuit
