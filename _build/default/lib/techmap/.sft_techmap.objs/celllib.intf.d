lib/techmap/celllib.mli:
