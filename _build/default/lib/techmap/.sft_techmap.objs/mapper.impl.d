lib/techmap/mapper.ml: Array Bytes Celllib Circuit Gate Hashtbl List
