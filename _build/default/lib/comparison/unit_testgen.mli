(** Robust path-delay-fault test generation for comparison units (Sec. 3.3).

    Comparison units are fully robustly testable; this module produces a
    complete two-pattern test set and doubles as the constructive proof: the
    generated pairs are validated with the robust simulation criteria of
    {!Robust}. Generation searches the (at most [4^n]) vector pairs, which is
    cheap at the arities resynthesis uses (n <= 7). *)

type test = {
  path : int array;  (** node ids, primary input first *)
  direction : Robust.direction;
  v1 : bool array;
  v2 : bool array;
}

val pp_test : Circuit.t -> Format.formatter -> test -> unit

type result = {
  tests : test list;
  untested : (int array * Robust.direction) list;
      (** Path faults with no robust test (empty for comparison units). *)
}

val generate : Comparison_unit.built -> result

val fully_testable : Comparison_unit.built -> bool
(** [untested = []]. *)
