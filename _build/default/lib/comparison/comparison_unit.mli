(** Construction of comparison units (Section 3 of the paper).

    A unit realises the interval function [L <= m <= U] with a [>= L] chain,
    a [<= U] chain and an output AND gate. Free variables (shared leading
    bits of L and U, Sec. 3.2.1) bypass the chains and drive the output AND
    directly; a trivial bound (Sec. 3.2.2) omits its chain entirely. Runs of
    same-kind 2-input chain gates are merged into k-input gates (Fig. 4)
    unless [merge:false]. All degenerate cases (single prime implicant,
    constant function, wire) are handled.

    The resulting structure has at most two paths from any input to the
    output, at most one for free variables or when a chain is omitted. *)

type built = {
  circuit : Circuit.t;
      (** Standalone circuit: one input per original variable (in original
          order), a single output. *)
  input_paths : int array;
      (** Paths from each input to the unit output (0, 1 or 2). *)
  gates2 : int;  (** Equivalent 2-input gate count of the unit. *)
  depth : int;  (** Logic depth (inverters free). *)
}

val build : ?merge:bool -> n:int -> Comparison_fn.spec -> built
(** Build the unit for a spec over [n] original variables. Input [j] of the
    returned circuit is original variable [y_(j+1)]; the spec's permutation
    is realised in the wiring. *)

val build_interval : ?merge:bool -> lo:int -> hi:int -> int -> built
(** [build_interval ~lo ~hi n]: unit for the identity permutation and
    ON-interval [lo..hi] over [n] variables. *)

val free_variable_count : n:int -> lo:int -> hi:int -> int
(** Number of leading bit positions where [lo] and [hi] agree. *)

val verify : n:int -> Comparison_fn.spec -> built -> bool
(** Exhaustively check that the built unit computes the spec's function. *)

val input_paths_of : Circuit.t -> int array
(** Paths from each primary input to the (single) output of any
    single-output circuit — the unit-local [K_p] values of Sec. 2. *)

val of_circuit : Circuit.t -> built
(** Wrap an existing single-output circuit in a [built] record, computing its
    metadata (used by multi-unit covers). *)

val describe : built -> string
(** Multi-line structural dump (used by the figure reproductions). *)
