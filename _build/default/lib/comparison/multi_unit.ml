type cover = {
  specs : Comparison_fn.spec list;
  complemented : bool;
}

(* Maximal runs of consecutive minterms, as (lo, hi) pairs. *)
let runs ms =
  let rec go acc current = function
    | [] -> ( match current with None -> List.rev acc | Some r -> List.rev (r :: acc))
    | m :: rest -> (
      match current with
      | None -> go acc (Some (m, m)) rest
      | Some (lo, hi) ->
        if m = hi + 1 then go acc (Some (lo, m)) rest
        else go ((lo, hi) :: acc) (Some (m, m)) rest)
  in
  go [] None ms

let factorial n =
  let rec f acc k = if k <= 1 then acc else f (acc * k) (k - 1) in
  f 1 n

let rec permutations = function
  | [] -> Seq.return []
  | l ->
    List.to_seq l
    |> Seq.concat_map (fun x ->
           Seq.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) l)))

let evaluate f perm =
  let permuted = Truthtable.permute f perm in
  let on_runs = runs (Truthtable.minterms permuted) in
  let off_runs = runs (Truthtable.minterms (Truthtable.lnot permuted)) in
  if List.length on_runs <= List.length off_runs then (false, on_runs)
  else (true, off_runs)

let find ?(budget = 200) ?(max_units = 3) rng f =
  let n = Truthtable.arity f in
  match Truthtable.is_const f with
  | Some _ -> None
  | None ->
    let best = ref None in
    let consider perm =
      let complemented, rs = evaluate f perm in
      let count = List.length rs in
      match !best with
      | Some (_, _, c) when c <= count -> ()
      | Some _ | None -> best := Some (perm, (complemented, rs), count)
    in
    if n <= 8 && factorial n <= budget then
      Seq.iter
        (fun p -> consider (Array.of_list p))
        (permutations (List.init n (fun i -> i + 1)))
    else begin
      let identity = Array.init n (fun i -> i + 1) in
      consider identity;
      for _ = 2 to budget do
        let p = Array.copy identity in
        Rng.shuffle rng p;
        consider p
      done
    end;
    (match !best with
    | Some (perm, (complemented, rs), count) when count <= max_units ->
      Some
        {
          specs =
            List.map
              (fun (lo, hi) -> { Comparison_fn.perm; lo; hi; complemented = false })
              rs;
          complemented;
        }
    | Some _ | None -> None)

let cover_table n cover =
  let union =
    List.fold_left
      (fun acc s -> Truthtable.lor_ acc (Comparison_fn.spec_table n s))
      (Truthtable.const n false) cover.specs
  in
  if cover.complemented then Truthtable.lnot union else union

(* Copy a built unit into [dst], sharing the primary inputs. *)
let import dst inputs unit_circuit =
  let remap = Array.make (Circuit.size unit_circuit) (-1) in
  Array.iteri
    (fun j pi -> remap.(pi) <- inputs.(j))
    (Circuit.inputs unit_circuit);
  Array.iter
    (fun id ->
      match Circuit.kind unit_circuit id with
      | Gate.Input -> ()
      | Gate.Const0 -> remap.(id) <- Circuit.add_const dst false
      | Gate.Const1 -> remap.(id) <- Circuit.add_const dst true
      | k ->
        let fins = Array.map (fun f -> remap.(f)) (Circuit.fanins unit_circuit id) in
        remap.(id) <- Circuit.add_gate dst k fins)
    (Circuit.topo_order unit_circuit);
  remap.((Circuit.outputs unit_circuit).(0))

let build ?(merge = true) ~n cover =
  if cover.specs = [] then invalid_arg "Multi_unit.build: empty cover";
  let c = Circuit.create ~name:"multi_comparison_unit" () in
  let inputs =
    Array.init n (fun j -> Circuit.add_input ~name:(Printf.sprintf "y%d" (j + 1)) c)
  in
  let outs =
    List.map
      (fun spec ->
        let b = Comparison_unit.build ~merge ~n spec in
        import c inputs b.Comparison_unit.circuit)
      cover.specs
  in
  let outs = List.sort_uniq compare outs in
  let out =
    match outs with
    | [ single ] -> if cover.complemented then Circuit.add_gate c Gate.Not [| single |] else single
    | several ->
      let kind = if cover.complemented then Gate.Nor else Gate.Or in
      Circuit.add_gate c kind (Array.of_list several)
  in
  Circuit.mark_output ~name:"f" c out;
  ignore (Circuit.sweep c);
  Comparison_unit.of_circuit c

let verify ~n f built =
  Truthtable.equal f (Eval.output_table built.Comparison_unit.circuit 0)
  && Truthtable.arity f = n
