type test = {
  path : int array;
  direction : Robust.direction;
  v1 : bool array;
  v2 : bool array;
}

let pp_vec ppf v =
  Array.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) v

let pp_test c ppf t =
  let name id =
    match Circuit.node_name c id with
    | Some s -> s
    | None -> Printf.sprintf "n%d" id
  in
  Format.fprintf ppf "%s %s: %a -> %a"
    (String.concat "-" (Array.to_list (Array.map name t.path)))
    (Robust.direction_to_string t.direction)
    pp_vec t.v1 pp_vec t.v2

type result = {
  tests : test list;
  untested : (int array * Robust.direction) list;
}

let vec_of_int n m = Array.init n (fun j -> m land (1 lsl (n - 1 - j)) <> 0)

let generate (b : Comparison_unit.built) =
  let c = b.Comparison_unit.circuit in
  let cmp = Compiled.of_circuit c in
  let n = Circuit.num_inputs c in
  let paths = Paths.enumerate c in
  (* Cache the wave simulation per vector pair lazily: iterate pairs in a
     fixed order and test all still-untested path faults against each. *)
  let pending = Hashtbl.create 64 in
  List.iter
    (fun p ->
      Hashtbl.replace pending (p, Robust.Rising) ();
      Hashtbl.replace pending (p, Robust.Falling) ())
    paths;
  let tests = ref [] in
  let total = 1 lsl n in
  let m1 = ref 0 in
  while Hashtbl.length pending > 0 && !m1 < total do
    let v1 = vec_of_int n !m1 in
    for m2 = 0 to total - 1 do
      if m2 <> !m1 && Hashtbl.length pending > 0 then begin
        let v2 = vec_of_int n m2 in
        let waves = Wave.simulate cmp ~v1 ~v2 in
        List.iter
          (fun p ->
            match Robust.detects cmp waves p with
            | Some dir when Hashtbl.mem pending (p, dir) ->
              Hashtbl.remove pending (p, dir);
              tests := { path = p; direction = dir; v1; v2 } :: !tests
            | Some _ | None -> ())
          paths
      end
    done;
    incr m1
  done;
  let untested =
    Hashtbl.fold (fun (p, dir) () acc -> (p, dir) :: acc) pending []
    |> List.sort compare
  in
  { tests = List.rev !tests; untested }

let fully_testable b = (generate b).untested = []
