lib/comparison/multi_unit.mli: Comparison_fn Comparison_unit Rng Truthtable
