lib/comparison/unit_testgen.ml: Array Circuit Comparison_unit Compiled Format Hashtbl List Paths Printf Robust String Wave
