lib/comparison/comparison_unit.mli: Circuit Comparison_fn
