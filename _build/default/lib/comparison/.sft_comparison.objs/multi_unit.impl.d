lib/comparison/multi_unit.ml: Array Circuit Comparison_fn Comparison_unit Eval Gate List Printf Rng Seq Truthtable
