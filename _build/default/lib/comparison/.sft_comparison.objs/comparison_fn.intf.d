lib/comparison/comparison_fn.mli: Format Rng Truthtable
