lib/comparison/unit_testgen.mli: Circuit Comparison_unit Format Robust
