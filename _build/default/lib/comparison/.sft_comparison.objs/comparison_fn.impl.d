lib/comparison/comparison_fn.ml: Array Format Hashtbl List Printf Rng Seq String Truthtable
