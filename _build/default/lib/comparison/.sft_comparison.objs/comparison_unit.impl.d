lib/comparison/comparison_unit.ml: Array Buffer Circuit Comparison_fn Eval Gate Hashtbl Levelize List Printf String Truthtable
