type built = {
  circuit : Circuit.t;
  input_paths : int array;
  gates2 : int;
  depth : int;
}

let free_variable_count ~n ~lo ~hi =
  let rec go j =
    if j >= n then j
    else begin
      let bit v = (v lsr (n - 1 - j)) land 1 in
      if bit lo = bit hi then go (j + 1) else j
    end
  in
  go 0

type term = C1 | Node of int

(* >= L chain over positions [first..n-1]: AND when the bound bit is 1, OR
   when it is 0; built from the LSB so constant absorption reproduces the
   paper's omitted-gate special cases. [literal] maps a position to the node
   feeding the chain (the raw input for >=, its complement for <=). *)
let chain c ~n ~first ~bound ~and_bit ~literal =
  let rec go p acc =
    if p < first then acc
    else begin
      let bit = (bound lsr (n - 1 - p)) land 1 in
      let acc =
        if bit = and_bit then
          match acc with
          | C1 -> Node (literal p)
          | Node t -> Node (Circuit.add_gate c Gate.And [| literal p; t |])
        else
          match acc with
          | C1 -> C1
          | Node t -> Node (Circuit.add_gate c Gate.Or [| literal p; t |])
      in
      go (p - 1) acc
    end
  in
  go (n - 1) C1

(* Merge runs of same-kind And/Or 2-input chain gates into k-input gates. *)
let merge_chains c =
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun g ->
        if Circuit.is_alive c g then
          match Circuit.kind c g with
          | (Gate.And | Gate.Or) as k ->
            let fins = Circuit.fanins c g in
            let absorb f =
              Circuit.is_alive c f
              && Circuit.kind c f = k
              && (not (Circuit.is_output c f))
              && Circuit.fanout_degree c f = 1
            in
            if Array.exists absorb fins then begin
              let expanded =
                Array.to_list fins
                |> List.concat_map (fun f ->
                       if absorb f then Array.to_list (Circuit.fanins c f)
                       else [ f ])
              in
              let orphans = Array.to_list fins |> List.filter absorb in
              Circuit.set_fanins c g (Array.of_list expanded);
              List.iter (fun f -> Circuit.delete c f) orphans;
              changed := true
            end
          | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not
          | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
      (Circuit.topo_order c)
  done

let paths_to_output c =
  let out = (Circuit.outputs c).(0) in
  let cnt = Array.make (Circuit.size c) 0 in
  cnt.(out) <- 1;
  let order = Circuit.topo_order c in
  for i = Array.length order - 1 downto 0 do
    let id = order.(i) in
    if id <> out then
      cnt.(id) <- List.fold_left (fun acc g -> acc + cnt.(g)) 0 (Circuit.fanouts c id)
  done;
  cnt

let build ?(merge = true) ~n (s : Comparison_fn.spec) =
  if Array.length s.Comparison_fn.perm <> n then
    invalid_arg "Comparison_unit.build: spec arity mismatch";
  if s.Comparison_fn.lo > s.Comparison_fn.hi || s.Comparison_fn.lo < 0
     || s.Comparison_fn.hi >= 1 lsl n
  then invalid_arg "Comparison_unit.build: bad bounds";
  let c = Circuit.create ~name:"comparison_unit" () in
  let inputs =
    Array.init n (fun j -> Circuit.add_input ~name:(Printf.sprintf "y%d" (j + 1)) c)
  in
  let input_of_pos j = inputs.(s.Comparison_fn.perm.(j) - 1) in
  let not_cache = Hashtbl.create 8 in
  let negate id =
    match Hashtbl.find_opt not_cache id with
    | Some t -> t
    | None ->
      let t = Circuit.add_gate c Gate.Not [| id |] in
      Hashtbl.add not_cache id t;
      t
  in
  let lo = s.Comparison_fn.lo and hi = s.Comparison_fn.hi in
  let f = free_variable_count ~n ~lo ~hi in
  let ones_core = (1 lsl (n - f)) - 1 in
  let lo_core = lo land ones_core and hi_core = hi land ones_core in
  let terms = ref [] in
  (* Free variables feed the output AND directly (Sec. 3.2.1). *)
  for j = 0 to f - 1 do
    let x = input_of_pos j in
    let bit = (lo lsr (n - 1 - j)) land 1 in
    terms := (if bit = 1 then x else negate x) :: !terms
  done;
  (* >= L_F chain, omitted when trivial (Sec. 3.2.2). *)
  if lo_core <> 0 then begin
    match chain c ~n ~first:f ~bound:lo ~and_bit:1 ~literal:input_of_pos with
    | C1 -> assert false
    | Node t -> terms := t :: !terms
  end;
  (* <= U_F chain over complemented inputs, omitted when trivial. *)
  if hi_core <> ones_core then begin
    match
      chain c ~n ~first:f ~bound:hi ~and_bit:0 ~literal:(fun p ->
          negate (input_of_pos p))
    with
    | C1 -> assert false
    | Node t -> terms := t :: !terms
  end;
  let out =
    match List.rev !terms with
    | [] -> Circuit.add_const c true
    | [ t ] -> t
    | ts -> Circuit.add_gate c Gate.And (Array.of_list ts)
  in
  let out =
    if s.Comparison_fn.complemented then Circuit.add_gate c Gate.Not [| out |]
    else out
  in
  Circuit.mark_output ~name:"f" c out;
  ignore (Circuit.sweep c);
  if merge then merge_chains c;
  let cnt = paths_to_output c in
  let input_paths = Array.map (fun id -> cnt.(id)) inputs in
  {
    circuit = c;
    input_paths;
    gates2 = Circuit.two_input_gate_count c;
    depth = Levelize.depth_logic c;
  }

let build_interval ?merge ~lo ~hi n =
  let spec =
    {
      Comparison_fn.perm = Array.init n (fun i -> i + 1);
      lo;
      hi;
      complemented = false;
    }
  in
  build ?merge ~n spec

let input_paths_of c =
  let cnt = paths_to_output c in
  Array.map (fun id -> cnt.(id)) (Circuit.inputs c)

let of_circuit c =
  if Circuit.num_outputs c <> 1 then
    invalid_arg "Comparison_unit.of_circuit: need a single output";
  {
    circuit = c;
    input_paths = input_paths_of c;
    gates2 = Circuit.two_input_gate_count c;
    depth = Levelize.depth_logic c;
  }

let verify ~n s built =
  let expected = Comparison_fn.spec_table n s in
  let actual = Eval.output_table built.circuit 0 in
  Truthtable.equal expected actual

let describe b =
  let c = b.circuit in
  let buf = Buffer.create 256 in
  let name id =
    match Circuit.node_name c id with
    | Some s -> s
    | None -> Printf.sprintf "n%d" id
  in
  Array.iter
    (fun id ->
      match Circuit.kind c id with
      | Gate.Input -> ()
      | k ->
        let args =
          Circuit.fanins c id |> Array.to_list |> List.map name
          |> String.concat ", "
        in
        Buffer.add_string buf
          (Printf.sprintf "  %s = %s(%s)%s\n" (name id) (Gate.to_string k) args
             (if Circuit.is_output c id then "   <- output" else "")))
    (Circuit.topo_order c);
  Buffer.add_string buf
    (Printf.sprintf "  gates(2-input eq.) = %d, depth = %d, input paths = [%s]\n"
       b.gates2 b.depth
       (String.concat "; " (Array.to_list (Array.map string_of_int b.input_paths))));
  Buffer.contents buf
