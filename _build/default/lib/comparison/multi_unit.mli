(** Covers by several comparison units (the paper's second "remaining issue",
    Sec. 6; the construction is sketched in Sec. 3.1).

    Any function can be written as an OR of comparison functions by
    partitioning its ON-set into intervals under a shared permutation; when
    the OFF-set has fewer runs, the complemented (NOR) form is used instead.
    All units share one permutation, so every input still reaches the output
    through at most [2 * units] paths. Unlike single comparison units, the
    combined structure is not guaranteed fully robustly testable — which is
    why the paper restricts itself to single units and lists this as future
    work. *)

type cover = {
  specs : Comparison_fn.spec list;
      (** one spec per unit; all share the same permutation and are
          non-complemented — the polarity lives in [complemented] below *)
  complemented : bool;  (** true: the units cover the OFF-set and are NORed *)
}

val find : ?budget:int -> ?max_units:int -> Rng.t -> Truthtable.t -> cover option
(** Smallest run count over sampled permutations (exhaustive for small [n]);
    [None] when the function is constant or needs more than [max_units]
    (default 3) units. A single-unit cover is returned as such, so callers
    usually try {!Comparison_fn.identify} first. *)

val cover_table : int -> cover -> Truthtable.t
val build : ?merge:bool -> n:int -> cover -> Comparison_unit.built
val verify : n:int -> Truthtable.t -> Comparison_unit.built -> bool
