type v = F | T | X

let of_bool b = if b then T else F
let equal (a : v) (b : v) = a = b
let known = function F | T -> true | X -> false
let lnot = function F -> T | T -> F | X -> X

let land_ a b =
  match (a, b) with
  | F, _ | _, F -> F
  | T, T -> T
  | X, (T | X) | T, X -> X

let lor_ a b =
  match (a, b) with
  | T, _ | _, T -> T
  | F, F -> F
  | X, (F | X) | F, X -> X

let lxor_ a b =
  match (a, b) with
  | X, _ | _, X -> X
  | T, T | F, F -> F
  | T, F | F, T -> T

let to_char = function F -> '0' | T -> '1' | X -> 'x'

let fold f init a = Array.fold_left f init a

let eval kind inputs =
  match kind with
  | Gate.Input -> invalid_arg "Tv.eval: Input"
  | Gate.Const0 -> F
  | Gate.Const1 -> T
  | Gate.Buf -> inputs.(0)
  | Gate.Not -> lnot inputs.(0)
  | Gate.And -> fold land_ T inputs
  | Gate.Nand -> lnot (fold land_ T inputs)
  | Gate.Or -> fold lor_ F inputs
  | Gate.Nor -> lnot (fold lor_ F inputs)
  | Gate.Xor -> fold lxor_ F inputs
  | Gate.Xnor -> lnot (fold lxor_ F inputs)
