lib/atpg/equiv.ml: Array Circuit Compiled Fault Gate Int64 Podem Printf Rng
