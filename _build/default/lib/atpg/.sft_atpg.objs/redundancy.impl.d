lib/atpg/redundancy.ml: Array Campaign Circuit Cleanup Fault Format List Podem
