lib/atpg/justify.ml: Array Circuit Compiled Eval Gate List Option Rng Tv
