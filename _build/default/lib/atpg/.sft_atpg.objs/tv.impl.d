lib/atpg/tv.ml: Array Gate
