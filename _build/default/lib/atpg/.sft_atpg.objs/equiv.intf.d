lib/atpg/equiv.mli: Circuit
