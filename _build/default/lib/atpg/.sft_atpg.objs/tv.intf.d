lib/atpg/tv.mli: Gate
