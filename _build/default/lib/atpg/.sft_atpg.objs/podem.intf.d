lib/atpg/podem.mli: Circuit Fault Format
