lib/atpg/justify.mli: Circuit Rng
