lib/atpg/podem.ml: Array Bytes Circuit Compiled Fault Format Gate List Tv
