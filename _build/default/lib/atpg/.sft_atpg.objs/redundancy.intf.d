lib/atpg/redundancy.mli: Circuit Fault Format
