(** Redundancy identification and removal (the [15] stand-in).

    A stuck-at fault proved untestable lets the faulty line be tied to the
    stuck value without changing the circuit function; constant propagation
    then shrinks the logic. Removing one redundancy can change the status of
    others, so candidates are re-verified right before each removal and the
    whole analysis iterates to a fixpoint. *)

type report = {
  removed : int;  (** redundant faults removed (lines tied off) *)
  aborted : int;  (** faults whose status remained unknown (kept) *)
  passes : int;
}

val pp_report : Format.formatter -> report -> unit

val find_untestable :
  ?backtrack_limit:int ->
  ?prefilter_patterns:int ->
  seed:int64 ->
  Circuit.t ->
  Fault.t list * int
(** Untestable collapsed faults (proved by PODEM after a random-pattern
    prefilter) and the count of aborted proofs. *)

val remove :
  ?backtrack_limit:int ->
  ?prefilter_patterns:int ->
  seed:int64 ->
  Circuit.t ->
  report
(** Remove redundancies in place (the circuit is mutated and swept). *)

val make_irredundant :
  ?backtrack_limit:int ->
  ?prefilter_patterns:int ->
  seed:int64 ->
  Circuit.t ->
  Circuit.t * report
(** Non-destructive: returns a compacted irredundant copy. *)
