(** Three-valued logic (0, 1, X) used by the PODEM engine. *)

type v = F | T | X

val of_bool : bool -> v
val equal : v -> v -> bool
val known : v -> bool
val lnot : v -> v
val land_ : v -> v -> v
val lor_ : v -> v -> v
val lxor_ : v -> v -> v
val to_char : v -> char

val eval : Gate.kind -> v array -> v
(** Three-valued gate evaluation (logic kinds only). *)
