(** Path counting — Procedure 1 of the paper.

    The label [n_p g] of a line is the number of distinct paths from primary
    inputs to [g]. Inputs get label 1; a gate output gets the sum of its
    fanin labels (fanout branches inherit the stem label, which the implicit
    branch representation gives for free); the circuit total is the sum of the
    primary-output labels, each output counted separately. *)

exception Overflow
(** Raised when a label would exceed [max_int] (the paper's circuits peak at
    ~2.3e7, far below; synthetic stress circuits can overflow). *)

val labels : Circuit.t -> int array
(** Labels indexed by node id; dead nodes get 0. Raises {!Overflow}. *)

val total : Circuit.t -> int
(** Total number of input-to-output paths in the circuit. *)

val count_to : Circuit.t -> int -> int
(** Paths from the primary inputs to a given node. *)

val enumerate : ?cap:int -> Circuit.t -> int array list
(** Explicit list of paths, each an array of node ids from a primary input to
    a primary output (each primary-output designation yields its own paths).
    Intended for small circuits and cross-checking; stops after [cap] paths
    (default 1_000_000) and raises [Failure] if the cap is hit. *)
