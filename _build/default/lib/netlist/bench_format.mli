(** ISCAS-style [.bench] netlist format.

    Grammar (comments start with [#]):
    {v
    INPUT(name)
    OUTPUT(name)
    name = KIND(name, name, ...)
    v}
    Supported kinds: AND, OR, NAND, NOR, NOT/INV, BUF/BUFF, XOR, XNOR,
    CONST0/GND, CONST1/VDD. Definitions may appear in any order. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val of_string : ?name:string -> string -> Circuit.t
val to_string : Circuit.t -> string
val read_file : string -> Circuit.t
val write_file : string -> Circuit.t -> unit
