type problem =
  | Dead_fanin of int * int
  | Bad_arity of int
  | Cycle
  | Dead_output of int
  | Duplicate_fanin of int * int

let pp_problem ppf = function
  | Dead_fanin (g, f) -> Format.fprintf ppf "gate %d has dead fanin %d" g f
  | Bad_arity g -> Format.fprintf ppf "gate %d has invalid arity" g
  | Cycle -> Format.fprintf ppf "combinational cycle"
  | Dead_output o -> Format.fprintf ppf "primary output designates dead node %d" o
  | Duplicate_fanin (g, f) -> Format.fprintf ppf "gate %d repeats fanin %d" g f

let problems c =
  let probs = ref [] in
  let add p = probs := p :: !probs in
  Circuit.iter_live c (fun id ->
      let k = Circuit.kind c id in
      let fins = Circuit.fanins c id in
      let n = Array.length fins in
      if n < Gate.min_arity k then add (Bad_arity id);
      (match Gate.max_arity k with
      | Some m when n > m -> add (Bad_arity id)
      | Some _ | None -> ());
      Array.iter (fun f -> if not (Circuit.is_alive c f) then add (Dead_fanin (id, f))) fins;
      (match k with
      | Gate.And | Gate.Or | Gate.Nand | Gate.Nor ->
        let sorted = Array.copy fins in
        Array.sort compare sorted;
        for i = 1 to n - 1 do
          if sorted.(i) = sorted.(i - 1) then add (Duplicate_fanin (id, sorted.(i)))
        done
      | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not | Gate.Xor
      | Gate.Xnor -> ()));
  Array.iter
    (fun o -> if not (Circuit.is_alive c o) then add (Dead_output o))
    (Circuit.outputs c);
  (try ignore (Circuit.topo_order c) with Failure _ -> add Cycle);
  List.rev !probs

let validate c =
  match problems c with
  | [] -> ()
  | ps ->
    let buf = Buffer.create 128 in
    let ppf = Format.formatter_of_buffer buf in
    Format.fprintf ppf "circuit %s is malformed:@ " (Circuit.name c);
    List.iter (fun p -> Format.fprintf ppf "%a;@ " pp_problem p) ps;
    Format.pp_print_flush ppf ();
    failwith (Buffer.contents buf)
