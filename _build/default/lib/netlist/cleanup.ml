let is_const c id =
  match Circuit.kind c id with
  | Gate.Const0 -> Some false
  | Gate.Const1 -> Some true
  | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
  | Gate.Nor | Gate.Xor | Gate.Xnor -> None

(* Rewrite one gate given the constness of its fanins. Returns true if the
   node was changed. *)
let fold_gate c id =
  let k = Circuit.kind c id in
  match k with
  | Gate.Input | Gate.Const0 | Gate.Const1 -> false
  | Gate.Buf | Gate.Not -> (
    let f = (Circuit.fanins c id).(0) in
    match is_const c f with
    | None -> false
    | Some v ->
      let v = if k = Gate.Not then not v else v in
      Circuit.replace_node c id (if v then Gate.Const1 else Gate.Const0) [||];
      true)
  | Gate.And | Gate.Or | Gate.Nand | Gate.Nor -> (
    let controlling =
      match Gate.controlling k with Some b -> b | None -> assert false
    in
    let invert = Gate.inverting k in
    let fins = Circuit.fanins c id in
    let hit_controlling = ref false in
    let kept = ref [] in
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun f ->
        match is_const c f with
        | Some v when v = controlling -> hit_controlling := true
        | Some _ -> () (* non-controlling constant: drop *)
        | None ->
          if not (Hashtbl.mem seen f) then begin
            Hashtbl.add seen f ();
            kept := f :: !kept
          end)
      fins;
    let const b = Circuit.replace_node c id (if b then Gate.Const1 else Gate.Const0) [||] in
    if !hit_controlling then begin
      const (controlling <> invert);
      true
    end
    else
      match List.rev !kept with
      | [] ->
        (* all fanins were non-controlling constants *)
        const (not controlling <> invert);
        true
      | [ f ] ->
        Circuit.replace_node c id (if invert then Gate.Not else Gate.Buf) [| f |];
        true
      | fs ->
        if List.length fs < Array.length fins then begin
          Circuit.replace_node c id k (Array.of_list fs);
          true
        end
        else false)
  | Gate.Xor | Gate.Xnor -> (
    let fins = Circuit.fanins c id in
    let parity = ref (k = Gate.Xnor) in
    (* Count occurrences of each non-constant fanin; pairs cancel. *)
    let occ = Hashtbl.create 8 in
    Array.iter
      (fun f ->
        match is_const c f with
        | Some v -> if v then parity := not !parity
        | None ->
          let n = try Hashtbl.find occ f with Not_found -> 0 in
          Hashtbl.replace occ f (n + 1))
      fins;
    let kept =
      Array.to_list fins
      |> List.filter_map (fun f ->
             match Hashtbl.find_opt occ f with
             | Some n when n land 1 = 1 ->
               Hashtbl.replace occ f 0;
               (* keep first odd occurrence only *)
               Some f
             | Some _ | None -> None)
    in
    match kept with
    | [] ->
      Circuit.replace_node c id (if !parity then Gate.Const1 else Gate.Const0) [||];
      true
    | [ f ] ->
      Circuit.replace_node c id (if !parity then Gate.Not else Gate.Buf) [| f |];
      true
    | fs ->
      let changed = List.length fs < Array.length fins || !parity <> (k = Gate.Xnor) in
      if changed then begin
        Circuit.replace_node c id
          (if !parity then Gate.Xnor else Gate.Xor)
          (Array.of_list fs);
        true
      end
      else false)

let propagate_constants c =
  let order = Circuit.topo_order c in
  let changed = ref 0 in
  Array.iter (fun id -> if fold_gate c id then incr changed) order;
  !changed

let collapse_wires c =
  let order = Circuit.topo_order c in
  let changed = ref 0 in
  Array.iter
    (fun id ->
      if Circuit.is_alive c id then
        match Circuit.kind c id with
        | Gate.Buf ->
          let f = (Circuit.fanins c id).(0) in
          Circuit.retarget c ~from_:id ~to_:f;
          incr changed
        | Gate.Not -> (
          let f = (Circuit.fanins c id).(0) in
          match Circuit.kind c f with
          | Gate.Not ->
            let g = (Circuit.fanins c f).(0) in
            Circuit.retarget c ~from_:id ~to_:g;
            incr changed
          | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.And
          | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
        | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.And | Gate.Or
        | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
    order;
  !changed

let simplify c =
  let rec loop () =
    let a = propagate_constants c in
    let b = collapse_wires c in
    let s = Circuit.sweep c in
    if a + b + s > 0 then loop ()
  in
  loop ()
