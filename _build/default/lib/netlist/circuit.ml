type node = {
  mutable kind : Gate.kind;
  mutable fanins : int array;
  mutable node_name : string option;
  mutable alive : bool;
}

type t = {
  mutable circuit_name : string;
  mutable nodes : node array;
  mutable len : int;
  mutable pis : int list; (* reverse declaration order *)
  mutable pos : (int * string option) list; (* reverse declaration order *)
  mutable fanout_cache : int list array option;
}

let dead_node = { kind = Gate.Const0; fanins = [||]; node_name = None; alive = false }

let create ?(name = "circuit") () =
  {
    circuit_name = name;
    nodes = Array.make 64 dead_node;
    len = 0;
    pis = [];
    pos = [];
    fanout_cache = None;
  }

let name c = c.circuit_name
let set_name c s = c.circuit_name <- s
let size c = c.len

let node c id =
  if id < 0 || id >= c.len then invalid_arg "Circuit: node id out of range";
  let n = c.nodes.(id) in
  if not n.alive then invalid_arg (Printf.sprintf "Circuit: node %d is dead" id);
  n

let invalidate c = c.fanout_cache <- None

let grow c =
  if c.len = Array.length c.nodes then begin
    let bigger = Array.make (max 64 (2 * c.len)) dead_node in
    Array.blit c.nodes 0 bigger 0 c.len;
    c.nodes <- bigger
  end

let alloc c n =
  grow c;
  c.nodes.(c.len) <- n;
  c.len <- c.len + 1;
  invalidate c;
  c.len - 1

let add_input ?name c =
  let id = alloc c { kind = Gate.Input; fanins = [||]; node_name = name; alive = true } in
  c.pis <- id :: c.pis;
  id

let add_const ?name c value =
  let kind = if value then Gate.Const1 else Gate.Const0 in
  alloc c { kind; fanins = [||]; node_name = name; alive = true }

let check_fanins c fanins =
  Array.iter
    (fun f ->
      if f < 0 || f >= c.len || not c.nodes.(f).alive then
        invalid_arg (Printf.sprintf "Circuit.add_gate: bad fanin %d" f))
    fanins

let check_arity kind n =
  if n < Gate.min_arity kind then
    invalid_arg
      (Printf.sprintf "Circuit: %s needs >= %d fanins" (Gate.to_string kind)
         (Gate.min_arity kind));
  match Gate.max_arity kind with
  | Some m when n > m ->
    invalid_arg (Printf.sprintf "Circuit: %s takes <= %d fanins" (Gate.to_string kind) m)
  | Some _ | None -> ()

let add_gate ?name c kind fanins =
  (match kind with
  | Gate.Input -> invalid_arg "Circuit.add_gate: use add_input"
  | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not | Gate.And | Gate.Or
  | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor -> ());
  check_arity kind (Array.length fanins);
  check_fanins c fanins;
  alloc c { kind; fanins = Array.copy fanins; node_name = name; alive = true }

let mark_output ?name c id =
  ignore (node c id);
  c.pos <- (id, name) :: c.pos;
  invalidate c

let is_alive c id = id >= 0 && id < c.len && c.nodes.(id).alive
let kind c id = (node c id).kind
let fanins c id = (node c id).fanins
let fanin_count c id = Array.length (node c id).fanins
let node_name c id = (node c id).node_name

let inputs c =
  c.pis |> List.filter (fun id -> c.nodes.(id).alive) |> List.rev |> Array.of_list

let outputs c = c.pos |> List.rev_map fst |> Array.of_list

let output_names c =
  c.pos
  |> List.rev_map (fun (id, n) ->
         match n with
         | Some s -> s
         | None -> (
           match c.nodes.(id).node_name with
           | Some s -> s
           | None -> Printf.sprintf "po%d" id))
  |> Array.of_list

let num_inputs c = Array.length (inputs c)
let num_outputs c = List.length c.pos

let num_live_nodes c =
  let k = ref 0 in
  for i = 0 to c.len - 1 do
    if c.nodes.(i).alive then incr k
  done;
  !k

let iter_live c f =
  for i = 0 to c.len - 1 do
    if c.nodes.(i).alive then f i
  done

let num_gates c =
  let k = ref 0 in
  iter_live c (fun i ->
      match c.nodes.(i).kind with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor -> incr k);
  !k

let two_input_gate_count c =
  let k = ref 0 in
  iter_live c (fun i ->
      let n = c.nodes.(i) in
      k := !k + Gate.two_input_equivalents n.kind (Array.length n.fanins));
  !k

let build_fanouts c =
  let fo = Array.make c.len [] in
  for i = c.len - 1 downto 0 do
    let n = c.nodes.(i) in
    if n.alive then Array.iter (fun f -> fo.(f) <- i :: fo.(f)) n.fanins
  done;
  c.fanout_cache <- Some fo;
  fo

let fanout_index c =
  match c.fanout_cache with Some fo -> fo | None -> build_fanouts c

let fanouts c id =
  ignore (node c id);
  (fanout_index c).(id)

let fanout_degree c id = List.length (fanouts c id)

let is_output c id = List.exists (fun (o, _) -> o = id) c.pos

let topo_order c =
  let n = c.len in
  let state = Bytes.make n '\000' in
  (* 0 = unvisited, 1 = on stack, 2 = done *)
  let order = Array.make (num_live_nodes c) (-1) in
  let next = ref 0 in
  let rec visit id =
    match Bytes.get state id with
    | '\002' -> ()
    | '\001' -> failwith "Circuit.topo_order: combinational cycle"
    | _ ->
      Bytes.set state id '\001';
      Array.iter visit c.nodes.(id).fanins;
      Bytes.set state id '\002';
      order.(!next) <- id;
      incr next
  in
  iter_live c visit;
  order

let set_kind c id k =
  let n = node c id in
  check_arity k (Array.length n.fanins);
  n.kind <- k

let set_fanins c id fanins =
  let n = node c id in
  check_arity n.kind (Array.length fanins);
  check_fanins c fanins;
  n.fanins <- Array.copy fanins;
  invalidate c

let replace_node c id k fanins =
  let n = node c id in
  (match k with
  | Gate.Input -> invalid_arg "Circuit.replace_node: cannot become an Input"
  | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not | Gate.And | Gate.Or
  | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor -> ());
  check_arity k (Array.length fanins);
  check_fanins c fanins;
  n.kind <- k;
  n.fanins <- Array.copy fanins;
  invalidate c

let retarget c ~from_ ~to_ =
  ignore (node c from_);
  ignore (node c to_);
  let readers = (fanout_index c).(from_) in
  List.iter
    (fun g ->
      let n = c.nodes.(g) in
      Array.iteri (fun j f -> if f = from_ then n.fanins.(j) <- to_) n.fanins)
    readers;
  c.pos <-
    List.map (fun (o, nm) -> if o = from_ then (to_, nm) else (o, nm)) c.pos;
  invalidate c

let delete c id =
  ignore (node c id);
  if is_output c id then invalid_arg "Circuit.delete: node is a primary output";
  if fanouts c id <> [] then invalid_arg "Circuit.delete: node still has fanouts";
  c.nodes.(id) <- dead_node;
  invalidate c

let sweep c =
  let reachable = Bytes.make c.len '\000' in
  let rec mark id =
    if Bytes.get reachable id = '\000' then begin
      Bytes.set reachable id '\001';
      Array.iter mark c.nodes.(id).fanins
    end
  in
  List.iter (fun (o, _) -> mark o) c.pos;
  let removed = ref 0 in
  for i = 0 to c.len - 1 do
    let n = c.nodes.(i) in
    if n.alive && Bytes.get reachable i = '\000' && n.kind <> Gate.Input then begin
      c.nodes.(i) <- dead_node;
      incr removed
    end
  done;
  if !removed > 0 then invalidate c;
  !removed

let copy c =
  {
    circuit_name = c.circuit_name;
    nodes =
      Array.map
        (fun n ->
          if n.alive then { n with fanins = Array.copy n.fanins } else dead_node)
        c.nodes;
    len = c.len;
    pis = c.pis;
    pos = c.pos;
    fanout_cache = None;
  }

let overwrite c ~with_ =
  let src = copy with_ in
  c.circuit_name <- src.circuit_name;
  c.nodes <- src.nodes;
  c.len <- src.len;
  c.pis <- src.pis;
  c.pos <- src.pos;
  c.fanout_cache <- None

let compact c =
  let order = topo_order c in
  let remap = Array.make c.len (-1) in
  let fresh = create ~name:c.circuit_name () in
  (* Keep primary-input declaration order stable. *)
  Array.iter
    (fun id ->
      let n = c.nodes.(id) in
      if n.kind = Gate.Input then remap.(id) <- add_input ?name:n.node_name fresh)
    (inputs c);
  Array.iter
    (fun id ->
      let n = c.nodes.(id) in
      match n.kind with
      | Gate.Input -> ()
      | Gate.Const0 -> remap.(id) <- add_const ?name:n.node_name fresh false
      | Gate.Const1 -> remap.(id) <- add_const ?name:n.node_name fresh true
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        let fanins = Array.map (fun f -> remap.(f)) n.fanins in
        remap.(id) <- add_gate ?name:n.node_name fresh n.kind fanins)
    order;
  List.iter
    (fun (o, nm) -> mark_output ?name:nm fresh remap.(o))
    (List.rev c.pos);
  (fresh, remap)

let pp_stats ppf c =
  Format.fprintf ppf "%s: %d PI, %d PO, %d gates (%d eq. 2-input)"
    c.circuit_name (num_inputs c) (num_outputs c) (num_gates c)
    (two_input_gate_count c)
