exception Overflow

let add_checked a b =
  let s = a + b in
  if s < 0 then raise Overflow else s

let labels c =
  let lab = Array.make (Circuit.size c) 0 in
  let order = Circuit.topo_order c in
  Array.iter
    (fun id ->
      match Circuit.kind c id with
      | Gate.Input -> lab.(id) <- 1
      | Gate.Const0 | Gate.Const1 -> lab.(id) <- 0
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        lab.(id) <-
          Array.fold_left
            (fun acc f -> add_checked acc lab.(f))
            0 (Circuit.fanins c id))
    order;
  lab

let total c =
  let lab = labels c in
  Array.fold_left (fun acc o -> add_checked acc lab.(o)) 0 (Circuit.outputs c)

let count_to c id =
  let lab = labels c in
  lab.(id)

let enumerate ?(cap = 1_000_000) c =
  let acc = ref [] in
  let count = ref 0 in
  (* Walk backwards from each output designation to the inputs. *)
  let rec descend suffix id =
    let suffix = id :: suffix in
    match Circuit.kind c id with
    | Gate.Input ->
      incr count;
      if !count > cap then failwith "Paths.enumerate: cap exceeded";
      acc := Array.of_list suffix :: !acc
    | Gate.Const0 | Gate.Const1 -> ()
    | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
    | Gate.Xor | Gate.Xnor ->
      Array.iter (fun f -> descend suffix f) (Circuit.fanins c id)
  in
  Array.iter (fun o -> descend [] o) (Circuit.outputs c);
  List.rev !acc
