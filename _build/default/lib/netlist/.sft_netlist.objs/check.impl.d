lib/netlist/check.ml: Array Buffer Circuit Format Gate List
