lib/netlist/cleanup.mli: Circuit
