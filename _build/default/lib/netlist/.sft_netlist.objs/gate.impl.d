lib/netlist/gate.ml: Array Format Fun Int64 Printf String
