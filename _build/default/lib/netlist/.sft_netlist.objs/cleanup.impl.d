lib/netlist/cleanup.ml: Array Circuit Gate Hashtbl List
