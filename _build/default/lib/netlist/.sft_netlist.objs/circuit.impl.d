lib/netlist/circuit.ml: Array Bytes Format Gate List Printf
