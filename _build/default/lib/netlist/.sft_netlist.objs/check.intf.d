lib/netlist/check.mli: Circuit Format
