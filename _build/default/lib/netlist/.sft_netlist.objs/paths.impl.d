lib/netlist/paths.ml: Array Circuit Gate List
