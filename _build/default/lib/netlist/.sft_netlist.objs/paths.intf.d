lib/netlist/paths.mli: Circuit
