lib/netlist/levelize.ml: Array Circuit Gate
