(** Structural validation of circuits. *)

type problem =
  | Dead_fanin of int * int  (** gate, fanin id *)
  | Bad_arity of int
  | Cycle
  | Dead_output of int
  | Duplicate_fanin of int * int  (** gate, repeated fanin id *)

val pp_problem : Format.formatter -> problem -> unit

val problems : Circuit.t -> problem list
(** Structural problems; empty list means the circuit is well-formed.
    [Duplicate_fanin] is reported only for And/Or/Nand/Nor gates, where a
    repeated fanin is almost always a rewrite bug. *)

val validate : Circuit.t -> unit
(** Raises [Failure] with a description if {!problems} is non-empty. *)
