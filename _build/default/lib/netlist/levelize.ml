let compute ~gate_weight c =
  let lev = Array.make (Circuit.size c) (-1) in
  let order = Circuit.topo_order c in
  Array.iter
    (fun id ->
      match Circuit.kind c id with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> lev.(id) <- 0
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        let m =
          Array.fold_left (fun acc f -> max acc lev.(f)) 0 (Circuit.fanins c id)
        in
        lev.(id) <- m + gate_weight (Circuit.kind c id))
    order;
  lev

let unit_weight (_ : Gate.kind) = 1

let logic_weight = function
  | Gate.Buf | Gate.Not -> 0
  | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.And | Gate.Or | Gate.Nand
  | Gate.Nor | Gate.Xor | Gate.Xnor -> 1

let levels c = compute ~gate_weight:unit_weight c
let logic_levels c = compute ~gate_weight:logic_weight c

let max_over_outputs lev c =
  Array.fold_left (fun acc o -> max acc lev.(o)) 0 (Circuit.outputs c)

let depth c = max_over_outputs (levels c) c
let depth_logic c = max_over_outputs (logic_levels c) c

let longest_path c =
  let lev = levels c in
  let outs = Circuit.outputs c in
  if Array.length outs = 0 then failwith "Levelize.longest_path: no outputs";
  let best = ref outs.(0) in
  Array.iter (fun o -> if lev.(o) > lev.(!best) then best := o) outs;
  let rec ascend acc id =
    let acc = id :: acc in
    let fins = Circuit.fanins c id in
    if Array.length fins = 0 then acc
    else begin
      let deepest = ref fins.(0) in
      Array.iter (fun f -> if lev.(f) > lev.(!deepest) then deepest := f) fins;
      ascend acc !deepest
    end
  in
  Array.of_list (ascend [] !best)
