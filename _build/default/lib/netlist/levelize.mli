(** Logic levels and structural depth. *)

val levels : Circuit.t -> int array
(** Level per node id: inputs/constants are 0, a gate is 1 + max fanin level.
    Dead nodes get -1. Buffers and inverters count as a level here; use
    {!depth_logic} for the paper's "gates on the longest path" metric. *)

val depth : Circuit.t -> int
(** Max level over primary outputs. *)

val logic_levels : Circuit.t -> int array
(** Like {!levels} but buffers and inverters are transparent (add 0). *)

val depth_logic : Circuit.t -> int
(** Max logic level over primary outputs: number of (non-inverter) gates on
    the longest input-to-output path. *)

val longest_path : Circuit.t -> int array
(** One maximum-level path, as node ids from a primary input to a primary
    output. Raises [Failure] on a circuit with no outputs. *)
