(** Local structural simplifications.

    These rewrites preserve the circuit function. They are used after
    redundancy removal (constants appear when untestable lines are tied off)
    and after comparison-unit splicing (degenerate blocks reduce to wires). *)

val propagate_constants : Circuit.t -> int
(** One topological pass folding constant and duplicate fanins:
    controlled gates collapse on a controlling constant, non-controlling
    constants are dropped, XOR parity absorbs constants, repeated fanins of
    And/Or/Nand/Nor are deduplicated and XOR pairs cancel. Gates left with a
    single fanin become Buf/Not. Returns the number of nodes rewritten. *)

val collapse_wires : Circuit.t -> int
(** Retarget fanouts of Buf gates to their fanin and collapse Not-of-Not
    chains. Returns the number of wires collapsed. *)

val simplify : Circuit.t -> unit
(** [propagate_constants], [collapse_wires] and {!Circuit.sweep} to fixpoint. *)
