lib/fault/fsim.ml: Array Bytes Compiled Fault Gate Int64 List
