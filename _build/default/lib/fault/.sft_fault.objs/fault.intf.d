lib/fault/fault.mli: Circuit Format
