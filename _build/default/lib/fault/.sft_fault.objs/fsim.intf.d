lib/fault/fsim.mli: Compiled Fault
