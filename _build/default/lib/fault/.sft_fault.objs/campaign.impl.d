lib/fault/campaign.ml: Array Circuit Compiled Fault Format Fsim Int64 Rng
