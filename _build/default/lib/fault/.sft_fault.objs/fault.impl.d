lib/fault/fault.ml: Array Circuit Format Gate List Printf Stdlib
