lib/fault/campaign.mli: Circuit Fault Format
