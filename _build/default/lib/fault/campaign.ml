type result = {
  total_faults : int;
  detected : int;
  remaining : int;
  last_effective_pattern : int;
  patterns_applied : int;
}

let pp_result ppf r =
  Format.fprintf ppf "faults %d, detected %d, remain %d, eff.patt %d (of %d)"
    r.total_faults r.detected r.remaining r.last_effective_pattern
    r.patterns_applied

(* Index (0-based) of the lowest set bit; the mask must be non-zero. *)
let lowest_bit mask =
  let rec search i =
    if Int64.logand (Int64.shift_right_logical mask i) 1L = 1L then i
    else search (i + 1)
  in
  search 0

let run_internal ?faults ?(max_patterns = 1_000_000) ~seed c =
  let cmp = Compiled.of_circuit c in
  let sim = Fsim.create cmp in
  let fault_list =
    match faults with Some fs -> Array.of_list fs | None -> Array.of_list (Fault.collapsed c)
  in
  let n_faults = Array.length fault_list in
  let alive = Array.make n_faults true in
  let alive_count = ref n_faults in
  let rng = Rng.create seed in
  let n_pi = Circuit.num_inputs c in
  let last_effective = ref 0 in
  let applied = ref 0 in
  while !alive_count > 0 && !applied < max_patterns do
    let batch = min 64 (max_patterns - !applied) in
    let words = Array.init n_pi (fun _ -> Rng.next64 rng) in
    Fsim.load_patterns sim words;
    let batch_mask =
      if batch = 64 then -1L else Int64.sub (Int64.shift_left 1L batch) 1L
    in
    for i = 0 to n_faults - 1 do
      if alive.(i) then begin
        let mask = Int64.logand (Fsim.detect sim fault_list.(i)) batch_mask in
        if mask <> 0L then begin
          alive.(i) <- false;
          decr alive_count;
          let patt = !applied + lowest_bit mask + 1 in
          if patt > !last_effective then last_effective := patt
        end
      end
    done;
    applied := !applied + batch
  done;
  let detected = n_faults - !alive_count in
  ( {
      total_faults = n_faults;
      detected;
      remaining = !alive_count;
      last_effective_pattern = !last_effective;
      patterns_applied = !applied;
    },
    fault_list,
    alive )

let run ?faults ?max_patterns ~seed c =
  let r, _, _ = run_internal ?faults ?max_patterns ~seed c in
  r

let undetected ?faults ?max_patterns ~seed c =
  let _, fault_list, alive = run_internal ?faults ?max_patterns ~seed c in
  let acc = ref [] in
  for i = Array.length fault_list - 1 downto 0 do
    if alive.(i) then acc := fault_list.(i) :: !acc
  done;
  !acc
