(** Parallel-pattern single-fault-propagation stuck-at fault simulator
    (the FSIM [17] stand-in).

    Patterns are processed 64 at a time; for each fault the effect is
    propagated event-driven from the fault site towards the outputs, and the
    returned mask has bit [i] set iff pattern [i] of the batch detects the
    fault on some primary output. *)

type t

val create : Compiled.t -> t

val load_patterns : t -> int64 array -> unit
(** Simulate the fault-free circuit on a 64-pattern batch ([pi_words] indexed
    like [Compiled.inputs]). Must be called before {!detect}. *)

val good_values : t -> int64 array
(** Fault-free node values for the loaded batch (do not mutate). *)

val detect : t -> Fault.t -> int64
(** Detection mask of the fault under the loaded batch. *)

val detect_single : t -> Fault.t -> bool array -> bool
(** Convenience: does this single input vector detect the fault? Loads a
    batch, so it invalidates previously loaded patterns. *)
