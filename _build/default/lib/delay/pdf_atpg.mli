(** Robust path-delay-fault test generation.

    For a path fault the robust criteria of {!Robust} impose {e value}
    constraints on the two vectors — every on-path line transitions in a
    fixed direction, off-path inputs of a controlling-to-non-controlling step
    are stable non-controlling, off-path inputs of the opposite step are
    non-controlling in the second vector. These split into independent line
    justification problems for [v1] and [v2] (the vectors share no primary
    inputs), solved with {!Justify}. The remaining requirement — hazard
    freedom of stable side inputs — is not a value constraint, so a found
    pair is validated against the full robust simulation and regenerated with
    randomised justification on failure.

    Soundness: the value constraints are {e necessary} for robust detection,
    so if either frame is unsatisfiable the fault is robustly untestable.
    Paths through Xor/Xnor gates have data-dependent transition polarity and
    are reported [Unsupported]. *)

type outcome =
  | Test of bool array * bool array  (** a validated robust two-pattern test *)
  | Untestable  (** no robust test exists (value constraints UNSAT) *)
  | Aborted  (** search or validation budget exhausted *)
  | Unsupported  (** Xor/Xnor on the path *)

val pp_outcome : Format.formatter -> outcome -> unit

val generate :
  ?backtrack_limit:int ->
  ?retries:int ->
  seed:int64 ->
  Circuit.t ->
  path:int array ->
  direction:Robust.direction ->
  outcome
(** Default: 2000 backtracks per frame, 16 validation retries. *)

type summary = {
  testable : int;
  untestable : int;
  aborted : int;
  unsupported : int;
}

val pp_summary : Format.formatter -> summary -> unit

val classify_all :
  ?backtrack_limit:int ->
  ?retries:int ->
  ?max_paths:int ->
  seed:int64 ->
  Circuit.t ->
  summary
(** Run {!generate} on both polarities of every path (paths capped at
    [max_paths], default 20_000; raises [Failure] beyond the cap). Used to
    measure how many of the path faults a resynthesis removed were robustly
    untestable — the paper's central testability claim. *)
