type outcome =
  | Test of bool array * bool array
  | Untestable
  | Aborted
  | Unsupported

let pp_outcome ppf = function
  | Test (_, _) -> Format.pp_print_string ppf "test"
  | Untestable -> Format.pp_print_string ppf "untestable"
  | Aborted -> Format.pp_print_string ppf "aborted"
  | Unsupported -> Format.pp_print_string ppf "unsupported"

exception Xor_on_path

(* Transition direction of every on-path node, primary input first. *)
let path_directions c path direction =
  let n = Array.length path in
  let dirs = Array.make n direction in
  for i = 1 to n - 1 do
    let invert =
      match Circuit.kind c path.(i) with
      | Gate.Buf -> false
      | Gate.Not | Gate.Nand | Gate.Nor -> true
      | Gate.And | Gate.Or -> false
      | Gate.Xor | Gate.Xnor -> raise Xor_on_path
      | Gate.Input | Gate.Const0 | Gate.Const1 ->
        invalid_arg "Pdf_atpg: malformed path"
    in
    let prev = dirs.(i - 1) in
    dirs.(i) <-
      (if invert then
         match prev with Robust.Rising -> Robust.Falling | Robust.Falling -> Robust.Rising
       else prev)
  done;
  dirs

let final_of = function Robust.Rising -> true | Robust.Falling -> false

(* Necessary value constraints of a robust test, as justification targets for
   the initial and final frames. *)
let constraints c path dirs =
  let targets1 = ref [] and targets2 = ref [] in
  Array.iteri
    (fun i node ->
      let final = final_of dirs.(i) in
      targets1 := (node, not final) :: !targets1;
      targets2 := (node, final) :: !targets2)
    path;
  for i = 0 to Array.length path - 2 do
    let u = path.(i) and g = path.(i + 1) in
    match Gate.controlling (Circuit.kind c g) with
    | None -> ()
    | Some ctrl ->
      let onpath_final = final_of dirs.(i) in
      let fins = Circuit.fanins c g in
      let skipped_onpath = ref false in
      Array.iter
        (fun s ->
          if s = u && not !skipped_onpath then skipped_onpath := true
          else begin
            targets2 := (s, not ctrl) :: !targets2;
            if onpath_final <> ctrl then targets1 := (s, not ctrl) :: !targets1
          end)
        fins
  done;
  (List.rev !targets1, List.rev !targets2)

let generate ?(backtrack_limit = 2000) ?(retries = 16) ~seed c ~path ~direction =
  match path_directions c path direction with
  | exception Xor_on_path -> Unsupported
  | dirs ->
    let targets1, targets2 = constraints c path dirs in
    let cmp = Compiled.of_circuit c in
    let validate v1 v2 =
      let waves = Wave.simulate cmp ~v1 ~v2 in
      Robust.detects cmp waves path = Some direction
    in
    let solve ?rng () =
      match Justify.search ~backtrack_limit ?rng c targets1 with
      | Justify.Unsat -> `Untestable
      | Justify.Unknown -> `Aborted
      | Justify.Sat v1 -> (
        (* unconstrained inputs copy v1 so they stay stable across the pair *)
        match Justify.search ~backtrack_limit ?rng ~prefer:v1 c targets2 with
        | Justify.Unsat -> `Untestable
        | Justify.Unknown -> `Aborted
        | Justify.Sat v2 -> `Candidate (v1, v2))
    in
    let n_pi = Array.length (Compiled.inputs cmp) in
    (* Hazard freedom is not a value constraint; when randomised retries fail
       on a small circuit, fall back to exhaustive two-pattern search so the
       verdict stays decisive. *)
    let exhaustive_fallback () =
      if n_pi > 8 then Aborted
      else begin
        let vec m = Array.init n_pi (fun j -> m land (1 lsl (n_pi - 1 - j)) <> 0) in
        let result = ref Untestable in
        let m1 = ref 0 in
        while !result = Untestable && !m1 < 1 lsl n_pi do
          for m2 = 0 to (1 lsl n_pi) - 1 do
            if !result = Untestable then begin
              let v1 = vec !m1 and v2 = vec m2 in
              if validate v1 v2 then result := Test (v1, v2)
            end
          done;
          incr m1
        done;
        !result
      end
    in
    (match solve () with
    | `Untestable -> Untestable
    | `Aborted -> Aborted
    | `Candidate (v1, v2) ->
      if validate v1 v2 then Test (v1, v2)
      else begin
        (* hazard on a stable side input: retry with randomised witnesses *)
        let rng = Rng.create seed in
        let rec retry k =
          if k = 0 then exhaustive_fallback ()
          else
            match solve ~rng () with
            | `Untestable -> Untestable
            | `Aborted -> Aborted
            | `Candidate (v1, v2) ->
              if validate v1 v2 then Test (v1, v2) else retry (k - 1)
        in
        retry retries
      end)

type summary = {
  testable : int;
  untestable : int;
  aborted : int;
  unsupported : int;
}

let pp_summary ppf s =
  Format.fprintf ppf "robustly testable %d, untestable %d, aborted %d, unsupported %d"
    s.testable s.untestable s.aborted s.unsupported

let classify_all ?backtrack_limit ?retries ?(max_paths = 20_000) ~seed c =
  let paths = Paths.enumerate ~cap:max_paths c in
  let summary = ref { testable = 0; untestable = 0; aborted = 0; unsupported = 0 } in
  let bump outcome =
    let s = !summary in
    summary :=
      (match outcome with
      | Test _ -> { s with testable = s.testable + 1 }
      | Untestable -> { s with untestable = s.untestable + 1 }
      | Aborted -> { s with aborted = s.aborted + 1 }
      | Unsupported -> { s with unsupported = s.unsupported + 1 })
  in
  List.iter
    (fun path ->
      bump (generate ?backtrack_limit ?retries ~seed c ~path ~direction:Robust.Rising);
      bump (generate ?backtrack_limit ?retries ~seed c ~path ~direction:Robust.Falling))
    paths;
  !summary
