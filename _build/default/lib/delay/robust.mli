(** Robust path-delay-fault sensitisation criteria (the classical 5-valued
    system: S0, S1, U0, U1, T).

    A two-pattern test robustly detects the delay fault on a path iff every
    on-path line has a transition and at every gate along the path each
    off-path input satisfies:
    - stable non-controlling and hazard-free (S_nc), when the on-path input
      transitions from the controlling to the non-controlling value;
    - non-controlling in the final vector (U_nc, hazards tolerated), when the
      on-path input transitions to the controlling value;
    - stable and hazard-free for gates without a controlling value
      (Xor/Xnor).
    The fault's polarity is the transition direction at the path's primary
    input. *)

type direction = Rising | Falling

val direction_to_string : direction -> string

val propagates : Compiled.t -> Wave.t array -> from_:int -> gate:int -> bool
(** Does the on-path transition on node [from_] robustly propagate through
    [gate]? Requires hazard-free transitions on both [from_] and [gate] plus
    the off-path conditions above. When [from_] feeds several pins of
    [gate], every pin is treated as off-path for the others, which makes the
    check conservative. *)

val detects : Compiled.t -> Wave.t array -> int array -> direction option
(** [detects cmp waves path] is [Some dir] iff the loaded two-pattern test
    robustly detects the delay fault of [path] (node ids, primary input
    first); [dir] is the transition direction at the primary input. *)

val detects_vectors :
  Circuit.t -> v1:bool array -> v2:bool array -> int array -> direction option
(** Convenience wrapper simulating the pair first. *)
