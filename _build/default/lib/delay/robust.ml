type direction = Rising | Falling

let direction_to_string = function Rising -> "rising" | Falling -> "falling"

let side_ok ~controlling ~onpath_final (w : Wave.t) =
  match controlling with
  | Some c ->
    if onpath_final <> c then
      (* on-path goes controlling -> non-controlling: sides steady nc, hf *)
      w.Wave.init = not c && w.Wave.final = not c && w.Wave.hf
    else
      (* on-path goes to controlling: sides non-controlling in v2 *)
      w.Wave.final = not c
  | None -> (not (Wave.has_transition w)) && w.Wave.hf

let propagates cmp waves ~from_ ~gate =
  let wu = waves.(from_) in
  let wg = waves.(gate) in
  (* The on-path signal carries the transition ("T" of the classical
     5-valued robust system); only side inputs have hazard requirements. *)
  Wave.has_transition wu && Wave.has_transition wg
  &&
  match Compiled.kind cmp gate with
  | Gate.Input -> false
  | Gate.Const0 | Gate.Const1 -> false
  | Gate.Buf | Gate.Not -> true
  | (Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor) as k ->
    let controlling = Gate.controlling k in
    let fins = Compiled.fanins cmp gate in
    let ok = ref true in
    let onpath_seen = ref false in
    Array.iter
      (fun f ->
        if f = from_ && not !onpath_seen then onpath_seen := true
        else if
          not (side_ok ~controlling ~onpath_final:wu.Wave.final waves.(f))
        then ok := false)
      fins;
    !ok

let detects cmp waves path =
  let n = Array.length path in
  if n = 0 then None
  else begin
    let pi = path.(0) in
    let wpi = waves.(pi) in
    if not (Wave.has_transition wpi) then None
    else begin
      let ok = ref true in
      for i = 0 to n - 2 do
        if !ok && not (propagates cmp waves ~from_:path.(i) ~gate:path.(i + 1))
        then ok := false
      done;
      if !ok then Some (if wpi.Wave.final then Rising else Falling) else None
    end
  end

let detects_vectors c ~v1 ~v2 path =
  let cmp = Compiled.of_circuit c in
  let waves = Wave.simulate cmp ~v1 ~v2 in
  detects cmp waves path
