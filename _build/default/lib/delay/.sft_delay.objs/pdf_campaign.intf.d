lib/delay/pdf_campaign.mli: Circuit Compiled Format Wave
