lib/delay/robust.ml: Array Compiled Gate Wave
