lib/delay/robust.mli: Circuit Compiled Wave
