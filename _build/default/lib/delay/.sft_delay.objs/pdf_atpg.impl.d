lib/delay/pdf_atpg.ml: Array Circuit Compiled Format Gate Justify List Paths Rng Robust Wave
