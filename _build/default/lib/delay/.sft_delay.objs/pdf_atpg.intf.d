lib/delay/pdf_atpg.mli: Circuit Format Robust
