lib/delay/wave.ml: Array Compiled Gate
