lib/delay/wave.mli: Compiled Gate
