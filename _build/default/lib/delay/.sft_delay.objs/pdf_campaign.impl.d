lib/delay/pdf_campaign.ml: Array Bytes Char Compiled Format Gate Paths Rng Robust Wave
