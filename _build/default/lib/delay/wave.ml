type t = { init : bool; final : bool; hf : bool }

let stable v = { init = v; final = v; hf = true }
let rising = { init = false; final = true; hf = true }
let falling = { init = true; final = false; hf = true }
let has_transition w = w.init <> w.final

let to_string w =
  let base =
    match (w.init, w.final) with
    | false, false -> "000"
    | true, true -> "111"
    | false, true -> "0x1"
    | true, false -> "1x0"
  in
  if w.hf then base else base ^ "!"

(* AND-family hazard rule. An input that is stably at the controlling value
   and hazard-free masks everything. Otherwise the output is hazard-free only
   when every input is hazard-free and rising and falling inputs do not mix
   (a rising and a falling input can overlap at the non-controlling value and
   produce a glitch). *)
let and_like inputs =
  let init = Array.for_all (fun w -> w.init) inputs in
  let final = Array.for_all (fun w -> w.final) inputs in
  let masked =
    Array.exists (fun w -> w.hf && not w.init && not w.final) inputs
  in
  let hf =
    masked
    || (Array.for_all (fun w -> w.hf) inputs
       && not
            (Array.exists (fun w -> w.init && not w.final) inputs
            && Array.exists (fun w -> (not w.init) && w.final) inputs))
  in
  { init; final; hf }

let or_like inputs =
  let init = Array.exists (fun w -> w.init) inputs in
  let final = Array.exists (fun w -> w.final) inputs in
  let masked = Array.exists (fun w -> w.hf && w.init && w.final) inputs in
  let hf =
    masked
    || (Array.for_all (fun w -> w.hf) inputs
       && not
            (Array.exists (fun w -> w.init && not w.final) inputs
            && Array.exists (fun w -> (not w.init) && w.final) inputs))
  in
  { init; final; hf }

(* XOR has no controlling value: any input hazard reaches the output, and two
   transitioning inputs can always glitch. *)
let xor_like inputs =
  let fold sel = Array.fold_left (fun acc w -> acc <> sel w) false inputs in
  let init = fold (fun w -> w.init) in
  let final = fold (fun w -> w.final) in
  let transitions =
    Array.fold_left (fun k w -> if has_transition w then k + 1 else k) 0 inputs
  in
  let hf = Array.for_all (fun w -> w.hf) inputs && transitions <= 1 in
  { init; final; hf }

let invert w = { init = not w.init; final = not w.final; hf = w.hf }

let eval kind inputs =
  match kind with
  | Gate.Input -> invalid_arg "Wave.eval: Input"
  | Gate.Const0 -> stable false
  | Gate.Const1 -> stable true
  | Gate.Buf -> inputs.(0)
  | Gate.Not -> invert inputs.(0)
  | Gate.And -> and_like inputs
  | Gate.Nand -> invert (and_like inputs)
  | Gate.Or -> or_like inputs
  | Gate.Nor -> invert (or_like inputs)
  | Gate.Xor -> xor_like inputs
  | Gate.Xnor -> invert (xor_like inputs)

let simulate cmp ~v1 ~v2 =
  let n_pi = Array.length (Compiled.inputs cmp) in
  if Array.length v1 <> n_pi || Array.length v2 <> n_pi then
    invalid_arg "Wave.simulate: vector length mismatch";
  let waves = Array.make (Compiled.size cmp) (stable false) in
  Array.iteri
    (fun i pi -> waves.(pi) <- { init = v1.(i); final = v2.(i); hf = true })
    (Compiled.inputs cmp);
  Array.iter
    (fun id ->
      match Compiled.kind cmp id with
      | Gate.Input -> ()
      | k ->
        let fins = Compiled.fanins cmp id in
        waves.(id) <- eval k (Array.map (fun f -> waves.(f)) fins))
    (Compiled.order cmp);
  waves
