(** Two-pattern (v1, v2) simulation with hazard tracking.

    Every line gets a wave [(init, final, hf)]: its settled value under the
    first and second vector, and whether the waveform is guaranteed
    glitch-free under arbitrary gate delays ([hf] = hazard-free). Primary
    inputs switch cleanly, so their waves are always hazard-free. The [hf]
    rules are conservative: a line marked hazard-free truly cannot glitch. *)

type t = { init : bool; final : bool; hf : bool }

val stable : bool -> t
val rising : t
val falling : t
val has_transition : t -> bool
val to_string : t -> string
(** ["000"], ["111"], ["0x1"], ["1x0"], with a trailing [!] when hazardous. *)

val eval : Gate.kind -> t array -> t

val simulate : Compiled.t -> v1:bool array -> v2:bool array -> t array
(** Per-node waves (indexed by node id). *)
