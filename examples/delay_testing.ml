(* Path-delay-fault testing: the Table 1 / Table 7 machinery.

   - generates the complete robust two-pattern test set of a comparison unit
     (the constructive version of the paper's Table 1);
   - runs random two-pattern campaigns on a circuit before and after
     Procedure 3, showing fewer path faults and higher robust coverage.

   Run with: dune exec examples/delay_testing.exe *)

let coverage label c =
  let r =
    Pdf_campaign.exec
      { Pdf_campaign.default with max_pairs = 60_000; stop_window = 8_000; seed = 3L }
      c
  in
  Printf.printf "%-18s faults %8s   robustly detected %6s   coverage %5.2f%%   last effective pair %s\n"
    label
    (Table.int r.Pdf_campaign.total_faults)
    (Table.int r.Pdf_campaign.detected)
    (100.0 *. float_of_int r.Pdf_campaign.detected /. float_of_int (max 1 r.Pdf_campaign.total_faults))
    (Table.int r.Pdf_campaign.last_effective_pattern);
  r

let () =
  print_endline "--- Complete robust test set of a comparison unit ----------";
  let unit_ = Comparison_unit.build_interval ~lo:11 ~hi:12 4 in
  let r = Unit_testgen.generate unit_ in
  Printf.printf "unit [11,12]: %d tests cover all %d path faults (untested: %d)\n"
    (List.length r.Unit_testgen.tests)
    (2 * List.length (Paths.enumerate unit_.Comparison_unit.circuit))
    (List.length r.Unit_testgen.untested);

  print_endline "";
  print_endline "--- Random robust PDF campaigns around Procedure 3 ---------";
  let profile =
    {
      Circuit_gen.name = "pdfdemo";
      n_pi = 24;
      n_po = 18;
      n_gates = 150;
      depth = 12;
      combine_pct = 30;
      xor_pct = 3;
      seed = 555L;
    }
  in
  let raw = Circuit_gen.generate profile in
  let c0, _ = Redundancy.make_irredundant ~seed:5L raw in
  let before = coverage "original" c0 in
  let p3 = Circuit.copy c0 in
  ignore (Procedure3.run p3);
  let after = coverage "after Procedure 3" p3 in
  let removed = before.Pdf_campaign.total_faults - after.Pdf_campaign.total_faults in
  let undetected_before = before.Pdf_campaign.total_faults - before.Pdf_campaign.detected in
  let undetected_after = after.Pdf_campaign.total_faults - after.Pdf_campaign.detected in
  Printf.printf
    "\npath faults removed: %s; undetected before: %s, after: %s\n"
    (Table.int removed) (Table.int undetected_before) (Table.int undetected_after);
  if removed > 0 && undetected_after < undetected_before then
    print_endline
      "=> as in the paper, the removed paths were mostly hard-to-test ones: coverage rises."
