(* Random-pattern stuck-at testability before and after resynthesis — the
   Table 6 experiment at toy scale. The paper's claim: Procedure 2 followed
   by redundancy removal leaves random-pattern testability unchanged (same
   faults remain undetected, detection saturates equally fast).

   Run with: dune exec examples/random_testability.exe *)

let campaign label c =
  let r = Campaign.exec { Campaign.default with max_patterns = 200_000; seed = 42L } c in
  Printf.printf "%-22s faults %5d   remaining %3d   last effective pattern %s\n"
    label r.Campaign.total_faults r.Campaign.remaining
    (Table.int r.Campaign.last_effective_pattern);
  r

let () =
  let profile =
    {
      Circuit_gen.name = "t6demo";
      n_pi = 32;
      n_po = 24;
      n_gates = 220;
      depth = 12;
      combine_pct = 22;
      xor_pct = 4;
      seed = 777L;
    }
  in
  let raw = Circuit_gen.generate profile in
  let c0, _ = Redundancy.make_irredundant ~seed:1L raw in
  Printf.printf "circuit: %d gates (2-input eq.), %s paths\n\n"
    (Circuit.two_input_gate_count c0)
    (Table.int (Paths.total c0));

  let r0 = campaign "original" c0 in

  let p2 = Circuit.copy c0 in
  ignore (Procedure2.run p2);
  ignore (Redundancy.remove ~seed:2L p2);
  let r2 = campaign "Proc.2 + red.rem" p2 in

  Printf.printf "\ndetected everything in both? %b / %b\n"
    (r0.Campaign.remaining = 0) (r2.Campaign.remaining = 0);
  print_endline
    "=> gate and path counts changed, but random-pattern stuck-at testability\n\
    \   is preserved (the comparison units are fully testable and the\n\
    \   modification is local)."
