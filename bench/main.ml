(* Bench harness: regenerates every table and figure of the paper.

   Usage: dune exec bench/main.exe [-- OPTIONS]
     --quick        smaller pattern budgets / single K (for CI-style runs)
     --full         paper-scale budgets where feasible
     --only IDS     comma-separated subset of: figures,table1,table2,table3,
                    table4,table5,table6,table7,cec,ablations,micro,kernels,
                    incremental,idcache,sat_atpg
     --only-circuits NAMES
                    comma-separated benchmark filter (e.g. irs1423,irs5378)
                    applied to the per-circuit sections (table2-7, cec);
                    lets small machines produce a complete, reproducible
                    snapshot of the circuits they can carry
     --json FILE    write a machine-readable BENCH_results.json snapshot
                    (per-section wall clock, circuit sizes, parallel
                    speedups and the observability registry; schema in
                    DESIGN.md "Parallel execution" and §9)
     --domains N    domain budget for the parallel kernels (0 or omitted
                    picks Pool.default_domains (), i.e. recommended - 1;
                    resolved by Pool.domains_of_flag like the CLI flag)
     --metrics SINK observability export: "text" prints a readable dump,
                    "json" prints the JSON document, anything else is a
                    file path receiving the JSON (see DESIGN.md §9)
     --trace        print the span trace tree when the run finishes
     --trace-out FILE
                    record begin/end/instant events during the run and
                    write them to FILE as a Chrome trace-event JSON array
                    (chrome://tracing / Perfetto; see DESIGN.md §11)
   Every table prints our measured rows next to the paper's published rows;
   absolute numbers differ (synthetic stand-in circuits, scaled budgets) but
   the qualitative shape is the claim under test. EXPERIMENTS.md records a
   snapshot of this output. *)

let quick = ref false
let only : string list ref = ref []
let only_circuits : string list ref = ref []
let json_file : string option ref = ref None
let domains = ref (Pool.default_domains ())
let metrics : string option ref = ref None
let trace = ref false
let trace_out : string option ref = ref None

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--full" :: rest ->
      quick := false;
      parse rest
    | "--only" :: ids :: rest | "--only-sections" :: ids :: rest ->
      only := String.split_on_char ',' ids;
      parse rest
    | "--only-circuits" :: names :: rest ->
      only_circuits := String.split_on_char ',' names;
      List.iter
        (fun n ->
          if not (List.exists (fun e -> e.Benchmarks.name = n) Benchmarks.all)
          then begin
            Printf.eprintf "error: unknown benchmark %s (see `sft list`)\n" n;
            exit 2
          end)
        !only_circuits;
      parse rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--metrics" :: sink :: rest ->
      metrics := Some sink;
      parse rest
    | "--trace" :: rest ->
      trace := true;
      parse rest
    | "--trace-out" :: file :: rest ->
      trace_out := Some file;
      parse rest
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n -> domains := Pool.domains_of_flag n
      | None ->
        Printf.eprintf "error: --domains expects an integer, got %s\n" n;
        exit 2);
      parse rest
    | other :: _ ->
      (* A typo'd flag must not silently fall through to a full-scale run. *)
      Printf.eprintf
        "error: unknown argument %s\n\
         usage: main.exe [--quick|--full] [--only-sections IDS] \
         [--only-circuits NAMES] [--json FILE] [--domains N] \
         [--metrics text|json|FILE] [--trace] [--trace-out FILE]\n\
         (--only is an alias of --only-sections)\n"
        other;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* The JSON snapshot always embeds the observability registry, so collect
     whenever any sink wants it. *)
  if !metrics <> None || !trace || !json_file <> None then Obs.enable ();
  if !trace_out <> None then Obs.Trace.enable ()

let enabled id = !only = [] || List.mem id !only

let circuit_enabled e =
  !only_circuits = [] || List.mem e.Benchmarks.name !only_circuits

let bench_all () = List.filter circuit_enabled Benchmarks.all
let bench_small () = List.filter circuit_enabled Benchmarks.small

(* CPU time for the per-section progress lines (historic behaviour) ... *)
let now () = Sys.time ()

(* ... but wall clock for everything recorded in the JSON snapshot: the
   whole point of the parallel kernels is wall-clock speedup. Obs.now is
   the observability layer's (non-monotonic) clock, hence the clamps. *)
let wall () = Obs.now ()

let time_wall f =
  let t0 = wall () in
  let r = f () in
  (r, max 0. (wall () -. t0))

(* --- JSON snapshot accumulators ----------------------------------------- *)

type speedup_row = {
  sp_kernel : string;
  sp_circuit : string;
  sp_domains : int;
  sp_serial : float;
  sp_parallel : float;
  sp_identical : bool;
}

(* Word-parallel kernels (DESIGN.md §12): baseline = the scalar reference,
   accelerated = the shipping bit-parallel/cached path, on one domain. *)
type kernel_row = {
  kr_kernel : string;
  kr_baseline_ns : float;
  kr_accel_ns : float;
  kr_identical : bool;
}

(* Incremental resynthesis (DESIGN.md §13): the cost of a second pass on a
   large synthetic circuit, full re-enumeration vs dirty-region tracking,
   plus the bit-identity checks CI gates on. *)
type incr_row = {
  in_circuit : string;
  in_domains : int;
  in_pass2_cuts_full : int;
  in_pass2_cuts_incr : int;
  in_reenum_fraction : float;
  in_pass2_full_s : float;
  in_pass2_incr_s : float;
  in_speedup : float;
  in_identical : bool; (* full = incremental = concurrent-commit *)
  in_gate_ok : bool; (* identical && speedup >= 1 && fraction < 1 *)
}

(* Worklist walk + conflict-graph commit scheduler (DESIGN.md §17): pass-2
   cost of the three engine generations on the same circuit — full
   re-enumeration, scan-walk incremental (flush scheduler), and the
   worklist walk with graph-scheduled commits — plus the pop and wave
   counters the CI gate reads. [wl_waves_gt_flushes] is the structural
   claim: at least one splice survived a touch that the flush rule would
   have landed it on and was then verified in a multi-splice wave. *)
type wl_row = {
  wl_circuit : string;
  wl_domains : int;
  wl_pass2_full_s : float;
  wl_pass2_scan_s : float;
  wl_pass2_wl_s : float;
  wl_speedup_vs_full : float;
  wl_speedup_vs_scan : float;
  wl_popped : int;
  wl_total_roots : int; (* scan-walk visit bound: passes x circuit size *)
  wl_pop_fraction : float;
  wl_commit_waves : int;
  wl_wave_coalesced : int;
  wl_conflict_edges : int;
  wl_identical : bool; (* full = scan-incremental = worklist+graph *)
  wl_waves_gt_flushes : bool; (* wave_coalesced > 0 *)
  wl_gate_ok : bool;
}

(* Persistent identification cache (DESIGN.md §15): lookup traffic of the
   same resynthesis run cold (empty store), warm (the store the cold run
   published) and with the cache off, plus the bit-identity and hit-rate
   checks CI gates on. *)
type idc_row = {
  ic_circuit : string;
  ic_cold_hits : int;
  ic_cold_npn_hits : int;
  ic_cold_misses : int;
  ic_warm_hits : int;
  ic_warm_npn_hits : int;
  ic_warm_disk_hits : int;
  ic_warm_misses : int;
  ic_cold_hit_rate : float;
  ic_warm_hit_rate : float;
  ic_identical : bool; (* off = cold = warm *)
  ic_gate_ok : bool;
      (* identical && warm disk hits > 0 && NPN layer contributes
         (hit rate with the class layer strictly above raw-key alone)
         && warm rate >= cold rate *)
}

(* SAT-powered ATPG (DESIGN.md §14): how many faults the bounded PODEM
   search abandons, and how many of those the exact SAT escalation settles
   (test found or redundancy proved). [sa_escalation_ok] is the CI gate:
   no fault may remain undecided after escalation. *)
type sat_atpg_row = {
  sa_circuit : string;
  sa_survivors : int;
  sa_aborted_before : int;
  sa_sat_tests : int;
  sa_sat_redundant : int;
  sa_aborted_after : int;
  sa_conflict_budget : int;
  sa_escalation_ok : bool;
  sa_seconds : float;
}

(* Decision journal (DESIGN.md §16): the same resynthesis run with and
   without a journal attached. [jr_identical] is the bit-identity gate
   (journaling never perturbs results); [jr_gate_ok] additionally requires
   the journal to load cleanly, record events, and satisfy the decision-
   funnel invariant. *)
type journal_row = {
  jr_circuit : string;
  jr_events : int;
  jr_dropped : int;
  jr_plain_s : float;
  jr_journal_s : float;
  jr_overhead_pct : float;
  jr_identical : bool; (* plain = journaled *)
  jr_funnel_ok : bool;
  jr_gate_ok : bool;
}

let json_sections : (string * string * float) list ref = ref []
let json_circuits : (string * int * int * int * int) list ref = ref []
let json_speedups : speedup_row list ref = ref []
let json_kernels : kernel_row list ref = ref []
let json_incremental : incr_row list ref = ref []
let json_worklist : wl_row list ref = ref []
let json_idcache : idc_row list ref = ref []
let json_sat_atpg : sat_atpg_row list ref = ref []
let json_journal : journal_row list ref = ref []

let record_circuit name c =
  let row =
    ( name,
      Circuit.num_inputs c,
      Circuit.num_outputs c,
      Circuit.two_input_gate_count c,
      try Paths.total c with Paths.Overflow -> -1 )
  in
  if not (List.mem row !json_circuits) then json_circuits := row :: !json_circuits

let section id title f =
  if enabled id then begin
    Printf.printf "\n################ %s — %s\n%!" id title;
    let t0 = now () in
    let w0 = wall () in
    Obs.Span.with_ ("bench." ^ id) f;
    json_sections := (id, title, max 0. (wall () -. w0)) :: !json_sections;
    Printf.printf "[%s done in %.1fs cpu]\n%!" id (now () -. t0)
  end

(* ------------------------------------------------------------------ *)
(* Shared circuit versions, computed once per benchmark name.          *)
(* ------------------------------------------------------------------ *)

let memo : (string, Circuit.t) Hashtbl.t = Hashtbl.create 32

(* Derived circuits (Procedure 2/3, RAR, ...) are deterministic, so they are
   also cached on disk; re-runs and partial runs (--only) then skip the
   expensive resynthesis. Delete data/cache to recompute from scratch. *)
let cache_dir = "data/cache"

let version name variant build =
  let mode = if !quick then "quick" else "full" in
  let key = name ^ "/" ^ variant ^ "/" ^ mode in
  let file = Printf.sprintf "%s/%s.%s.%s.bench" cache_dir name variant mode in
  match Hashtbl.find_opt memo key with
  | Some c -> Circuit.copy c
  | None ->
    let c =
      if Sys.file_exists file then Bench_format.read_file file
      else begin
        let c = build () in
        if Sys.file_exists cache_dir && Sys.is_directory cache_dir then
          Bench_format.write_file file c;
        c
      end
    in
    Hashtbl.replace memo key c;
    Circuit.copy c

let original e = version e.Benchmarks.name "orig" (fun () -> Benchmarks.build e)

let proc2_options k = { Engine.default_options with Engine.k }

(* Procedure 2 with the paper's protocol: try K = 5 and K = 6, keep the best
   circuit (fewest 2-input gates, then fewest paths). In quick mode only
   K = 5 runs. *)
let proc2 e =
  version e.Benchmarks.name "p2" (fun () ->
      let run k =
        let c = original e in
        ignore (Procedure2.run ~options:(proc2_options k) c);
        c
      in
      let candidates = if !quick then [ run 5 ] else [ run 5; run 6 ] in
      let score c = (Circuit.two_input_gate_count c, Paths.total c) in
      List.sort (fun a b -> compare (score a) (score b)) candidates |> List.hd)

let proc2_redrem e =
  version e.Benchmarks.name "p2rr" (fun () ->
      let c = proc2 e in
      ignore (Redundancy.remove ~seed:31L c);
      c)

let proc3 e =
  version e.Benchmarks.name "p3" (fun () ->
      let c = original e in
      let k = if !quick then 5 else 6 in
      ignore (Procedure3.run ~options:(proc2_options k) c);
      c)

let rar e =
  version e.Benchmarks.name "rar" (fun () ->
      let c = original e in
      let options =
        {
          Rar.default_options with
          Rar.max_additions = (if !quick then 8 else 15);
          max_trials = (if !quick then 60 else 150);
          seed = 17L;
        }
      in
      ignore (Rar.optimize ~options c);
      c)

let rar_proc2 e =
  version e.Benchmarks.name "rar+p2" (fun () ->
      let c = rar e in
      ignore (Procedure2.run ~options:(proc2_options (if !quick then 5 else 6)) c);
      c)

let gates2 = Circuit.two_input_gate_count
let paths c = try Paths.total c with Paths.Overflow -> -1

(* ------------------------------------------------------------------ *)
(* Figures 1-6 and Table 1                                              *)
(* ------------------------------------------------------------------ *)

let figures () =
  let show title b =
    Printf.printf "%s\n%s" title (Comparison_unit.describe b)
  in
  let f2 = Truthtable.of_minterms 4 [ 1; 5; 6; 9; 10; 14 ] in
  (match Comparison_fn.identify_exact f2 with
  | Some spec ->
    Format.printf "f2 {1,5,6,9,10,14} identified: %a@." Comparison_fn.pp_spec spec;
    show "Figure 1: comparison unit for f2 (L=5, U=10 after permutation)"
      (Comparison_unit.build ~n:4 spec)
  | None -> print_endline "BUG: f2 not identified");
  show "Figure 3(a): >= 3 block" (Comparison_unit.build_interval ~lo:3 ~hi:15 4);
  show "Figure 3(b): >= 12 block" (Comparison_unit.build_interval ~lo:12 ~hi:15 4);
  show "Figure 3(c): <= 12 block" (Comparison_unit.build_interval ~lo:0 ~hi:12 4);
  show "Figure 3(d): <= 3 block" (Comparison_unit.build_interval ~lo:0 ~hi:3 4);
  show "Figure 4: >= 7 unit with merged AND gates"
    (Comparison_unit.build_interval ~lo:7 ~hi:15 4);
  show "Figure 5-like: free variables, L=5 U=7"
    (Comparison_unit.build_interval ~lo:5 ~hi:7 4);
  show "Figure 6: unit for L=11, U=12" (Comparison_unit.build_interval ~lo:11 ~hi:12 4)

let table1 () =
  (* The complete robust test set of the Figure 6 unit. The paper's Table 1
     lists one (pair of) tests per structural path fault; we generate and
     verify ours mechanically. *)
  let b = Comparison_unit.build_interval ~lo:11 ~hi:12 4 in
  let r = Unit_testgen.generate b in
  let t =
    Table.create ~title:"Table 1 — robust tests for the L=11,U=12 unit"
      ~columns:[ "path"; "transition"; "v1 -> v2" ]
  in
  let c = b.Comparison_unit.circuit in
  List.iter
    (fun test ->
      let name id =
        match Circuit.node_name c id with Some s -> s | None -> string_of_int id
      in
      let vec v =
        String.concat ""
          (Array.to_list (Array.map (fun x -> if x then "1" else "0") v))
      in
      Table.add_row t
        [
          String.concat "-" (Array.to_list (Array.map name test.Unit_testgen.path));
          Robust.direction_to_string test.Unit_testgen.direction;
          vec test.Unit_testgen.v1 ^ " -> " ^ vec test.Unit_testgen.v2;
        ])
    r.Unit_testgen.tests;
  Table.print t;
  Printf.printf
    "untestable path faults: %d (paper: comparison units are fully robustly testable)\n"
    (List.length r.Unit_testgen.untested)

(* ------------------------------------------------------------------ *)
(* Table 2 — Procedure 2                                               *)
(* ------------------------------------------------------------------ *)

(* paper rows: gates orig/modif/redrem, paths orig/modif/redrem
   (-1 where the paper omits the redundancy-removal column) *)
let paper_table2 =
  [
    ("irs1423", (491, 490, 488), (42_089, 37_293, 37_278));
    ("irs5378", (1394, 1388, -1), (10_976, 10_581, -1));
    ("irs9234", (1929, 1784, 1783), (109_283, 20_333, 20_330));
    ("irs13207", (2737, 2537, -1), (261_312, 85_174, -1));
    ("irs15850", (3361, 3115, 3107), (23_003_369, 3_635_532, 3_584_511));
    ("irs35932", (9900, 8497, -1), (58_645, 20_898, -1));
    ("irs38417", (9698, 9344, 9316), (1_192_971, 674_081, 672_121));
    ("irs38584", (12037, 11773, -1), (565_433, 157_979, -1));
  ]

let opt_int v = if v < 0 then "-" else Table.int v

let table2 () =
  let t =
    Table.create ~title:"Table 2 — Procedure 2 (2-input gates and paths)"
      ~columns:
        [
          "circuit"; "which"; "g.orig"; "g.modif"; "g.red.rem"; "p.orig";
          "p.modif"; "p.red.rem";
        ]
  in
  List.iter
    (fun e ->
      let name = e.Benchmarks.name in
      let orig = original e in
      let p2 = proc2 e in
      let p2rr = proc2_redrem e in
      Table.add_row t
        [
          name; "ours";
          Table.int (gates2 orig); Table.int (gates2 p2); Table.int (gates2 p2rr);
          Table.int (paths orig); Table.int (paths p2); Table.int (paths p2rr);
        ];
      match List.find_opt (fun (n, _, _) -> n = name) paper_table2 with
      | Some (_, (g1, g2, g3), (p1, p2v, p3v)) ->
        Table.add_row t
          [
            name; "paper";
            Table.int g1; Table.int g2; opt_int g3;
            Table.int p1; Table.int p2v; opt_int p3v;
          ]
      | None -> ())
    (bench_all ());
  Table.print t

(* ------------------------------------------------------------------ *)
(* Table 3 — comparison with RAMBO_C                                   *)
(* ------------------------------------------------------------------ *)

let paper_table3 =
  [
    ("irs1423", (491, 42_089), (448, 54_596), (448, 50_000));
    ("irs5378", (1394, 10_976), (1248, 12_235), (1242, 11_552));
    ("irs9234", (1929, 109_283), (1539, 32_376), (1497, 23_133));
    ("irs13207", (2737, 261_312), (2266, 577_911), (2171, 163_525));
  ]

let table3 () =
  let t =
    Table.create ~title:"Table 3 — RAR baseline vs RAR + Procedure 2"
      ~columns:
        [
          "circuit"; "which"; "orig 2-inp"; "orig paths"; "RAR 2-inp";
          "RAR paths"; "RAR+P2 2-inp"; "RAR+P2 paths";
        ]
  in
  List.iter
    (fun e ->
      let name = e.Benchmarks.name in
      let orig = original e in
      let r = rar e in
      let rp = rar_proc2 e in
      Table.add_row t
        [
          name; "ours";
          Table.int (gates2 orig); Table.int (paths orig);
          Table.int (gates2 r); Table.int (paths r);
          Table.int (gates2 rp); Table.int (paths rp);
        ];
      match List.find_opt (fun (n, _, _, _) -> n = name) paper_table3 with
      | Some (_, (g0, p0), (g1, p1), (g2, p2)) ->
        Table.add_row t
          [
            name; "paper";
            Table.int g0; Table.int p0; Table.int g1; Table.int p1;
            Table.int g2; Table.int p2;
          ]
      | None -> ())
    (bench_small ());
  Table.print t;
  print_endline
    "shape under test: RAR reduces gates more than Procedure 2 but tends to increase\n\
     paths; running Procedure 2 afterwards recovers gates AND cuts paths."

(* ------------------------------------------------------------------ *)
(* Table 4 — technology mapping                                         *)
(* ------------------------------------------------------------------ *)

let paper_table4a =
  [
    ("irs1423", ((1035, 72), (1031, 70)));
    ("irs5378", ((2607, 17), (2610, 16)));
    ("irs9234", ((3817, 30), (3577, 30)));
    ("irs13207", ((5443, 31), (5004, 31)));
  ]

let paper_table4b =
  [
    ("irs1423", ((959, 68), (956, 66)));
    ("irs5378", ((2413, 20), (2428, 20)));
    ("irs9234", ((3140, 30), (3090, 30)));
    ("irs13207", ((4591, 35), (4487, 35)));
  ]

let table4 () =
  let ta =
    Table.create ~title:"Table 4(a) — technology mapping: original vs Procedure 2"
      ~columns:[ "circuit"; "which"; "lit orig"; "longest"; "lit P2"; "longest P2" ]
  in
  List.iter
    (fun e ->
      let name = e.Benchmarks.name in
      let m0 = Mapper.map (original e) in
      let m2 = Mapper.map (proc2 e) in
      Table.add_row ta
        [
          name; "ours";
          Table.int m0.Mapper.literals; string_of_int m0.Mapper.longest;
          Table.int m2.Mapper.literals; string_of_int m2.Mapper.longest;
        ];
      match List.assoc_opt name paper_table4a with
      | Some ((l0, d0), (l2, d2)) ->
        Table.add_row ta
          [ name; "paper"; Table.int l0; string_of_int d0; Table.int l2; string_of_int d2 ]
      | None -> ())
    (bench_small ());
  Table.print ta;
  let tb =
    Table.create ~title:"Table 4(b) — technology mapping: RAR vs RAR + Procedure 2"
      ~columns:[ "circuit"; "which"; "lit RAR"; "longest"; "lit RAR+P2"; "longest" ]
  in
  List.iter
    (fun e ->
      let name = e.Benchmarks.name in
      let m1 = Mapper.map (rar e) in
      let m2 = Mapper.map (rar_proc2 e) in
      Table.add_row tb
        [
          name; "ours";
          Table.int m1.Mapper.literals; string_of_int m1.Mapper.longest;
          Table.int m2.Mapper.literals; string_of_int m2.Mapper.longest;
        ];
      match List.assoc_opt name paper_table4b with
      | Some ((l0, d0), (l2, d2)) ->
        Table.add_row tb
          [ name; "paper"; Table.int l0; string_of_int d0; Table.int l2; string_of_int d2 ]
      | None -> ())
    (bench_small ());
  Table.print tb;
  print_endline
    "shape under test: literal savings track the 2-input-gate savings and the\n\
     longest path does not grow."

(* ------------------------------------------------------------------ *)
(* Table 5 — Procedure 3                                               *)
(* ------------------------------------------------------------------ *)

let paper_table5 =
  [
    ("irs1423", (91, 79), (491, 503), (42_089, 35_810));
    ("irs5378", (214, 224), (1394, 1476), (10_976, 9_746));
    ("irs9234", (247, 248), (1929, 1981), (109_283, 19_842));
    ("irs13207", (699, 788), (2737, 2606), (261_312, 85_151));
    ("irs15850", (611, 680), (3361, 3690), (23_003_369, 2_875_815));
    ("irs35932", (1763, 2048), (9900, 10_850), (58_645, 20_898));
    ("irs38417", (1664, 1742), (9698, 10_825), (1_192_971, 624_779));
    ("irs38584", (1455, 1700), (12_139, 11_953), (565_433, 156_201));
  ]

let table5 () =
  let t =
    Table.create ~title:"Table 5 — Procedure 3 (path minimisation)"
      ~columns:
        [ "circuit"; "which"; "inp"; "out"; "g.orig"; "g.modif"; "p.orig"; "p.modif" ]
  in
  List.iter
    (fun e ->
      let name = e.Benchmarks.name in
      let orig = original e in
      let p3 = proc3 e in
      Table.add_row t
        [
          name; "ours";
          string_of_int (Circuit.num_inputs orig);
          string_of_int (Circuit.num_outputs orig);
          Table.int (gates2 orig); Table.int (gates2 p3);
          Table.int (paths orig); Table.int (paths p3);
        ];
      match List.find_opt (fun (n, _, _, _) -> n = name) paper_table5 with
      | Some (_, (i, o), (g0, g1), (p0, p1)) ->
        Table.add_row t
          [
            name; "paper"; string_of_int i; string_of_int o;
            Table.int g0; Table.int g1; Table.int p0; Table.int p1;
          ]
      | None -> ())
    (bench_all ());
  Table.print t;
  print_endline "shape under test: paths drop more than under Procedure 2; gates may grow."

(* ------------------------------------------------------------------ *)
(* Table 6 — random-pattern stuck-at testability                        *)
(* ------------------------------------------------------------------ *)

let paper_table6 =
  [
    ("irs1423", (1468, 0, 34_656), (1439, 0, 34_656));
    ("irs5378", (4500, 0, 114_848), (3515, 0, 114_848));
    ("irs9234", (5768, 0, 15_606_336), (4672, 0, 15_606_336));
    ("irs13207", (8813, 0, 333_120), (7452, 0, 333_120));
    ("irs15850", (10_510, 18, 27_884_608), (8795, 16, 27_884_608));
    ("irs35932", (33_174, 0, 256), (26_595, 0, 256));
    ("irs38417", (30_472, 0, 9_485_440), (26_002, 0, 9_485_440));
    ("irs38584", (33_536, 9, 25_454_368), (30_802, 9, 25_454_368));
  ]

let table6 () =
  let budget = if !quick then 50_000 else 200_000 in
  Printf.printf "pattern budget: %s (paper: 30,000,000)\n" (Table.int budget);
  let t =
    Table.create ~title:"Table 6 — random-pattern stuck-at testability"
      ~columns:
        [
          "circuit"; "which"; "faults"; "remain"; "eff.patt"; "m.faults";
          "m.remain"; "m.eff.patt";
        ]
  in
  List.iter
    (fun e ->
      let name = e.Benchmarks.name in
      let cfg = { Campaign.default with max_patterns = budget; seed = 101L } in
      let r0 = Campaign.exec cfg (original e) in
      let r1 = Campaign.exec cfg (proc2_redrem e) in
      Table.add_row t
        [
          name; "ours";
          Table.int r0.Campaign.total_faults; string_of_int r0.Campaign.remaining;
          Table.int r0.Campaign.last_effective_pattern;
          Table.int r1.Campaign.total_faults; string_of_int r1.Campaign.remaining;
          Table.int r1.Campaign.last_effective_pattern;
        ];
      match List.find_opt (fun (n, _, _) -> n = name) paper_table6 with
      | Some (_, (f0, rem0, e0), (f1, rem1, e1)) ->
        Table.add_row t
          [
            name; "paper"; Table.int f0; string_of_int rem0; Table.int e0;
            Table.int f1; string_of_int rem1; Table.int e1;
          ]
      | None -> ())
    (bench_all ());
  Table.print t;
  print_endline
    "shape under test: the modified circuits remain (equally) random-pattern testable;\n\
     the last effective pattern stays in the same regime."

(* ------------------------------------------------------------------ *)
(* Table 7 — robust PDF detection by random patterns (irs13207)        *)
(* ------------------------------------------------------------------ *)

let table7 () =
  let window = if !quick then 5_000 else 10_000 in
  let max_pairs = if !quick then 100_000 else 200_000 in
  Printf.printf "stop window: %s ineffective pairs (paper: 100,000)\n" (Table.int window);
  let e = Benchmarks.find "irs13207" in
  if not (circuit_enabled e) then
    print_endline "skipped (irs13207 excluded by --only-circuits)"
  else begin
  let t =
    Table.create ~title:"Table 7 — robust PDF detection by random patterns, irs13207"
      ~columns:[ "base"; "which"; "eff"; "det/faults (base)"; "det/faults (after P2)" ]
  in
  let run c =
    Pdf_campaign.exec
      { Pdf_campaign.default with max_pairs; stop_window = window; seed = 77L }
      c
  in
  let fmt r =
    Printf.sprintf "%s/%s"
      (Table.int r.Pdf_campaign.detected)
      (Table.int r.Pdf_campaign.total_faults)
  in
  let row base_name base_circuit modified =
    let r0 = run base_circuit in
    let r1 = run modified in
    Table.add_row t
      [
        base_name; "ours";
        Table.int
          (max r0.Pdf_campaign.last_effective_pattern
             r1.Pdf_campaign.last_effective_pattern);
        fmt r0; fmt r1;
      ]
  in
  row "original" (original e) (proc2 e);
  row "RAR" (rar e) (rar_proc2 e);
  Table.add_row t [ "original"; "paper"; "131,000"; "7,304/522,624"; "8,324/170,348" ];
  Table.add_row t [ "RAMBO_C"; "paper"; "132,000"; "7,459/1,155,822"; "8,096/327,050" ];
  Table.print t;
  print_endline
    "shape under test: the modification removes path faults faster than it removes\n\
     detected ones, so robust coverage rises on both bases."
  end

(* ------------------------------------------------------------------ *)
(* CEC — SAT-proved equivalence of the resynthesised circuits           *)
(* ------------------------------------------------------------------ *)

type cec_row = {
  cc_circuit : string;
  cc_pair : string;
  cc_verdict : string;
  cc_outputs : int;
  cc_decisions : int;
  cc_conflicts : int;
  cc_seconds : float;
}

let json_cec : cec_row list ref = ref []

(* Every table row above compares a resynthesised circuit against its
   original; this section SAT-proves (Cec.check_stats, DESIGN.md §10) that
   each of those pairs really computes the same function, so the size and
   testability numbers describe the *same* circuit family. *)
let cec () =
  let t =
    Table.create ~title:"Equivalence — SAT miter proofs for the resynthesised circuits"
      ~columns:
        [ "circuit"; "pair"; "verdict"; "outputs solved"; "decisions"; "conflicts"; "seconds" ]
  in
  let with_pool f =
    if !domains <= 1 then f None
    else Pool.with_pool ~domains:!domains (fun p -> f (Some p))
  in
  with_pool (fun pool ->
      List.iter
        (fun e ->
          let name = e.Benchmarks.name in
          let orig = original e in
          let check pair c =
            let (verdict, s), secs =
              time_wall (fun () -> Cec.check_stats ?pool orig c)
            in
            let vs = Format.asprintf "%a" Cec.pp_verdict verdict in
            let short = if String.length vs > 24 then String.sub vs 0 21 ^ "..." else vs in
            json_cec :=
              {
                cc_circuit = name;
                cc_pair = pair;
                cc_verdict = short;
                cc_outputs = s.Cec.outputs_checked;
                cc_decisions = s.Cec.decisions;
                cc_conflicts = s.Cec.conflicts;
                cc_seconds = secs;
              }
              :: !json_cec;
            Table.add_row t
              [
                name; pair; short;
                Table.int s.Cec.outputs_checked; Table.int s.Cec.decisions;
                Table.int s.Cec.conflicts; Printf.sprintf "%.2f" secs;
              ]
          in
          check "orig-vs-p2" (proc2 e);
          check "orig-vs-p3" (proc3 e))
        (bench_all ()));
  Table.print t;
  print_endline
    "every verdict must read `equivalent': resynthesis is function-preserving, and\n\
     each row is an unconditional SAT proof of that for the tables above."

(* ------------------------------------------------------------------ *)
(* SAT-powered ATPG — escalation of PODEM-aborted faults                *)
(* ------------------------------------------------------------------ *)

(* Measures the escalation path of DESIGN.md §14 on the raw (pre-removal)
   stand-ins: random-pattern campaign for the easy faults, a deliberately
   starved PODEM (low backtrack limit) to manufacture a realistic abort
   worklist, then Sat_atpg.escalate to settle it exactly. The CI gate
   (scripts/check_regression.sh) requires escalation_ok on every row:
   no fault may remain undecided after the SAT pass. *)
let sat_atpg () =
  let t =
    Table.create ~title:"SAT ATPG — escalation of PODEM-aborted faults (raw stand-ins)"
      ~columns:
        [ "circuit"; "survivors"; "podem aborts"; "sat tests"; "sat redundant";
          "undecided"; "ok"; "seconds" ]
  in
  let entries =
    if !quick then List.filter circuit_enabled [ Benchmarks.find "irs1423" ]
    else bench_small ()
  in
  let podem_backtracks = 20 in
  let limits = Limits.default in
  List.iter
    (fun e ->
      let name = e.Benchmarks.name in
      let c = Circuit_gen.generate e.Benchmarks.profile in
      let (aborted, esc, survivors), secs =
        time_wall (fun () ->
            let cfg = { Campaign.default with max_patterns = 4096; seed = 7L } in
            let _, survivors = Campaign.exec_survivors cfg c in
            let stats =
              Podem.generate_all ~backtrack_limit:podem_backtracks c survivors
            in
            let aborted = stats.Podem.aborted_faults in
            let esc = Sat_atpg.escalate ~limits c aborted in
            (List.length aborted, esc, List.length survivors))
      in
      let undecided = List.length esc.Sat_atpg.unknown in
      let ok = undecided = 0 in
      json_sat_atpg :=
        {
          sa_circuit = name;
          sa_survivors = survivors;
          sa_aborted_before = aborted;
          sa_sat_tests = List.length esc.Sat_atpg.tests;
          sa_sat_redundant = List.length esc.Sat_atpg.redundant;
          sa_aborted_after = undecided;
          sa_conflict_budget = limits.Limits.sat_conflicts;
          sa_escalation_ok = ok;
          sa_seconds = secs;
        }
        :: !json_sat_atpg;
      Table.add_row t
        [
          name; Table.int survivors; Table.int aborted;
          Table.int (List.length esc.Sat_atpg.tests);
          Table.int (List.length esc.Sat_atpg.redundant);
          Table.int undecided; (if ok then "yes" else "NO");
          Printf.sprintf "%.2f" secs;
        ];
      List.iter
        (fun (f, budget) ->
          Printf.printf "  undecided after escalation: %s (budget %d conflicts)\n"
            (Fault.to_string c f) budget)
        esc.Sat_atpg.unknown)
    entries;
  Table.print t;
  print_endline
    "every SAT test vector is replay-validated against the fault simulator, and\n\
     `ok' asserts that no PODEM abort survives the exact escalation pass."

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let ablations () =
  let e = Benchmarks.find "irs1423" in
  let t =
    Table.create ~title:"Ablation — K (subcircuit input limit), Procedure 2 on irs1423"
      ~columns:[ "K"; "gates"; "paths"; "depth"; "seconds" ]
  in
  List.iter
    (fun k ->
      let c = original e in
      let t0 = now () in
      ignore (Procedure2.run ~options:(proc2_options k) c);
      Table.add_row t
        [
          string_of_int k; Table.int (gates2 c); Table.int (paths c);
          string_of_int (Levelize.depth_logic c);
          Printf.sprintf "%.2f" (now () -. t0);
        ])
    [ 4; 5; 6 ];
  Table.print t;
  let t =
    Table.create ~title:"Ablation — identification engine, Procedure 2 on irs1423"
      ~columns:[ "engine"; "gates"; "paths"; "seconds" ]
  in
  List.iter
    (fun (label, engine) ->
      let c = original e in
      let options = { (proc2_options 5) with Engine.engine } in
      let t0 = now () in
      ignore (Procedure2.run ~options c);
      Table.add_row t
        [
          label; Table.int (gates2 c); Table.int (paths c);
          Printf.sprintf "%.2f" (now () -. t0);
        ])
    [
      ("exact", Comparison_fn.Exact);
      ("sampled-200 (paper)", Comparison_fn.Sampled 200);
      ("sampled-20", Comparison_fn.Sampled 20);
    ];
  Table.print t;
  let t =
    Table.create ~title:"Ablation — chain-gate merging (Fig. 4), Procedure 2 on irs1423"
      ~columns:[ "merge"; "gates"; "paths"; "depth" ]
  in
  List.iter
    (fun merge ->
      let c = original e in
      ignore (Procedure2.run ~options:{ (proc2_options 5) with Engine.merge } c);
      Table.add_row t
        [
          string_of_bool merge; Table.int (gates2 c); Table.int (paths c);
          string_of_int (Levelize.depth_logic c);
        ])
    [ true; false ];
  Table.print t;
  (* The paper's Sec. 6 future-work items, implemented as engine options. *)
  let t =
    Table.create
      ~title:"Extension — Sec. 6 items (don't-cares, multi-unit covers), Procedure 2 on irs1423"
      ~columns:[ "variant"; "gates"; "paths"; "seconds" ]
  in
  List.iter
    (fun (label, options) ->
      let c = original e in
      let t0 = now () in
      ignore (Procedure2.run ~options c);
      Table.add_row t
        [
          label; Table.int (gates2 c); Table.int (paths c);
          Printf.sprintf "%.2f" (now () -. t0);
        ])
    [
      ("baseline (paper)", proc2_options 5);
      ("+ don't-cares", { (proc2_options 5) with Engine.use_dontcares = true });
      ("+ multi-unit covers", { (proc2_options 5) with Engine.max_units = 3 });
      ( "+ both",
        { (proc2_options 5) with Engine.use_dontcares = true; max_units = 3 } );
    ];
  Table.print t;
  (* Direct check of the central testability claim with the robust PDF test
     generator: most paths removed by Procedure 3 were robustly untestable. *)
  let small =
    Circuit_gen.generate
      {
        Circuit_gen.name = "claim";
        n_pi = 20;
        n_po = 14;
        n_gates = 110;
        depth = 10;
        combine_pct = 28;
        xor_pct = 0;
        seed = 4242L;
      }
  in
  let c0, _ = Redundancy.make_irredundant ~seed:12L small in
  let p3 = Circuit.copy c0 in
  ignore (Procedure3.run ~options:(proc2_options 5) p3);
  let s0 = Pdf_atpg.classify_all ~seed:5L c0 in
  let s1 = Pdf_atpg.classify_all ~seed:5L p3 in
  let t =
    Table.create
      ~title:"Claim check — robust PDF testability before/after Procedure 3 (exact ATPG)"
      ~columns:[ "circuit"; "paths"; "testable"; "untestable"; "aborted" ]
  in
  let row label c s =
    Table.add_row t
      [
        label; Table.int (paths c);
        Table.int s.Pdf_atpg.testable; Table.int s.Pdf_atpg.untestable;
        Table.int s.Pdf_atpg.aborted;
      ]
  in
  row "original" c0 s0;
  row "after Procedure 3" p3 s1;
  Table.print t;
  Printf.printf
    "paper's claim: the path faults removed are mostly untestable ones (untestable\n\
     count drops faster than testable count).\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one kernel per table/figure               *)
(* ------------------------------------------------------------------ *)

let rec micro () =
  let open Bechamel in
  let c17 = Benchmarks.c17 () in
  let unit_spec =
    { Comparison_fn.perm = [| 4; 3; 1; 2 |]; lo = 5; hi = 10; complemented = false }
  in
  let f2 = Truthtable.of_minterms 4 [ 1; 5; 6; 9; 10; 14 ] in
  let small =
    Circuit_gen.generate
      {
        Circuit_gen.name = "micro";
        n_pi = 24;
        n_po = 16;
        n_gates = 130;
        depth = 10;
        combine_pct = 25;
        xor_pct = 4;
        seed = 99L;
      }
  in
  let cmp = Compiled.of_circuit small in
  let sim = Fsim.create cmp in
  let rng = Rng.create 3L in
  let n_pi = Circuit.num_inputs small in
  let faults = Array.of_list (Fault.collapsed small) in
  let tests =
    [
      Test.make ~name:"fig1: build comparison unit"
        (Staged.stage (fun () -> Comparison_unit.build ~n:4 unit_spec));
      Test.make ~name:"table1: unit robust test set"
        (Staged.stage (fun () ->
             Unit_testgen.generate (Comparison_unit.build ~n:4 unit_spec)));
      Test.make ~name:"sec3.4: exact identification of f2"
        (Staged.stage (fun () -> Comparison_fn.identify_exact f2));
      Test.make ~name:"table2: Procedure-2 pass (130 gates)"
        (Staged.stage (fun () ->
             let c = Circuit.copy small in
             Procedure2.run ~options:{ (proc2_options 5) with Engine.max_passes = 1 } c));
      Test.make ~name:"table3: RAR 64-pattern sim filter"
        (Staged.stage (fun () ->
             Compiled.simulate cmp (Array.init n_pi (fun _ -> Rng.next64 rng))));
      Test.make ~name:"table4: technology map c17"
        (Staged.stage (fun () -> Mapper.map c17));
      Test.make ~name:"table5: Procedure-3 pass (130 gates)"
        (Staged.stage (fun () ->
             let c = Circuit.copy small in
             Procedure3.run ~options:{ (proc2_options 5) with Engine.max_passes = 1 } c));
      Test.make ~name:"table6: PPSFP batch over all faults"
        (Staged.stage (fun () ->
             Fsim.load_patterns sim (Array.init n_pi (fun _ -> Rng.next64 rng));
             Array.iter (fun f -> ignore (Fsim.detect sim f)) faults));
      Test.make ~name:"table7: wave sim + robust count"
        (Staged.stage (fun () ->
             let v1 = Array.init n_pi (fun _ -> Rng.bool rng) in
             let v2 = Array.init n_pi (fun _ -> Rng.bool rng) in
             let waves = Wave.simulate cmp ~v1 ~v2 in
             Pdf_campaign.count_robust cmp waves));
      Test.make ~name:"proc1: path counting"
        (Staged.stage (fun () -> Paths.total small));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if !quick then 0.05 else 0.25))
      ~kde:None ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  Printf.printf "%-44s %16s\n" "kernel" "ns/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name r ->
          match Analyze.OLS.estimates r with
          | Some [ est ] -> Printf.printf "%-44s %16.1f\n" name est
          | Some _ | None -> Printf.printf "%-44s %16s\n" name "n/a")
        stats)
    tests;
  parallel_speedups ()

(* ------------------------------------------------------------------ *)
(* Parallel-engine speedups: the three hottest loops, measured serial   *)
(* (1 domain) against the --domains pool, with a bit-identity check.    *)
(* ------------------------------------------------------------------ *)

and parallel_speedups () =
  let nd = !domains in
  Printf.printf "\nparallel kernels: 1 domain vs %d domains (recommended %d)\n" nd
    (Domain.recommended_domain_count ());
  let report row =
    json_speedups := row :: !json_speedups;
    Printf.printf "%-28s %-10s serial %8.3fs  parallel %8.3fs  speedup %5.2fx  %s\n%!"
      row.sp_kernel row.sp_circuit row.sp_serial row.sp_parallel
      (if row.sp_parallel > 0. then row.sp_serial /. row.sp_parallel else 0.)
      (if row.sp_identical then "bit-identical" else "RESULTS DIFFER (bug!)")
  in
  (* Fault-simulation campaign: shard the fault list. *)
  let par_circuit =
    Circuit_gen.generate
      {
        Circuit_gen.name = "micro-par";
        n_pi = 32;
        n_po = 20;
        n_gates = (if !quick then 400 else 900);
        depth = 12;
        combine_pct = 25;
        xor_pct = 4;
        seed = 1234L;
      }
  in
  record_circuit "micro-par" par_circuit;
  let budget = if !quick then 2_048 else 16_384 in
  let fsim_cfg d = { Campaign.default with max_patterns = budget; domains = d; seed = 7L } in
  let r1, t1 = time_wall (fun () -> Campaign.exec (fsim_cfg 1) par_circuit) in
  let rn, tn = time_wall (fun () -> Campaign.exec (fsim_cfg nd) par_circuit) in
  report
    {
      sp_kernel = "fault_sim_campaign";
      sp_circuit = "micro-par";
      sp_domains = nd;
      sp_serial = t1;
      sp_parallel = tn;
      sp_identical = r1 = rn;
    };
  (* Robust PDF campaign: fan out the wave simulations. *)
  let small =
    Circuit_gen.generate
      {
        Circuit_gen.name = "micro";
        n_pi = 24;
        n_po = 16;
        n_gates = 130;
        depth = 10;
        combine_pct = 25;
        xor_pct = 4;
        seed = 99L;
      }
  in
  record_circuit "micro" small;
  let pairs = if !quick then 2_000 else 20_000 in
  let pdf_cfg d =
    { Pdf_campaign.default with max_pairs = pairs; stop_window = pairs; domains = d; seed = 77L }
  in
  let p1, tp1 = time_wall (fun () -> Pdf_campaign.exec (pdf_cfg 1) small) in
  let pn, tpn = time_wall (fun () -> Pdf_campaign.exec (pdf_cfg nd) small) in
  report
    {
      sp_kernel = "pdf_campaign";
      sp_circuit = "micro";
      sp_domains = nd;
      sp_serial = tp1;
      sp_parallel = tpn;
      sp_identical = p1 = pn;
    };
  (* Resynthesis engine: concurrent candidate scoring. *)
  let engine_opts d =
    { (proc2_options 5) with Engine.max_candidates = 32; max_passes = 1; domains = d }
  in
  let (s1, c1), te1 =
    time_wall (fun () ->
        let c = Circuit.copy par_circuit in
        (Procedure2.run ~options:(engine_opts 1) c, c))
  in
  let (sn, cn), ten =
    time_wall (fun () ->
        let c = Circuit.copy par_circuit in
        (Procedure2.run ~options:(engine_opts nd) c, c))
  in
  report
    {
      sp_kernel = "engine_score_candidates";
      sp_circuit = "micro-par";
      sp_domains = nd;
      sp_serial = te1;
      sp_parallel = ten;
      sp_identical = s1 = sn && Bench_format.to_string c1 = Bench_format.to_string cn;
    }

(* ------------------------------------------------------------------ *)
(* Word-parallel kernels: the candidate-evaluation hot paths measured   *)
(* against their scalar baselines, single-domain (DESIGN.md §12).       *)
(* ------------------------------------------------------------------ *)

let kernels () =
  let report row =
    json_kernels := row :: !json_kernels;
    Printf.printf "%-28s scalar %10.1f ns/call  word %10.1f ns/call  speedup %5.2fx  %s\n%!"
      row.kr_kernel row.kr_baseline_ns row.kr_accel_ns
      (if row.kr_accel_ns > 0. then row.kr_baseline_ns /. row.kr_accel_ns else 0.)
      (if row.kr_identical then "bit-identical" else "RESULTS DIFFER (bug!)")
  in
  let small =
    Circuit_gen.generate
      {
        Circuit_gen.name = "micro";
        n_pi = 24;
        n_po = 16;
        n_gates = 130;
        depth = 10;
        combine_pct = 25;
        xor_pct = 4;
        seed = 99L;
      }
  in
  record_circuit "micro" small;
  (* Every K=6 candidate cone of the micro circuit, the same workload the
     resynthesis inner loop sees. *)
  let subs =
    Array.to_list (Circuit.topo_order small)
    |> List.filter (fun id ->
           match Circuit.kind small id with
           | Gate.Input | Gate.Const0 | Gate.Const1 -> false
           | _ -> true)
    |> List.concat_map (fun root -> Subcircuit.enumerate ~k:6 ~max_candidates:16 small root)
    |> Array.of_list
  in
  let reps = if !quick then 5 else 20 in
  let calls = reps * Array.length subs in
  let per_call secs = max 0. secs *. 1e9 /. float_of_int (max 1 calls) in
  let scalar_tts = Array.map (Subcircuit.extract_scalar small) subs in
  let word_tts = Array.map (Subcircuit.extract small) subs in
  let _, t_scalar =
    time_wall (fun () ->
        for _ = 1 to reps do
          Array.iter (fun s -> ignore (Subcircuit.extract_scalar small s)) subs
        done)
  in
  let scratch = Array.make (Circuit.size small) 0L in
  let _, t_word =
    time_wall (fun () ->
        for _ = 1 to reps do
          Array.iter (fun s -> ignore (Subcircuit.extract ~scratch small s)) subs
        done)
  in
  report
    {
      kr_kernel = "subcircuit_extract_k6";
      kr_baseline_ns = per_call t_scalar;
      kr_accel_ns = per_call t_word;
      kr_identical =
        (try Array.for_all2 Truthtable.equal scalar_tts word_tts
         with Invalid_argument _ -> false);
    };
  (* Identification over the same cone functions: every call computed from
     scratch vs the run-scoped cache (first encounter computes, repeats
     hit — the steady state of a multi-pass optimisation run). *)
  let verdicts_plain = Array.map Comparison_fn.identify_exact word_tts in
  let cache = Comparison_fn.Cache.create () in
  let cached_identify tt =
    match Comparison_fn.Cache.find cache tt with
    | Some v -> v
    | None ->
      let v = Comparison_fn.identify_exact tt in
      Comparison_fn.Cache.add cache tt v;
      v
  in
  let verdicts_cached = Array.map cached_identify word_tts in
  let _, t_plain =
    time_wall (fun () ->
        for _ = 1 to reps do
          Array.iter (fun tt -> ignore (Comparison_fn.identify_exact tt)) word_tts
        done)
  in
  let _, t_cached =
    time_wall (fun () ->
        for _ = 1 to reps do
          Array.iter (fun tt -> ignore (cached_identify tt)) word_tts
        done)
  in
  report
    {
      kr_kernel = "identify_exact_cached";
      kr_baseline_ns = per_call t_plain;
      kr_accel_ns = per_call t_cached;
      kr_identical = verdicts_plain = verdicts_cached;
    }

(* ------------------------------------------------------------------ *)
(* Incremental resynthesis: second-pass cost on a large synthetic       *)
(* circuit, full re-enumeration vs dirty-region tracking, and the       *)
(* bit-identity of serial vs concurrent splice commits (DESIGN.md §13). *)
(* ------------------------------------------------------------------ *)

let incremental () =
  (* Cut enumeration counts come from the engine.candidates counter, so
     collection must be on even when no --json/--metrics sink asked for it
     (this section registers last: earlier sections keep their baseline
     probe cost when run together without a sink). *)
  Obs.enable ();
  let base =
    Circuit_gen.generate
      {
        (* Wide and shallow with little cross-slice reconvergence: fanout
           cones stay local, so pass-1 splices dirty only a small fraction
           of the circuit and pass 2 shows the incremental win. *)
        Circuit_gen.name = "incr-large";
        n_pi = 400;
        n_po = 360;
        n_gates = (if !quick then 5200 else 10400);
        depth = 4;
        combine_pct = 1;
        xor_pct = 4;
        seed = 4242L;
      }
  in
  record_circuit "incr-large" base;
  let candidates_c = Obs.Counter.make "engine.candidates" in
  let opts ~incremental ~passes ~domains ~commit_batch =
    {
      (proc2_options 4) with
      Engine.max_candidates = 24;
      max_passes = passes;
      incremental;
      commit_batch;
      domains;
      (* Pin the PR-6 configuration: this section measures dirty-region
         tracking alone. The worklist walk and the graph scheduler get
         their own section below. *)
      worklist = false;
      scheduler = Engine.Flush;
    }
  in
  (* The timed configurations below are all serial (domains = 1), so they
     are measured in process CPU time, not wall clock: the pass-2 cost is
     a difference of two short runs and scheduler noise on a loaded box
     would otherwise dominate it (the §8 wall-clock rationale only applies
     to the parallel kernels). *)
  let run o =
    let c = Circuit.copy base in
    let c0 = Obs.Counter.value candidates_c in
    let t0 = Sys.time () in
    let stats = Engine.optimize Engine.Gates o c in
    let t = max 0. (Sys.time () -. t0) in
    (stats, Bench_format.to_string c, Obs.Counter.value candidates_c - c0, t)
  in
  (* Even CPU time jitters (allocation, GC): keep the exactly reproducible
     stats and counter deltas from one run, take the minimum time over a
     few repetitions. *)
  let run_best o =
    let s, n, cuts, w0 = run o in
    let w = ref w0 in
    for _ = 2 to 3 do
      let _, _, _, wi = run o in
      if wi < !w then w := wi
    done;
    (s, n, cuts, !w)
  in
  (* Pass-2 cost = (two-pass run) - (one-pass run): cut counts are exact
     (deterministic enumeration), wall clock is the measured difference. *)
  let s1f, _, cuts1f, t1f = run_best (opts ~incremental:false ~passes:1 ~domains:1 ~commit_batch:1) in
  let sf, nf, cuts2f, t2f = run_best (opts ~incremental:false ~passes:2 ~domains:1 ~commit_batch:1) in
  let _, _, cuts1i, t1i = run_best (opts ~incremental:true ~passes:1 ~domains:1 ~commit_batch:1) in
  let si, ni, cuts2i, t2i = run_best (opts ~incremental:true ~passes:2 ~domains:1 ~commit_batch:1) in
  (* Concurrent commits: deferred batches on the --domains pool must land
     the exact same netlist as immediate serial splices. *)
  let sc, nc, _, _ = run (opts ~incremental:true ~passes:2 ~domains:!domains ~commit_batch:8) in
  let pass2_cuts_full = max 0 (cuts2f - cuts1f) in
  let pass2_cuts_incr = max 0 (cuts2i - cuts1i) in
  let fraction =
    if pass2_cuts_full = 0 then 1.
    else float_of_int pass2_cuts_incr /. float_of_int pass2_cuts_full
  in
  let pass2_full_s = max 0. (t2f -. t1f) in
  let pass2_incr_s = max 0. (t2i -. t1i) in
  (* An unmeasurably cheap incremental pass counts as fast, not as a
     division-by-zero failure of the gate. *)
  let speedup =
    if pass2_incr_s <= 0. then if pass2_full_s <= 0. then 1. else 99.99
    else pass2_full_s /. pass2_incr_s
  in
  let identical = sf = si && sf = sc && nf = ni && nf = nc in
  let row =
    {
      in_circuit = "incr-large";
      in_domains = !domains;
      in_pass2_cuts_full = pass2_cuts_full;
      in_pass2_cuts_incr = pass2_cuts_incr;
      in_reenum_fraction = fraction;
      in_pass2_full_s = pass2_full_s;
      in_pass2_incr_s = pass2_incr_s;
      in_speedup = speedup;
      in_identical = identical;
      in_gate_ok = identical && speedup >= 1. && fraction < 1.;
    }
  in
  json_incremental := row :: !json_incremental;
  Printf.printf "incremental resynthesis on %s (%d two-input gates, %d replacements in pass 1)\n"
    row.in_circuit
    (Circuit.two_input_gate_count base)
    s1f.Engine.replacements;
  Printf.printf "  pass-2 cuts   full %8d   incremental %8d   (%.1f%% re-enumerated)\n"
    pass2_cuts_full pass2_cuts_incr (100. *. fraction);
  Printf.printf "  pass-2 cpu    full %7.3fs   incremental %7.3fs   (speedup %.2fx)\n"
    pass2_full_s pass2_incr_s speedup;
  Printf.printf "  identical results: %b (full vs incremental vs concurrent domains=%d)\n%!"
    identical !domains

(* ------------------------------------------------------------------ *)
(* "Worklist + conflict-graph commits" section (DESIGN.md §17).        *)
(* ------------------------------------------------------------------ *)

let worklist () =
  (* Pop/wave evidence comes from the engine.worklist_* counters, so
     collection must be on (same rationale as the incremental section). *)
  Obs.enable ();
  let base =
    Circuit_gen.generate
      {
        (* Same profile as the incremental section: local fanout cones, so
           pass-1 splices dirty a small region and the dirty-root worklist
           pops a small fraction of the roots the scan walk visits. *)
        Circuit_gen.name = "incr-large";
        n_pi = 400;
        n_po = 360;
        n_gates = (if !quick then 5200 else 10400);
        depth = 4;
        combine_pct = 1;
        xor_pct = 4;
        seed = 4242L;
      }
  in
  record_circuit "incr-large" base;
  let popped_c = Obs.Counter.make "engine.worklist_popped" in
  let waves_c = Obs.Counter.make "engine.commit_waves" in
  let coalesced_c = Obs.Counter.make "engine.wave_coalesced" in
  let edges_c = Obs.Counter.make "engine.conflict_edges" in
  let opts ~incremental ~worklist ~scheduler ~passes ~domains =
    {
      (proc2_options 4) with
      Engine.max_candidates = 24;
      max_passes = passes;
      incremental;
      worklist;
      scheduler;
      commit_batch = 8;
      domains;
    }
  in
  (* CPU time, minimum of three runs, like the incremental section; the
     counter deltas and result strings are exactly reproducible, so they
     come from the first run. *)
  let run o =
    let c = Circuit.copy base in
    let p0 = Obs.Counter.value popped_c in
    let w0 = Obs.Counter.value waves_c in
    let k0 = Obs.Counter.value coalesced_c in
    let e0 = Obs.Counter.value edges_c in
    let t0 = Sys.time () in
    let stats = Engine.optimize Engine.Gates o c in
    let t = max 0. (Sys.time () -. t0) in
    ( stats,
      Bench_format.to_string c,
      t,
      Circuit.size c,
      ( Obs.Counter.value popped_c - p0,
        Obs.Counter.value waves_c - w0,
        Obs.Counter.value coalesced_c - k0,
        Obs.Counter.value edges_c - e0 ) )
  in
  let run_best o =
    let s, n, w0, size, counters = run o in
    let w = ref w0 in
    for _ = 2 to 3 do
      let _, _, wi, _, _ = run o in
      if wi < !w then w := wi
    done;
    (s, n, !w, size, counters)
  in
  let full ~passes = opts ~incremental:false ~worklist:false ~scheduler:Engine.Flush ~passes ~domains:1 in
  let scan ~passes = opts ~incremental:true ~worklist:false ~scheduler:Engine.Flush ~passes ~domains:1 in
  let wl ~passes ~domains = opts ~incremental:true ~worklist:true ~scheduler:Engine.Graph ~passes ~domains in
  let _, _, t1f, _, _ = run_best (full ~passes:1) in
  let sf, nf, t2f, _, _ = run_best (full ~passes:2) in
  let _, _, t1s, _, _ = run_best (scan ~passes:1) in
  let ss, ns, t2s, _, _ = run_best (scan ~passes:2) in
  let _, _, t1w, _, _ = run_best (wl ~passes:1 ~domains:1) in
  let sw, nw, t2w, size_w, (popped, waves, coalesced, edges) =
    run_best (wl ~passes:2 ~domains:1)
  in
  (* Fourth leg: the same worklist+graph run with wave verification fanned
     out across the pool must still land the identical netlist. *)
  let sp, np, _, _, _ = run (wl ~passes:2 ~domains:!domains) in
  let pass2_full_s = max 0. (t2f -. t1f) in
  let pass2_scan_s = max 0. (t2s -. t1s) in
  let pass2_wl_s = max 0. (t2w -. t1w) in
  let speedup num den = if den <= 0. then if num <= 0. then 1. else 99.99 else num /. den in
  (* The scan walk visits every root of every pass; the worklist pops only
     the dirty ones. *)
  let total_roots = sw.Engine.passes * size_w in
  let pop_fraction =
    if total_roots = 0 then 1. else float_of_int popped /. float_of_int total_roots
  in
  let identical =
    sf = ss && sf = sw && sf = sp && nf = ns && nf = nw && nf = np
  in
  let waves_gt_flushes = coalesced > 0 in
  let row =
    {
      wl_circuit = "incr-large";
      wl_domains = !domains;
      wl_pass2_full_s = pass2_full_s;
      wl_pass2_scan_s = pass2_scan_s;
      wl_pass2_wl_s = pass2_wl_s;
      wl_speedup_vs_full = speedup pass2_full_s pass2_wl_s;
      wl_speedup_vs_scan = speedup pass2_scan_s pass2_wl_s;
      wl_popped = popped;
      wl_total_roots = total_roots;
      wl_pop_fraction = pop_fraction;
      wl_commit_waves = waves;
      wl_wave_coalesced = coalesced;
      wl_conflict_edges = edges;
      wl_identical = identical;
      wl_waves_gt_flushes = waves_gt_flushes;
      wl_gate_ok =
        identical && pop_fraction < 1. && edges = 0 && waves_gt_flushes;
    }
  in
  json_worklist := row :: !json_worklist;
  Printf.printf "worklist walk + graph commits on %s (%d two-input gates)\n"
    row.wl_circuit
    (Circuit.two_input_gate_count base);
  Printf.printf
    "  pass-2 cpu    full %7.3fs   scan-incr %7.3fs   worklist %7.3fs\n"
    pass2_full_s pass2_scan_s pass2_wl_s;
  Printf.printf
    "  worklist pops %d of %d scan visits (%.2f%%); %d waves, %d coalesced, %d conflict edges\n"
    popped total_roots (100. *. pop_fraction) waves coalesced edges;
  Printf.printf
    "  identical results: %b (full vs scan-incremental vs worklist+graph vs domains=%d)\n%!"
    identical !domains

(* ------------------------------------------------------------------ *)
(* "Persistent identification cache" section (DESIGN.md §15).           *)
(* ------------------------------------------------------------------ *)

let idcache () =
  (* Lookup traffic comes from the idcache.* counters, so collection must
     be on (same rationale as the incremental section). *)
  Obs.enable ();
  let base =
    Circuit_gen.generate
      {
        Circuit_gen.name = "idc-large";
        n_pi = 200;
        n_po = 180;
        n_gates = (if !quick then 2600 else 5200);
        depth = 4;
        combine_pct = 1;
        xor_pct = 4;
        seed = 2424L;
      }
  in
  record_circuit "idc-large" base;
  (* The persistent store lives in its own subdirectory of the derived-
     circuit cache (or the temp dir when data/cache is absent) and is wiped
     first, so "cold" genuinely starts from an empty store. *)
  let store_dir =
    let parent =
      if Sys.file_exists cache_dir && Sys.is_directory cache_dir then cache_dir
      else Filename.get_temp_dir_name ()
    in
    Filename.concat parent "idcache-bench"
  in
  if Sys.file_exists store_dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat store_dir f))
      (Sys.readdir store_dir);
  let hits_c = Obs.Counter.make "idcache.hits" in
  let npn_c = Obs.Counter.make "idcache.npn_hits" in
  let disk_c = Obs.Counter.make "idcache.disk_hits" in
  let miss_c = Obs.Counter.make "idcache.misses" in
  let opts ~id_cache ~cache_dir =
    {
      (proc2_options 4) with
      Engine.max_candidates = 24;
      max_passes = 2;
      domains = 1;
      id_cache;
      cache_dir;
    }
  in
  let run o =
    let c = Circuit.copy base in
    let v0 =
      ( Obs.Counter.value hits_c,
        Obs.Counter.value npn_c,
        Obs.Counter.value disk_c,
        Obs.Counter.value miss_c )
    in
    let stats = Engine.optimize Engine.Gates o c in
    let h0, n0, d0, m0 = v0 in
    ( stats,
      Bench_format.to_string c,
      Obs.Counter.value hits_c - h0,
      Obs.Counter.value npn_c - n0,
      Obs.Counter.value disk_c - d0,
      Obs.Counter.value miss_c - m0 )
  in
  let s_off, n_off, _, _, _, _ = run (opts ~id_cache:false ~cache_dir:None) in
  let s_cold, n_cold, ch, cn, cd, cm =
    run (opts ~id_cache:true ~cache_dir:(Some store_dir))
  in
  let s_warm, n_warm, wh, wn, wd, wm =
    run (opts ~id_cache:true ~cache_dir:(Some store_dir))
  in
  let rate h n m =
    let total = h + n + m in
    if total = 0 then 0. else float_of_int (h + n) /. float_of_int total
  in
  let cold_rate = rate ch cn cm and warm_rate = rate wh wn wm in
  (* The raw-key layer alone would serve [wh] of the warm run's lookups;
     the NPN class layer must strictly improve on that. *)
  let identical = s_off = s_cold && s_off = s_warm && n_off = n_cold && n_off = n_warm in
  let row =
    {
      ic_circuit = "idc-large";
      ic_cold_hits = ch;
      ic_cold_npn_hits = cn;
      ic_cold_misses = cm;
      ic_warm_hits = wh;
      ic_warm_npn_hits = wn;
      ic_warm_disk_hits = wd;
      ic_warm_misses = wm;
      ic_cold_hit_rate = cold_rate;
      ic_warm_hit_rate = warm_rate;
      ic_identical = identical;
      ic_gate_ok =
        identical && wd > 0 && cn > 0 && wn > 0 && warm_rate >= cold_rate;
    }
  in
  json_idcache := row :: !json_idcache;
  ignore cd;
  Printf.printf "persistent identification cache on %s (%d two-input gates, store %s)\n"
    row.ic_circuit
    (Circuit.two_input_gate_count base)
    store_dir;
  Printf.printf "  cold   raw hits %8d   npn hits %6d   misses %8d   (hit rate %.1f%%)\n"
    ch cn cm (100. *. cold_rate);
  Printf.printf
    "  warm   raw hits %8d   npn hits %6d   misses %8d   (hit rate %.1f%%, disk hits %d)\n"
    wh wn wm (100. *. warm_rate) wd;
  Printf.printf "  identical results: %b (off vs cold vs warm)\n%!" identical

(* ------------------------------------------------------------------ *)
(* "Decision journal" section (DESIGN.md §16).                          *)
(* ------------------------------------------------------------------ *)

let journal () =
  Obs.enable ();
  let base =
    Circuit_gen.generate
      {
        Circuit_gen.name = "jr-large";
        n_pi = 200;
        n_po = 180;
        n_gates = (if !quick then 2600 else 5200);
        depth = 4;
        combine_pct = 1;
        xor_pct = 4;
        seed = 2424L;
      }
  in
  record_circuit "jr-large" base;
  let o =
    { (proc2_options 4) with Engine.max_candidates = 24; max_passes = 2; domains = 1 }
  in
  let run () =
    let c = Circuit.copy base in
    let t0 = wall () in
    let stats = Engine.optimize Engine.Gates o c in
    (stats, Bench_format.to_string c, max 0. (wall () -. t0))
  in
  (* One throwaway run warms the allocator and the engine's lazy state so
     the plain-vs-journaled wall comparison isn't dominated by first-run
     effects; each variant then keeps its best of two runs. *)
  ignore (run ());
  let s_plain, n_plain, ta = run () in
  let _, _, tb = run () in
  let t_plain = min ta tb in
  let path = Filename.temp_file "sft_bench" ".journal" in
  Obs.Journal.start ~cmd:"bench" path;
  let s_j, n_j, tc = run () in
  let _, _, td = run () in
  let t_j = min tc td in
  let w = Obs.Journal.finish () in
  let identical = s_plain = s_j && n_plain = n_j in
  let events, dropped, funnel_ok, funnel_line =
    match Run_report.load path with
    | Error msg ->
      Printf.printf "  journal failed to load: %s\n" msg;
      (0, 0, false, "")
    | Ok r ->
      let f = Run_report.funnel r in
      ( Run_report.events r,
        Run_report.dropped r,
        Run_report.funnel_ok r && not (Run_report.truncated r),
        Printf.sprintf "%d candidates -> %d identified -> %d verified -> %d committed"
          f.Run_report.candidates f.Run_report.identified f.Run_report.verified
          f.Run_report.committed )
  in
  Sys.remove path;
  let overhead =
    if t_plain > 0. then 100. *. ((t_j -. t_plain) /. t_plain) else 0.
  in
  let row =
    {
      jr_circuit = "jr-large";
      jr_events = events;
      jr_dropped = dropped;
      jr_plain_s = t_plain;
      jr_journal_s = t_j;
      jr_overhead_pct = overhead;
      jr_identical = identical;
      jr_funnel_ok = funnel_ok;
      jr_gate_ok = identical && funnel_ok && events > 0 && w.Obs.Journal.dropped = 0;
    }
  in
  json_journal := row :: !json_journal;
  Printf.printf "decision journal on %s (%d two-input gates)\n" row.jr_circuit
    (Circuit.two_input_gate_count base);
  Printf.printf "  plain    %7.3fs   journaled %7.3fs   (overhead %+.1f%%)\n"
    t_plain t_j overhead;
  Printf.printf "  events %d, dropped %d\n" events dropped;
  if funnel_line <> "" then Printf.printf "  funnel: %s (holds: %b)\n" funnel_line funnel_ok;
  Printf.printf "  identical results: %b (plain vs journaled)\n%!" identical

(* ------------------------------------------------------------------ *)
(* Machine-readable snapshot (--json FILE). Schema: DESIGN.md,          *)
(* "Parallel execution" section.                                        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json file =
  let b = Buffer.create 4096 in
  let item first s = (if not first then Buffer.add_string b ",\n"); Buffer.add_string b s in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema_version\": 2,\n";
  Buffer.add_string b "  \"generator\": \"sft bench harness\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if !quick then "quick" else "full"));
  Buffer.add_string b (Printf.sprintf "  \"domains\": %d,\n" !domains);
  (* Record the --only-circuits scope so a committed snapshot says which
     benchmarks it covers; null means the unrestricted circuit set. *)
  Buffer.add_string b
    (match !only_circuits with
    | [] -> "  \"only_circuits\": null,\n"
    | names ->
      Printf.sprintf "  \"only_circuits\": [%s],\n"
        (String.concat ", "
           (List.map (fun n -> Printf.sprintf "\"%s\"" (json_escape n)) names)));
  Buffer.add_string b
    (Printf.sprintf "  \"recommended_domains\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string b "  \"sections\": [\n";
  List.iteri
    (fun i (id, title, secs) ->
      item (i = 0)
        (Printf.sprintf "    {\"id\": \"%s\", \"title\": \"%s\", \"wall_seconds\": %.6f}"
           (json_escape id) (json_escape title) secs))
    (List.rev !json_sections);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"circuits\": [\n";
  List.iteri
    (fun i (name, pis, pos, gates2, paths) ->
      item (i = 0)
        (Printf.sprintf
           "    {\"name\": \"%s\", \"inputs\": %d, \"outputs\": %d, \"gates2\": %d, \
            \"paths\": %s}"
           (json_escape name) pis pos gates2
           (if paths < 0 then "null" else string_of_int paths)))
    (List.rev !json_circuits);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"speedups\": [\n";
  List.iteri
    (fun i r ->
      item (i = 0)
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"circuit\": \"%s\", \"domains\": %d, \
            \"serial_seconds\": %.6f, \"parallel_seconds\": %.6f, \"speedup\": %.4f, \
            \"identical_results\": %b}"
           (json_escape r.sp_kernel) (json_escape r.sp_circuit) r.sp_domains
           r.sp_serial r.sp_parallel
           (if r.sp_parallel > 0. then r.sp_serial /. r.sp_parallel else 0.)
           r.sp_identical))
    (List.rev !json_speedups);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      item (i = 0)
        (Printf.sprintf
           "    {\"kernel\": \"%s\", \"baseline_ns\": %.1f, \"accelerated_ns\": %.1f, \
            \"speedup\": %.4f, \"identical_results\": %b}"
           (json_escape r.kr_kernel) r.kr_baseline_ns r.kr_accel_ns
           (if r.kr_accel_ns > 0. then r.kr_baseline_ns /. r.kr_accel_ns else 0.)
           r.kr_identical))
    (List.rev !json_kernels);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"incremental\": [\n";
  List.iteri
    (fun i r ->
      item (i = 0)
        (Printf.sprintf
           "    {\"circuit\": \"%s\", \"domains\": %d, \"pass2_cuts_full\": %d, \
            \"pass2_cuts_incremental\": %d, \"reenum_fraction\": %.4f, \
            \"pass2_full_seconds\": %.6f, \"pass2_incremental_seconds\": %.6f, \
            \"speedup\": %.4f, \"identical_results\": %b, \"gate_ok\": %b}"
           (json_escape r.in_circuit) r.in_domains r.in_pass2_cuts_full
           r.in_pass2_cuts_incr r.in_reenum_fraction r.in_pass2_full_s
           r.in_pass2_incr_s r.in_speedup r.in_identical r.in_gate_ok))
    (List.rev !json_incremental);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"worklist\": [\n";
  List.iteri
    (fun i r ->
      item (i = 0)
        (Printf.sprintf
           "    {\"circuit\": \"%s\", \"domains\": %d, \
            \"pass2_full_seconds\": %.6f, \"pass2_scan_seconds\": %.6f, \
            \"pass2_worklist_seconds\": %.6f, \"speedup_vs_full\": %.4f, \
            \"speedup_vs_scan\": %.4f, \"worklist_popped\": %d, \
            \"total_roots\": %d, \"pop_fraction\": %.4f, \
            \"commit_waves\": %d, \"wave_coalesced\": %d, \
            \"conflict_edges\": %d, \"identical_results\": %b, \
            \"waves_gt_flushes\": %b, \"gate_ok\": %b}"
           (json_escape r.wl_circuit) r.wl_domains r.wl_pass2_full_s
           r.wl_pass2_scan_s r.wl_pass2_wl_s r.wl_speedup_vs_full
           r.wl_speedup_vs_scan r.wl_popped r.wl_total_roots r.wl_pop_fraction
           r.wl_commit_waves r.wl_wave_coalesced r.wl_conflict_edges
           r.wl_identical r.wl_waves_gt_flushes r.wl_gate_ok))
    (List.rev !json_worklist);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"idcache\": [\n";
  List.iteri
    (fun i r ->
      item (i = 0)
        (Printf.sprintf
           "    {\"circuit\": \"%s\", \"cold_hits\": %d, \"cold_npn_hits\": %d, \
            \"cold_misses\": %d, \"warm_hits\": %d, \"warm_npn_hits\": %d, \
            \"warm_disk_hits\": %d, \"warm_misses\": %d, \"cold_hit_rate\": %.4f, \
            \"warm_hit_rate\": %.4f, \"identical_results\": %b, \"gate_ok\": %b}"
           (json_escape r.ic_circuit) r.ic_cold_hits r.ic_cold_npn_hits
           r.ic_cold_misses r.ic_warm_hits r.ic_warm_npn_hits r.ic_warm_disk_hits
           r.ic_warm_misses r.ic_cold_hit_rate r.ic_warm_hit_rate r.ic_identical
           r.ic_gate_ok))
    (List.rev !json_idcache);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"cec\": [\n";
  List.iteri
    (fun i r ->
      item (i = 0)
        (Printf.sprintf
           "    {\"circuit\": \"%s\", \"pair\": \"%s\", \"verdict\": \"%s\", \
            \"outputs_solved\": %d, \"decisions\": %d, \"conflicts\": %d, \
            \"wall_seconds\": %.6f}"
           (json_escape r.cc_circuit) (json_escape r.cc_pair)
           (json_escape r.cc_verdict) r.cc_outputs r.cc_decisions r.cc_conflicts
           r.cc_seconds))
    (List.rev !json_cec);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"sat_atpg\": [\n";
  List.iteri
    (fun i r ->
      item (i = 0)
        (Printf.sprintf
           "    {\"circuit\": \"%s\", \"survivors\": %d, \"aborted_before\": %d, \
            \"sat_tests\": %d, \"sat_redundant\": %d, \"aborted_after\": %d, \
            \"conflict_budget\": %d, \"escalation_ok\": %b, \"wall_seconds\": %.6f}"
           (json_escape r.sa_circuit) r.sa_survivors r.sa_aborted_before
           r.sa_sat_tests r.sa_sat_redundant r.sa_aborted_after
           r.sa_conflict_budget r.sa_escalation_ok r.sa_seconds))
    (List.rev !json_sat_atpg);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"journal\": [\n";
  List.iteri
    (fun i r ->
      item (i = 0)
        (Printf.sprintf
           "    {\"circuit\": \"%s\", \"events\": %d, \"dropped\": %d, \
            \"plain_seconds\": %.6f, \"journal_seconds\": %.6f, \
            \"overhead_pct\": %.2f, \"funnel_ok\": %b, \
            \"identical_results\": %b, \"gate_ok\": %b}"
           (json_escape r.jr_circuit) r.jr_events r.jr_dropped r.jr_plain_s
           r.jr_journal_s r.jr_overhead_pct r.jr_funnel_ok r.jr_identical
           r.jr_gate_ok))
    (List.rev !json_journal);
  Buffer.add_string b "\n  ],\n";
  (* Schema v2: a summary of the event-tracing buffers, so a snapshot
     records whether its trace (if any) was complete or lossy. *)
  let ts = Obs.Trace.stats () in
  Buffer.add_string b
    (Printf.sprintf
       "  \"trace_events\": {\"enabled\": %b, \"rings\": %d, \"recorded\": %d, \
        \"dropped\": %d},\n"
       (Obs.Trace.enabled ()) ts.Obs.Trace.rings ts.Obs.Trace.recorded
       ts.Obs.Trace.dropped);
  (* The observability registry (counters, histograms, span trace) rides
     along in the snapshot; schema in DESIGN.md §9. *)
  Buffer.add_string b (Printf.sprintf "  \"metrics\": %s\n}\n" (Obs.Export.to_json ()));
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "\nwrote %s\n" file

let () =
  Printf.printf "sft bench harness (%s mode)\n" (if !quick then "quick" else "full");
  section "figures" "comparison-unit structures (Figures 1-6)" figures;
  section "table1" "robust test set of a comparison unit" table1;
  section "table2" "Procedure 2: gates and paths" table2;
  section "table3" "RAR baseline comparison" table3;
  section "table4" "technology mapping" table4;
  section "table5" "Procedure 3: path minimisation" table5;
  section "table6" "random-pattern stuck-at testability" table6;
  section "table7" "robust PDF random-pattern campaigns" table7;
  section "cec" "SAT equivalence proofs of the resynthesised circuits" cec;
  section "ablations" "design-choice ablations" ablations;
  section "micro" "Bechamel micro-benchmarks" micro;
  section "kernels" "word-parallel kernels vs scalar baselines" kernels;
  section "incremental" "incremental resynthesis vs full re-enumeration" incremental;
  section "worklist" "worklist walk + conflict-graph commit scheduling" worklist;
  section "idcache" "persistent identification cache: cold vs warm vs off" idcache;
  section "sat_atpg" "SAT escalation of PODEM-aborted faults" sat_atpg;
  section "journal" "decision journal: overhead and bit-identity" journal;
  (match !json_file with
  | None -> ()
  | Some file -> (
    try write_json file
    with Sys_error msg ->
      Printf.eprintf "error: could not write %s: %s\n" file msg;
      exit 1));
  (match !trace_out with
  | None -> ()
  | Some file -> (
    try
      Obs.Trace.write_file file;
      let s = Obs.Trace.stats () in
      Printf.printf "wrote %s (%d events, %d dropped)\n" file s.Obs.Trace.recorded
        s.Obs.Trace.dropped
    with Sys_error msg ->
      Printf.eprintf "error: could not write %s: %s\n" file msg;
      exit 1));
  if !trace then prerr_string (Obs.Export.trace_text ());
  match !metrics with
  | None -> ()
  | Some "text" -> print_string (Obs.Export.to_text ())
  | Some "json" -> print_endline (Obs.Export.to_json ())
  | Some path -> Obs.Export.write_file path
