#!/bin/sh
# Benchmark regression gate: run the deterministic micro section of the
# bench harness and diff its snapshot against the committed baseline
# (BENCH_results.json) with `sft bench-diff`.
#
# Only the gates/paths metrics are gated, at threshold 0: the micro
# circuits are generated from fixed seeds, so their sizes are exactly
# reproducible and any drift is a real behaviour change. Wall times and
# speedups are machine-dependent and deliberately not gated here — with
# a few exceptions: the `incremental` and `worklist` sections compare the
# engine against itself at identical domain counts, so their bit-identity
# flags (and the worklist section's pop-fraction, conflict-edge and
# wave-coalescing invariants) must hold on any machine and are gated via
# `gate_ok` and `waves_gt_flushes` below; the
# `idcache` section's `gate_ok` asserts the persistent identification
# cache's determinism contract (off = cold = warm bit-identity, warm-start
# disk hits, an NPN class layer that strictly improves on raw keys, and a
# warm hit rate at least the cold one — DESIGN.md §15); and the
# `sat_atpg` section's `escalation_ok` asserts that no PODEM-aborted
# fault stays undecided after SAT escalation (DESIGN.md §14), which is a
# determinism property, not a timing one; and the `journal` section's
# `gate_ok` asserts the decision journal's never-perturb contract
# (journaled run bit-identical to plain, funnel invariant holds, no
# dropped events — DESIGN.md §16). The journal contract is additionally
# exercised through the CLI below.
#
# Usage: scripts/check_regression.sh [BASELINE]
# Exit:  0 no regression, 1 regression, 2 incomparable snapshots.
set -eu

cd "$(dirname "$0")/.."

baseline=${1:-BENCH_results.json}
if [ ! -f "$baseline" ]; then
    echo "check_regression: baseline $baseline not found" >&2
    exit 2
fi

# The persistent identification store must never be committed: it is a
# machine-local, append-only artifact (DESIGN.md §15).
if [ -n "$(git ls-files data/cache 2>/dev/null)" ]; then
    echo "check_regression: data/cache artifacts are committed; remove them" >&2
    exit 1
fi
if ! grep -q '^data/cache/$' .gitignore 2>/dev/null; then
    echo "check_regression: .gitignore must exclude data/cache/" >&2
    exit 1
fi

dune build bin/sft_cli.exe bench/main.exe

tmp=$(mktemp -t bench-smoke.XXXXXX.json)
trap 'rm -f "$tmp"' EXIT INT TERM

echo "check_regression: bench smoke run (--quick --only micro,kernels,incremental,worklist,idcache,sat_atpg,journal)..."
dune exec --no-build bench/main.exe -- \
    --quick --only micro,kernels,incremental,worklist,idcache,sat_atpg,journal --domains 2 --json "$tmp" > /dev/null

# Incremental-resynthesis and idcache gates: dirty-region tracking must
# reproduce the full re-enumeration path bit-for-bit and not be slower
# than it; the persistent identification cache must land identical
# circuits off/cold/warm with warm-start disk hits and an NPN layer that
# pays for itself.
if grep -q '"identical_results": false' "$tmp"; then
    echo "check_regression: a bit-identity section diverged (incremental, worklist, idcache or journal)" >&2
    exit 1
fi
if grep -q '"gate_ok": false' "$tmp"; then
    echo "check_regression: a section gate failed (incremental speedup/skip, worklist pops/waves, idcache warm-start/NPN/hit-rate, or journal funnel/drops)" >&2
    exit 1
fi

# Worklist commit-scheduler gate (DESIGN.md §17): at least one commit wave
# must coalesce splices that the PR-6 flush-on-touch rule would have
# serialised — otherwise the conflict-graph scheduler is not actually
# batching and has silently degraded to per-touch flushing.
if grep -q '"waves_gt_flushes": false' "$tmp"; then
    echo "check_regression: worklist scheduler produced no coalesced commit wave" >&2
    exit 1
fi

# SAT ATPG gate: every PODEM-aborted fault must be settled (test found or
# redundancy proved) by the exact escalation pass.
if grep -q '"escalation_ok": false' "$tmp"; then
    echo "check_regression: sat_atpg escalation left faults undecided" >&2
    exit 1
fi

# CLI journal gate (DESIGN.md §16): a journaled multi-domain optimize run
# must land the same netlist as a plain one, and `sft report` must accept
# the journal (it exits 1 on a funnel violation) with funnel_ok in its
# JSON document.
echo "check_regression: CLI journal bit-identity and report funnel..."
jdir=$(mktemp -d -t journal-gate.XXXXXX)
trap 'rm -f "$tmp"; rm -rf "$jdir"' EXIT INT TERM
dune exec --no-build bin/sft_cli.exe -- optimize test/metrics_smoke.bench \
    --domains 2 -o "$jdir/plain.bench" > /dev/null
dune exec --no-build bin/sft_cli.exe -- optimize test/metrics_smoke.bench \
    --domains 2 --journal "$jdir/run.journal" -o "$jdir/journaled.bench" > /dev/null
if ! cmp -s "$jdir/plain.bench" "$jdir/journaled.bench"; then
    echo "check_regression: --journal perturbed the optimize result" >&2
    exit 1
fi
dune exec --no-build bin/sft_cli.exe -- report "$jdir/run.journal" --json \
    > "$jdir/report.json"
if ! grep -q '"funnel_ok":true' "$jdir/report.json"; then
    echo "check_regression: journal report funnel violated (committed <= verified <= identified <= candidates)" >&2
    exit 1
fi

dune exec --no-build bin/sft_cli.exe -- bench-diff "$baseline" "$tmp" \
    --metrics gates,paths --threshold 0
