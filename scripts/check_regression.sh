#!/bin/sh
# Benchmark regression gate: run the deterministic micro section of the
# bench harness and diff its snapshot against the committed baseline
# (BENCH_results.json) with `sft bench-diff`.
#
# Only the gates/paths metrics are gated, at threshold 0: the micro
# circuits are generated from fixed seeds, so their sizes are exactly
# reproducible and any drift is a real behaviour change. Wall times and
# speedups are machine-dependent and deliberately not gated here — with
# two exceptions: the `incremental` section compares the engine against
# itself at identical domain counts, so its speedup (and its bit-identity
# flag) must hold on any machine and is gated via `gate_ok` below; and
# the `sat_atpg` section's `escalation_ok` asserts that no PODEM-aborted
# fault stays undecided after SAT escalation (DESIGN.md §14), which is a
# determinism property, not a timing one.
#
# Usage: scripts/check_regression.sh [BASELINE]
# Exit:  0 no regression, 1 regression, 2 incomparable snapshots.
set -eu

cd "$(dirname "$0")/.."

baseline=${1:-BENCH_results.json}
if [ ! -f "$baseline" ]; then
    echo "check_regression: baseline $baseline not found" >&2
    exit 2
fi

dune build bin/sft_cli.exe bench/main.exe

tmp=$(mktemp -t bench-smoke.XXXXXX.json)
trap 'rm -f "$tmp"' EXIT INT TERM

echo "check_regression: bench smoke run (--quick --only micro,kernels,incremental,sat_atpg)..."
dune exec --no-build bench/main.exe -- \
    --quick --only micro,kernels,incremental,sat_atpg --domains 2 --json "$tmp" > /dev/null

# Incremental resynthesis gate: dirty-region tracking must reproduce the
# full re-enumeration path bit-for-bit and not be slower than it.
if grep -q '"identical_results": false' "$tmp"; then
    echo "check_regression: incremental engine diverged from full path" >&2
    exit 1
fi
if grep -q '"gate_ok": false' "$tmp"; then
    echo "check_regression: incremental section gate failed (speedup < 1 or no cuts skipped)" >&2
    exit 1
fi

# SAT ATPG gate: every PODEM-aborted fault must be settled (test found or
# redundancy proved) by the exact escalation pass.
if grep -q '"escalation_ok": false' "$tmp"; then
    echo "check_regression: sat_atpg escalation left faults undecided" >&2
    exit 1
fi

dune exec --no-build bin/sft_cli.exe -- bench-diff "$baseline" "$tmp" \
    --metrics gates,paths --threshold 0
