type objective =
  | Gates
  | Paths

type verify =
  [ `Off
  | `Sampled of int
  | `Full ]

type options = {
  k : int;
  max_candidates : int;
  engine : Comparison_fn.engine;
  merge : bool;
  verify_local : bool;
  verify_global : bool;
  max_passes : int;
  seed : int64;
  use_dontcares : bool;
  dc_backtracks : int;
  max_units : int;
  domains : int;
  obs : bool;
  verify : verify;
  inject_unsound : int;
  id_cache : bool;
}

let default_options =
  {
    k = 6;
    max_candidates = 64;
    engine = Comparison_fn.Exact;
    merge = true;
    verify_local = true;
    verify_global = false;
    max_passes = 16;
    seed = 1L;
    use_dontcares = false;
    dc_backtracks = 200;
    max_units = 1;
    domains = 0;
    obs = false;
    verify = `Sampled 8;
    inject_unsound = 0;
    id_cache = true;
  }

(* Observability probes. [cut_size_h] and [realised_c] fire inside worker
   evaluation — counters and histograms are atomic, so that is safe; spans
   stay on the orchestrating domain. *)
let candidates_c = Obs.Counter.make ~help:"subcircuit candidates enumerated" "engine.candidates"
let realised_c = Obs.Counter.make ~help:"candidates realised as units" "engine.realised"
let accepted_c = Obs.Counter.make ~help:"replacements spliced in" "engine.accepted"
let cut_size_h = Obs.Histogram.make ~help:"K-cut input counts" "engine.cut_size"

let verify_checks_c =
  Obs.Counter.make ~help:"whole-circuit CEC miter checks" "engine.verify_checks"

let verify_refused_c =
  Obs.Counter.make ~help:"replacements rolled back as unsound" "engine.verify_refused"

let verify_unknown_c =
  Obs.Counter.make ~help:"CEC checks hitting the conflict budget" "engine.verify_unknown"

let idcache_hits_c =
  Obs.Counter.make ~help:"identification verdicts served from the run cache" "idcache.hits"

let idcache_misses_c =
  Obs.Counter.make ~help:"identification verdicts computed and cached" "idcache.misses"

type stats = {
  passes : int;
  replacements : int;
  gates_before : int;
  gates_after : int;
  paths_before : int;
  paths_after : int;
  verify_checks : int;
  verify_refused : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d passes, %d replacements; gates %d -> %d; paths %d -> %d" s.passes
    s.replacements s.gates_before s.gates_after s.paths_before s.paths_after;
  if s.verify_checks > 0 then
    Format.fprintf ppf "; %d proved%s" s.verify_checks
      (if s.verify_refused > 0 then
         Printf.sprintf " (%d REFUSED as unsound)" s.verify_refused
       else "")

(* Paths on the root if the subcircuit is replaced by the unit:
   sum over inputs of N_p(input) * K_p(input). *)
let replaced_path_label labels (s : Subcircuit.t) (b : Comparison_unit.built) =
  let acc = ref 0 in
  Array.iteri
    (fun j input -> acc := !acc + (labels.(input) * b.Comparison_unit.input_paths.(j)))
    s.Subcircuit.inputs;
  !acc

type candidate = {
  sub : Subcircuit.t;
  built : Comparison_unit.built;
  gain : int;  (** removable 2-input gates minus unit 2-input gates *)
  new_paths : int;  (** path label on the root after replacement *)
  exact : bool;  (** false for don't-care replacements (care-set verified) *)
}

(* Build the replacement unit for a subcircuit, trying in order: a single
   comparison unit, a multi-unit cover (Sec. 6, issue 2), and a single unit
   under controllability don't-cares (Sec. 6, issue 1; each exploited
   disagreement is proved unreachable first). [identify] is the plain
   identification engine, possibly wrapped in the run cache by the caller;
   the don't-care and multi-unit fallbacks are rng-dependent and stay
   uncached. *)
let realise opts rng ~identify ~sim c sub tt =
  let n = Array.length sub.Subcircuit.inputs in
  let with_dontcares () =
    if not opts.use_dontcares then None
    else
      match sim with
      | None -> None
      | Some (cmp0, batches) -> (
        let seen = Dontcare.observed cmp0 batches sub.Subcircuit.inputs in
        let dc = Truthtable.lnot seen in
        if Truthtable.is_const dc = Some false then None
        else begin
          let care_on = Truthtable.land_ tt seen in
          match Comparison_fn.identify_dc rng ~care_on ~dc with
          | None -> None
          | Some spec ->
            let built = Comparison_unit.build ~merge:opts.merge ~n spec in
            let g = Eval.output_table built.Comparison_unit.circuit 0 in
            let diff = Truthtable.minterms (Truthtable.lxor_ g tt) in
            if diff = [] then Some (built, true)
            else if
              Dontcare.prove_unreachable ~backtrack_limit:opts.dc_backtracks c
                sub.Subcircuit.inputs diff
            then Some (built, false)
            else None
        end)
  in
  let with_multi () =
    if opts.max_units <= 1 then None
    else
      match Multi_unit.find ~max_units:opts.max_units rng tt with
      | Some cover -> Some (Multi_unit.build ~merge:opts.merge ~n cover, true)
      | None -> None
  in
  match identify tt with
  | Some spec -> Some (Comparison_unit.build ~merge:opts.merge ~n spec, true)
  | None -> (
    (* a don't-care single unit is usually cheaper than a multi-unit cover *)
    match with_dontcares () with
    | Some r -> Some r
    | None -> with_multi ())

(* Candidate evaluations must not share a mutable random stream when they
   run concurrently, so each candidate derives its own generator from the
   engine seed, the root and its enumeration index (splitmix64 finaliser).
   The serial path uses the same derivation, keeping [domains = 1] and
   [domains = n] runs identical. *)
let candidate_seed base root idx =
  let z =
    Int64.add
      (Int64.logxor base (Int64.mul (Int64.of_int root) 0x9E3779B97F4A7C15L))
      (Int64.of_int idx)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Enumeration stays serial; [realise] / truth-table extraction fan out
   across the pool. Results come back in enumeration order (deterministic
   ordered merge), so the fold over [better] below sees candidates in the
   same order as a serial run and tie-breaks identically.

   The identification cache is never written during scoring: every
   evaluation — worker or serial — looks up the frozen cache read-only and
   records its misses locally; the orchestrating domain merges them below
   once the whole batch is back. Deferring the serial merge too keeps
   hit/miss counts identical across [domains] settings. *)
let score_candidates ?pool ?cache opts ~sim labels c root =
  let subs =
    Array.of_list
      (Subcircuit.enumerate ~k:opts.k ~max_candidates:opts.max_candidates c root)
  in
  Obs.Counter.add candidates_c (Array.length subs);
  let eval scratch idx sub =
    let rng = Rng.create (candidate_seed opts.seed root idx) in
    Obs.Histogram.observe cut_size_h (Array.length sub.Subcircuit.inputs);
    let tt = Subcircuit.extract ~scratch c sub in
    let misses = ref [] in
    let identify tt =
      match cache with
      | None -> Comparison_fn.identify opts.engine rng tt
      | Some cache -> (
        match Comparison_fn.Cache.find cache tt with
        | Some verdict ->
          Obs.Counter.incr idcache_hits_c;
          verdict
        | None ->
          let verdict = Comparison_fn.identify opts.engine rng tt in
          Obs.Counter.incr idcache_misses_c;
          misses := (tt, verdict) :: !misses;
          verdict)
    in
    let cand =
      match realise opts rng ~identify ~sim c sub tt with
      | None -> None
      | Some (built, exact) ->
        Obs.Counter.incr realised_c;
        let gain = Subcircuit.removable_cost c sub - built.Comparison_unit.gates2 in
        let new_paths = replaced_path_label labels sub built in
        Some { sub; built; gain; new_paths; exact }
    in
    (cand, !misses)
  in
  let scored =
    match pool with
    | Some pool when Array.length subs > 1 ->
      (* Workers read the circuit concurrently; materialise the lazy
         fanout cache up front so they never race to build it. Each worker
         slot keeps its own extraction scratch for the batch. *)
      ignore (Circuit.fanouts c root);
      Pool.map_chunks pool ~chunk:1
        ~state:(fun _ -> Array.make (Circuit.size c) 0L)
        ~f:eval subs
    | _ ->
      let scratch = Array.make (Circuit.size c) 0L in
      Array.mapi (eval scratch) subs
  in
  (match cache with
  | None -> ()
  | Some cache ->
    Array.iter
      (fun (_, misses) ->
        List.iter
          (fun (tt, verdict) -> Comparison_fn.Cache.add cache tt verdict)
          (List.rev misses))
      scored);
  List.filter_map fst (Array.to_list scored)

(* Strictly-better-than ordering for the two objectives. [current_paths] is
   the Procedure-1 label on the root before replacement. *)
let better objective ~current_paths a b =
  match b with
  | None -> (
    (* is [a] an improvement over leaving the gate alone? *)
    match objective with
    | Gates -> a.gain > 0 || (a.gain = 0 && a.new_paths < current_paths)
    | Paths -> a.new_paths < current_paths)
  | Some b -> (
    match objective with
    | Gates -> a.gain > b.gain || (a.gain = b.gain && a.new_paths < b.new_paths)
    | Paths -> a.new_paths < b.new_paths)

(* Whole-circuit SAT verification of accepted replacements (DESIGN.md §10).
   [attempts] counts accepted splices across passes so a `Sampled cadence is
   per optimisation run, not per pass; the first acceptance is always
   proved. *)
type verify_state = {
  mutable attempts : int;
  mutable checks : int;
  mutable refused : int;
}

let should_verify (verify : verify) idx =
  match verify with
  | `Off -> false
  | `Full -> true
  | `Sampled n -> n > 0 && idx mod n = 0

(* Kind with the complemented function, for the [inject_unsound] test hook. *)
let inverted_kind = function
  | Gate.Buf -> Some Gate.Not
  | Gate.Not -> Some Gate.Buf
  | Gate.And -> Some Gate.Nand
  | Gate.Nand -> Some Gate.And
  | Gate.Or -> Some Gate.Nor
  | Gate.Nor -> Some Gate.Or
  | Gate.Xor -> Some Gate.Xnor
  | Gate.Xnor -> Some Gate.Xor
  | Gate.Input | Gate.Const0 | Gate.Const1 -> None

let is_gate c id =
  Circuit.is_alive c id
  &&
  match Circuit.kind c id with
  | Gate.Input | Gate.Const0 | Gate.Const1 -> false
  | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
  | Gate.Xnor -> true

let run_pass ?pool ?cache objective opts vstate c =
  let labels = Paths.labels c in
  let marked = Array.make (Circuit.size c) false in
  Array.iter (fun o -> if is_gate c o then marked.(o) <- true) (Circuit.outputs c);
  let order = Circuit.topo_order c in
  (* Simulation snapshot for don't-care analysis. Replacements only rewrite
     logic downstream of the gates still to be processed, so upstream node
     values stay valid for the whole pass. Compiling the circuit is pure
     overhead when don't-cares are off, so it only happens here. *)
  let sim =
    if opts.use_dontcares then begin
      let cmp0 = Compiled.of_circuit c in
      let sim_rng = Rng.create (Int64.logxor opts.seed 0x5FCAL) in
      let n_pi = Array.length (Compiled.inputs cmp0) in
      Some
        ( cmp0,
          Array.init 32 (fun _ ->
              Compiled.simulate cmp0 (Array.init n_pi (fun _ -> Rng.next64 sim_rng))) )
    end
    else None
  in
  let replacements = ref 0 in
  (* Outputs towards inputs: descending topological positions. The paper's
     line numbering is BFS from the inputs; descending topological order
     visits every line after all lines it feeds, which is what Step 2 needs. *)
  for i = Array.length order - 1 downto 0 do
    let g = order.(i) in
    if is_gate c g && marked.(g) then begin
      let chosen =
        List.fold_left
          (fun best cand ->
            if better objective ~current_paths:labels.(g) cand best then Some cand
            else best)
          None
          (score_candidates ?pool ?cache opts ~sim labels c g)
      in
      match chosen with
      | Some cand ->
        (* Don't-care replacements intentionally differ from the subcircuit
           function on proved-unreachable combinations, so the exhaustive
           local check only applies to exact ones. *)
        let verify_local = opts.verify_local && cand.exact in
        let idx = vstate.attempts in
        vstate.attempts <- idx + 1;
        let snapshot =
          if should_verify opts.verify idx then Some (Circuit.copy c) else None
        in
        let fresh = Replace.splice ~verify_local c cand.sub cand.built in
        (if opts.inject_unsound = idx + 1 then
           match inverted_kind (Circuit.kind c fresh) with
           | Some k -> Circuit.set_kind c fresh k
           | None -> ());
        let sound =
          match snapshot with
          | None -> true
          | Some before -> (
            vstate.checks <- vstate.checks + 1;
            Obs.Counter.incr verify_checks_c;
            match Cec.check ?pool before c with
            | Cec.Equivalent -> true
            | Cec.Unknown _ ->
              (* Budget exhausted is not evidence of unsoundness: the local
                 checks already passed, so the replacement stands. *)
              Obs.Counter.incr verify_unknown_c;
              true
            | Cec.Counterexample _ ->
              Circuit.overwrite c ~with_:before;
              vstate.refused <- vstate.refused + 1;
              Obs.Counter.incr verify_refused_c;
              Obs.Trace.instant ~cat:"engine" "engine.verify_refused";
              false)
        in
        if sound then begin
          incr replacements;
          Obs.Counter.incr accepted_c;
          Obs.Trace.instant ~cat:"engine" "engine.accepted";
          Array.iter
            (fun input -> if is_gate c input then marked.(input) <- true)
            cand.sub.Subcircuit.inputs
        end
        else
          (* Unsound rewrite refused: the splice was rolled back, so [g] is
             intact — continue as if no candidate had improved on it. *)
          Array.iter
            (fun input -> if is_gate c input then marked.(input) <- true)
            (Circuit.fanins c g)
      | None ->
        Array.iter
          (fun input -> if is_gate c input then marked.(input) <- true)
          (Circuit.fanins c g)
    end
  done;
  !replacements

let optimize_with ?pool objective opts c =
  let reference = if opts.verify_global then Some (Circuit.copy c) else None in
  let gates_before = Circuit.two_input_gate_count c in
  let paths_before = Paths.total c in
  (* One identification cache per run, shared across candidates, roots and
     passes. Only the exact engine's verdicts are cacheable: the sampled
     engine consumes the per-candidate random stream, so replaying a cached
     verdict would change results between cache-on and cache-off runs. *)
  let cache =
    match opts.engine with
    | Comparison_fn.Exact when opts.id_cache -> Some (Comparison_fn.Cache.create ())
    | Comparison_fn.Exact | Comparison_fn.Sampled _ -> None
  in
  let passes = ref 0 in
  let replacements = ref 0 in
  let vstate = { attempts = 0; checks = 0; refused = 0 } in
  let continue = ref true in
  while !continue && !passes < opts.max_passes do
    incr passes;
    let r =
      Obs.Span.with_ "engine.pass" (fun () ->
          run_pass ?pool ?cache objective opts vstate c)
    in
    replacements := !replacements + r;
    (match reference with
    | Some reference ->
      if not (Eval.equivalent_random ~patterns:2048 ~seed:opts.seed reference c)
      then failwith "Engine.optimize: pass broke circuit equivalence"
    | None -> ());
    if r = 0 then continue := false
  done;
  {
    passes = !passes;
    replacements = !replacements;
    gates_before;
    gates_after = Circuit.two_input_gate_count c;
    paths_before;
    paths_after = Paths.total c;
    verify_checks = vstate.checks;
    verify_refused = vstate.refused;
  }

let optimize objective opts c =
  if opts.obs then Obs.enable ();
  let domains = Pool.domains_of_flag opts.domains in
  if domains <= 1 then optimize_with objective opts c
  else
    Pool.with_pool ~domains (fun pool -> optimize_with ~pool objective opts c)
