type objective =
  | Gates
  | Paths

type verify =
  [ `Off
  | `Sampled of int
  | `Full ]

type options = {
  k : int;
  max_candidates : int;
  engine : Comparison_fn.engine;
  merge : bool;
  verify_local : bool;
  verify_global : bool;
  max_passes : int;
  seed : int64;
  use_dontcares : bool;
  dc_backtracks : int;
  max_units : int;
  domains : int;
  obs : bool;
  verify : verify;
  inject_unsound : int;
  id_cache : bool;
  cache_dir : string option;
  incremental : bool;
  commit_batch : int;
}

let default_options =
  {
    k = 6;
    max_candidates = 64;
    engine = Comparison_fn.Exact;
    merge = true;
    verify_local = true;
    verify_global = false;
    max_passes = 16;
    seed = 1L;
    use_dontcares = false;
    dc_backtracks = 200;
    max_units = 1;
    domains = 0;
    obs = false;
    verify = `Sampled 8;
    inject_unsound = 0;
    id_cache = true;
    cache_dir = None;
    incremental = true;
    commit_batch = 8;
  }

(* Observability probes. [cut_size_h] and [realised_c] fire inside worker
   evaluation — counters and histograms are atomic, so that is safe; spans
   stay on the orchestrating domain. *)
let candidates_c = Obs.Counter.make ~help:"subcircuit candidates enumerated" "engine.candidates"
let realised_c = Obs.Counter.make ~help:"candidates realised as units" "engine.realised"
let accepted_c = Obs.Counter.make ~help:"replacements spliced in" "engine.accepted"
let cut_size_h = Obs.Histogram.make ~help:"K-cut input counts" "engine.cut_size"

let verify_checks_c =
  Obs.Counter.make ~help:"whole-circuit CEC miter checks" "engine.verify_checks"

let verify_refused_c =
  Obs.Counter.make ~help:"replacements rolled back as unsound" "engine.verify_refused"

let verify_unknown_c =
  Obs.Counter.make ~help:"CEC checks hitting the conflict budget" "engine.verify_unknown"

let dirty_regions_c =
  Obs.Counter.make ~help:"splice footprints marked dirty" "engine.dirty_regions"

let dirty_nodes_h =
  Obs.Histogram.make ~help:"nodes newly dirtied per splice footprint" "engine.dirty_nodes"

let reenum_skipped_c =
  Obs.Counter.make ~help:"clean roots skipped without re-enumeration" "engine.reenum_skipped"

let concurrent_commits_c =
  Obs.Counter.make ~help:"splices landed through a multi-splice commit flush"
    "engine.concurrent_commits"

type stats = {
  passes : int;
  replacements : int;
  gates_before : int;
  gates_after : int;
  paths_before : int;
  paths_after : int;
  verify_checks : int;
  verify_refused : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d passes, %d replacements; gates %d -> %d; paths %d -> %d" s.passes
    s.replacements s.gates_before s.gates_after s.paths_before s.paths_after;
  if s.verify_checks > 0 then
    Format.fprintf ppf "; %d proved%s" s.verify_checks
      (if s.verify_refused > 0 then
         Printf.sprintf " (%d REFUSED as unsound)" s.verify_refused
       else "")

(* Paths on the root if the subcircuit is replaced by the unit:
   sum over inputs of N_p(input) * K_p(input). *)
let replaced_path_label labels (s : Subcircuit.t) (b : Comparison_unit.built) =
  let acc = ref 0 in
  Array.iteri
    (fun j input -> acc := !acc + (labels.(input) * b.Comparison_unit.input_paths.(j)))
    s.Subcircuit.inputs;
  !acc

type candidate = {
  sub : Subcircuit.t;
  built : Comparison_unit.built;
  gain : int;  (** removable 2-input gates minus unit 2-input gates *)
  new_paths : int;  (** path label on the root after replacement *)
  exact : bool;  (** false for don't-care replacements (care-set verified) *)
}

(* Build the replacement unit for a subcircuit, trying in order: a single
   comparison unit, a multi-unit cover (Sec. 6, issue 2), and a single unit
   under controllability don't-cares (Sec. 6, issue 1; each exploited
   disagreement is proved unreachable first). [identify] is the plain
   identification engine, possibly wrapped in the run cache by the caller;
   the don't-care and multi-unit fallbacks are rng-dependent and stay
   uncached. *)
let realise opts rng ~identify ~sim c sub tt =
  let n = Array.length sub.Subcircuit.inputs in
  let with_dontcares () =
    if not opts.use_dontcares then None
    else
      match sim with
      | None -> None
      | Some (cmp0, batches) -> (
        let seen = Dontcare.observed cmp0 batches sub.Subcircuit.inputs in
        let dc = Truthtable.lnot seen in
        if Truthtable.is_const dc = Some false then None
        else begin
          let care_on = Truthtable.land_ tt seen in
          match Comparison_fn.identify_dc rng ~care_on ~dc with
          | None -> None
          | Some spec ->
            let built = Comparison_unit.build ~merge:opts.merge ~n spec in
            let g = Eval.output_table built.Comparison_unit.circuit 0 in
            let diff = Truthtable.minterms (Truthtable.lxor_ g tt) in
            if diff = [] then Some (built, true)
            else if
              Dontcare.prove_unreachable ~backtrack_limit:opts.dc_backtracks c
                sub.Subcircuit.inputs diff
            then Some (built, false)
            else None
        end)
  in
  let with_multi () =
    if opts.max_units <= 1 then None
    else
      match Multi_unit.find ~max_units:opts.max_units rng tt with
      | Some cover -> Some (Multi_unit.build ~merge:opts.merge ~n cover, true)
      | None -> None
  in
  match identify tt with
  | Some spec -> Some (Comparison_unit.build ~merge:opts.merge ~n spec, true)
  | None -> (
    (* a don't-care single unit is usually cheaper than a multi-unit cover *)
    match with_dontcares () with
    | Some r -> Some r
    | None -> with_multi ())

(* Candidate evaluations must not share a mutable random stream when they
   run concurrently, so each candidate derives its own generator from the
   engine seed, the root and its enumeration index (splitmix64 finaliser).
   The serial path uses the same derivation, keeping [domains = 1] and
   [domains = n] runs identical. *)
let candidate_seed base root idx =
  let z =
    Int64.add
      (Int64.logxor base (Int64.mul (Int64.of_int root) 0x9E3779B97F4A7C15L))
      (Int64.of_int idx)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Per-run scratch threaded through every pass: the persistent dirty set of
   the incremental walk, the reusable enumeration dedup table, and the
   serial extraction buffer. All three survive circuit growth — the dirty
   set grows on demand, the dedup table is cleared per root, and the
   scratch buffer is re-allocated when the circuit outgrows it. *)
type run_state = {
  dirty : Footprint.set;
  dedup : Subcircuit.dedup;
  mutable scratch : int64 array;
}

let make_run_state c =
  {
    dirty = Footprint.create ~all:true (Circuit.size c);
    dedup = Subcircuit.dedup ();
    scratch = [||];
  }

(* Below this many candidates a pooled scoring batch runs inline on the
   calling domain: publishing a job and waking the workers costs more than
   scoring a handful of cuts (the source of the sub-1.0x pooled "speedups"
   on small circuits). Scheduling-only — results are unchanged. *)
let score_serial_cutoff = 48

(* Enumeration stays serial; [realise] / truth-table extraction fan out
   across the pool. Results come back in enumeration order (deterministic
   ordered merge), so the fold over [better] below sees candidates in the
   same order as a serial run and tie-breaks identically.

   The identification cache is never written during scoring: every
   evaluation — worker or serial — looks up the frozen cache read-only and
   records its misses locally; the orchestrating domain merges them below
   once the whole batch is back. Deferring the serial merge too keeps
   hit/miss counts identical across [domains] settings. *)
let score_candidates ?pool ?cache ~st opts ~sim labels c root =
  let subs =
    Array.of_list
      (Subcircuit.enumerate ~dedup:st.dedup ~k:opts.k
         ~max_candidates:opts.max_candidates c root)
  in
  Obs.Counter.add candidates_c (Array.length subs);
  let eval scratch idx sub =
    let rng = Rng.create (candidate_seed opts.seed root idx) in
    Obs.Histogram.observe cut_size_h (Array.length sub.Subcircuit.inputs);
    let tt = Subcircuit.extract ~scratch c sub in
    let misses = ref [] in
    let identify tt =
      match cache with
      | None -> Comparison_fn.identify opts.engine rng tt
      | Some cache -> (
        match Idcache.find cache tt with
        | Idcache.Hit verdict -> verdict
        | Idcache.Neg_hit -> None
        | Idcache.Miss m ->
          let verdict = Comparison_fn.identify opts.engine rng tt in
          misses := (m, verdict) :: !misses;
          verdict)
    in
    let cand =
      match realise opts rng ~identify ~sim c sub tt with
      | None -> None
      | Some (built, exact) ->
        Obs.Counter.incr realised_c;
        let gain = Subcircuit.removable_cost c sub - built.Comparison_unit.gates2 in
        let new_paths = replaced_path_label labels sub built in
        Some { sub; built; gain; new_paths; exact }
    in
    (cand, !misses)
  in
  let scored =
    match pool with
    | Some pool when Array.length subs > 1 ->
      (* Workers read the circuit concurrently; materialise the lazy
         fanout cache up front so they never race to build it. Each worker
         slot keeps its own extraction scratch for the batch. *)
      ignore (Circuit.fanouts c root);
      Pool.map_chunks pool ~chunk:1 ~serial_below:score_serial_cutoff
        ~state:(fun _ -> Array.make (Circuit.size c) 0L)
        ~f:eval subs
    | _ ->
      if Array.length st.scratch < Circuit.size c then
        st.scratch <- Array.make (Circuit.size c) 0L;
      Array.mapi (eval st.scratch) subs
  in
  (match cache with
  | None -> ()
  | Some cache ->
    Array.iter
      (fun (_, misses) ->
        List.iter
          (fun (m, verdict) -> Idcache.record cache m verdict)
          (List.rev misses))
      scored);
  List.filter_map fst (Array.to_list scored)

(* Strictly-better-than ordering for the two objectives. [current_paths] is
   the Procedure-1 label on the root before replacement. *)
let better objective ~current_paths a b =
  match b with
  | None -> (
    (* is [a] an improvement over leaving the gate alone? *)
    match objective with
    | Gates -> a.gain > 0 || (a.gain = 0 && a.new_paths < current_paths)
    | Paths -> a.new_paths < current_paths)
  | Some b -> (
    match objective with
    | Gates -> a.gain > b.gain || (a.gain = b.gain && a.new_paths < b.new_paths)
    | Paths -> a.new_paths < b.new_paths)

(* Whole-circuit SAT verification of accepted replacements (DESIGN.md §10).
   [attempts] counts accepted splices across passes so a `Sampled cadence is
   per optimisation run, not per pass; the first acceptance is always
   proved. *)
type verify_state = {
  mutable attempts : int;
  mutable checks : int;
  mutable refused : int;
}

let should_verify (verify : verify) idx =
  match verify with
  | `Off -> false
  | `Full -> true
  | `Sampled n -> n > 0 && idx mod n = 0

(* Kind with the complemented function, for the [inject_unsound] test hook. *)
let inverted_kind = function
  | Gate.Buf -> Some Gate.Not
  | Gate.Not -> Some Gate.Buf
  | Gate.And -> Some Gate.Nand
  | Gate.Nand -> Some Gate.And
  | Gate.Or -> Some Gate.Nor
  | Gate.Nor -> Some Gate.Or
  | Gate.Xor -> Some Gate.Xnor
  | Gate.Xnor -> Some Gate.Xor
  | Gate.Input | Gate.Const0 | Gate.Const1 -> None

let is_gate c id =
  Circuit.is_alive c id
  &&
  match Circuit.kind c id with
  | Gate.Input | Gate.Const0 | Gate.Const1 -> false
  | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
  | Gate.Xnor -> true

(* A splice decision not yet applied to the netlist (incremental mode with
   [commit_batch > 1]): the winning candidate, its root, and the
   accepted-splice index it drew — the index drives verification sampling
   and the [inject_unsound] hook, so it is fixed at decision time and
   replayed at flush. *)
type pending = {
  p_root : int;
  p_cand : candidate;
  p_idx : int;
}

let run_pass ?pool ?cache objective opts vstate st c =
  let labels = Paths.labels c in
  let marked = Array.make (Circuit.size c) false in
  Array.iter (fun o -> if is_gate c o then marked.(o) <- true) (Circuit.outputs c);
  let order = Circuit.topo_order c in
  (* Simulation snapshot for don't-care analysis. Replacements only rewrite
     logic downstream of the gates still to be processed, so upstream node
     values stay valid for the whole pass. Compiling the circuit is pure
     overhead when don't-cares are off, so it only happens here. *)
  let sim =
    if opts.use_dontcares then begin
      let cmp0 = Compiled.of_circuit c in
      let sim_rng = Rng.create (Int64.logxor opts.seed 0x5FCAL) in
      let n_pi = Array.length (Compiled.inputs cmp0) in
      Some
        ( cmp0,
          Array.init 32 (fun _ ->
              Compiled.simulate cmp0 (Array.init n_pi (fun _ -> Rng.next64 sim_rng))) )
    end
    else None
  in
  let replacements = ref 0 in
  let incremental = opts.incremental in
  (* Deferred commits need the footprint machinery for their flush-on-touch
     rule, so [--no-incremental] also forces immediate serial splices: that
     is exactly the pre-incremental engine. *)
  let batch = if incremental then max 1 opts.commit_batch else 1 in
  let pending = ref [] (* newest first; flushed in decision order *) in
  let npending = ref 0 in
  (* Fanout closure of every deferred footprint: evaluating any root inside
     it could observe a not-yet-applied splice, so it forces a flush. Reset
     whenever the queue drains. *)
  let pending_dirty = ref (Footprint.create 1) in
  (* Pre-splice footprint of a decided candidate: its cut inputs (whose
     fanout sets change), its member gates (which die), and everything
     downstream of either. Marked before the splice mutates the netlist,
     while the members' fanout edges still exist. *)
  let footprint_seeds cand =
    Array.fold_left
      (fun acc input -> input :: acc)
      cand.sub.Subcircuit.gates cand.sub.Subcircuit.inputs
  in
  let mark_decision cand =
    let seeds = footprint_seeds cand in
    Obs.Counter.incr dirty_regions_c;
    Obs.Histogram.observe dirty_nodes_h
      (Footprint.mark_fanout_cone c st.dirty seeds);
    if batch > 1 then ignore (Footprint.mark_fanout_cone c !pending_dirty seeds)
  in
  (* Nodes the splice imported (ids allocated past [since]) and their fanout
     cones: dirty so the next pass re-evaluates the rebuilt region. *)
  let mark_fresh since =
    let seeds = ref [] in
    for id = Circuit.size c - 1 downto since do
      if Circuit.is_alive c id then seeds := id :: !seeds
    done;
    ignore (Footprint.mark_fanout_cone c st.dirty !seeds)
  in
  (* The sweep inside [Replace.splice] cascades upstream past the cut: a cut
     input left without consumers dies, then its fanins lose a consumer, and
     so on. Survivors on that boundary change fanout degree — which
     [Subcircuit.removable_gates] reads — so every root downstream of them
     must be re-evaluated, and the decision-time footprint (cut inputs +
     members) does not reach them. [pre_alive]/[pre_fanins] snapshot the
     graph before the splice; afterwards the live former fanins of every
     swept node seed a fanout-cone marking on the new graph. *)
  let snapshot_fanins () =
    Array.init (Circuit.size c) (fun id ->
        if Circuit.is_alive c id then Array.copy (Circuit.fanins c id)
        else [||])
  in
  let mark_swept_boundary pre_fanins =
    let seeds = ref [] in
    Array.iteri
      (fun id fins ->
        if Array.length fins > 0 && not (Circuit.is_alive c id) then
          Array.iter
            (fun f -> if Circuit.is_alive c f then seeds := f :: !seeds)
            fins)
      pre_fanins;
    ignore (Footprint.mark_fanout_cone c st.dirty !seeds)
  in
  (* Apply one decided splice. [pre_verified] means a concurrent flush
     already ran the exhaustive local check. Returns false if the CEC miter
     refused the replacement and rolled it back. *)
  let commit_one ~pre_verified p =
    let cand = p.p_cand in
    (* Don't-care replacements intentionally differ from the subcircuit
       function on proved-unreachable combinations, so the exhaustive
       local check only applies to exact ones. *)
    let verify_local = opts.verify_local && cand.exact && not pre_verified in
    let snapshot =
      if should_verify opts.verify p.p_idx then Some (Circuit.copy c) else None
    in
    let since = Circuit.size c in
    let pre_fanins = if incremental then Some (snapshot_fanins ()) else None in
    let fresh = Replace.splice ~verify_local c cand.sub cand.built in
    (if opts.inject_unsound = p.p_idx + 1 then
       match inverted_kind (Circuit.kind c fresh) with
       | Some k -> Circuit.set_kind c fresh k
       | None -> ());
    let sound =
      match snapshot with
      | None -> true
      | Some before -> (
        vstate.checks <- vstate.checks + 1;
        Obs.Counter.incr verify_checks_c;
        match Cec.check ?pool before c with
        | Cec.Equivalent -> true
        | Cec.Unknown _ ->
          (* Budget exhausted is not evidence of unsoundness: the local
             checks already passed, so the replacement stands. *)
          Obs.Counter.incr verify_unknown_c;
          if Obs.Journal.enabled () then
            Obs.Journal.emit "cec_unknown"
              [
                ("root", Obs_json.Int p.p_root); ("idx", Obs_json.Int p.p_idx);
              ];
          true
        | Cec.Counterexample _ ->
          Circuit.overwrite c ~with_:before;
          vstate.refused <- vstate.refused + 1;
          Obs.Counter.incr verify_refused_c;
          Obs.Trace.instant ~cat:"engine" "engine.verify_refused";
          if Obs.Journal.enabled () then
            Obs.Journal.emit "splice_rollback"
              [
                ("root", Obs_json.Int p.p_root);
                ("idx", Obs_json.Int p.p_idx);
                ("reason", Obs_json.String "cec_counterexample");
              ];
          false)
    in
    if sound then begin
      incr replacements;
      Obs.Counter.incr accepted_c;
      Obs.Trace.instant ~cat:"engine" "engine.accepted";
      if Obs.Journal.enabled () then
        Obs.Journal.emit "splice_accept"
          [
            ("root", Obs_json.Int p.p_root);
            ("idx", Obs_json.Int p.p_idx);
            ("gain", Obs_json.Int cand.gain);
            ("new_paths", Obs_json.Int cand.new_paths);
            ("cut", Obs_json.Int (Array.length cand.sub.Subcircuit.inputs));
            ("exact", Obs_json.Bool cand.exact);
          ];
      if incremental then begin
        mark_fresh since;
        Option.iter mark_swept_boundary pre_fanins
      end
    end;
    sound
  in
  (* Land the deferred queue. The read-only half — the exhaustive local
     check of each pending replacement — touches only its own cone, pairwise
     footprint-disjoint by the flush-on-touch rule, so it fans out across
     the pool before any graph mutation. The mutating half stays serial in
     decision order: that fixed tie-break is what keeps batched commits
     bit-identical to immediate ones. *)
  let flush () =
    if !npending > 0 then begin
      let ps = Array.of_list (List.rev !pending) in
      pending := [];
      npending := 0;
      pending_dirty := Footprint.create (Circuit.size c);
      Obs.Span.with_ "engine.commit_flush" (fun () ->
          let m = Array.length ps in
          if Obs.Journal.enabled () then
            Obs.Journal.emit "commit_flush" [ ("batch", Obs_json.Int m) ];
          let pre_verified =
            match pool with
            | Some pool when m > 1 && opts.verify_local ->
              let ok =
                Pool.map pool ~chunk:1
                  (fun p ->
                    (not p.p_cand.exact)
                    || Replace.implements c p.p_cand.sub p.p_cand.built)
                  ps
              in
              Array.iter (fun o -> if not o then Replace.reject ()) ok;
              true
            | _ -> false
          in
          Array.iter
            (fun p ->
              if commit_one ~pre_verified p then begin
                if m > 1 then Obs.Counter.incr concurrent_commits_c
              end
              else begin
                (* Refused and rolled back: the root survives with its old
                   structure, but the walk is already past it — schedule it
                   and its fanins for the next pass instead. *)
                Footprint.add st.dirty p.p_root;
                Array.iter
                  (fun f -> if is_gate c f then Footprint.add st.dirty f)
                  (Circuit.fanins c p.p_root)
              end)
            ps)
    end
  in
  (* Outputs towards inputs: descending topological positions. The paper's
     line numbering is BFS from the inputs; descending topological order
     visits every line after all lines it feeds, which is what Step 2 needs. *)
  for i = Array.length order - 1 downto 0 do
    let g = order.(i) in
    if is_gate c g && marked.(g) then begin
      let mark_fanins_of g =
        Array.iter
          (fun input -> if is_gate c input then marked.(input) <- true)
          (Circuit.fanins c g)
      in
      if incremental && not (Footprint.mem st.dirty g) then begin
        (* Clean root: nothing its enumeration, scoring or don't-care
           analysis reads has changed since it was last evaluated (and
           rejected), so re-evaluation would reproduce that rejection
           bit-exactly. Keep the walk moving and skip the work. *)
        Obs.Counter.incr reenum_skipped_c;
        mark_fanins_of g
      end
      else begin
        (* About to read [g]'s region: any deferred splice whose footprint
           reaches [g] must land first so the evaluation observes it. The
           flush may splice [g] itself away (members of a deferred cone lie
           upstream, still ahead of the walk) — the immediate-mode walk
           would equally have found it dead, so just skip it then. *)
        if !npending > 0 && Footprint.mem !pending_dirty g then flush ();
        if is_gate c g then begin
          if incremental then Footprint.remove st.dirty g;
          let chosen =
            List.fold_left
              (fun best cand ->
                if better objective ~current_paths:labels.(g) cand best then
                  Some cand
                else best)
              None
              (score_candidates ?pool ?cache ~st opts ~sim labels c g)
          in
          match chosen with
          | Some cand ->
            let idx = vstate.attempts in
            vstate.attempts <- idx + 1;
            let p = { p_root = g; p_cand = cand; p_idx = idx } in
            if incremental then mark_decision cand;
            if batch > 1 then begin
              (* Defer the splice; treat it as accepted for the walk. A
                 flush refusal cannot retract these marks — it reschedules
                 the root for the next pass instead (see [flush]). *)
              pending := p :: !pending;
              incr npending;
              Array.iter
                (fun input -> if is_gate c input then marked.(input) <- true)
                cand.sub.Subcircuit.inputs;
              if !npending >= batch then flush ()
            end
            else if commit_one ~pre_verified:false p then
              Array.iter
                (fun input -> if is_gate c input then marked.(input) <- true)
                cand.sub.Subcircuit.inputs
            else
              (* Unsound rewrite refused: the splice was rolled back, so
                 [g] is intact — continue as if no candidate had improved
                 on it. *)
              mark_fanins_of g
          | None -> mark_fanins_of g
        end
      end
    end
  done;
  flush ();
  !replacements

let optimize_with ?pool objective opts c =
  let reference = if opts.verify_global then Some (Circuit.copy c) else None in
  let gates_before = Circuit.two_input_gate_count c in
  let paths_before = Paths.total c in
  (* One identification cache per run, shared across candidates, roots and
     passes — and, when [cache_dir] is set, warm-started from (and flushed
     back to) the disk store so later runs and concurrent processes share
     verdicts. Only the exact engine's verdicts are cacheable: the sampled
     engine consumes the per-candidate random stream, so replaying a cached
     verdict would change results between cache-on and cache-off runs. *)
  let cache =
    match opts.engine with
    | Comparison_fn.Exact when opts.id_cache ->
      Some (Idcache.create ?dir:opts.cache_dir ())
    | Comparison_fn.Exact | Comparison_fn.Sampled _ -> None
  in
  let passes = ref 0 in
  let replacements = ref 0 in
  let vstate = { attempts = 0; checks = 0; refused = 0 } in
  (* The dirty set starts all-true (first pass looks at everything) and
     persists across passes: a pass only re-evaluates roots whose region
     some earlier splice touched. *)
  let st = make_run_state c in
  let continue = ref true in
  while !continue && !passes < opts.max_passes do
    incr passes;
    let r =
      Obs.Span.with_ "engine.pass" (fun () ->
          run_pass ?pool ?cache objective opts vstate st c)
    in
    replacements := !replacements + r;
    (match reference with
    | Some reference ->
      if not (Eval.equivalent_random ~patterns:2048 ~seed:opts.seed reference c)
      then failwith "Engine.optimize: pass broke circuit equivalence"
    | None -> ());
    if r = 0 then continue := false
  done;
  (* Per-class hit accounting + disk flush; serial, after the last batch
     merged, so the frozen-read discipline is respected. *)
  Option.iter Idcache.finish cache;
  {
    passes = !passes;
    replacements = !replacements;
    gates_before;
    gates_after = Circuit.two_input_gate_count c;
    paths_before;
    paths_after = Paths.total c;
    verify_checks = vstate.checks;
    verify_refused = vstate.refused;
  }

let optimize objective opts c =
  if opts.obs then Obs.enable ();
  let domains = Pool.domains_of_flag opts.domains in
  if domains <= 1 then optimize_with objective opts c
  else
    Pool.with_pool ~domains (fun pool -> optimize_with ~pool objective opts c)
