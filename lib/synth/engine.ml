type objective =
  | Gates
  | Paths

type verify =
  [ `Off
  | `Sampled of int
  | `Full ]

type scheduler =
  | Flush
  | Graph

type options = {
  k : int;
  max_candidates : int;
  engine : Comparison_fn.engine;
  merge : bool;
  verify_local : bool;
  verify_global : bool;
  max_passes : int;
  seed : int64;
  use_dontcares : bool;
  dc_backtracks : int;
  max_units : int;
  domains : int;
  obs : bool;
  verify : verify;
  inject_unsound : int;
  id_cache : bool;
  cache_dir : string option;
  incremental : bool;
  commit_batch : int;
  worklist : bool;
  scheduler : scheduler;
}

let default_options =
  {
    k = 6;
    max_candidates = 64;
    engine = Comparison_fn.Exact;
    merge = true;
    verify_local = true;
    verify_global = false;
    max_passes = 16;
    seed = 1L;
    use_dontcares = false;
    dc_backtracks = 200;
    max_units = 1;
    domains = 0;
    obs = false;
    verify = `Sampled 8;
    inject_unsound = 0;
    id_cache = true;
    cache_dir = None;
    incremental = true;
    commit_batch = 8;
    worklist = true;
    scheduler = Graph;
  }

(* Observability probes. [cut_size_h] and [realised_c] fire inside worker
   evaluation — counters and histograms are atomic, so that is safe; spans
   stay on the orchestrating domain. *)
let candidates_c = Obs.Counter.make ~help:"subcircuit candidates enumerated" "engine.candidates"
let realised_c = Obs.Counter.make ~help:"candidates realised as units" "engine.realised"
let accepted_c = Obs.Counter.make ~help:"replacements spliced in" "engine.accepted"
let cut_size_h = Obs.Histogram.make ~help:"K-cut input counts" "engine.cut_size"

let verify_checks_c =
  Obs.Counter.make ~help:"whole-circuit CEC miter checks" "engine.verify_checks"

let verify_refused_c =
  Obs.Counter.make ~help:"replacements rolled back as unsound" "engine.verify_refused"

let verify_unknown_c =
  Obs.Counter.make ~help:"CEC checks hitting the conflict budget" "engine.verify_unknown"

let dirty_regions_c =
  Obs.Counter.make ~help:"splice footprints marked dirty" "engine.dirty_regions"

let dirty_nodes_h =
  Obs.Histogram.make ~help:"nodes newly dirtied per splice footprint" "engine.dirty_nodes"

let reenum_skipped_c =
  Obs.Counter.make ~help:"clean roots skipped without re-enumeration" "engine.reenum_skipped"

let concurrent_commits_c =
  Obs.Counter.make ~help:"splices landed through a multi-splice commit flush"
    "engine.concurrent_commits"

let worklist_popped_c =
  Obs.Counter.make ~help:"dirty roots popped from the pass worklist"
    "engine.worklist_popped"

let conflict_edges_c =
  Obs.Counter.make ~help:"footprint overlaps between queued splices"
    "engine.conflict_edges"

let commit_waves_c =
  Obs.Counter.make ~help:"independent-set verification waves landed"
    "engine.commit_waves"

let wave_coalesced_c =
  Obs.Counter.make
    ~help:"splices verified in a multi-splice wave after surviving a touch"
    "engine.wave_coalesced"

type stats = {
  passes : int;
  replacements : int;
  gates_before : int;
  gates_after : int;
  paths_before : int;
  paths_after : int;
  verify_checks : int;
  verify_refused : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d passes, %d replacements; gates %d -> %d; paths %d -> %d" s.passes
    s.replacements s.gates_before s.gates_after s.paths_before s.paths_after;
  if s.verify_checks > 0 then
    Format.fprintf ppf "; %d proved%s" s.verify_checks
      (if s.verify_refused > 0 then
         Printf.sprintf " (%d REFUSED as unsound)" s.verify_refused
       else "")

(* Paths on the root if the subcircuit is replaced by the unit:
   sum over inputs of N_p(input) * K_p(input). *)
let replaced_path_label labels (s : Subcircuit.t) (b : Comparison_unit.built) =
  let acc = ref 0 in
  Array.iteri
    (fun j input -> acc := !acc + (labels.(input) * b.Comparison_unit.input_paths.(j)))
    s.Subcircuit.inputs;
  !acc

type candidate = {
  sub : Subcircuit.t;
  built : Comparison_unit.built;
  gain : int;  (** removable 2-input gates minus unit 2-input gates *)
  new_paths : int;  (** path label on the root after replacement *)
  exact : bool;  (** false for don't-care replacements (care-set verified) *)
}

(* Build the replacement unit for a subcircuit, trying in order: a single
   comparison unit, a multi-unit cover (Sec. 6, issue 2), and a single unit
   under controllability don't-cares (Sec. 6, issue 1; each exploited
   disagreement is proved unreachable first). [identify] is the plain
   identification engine, possibly wrapped in the run cache by the caller;
   the don't-care and multi-unit fallbacks are rng-dependent and stay
   uncached. *)
let realise opts rng ~identify ~sim c sub tt =
  let n = Array.length sub.Subcircuit.inputs in
  let with_dontcares () =
    if not opts.use_dontcares then None
    else
      match sim with
      | None -> None
      | Some (cmp0, batches) -> (
        let seen = Dontcare.observed cmp0 batches sub.Subcircuit.inputs in
        let dc = Truthtable.lnot seen in
        if Truthtable.is_const dc = Some false then None
        else begin
          let care_on = Truthtable.land_ tt seen in
          match Comparison_fn.identify_dc rng ~care_on ~dc with
          | None -> None
          | Some spec ->
            let built = Comparison_unit.build ~merge:opts.merge ~n spec in
            let g = Eval.output_table built.Comparison_unit.circuit 0 in
            let diff = Truthtable.minterms (Truthtable.lxor_ g tt) in
            if diff = [] then Some (built, true)
            else if
              Dontcare.prove_unreachable ~backtrack_limit:opts.dc_backtracks c
                sub.Subcircuit.inputs diff
            then Some (built, false)
            else None
        end)
  in
  let with_multi () =
    if opts.max_units <= 1 then None
    else
      match Multi_unit.find ~max_units:opts.max_units rng tt with
      | Some cover -> Some (Multi_unit.build ~merge:opts.merge ~n cover, true)
      | None -> None
  in
  match identify tt with
  | Some spec -> Some (Comparison_unit.build ~merge:opts.merge ~n spec, true)
  | None -> (
    (* a don't-care single unit is usually cheaper than a multi-unit cover *)
    match with_dontcares () with
    | Some r -> Some r
    | None -> with_multi ())

(* Candidate evaluations must not share a mutable random stream when they
   run concurrently, so each candidate derives its own generator from the
   engine seed, the root and its enumeration index (splitmix64 finaliser).
   The serial path uses the same derivation, keeping [domains = 1] and
   [domains = n] runs identical. *)
let candidate_seed base root idx =
  let z =
    Int64.add
      (Int64.logxor base (Int64.mul (Int64.of_int root) 0x9E3779B97F4A7C15L))
      (Int64.of_int idx)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Per-run scratch threaded through every pass: the persistent dirty
   worklist of the incremental walk, the output-reachable set that stands
   in for the scan walk's [marked] array, the reusable enumeration dedup
   table, the serial extraction buffer, and the pending-footprint scratch
   the commit queue clears instead of reallocating. All survive circuit
   growth — the bitsets grow on demand, the dedup table is cleared per
   root, and the scratch buffer is re-allocated when the circuit outgrows
   it. *)
type run_state = {
  wl : Footprint.Worklist.t;
  reachable : Footprint.set;
  dedup : Subcircuit.dedup;
  mutable scratch : int64 array;
  pending_scratch : Footprint.set;
  members_scratch : Footprint.set;
}

(* The scan walk's [marked] array computes output-reachability on the fly
   (outputs seed it, every processed root propagates to its fanins). The
   worklist walk visits only dirty roots, so it needs the same predicate as
   a set: seeded here by one DFS from the outputs, extended with the fresh
   nodes of every splice. No other node ever becomes reachable — new edges
   only point at freshly spliced regions — and nodes that stop being
   reachable are dead (the post-splice sweep removes them), which the
   [is_gate] check already filters. *)
let reachable_from_outputs c =
  let s = Footprint.create (Circuit.size c) in
  let stack = ref [] in
  Array.iter (fun o -> stack := o :: !stack) (Circuit.outputs c);
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | id :: rest ->
      stack := rest;
      if Circuit.is_alive c id && not (Footprint.mem s id) then begin
        Footprint.add s id;
        Array.iter (fun f -> stack := f :: !stack) (Circuit.fanins c id)
      end
  done;
  s

let make_run_state opts c =
  let track = opts.incremental && opts.worklist in
  {
    wl = Footprint.Worklist.create ~all:true ~track (Circuit.size c);
    reachable =
      (if track then reachable_from_outputs c else Footprint.create 1);
    dedup = Subcircuit.dedup ();
    scratch = [||];
    pending_scratch = Footprint.create 1;
    members_scratch = Footprint.create 1;
  }

(* Below this many candidates a pooled scoring batch runs inline on the
   calling domain: publishing a job and waking the workers costs more than
   scoring a handful of cuts (the source of the sub-1.0x pooled "speedups"
   on small circuits). Scheduling-only — results are unchanged. *)
let score_serial_cutoff = 48

(* Enumeration stays serial; [realise] / truth-table extraction fan out
   across the pool. Results come back in enumeration order (deterministic
   ordered merge), so the fold over [better] below sees candidates in the
   same order as a serial run and tie-breaks identically.

   The identification cache is never written during scoring: every
   evaluation — worker or serial — looks up the frozen cache read-only and
   records its misses locally; the orchestrating domain merges them below
   once the whole batch is back. Deferring the serial merge too keeps
   hit/miss counts identical across [domains] settings. *)
let score_candidates ?pool ?cache ~st opts ~sim labels c root =
  let subs =
    Array.of_list
      (Subcircuit.enumerate ~dedup:st.dedup ~k:opts.k
         ~max_candidates:opts.max_candidates c root)
  in
  Obs.Counter.add candidates_c (Array.length subs);
  let eval scratch idx sub =
    let rng = Rng.create (candidate_seed opts.seed root idx) in
    Obs.Histogram.observe cut_size_h (Array.length sub.Subcircuit.inputs);
    let tt = Subcircuit.extract ~scratch c sub in
    let misses = ref [] in
    let identify tt =
      match cache with
      | None -> Comparison_fn.identify opts.engine rng tt
      | Some cache -> (
        match Idcache.find cache tt with
        | Idcache.Hit verdict -> verdict
        | Idcache.Neg_hit -> None
        | Idcache.Miss m ->
          let verdict = Comparison_fn.identify opts.engine rng tt in
          misses := (m, verdict) :: !misses;
          verdict)
    in
    let cand =
      match realise opts rng ~identify ~sim c sub tt with
      | None -> None
      | Some (built, exact) ->
        Obs.Counter.incr realised_c;
        let gain = Subcircuit.removable_cost c sub - built.Comparison_unit.gates2 in
        let new_paths = replaced_path_label labels sub built in
        Some { sub; built; gain; new_paths; exact }
    in
    (cand, !misses)
  in
  let scored =
    match pool with
    | Some pool when Array.length subs > 1 ->
      (* Workers read the circuit concurrently; materialise the lazy
         fanout cache up front so they never race to build it. Each worker
         slot keeps its own extraction scratch for the batch. *)
      ignore (Circuit.fanouts c root);
      Pool.map_chunks pool ~chunk:1 ~serial_below:score_serial_cutoff
        ~state:(fun _ -> Array.make (Circuit.size c) 0L)
        ~f:eval subs
    | _ ->
      if Array.length st.scratch < Circuit.size c then
        st.scratch <- Array.make (Circuit.size c) 0L;
      Array.mapi (eval st.scratch) subs
  in
  (match cache with
  | None -> ()
  | Some cache ->
    Array.iter
      (fun (_, misses) ->
        List.iter
          (fun (m, verdict) -> Idcache.record cache m verdict)
          (List.rev misses))
      scored);
  List.filter_map fst (Array.to_list scored)

(* Strictly-better-than ordering for the two objectives. [current_paths] is
   the Procedure-1 label on the root before replacement. *)
let better objective ~current_paths a b =
  match b with
  | None -> (
    (* is [a] an improvement over leaving the gate alone? *)
    match objective with
    | Gates -> a.gain > 0 || (a.gain = 0 && a.new_paths < current_paths)
    | Paths -> a.new_paths < current_paths)
  | Some b -> (
    match objective with
    | Gates -> a.gain > b.gain || (a.gain = b.gain && a.new_paths < b.new_paths)
    | Paths -> a.new_paths < b.new_paths)

(* Whole-circuit SAT verification of accepted replacements (DESIGN.md §10).
   [attempts] counts accepted splices across passes so a `Sampled cadence is
   per optimisation run, not per pass; the first acceptance is always
   proved. *)
type verify_state = {
  mutable attempts : int;
  mutable checks : int;
  mutable refused : int;
}

let should_verify (verify : verify) idx =
  match verify with
  | `Off -> false
  | `Full -> true
  | `Sampled n -> n > 0 && idx mod n = 0

(* Kind with the complemented function, for the [inject_unsound] test hook. *)
let inverted_kind = function
  | Gate.Buf -> Some Gate.Not
  | Gate.Not -> Some Gate.Buf
  | Gate.And -> Some Gate.Nand
  | Gate.Nand -> Some Gate.And
  | Gate.Or -> Some Gate.Nor
  | Gate.Nor -> Some Gate.Or
  | Gate.Xor -> Some Gate.Xnor
  | Gate.Xnor -> Some Gate.Xor
  | Gate.Input | Gate.Const0 | Gate.Const1 -> None

let is_gate c id =
  Circuit.is_alive c id
  &&
  match Circuit.kind c id with
  | Gate.Input | Gate.Const0 | Gate.Const1 -> false
  | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
  | Gate.Xnor -> true

(* A splice decision not yet applied to the netlist (incremental mode with
   [commit_batch > 1]): the winning candidate, its root, and the
   accepted-splice index it drew — the index drives verification sampling
   and the [inject_unsound] hook, so it is fixed at decision time and
   replayed at landing. [p_fp] is the decision-time observer set (every
   root whose evaluation could distinguish the deferred circuit from the
   committed one, see [splice_casualties]), kept per-splice only by the
   conflict-graph scheduler, whose touch rule lands individual observer
   sets instead of the whole queue. [p_dead] is the exact set of nodes the
   splice's sweep will remove; [p_kept] records that the splice survived
   at least one pop the flush rule would have landed it on. *)
type pending = {
  p_root : int;
  p_cand : candidate;
  p_idx : int;
  p_fp : Footprint.set option;
  p_dead : int list;
  mutable p_kept : bool;
}

(* Exact casualty prediction for a splice, computed on the pre-splice
   circuit. [Replace.splice] retargets the root's readers onto the fresh
   unit and then sweeps global output-reachability; in a DAG whose only
   edge changes are that retarget, the sweep kills exactly the
   reference-count cascade from the root — a node dies iff it is neither
   a primary input, nor an output, nor a cut input the fresh unit reads
   (the unit's output cone does not necessarily use every cut position),
   and every one of its readers dies. Returns [(dead, boundary)]:
   [dead] always contains the root; [boundary] is the sweep boundary —
   the live fanins of dead nodes, whose fanout degree the commit will
   change. Both lists are duplicate-free. *)
let splice_casualties c ~queued_dead (sub : Subcircuit.t)
    (built : Comparison_unit.built) =
  let unit_c = built.Comparison_unit.circuit in
  let used_unit = Array.make (Circuit.size unit_c) false in
  let rec mark_unit id =
    if not used_unit.(id) then begin
      used_unit.(id) <- true;
      Array.iter mark_unit (Circuit.fanins unit_c id)
    end
  in
  mark_unit (Circuit.outputs unit_c).(0);
  let used = Hashtbl.create 8 in
  Array.iteri
    (fun j pi ->
      if used_unit.(pi) then Hashtbl.replace used sub.Subcircuit.inputs.(j) ())
    (Circuit.inputs unit_c);
  let outputs = Circuit.outputs c in
  let dead = Hashtbl.create 16 in
  let dead_list = ref [] in
  let kill id =
    Hashtbl.replace dead id ();
    dead_list := id :: !dead_list
  in
  kill sub.Subcircuit.root;
  (* [queued_dead] holds the predicted casualties of older splices still
     in the queue: they are alive right now but will be gone before this
     splice commits (landings are in decision order), so the cascade must
     count them as dead readers. A node that dies only through the
     combination is attributed to this (newer) splice — exactly right,
     since any landed prefix containing this splice contains the older
     ones too. *)
  let gone r = Hashtbl.mem dead r || Footprint.mem queued_dead r in
  (* Every kill re-examines the victim's fanins, so a fanin is re-checked
     whenever one of its readers dies: when its last reader goes, the
     check passes — the fixpoint needs no separate worklist. *)
  let rec cascade id =
    Array.iter
      (fun f ->
        if
          Circuit.is_alive c f
          && (not (gone f))
          && (match Circuit.kind c f with Gate.Input -> false | _ -> true)
          && (not (Hashtbl.mem used f))
          && (not (Array.exists (Int.equal f) outputs))
          && List.for_all gone (Circuit.fanouts c f)
        then begin
          kill f;
          cascade f
        end)
      (Circuit.fanins c id)
  in
  cascade sub.Subcircuit.root;
  let boundary = Hashtbl.create 16 in
  let boundary_list = ref [] in
  List.iter
    (fun d ->
      Array.iter
        (fun f ->
          if
            Circuit.is_alive c f
            && (not (gone f))
            && not (Hashtbl.mem boundary f)
          then begin
            Hashtbl.replace boundary f ();
            boundary_list := f :: !boundary_list
          end)
        (Circuit.fanins c d))
    !dead_list;
  (!dead_list, !boundary_list)

let run_pass ?pool ?cache objective opts vstate st c =
  let labels = Paths.labels c in
  let dirty = Footprint.Worklist.fp st.wl in
  let incremental = opts.incremental in
  let use_worklist = incremental && opts.worklist in
  (* Deferred commits need the footprint machinery for their touch rule, so
     [--no-incremental] also forces immediate serial splices: that is
     exactly the pre-incremental engine. *)
  let batch = if incremental then max 1 opts.commit_batch else 1 in
  let use_graph = batch > 1 && opts.scheduler = Graph in
  (* Simulation snapshot for don't-care analysis. Replacements only rewrite
     logic downstream of the gates still to be processed, so upstream node
     values stay valid for the whole pass. Compiling the circuit is pure
     overhead when don't-cares are off, so it only happens here. *)
  let sim =
    if opts.use_dontcares then begin
      let cmp0 = Compiled.of_circuit c in
      let sim_rng = Rng.create (Int64.logxor opts.seed 0x5FCAL) in
      let n_pi = Array.length (Compiled.inputs cmp0) in
      Some
        ( cmp0,
          Array.init 32 (fun _ ->
              Compiled.simulate cmp0 (Array.init n_pi (fun _ -> Rng.next64 sim_rng))) )
    end
    else None
  in
  let replacements = ref 0 in
  let pending = ref [] (* newest first; landed in decision order *) in
  let npending = ref 0 in
  (* Touch set of the queue: evaluating any root inside it could observe a
     not-yet-applied splice, so the touch rule lands splices first. Under
     the flush scheduler this is the union of the decision-time footprint
     closures (cut inputs, members, everything downstream — the PR-6
     over-approximation). The graph scheduler keeps the union of the much
     smaller per-splice *observer* sets instead: evaluation at a root [y]
     reads only the fanin structure of [y]'s strict fanin cone and the
     fanout lists of its member gates, so [y] can distinguish the deferred
     circuit from the committed one iff that cone contains a node the
     commit restructures (a reader of the replaced root) or whose fanout
     list it changes (a surviving cut input or a sweep-boundary node) —
     equivalently iff [y] lies in the fanout cone of a live reader of one
     of those. Dead regions cannot re-export an edge (a dead node has no
     live reader), so in particular a surviving cut input itself scores
     identically before and after the landing and is NOT an observer: the
     walk re-evaluates it without forcing a landing, which is what lets
     batches outlive their own footprints. Cleared (not reallocated)
     whenever the queue drains. *)
  let pending_dirty = st.pending_scratch in
  (* Union of the queued splices' exact will-die sets ([splice_casualties]).
     Had the queue committed immediately these nodes would already be gone
     and the walk would pass them silently, so a pop here is skipped — and
     must be: a casualty outside the footprint (sweep cascade past the cut)
     that is dirty for unrelated reasons would otherwise be evaluated
     alive in deferred mode and dead in immediate mode. *)
  let pending_members = st.members_scratch in
  (* Pre-splice footprint of a decided candidate: its cut inputs (whose
     fanout sets change), its member gates (which die), and everything
     downstream of either. Marked before the splice mutates the netlist,
     while the members' fanout edges still exist. *)
  let footprint_seeds cand =
    Array.fold_left
      (fun acc input -> input :: acc)
      cand.sub.Subcircuit.gates cand.sub.Subcircuit.inputs
  in
  (* Kinds whose fanout list the scoring of some future root could read:
     member gates and constants, but never primary inputs (a PI cannot be
     a member of a subcircuit, and nothing else reads fanouts). *)
  let observable_src id =
    Circuit.is_alive c id
    && match Circuit.kind c id with Gate.Input -> false | _ -> true
  in
  (* Returns the per-splice observer set (graph scheduler) and the exact
     will-die list. The casualty and observer computations are frozen at
     decision time: no later decision can reach into a queued splice's
     region without first landing it (its root would be a skipped casualty
     or a landing observer), so the sets stay valid while queued. *)
  let mark_decision cand =
    let seeds = footprint_seeds cand in
    Obs.Counter.incr dirty_regions_c;
    if batch = 1 then begin
      Obs.Histogram.observe dirty_nodes_h
        (Footprint.Worklist.mark_fanout_cone c st.wl seeds);
      (None, [])
    end
    else begin
      let sub = cand.sub in
      let dead, boundary =
        splice_casualties c ~queued_dead:pending_members sub cand.built
      in
      List.iter (Footprint.add pending_members) dead;
      if use_graph then begin
        (* Dirty the sweep-boundary cones now as well: an immediate commit
           marks them at this same walk position ([mark_swept_boundary]),
           and the observers below must be queued to trigger landings. *)
        Obs.Histogram.observe dirty_nodes_h
          (Footprint.Worklist.mark_fanout_cone c st.wl
             (List.rev_append boundary seeds));
        let obs = Footprint.create (Circuit.size c) in
        let srcs =
          sub.Subcircuit.root
          :: List.rev_append
               (List.filter observable_src boundary)
               (List.filter observable_src
                  (Array.to_list sub.Subcircuit.inputs))
        in
        let obs_seeds =
          List.concat_map
            (fun v ->
              List.filter
                (fun r -> not (Footprint.mem pending_members r))
                (Circuit.fanouts c v))
            srcs
        in
        ignore (Footprint.mark_fanout_cone c obs obs_seeds);
        Footprint.union_into pending_dirty obs;
        (Some obs, dead)
      end
      else begin
        (* Flush scheduler: the touch closure must cover the sweep-boundary
           cones too. The exact-casualty skip no longer lands the queue on a
           doomed cut input the way the PR-6 closure touch did, so without
           [boundary] here a root between the boundary and the eventual
           touch would be evaluated against the pre-splice fanouts. Dirty
           marks at decision time mirror the immediate commit's
           [mark_swept_boundary] at this same walk position. *)
        let all = List.rev_append boundary seeds in
        Obs.Histogram.observe dirty_nodes_h
          (Footprint.Worklist.mark_fanout_cone c st.wl all);
        ignore (Footprint.mark_fanout_cone c pending_dirty all);
        (None, dead)
      end
    end
  in
  (* Nodes the splice imported (ids allocated past [since]) and their fanout
     cones: dirty so the next pass re-evaluates the rebuilt region. Fresh
     nodes are output-reachable by construction (the splice retargets the
     old root's readers onto them), so the worklist's reachability predicate
     learns them here. *)
  let mark_fresh since =
    let seeds = ref [] in
    for id = Circuit.size c - 1 downto since do
      if Circuit.is_alive c id then begin
        seeds := id :: !seeds;
        if use_worklist then Footprint.add st.reachable id
      end
    done;
    ignore (Footprint.Worklist.mark_fanout_cone c st.wl !seeds)
  in
  (* The sweep inside [Replace.splice] cascades upstream past the cut: a cut
     input left without consumers dies, then its fanins lose a consumer, and
     so on. Survivors on that boundary change fanout degree — which
     [Subcircuit.removable_gates] reads — so every root downstream of them
     must be re-evaluated, and the decision-time footprint (cut inputs +
     members) does not reach them. [pre_alive]/[pre_fanins] snapshot the
     graph before the splice; afterwards the live former fanins of every
     swept node seed a fanout-cone marking on the new graph. *)
  let snapshot_fanins () =
    Array.init (Circuit.size c) (fun id ->
        if Circuit.is_alive c id then Array.copy (Circuit.fanins c id)
        else [||])
  in
  let mark_swept_boundary pre_fanins =
    let seeds = ref [] in
    Array.iteri
      (fun id fins ->
        if Array.length fins > 0 && not (Circuit.is_alive c id) then
          Array.iter
            (fun f -> if Circuit.is_alive c f then seeds := f :: !seeds)
            fins)
      pre_fanins;
    ignore (Footprint.Worklist.mark_fanout_cone c st.wl !seeds)
  in
  (* Apply one decided splice. [pre_verified] means a concurrent flush
     already ran the exhaustive local check. Returns false if the CEC miter
     refused the replacement and rolled it back. *)
  let commit_one ~pre_verified p =
    let cand = p.p_cand in
    (* Don't-care replacements intentionally differ from the subcircuit
       function on proved-unreachable combinations, so the exhaustive
       local check only applies to exact ones. *)
    let verify_local = opts.verify_local && cand.exact && not pre_verified in
    let snapshot =
      if should_verify opts.verify p.p_idx then Some (Circuit.copy c) else None
    in
    let since = Circuit.size c in
    let pre_fanins = if incremental then Some (snapshot_fanins ()) else None in
    let fresh = Replace.splice ~verify_local c cand.sub cand.built in
    (if opts.inject_unsound = p.p_idx + 1 then
       match inverted_kind (Circuit.kind c fresh) with
       | Some k -> Circuit.set_kind c fresh k
       | None -> ());
    let sound =
      match snapshot with
      | None -> true
      | Some before -> (
        vstate.checks <- vstate.checks + 1;
        Obs.Counter.incr verify_checks_c;
        match Cec.check ?pool before c with
        | Cec.Equivalent -> true
        | Cec.Unknown _ ->
          (* Budget exhausted is not evidence of unsoundness: the local
             checks already passed, so the replacement stands. *)
          Obs.Counter.incr verify_unknown_c;
          if Obs.Journal.enabled () then
            Obs.Journal.emit "cec_unknown"
              [
                ("root", Obs_json.Int p.p_root); ("idx", Obs_json.Int p.p_idx);
              ];
          true
        | Cec.Counterexample _ ->
          Circuit.overwrite c ~with_:before;
          vstate.refused <- vstate.refused + 1;
          Obs.Counter.incr verify_refused_c;
          Obs.Trace.instant ~cat:"engine" "engine.verify_refused";
          if Obs.Journal.enabled () then
            Obs.Journal.emit "splice_rollback"
              [
                ("root", Obs_json.Int p.p_root);
                ("idx", Obs_json.Int p.p_idx);
                ("reason", Obs_json.String "cec_counterexample");
              ];
          false)
    in
    if sound then begin
      incr replacements;
      Obs.Counter.incr accepted_c;
      Obs.Trace.instant ~cat:"engine" "engine.accepted";
      if Obs.Journal.enabled () then
        Obs.Journal.emit "splice_accept"
          [
            ("root", Obs_json.Int p.p_root);
            ("idx", Obs_json.Int p.p_idx);
            ("gain", Obs_json.Int cand.gain);
            ("new_paths", Obs_json.Int cand.new_paths);
            ("cut", Obs_json.Int (Array.length cand.sub.Subcircuit.inputs));
            ("exact", Obs_json.Bool cand.exact);
          ];
      if incremental then begin
        mark_fresh since;
        Option.iter mark_swept_boundary pre_fanins
      end
    end;
    sound
  in
  (* Land a decision-order group of queued splices. The read-only half —
     the exhaustive local check of each replacement — is scheduled by the
     conflict graph: footprint overlap is an edge (bitset intersection on
     the per-splice closures), and a greedy colouring in decision order
     cuts the group into consecutive independent-set waves, each of which
     fans its verifications out across the pool. The touch rule keeps the
     queue pairwise disjoint in practice, so the colouring almost always
     produces a single wave; the edges counter proves that invariant at
     runtime rather than assuming it. Mutations stay serial in decision
     order across all waves: that fixed tie-break (and the id allocation
     order it implies) is what keeps batched commits bit-identical to
     immediate ones. *)
  let land_group ps =
    Obs.Span.with_ "engine.commit_flush" (fun () ->
        let m = Array.length ps in
        if Obs.Journal.enabled () then
          Obs.Journal.emit "commit_flush" [ ("batch", Obs_json.Int m) ];
        (* [conflict i j], for [i] decided before [j]: could committing the
           older splice perturb the verification of the newer one? Wave
           verifications are read-only (each re-extracts its sub from the
           current circuit) and the commits stay serial in decision order,
           so the only dangerous direction is an older commit reaching into
           a newer sub — which needs the newer root inside the older
           splice's observer set. That is impossible for co-queued splices
           (a root popped while another splice was queued either landed it
           as an observer or was skipped as a casualty), so the colouring
           should always produce a single wave. The matrix is kept as a
           runtime proof of that theorem rather than an assumption: an edge
           both splits the wave (restoring soundness) and increments the
           counter the bench gates on. Counted once per ordered pair. *)
        let conflict =
          if use_graph && m > 1 then begin
            let edges = Array.make_matrix m m false in
            for i = 0 to m - 1 do
              for j = i + 1 to m - 1 do
                let clash =
                  match ps.(i).p_fp with
                  | Some oi -> Footprint.mem oi ps.(j).p_root
                  | None -> true
                in
                if clash then begin
                  edges.(i).(j) <- true;
                  edges.(j).(i) <- true;
                  Obs.Counter.incr conflict_edges_c
                end
              done
            done;
            fun i j -> edges.(i).(j)
          end
          else fun _ _ -> false
        in
        let wave_start = ref 0 in
        while !wave_start < m do
          let lo = !wave_start in
          let hi = ref (lo + 1) in
          let open_ = ref true in
          while !open_ && !hi < m do
            let clashes = ref false in
            for j = lo to !hi - 1 do
              if conflict !hi j then clashes := true
            done;
            if !clashes then open_ := false else incr hi
          done;
          let hi = !hi in
          wave_start := hi;
          let wlen = hi - lo in
          Obs.Counter.incr commit_waves_c;
          if Obs.Journal.enabled () then
            Obs.Journal.emit "commit_wave"
              [ ("size", Obs_json.Int wlen); ("batch", Obs_json.Int m) ];
          let pre_verified =
            match pool with
            | Some pool when wlen > 1 && opts.verify_local ->
              let ok =
                Pool.map_sub pool ~chunk:1 ~lo ~len:wlen
                  (fun p ->
                    (not p.p_cand.exact)
                    || Replace.implements c p.p_cand.sub p.p_cand.built)
                  ps
              in
              Array.iter (fun o -> if not o then Replace.reject ()) ok;
              true
            | _ -> false
          in
          for i = lo to hi - 1 do
            let p = ps.(i) in
            if commit_one ~pre_verified p then begin
              if m > 1 then Obs.Counter.incr concurrent_commits_c;
              if wlen > 1 && p.p_kept then Obs.Counter.incr wave_coalesced_c
            end
            else begin
              (* Refused and rolled back: the root survives with its old
                 structure, but the walk is already past it — schedule it,
                 its fanins, and its predicted casualties (skipped while
                 the splice was queued, alive again now) for the next pass
                 instead. *)
              Footprint.Worklist.push st.wl p.p_root;
              Array.iter
                (fun f -> if is_gate c f then Footprint.Worklist.push st.wl f)
                (Circuit.fanins c p.p_root);
              List.iter
                (fun m -> if is_gate c m then Footprint.Worklist.push st.wl m)
                p.p_dead
            end
          done
        done)
  in
  let land_all () =
    if !npending > 0 then begin
      let ps = Array.of_list (List.rev !pending) in
      pending := [];
      npending := 0;
      Footprint.clear pending_dirty;
      Footprint.clear pending_members;
      land_group ps
    end
  in
  (* Touch rule at root [g] (the walk is about to read [g]'s region). The
     flush scheduler lands the whole queue. The graph scheduler lands the
     decision-order prefix up to the newest splice whose closure reaches
     [g] — every splice the evaluation of [g] could observe, and everything
     decided before them so fresh ids keep their immediate-mode allocation
     order — while newer, disjoint splices stay queued and accumulate into
     larger (more concurrent) waves. *)
  let land_covering g =
    if not use_graph then land_all ()
    else begin
      let rec split kept = function
        | [] -> None
        | p :: older -> (
          match p.p_fp with
          | Some fp when Footprint.mem fp g -> Some (kept, p :: older)
          | _ -> split (p :: kept) older)
      in
      match split [] !pending with
      | None ->
        (* The union closure said touched but no queued splice reaches [g];
           only stale state could cause this — land everything. *)
        land_all ()
      | Some (kept_oldest_first, landing_newest_first) ->
        let ps = Array.of_list (List.rev landing_newest_first) in
        pending := List.rev kept_oldest_first;
        npending := List.length kept_oldest_first;
        Footprint.clear pending_dirty;
        Footprint.clear pending_members;
        List.iter
          (fun p ->
            p.p_kept <- true;
            List.iter (Footprint.add pending_members) p.p_dead;
            match p.p_fp with
            | Some fp -> Footprint.union_into pending_dirty fp
            | None -> ())
          kept_oldest_first;
        land_group ps
    end
  in
  (* A popped member gate is a touch the PR-6 flush rule landed the whole
     queue on (members sit inside every decision's footprint closure): the
     member-skip is exactly what lets the queue outlive it. Record the
     survival on every splice queued right now, so a later multi-splice
     wave is counted as coalescing the old rule could not have produced. *)
  let outlived_flush () = List.iter (fun p -> p.p_kept <- true) !pending in
  (* Evaluate one root and decide. [on_accept] runs after a deferred or
     sound immediate splice (the scan walk marks the cut inputs for further
     processing; the worklist walk already queued them through
     [mark_decision]); [on_reject] runs when no candidate improved on [g]
     or an immediate splice was refused (the scan walk marks [g]'s fanins;
     the worklist walk needs nothing — dirty fanins are already queued, and
     clean ones would only replay their previous rejection). *)
  let process_root ~on_accept ~on_reject g =
    if incremental then Footprint.remove dirty g;
    let chosen =
      List.fold_left
        (fun best cand ->
          if better objective ~current_paths:labels.(g) cand best then Some cand
          else best)
        None
        (score_candidates ?pool ?cache ~st opts ~sim labels c g)
    in
    match chosen with
    | Some cand ->
      let idx = vstate.attempts in
      vstate.attempts <- idx + 1;
      let p_fp, p_dead =
        if incremental then mark_decision cand else (None, [])
      in
      let p =
        { p_root = g; p_cand = cand; p_idx = idx; p_fp; p_dead;
          p_kept = false }
      in
      if batch > 1 then begin
        (* Defer the splice; treat it as accepted for the walk. A landing
           refusal cannot retract these marks — it reschedules the root
           for the next pass instead (see [land_group]). *)
        pending := p :: !pending;
        incr npending;
        on_accept cand;
        if !npending >= batch then land_all ()
      end
      else if commit_one ~pre_verified:false p then on_accept cand
      else
        (* Unsound rewrite refused: the splice was rolled back, so [g] is
           intact — continue as if no candidate had improved on it. *)
        on_reject g
    | None -> on_reject g
  in
  if use_worklist then begin
    (* Dirty-root worklist (DESIGN.md §17): pop exactly the dirty roots in
       descending topological order — the same outputs-towards-inputs
       order as the scan walk, O(changes) pops instead of O(size) visits
       (the topological sort itself is already paid for by [Paths.labels]
       above). The scan walk's [marked] array is replaced by the
       persistent [st.reachable] predicate: a popped root is processed iff
       it is a live gate on a path to an output, which is precisely when
       the scan walk would have marked it. Clean roots are never queued,
       so the skip branch disappears entirely. *)
    let order = Circuit.topo_order c in
    let pos = Array.make (Circuit.size c) (-1) in
    Array.iteri (fun i id -> pos.(id) <- i) order;
    Footprint.Worklist.start_pass st.wl ~pos;
    let on_accept _ = () and on_reject _ = () in
    let continue_ = ref true in
    while !continue_ do
      match Footprint.Worklist.pop st.wl with
      | None -> continue_ := false
      | Some g ->
        Obs.Counter.incr worklist_popped_c;
        if is_gate c g && Footprint.mem st.reachable g then
          if !npending > 0 && Footprint.mem pending_members g then
            (* Deferred-dead: under immediate commits this member would
               already be gone and the walk would pass it silently. Leave
               the queue intact — this is what lets batches accumulate. *)
            outlived_flush ()
          else begin
            (* About to read [g]'s region: any deferred splice whose
               footprint reaches [g] must land first so the evaluation
               observes it. *)
            if !npending > 0 && Footprint.mem pending_dirty g then
              land_covering g;
            if is_gate c g then process_root ~on_accept ~on_reject g
          end
    done
  end
  else begin
    (* Scan walk: outputs towards inputs, descending topological positions.
       The paper's line numbering is BFS from the inputs; descending
       topological order visits every line after all lines it feeds, which
       is what Step 2 needs. *)
    let marked = Array.make (Circuit.size c) false in
    Array.iter
      (fun o -> if is_gate c o then marked.(o) <- true)
      (Circuit.outputs c);
    let order = Circuit.topo_order c in
    let mark_fanins_of g =
      Array.iter
        (fun input -> if is_gate c input then marked.(input) <- true)
        (Circuit.fanins c g)
    in
    let on_accept cand =
      Array.iter
        (fun input -> if is_gate c input then marked.(input) <- true)
        cand.sub.Subcircuit.inputs
    in
    for i = Array.length order - 1 downto 0 do
      let g = order.(i) in
      if is_gate c g && marked.(g) then
        if incremental && not (Footprint.mem dirty g) then begin
          (* Clean root: nothing its enumeration, scoring or don't-care
             analysis reads has changed since it was last evaluated (and
             rejected), so re-evaluation would reproduce that rejection
             bit-exactly. Keep the walk moving and skip the work. *)
          Obs.Counter.incr reenum_skipped_c;
          mark_fanins_of g
        end
        else if !npending > 0 && Footprint.mem pending_members g then
          (* Deferred-dead member, as in the worklist walk above: an
             immediate commit would have removed it already, and a dead
             node neither enumerates nor marks its fanins. *)
          outlived_flush ()
        else begin
          (* Touch rule, as in the worklist walk above. *)
          if !npending > 0 && Footprint.mem pending_dirty g then
            land_covering g;
          if is_gate c g then
            process_root ~on_accept ~on_reject:mark_fanins_of g
        end
    done
  end;
  land_all ();
  !replacements

let optimize_with ?pool objective opts c =
  let reference = if opts.verify_global then Some (Circuit.copy c) else None in
  (* Establish "alive implies output-reachable (or Input)" before the first
     pass. Every splice sweeps, so the invariant then holds for the whole
     run — and the incremental casualty prediction depends on it: a
     pre-existing unreachable node would count as a live reader when the
     cascade decides what a queued splice kills, while the splice's global
     sweep reaps it along with everything it was propping up. *)
  ignore (Circuit.sweep c);
  let gates_before = Circuit.two_input_gate_count c in
  let paths_before = Paths.total c in
  (* One identification cache per run, shared across candidates, roots and
     passes — and, when [cache_dir] is set, warm-started from (and flushed
     back to) the disk store so later runs and concurrent processes share
     verdicts. Only the exact engine's verdicts are cacheable: the sampled
     engine consumes the per-candidate random stream, so replaying a cached
     verdict would change results between cache-on and cache-off runs. *)
  let cache =
    match opts.engine with
    | Comparison_fn.Exact when opts.id_cache ->
      Some (Idcache.create ?dir:opts.cache_dir ())
    | Comparison_fn.Exact | Comparison_fn.Sampled _ -> None
  in
  let passes = ref 0 in
  let replacements = ref 0 in
  let vstate = { attempts = 0; checks = 0; refused = 0 } in
  (* The dirty set starts all-true (first pass looks at everything) and
     persists across passes: a pass only re-evaluates roots whose region
     some earlier splice touched. *)
  let st = make_run_state opts c in
  let continue = ref true in
  while !continue && !passes < opts.max_passes do
    incr passes;
    let r =
      Obs.Span.with_ "engine.pass" (fun () ->
          run_pass ?pool ?cache objective opts vstate st c)
    in
    replacements := !replacements + r;
    (match reference with
    | Some reference ->
      if not (Eval.equivalent_random ~patterns:2048 ~seed:opts.seed reference c)
      then failwith "Engine.optimize: pass broke circuit equivalence"
    | None -> ());
    if r = 0 then continue := false
  done;
  (* Per-class hit accounting + disk flush; serial, after the last batch
     merged, so the frozen-read discipline is respected. *)
  Option.iter Idcache.finish cache;
  {
    passes = !passes;
    replacements = !replacements;
    gates_before;
    gates_after = Circuit.two_input_gate_count c;
    paths_before;
    paths_after = Paths.total c;
    verify_checks = vstate.checks;
    verify_refused = vstate.refused;
  }

let optimize objective opts c =
  if opts.obs then Obs.enable ();
  let domains = Pool.domains_of_flag opts.domains in
  if domains <= 1 then optimize_with objective opts c
  else
    Pool.with_pool ~domains (fun pool -> optimize_with ~pool objective opts c)
