(** Shared resynthesis engine behind Procedures 2 and 3 (Sec. 4).

    A pass walks the marked gate outputs from the primary outputs towards the
    inputs (descending topological order, as in the paper). For each gate it
    enumerates candidate subcircuits, keeps those implementing comparison
    functions, scores each viable replacement, and splices in the best one.
    Inputs of a selected subcircuit are marked for further processing; a gate
    with no improving candidate keeps its structure and marks its fanins.
    Passes repeat until a fixpoint. *)

type objective =
  | Gates  (** Procedure 2: maximise gate reduction, tie-break on paths. *)
  | Paths  (** Procedure 3: minimise the path count on the gate output. *)

type verify =
  [ `Off  (** trust the local checks; no whole-circuit proof *)
  | `Sampled of int
    (** SAT-prove the circuit before/after every [n]-th accepted
        replacement (the first acceptance is always proved) *)
  | `Full  (** SAT-prove every accepted replacement *) ]
(** Whole-circuit equivalence checking of accepted replacements with
    {!Cec.check} (DESIGN.md §10). The pre-splice circuit is snapshotted and
    miter-checked against the post-splice circuit; a counterexample rolls
    the splice back and the engine continues as if the candidate had not
    existed ([stats.verify_refused] counts these — any refusal indicates an
    engine bug, since local verification should already guarantee
    soundness). An [Unknown] verdict (conflict budget exhausted) lets the
    replacement stand. Don't-care replacements are proved by the same
    whole-circuit miter: they only diverge on subcircuit input combinations
    already proved unreachable from the primary inputs, so the miter stays
    UNSAT. *)

type scheduler =
  | Flush
      (** Flush-on-touch (the PR-6 rule): the first time the walk reads a
          root inside the pending footprint closure, the whole deferred
          queue lands. Conservative and simple, but a touch near one
          splice also forces every unrelated queued splice to land, so
          batches rarely fill. *)
  | Graph
      (** Conflict-graph commit scheduling (DESIGN.md §17): each queued
          splice keeps its own footprint closure; a touch lands only the
          decision-order prefix up to the newest splice whose closure
          reaches the touched root, and the landing group is cut into
          independent-set verification waves by greedy colouring of the
          footprint-overlap graph. Overlapping batches land in a later
          wave instead of forcing a flush; mutations stay serial in
          decision order, so results are bit-identical to [Flush] and to
          immediate commits. *)
(** How the deferred commit queue lands (only meaningful with
    [incremental] and [commit_batch > 1]). *)

type options = {
  k : int;  (** subcircuit input limit K (paper: 5 or 6) *)
  max_candidates : int;  (** candidate cap per root *)
  engine : Comparison_fn.engine;
  merge : bool;  (** merge chain gates inside units (Fig. 4) *)
  verify_local : bool;  (** exhaustive check of each replacement *)
  verify_global : bool;  (** random-pattern whole-circuit check per pass *)
  max_passes : int;
  seed : int64;
  use_dontcares : bool;
      (** paper Sec. 6, issue 1: when plain identification fails, retry with
          controllability don't-cares; every exploited disagreement is proved
          unreachable by justification search before the replacement is
          considered. *)
  dc_backtracks : int;  (** justification budget per proof *)
  max_units : int;
      (** paper Sec. 6, issue 2: cover a subfunction with up to this many
          comparison units sharing a permutation (1 = single units only). *)
  domains : int;
      (** domain-pool width for concurrent candidate evaluation
          (enumeration and splicing stay serial), resolved by
          {!Pool.domains_of_flag}: [<= 0] picks the recommended width, [1]
          forces the serial path. Results are identical for every value
          because candidates are scored with per-candidate derived seeds
          and merged back in enumeration order. *)
  obs : bool;  (** force-enable {!Obs} collection for this run. *)
  verify : verify;  (** SAT-based replacement verification, see {!verify}. *)
  inject_unsound : int;
      (** Fault-injection hook for the test suite: corrupt the [n]-th
          accepted replacement (1-based; [0] = never) by inverting the
          spliced root {e after} local verification, so only the {!verify}
          miter can catch it. Never set this outside tests. *)
  id_cache : bool;
      (** Share one {!Idcache} across all candidates, roots and passes of
          the run (DESIGN.md §12, §15): raw verdicts replay verbatim and
          the NPN class layer short-circuits provably negative lookups.
          Effective only with the deterministic {!Comparison_fn.Exact}
          engine — sampled verdicts depend on the candidate random stream
          and are never cached — so results are bit-identical with the
          cache on or off, and for any [domains] width. The CLI escape
          hatch is [--no-id-cache]. *)
  cache_dir : string option;
      (** Directory of the persistent identification store (DESIGN.md §15):
          when set (CLI [--cache-dir]), the run's cache warm-starts from
          [dir/idcache.bin] and appends its fresh verdicts back at the end,
          sharing identification work across runs and concurrent processes.
          [None] (the default) keeps the cache run-scoped in memory.
          Requires [id_cache]; results are bit-identical cold, warm or
          off. *)
  incremental : bool;
      (** Dirty-region tracking across passes (DESIGN.md §13): after each
          accepted splice the transitive fanout footprint of the replaced
          cone — its cut inputs, its member gates and everything downstream
          of either, plus the imported unit gates — is marked dirty, and
          later passes re-enumerate only dirty roots (the first pass sees
          everything dirty). A clean root's evaluation would reproduce its
          previous rejection bit-exactly, so skipping it never changes the
          result: incremental runs are bit-identical to full re-enumeration,
          at steady-state pass cost near-linear in the amount of logic that
          changed. The CLI escape hatch is [--no-incremental]. *)
  commit_batch : int;
      (** Deferred-commit window for the incremental engine: up to this many
          accepted splices queue before landing in one flush, whose
          read-only local verification fans out across the [domains] pool
          (the footprints are pairwise disjoint by the flush-on-touch rule)
          while the graph mutations stay serial in decision order. [<= 1]
          commits every splice immediately; ignored (treated as 1) when
          [incremental] is off, since deferral rides on the footprint
          machinery. Either way results are bit-identical. *)
  worklist : bool;
      (** Dirty-root worklist walk (DESIGN.md §17): instead of scanning
          every root of the circuit just to skip the clean ones, the pass
          pops exactly the dirty roots from an ordered
          {!Footprint.Worklist} view in descending id order — the same
          outputs-towards-inputs order as the scan walk, so results are
          bit-identical while pass time becomes O(changes). A popped root
          is processed iff it is a live gate reachable from an output,
          which is precisely when the scan walk would have marked it.
          Effective only with [incremental] (the scan walk has no dirty
          set to order); the CLI escape hatch is [--no-worklist]. *)
  scheduler : scheduler;
      (** Commit-queue landing discipline, see {!scheduler}. The CLI knob
          is [--scheduler flush|graph]. *)
}

val default_options : options
(** K = 6, 64 candidates, exact identification, merging, local verification
    on, global verification off, at most 16 passes, seed 1, extensions off,
    [domains = 0] (auto), [obs = false], [verify = `Sampled 8],
    [inject_unsound = 0], [id_cache = true], [cache_dir = None],
    [incremental = true], [commit_batch = 8], [worklist = true],
    [scheduler = Graph]. *)

type stats = {
  passes : int;
  replacements : int;
  gates_before : int;
  gates_after : int;
  paths_before : int;
  paths_after : int;
  verify_checks : int;  (** whole-circuit miter checks performed *)
  verify_refused : int;  (** replacements rolled back as unsound *)
}

val pp_stats : Format.formatter -> stats -> unit

val optimize : objective -> options -> Circuit.t -> stats
(** Mutates the circuit. Raises [Failure] if [verify_global] is set and a
    pass breaks equivalence (which would indicate a bug).

    Observability (when enabled): counters [engine.candidates],
    [engine.realised], [engine.accepted], [engine.verify_checks],
    [engine.verify_refused], [engine.verify_unknown], [engine.dirty_regions]
    (splice footprints marked dirty), [engine.reenum_skipped] (clean roots
    skipped without re-enumeration by the scan walk; the worklist walk
    never visits them at all), [engine.worklist_popped] (dirty roots popped
    from the pass worklist), [engine.conflict_edges] (footprint overlaps
    detected between queued splices — the touch rule keeps this at zero, so
    a non-zero value flags a scheduler invariant violation),
    [engine.commit_waves] (independent-set verification waves landed),
    [engine.wave_coalesced] (splices verified in a multi-splice wave after
    surviving a touch the flush rule would have landed them on),
    [engine.concurrent_commits] (splices
    landed through a multi-splice flush), and the {!Idcache} probes
    [idcache.hits], [idcache.npn_hits], [idcache.disk_hits],
    [idcache.misses], [idcache.canon_ns]; histograms [engine.cut_size],
    [engine.dirty_nodes] (nodes newly dirtied per footprint) and
    [idcache.class_hits]; spans [engine.pass] (one per resynthesis pass)
    and [engine.commit_flush] (one per deferred-commit flush).
    [extract.words] counts the 64-minterm words swept by the bit-parallel
    extractor (see {!Subcircuit.extract}). *)
