type t = {
  root : int;
  gates : int list;
  inputs : int array;
}

let pp ppf s =
  Format.fprintf ppf "root %d, gates {%s}, inputs [%s]" s.root
    (String.concat " " (List.map string_of_int s.gates))
    (String.concat " " (Array.to_list (Array.map string_of_int s.inputs)))

let is_gate c id =
  match Circuit.kind c id with
  | Gate.Input | Gate.Const0 | Gate.Const1 -> false
  | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor | Gate.Xor
  | Gate.Xnor -> true

let is_const c id =
  match Circuit.kind c id with
  | Gate.Const0 | Gate.Const1 -> true
  | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
  | Gate.Nor | Gate.Xor | Gate.Xnor -> false

module ISet = Set.Make (Int)

(* Input cut of a gate set: fanins of members outside the set, constants
   excluded, sorted. *)
let cut_of c set =
  ISet.fold
    (fun g acc ->
      Array.fold_left
        (fun acc f ->
          if ISet.mem f set || is_const c f then acc else ISet.add f acc)
        acc (Circuit.fanins c g))
    set ISet.empty

(* Dedup gate sets on the sets themselves ([ISet.equal] with a mixed fold
   hash) — no string keys, no per-push list/concat churn. *)
module SetTbl = Hashtbl.Make (struct
  type t = ISet.t

  let equal = ISet.equal
  let hash s = ISet.fold (fun e acc -> (acc * 0x01000193) lxor e) s 0x811C9DC5 land max_int
end)

type dedup = unit SetTbl.t

let dedup () = SetTbl.create 256

let enumerate ?dedup ~k ~max_candidates c root =
  if not (is_gate c root) then invalid_arg "Subcircuit.enumerate: root not a gate";
  (* A caller-supplied table is cleared, not rebuilt: [Hashtbl.clear] keeps
     the bucket array, so once it has grown to a pass's working-set size the
     steady state allocates nothing and never re-hashes to resize. Clearing
     is mandatory for correctness — stale entries would dedup this root's
     own seed away (every stored set contains its root). *)
  let seen =
    match dedup with
    | Some tbl ->
      SetTbl.clear tbl;
      tbl
    | None -> SetTbl.create 64
  in
  let results = ref [] in
  let count = ref 0 in
  let pushes = ref 0 in
  let push_budget = max 256 (max_candidates * 20) in
  let queue = Queue.create () in
  let push set =
    if !pushes < push_budget && not (SetTbl.mem seen set) then begin
      incr pushes;
      SetTbl.add seen set ();
      Queue.add set queue
    end
  in
  push (ISet.singleton root);
  while (not (Queue.is_empty queue)) && !count < max_candidates do
    let set = Queue.pop queue in
    let cut = cut_of c set in
    if ISet.cardinal cut <= k then begin
      incr count;
      results :=
        {
          root;
          gates = ISet.elements set;
          inputs = Array.of_list (ISet.elements cut);
        }
        :: !results;
      (* expand by absorbing each gate on the cut *)
      ISet.iter (fun h -> if is_gate c h then push (ISet.add h set)) cut
    end
    else
      (* over budget: absorbing more gates can still shrink the cut when the
         absorbed gate's fanins are already inputs; keep expanding within a
         small slack to find such reconvergences *)
      if ISet.cardinal cut <= k + 2 then
        ISet.iter (fun h -> if is_gate c h then push (ISet.add h set)) cut
  done;
  List.rev !results

(* Topological order of the member gates, computed locally: candidates are
   a handful of gates, so walking the whole circuit's topo order per
   extraction would dwarf the word-parallel sweep itself. *)
let member_order c s =
  let members = List.fold_left (fun acc g -> ISet.add g acc) ISet.empty s.gates in
  let order = Array.make (List.length s.gates) 0 in
  let placed = ref ISet.empty in
  let idx = ref 0 in
  let remaining = ref s.gates in
  while !remaining <> [] do
    let ready, waiting =
      List.partition
        (fun g ->
          Array.for_all
            (fun f -> (not (ISet.mem f members)) || ISet.mem f !placed)
            (Circuit.fanins c g))
        !remaining
    in
    if ready = [] then invalid_arg "Subcircuit: cyclic member set";
    List.iter
      (fun g ->
        order.(!idx) <- g;
        incr idx;
        placed := ISet.add g !placed)
      ready;
    remaining := waiting
  done;
  order

let extract_scalar c s =
  let n = Array.length s.inputs in
  if n > 16 then invalid_arg "Subcircuit.extract: too many inputs";
  let order = member_order c s in
  let values = Array.make (Circuit.size c) false in
  Truthtable.create n (fun m ->
      Array.iteri
        (fun j input -> values.(input) <- m land (1 lsl (n - 1 - j)) <> 0)
        s.inputs;
      Array.iter
        (fun g ->
          let fins = Circuit.fanins c g in
          let vals =
            Array.map
              (fun f ->
                match Circuit.kind c f with
                | Gate.Const0 -> false
                | Gate.Const1 -> true
                | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Or
                | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor -> values.(f))
              fins
          in
          values.(g) <- Gate.eval (Circuit.kind c g) vals)
        order;
      values.(s.root))

let extract_words_c =
  Obs.Counter.make ~help:"64-minterm words swept by bit-parallel extract" "extract.words"

(* Bit-parallel extraction: every cut input gets its standard 64-bit
   simulation pattern and the member gates are swept once per 64 minterms —
   a single sweep for the default K <= 6. The [scratch] word buffer (one
   slot per circuit node) is reused across candidates by the engine. *)
let extract ?scratch c s =
  let n = Array.length s.inputs in
  if n > 16 then invalid_arg "Subcircuit.extract: too many inputs";
  let order = member_order c s in
  let values =
    match scratch with
    | Some v when Array.length v >= Circuit.size c -> v
    | Some _ -> invalid_arg "Subcircuit.extract: scratch smaller than the circuit"
    | None -> Array.make (Circuit.size c) 0L
  in
  (* Constant fanins keep a fixed word for the whole sweep. *)
  Array.iter
    (fun g ->
      Array.iter
        (fun f ->
          match Circuit.kind c f with
          | Gate.Const0 -> values.(f) <- 0L
          | Gate.Const1 -> values.(f) <- -1L
          | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
          | Gate.Nor | Gate.Xor | Gate.Xnor -> ())
        (Circuit.fanins c g))
    order;
  let nw = if n <= 6 then 1 else 1 lsl (n - 6) in
  let out = Array.make nw 0L in
  for w = 0 to nw - 1 do
    (* Minterm [64w + l]: variable x_(j+1) reads index bit n-1-j — bit l of
       the standard pattern when in-block, bit (n-1-j-6) of w otherwise. *)
    Array.iteri
      (fun j input ->
        let p = n - 1 - j in
        values.(input) <-
          (if p < 6 then Truthtable.sim_pattern p
           else if w land (1 lsl (p - 6)) <> 0 then -1L
           else 0L))
      s.inputs;
    Array.iter
      (fun g -> values.(g) <- Gate.eval_word_on (Circuit.kind c g) values (Circuit.fanins c g))
      order;
    out.(w) <- values.(s.root)
  done;
  Obs.Counter.add extract_words_c nw;
  Truthtable.of_words n out

let removable_gates c s =
  let set = List.fold_left (fun acc g -> ISet.add g acc) ISet.empty s.gates in
  let externally_visible g =
    g <> s.root
    && (Circuit.is_output c g
       || List.exists (fun r -> not (ISet.mem r set)) (Circuit.fanouts c g))
  in
  let kept = ref ISet.empty in
  let rec keep g =
    if (not (ISet.mem g !kept)) && ISet.mem g set && g <> s.root then begin
      kept := ISet.add g !kept;
      Array.iter keep (Circuit.fanins c g)
    end
  in
  List.iter (fun g -> if externally_visible g then keep g) s.gates;
  List.filter (fun g -> not (ISet.mem g !kept)) s.gates

let removable_cost c s =
  List.fold_left
    (fun acc g ->
      acc + Gate.two_input_equivalents (Circuit.kind c g) (Circuit.fanin_count c g))
    0 (removable_gates c s)
