(** Splicing a comparison unit in place of a subcircuit. *)

val implements : Circuit.t -> Subcircuit.t -> Comparison_unit.built -> bool
(** Exhaustive local check: does the unit compute exactly the subcircuit's
    extracted function? This is the read-only half of [splice]'s
    [verify_local]; the engine's deferred-commit path runs it concurrently
    across pending splices before any of them mutates the circuit. *)

val reject : unit -> 'a
(** Raise the [Failure] that [splice] raises on a failed local check (the
    engine re-uses it when a concurrent {!implements} pre-check fails). *)

val splice :
  ?verify_local:bool ->
  Circuit.t ->
  Subcircuit.t ->
  Comparison_unit.built ->
  int
(** Import the unit into the circuit (its input [j] wired to
    [subcircuit.inputs.(j)]), retarget the root's fanouts and output
    designations to the unit output, and sweep the dead subcircuit gates.
    Returns the node id now carrying the function.

    With [verify_local] (default true) the unit's function is checked
    exhaustively against the subcircuit's extracted function before touching
    the circuit; a mismatch raises [Failure]. *)
