(** Candidate subcircuit enumeration for resynthesis (Sec. 4.1).

    Candidates with output [root] are grown by repeatedly absorbing a gate
    that feeds the current input cut, as long as the cut stays within [k]
    inputs. Constant fanins never count as inputs (they are folded into the
    extracted function). Candidates are deduplicated by gate set and capped. *)

type t = {
  root : int;  (** the gate whose output the subcircuit drives *)
  gates : int list;  (** member gates, sorted ascending, [root] included *)
  inputs : int array;
      (** boundary nodes feeding the subcircuit from outside, sorted
          ascending; position [j] is truth-table variable [x_(j+1)] (MSB
          first) *)
}

val pp : Format.formatter -> t -> unit

type dedup
(** Reusable gate-set dedup table for {!enumerate}. *)

val dedup : unit -> dedup
(** A fresh empty table. The engine keeps one per optimisation run and
    threads it through every enumeration, so the bucket array is allocated
    and sized once instead of per root. *)

val enumerate : ?dedup:dedup -> k:int -> max_candidates:int -> Circuit.t -> int -> t list
(** All candidates rooted at a gate, smallest first (the single-gate
    subcircuit is always first when it fits in [k] inputs). [dedup] is an
    optional caller-owned scratch table; it is cleared on entry, so results
    are identical with or without it (a fresh table is used when absent). *)

val extract : ?scratch:int64 array -> Circuit.t -> t -> Truthtable.t
(** The function computed on [root] in terms of [inputs], by bit-parallel
    local simulation: each cut input is driven with its standard 64-bit
    pattern and the member gates are swept once per 64 minterms — a single
    sweep when the cut has at most 6 inputs (the default K). [scratch] is
    an optional word buffer of at least [Circuit.size c] slots reused
    across calls (one is allocated when absent). Emits the [extract.words]
    counter when {!Obs} is enabled. *)

val extract_scalar : Circuit.t -> t -> Truthtable.t
(** Reference implementation of {!extract}: one evaluation of the member
    gates per minterm. Kept for differential tests and the bench harness'
    kernel baseline; {!extract} is bit-identical and up to 64x faster. *)

val removable_gates : Circuit.t -> t -> int list
(** Member gates that die if the subcircuit is replaced: everything except
    the backward closure of members that are primary outputs or still drive
    logic outside the subcircuit. The root is always removable. *)

val removable_cost : Circuit.t -> t -> int
(** Equivalent-2-input-gate count of {!removable_gates} — the paper's [N]. *)
