let implements c (s : Subcircuit.t) (b : Comparison_unit.built) =
  let want = Subcircuit.extract c s in
  let got = Eval.output_table b.Comparison_unit.circuit 0 in
  Truthtable.equal want got

let reject () =
  failwith "Replace.splice: unit does not implement the subcircuit function"

let splice ?(verify_local = true) c (s : Subcircuit.t) (b : Comparison_unit.built) =
  let unit_c = b.Comparison_unit.circuit in
  if Circuit.num_inputs unit_c <> Array.length s.Subcircuit.inputs then
    invalid_arg "Replace.splice: input arity mismatch";
  if verify_local && not (implements c s b) then reject ();
  (* Import the unit body. *)
  let remap = Array.make (Circuit.size unit_c) (-1) in
  Array.iteri
    (fun j pi -> remap.(pi) <- s.Subcircuit.inputs.(j))
    (Circuit.inputs unit_c);
  Array.iter
    (fun id ->
      match Circuit.kind unit_c id with
      | Gate.Input -> ()
      | Gate.Const0 -> remap.(id) <- Circuit.add_const c false
      | Gate.Const1 -> remap.(id) <- Circuit.add_const c true
      | k ->
        let fins = Array.map (fun f -> remap.(f)) (Circuit.fanins unit_c id) in
        remap.(id) <- Circuit.add_gate c k fins)
    (Circuit.topo_order unit_c);
  let fresh_out = remap.((Circuit.outputs unit_c).(0)) in
  Circuit.retarget c ~from_:s.Subcircuit.root ~to_:fresh_out;
  ignore (Circuit.sweep c);
  fresh_out
