(** Mutable gate-level netlist.

    A circuit is a DAG of nodes identified by dense integer ids. Primary
    inputs, constants and gates are all nodes; a primary output is a
    designated node id (several outputs may designate the same node). Fanout
    branches are implicit: branch [j] of node [u] is the [j]-th position of
    [u] in some gate's fanin array.

    Deletion leaves a tombstone so ids of live nodes never move; use
    {!compact} to renumber densely. All structural mutation invalidates the
    cached fanout index, which is rebuilt lazily. *)

type t

(** {1 Construction} *)

val create : ?name:string -> unit -> t
(** Empty circuit. [name] labels outputs such as .bench files. *)

val name : t -> string
val set_name : t -> string -> unit

val add_input : ?name:string -> t -> int
(** Append a primary input; returns its node id. *)

val add_const : ?name:string -> t -> bool -> int
(** Constant-0 or constant-1 node; returns its node id. *)

val add_gate : ?name:string -> t -> Gate.kind -> int array -> int
(** Fanins must be existing live node ids. Arity is checked. *)

val mark_output : ?name:string -> t -> int -> unit
(** Append a primary output designating node [id]. *)

(** {1 Observation} *)

val size : t -> int
(** Upper bound on node ids (tombstones included). *)

val is_alive : t -> int -> bool
(** False for tombstoned (deleted) ids. *)

val kind : t -> int -> Gate.kind
(** The node's gate kind ({!Gate.Input} and the constants included). *)

val fanins : t -> int -> int array
(** The returned array must not be mutated. *)

val fanin_count : t -> int -> int

val node_name : t -> int -> string option
(** The optional symbolic name the node was created with. *)

val inputs : t -> int array
(** Live primary inputs, in declaration order. Fresh array. *)

val outputs : t -> int array
(** Primary-output node ids, in declaration order. Fresh array. *)

val output_names : t -> string array
(** One entry per output, [""] where unnamed; same order as {!outputs}. *)

val num_inputs : t -> int
val num_outputs : t -> int

val num_live_nodes : t -> int
(** Inputs, constants and gates that are not tombstoned. *)

val num_gates : t -> int
(** Live nodes that are neither inputs nor constants. *)

val two_input_gate_count : t -> int
(** Equivalent 2-input gate count (k-input gate = k-1; inverters 0). *)

val fanouts : t -> int -> int list
(** Gate ids reading this node (each listed once per reading gate pin). *)

val fanout_degree : t -> int -> int
(** Number of gate pins reading this node (primary outputs not counted). *)

val is_output : t -> int -> bool
(** Does any primary output designate this node? *)

val iter_live : t -> (int -> unit) -> unit
(** Apply to every live node id in increasing id order. *)

val topo_order : t -> int array
(** Live nodes sorted inputs-to-outputs (fanins before fanouts). Raises
    [Failure] on a combinational cycle. *)

(** {1 Mutation} *)

val set_kind : t -> int -> Gate.kind -> unit
(** Change a gate's kind; the new kind must accept the current arity. *)

val set_fanins : t -> int -> int array -> unit
(** Rewire a gate's fanins; the new arity must suit the current kind. *)

val replace_node : t -> int -> Gate.kind -> int array -> unit
(** Atomically rewrite a node's kind and fanins (arity checked against the
    new kind). The node keeps its id, name and fanouts. *)

val retarget : t -> from_:int -> to_:int -> unit
(** Replace every use of node [from_] (gate fanins and primary outputs) by
    [to_]. [from_] itself is left in place (possibly dangling). *)

val delete : t -> int -> unit
(** Tombstone a node. Raises [Invalid_argument] if it still has fanouts or is
    a primary output. *)

val sweep : t -> int
(** Delete gates (not inputs) unreachable backwards from the outputs; returns
    the number of nodes removed. *)

(** {1 Copying} *)

val copy : t -> t
(** Deep copy; node ids are preserved (tombstones included). *)

val overwrite : t -> with_:t -> unit
(** Replace the whole contents of a circuit with (a copy of) another's.
    Existing references to the first circuit observe the new state. Used to
    commit or roll back speculative rewrites. *)

val compact : t -> t * int array
(** Fresh circuit with dense ids in topological order. The returned array maps
    old ids to new ids ([-1] for dead nodes). *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: inputs, outputs, gates, equivalent 2-input gates. *)
