(** ISCAS-style [.bench] netlist format.

    Grammar (comments start with [#]):
    {v
    INPUT(name)
    OUTPUT(name)
    name = KIND(name, name, ...)
    v}
    Supported kinds: AND, OR, NAND, NOR, NOT/INV, BUF/BUFF, XOR, XNOR,
    CONST0/GND, CONST1/VDD. Definitions may appear in any order. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

type error = {
  line : int;  (** 1-based line number; 0 for file-level (IO) errors. *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit
(** ["line N: message"], or just the message when [line = 0]. *)

val error_to_string : error -> string

val parse : ?name:string -> string -> (Circuit.t, error) result
(** Never raises on malformed input: syntax errors, duplicate or undefined
    signals and combinational cycles all come back as [Error]. *)

val parse_file : string -> (Circuit.t, error) result
(** {!parse} on a file's contents; IO failures become [Error] with
    [line = 0]. The circuit is named after the file's basename. *)

val of_string : ?name:string -> string -> Circuit.t
(** Raising variant of {!parse}: raises {!Parse_error}. *)

val to_string : Circuit.t -> string

val read_file : string -> Circuit.t
(** Raising variant of {!parse_file}: raises {!Parse_error} or
    [Sys_error]. *)

val write_file : string -> Circuit.t -> unit
