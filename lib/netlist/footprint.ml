(* Growable node-id bitset + transitive-fanout marking for the incremental
   resynthesis engine. Bytes-backed: dirty checks are the per-root hot path
   of a pass, so membership must stay a single bounds-checked load. *)

type set = {
  mutable bits : Bytes.t;
  mutable card : int;
}

let create ?(all = false) n =
  let n = max 1 n in
  { bits = Bytes.make n (if all then '\001' else '\000'); card = (if all then n else 0) }

let mem s id = id >= 0 && id < Bytes.length s.bits && Bytes.unsafe_get s.bits id = '\001'

let grow s id =
  let len = Bytes.length s.bits in
  if id >= len then begin
    let bits = Bytes.make (max (id + 1) (2 * len)) '\000' in
    Bytes.blit s.bits 0 bits 0 len;
    s.bits <- bits
  end

let add s id =
  if id < 0 then invalid_arg "Footprint.add: negative id";
  grow s id;
  if Bytes.unsafe_get s.bits id = '\000' then begin
    Bytes.unsafe_set s.bits id '\001';
    s.card <- s.card + 1
  end

let remove s id =
  if mem s id then begin
    Bytes.unsafe_set s.bits id '\000';
    s.card <- s.card - 1
  end

let count s = s.card

let clear s =
  if s.card > 0 then Bytes.fill s.bits 0 (Bytes.length s.bits) '\000';
  s.card <- 0

(* Eight ids per comparison: the one-byte-per-id layout means a 64-bit load
   tests eight memberships at once, and the commit scheduler calls this on
   every (queued splice, touched root) probe. *)
let intersects a b =
  a.card > 0 && b.card > 0
  &&
  let n = min (Bytes.length a.bits) (Bytes.length b.bits) in
  let words = n / 8 in
  let hit = ref false in
  let i = ref 0 in
  while (not !hit) && !i < words do
    let w = Int64.logand (Bytes.get_int64_ne a.bits (!i * 8)) (Bytes.get_int64_ne b.bits (!i * 8)) in
    if w <> 0L then hit := true else incr i
  done;
  let j = ref (words * 8) in
  while (not !hit) && !j < n do
    if Bytes.unsafe_get a.bits !j = '\001' && Bytes.unsafe_get b.bits !j = '\001' then
      hit := true
    else incr j
  done;
  !hit

let union_into dst src =
  if src.card > 0 then begin
    let n = Bytes.length src.bits in
    grow dst (n - 1);
    for i = 0 to n - 1 do
      if Bytes.unsafe_get src.bits i = '\001' && Bytes.unsafe_get dst.bits i = '\000'
      then begin
        Bytes.unsafe_set dst.bits i '\001';
        dst.card <- dst.card + 1
      end
    done
  end

(* The visited table is private to the call: the destination set cannot
   double as one, because a node already dirty from an earlier splice must
   not cut off traversal into its (possibly still clean) fanout cone. *)
let mark_fanout_cone ?on_add c s seeds =
  let n = Circuit.size c in
  let visited = Bytes.make n '\000' in
  let added = ref 0 in
  let stack = ref [] in
  let push id =
    if
      id >= 0 && id < n
      && Bytes.unsafe_get visited id = '\000'
      && Circuit.is_alive c id
    then begin
      Bytes.unsafe_set visited id '\001';
      stack := id :: !stack
    end
  in
  List.iter push seeds;
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | id :: rest ->
      stack := rest;
      if not (mem s id) then begin
        incr added;
        add s id;
        match on_add with None -> () | Some f -> f id
      end;
      List.iter push (Circuit.fanouts c id)
  done;
  !added

(* Byte-at-a-time member iteration, skipping empty 8-byte words. Used by
   the worklist's per-pass queue rebuild, which scans the whole dirty set
   once per pass — cheap next to the O(size) topological sort the pass
   already pays for. *)
let iter f s =
  if s.card > 0 then begin
    let n = Bytes.length s.bits in
    let words = n / 8 in
    for w = 0 to words - 1 do
      if Bytes.get_int64_ne s.bits (w * 8) <> 0L then
        for i = w * 8 to (w * 8) + 7 do
          if Bytes.unsafe_get s.bits i = '\001' then f i
        done
    done;
    for i = words * 8 to n - 1 do
      if Bytes.unsafe_get s.bits i = '\001' then f i
    done
  end

(* Ordered worklist view (DESIGN.md §17). The heap keys on the node's
   position in the *current pass's* topological order, not on its id:
   although ids are allocated in topological order at construction time,
   splices retarget the replaced root's readers (small ids) onto fresh
   nodes (large ids), so after the first splice id order and topological
   order disagree and popping by id could evaluate a root downstream of a
   same-pass splice — an order the scan walk can never produce. The engine
   hands {!Worklist.start_pass} the id->position table of the pass's
   topological sort; the queue is rebuilt from the dirty set under that
   keying, and ids without a position (freshly spliced mid-pass) or at or
   below the pass cursor (downstream of the walk position) simply stay
   dirty until the next rebuild, mirroring a walk that never backs up. *)
module Worklist = struct
  type t = {
    fp : set;  (* dirty membership, shared with the engine's queries *)
    queued : set;  (* ids in [heap] this pass *)
    track : bool;  (* false: pure set wrapper, no ordering maintained *)
    mutable pos : int array;  (* id -> topo position this pass; -1 = none *)
    mutable heap : int array;  (* ids, max-heap ordered by [pos] *)
    mutable hlen : int;
    mutable cursor : int;  (* position of last pop; max_int at pass start *)
  }

  let fp t = t.fp

  let heap_push t id =
    if t.hlen = Array.length t.heap then begin
      let heap = Array.make (max 16 (2 * t.hlen)) 0 in
      Array.blit t.heap 0 heap 0 t.hlen;
      t.heap <- heap
    end;
    let pos = t.pos in
    let i = ref t.hlen in
    t.hlen <- t.hlen + 1;
    t.heap.(!i) <- id;
    let continue_ = ref true in
    while !continue_ && !i > 0 do
      let p = (!i - 1) / 2 in
      if pos.(t.heap.(p)) < pos.(t.heap.(!i)) then begin
        let tmp = t.heap.(p) in
        t.heap.(p) <- t.heap.(!i);
        t.heap.(!i) <- tmp;
        i := p
      end
      else continue_ := false
    done

  let heap_pop t =
    let pos = t.pos in
    let top = t.heap.(0) in
    t.hlen <- t.hlen - 1;
    if t.hlen > 0 then begin
      t.heap.(0) <- t.heap.(t.hlen);
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < t.hlen && pos.(t.heap.(l)) > pos.(t.heap.(!m)) then m := l;
        if r < t.hlen && pos.(t.heap.(r)) > pos.(t.heap.(!m)) then m := r;
        if !m <> !i then begin
          let tmp = t.heap.(!m) in
          t.heap.(!m) <- t.heap.(!i);
          t.heap.(!i) <- tmp;
          i := !m
        end
        else continue_ := false
      done
    end;
    top

  let create ?(all = false) ?(track = true) n =
    {
      fp = create ~all n;
      queued = create 1;
      track;
      pos = [||];
      heap = [||];
      hlen = 0;
      cursor = max_int;
    }

  (* Queue [id] for this pass iff the walk has not yet reached its
     topological position. Ids with no position exist only since a
     mid-pass splice: the scan walk (whose order was fixed at pass start)
     would not visit them either — they stay dirty and enter the queue at
     the next rebuild. *)
  let enqueue t id =
    if
      t.track
      && id < Array.length t.pos
      && t.pos.(id) >= 0
      && t.pos.(id) < t.cursor
      && not (mem t.queued id)
    then begin
      add t.queued id;
      heap_push t id
    end

  let push t id =
    add t.fp id;
    enqueue t id

  let mark_fanout_cone c t seeds =
    mark_fanout_cone ~on_add:(enqueue t) c t.fp seeds

  let start_pass t ~pos =
    if t.track then begin
      t.pos <- pos;
      t.cursor <- max_int;
      clear t.queued;
      t.hlen <- 0;
      iter (fun id -> enqueue t id) t.fp
    end

  let pop t =
    if t.hlen = 0 then None
    else begin
      let id = heap_pop t in
      remove t.queued id;
      t.cursor <- t.pos.(id);
      Some id
    end
end
