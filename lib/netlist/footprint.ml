(* Growable node-id bitset + transitive-fanout marking for the incremental
   resynthesis engine. Bytes-backed: dirty checks are the per-root hot path
   of a pass, so membership must stay a single bounds-checked load. *)

type set = {
  mutable bits : Bytes.t;
  mutable card : int;
}

let create ?(all = false) n =
  let n = max 1 n in
  { bits = Bytes.make n (if all then '\001' else '\000'); card = (if all then n else 0) }

let mem s id = id >= 0 && id < Bytes.length s.bits && Bytes.unsafe_get s.bits id = '\001'

let grow s id =
  let len = Bytes.length s.bits in
  if id >= len then begin
    let bits = Bytes.make (max (id + 1) (2 * len)) '\000' in
    Bytes.blit s.bits 0 bits 0 len;
    s.bits <- bits
  end

let add s id =
  if id < 0 then invalid_arg "Footprint.add: negative id";
  grow s id;
  if Bytes.unsafe_get s.bits id = '\000' then begin
    Bytes.unsafe_set s.bits id '\001';
    s.card <- s.card + 1
  end

let remove s id =
  if mem s id then begin
    Bytes.unsafe_set s.bits id '\000';
    s.card <- s.card - 1
  end

let count s = s.card

(* The visited table is private to the call: the destination set cannot
   double as one, because a node already dirty from an earlier splice must
   not cut off traversal into its (possibly still clean) fanout cone. *)
let mark_fanout_cone c s seeds =
  let n = Circuit.size c in
  let visited = Bytes.make n '\000' in
  let added = ref 0 in
  let stack = ref [] in
  let push id =
    if
      id >= 0 && id < n
      && Bytes.unsafe_get visited id = '\000'
      && Circuit.is_alive c id
    then begin
      Bytes.unsafe_set visited id '\001';
      stack := id :: !stack
    end
  in
  List.iter push seeds;
  let continue_ = ref true in
  while !continue_ do
    match !stack with
    | [] -> continue_ := false
    | id :: rest ->
      stack := rest;
      if not (mem s id) then incr added;
      add s id;
      List.iter push (Circuit.fanouts c id)
  done;
  !added
