(** Gate kinds for gate-level combinational netlists.

    Arities: [Input], [Const0], [Const1] take no fanins; [Buf] and [Not] take
    exactly one; the remaining kinds take one or more (k-input gates are
    allowed everywhere and cost k-1 equivalent 2-input gates). *)

type kind =
  | Input
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor

val equal : kind -> kind -> bool
(** Structural equality (same constructor). *)

val to_string : kind -> string
(** Upper-case mnemonic, e.g. ["NAND"]; also used by the [.bench] writer. *)

val of_string : string -> kind option
(** Case-insensitive parse of [to_string] mnemonics ([BUFF] accepted). *)

val pp : Format.formatter -> kind -> unit
(** Prints {!to_string}. *)

val min_arity : kind -> int
(** Smallest legal fanin count ([0] for inputs and constants). *)

val max_arity : kind -> int option
(** [None] means unbounded. *)

val controlling : kind -> bool option
(** Controlling input value of the gate, if it has one ([And]/[Nand] -> 0,
    [Or]/[Nor] -> 1, others [None]). *)

val inverting : kind -> bool
(** Whether the output inverts the dominant phase ([Not], [Nand], [Nor],
    [Xnor]). For [Xor]/[Xnor] this is the parity contribution of the gate. *)

val eval : kind -> bool array -> bool
(** Evaluate on concrete inputs. Raises [Invalid_argument] on arity
    violations. *)

val eval_word : kind -> int64 array -> int64
(** Bit-parallel evaluation over 64 patterns at once. *)

val eval_word_on : kind -> int64 array -> int array -> int64
(** [eval_word_on k values fanins] is
    [eval_word k [| values.(fanins.(0)); ... |]] without materialising the
    argument array — the allocation-free form used by the bit-parallel
    subcircuit extractor's inner loop. *)

val two_input_equivalents : kind -> int -> int
(** [two_input_equivalents k arity] is the equivalent 2-input gate count of a
    gate of kind [k] with [arity] fanins: [arity - 1] for logic gates, [0] for
    inverters, buffers, constants and inputs. *)
