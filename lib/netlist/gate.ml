type kind =
  | Input
  | Const0
  | Const1
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Xnor

let equal (a : kind) (b : kind) = a = b

let to_string = function
  | Input -> "INPUT"
  | Const0 -> "CONST0"
  | Const1 -> "CONST1"
  | Buf -> "BUF"
  | Not -> "NOT"
  | And -> "AND"
  | Or -> "OR"
  | Nand -> "NAND"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"

let of_string s =
  match String.uppercase_ascii s with
  | "INPUT" -> Some Input
  | "CONST0" | "GND" | "ZERO" -> Some Const0
  | "CONST1" | "VDD" | "ONE" -> Some Const1
  | "BUF" | "BUFF" -> Some Buf
  | "NOT" | "INV" -> Some Not
  | "AND" -> Some And
  | "OR" -> Some Or
  | "NAND" -> Some Nand
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | _ -> None

let pp ppf k = Format.pp_print_string ppf (to_string k)

let min_arity = function
  | Input | Const0 | Const1 -> 0
  | Buf | Not -> 1
  | And | Or | Nand | Nor | Xor | Xnor -> 1

let max_arity = function
  | Input | Const0 | Const1 -> Some 0
  | Buf | Not -> Some 1
  | And | Or | Nand | Nor | Xor | Xnor -> None

let controlling = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Input | Const0 | Const1 | Buf | Not | Xor | Xnor -> None

let inverting = function
  | Not | Nand | Nor | Xnor -> true
  | Input | Const0 | Const1 | Buf | And | Or | Xor -> false

let check_arity k n =
  if n < min_arity k then
    invalid_arg
      (Printf.sprintf "Gate.eval: %s needs >= %d fanins, got %d" (to_string k)
         (min_arity k) n);
  match max_arity k with
  | Some m when n > m ->
    invalid_arg
      (Printf.sprintf "Gate.eval: %s takes <= %d fanins, got %d" (to_string k)
         m n)
  | Some _ | None -> ()

let eval k inputs =
  let n = Array.length inputs in
  check_arity k n;
  match k with
  | Input -> invalid_arg "Gate.eval: Input has no logic function"
  | Const0 -> false
  | Const1 -> true
  | Buf -> inputs.(0)
  | Not -> not inputs.(0)
  | And -> Array.for_all Fun.id inputs
  | Nand -> not (Array.for_all Fun.id inputs)
  | Or -> Array.exists Fun.id inputs
  | Nor -> not (Array.exists Fun.id inputs)
  | Xor -> Array.fold_left (fun acc b -> if b then not acc else acc) false inputs
  | Xnor ->
    not (Array.fold_left (fun acc b -> if b then not acc else acc) false inputs)

let fold_word f init inputs =
  let acc = ref init in
  for i = 0 to Array.length inputs - 1 do
    acc := f !acc inputs.(i)
  done;
  !acc

let eval_word k inputs =
  let n = Array.length inputs in
  check_arity k n;
  match k with
  | Input -> invalid_arg "Gate.eval_word: Input has no logic function"
  | Const0 -> 0L
  | Const1 -> -1L
  | Buf -> inputs.(0)
  | Not -> Int64.lognot inputs.(0)
  | And -> fold_word Int64.logand (-1L) inputs
  | Nand -> Int64.lognot (fold_word Int64.logand (-1L) inputs)
  | Or -> fold_word Int64.logor 0L inputs
  | Nor -> Int64.lognot (fold_word Int64.logor 0L inputs)
  | Xor -> fold_word Int64.logxor 0L inputs
  | Xnor -> Int64.lognot (fold_word Int64.logxor 0L inputs)

let fold_word_on f init values fanins =
  let acc = ref init in
  for i = 0 to Array.length fanins - 1 do
    acc := f !acc values.(fanins.(i))
  done;
  !acc

let eval_word_on k values fanins =
  let n = Array.length fanins in
  check_arity k n;
  match k with
  | Input -> invalid_arg "Gate.eval_word_on: Input has no logic function"
  | Const0 -> 0L
  | Const1 -> -1L
  | Buf -> values.(fanins.(0))
  | Not -> Int64.lognot values.(fanins.(0))
  | And -> fold_word_on Int64.logand (-1L) values fanins
  | Nand -> Int64.lognot (fold_word_on Int64.logand (-1L) values fanins)
  | Or -> fold_word_on Int64.logor 0L values fanins
  | Nor -> Int64.lognot (fold_word_on Int64.logor 0L values fanins)
  | Xor -> fold_word_on Int64.logxor 0L values fanins
  | Xnor -> Int64.lognot (fold_word_on Int64.logxor 0L values fanins)

let two_input_equivalents k arity =
  match k with
  | Input | Const0 | Const1 | Buf | Not -> 0
  | And | Or | Nand | Nor | Xor | Xnor -> max 0 (arity - 1)
