exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

type stmt =
  | S_input of string
  | S_output of string
  | S_def of string * Gate.kind * string list

let strip s = String.trim s

let split_args s =
  String.split_on_char ',' s |> List.map strip |> List.filter (fun x -> x <> "")

(* "KIND(a, b, c)" -> (KIND, [a;b;c]) *)
let parse_rhs lineno s =
  match String.index_opt s '(' with
  | None -> fail lineno "expected KIND(args)"
  | Some i ->
    let kind_str = strip (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let j =
      match String.rindex_opt rest ')' with
      | None -> fail lineno "missing closing parenthesis"
      | Some j -> j
    in
    let args = split_args (String.sub rest 0 j) in
    let kind =
      match Gate.of_string kind_str with
      | Some k -> k
      | None -> fail lineno (Printf.sprintf "unknown gate kind %S" kind_str)
    in
    (kind, args)

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  if line = "" then None
  else
    let upper = String.uppercase_ascii line in
    let directive prefix =
      if String.length upper >= String.length prefix
         && String.sub upper 0 (String.length prefix) = prefix
      then begin
        let rest = String.sub line (String.length prefix) (String.length line - String.length prefix) in
        let rest = strip rest in
        if String.length rest < 2 || rest.[0] <> '(' || rest.[String.length rest - 1] <> ')'
        then fail lineno "expected (name)"
        else Some (strip (String.sub rest 1 (String.length rest - 2)))
      end
      else None
    in
    match directive "INPUT" with
    | Some n -> Some (S_input n)
    | None -> (
      match directive "OUTPUT" with
      | Some n -> Some (S_output n)
      | None -> (
        match String.index_opt line '=' with
        | None -> fail lineno "expected INPUT(...), OUTPUT(...) or name = KIND(...)"
        | Some i ->
          let lhs = strip (String.sub line 0 i) in
          if lhs = "" then fail lineno "empty signal name";
          let rhs = strip (String.sub line (i + 1) (String.length line - i - 1)) in
          let kind, args = parse_rhs lineno rhs in
          Some (S_def (lhs, kind, args))))

let of_string ?(name = "bench") text =
  let stmts =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter_map (fun (i, l) ->
           Option.map (fun s -> (i, s)) (parse_line i l))
  in
  let c = Circuit.create ~name () in
  let defs : (string, int * Gate.kind * string list) Hashtbl.t = Hashtbl.create 97 in
  let ids : (string, int) Hashtbl.t = Hashtbl.create 97 in
  let outputs = ref [] in
  List.iter
    (fun (lineno, s) ->
      match s with
      | S_input n ->
        if Hashtbl.mem ids n then fail lineno (Printf.sprintf "duplicate signal %S" n);
        Hashtbl.add ids n (Circuit.add_input ~name:n c)
      | S_output n -> outputs := (lineno, n) :: !outputs
      | S_def (n, k, args) ->
        if Hashtbl.mem ids n || Hashtbl.mem defs n then
          fail lineno (Printf.sprintf "duplicate signal %S" n);
        Hashtbl.add defs n (lineno, k, args))
    stmts;
  let visiting = Hashtbl.create 16 in
  let rec resolve lineno n =
    match Hashtbl.find_opt ids n with
    | Some id -> id
    | None -> (
      match Hashtbl.find_opt defs n with
      | None -> fail lineno (Printf.sprintf "undefined signal %S" n)
      | Some (dl, k, args) ->
        if Hashtbl.mem visiting n then fail dl (Printf.sprintf "cycle through %S" n);
        Hashtbl.add visiting n ();
        let fanins = Array.of_list (List.map (resolve dl) args) in
        Hashtbl.remove visiting n;
        let id =
          match k, Array.length fanins with
          | Gate.Const0, 0 -> Circuit.add_const ~name:n c false
          | Gate.Const1, 0 -> Circuit.add_const ~name:n c true
          | Gate.Input, _ -> fail dl "INPUT used as a gate kind"
          | k, _ -> (
            try Circuit.add_gate ~name:n c k fanins
            with Invalid_argument m -> fail dl m)
        in
        Hashtbl.add ids n id;
        id)
  in
  Hashtbl.iter (fun n (dl, _, _) -> ignore (resolve dl n)) defs;
  List.iter
    (fun (lineno, n) -> Circuit.mark_output ~name:n c (resolve lineno n))
    (List.rev !outputs);
  c

let node_names c =
  let names = Array.make (Circuit.size c) "" in
  let used = Hashtbl.create 97 in
  Circuit.iter_live c (fun id ->
      let base =
        match Circuit.node_name c id with
        | Some s when s <> "" -> s
        | Some _ | None -> Printf.sprintf "n%d" id
      in
      let unique =
        if not (Hashtbl.mem used base) then base
        else begin
          let rec try_suffix k =
            let cand = Printf.sprintf "%s_%d" base k in
            if Hashtbl.mem used cand then try_suffix (k + 1) else cand
          in
          try_suffix 2
        end
      in
      Hashtbl.add used unique ();
      names.(id) <- unique);
  names

let to_string c =
  let names = node_names c in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.name c));
  Array.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" names.(id)))
    (Circuit.inputs c);
  Array.iter
    (fun id -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" names.(id)))
    (Circuit.outputs c);
  let order = Circuit.topo_order c in
  Array.iter
    (fun id ->
      match Circuit.kind c id with
      | Gate.Input -> ()
      | Gate.Const0 -> Buffer.add_string buf (Printf.sprintf "%s = CONST0()\n" names.(id))
      | Gate.Const1 -> Buffer.add_string buf (Printf.sprintf "%s = CONST1()\n" names.(id))
      | k ->
        let args =
          Circuit.fanins c id |> Array.to_list
          |> List.map (fun f -> names.(f))
          |> String.concat ", "
        in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" names.(id) (Gate.to_string k) args))
    order;
  Buffer.contents buf

type error = {
  line : int;
  message : string;
}

let pp_error ppf e =
  if e.line > 0 then Format.fprintf ppf "line %d: %s" e.line e.message
  else Format.pp_print_string ppf e.message

let error_to_string e = Format.asprintf "%a" pp_error e

let parse ?name text =
  match of_string ?name text with
  | c -> Ok c
  | exception Parse_error (line, message) -> Error { line; message }

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text ->
    parse ~name:(Filename.remove_extension (Filename.basename path)) text
  | exception Sys_error message -> Error { line = 0; message }

let read_file path =
  match parse_file path with
  | Ok c -> c
  | Error { line; message } ->
    if line > 0 then raise (Parse_error (line, message))
    else raise (Sys_error message)

let write_file path c =
  let oc = open_out_bin path in
  output_string oc (to_string c);
  close_out oc
