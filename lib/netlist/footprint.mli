(** Dirty-region bookkeeping for incremental resynthesis (DESIGN.md §13,
    §17).

    A {!set} is a growable bitset over node ids: the engine keeps one per
    optimisation run recording which roots must be re-enumerated, and a
    transient one per pass recording the fanout closure of splices that are
    decided but not yet applied. Ids beyond the current capacity are simply
    absent; {!add} grows the set on demand, so the same set survives the
    circuit growing across splices.

    {!Worklist} is an ordered view over a set: it additionally keeps the
    dirty roots in a max-heap keyed on their position in the current pass's
    topological order, so the engine can pop exactly the dirty roots in the
    full walk's outputs-towards-inputs order instead of scanning the whole
    circuit. *)

type set

val create : ?all:bool -> int -> set
(** [create n] is an empty set with initial capacity [n] (clamped to at
    least 1). [~all:true] starts with every id in [0 .. n-1] present — the
    "first pass sees everything dirty" state. *)

val mem : set -> int -> bool
(** [mem s id] — ids outside the current capacity (including negatives)
    are never members. *)

val add : set -> int -> unit
(** Insert [id], growing the backing store as needed. Raises
    [Invalid_argument] on a negative id. *)

val remove : set -> int -> unit
(** Delete [id] if present; no-op otherwise. *)

val count : set -> int
(** Number of ids currently in the set. *)

val clear : set -> unit
(** Empty the set, keeping the backing store for reuse — the per-flush
    reset of the engine's pending-footprint scratch must not reallocate a
    circuit-sized buffer every few splices. *)

val intersects : set -> set -> bool
(** [intersects a b] is [true] iff some id is a member of both. Word-level
    (eight ids per comparison); the commit scheduler's conflict test
    between queued splice footprints. *)

val union_into : set -> set -> unit
(** [union_into dst src] inserts every member of [src] into [dst], growing
    [dst] as needed. [src] is unchanged. *)

val mark_fanout_cone : ?on_add:(int -> unit) -> Circuit.t -> set -> int list -> int
(** [mark_fanout_cone c s seeds] inserts every live seed and every live
    node transitively reachable from a seed through fanout edges — the
    downstream region whose enumeration, removable-cost, path-label or
    don't-care analysis could observe a change at the seeds. Dead seeds
    are skipped. Returns the number of nodes newly added to [s]; [on_add]
    (if given) is called once per newly added id, in traversal order.

    The traversal keeps its own visited table: membership in [s] does not
    stop it, so marking is correct even when parts of the cone are already
    present. Forces the circuit's lazy fanout cache — callers must mark
    {e before} mutating the netlist (footprints of a splice are computed
    on the pre-splice circuit, then the fresh nodes are marked after). *)

(** Ordered worklist view over a dirty set (DESIGN.md §17).

    The heap is keyed on each node's position in the {e current pass's}
    topological order, not on its id. Ids are allocated topologically at
    construction time, but a splice retargets the replaced root's readers
    (small ids) onto fresh nodes (large ids), so after the first splice the
    two orders disagree — and popping by id could evaluate a root
    downstream of a same-pass splice, an order the scan walk can never
    produce. {!Worklist.start_pass} therefore takes the id->position table
    of the pass's topological sort and rebuilds the queue from the dirty
    set under that keying; the rebuild is one scan of the bitset, cheap
    next to the O(size) sort the pass already performs.

    Within a pass, {!Worklist.pop} yields strictly descending positions.
    Ids dirtied at or below the pass cursor's position (downstream of the
    walk), or with no position at all (spliced in mid-pass), are not
    queued: they stay dirty in the set and enter the queue at the next
    rebuild, exactly as the full walk leaves them for its next pass. Each
    id is queued at most once per pass; an id popped but left dirty (dead
    or unreachable roots are skipped without processing) is not revisited
    until the next pass. *)
module Worklist : sig
  type t

  val create : ?all:bool -> ?track:bool -> int -> t
  (** [create n] wraps a fresh [create n] set; the queue starts empty and
      is first populated by {!start_pass}. [~all:true] seeds the set with
      every id in [0 .. n-1]. [~track:false] degrades the worklist to a
      plain set wrapper ({!push} and {!mark_fanout_cone} still update the
      set, but nothing is ever queued and {!pop} always returns [None]) —
      the engine's escape hatch for running the scan walk over the same
      bookkeeping. *)

  val fp : t -> set
  (** The underlying dirty set (shared, not a copy): membership queries and
      {!remove} go straight to it. *)

  val push : t -> int -> unit
  (** Insert [id] into the set, and queue it for the current pass if the
      walk has not yet reached its position (no-op on the queue if already
      waiting, unplaced, or behind the cursor). *)

  val mark_fanout_cone : Circuit.t -> t -> int list -> int
  (** As the set-level {!mark_fanout_cone}, additionally queueing every
      newly dirtied id that the current pass can still reach. *)

  val start_pass : t -> pos:int array -> unit
  (** Begin a pass: [pos] maps each node id to its position in the pass's
      topological order ([-1] for ids without one, e.g. dead nodes; ids
      beyond its length are treated the same). Resets the cursor and
      rebuilds the queue from the dirty set. The array is borrowed until
      the next [start_pass] and must not be mutated meanwhile. *)

  val pop : t -> int option
  (** Queued id with the greatest topological position below the pass
      cursor, or [None] when the pass has drained. Sets the cursor, so
      subsequent same-pass pushes at or downstream of the returned id are
      left for the next pass. *)
end
