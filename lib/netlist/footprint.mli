(** Dirty-region bookkeeping for incremental resynthesis (DESIGN.md §13).

    A {!set} is a growable bitset over node ids: the engine keeps one per
    optimisation run recording which roots must be re-enumerated, and a
    transient one per pass recording the fanout closure of splices that are
    decided but not yet applied. Ids beyond the current capacity are simply
    absent; {!add} grows the set on demand, so the same set survives the
    circuit growing across splices. *)

type set

val create : ?all:bool -> int -> set
(** [create n] is an empty set with initial capacity [n] (clamped to at
    least 1). [~all:true] starts with every id in [0 .. n-1] present — the
    "first pass sees everything dirty" state. *)

val mem : set -> int -> bool
(** [mem s id] — ids outside the current capacity (including negatives)
    are never members. *)

val add : set -> int -> unit
(** Insert [id], growing the backing store as needed. Raises
    [Invalid_argument] on a negative id. *)

val remove : set -> int -> unit
(** Delete [id] if present; no-op otherwise. *)

val count : set -> int
(** Number of ids currently in the set. *)

val mark_fanout_cone : Circuit.t -> set -> int list -> int
(** [mark_fanout_cone c s seeds] inserts every live seed and every live
    node transitively reachable from a seed through fanout edges — the
    downstream region whose enumeration, removable-cost, path-label or
    don't-care analysis could observe a change at the seeds. Dead seeds
    are skipped. Returns the number of nodes newly added to [s].

    The traversal keeps its own visited table: membership in [s] does not
    stop it, so marking is correct even when parts of the cone are already
    present. Forces the circuit's lazy fanout cache — callers must mark
    {e before} mutating the netlist (footprints of a splice are computed
    on the pre-splice circuit, then the fresh nodes are marked after). *)
