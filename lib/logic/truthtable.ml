(* Word-backed truth tables.

   The table of an n-input function is 2^n bits packed into an array of
   64-bit words: bit [m land 63] of word [m lsr 6] is the function value on
   minterm [m]. Every kernel below works a word at a time (SWAR), so the
   per-minterm cost of the resynthesis inner loop drops by up to 64x over a
   byte-and-bit representation.

   Invariant: for n < 6 the single word's bits above 2^n are zero
   ([norm] enforces this after any whole-word operation), so [equal],
   [compare] and [hash] can look at raw words. *)

type t = { n : int; words : int64 array }

let max_arity = 16

let check_arity n =
  if n < 0 || n > max_arity then
    invalid_arg (Printf.sprintf "Truthtable: arity %d out of [0, %d]" n max_arity)

let nwords n = if n <= 6 then 1 else 1 lsl (n - 6)

(* Live bits of the (single) word when n < 6; all-ones otherwise. *)
let tail_mask n =
  if n >= 6 then -1L else Int64.sub (Int64.shift_left 1L (1 lsl n)) 1L

(* Standard simulation patterns: bit [j] of [sim_patterns.(p)] is bit [p] of
   [j] — the value variable "index bit p" takes across one 64-minterm block.
   These are the classic bit-parallel input words of 64-way logic
   simulation, and double as the delta-swap masks below. *)
let sim_patterns =
  [|
    0xAAAAAAAAAAAAAAAAL;
    0xCCCCCCCCCCCCCCCCL;
    0xF0F0F0F0F0F0F0F0L;
    0xFF00FF00FF00FF00L;
    0xFFFF0000FFFF0000L;
    0xFFFFFFFF00000000L;
  |]

let sim_pattern p =
  if p < 0 || p > 5 then invalid_arg "Truthtable.sim_pattern: bit out of [0, 5]";
  sim_patterns.(p)

(* [period_masks.(p)]: bits whose in-word index has bit [p] {e clear} — the
   complement of [sim_patterns.(p)]. *)
let period_masks = Array.map Int64.lognot sim_patterns

let make n = { n; words = Array.make (nwords n) 0L }
let arity t = t.n
let size t = 1 lsl t.n

let norm t =
  if t.n < 6 then t.words.(0) <- Int64.logand t.words.(0) (tail_mask t.n);
  t

let get t m =
  if m < 0 || m >= size t then invalid_arg "Truthtable.get: minterm out of range";
  Int64.logand (Int64.shift_right_logical t.words.(m lsr 6) (m land 63)) 1L <> 0L

let set_mut t m v =
  let w = m lsr 6 in
  let bit = Int64.shift_left 1L (m land 63) in
  t.words.(w) <-
    (if v then Int64.logor t.words.(w) bit
     else Int64.logand t.words.(w) (Int64.lognot bit))

let create n f =
  check_arity n;
  let t = make n in
  for m = 0 to size t - 1 do
    if f m then set_mut t m true
  done;
  t

let set t m v =
  if m < 0 || m >= size t then invalid_arg "Truthtable.set: minterm out of range";
  let fresh = { n = t.n; words = Array.copy t.words } in
  set_mut fresh m v;
  fresh

let const n v =
  check_arity n;
  if v then { n; words = Array.make (nwords n) (tail_mask n) } else make n

let var n i =
  if i < 1 || i > n then invalid_arg "Truthtable.var: variable out of range";
  check_arity n;
  let t = make n in
  let p = n - i in
  if p < 6 then begin
    let patt = Int64.logand sim_patterns.(p) (tail_mask n) in
    Array.fill t.words 0 (Array.length t.words) patt
  end
  else begin
    let wb = p - 6 in
    for w = 0 to Array.length t.words - 1 do
      if w land (1 lsl wb) <> 0 then t.words.(w) <- -1L
    done
  end;
  t

let equal a b =
  a.n = b.n
  &&
  let rec go i = i < 0 || (Int64.equal a.words.(i) b.words.(i) && go (i - 1)) in
  go (Array.length a.words - 1)

let compare a b =
  let c = Stdlib.compare a.n b.n in
  if c <> 0 then c
  else begin
    let rec go i =
      if i >= Array.length a.words then 0
      else
        let c = Int64.unsigned_compare a.words.(i) b.words.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

(* Splitmix-style word mixer folded over the packed words — no intermediate
   string (or any other allocation) on the hashing path. *)
let hash t =
  let h = ref (Int64.of_int ((t.n * 0x9E3779B9) + 1)) in
  for i = 0 to Array.length t.words - 1 do
    let x = Int64.logxor !h t.words.(i) in
    let x = Int64.mul x 0xBF58476D1CE4E5B9L in
    h := Int64.logxor x (Int64.shift_right_logical x 29)
  done;
  Int64.to_int !h land max_int

let of_minterms n ms =
  check_arity n;
  let t = make n in
  List.iter
    (fun m ->
      if m < 0 || m >= size t then invalid_arg "Truthtable.of_minterms: out of range";
      set_mut t m true)
    ms;
  t

let of_words n words =
  check_arity n;
  if Array.length words <> nwords n then
    invalid_arg "Truthtable.of_words: wrong word count";
  norm { n; words = Array.copy words }

let words t = Array.copy t.words

(* Index (0-based) of the lowest set bit: the classic de Bruijn multiply
   (isolate with [x land -x], multiply, table-index on the top 6 bits). *)
let debruijn_table =
  [|
    0; 1; 2; 53; 3; 7; 54; 27; 4; 38; 41; 8; 34; 55; 48; 28; 62; 5; 39; 46;
    44; 42; 22; 9; 24; 35; 59; 56; 49; 18; 29; 11; 63; 52; 6; 26; 37; 40;
    33; 47; 61; 45; 43; 21; 23; 58; 17; 10; 51; 25; 36; 32; 60; 20; 57; 16;
    50; 31; 19; 15; 30; 14; 13; 12;
  |]

let lowest_bit x =
  debruijn_table.(Int64.to_int
                    (Int64.shift_right_logical
                       (Int64.mul (Int64.logand x (Int64.neg x)) 0x022FDD63CC95386DL)
                       58))

let popcount64 x =
  let x = Int64.sub x (Int64.logand (Int64.shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    Int64.add
      (Int64.logand x 0x3333333333333333L)
      (Int64.logand (Int64.shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = Int64.logand (Int64.add x (Int64.shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  Int64.to_int (Int64.shift_right_logical (Int64.mul x 0x0101010101010101L) 56)

(* Index of the highest set bit: smear it rightwards, then count. *)
let highest_bit x =
  let x = Int64.logor x (Int64.shift_right_logical x 1) in
  let x = Int64.logor x (Int64.shift_right_logical x 2) in
  let x = Int64.logor x (Int64.shift_right_logical x 4) in
  let x = Int64.logor x (Int64.shift_right_logical x 8) in
  let x = Int64.logor x (Int64.shift_right_logical x 16) in
  let x = Int64.logor x (Int64.shift_right_logical x 32) in
  popcount64 x - 1

let minterms t =
  let acc = ref [] in
  for w = Array.length t.words - 1 downto 0 do
    let base = w lsl 6 in
    let x = ref t.words.(w) in
    let local = ref [] in
    while not (Int64.equal !x 0L) do
      local := (base + lowest_bit !x) :: !local;
      x := Int64.logand !x (Int64.sub !x 1L)
    done;
    List.iter (fun m -> acc := m :: !acc) !local
  done;
  !acc

let popcount t =
  let k = ref 0 in
  for w = 0 to Array.length t.words - 1 do
    k := !k + popcount64 t.words.(w)
  done;
  !k

let is_const t =
  let full = tail_mask t.n in
  let rec scan i zero ones =
    if i < 0 then if zero then Some false else if ones then Some true else None
    else begin
      let w = t.words.(i) in
      let zero = zero && Int64.equal w 0L in
      let ones = ones && Int64.equal w full in
      if zero || ones then scan (i - 1) zero ones else None
    end
  in
  scan (Array.length t.words - 1) true true

let map2 f a b =
  if a.n <> b.n then invalid_arg "Truthtable: arity mismatch";
  let t = make a.n in
  for i = 0 to Array.length t.words - 1 do
    t.words.(i) <- f a.words.(i) b.words.(i)
  done;
  norm t

let lnot a =
  let t = make a.n in
  for i = 0 to Array.length t.words - 1 do
    t.words.(i) <- Int64.lognot a.words.(i)
  done;
  norm t

let land_ = map2 Int64.logand
let lor_ = map2 Int64.logor
let lxor_ = map2 Int64.logxor

(* Pack the bits of [x] whose in-word index has bit [b] clear (already
   masked to those positions) into the low 32 bits: repeated
   shift-or-mask doubling, one step per level between [2^b] and 32. *)
let compact_low x b =
  let x = ref x in
  let s = ref (1 lsl b) in
  let k = ref b in
  while !s < 32 do
    x :=
      Int64.logand
        (Int64.logor !x (Int64.shift_right_logical !x !s))
        period_masks.(!k + 1);
    s := !s lsl 1;
    incr k
  done;
  !x

let cofactor t ~var v =
  if var < 1 || var > t.n then invalid_arg "Truthtable.cofactor: variable out of range";
  let n' = t.n - 1 in
  let r = make n' in
  (* number of variables below x_var, i.e. the index-bit position fixed *)
  let b = t.n - var in
  if b >= 6 then begin
    (* The fixed bit selects whole words: gather every other 2^{b-6}-word
       block. In-word layout is untouched. *)
    let wb = b - 6 in
    let low = (1 lsl wb) - 1 in
    let sel = if v then 1 lsl wb else 0 in
    for rw = 0 to Array.length r.words - 1 do
      let sw = ((rw lsr wb) lsl (wb + 1)) lor sel lor (rw land low) in
      r.words.(rw) <- t.words.(sw)
    done
  end
  else begin
    (* The fixed bit lives inside each word: mask the kept 2^b-bit blocks
       and compact them into the low half; two source words feed one
       result word. *)
    let bsz = 1 lsl b in
    let half w =
      let x = if v then Int64.shift_right_logical w bsz else w in
      compact_low (Int64.logand x period_masks.(b)) b
    in
    if t.n <= 6 then r.words.(0) <- Int64.logand (half t.words.(0)) (tail_mask n')
    else
      for rw = 0 to Array.length r.words - 1 do
        r.words.(rw) <-
          Int64.logor
            (half t.words.(2 * rw))
            (Int64.shift_left (half t.words.((2 * rw) + 1)) 32)
      done
  end;
  r

let depends_on t i = not (equal (cofactor t ~var:i true) (cofactor t ~var:i false))

let support t =
  let acc = ref [] in
  for i = t.n downto 1 do
    if depends_on t i then acc := i :: !acc
  done;
  !acc

(* Exchange index-bit positions [a < b] of the packed table in place:
   afterwards bit [swap_ab m] holds what bit [m] held. Three regimes —
   both bits in-word (one delta swap per word), both selecting words
   (swap whole words), and mixed (delta swap across a word pair). *)
let swap_index_bits words a b =
  let nw = Array.length words in
  if b < 6 then begin
    let d = (1 lsl b) - (1 lsl a) in
    (* pair lows: in-word index has bit a set, bit b clear *)
    let m = Int64.logand sim_patterns.(a) period_masks.(b) in
    for w = 0 to nw - 1 do
      let x = words.(w) in
      let t = Int64.logand (Int64.logxor x (Int64.shift_right_logical x d)) m in
      words.(w) <- Int64.logxor (Int64.logxor x t) (Int64.shift_left t d)
    done
  end
  else if a >= 6 then begin
    let ab = 1 lsl (a - 6) and bb = 1 lsl (b - 6) in
    for w = 0 to nw - 1 do
      if w land ab <> 0 && w land bb = 0 then begin
        let w' = w - ab + bb in
        let tmp = words.(w) in
        words.(w) <- words.(w');
        words.(w') <- tmp
      end
    done
  end
  else begin
    let d = 1 lsl a in
    let stride = 1 lsl (b - 6) in
    for w0 = 0 to nw - 1 do
      if w0 land stride = 0 then begin
        let w1 = w0 lor stride in
        let x0 = words.(w0) and x1 = words.(w1) in
        let t =
          Int64.logand (Int64.logxor (Int64.shift_right_logical x0 d) x1) period_masks.(a)
        in
        words.(w1) <- Int64.logxor x1 t;
        words.(w0) <- Int64.logxor x0 (Int64.shift_left t d)
      end
    done
  end

let flip t ~var =
  if var < 1 || var > t.n then invalid_arg "Truthtable.flip: variable out of range";
  let p = t.n - var in
  let words = Array.copy t.words in
  if p < 6 then begin
    (* The negated bit lives inside each word: exchange the two 2^p-bit
       block halves — bits with index-bit p set move down, the rest up. *)
    let d = 1 lsl p in
    let patt = sim_patterns.(p) in
    for w = 0 to Array.length words - 1 do
      let x = words.(w) in
      words.(w) <-
        Int64.logor
          (Int64.shift_right_logical (Int64.logand x patt) d)
          (Int64.shift_left (Int64.logand x period_masks.(p)) d)
    done
  end
  else begin
    (* The negated bit selects whole words: swap word pairs. *)
    let wb = 1 lsl (p - 6) in
    for w = 0 to Array.length words - 1 do
      if w land wb = 0 then begin
        let w' = w lor wb in
        let tmp = words.(w) in
        words.(w) <- words.(w');
        words.(w') <- tmp
      end
    done
  end;
  norm { n = t.n; words }

let permute t pi =
  if Array.length pi <> t.n then invalid_arg "Truthtable.permute: bad permutation size";
  let seen = Array.make (t.n + 1) false in
  Array.iter
    (fun v ->
      if v < 1 || v > t.n || seen.(v) then
        invalid_arg "Truthtable.permute: not a permutation";
      seen.(v) <- true)
    pi;
  let n = t.n in
  let words = Array.copy t.words in
  (* Result index bit p must read source index bit target.(p); realise the
     bit permutation as at most n-1 index-bit swaps (selection order), each
     a word-level delta swap. *)
  let target = Array.make (max n 1) 0 in
  Array.iteri (fun j v -> target.(n - 1 - j) <- n - v) pi;
  let state = Array.init (max n 1) (fun p -> p) in
  for p = 0 to n - 1 do
    if state.(p) <> target.(p) then begin
      let r = ref (p + 1) in
      while state.(!r) <> target.(p) do incr r done;
      swap_index_bits words p !r;
      let tmp = state.(p) in
      state.(p) <- state.(!r);
      state.(!r) <- tmp
    end
  done;
  { n; words }

let interval n ~lo ~hi =
  check_arity n;
  if lo < 0 || hi >= 1 lsl n || lo > hi then invalid_arg "Truthtable.interval: bad bounds";
  let t = make n in
  let wl = lo lsr 6 and wh = hi lsr 6 in
  for w = wl to wh do
    let lo_b = if w = wl then lo land 63 else 0 in
    let hi_b = if w = wh then hi land 63 else 63 in
    let upper =
      if hi_b = 63 then -1L else Int64.sub (Int64.shift_left 1L (hi_b + 1)) 1L
    in
    let lower = Int64.sub (Int64.shift_left 1L lo_b) 1L in
    t.words.(w) <- Int64.logand upper (Int64.lognot lower)
  done;
  t

let as_interval t =
  (* lowest and highest set bits by word scan; contiguity then reduces to a
     single popcount — no minterm list is ever materialised *)
  let nw = Array.length t.words in
  let rec first i = if i >= nw then None else if Int64.equal t.words.(i) 0L then first (i + 1) else Some i in
  match first 0 with
  | None -> None
  | Some wl ->
    let rec last i = if Int64.equal t.words.(i) 0L then last (i - 1) else i in
    let wh = last (nw - 1) in
    let lo = (wl lsl 6) + lowest_bit t.words.(wl) in
    let hi = (wh lsl 6) + highest_bit t.words.(wh) in
    if popcount t = hi - lo + 1 then Some (lo, hi) else None

let eval t inputs =
  if Array.length inputs <> t.n then invalid_arg "Truthtable.eval: arity mismatch";
  let m = ref 0 in
  for j = 0 to t.n - 1 do
    if inputs.(j) then m := !m lor (1 lsl (t.n - 1 - j))
  done;
  get t !m

let to_string t =
  (* Same format as the historic byte-backed dump: "<n>:" then the table
     bytes in hex, most significant minterm first. *)
  let nbytes = max 1 (((1 lsl t.n) + 7) / 8) in
  let buf = Buffer.create (2 * nbytes) in
  Buffer.add_string buf (Printf.sprintf "%d:" t.n);
  for i = nbytes - 1 downto 0 do
    let byte =
      Int64.to_int
        (Int64.logand (Int64.shift_right_logical t.words.(i lsr 3) ((i land 7) * 8)) 0xFFL)
    in
    Buffer.add_string buf (Printf.sprintf "%02x" byte)
  done;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
