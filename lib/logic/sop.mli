(** Two-level sum-of-products synthesis (Quine–McCluskey).

    The paper's Section 2 example compares minimal SOP implementations of a
    function by path count; this module produces such implementations: prime
    implicants by iterated merging, then a greedy essential-first cover.
    Exact at the prime-implicant level, greedy (near-minimal) at the covering
    level — standard practice for the small functions involved (n <= 12). *)

type cube = {
  mask : int;  (** bit set where the variable is in the cube's support *)
  value : int;  (** variable polarities on the support bits *)
}
(** Bit [n-1-j] (MSB-first, matching {!Truthtable}) describes variable
    [x_(j+1)]. *)

val cube_literals : cube -> int
(** Number of literals (support size) of the cube. *)

val cube_covers : cube -> int -> bool
(** Does the cube contain the minterm? *)

val pp_cube : n:int -> Format.formatter -> cube -> unit
(** E.g. ["x1 x2' x4"]. *)

val primes : Truthtable.t -> cube list
(** All prime implicants, deterministic order. *)

val minimise : Truthtable.t -> cube list
(** A small prime cover of the ON-set: essential primes first, then greedy
    by coverage. The empty list encodes the constant-false function. *)

val literals : cube list -> int
(** Total literal count of a cover. *)

val to_truthtable : int -> cube list -> Truthtable.t
(** [to_truthtable n cover] is the [n]-input disjunction of the cubes. *)

val to_circuit : ?name:string -> int -> cube list -> Circuit.t
(** AND-OR netlist with one shared inverter per complemented variable; a
    constant node for trivial covers. Inputs named [y1..yn]. *)
