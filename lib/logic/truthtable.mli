(** Bit-packed truth tables for single-output functions of up to 16 inputs.

    Minterm indexing follows the paper: input [x_1] is the {e most} significant
    bit and [x_n] the least significant, so the minterm [x_1 x_2 ... x_n] has
    decimal value [sum x_i * 2^(n-i)]. Internally bit [m land 63] of 64-bit
    word [m lsr 6] is the function value on minterm [m]; every combinator
    below works a word (64 minterms) at a time (DESIGN.md §12). *)

type t

val arity : t -> int
(** Number of input variables [n]. *)

val create : int -> (int -> bool) -> t
(** [create n f] tabulates [f] over minterms [0 .. 2^n - 1]. *)

val const : int -> bool -> t
(** [const n v] is the [n]-input constant-[v] function. *)

val var : int -> int -> t
(** [var n i] is the projection on variable [x_i] (1-based, MSB-first) as a
    function of [n] inputs. *)

val get : t -> int -> bool
(** Function value on a minterm. *)

val set : t -> int -> bool -> t
(** Functional update of one minterm (tables are immutable values). *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Total order on same-arity tables, for use in sorted containers. *)

val hash : t -> int

val of_minterms : int -> int list -> t
(** [of_minterms n ms] is the [n]-input function whose ON-set is [ms]. *)

val of_words : int -> int64 array -> t
(** [of_words n ws] is the [n]-input function whose value on minterm [m] is
    bit [m land 63] of [ws.(m lsr 6)] — the packed-word layout produced by
    64-way bit-parallel simulation. [ws] must hold exactly
    [max 1 (2^n / 64)] words (it is copied; padding bits above [2^n] are
    ignored). *)

val words : t -> int64 array
(** The packed words (copied), [max 1 (2^n / 64)] of them — the inverse of
    {!of_words}, for serialising tables. *)

val sim_pattern : int -> int64
(** [sim_pattern p] (for [0 <= p <= 5]) is the standard bit-parallel
    simulation word for index bit [p]: bit [j] is bit [p] of [j]. Within
    every 64-minterm block, variable [x_i] of an [n]-input table takes the
    values [sim_pattern (n - i)] when [n - i < 6] (higher variables are
    constant across a block). *)

val minterms : t -> int list
(** Increasing order. *)

val popcount : t -> int
(** ON-set size. *)

val is_const : t -> bool option
(** [Some v] when the function is the constant [v]. *)

(** {1 Bitwise combinators} — operands must have equal arity. *)

val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t

val cofactor : t -> var:int -> bool -> t
(** [cofactor f ~var:i v] is the (n-1)-input function f with [x_i] fixed to
    [v]; remaining variables keep their relative order. *)

val depends_on : t -> int -> bool
(** Does the function depend on variable [x_i]? *)

val support : t -> int list
(** Variables the function depends on, 1-based, increasing. *)

val flip : t -> var:int -> t
(** [flip f ~var:i] negates input [x_i]: the result [g] satisfies
    [g(.., x_i, ..) = f(.., not x_i, ..)] — i.e. the value on minterm [m]
    is [f]'s value on [m] with index bit [n - i] toggled. One delta-swap
    word pass ([n - i < 6]) or a word-pair exchange otherwise; the NPN
    canonicaliser's input-negation kernel (DESIGN.md §15). *)

val permute : t -> int array -> t
(** [permute f pi] renames variables: position [j] (0-based) of the new
    variable order is the old variable [pi.(j)] (1-based). I.e. the new
    function [g(x_1..x_n) = f(y_1..y_n)] where new variable [x_(j+1)] feeds
    old variable slot [pi.(j)]. *)

val interval : int -> lo:int -> hi:int -> t
(** Function that is 1 exactly on minterms in [lo..hi] (requires
    [0 <= lo <= hi < 2^n]). *)

val as_interval : t -> (int * int) option
(** [Some (l, u)] iff the ON-set is exactly the non-empty contiguous range
    [l..u] under the identity variable order. *)

val eval : t -> bool array -> bool
(** [eval f inputs] with [inputs.(0)] = [x_1] (MSB). *)

val to_string : t -> string
(** Hex string, MSB minterm first; for debugging and hashing. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)
