(** Single stuck-at fault model on stems and fanout branches.

    A {e stem} fault sits on a node's output line and is seen by every
    reader; a {e branch} fault sits on one fanin pin of one gate. Branch
    faults are only distinct fault sites when the stem fans out to more than
    one pin, so fanout-free pins are represented by their stem fault. *)

type site =
  | Stem of int  (** node id *)
  | Branch of int * int  (** gate id, pin index *)

type t = { site : site; stuck : bool }

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Circuit.t -> Format.formatter -> t -> unit
val to_string : Circuit.t -> t -> string

val journal_fields : t -> (string * Obs_json.t) list
(** The fault as {!Obs.Journal} event fields: [site] (["stem"] with [node],
    or ["branch"] with [gate]/[pin]) and [stuck] (0/1). Purely structural —
    no circuit needed, so it is stable across journal consumers. *)

val all : Circuit.t -> t list
(** Uncollapsed fault list: two faults per stem of every live non-constant
    node, plus two per branch pin of multi-fanout stems (constant fanins
    excluded). Deterministic order. *)

val collapsed : Circuit.t -> t list
(** Equivalence-collapsed list: for And/Nand (resp. Or/Nor) gates, the
    stuck-at-controlling fault on each fanout-free fanin pin is equivalent to
    the corresponding output fault and is dropped; Buf/Not input faults
    collapse onto output faults likewise. *)
