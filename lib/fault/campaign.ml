type result = {
  total_faults : int;
  detected : int;
  remaining : int;
  last_effective_pattern : int;
  patterns_applied : int;
}

let pp_result ppf r =
  Format.fprintf ppf "faults %d, detected %d, remain %d, eff.patt %d (of %d)"
    r.total_faults r.detected r.remaining r.last_effective_pattern
    r.patterns_applied

(* Index (0-based) of the lowest set bit via the classic de Bruijn multiply:
   isolate the bit with [x land (-x)], multiply by a de Bruijn sequence and
   use the top 6 bits as a table index. Constant time, no branches. *)
let debruijn_table =
  [|
    0; 1; 2; 53; 3; 7; 54; 27; 4; 38; 41; 8; 34; 55; 48; 28; 62; 5; 39; 46;
    44; 42; 22; 9; 24; 35; 59; 56; 49; 18; 29; 11; 63; 52; 6; 26; 37; 40;
    33; 47; 61; 45; 43; 21; 23; 58; 17; 10; 51; 25; 36; 32; 60; 20; 57; 16;
    50; 31; 19; 15; 30; 14; 13; 12;
  |]

let lowest_bit mask =
  let isolated = Int64.logand mask (Int64.neg mask) in
  debruijn_table.(Int64.to_int
                    (Int64.shift_right_logical
                       (Int64.mul isolated 0x022FDD63CC95386DL)
                       58))

(* Observability probes. Disabled probes are a single atomic load; the
   per-fault inner loop carries none — scan totals are flushed once per
   range so the hot path is untouched. *)
let patterns_c = Obs.Counter.make ~help:"random patterns simulated" "fsim.patterns"
let batches_c = Obs.Counter.make ~help:"64-wide pattern batches" "fsim.batches"
let dropped_c = Obs.Counter.make ~help:"faults detected and dropped" "fsim.faults_dropped"
let scans_c = Obs.Counter.make ~help:"fault slots scanned" "fsim.fault_scans"
let batch_drops_h = Obs.Histogram.make ~help:"faults dropped per batch" "fsim.batch_drops"

(* Scan faults [lo, hi) of the current batch on [sim]: kill detected faults
   in [alive] and return (newly detected, highest 1-based effective pattern,
   0 if none). The full-batch case skips the mask entirely — the branch on
   [batch_mask] is hoisted out of the fault loop. *)
let scan_range ~sim ~fault_list ~(alive : bool array) ~batch_mask ~base lo hi =
  let fresh = ref 0 in
  let best = ref 0 in
  let record i mask =
    alive.(i) <- false;
    incr fresh;
    let patt = base + lowest_bit mask + 1 in
    if patt > !best then best := patt
  in
  if batch_mask = -1L then
    for i = lo to hi - 1 do
      if alive.(i) then begin
        let mask = Fsim.detect sim fault_list.(i) in
        if mask <> 0L then record i mask
      end
    done
  else
    for i = lo to hi - 1 do
      if alive.(i) then begin
        let mask = Int64.logand (Fsim.detect sim fault_list.(i)) batch_mask in
        if mask <> 0L then record i mask
      end
    done;
  Obs.Counter.add scans_c (hi - lo);
  Obs.Counter.add dropped_c !fresh;
  (!fresh, !best)

type config = {
  faults : Fault.t list option;
  max_patterns : int;
  domains : int;
  seed : int64;
  obs : bool;
}

let default =
  { faults = None; max_patterns = 1_000_000; domains = 0; seed = 1L; obs = false }

let run_internal cfg c =
  if cfg.obs then Obs.enable ();
  let max_patterns = cfg.max_patterns in
  let seed = cfg.seed in
  let domains = Pool.domains_of_flag cfg.domains in
  let cmp = Compiled.of_circuit c in
  let fault_list =
    match cfg.faults with
    | Some fs -> Array.of_list fs
    | None -> Array.of_list (Fault.collapsed c)
  in
  let n_faults = Array.length fault_list in
  let alive = Array.make n_faults true in
  let alive_count = ref n_faults in
  let rng = Rng.create seed in
  let n_pi = Circuit.num_inputs c in
  let last_effective = ref 0 in
  let applied = ref 0 in
  let serial () =
    let sim = Fsim.create cmp in
    while !alive_count > 0 && !applied < max_patterns do
      Obs.Span.with_ "fsim.batch" (fun () ->
          let batch = min 64 (max_patterns - !applied) in
          let words = Array.init n_pi (fun _ -> Rng.next64 rng) in
          Fsim.load_patterns sim words;
          let batch_mask =
            if batch = 64 then -1L else Int64.sub (Int64.shift_left 1L batch) 1L
          in
          let fresh, best =
            scan_range ~sim ~fault_list ~alive ~batch_mask ~base:!applied 0 n_faults
          in
          alive_count := !alive_count - fresh;
          if best > !last_effective then last_effective := best;
          applied := !applied + batch;
          if fresh > 0 then Obs.Trace.instant ~cat:"fsim" "fsim.effective";
          Obs.Counter.add patterns_c batch;
          Obs.Counter.incr batches_c;
          Obs.Histogram.observe batch_drops_h fresh)
    done
  in
  (* Parallel campaign: the fault list is sharded across the pool; every
     participating domain owns a private [Fsim.t] over the shared read-only
     [Compiled.t] and re-simulates the fault-free batch once per 64-pattern
     batch. Detections within a batch are independent, and the merge
     (sum of fresh detections, max of effective-pattern indices) is
     commutative, so the result is bit-identical to the serial run. *)
  let parallel pool =
    let nslots = Pool.domains pool in
    let sims = Array.make nslots None in
    let loaded = Array.make nslots (-1) in
    let fresh_per_slot = Array.make nslots 0 in
    let best_per_slot = Array.make nslots 0 in
    let batch_no = ref 0 in
    while !alive_count > 0 && !applied < max_patterns do
      Obs.Span.with_ "fsim.batch" (fun () ->
          let batch = min 64 (max_patterns - !applied) in
          let words = Array.init n_pi (fun _ -> Rng.next64 rng) in
          let batch_mask =
            if batch = 64 then -1L else Int64.sub (Int64.shift_left 1L batch) 1L
          in
          let base = !applied in
          let bno = !batch_no in
          Array.fill fresh_per_slot 0 nslots 0;
          (* Below ~256 faults a batch is microseconds of simulation: the
             job hand-off plus the per-slot pattern reload cost more than
             they recover, which is where the sub-1.0x pooled numbers on
             small circuits came from. The cutoff decision shows up in the
             pool.serial_cutoff / pool.parallel_jobs counters. *)
          Pool.for_chunks pool ~serial_below:256 ~n:n_faults (fun ~slot ~lo ~hi ->
              let sim =
                match sims.(slot) with
                | Some sim -> sim
                | None ->
                  let sim = Fsim.create cmp in
                  sims.(slot) <- Some sim;
                  sim
              in
              if loaded.(slot) <> bno then begin
                Fsim.load_patterns sim words;
                loaded.(slot) <- bno
              end;
              let fresh, best =
                scan_range ~sim ~fault_list ~alive ~batch_mask ~base lo hi
              in
              fresh_per_slot.(slot) <- fresh_per_slot.(slot) + fresh;
              if best > best_per_slot.(slot) then best_per_slot.(slot) <- best);
          let fresh_total = Array.fold_left ( + ) 0 fresh_per_slot in
          alive_count := !alive_count - fresh_total;
          Array.iter
            (fun b -> if b > !last_effective then last_effective := b)
            best_per_slot;
          applied := !applied + batch;
          incr batch_no;
          if fresh_total > 0 then Obs.Trace.instant ~cat:"fsim" "fsim.effective";
          Obs.Counter.add patterns_c batch;
          Obs.Counter.incr batches_c;
          Obs.Histogram.observe batch_drops_h fresh_total)
    done
  in
  Obs.Span.with_ "fsim.campaign" (fun () ->
      if domains <= 1 || n_faults <= 1 then serial ()
      else Pool.with_pool ~domains parallel);
  let detected = n_faults - !alive_count in
  ( {
      total_faults = n_faults;
      detected;
      remaining = !alive_count;
      last_effective_pattern = !last_effective;
      patterns_applied = !applied;
    },
    fault_list,
    alive )

let exec cfg c =
  let r, _, _ = run_internal cfg c in
  r

let collect_alive fault_list alive =
  let acc = ref [] in
  for i = Array.length fault_list - 1 downto 0 do
    if alive.(i) then acc := fault_list.(i) :: !acc
  done;
  !acc

let survivors cfg c =
  let _, fault_list, alive = run_internal cfg c in
  collect_alive fault_list alive

let exec_survivors cfg c =
  let r, fault_list, alive = run_internal cfg c in
  (r, collect_alive fault_list alive)
