(** Random-pattern stuck-at testing campaigns (Table 6 machinery). *)

type result = {
  total_faults : int;
  detected : int;
  remaining : int;
  last_effective_pattern : int;
      (** 1-based index of the last pattern that detected a new fault;
          0 if nothing was detected. *)
  patterns_applied : int;
}

val pp_result : Format.formatter -> result -> unit

val lowest_bit : int64 -> int
(** 0-based index of the lowest set bit (constant-time de Bruijn lookup);
    the argument must be non-zero. Exposed for testing. *)

type config = {
  faults : Fault.t list option;
      (** fault list to target; [None] means {!Fault.collapsed}. *)
  max_patterns : int;  (** random-pattern budget (default 1_000_000). *)
  domains : int;
      (** domain-pool width, resolved by {!Pool.domains_of_flag}: [<= 0]
          picks the recommended width, [1] forces the serial path. The
          result is bit-identical for every value. *)
  seed : int64;
  obs : bool;
      (** force-enable {!Obs} collection for this run (the probes also
          record whenever observability is already enabled globally). *)
}

val default : config
(** [{ faults = None; max_patterns = 1_000_000; domains = 0; seed = 1L;
       obs = false }] *)

val exec : config -> Circuit.t -> result
(** Apply uniform random patterns in 64-wide batches until every fault is
    detected or [config.max_patterns] is exhausted. Detected faults are
    dropped from simulation. Patterns inside a batch count as sequential,
    so [last_effective_pattern] is exact.

    With [config.domains <> 1] the fault list is sharded across a domain
    pool, each worker simulating with a private {!Fsim.t} over the shared
    compiled circuit; the result is bit-identical to the serial run.

    Observability (when enabled): counters [fsim.patterns],
    [fsim.batches], [fsim.faults_dropped], [fsim.fault_scans]; histogram
    [fsim.batch_drops]; spans [fsim.campaign] > [fsim.batch]. *)

val survivors : config -> Circuit.t -> Fault.t list
(** The faults left undetected by the same campaign as {!exec}. *)

val exec_survivors : config -> Circuit.t -> result * Fault.t list
(** {!exec} and {!survivors} from one simulation run — the form the
    SAT-escalating campaign driver needs, where the survivor list feeds
    deterministic ATPG and the result keeps the coverage accounting. *)
