(** Random-pattern stuck-at testing campaigns (Table 6 machinery). *)

type result = {
  total_faults : int;
  detected : int;
  remaining : int;
  last_effective_pattern : int;
      (** 1-based index of the last pattern that detected a new fault;
          0 if nothing was detected. *)
  patterns_applied : int;
}

val pp_result : Format.formatter -> result -> unit

val lowest_bit : int64 -> int
(** 0-based index of the lowest set bit (constant-time de Bruijn lookup);
    the argument must be non-zero. Exposed for testing. *)

val run :
  ?faults:Fault.t list ->
  ?max_patterns:int ->
  ?domains:int ->
  seed:int64 ->
  Circuit.t ->
  result
(** Apply uniform random patterns in 64-wide batches until every fault is
    detected or [max_patterns] (default 1_000_000) is exhausted. The fault
    list defaults to {!Fault.collapsed}. Detected faults are dropped from
    simulation. Patterns inside a batch count as sequential, so
    [last_effective_pattern] is exact.

    [domains] (default {!Pool.default_domains}) shards the fault list
    across a domain pool, each worker simulating with a private {!Fsim.t}
    over the shared compiled circuit; the result is bit-identical to the
    serial run, which [domains = 1] selects explicitly. *)

val undetected :
  ?faults:Fault.t list ->
  ?max_patterns:int ->
  ?domains:int ->
  seed:int64 ->
  Circuit.t ->
  Fault.t list
(** The faults left undetected by the same campaign. *)
