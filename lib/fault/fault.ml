type site =
  | Stem of int
  | Branch of int * int

type t = { site : site; stuck : bool }

let compare = Stdlib.compare
let equal a b = a = b

let site_name c = function
  | Stem id -> (
    match Circuit.node_name c id with
    | Some s -> s
    | None -> Printf.sprintf "n%d" id)
  | Branch (g, pin) ->
    let stem = (Circuit.fanins c g).(pin) in
    let sname =
      match Circuit.node_name c stem with
      | Some s -> s
      | None -> Printf.sprintf "n%d" stem
    in
    let gname =
      match Circuit.node_name c g with
      | Some s -> s
      | None -> Printf.sprintf "n%d" g
    in
    Printf.sprintf "%s->%s" sname gname

let to_string c f =
  Printf.sprintf "%s s-a-%d" (site_name c f.site) (if f.stuck then 1 else 0)

let pp c ppf f = Format.pp_print_string ppf (to_string c f)

let journal_fields f =
  let site =
    match f.site with
    | Stem u -> [ ("site", Obs_json.String "stem"); ("node", Obs_json.Int u) ]
    | Branch (g, pin) ->
      [
        ("site", Obs_json.String "branch");
        ("gate", Obs_json.Int g);
        ("pin", Obs_json.Int pin);
      ]
  in
  site @ [ ("stuck", Obs_json.Int (if f.stuck then 1 else 0)) ]

let is_const_node c id =
  match Circuit.kind c id with
  | Gate.Const0 | Gate.Const1 -> true
  | Gate.Input | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand
  | Gate.Nor | Gate.Xor | Gate.Xnor -> false

(* Pins reading each stem, as (gate, pin) pairs in deterministic order. *)
let reader_pins c =
  let pins = Array.make (Circuit.size c) [] in
  let order = Circuit.topo_order c in
  for i = Array.length order - 1 downto 0 do
    let g = order.(i) in
    let fins = Circuit.fanins c g in
    for pin = Array.length fins - 1 downto 0 do
      pins.(fins.(pin)) <- (g, pin) :: pins.(fins.(pin))
    done
  done;
  pins

let fault_sites ?(collapse = false) c =
  let pins = reader_pins c in
  let faults = ref [] in
  let add site stuck = faults := { site; stuck } :: !faults in
  let order = Circuit.topo_order c in
  Array.iter
    (fun id ->
      if not (is_const_node c id) then begin
        let readers = pins.(id) in
        let fanout = List.length readers in
        (* A floating line (no readers, not observed) carries no fault. *)
        if fanout > 0 || Circuit.is_output c id then begin
        (* Stem faults, possibly collapsed into the (unique) reading gate. *)
        let dropped_stem stuck =
          collapse && (not (Circuit.is_output c id))
          && fanout = 1
          &&
          match readers with
          | [ (g, _) ] -> (
            match Circuit.kind c g with
            | Gate.And | Gate.Nand -> stuck = false
            | Gate.Or | Gate.Nor -> stuck = true
            | Gate.Buf | Gate.Not -> true
            | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Xor | Gate.Xnor ->
              false)
          | [] | _ :: _ :: _ -> false
        in
        if not (dropped_stem false) then add (Stem id) false;
        if not (dropped_stem true) then add (Stem id) true;
        (* Branch faults where the stem actually branches. *)
        if fanout > 1 then
          List.iter
            (fun (g, pin) ->
              let dropped stuck =
                collapse
                &&
                match Circuit.kind c g with
                | Gate.And | Gate.Nand -> stuck = false
                | Gate.Or | Gate.Nor -> stuck = true
                | Gate.Buf | Gate.Not -> true
                | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Xor
                | Gate.Xnor -> false
              in
              if not (dropped false) then add (Branch (g, pin)) false;
              if not (dropped true) then add (Branch (g, pin)) true)
            readers
        end
      end)
    order;
  List.rev !faults

let all c = fault_sites ~collapse:false c
let collapsed c = fault_sites ~collapse:true c
