(* Min-heap over topo positions with lazy deduplication via a pending flag. *)
module Heap = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }

  let push h x =
    if h.n = Array.length h.a then begin
      let bigger = Array.make (2 * h.n) 0 in
      Array.blit h.a 0 bigger 0 h.n;
      h.a <- bigger
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- x;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if h.a.(p) > h.a.(!i) then begin
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := p
      end
      else continue := false
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let top = h.a.(0) in
      h.n <- h.n - 1;
      h.a.(0) <- h.a.(h.n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.n && h.a.(l) < h.a.(!smallest) then smallest := l;
        if r < h.n && h.a.(r) < h.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.a.(!smallest) in
          h.a.(!smallest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

type t = {
  cmp : Compiled.t;
  good : int64 array;
  fval : int64 array;
  touched : Bytes.t;
  mutable touched_list : int list;
  pending : Bytes.t;
  heap : Heap.t;
  mutable loaded : bool;
}

let create cmp =
  let n = Compiled.size cmp in
  (* The event heap encodes (topo_pos, id) as [topo_pos * n + id], so the
     largest encoding is about [n * n]; reject circuits where that would
     overflow the native int range instead of silently corrupting the
     ordering. *)
  if n > 0 && n > max_int / n then
    invalid_arg "Fsim.create: circuit too large for heap encoding";
  {
    cmp;
    good = Array.make n 0L;
    fval = Array.make n 0L;
    touched = Bytes.make n '\000';
    touched_list = [];
    pending = Bytes.make n '\000';
    heap = Heap.create ();
    loaded = false;
  }

let loads_c = Obs.Counter.make ~help:"fault-free batch simulations" "fsim.loads"

let load_patterns st pi_words =
  Obs.Counter.incr loads_c;
  Compiled.simulate_into st.cmp pi_words st.good;
  st.loaded <- true

let good_values st = st.good

let value st id = if Bytes.get st.touched id = '\001' then st.fval.(id) else st.good.(id)

(* The heap holds (topo_pos, id) encoded as one int so it orders by topo
   position; ids are recovered on pop. *)
let encode st id = ((Compiled.topo_index st.cmp).(id) * Compiled.size st.cmp) + id
let decode st x = x mod Compiled.size st.cmp

let schedule st id =
  if Bytes.get st.pending id = '\000' then begin
    Bytes.set st.pending id '\001';
    Heap.push st.heap (encode st id)
  end

let set_value st id v =
  if Bytes.get st.touched id = '\000' then begin
    Bytes.set st.touched id '\001';
    st.touched_list <- id :: st.touched_list
  end;
  st.fval.(id) <- v

(* Evaluate gate [id] from current (possibly faulty) fanin values, applying a
   branch-pin override when [id] is the faulted gate. *)
let eval_gate st ~fault_gate ~fault_pin ~forced id =
  let fins = Compiled.fanins st.cmp id in
  let n = Array.length fins in
  let pin_value i = if id = fault_gate && i = fault_pin then forced else value st fins.(i) in
  let kind = Compiled.kind st.cmp id in
  match kind with
  | Gate.Input -> value st id
  | Gate.Const0 -> 0L
  | Gate.Const1 -> -1L
  | Gate.Buf -> pin_value 0
  | Gate.Not -> Int64.lognot (pin_value 0)
  | Gate.And | Gate.Nand ->
    let acc = ref (-1L) in
    for i = 0 to n - 1 do
      acc := Int64.logand !acc (pin_value i)
    done;
    if kind = Gate.Nand then Int64.lognot !acc else !acc
  | Gate.Or | Gate.Nor ->
    let acc = ref 0L in
    for i = 0 to n - 1 do
      acc := Int64.logor !acc (pin_value i)
    done;
    if kind = Gate.Nor then Int64.lognot !acc else !acc
  | Gate.Xor | Gate.Xnor ->
    let acc = ref 0L in
    for i = 0 to n - 1 do
      acc := Int64.logxor !acc (pin_value i)
    done;
    if kind = Gate.Xnor then Int64.lognot !acc else !acc

let reset st =
  List.iter (fun id -> Bytes.set st.touched id '\000') st.touched_list;
  st.touched_list <- []

let detect st (f : Fault.t) =
  if not st.loaded then invalid_arg "Fsim.detect: no patterns loaded";
  let forced = if f.Fault.stuck then -1L else 0L in
  let fault_gate, fault_pin =
    match f.Fault.site with Fault.Branch (g, pin) -> (g, pin) | Fault.Stem _ -> (-1, -1)
  in
  (match f.Fault.site with
  | Fault.Stem u ->
    if forced <> st.good.(u) then begin
      set_value st u forced;
      Array.iter (fun g -> schedule st g) (Compiled.fanouts st.cmp u)
    end
  | Fault.Branch (g, _) -> schedule st g);
  let rec drain () =
    match Heap.pop st.heap with
    | None -> ()
    | Some x ->
      let id = decode st x in
      Bytes.set st.pending id '\000';
      let v = eval_gate st ~fault_gate ~fault_pin ~forced id in
      if v <> value st id then begin
        set_value st id v;
        Array.iter (fun g -> schedule st g) (Compiled.fanouts st.cmp id)
      end;
      drain ()
  in
  drain ();
  let det = ref 0L in
  List.iter
    (fun id ->
      if Compiled.is_po st.cmp id then
        det := Int64.logor !det (Int64.logxor st.fval.(id) st.good.(id)))
    st.touched_list;
  reset st;
  !det

let detect_single st f vector =
  let words = Array.map (fun b -> if b then 1L else 0L) vector in
  load_patterns st words;
  Int64.logand (detect st f) 1L <> 0L
