(* Incremental CDCL SAT solver: two-watched literals, first-UIP learning,
   VSIDS-lite activities on a binary max-heap, phase saving, Luby restarts.
   Solver state survives across [solve]/[solve_assuming] calls: after every
   call the trail is rolled back to decision level 0 and learned clauses are
   retained, so assumption-based queries amortise both the CNF and the
   conflict analysis done by earlier queries. *)

let conflicts_c = Obs.Counter.make ~help:"SAT conflicts" "sat.conflicts"

let propagations_c =
  Obs.Counter.make ~help:"SAT propagations" "sat.propagations"

let lit v = 2 * v
let neg l = l lxor 1
let var_of l = l lsr 1
let is_neg l = l land 1 = 1

module Options = struct
  type t = {
    budget : int option;
    restart_base : int;
    seed : int64;
  }

  let default = { budget = None; restart_base = 100; seed = 0L }
end

type clause = int array

type t = {
  (* per-variable state, indexed by var *)
  mutable assign : int array;  (* -1 unassigned, 0 false, 1 true *)
  mutable level : int array;
  mutable reason : int array;  (* clause index, -1 for decisions/none *)
  mutable activity : float array;
  mutable polarity : bool array;  (* saved phase *)
  mutable seen : bool array;  (* conflict-analysis scratch *)
  mutable heap_pos : int array;  (* var -> heap index, -1 if absent *)
  mutable nvars : int;
  (* clause database; learned clauses live after [nproblem] *)
  mutable clauses : clause array;
  mutable nclauses : int;
  mutable nproblem : int;
  (* watch lists, indexed by literal *)
  mutable watches : int array array;
  mutable watch_len : int array;
  (* binary max-heap of variables ordered by activity *)
  mutable heap : int array;
  mutable heap_size : int;
  (* assignment trail *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int array;  (* trail size at each decision level *)
  mutable levels : int;  (* current decision level *)
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool;  (* false once a top-level contradiction is known *)
  mutable model : int array;  (* assignment saved by the last Sat outcome *)
  mutable seeded_upto : int;  (* vars whose initial phase was randomised *)
  mutable n_decisions : int;
  mutable n_conflicts : int;
  mutable n_propagations : int;
}

let create () =
  {
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    polarity = Array.make 16 false;
    seen = Array.make 16 false;
    heap_pos = Array.make 16 (-1);
    nvars = 0;
    clauses = Array.make 64 [||];
    nclauses = 0;
    nproblem = 0;
    watches = Array.make 32 [||];
    watch_len = Array.make 32 0;
    heap = Array.make 16 0;
    heap_size = 0;
    trail = Array.make 16 0;
    trail_size = 0;
    trail_lim = Array.make 16 0;
    levels = 0;
    qhead = 0;
    var_inc = 1.0;
    ok = true;
    model = [||];
    seeded_upto = 0;
    n_decisions = 0;
    n_conflicts = 0;
    n_propagations = 0;
  }

let num_vars t = t.nvars
let num_clauses t = t.nproblem
let num_learnt t = t.nclauses - t.nproblem
let decisions t = t.n_decisions
let conflicts t = t.n_conflicts
let propagations t = t.n_propagations

(* --- growable array helpers ---------------------------------------------- *)

let grow_int a n fill =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) fill in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_float a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) 0.0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_bool a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) false in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_arr a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) [||] in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

(* --- activity heap -------------------------------------------------------- *)

let heap_swap t i j =
  let vi = t.heap.(i) and vj = t.heap.(j) in
  t.heap.(i) <- vj;
  t.heap.(j) <- vi;
  t.heap_pos.(vi) <- j;
  t.heap_pos.(vj) <- i

let rec percolate_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.activity.(t.heap.(i)) > t.activity.(t.heap.(parent)) then begin
      heap_swap t i parent;
      percolate_up t parent
    end
  end

let rec percolate_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && t.activity.(t.heap.(l)) > t.activity.(t.heap.(!best))
  then best := l;
  if r < t.heap_size && t.activity.(t.heap.(r)) > t.activity.(t.heap.(!best))
  then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    percolate_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap <- grow_int t.heap (t.heap_size + 1) 0;
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    percolate_up t (t.heap_size - 1)
  end

(* Pop the highest-activity variable (present or not: lazily skips nothing —
   every unassigned variable is kept in the heap). *)
let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then begin
    let last = t.heap.(t.heap_size) in
    t.heap.(0) <- last;
    t.heap_pos.(last) <- 0;
    percolate_down t 0
  end;
  v

let rescale_activities t =
  for v = 0 to t.nvars - 1 do
    t.activity.(v) <- t.activity.(v) *. 1e-100
  done;
  t.var_inc <- t.var_inc *. 1e-100

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then rescale_activities t;
  if t.heap_pos.(v) >= 0 then percolate_up t t.heap_pos.(v)

let decay t = t.var_inc <- t.var_inc /. 0.95

(* --- variables and clauses ------------------------------------------------ *)

let new_var t =
  let v = t.nvars in
  let n = v + 1 in
  t.assign <- grow_int t.assign n (-1);
  t.level <- grow_int t.level n 0;
  t.reason <- grow_int t.reason n (-1);
  t.activity <- grow_float t.activity n;
  t.polarity <- grow_bool t.polarity n;
  t.seen <- grow_bool t.seen n;
  t.heap_pos <- grow_int t.heap_pos n (-1);
  t.watches <- grow_arr t.watches (2 * n);
  t.watch_len <- grow_int t.watch_len (2 * n) 0;
  t.assign.(v) <- -1;
  t.reason.(v) <- -1;
  t.heap_pos.(v) <- -1;
  t.activity.(v) <- 0.0;
  t.polarity.(v) <- false;
  t.seen.(v) <- false;
  t.watches.(2 * v) <- [||];
  t.watches.((2 * v) + 1) <- [||];
  t.watch_len.(2 * v) <- 0;
  t.watch_len.((2 * v) + 1) <- 0;
  t.nvars <- n;
  heap_insert t v;
  v

(* Value of a literal: -1 unassigned, 0 false, 1 true. *)
let lit_value t l =
  let a = t.assign.(var_of l) in
  if a < 0 then -1 else a lxor (l land 1)

let watch t l ci =
  let len = t.watch_len.(l) in
  if Array.length t.watches.(l) <= len then
    t.watches.(l) <- grow_int t.watches.(l) (max 4 (len + 1)) 0;
  t.watches.(l).(len) <- ci;
  t.watch_len.(l) <- len + 1

let store_clause t c =
  let ci = t.nclauses in
  t.clauses <- grow_arr t.clauses (ci + 1);
  t.clauses.(ci) <- c;
  t.nclauses <- ci + 1;
  watch t c.(0) ci;
  watch t c.(1) ci;
  ci

let enqueue t l reason =
  let v = var_of l in
  t.assign.(v) <- 1 lxor (l land 1);
  t.level.(v) <- t.levels;
  t.reason.(v) <- reason;
  t.trail <- grow_int t.trail (t.trail_size + 1) 0;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

(* Clauses may be added at any point between solves: every solve leaves the
   trail at decision level 0, so simplification below always runs under the
   top-level assignment only. *)
let add_clause t lits =
  if t.levels <> 0 then invalid_arg "Sat.add_clause: mid-solve";
  if t.ok then begin
    (* Simplify under the top-level assignment: drop false literals and
       duplicates, discard satisfied clauses and tautologies. *)
    let lits = Array.to_list lits in
    let lits = List.sort_uniq compare lits in
    let taut =
      List.exists (fun l -> List.memq (neg l) lits) lits
      || List.exists (fun l -> lit_value t l = 1) lits
    in
    if not taut then begin
      let lits = List.filter (fun l -> lit_value t l <> 0) lits in
      match lits with
      | [] -> t.ok <- false
      | [ l ] -> enqueue t l (-1) (* top-level unit *)
      | _ ->
        let c = Array.of_list lits in
        let ci = store_clause t c in
        (* Problem clauses are interleaved with learned ones in incremental
           use; [nproblem] counts them rather than delimiting a prefix. *)
        ignore ci;
        t.nproblem <- t.nproblem + 1
    end
  end

(* --- propagation ---------------------------------------------------------- *)

(* Propagate everything on the trail; returns the index of a conflicting
   clause, or -1. *)
let propagate t =
  let confl = ref (-1) in
  while !confl < 0 && t.qhead < t.trail_size do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.n_propagations <- t.n_propagations + 1;
    let false_lit = neg p in
    let ws = t.watches.(false_lit) in
    let len = t.watch_len.(false_lit) in
    let j = ref 0 in
    let i = ref 0 in
    while !i < len do
      let ci = ws.(!i) in
      incr i;
      let c = t.clauses.(ci) in
      (* Make sure the false literal sits in slot 1. *)
      if c.(0) = false_lit then begin
        c.(0) <- c.(1);
        c.(1) <- false_lit
      end;
      if lit_value t c.(0) = 1 then begin
        (* Clause already satisfied: keep the watch. *)
        ws.(!j) <- ci;
        incr j
      end
      else begin
        (* Look for a non-false replacement watch. *)
        let n = Array.length c in
        let k = ref 2 in
        while !k < n && lit_value t c.(!k) = 0 do incr k done;
        if !k < n then begin
          c.(1) <- c.(!k);
          c.(!k) <- false_lit;
          watch t c.(1) ci (* watch moved: drop from this list *)
        end
        else begin
          (* Unit or conflicting. *)
          ws.(!j) <- ci;
          incr j;
          if lit_value t c.(0) = 0 then begin
            (* Conflict: keep the remaining watches and stop. *)
            while !i < len do
              ws.(!j) <- ws.(!i);
              incr j;
              incr i
            done;
            t.qhead <- t.trail_size;
            confl := ci
          end
          else enqueue t c.(0) ci
        end
      end
    done;
    t.watch_len.(false_lit) <- !j
  done;
  !confl

(* --- conflict analysis ---------------------------------------------------- *)

let backjump t lvl =
  if t.levels > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_size - 1 downto bound do
      let v = var_of t.trail.(i) in
      t.polarity.(v) <- t.assign.(v) = 1;
      t.assign.(v) <- -1;
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    t.trail_size <- bound;
    t.qhead <- bound;
    t.levels <- lvl
  end

(* First-UIP learning: returns the learned clause (asserting literal first)
   and the backjump level. *)
let analyze t confl =
  let learnt = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let index = ref (t.trail_size - 1) in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!confl) in
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = var_of q in
          if (not t.seen.(v)) && t.level.(v) > 0 then begin
            t.seen.(v) <- true;
            bump t v;
            if t.level.(v) >= t.levels then incr path
            else learnt := q :: !learnt
          end
        end)
      c;
    (* Next trail literal that contributed to the conflict. *)
    while not t.seen.(var_of t.trail.(!index)) do decr index done;
    let q = t.trail.(!index) in
    decr index;
    let v = var_of q in
    t.seen.(v) <- false;
    decr path;
    if !path = 0 then begin
      p := neg q;
      continue := false
    end
    else begin
      p := q;
      confl := t.reason.(v)
    end
  done;
  let rest = Array.of_list !learnt in
  Array.iter (fun q -> t.seen.(var_of q) <- false) rest;
  (* Backjump to the second-highest level in the clause; place a literal of
     that level in slot 1 so the watches are correct after backjumping. *)
  let blevel = ref 0 in
  let pos = ref (-1) in
  Array.iteri
    (fun i q ->
      let l = t.level.(var_of q) in
      if l > !blevel then begin
        blevel := l;
        pos := i
      end)
    rest;
  if !pos > 0 then begin
    let tmp = rest.(0) in
    rest.(0) <- rest.(!pos);
    rest.(!pos) <- tmp
  end;
  (Array.append [| !p |] rest, !blevel)

(* --- search --------------------------------------------------------------- *)

type outcome =
  | Sat
  | Unsat
  | Unknown

(* [luby i] is the i-th element (0-based) of the Luby restart sequence
   1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (MiniSat's iterative formulation). *)
let luby i =
  let size = ref 1 and seq = ref 0 in
  while !size < i + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref i in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  1 lsl !seq

let decide t =
  let v = ref (-1) in
  while !v < 0 && t.heap_size > 0 do
    let cand = heap_pop t in
    if t.assign.(cand) < 0 then v := cand
  done;
  if !v < 0 then false
  else begin
    t.n_decisions <- t.n_decisions + 1;
    t.trail_lim <- grow_int t.trail_lim (t.levels + 1) 0;
    t.trail_lim.(t.levels) <- t.trail_size;
    t.levels <- t.levels + 1;
    let l = if t.polarity.(!v) then lit !v else neg (lit !v) in
    enqueue t l (-1);
    true
  end

(* Open a fresh (possibly empty) decision level. Assumptions get one level
   each, so the level of an assumption equals its index + 1 and backjumps
   land between assumptions without forgetting the earlier ones. *)
let push_level t =
  t.trail_lim <- grow_int t.trail_lim (t.levels + 1) 0;
  t.trail_lim.(t.levels) <- t.trail_size;
  t.levels <- t.levels + 1

let seed_phases t seed =
  if t.seeded_upto < t.nvars then begin
    for v = t.seeded_upto to t.nvars - 1 do
      (* splitmix64-style hash of (seed, v): deterministic per variable. *)
      let z =
        Int64.add seed (Int64.mul (Int64.of_int (v + 1)) 0x9E3779B97F4A7C15L)
      in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
          0xBF58476D1CE4E5B9L
      in
      let z =
        Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
          0x94D049BB133111EBL
      in
      let z = Int64.logxor z (Int64.shift_right_logical z 31) in
      t.polarity.(v) <- Int64.logand z 1L = 1L
    done;
    t.seeded_upto <- t.nvars
  end

let save_model t =
  if Array.length t.model < t.nvars then t.model <- Array.make t.nvars 0;
  Array.blit t.assign 0 t.model 0 t.nvars

let solve_assuming ?(options = Options.default) t assumptions =
  if t.levels <> 0 then invalid_arg "Sat.solve_assuming: mid-solve";
  if not t.ok then Unsat
  else begin
    let limit =
      match options.Options.budget with None -> max_int | Some b -> b
    in
    if options.Options.seed <> 0L then seed_phases t options.Options.seed;
    let start_conflicts = t.n_conflicts in
    let start_propagations = t.n_propagations in
    let n_assumed = Array.length assumptions in
    let result = ref None in
    let restart_no = ref 0 in
    let restart_left = ref (options.Options.restart_base * luby 0) in
    while !result = None do
      let confl = propagate t in
      if confl >= 0 then begin
        t.n_conflicts <- t.n_conflicts + 1;
        decr restart_left;
        if t.levels = 0 then begin
          t.ok <- false;
          result := Some Unsat
        end
        else if t.n_conflicts - start_conflicts >= limit then
          result := Some Unknown
        else begin
          let learnt, blevel = analyze t confl in
          backjump t blevel;
          (if Array.length learnt = 1 then enqueue t learnt.(0) (-1)
           else begin
             let ci = store_clause t learnt in
             enqueue t learnt.(0) ci
           end);
          decay t
        end
      end
      else if t.levels < n_assumed then begin
        (* Re-establish the next assumption as a decision. Each assumption
           opens its own level even when already implied, so assumption i
           always sits at level i + 1. *)
        let p = assumptions.(t.levels) in
        match lit_value t p with
        | 0 ->
          (* The prefix of assumptions (plus the problem clauses) forces
             this one false: unsat under assumptions, but the instance
             itself stays alive. *)
          result := Some Unsat
        | 1 -> push_level t
        | _ ->
          push_level t;
          t.n_decisions <- t.n_decisions + 1;
          enqueue t p (-1)
      end
      else if !restart_left <= 0 then begin
        incr restart_no;
        restart_left := options.Options.restart_base * luby !restart_no;
        backjump t 0
      end
      else if not (decide t) then begin
        save_model t;
        result := Some Sat
      end
    done;
    (* Roll back to level 0, keeping learned clauses: the solver is ready
       for more clauses or another query. *)
    backjump t 0;
    Obs.Counter.add conflicts_c (t.n_conflicts - start_conflicts);
    Obs.Counter.add propagations_c (t.n_propagations - start_propagations);
    match !result with Some r -> r | None -> assert false
  end

let solve ?options t = solve_assuming ?options t [||]
let value t v = t.model.(v) = 1
