(** Incremental CDCL SAT solver shared by equivalence checking and ATPG.

    A self-contained conflict-driven clause-learning solver in the MiniSat
    lineage: two-watched-literal propagation, first-UIP conflict analysis
    with non-chronological backjumping, VSIDS-style decaying variable
    activities (binary max-heap), phase saving and Luby-sequence restarts.
    No preprocessing and no learned-clause deletion — the CNFs produced by
    {!Cnf} for miters are small and heavily structurally shared, and the
    conflict budget bounds memory growth.

    The solver is {e incremental}: after every {!solve} or {!solve_assuming}
    call the trail is rolled back to decision level 0 while learned clauses,
    variable activities and saved phases are retained, so clauses may be
    added between calls and a sequence of assumption-based queries on one
    solver amortises all earlier work. Satisfying assignments are copied
    into a separate model the rollback does not disturb; read them with
    {!value}.

    Variables are dense non-negative integers handed out by {!new_var}.
    Literals are integers [2*v] (positive) and [2*v + 1] (negated); use
    {!lit}, {!neg}, {!var_of} and {!is_neg} instead of relying on the
    encoding. A [t] is single-owner mutable state: never share one across
    domains. *)

type t

(** Per-call search configuration, in the same config-record style as
    [Campaign.config] and [Engine.options]. *)
module Options : sig
  type t = {
    budget : int option;
        (** Conflict budget for this call; [None] is unlimited. Exhausting
            it yields {!Unknown}. Counted per call, not cumulatively. *)
    restart_base : int;
        (** Conflicts per Luby restart unit (MiniSat's 100). *)
    seed : int64;
        (** [0L] keeps the deterministic all-false initial phases; any other
            value randomises the {e initial} phase of each variable once
            (phase saving still takes over afterwards), which decorrelates
            repeated searches on hard instances. *)
  }

  val default : t
  (** [{ budget = None; restart_base = 100; seed = 0L }]. *)
end

val create : unit -> t
(** A fresh, empty instance: no variables, no clauses, decision level 0. *)

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val lit : int -> int
(** Positive literal of a variable. *)

val neg : int -> int
(** Negation of a literal (involutive). *)

val var_of : int -> int
(** Variable underlying a literal. *)

val is_neg : int -> bool
(** Whether the literal is the negated phase of its variable. *)

val add_clause : t -> int array -> unit
(** Add a clause (a disjunction of literals). Tautologies are dropped,
    duplicate literals merged; an empty clause (or a contradicting pair of
    unit clauses) makes the instance trivially unsatisfiable. Clauses may
    be added at creation time or between solver calls — the solver is
    always at decision level 0 outside {!solve}/{!solve_assuming}. *)

type outcome =
  | Sat  (** A satisfying assignment exists; read it with {!value}. *)
  | Unsat  (** Proved unsatisfiable (under the assumptions, if any). *)
  | Unknown  (** Conflict budget exhausted before a verdict. *)

val solve : ?options:Options.t -> t -> outcome
(** Run the CDCL loop with no assumptions. Equivalent to
    [solve_assuming t [||]]. *)

val solve_assuming : ?options:Options.t -> t -> int array -> outcome
(** [solve_assuming t lits] decides satisfiability with every literal of
    [lits] held true. Assumptions are planted as decisions at levels
    [1..n], re-established after restarts and backjumps, so [Unsat] here
    means "unsatisfiable {e under these assumptions}" and leaves the
    instance usable — only a conflict at level 0 marks the instance
    permanently unsatisfiable. On return (any outcome) the solver is back
    at decision level 0 with learned clauses retained; a [Sat] model is
    saved for {!value} before the rollback. *)

val value : t -> int -> bool
(** Model value of a variable, from the most recent call that returned
    [Sat]. Meaningless if no call has returned [Sat] yet. *)

val num_vars : t -> int
(** Variables allocated so far with {!new_var}. *)

val num_clauses : t -> int
(** Problem clauses added so far (learned clauses excluded). *)

val num_learnt : t -> int
(** Learned clauses currently retained. *)

val decisions : t -> int
(** Cumulative decisions across all solver calls on this [t]. *)

val conflicts : t -> int
(** Cumulative conflicts across all solver calls on this [t]. *)

val propagations : t -> int
(** Cumulative unit propagations across all solver calls on this [t]. *)
