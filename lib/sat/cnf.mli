(** Tseitin CNF encoding of netlists, with structural hashing.

    Translates {!Circuit.t} logic into clauses over a {!Sat} solver, one
    definitional variable per distinct gate. Encoding is literal-based, so
    inverting kinds are free: [Not]/[Nand]/[Nor]/[Xnor] return the negation
    of the underlying [Buf]/[And]/[Or]/[Xor] literal without extra variables
    or clauses. [Or] is canonicalised to [And] by De Morgan.

    Structural hashing keys every [And]/[Xor] node on its (sorted, constant-
    folded, deduplicated) fanin literals: encoding two circuits into the same
    environment collapses their shared logic to shared variables. This is
    what makes per-replacement miters in the resynthesis engine cheap, and
    what lets {!Sat_atpg} encode a faulty cone against the good circuit —
    the untouched cone of both copies maps to the {e same} literals and
    drops out of the problem entirely. *)

type env
(** An encoding environment: a solver plus the structural-hash table and the
    designated constant-true literal. *)

val create : Sat.t -> env
(** Fresh environment over [sat]; allocates the constant-true variable and
    asserts it with a unit clause. *)

val solver : env -> Sat.t
(** The solver this environment encodes into. *)

val ltrue : env -> int
(** The literal that is true in every model of the environment. *)

val lfalse : env -> int
(** Negation of {!ltrue}. *)

val no_lit : int
(** Sentinel ([min_int]) marking a node with no encoded literal in the map
    returned by {!encode_nodes}. *)

val and_lits : env -> int list -> int
(** Conjunction of literals: folds constants, deduplicates, recognises
    complementary pairs, then hashes. The empty conjunction is {!ltrue}. *)

val or_lits : env -> int list -> int
(** Disjunction, via De Morgan on {!and_lits}; the empty disjunction is
    {!lfalse}. *)

val xor_lits : env -> int list -> int
(** Parity of the literals (the netlist semantics of k-ary [Xor]). *)

val encode_nodes : env -> pi_lits:int array -> Circuit.t -> int array
(** Encode a whole circuit and expose the structural-hash node map:
    [pi_lits.(j)] is the literal driving primary input [j] (indexed like
    {!Circuit.inputs}); the result maps every node id of the circuit to its
    encoded literal ({!no_lit} for dead nodes that are never reached from
    the topological order). This is the hook that lets callers pin circuit
    nodes to solver variables — e.g. to assert fault-site values or build
    miters over internal nets. The circuit is not modified. Raises
    [Invalid_argument] if [pi_lits] is shorter than the circuit's input
    list. *)

val encode : env -> pi_lits:int array -> Circuit.t -> int array
(** Like {!encode_nodes} but returns one literal per primary output
    (indexed like {!Circuit.outputs}). *)
