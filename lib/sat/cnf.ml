(* Tseitin encoding with structural hashing over (kind, sorted fanin lits). *)

type key =
  | Kand of int list
  | Kxor of int * int

type env = {
  sat : Sat.t;
  tlit : int;  (* constant-true literal *)
  cache : (key, int) Hashtbl.t;
}

let create sat =
  let v = Sat.new_var sat in
  let tlit = Sat.lit v in
  Sat.add_clause sat [| tlit |];
  { sat; tlit; cache = Hashtbl.create 256 }

let solver env = env.sat
let ltrue env = env.tlit
let lfalse env = Sat.neg env.tlit
let no_lit = min_int

(* Sorted fanin list with constants folded and duplicates removed; [None]
   when a complementary pair (or constant false) forces the conjunction to
   false. *)
let normalise_and env lits =
  let lits = List.filter (fun l -> l <> env.tlit) lits in
  if List.exists (fun l -> l = lfalse env) lits then None
  else
    let lits = List.sort_uniq compare lits in
    if List.exists (fun l -> List.mem (Sat.neg l) lits) lits then None
    else Some lits

let and_lits env lits =
  match normalise_and env lits with
  | None -> lfalse env
  | Some [] -> env.tlit
  | Some [ l ] -> l
  | Some lits -> (
    let key = Kand lits in
    match Hashtbl.find_opt env.cache key with
    | Some l -> l
    | None ->
      let out = Sat.lit (Sat.new_var env.sat) in
      (* out -> l_i, and (l_1 & ... & l_k) -> out *)
      List.iter (fun l -> Sat.add_clause env.sat [| Sat.neg out; l |]) lits;
      Sat.add_clause env.sat
        (Array.of_list (out :: List.map Sat.neg lits));
      Hashtbl.add env.cache key out;
      out)

let or_lits env lits = Sat.neg (and_lits env (List.map Sat.neg lits))

let xor2 env a b =
  if a = env.tlit then Sat.neg b
  else if a = lfalse env then b
  else if b = env.tlit then Sat.neg a
  else if b = lfalse env then a
  else if a = b then lfalse env
  else if a = Sat.neg b then env.tlit
  else begin
    (* Canonical form: both operands in positive phase, sorted; the result
       phase carries the stripped signs. *)
    let sign = (a land 1) lxor (b land 1) = 1 in
    let a = a land lnot 1 and b = b land lnot 1 in
    let a, b = if a <= b then (a, b) else (b, a) in
    let base =
      let key = Kxor (a, b) in
      match Hashtbl.find_opt env.cache key with
      | Some l -> l
      | None ->
        let x = Sat.lit (Sat.new_var env.sat) in
        let n = Sat.neg in
        Sat.add_clause env.sat [| n x; a; b |];
        Sat.add_clause env.sat [| n x; n a; n b |];
        Sat.add_clause env.sat [| x; n a; b |];
        Sat.add_clause env.sat [| x; a; n b |];
        Hashtbl.add env.cache key x;
        x
    in
    if sign then Sat.neg base else base
  end

let xor_lits env lits = List.fold_left (xor2 env) (lfalse env) lits

let encode_kind env kind args =
  let args = Array.to_list args in
  match (kind : Gate.kind) with
  | Gate.Input -> invalid_arg "Cnf.encode_kind: Input"
  | Gate.Const0 -> lfalse env
  | Gate.Const1 -> env.tlit
  | Gate.Buf -> List.hd args
  | Gate.Not -> Sat.neg (List.hd args)
  | Gate.And -> and_lits env args
  | Gate.Or -> or_lits env args
  | Gate.Nand -> Sat.neg (and_lits env args)
  | Gate.Nor -> Sat.neg (or_lits env args)
  | Gate.Xor -> xor_lits env args
  | Gate.Xnor -> Sat.neg (xor_lits env args)

let encode_nodes env ~pi_lits c =
  let inputs = Circuit.inputs c in
  if Array.length pi_lits < Array.length inputs then
    invalid_arg "Cnf.encode_nodes: not enough input literals";
  let node_lit = Array.make (Circuit.size c) no_lit in
  Array.iteri (fun j id -> node_lit.(id) <- pi_lits.(j)) inputs;
  Array.iter
    (fun id ->
      match Circuit.kind c id with
      | Gate.Input -> ()
      | kind ->
        let args = Array.map (fun f -> node_lit.(f)) (Circuit.fanins c id) in
        node_lit.(id) <- encode_kind env kind args)
    (Circuit.topo_order c);
  node_lit

let encode env ~pi_lits c =
  let node_lit = encode_nodes env ~pi_lits c in
  Array.map (fun o -> node_lit.(o)) (Circuit.outputs c)
