type spec = {
  perm : int array;
  lo : int;
  hi : int;
  complemented : bool;
}

let pp_spec ppf s =
  Format.fprintf ppf "perm (%s), L=%d, U=%d%s"
    (String.concat " "
       (Array.to_list (Array.map (fun v -> Printf.sprintf "y%d" v) s.perm)))
    s.lo s.hi
    (if s.complemented then ", complemented" else "")

let inverse_perm p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun j v -> inv.(v - 1) <- j + 1) p;
  inv

let spec_table n s =
  if Array.length s.perm <> n then invalid_arg "Comparison_fn.spec_table: arity";
  let base = Truthtable.interval n ~lo:s.lo ~hi:s.hi in
  let base = if s.complemented then Truthtable.lnot base else base in
  Truthtable.permute base (inverse_perm s.perm)

let check f s =
  Truthtable.arity f = Array.length s.perm
  &&
  let permuted = Truthtable.permute f s.perm in
  let target = if s.complemented then Truthtable.lnot permuted else permuted in
  match Truthtable.as_interval target with
  | Some (l, u) -> l = s.lo && u = s.hi
  | None -> false

let is_empty t = Truthtable.is_const t = Some false
let is_full t = Truthtable.is_const t = Some true

(* --- Exact engine --------------------------------------------------------
   Positions returned by the recursions are 1-based indices into the
   *current* variable set; [absolute] converts a chain of relative picks to
   original variable numbers. *)

let absolute picks n =
  let remaining = ref (List.init n (fun i -> i + 1)) in
  List.map
    (fun q ->
      let v = List.nth !remaining (q - 1) in
      remaining := List.filteri (fun i _ -> i <> q - 1) !remaining;
      v)
    picks

(* Memo tables keyed on the packed-word truth tables themselves
   ({!Truthtable.equal} / {!Truthtable.hash}) — no hex-string dumps, no
   allocation per lookup. *)
module TT = Hashtbl.Make (struct
  type t = Truthtable.t

  let equal = Truthtable.equal
  let hash = Truthtable.hash
end)

module TTpair = Hashtbl.Make (struct
  type t = Truthtable.t * Truthtable.t

  let equal (a, b) (a', b') = Truthtable.equal a a' && Truthtable.equal b b'
  let hash (a, b) = ((Truthtable.hash a * 0x01000193) lxor Truthtable.hash b) land max_int
end)

type memos = {
  sufpre_memo : int list option TTpair.t;
  interval_memo : int list option TT.t;
}

(* Shared-permutation search: exists an order of the current variables under
   which [g]'s ON-set is a suffix interval (or empty) and [h]'s ON-set is a
   prefix interval (or empty). *)
let rec sufpre ms g h =
  let k = Truthtable.arity g in
  if k = 0 then Some []
  else begin
    let key = (g, h) in
    match TTpair.find_opt ms.sufpre_memo key with
    | Some r -> r
    | None ->
      let rec try_var x =
        if x > k then None
        else begin
          let g0 = Truthtable.cofactor g ~var:x false
          and g1 = Truthtable.cofactor g ~var:x true
          and h0 = Truthtable.cofactor h ~var:x false
          and h1 = Truthtable.cofactor h ~var:x true in
          let attempt cond g' h' =
            if cond then sufpre ms g' h' else None
          in
          let sub =
            match attempt (is_empty g0 && is_empty h1) g1 h0 with
            | Some p -> Some p
            | None -> (
              match attempt (is_empty g0 && is_full h0) g1 h1 with
              | Some p -> Some p
              | None -> (
                match attempt (is_full g1 && is_empty h1) g0 h0 with
                | Some p -> Some p
                | None -> attempt (is_full g1 && is_full h0) g0 h1))
          in
          match sub with
          | Some p -> Some (x :: p)
          | None -> try_var (x + 1)
        end
      in
      let r = try_var 1 in
      TTpair.add ms.sufpre_memo key r;
      r
  end

(* ON-set is a (non-empty) contiguous interval under some variable order. *)
let rec interval ms g =
  let k = Truthtable.arity g in
  (* Picks are relative to the remaining variables, so "any order" is the
     all-ones pick sequence (always take the first leftover variable). *)
  if is_full g then Some (List.init k (fun _ -> 1))
  else if is_empty g then None
  else begin
    match TT.find_opt ms.interval_memo g with
    | Some r -> r
    | None ->
      let rec try_var x =
        if x > k then None
        else begin
          let g0 = Truthtable.cofactor g ~var:x false
          and g1 = Truthtable.cofactor g ~var:x true in
          let sub =
            if is_empty g1 then interval ms g0
            else if is_empty g0 then interval ms g1
            else sufpre ms g0 g1
          in
          match sub with
          | Some p -> Some (x :: p)
          | None -> try_var (x + 1)
        end
      in
      let r = try_var 1 in
      TT.add ms.interval_memo g r;
      r
  end

let spec_of_perm f perm ~complemented =
  let permuted = Truthtable.permute f perm in
  let target = if complemented then Truthtable.lnot permuted else permuted in
  match Truthtable.as_interval target with
  | Some (lo, hi) -> Some { perm; lo; hi; complemented }
  | None -> None

let identify_exact f =
  let n = Truthtable.arity f in
  let ms = { sufpre_memo = TTpair.create 64; interval_memo = TT.create 64 } in
  let from_picks complemented picks =
    let perm = Array.of_list (absolute picks n) in
    spec_of_perm f perm ~complemented
  in
  match interval ms f with
  | Some picks -> from_picks false picks
  | None -> (
    match interval ms (Truthtable.lnot f) with
    | Some picks -> from_picks true picks
    | None -> None)

(* --- Sampled engine ------------------------------------------------------ *)

let factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

let rec permutations = function
  | [] -> Seq.return []
  | l ->
    List.to_seq l
    |> Seq.concat_map (fun x ->
           Seq.map (fun rest -> x :: rest) (permutations (List.filter (( <> ) x) l)))

let try_perm f perm =
  match spec_of_perm f perm ~complemented:false with
  | Some s -> Some s
  | None -> spec_of_perm f perm ~complemented:true

let identify_sampled ?(budget = 200) rng f =
  let n = Truthtable.arity f in
  if n = 0 then try_perm f [||]
  else if n <= 8 && factorial n <= budget then
    (* Exhaustive: complete for small arities. *)
    Seq.fold_left
      (fun acc p -> match acc with Some _ -> acc | None -> try_perm f (Array.of_list p))
      None
      (permutations (List.init n (fun i -> i + 1)))
  else begin
    let identity = Array.init n (fun i -> i + 1) in
    let rec sample k =
      if k >= budget then None
      else begin
        let p = Array.copy identity in
        Rng.shuffle rng p;
        match try_perm f p with Some s -> Some s | None -> sample (k + 1)
      end
    in
    match try_perm f identity with Some s -> Some s | None -> sample 1
  end

type engine = Exact | Sampled of int

let identify engine rng f =
  match engine with
  | Exact -> identify_exact f
  | Sampled budget -> identify_sampled ~budget rng f

(* --- Run-scoped identification cache ------------------------------------- *)

module Cache = struct
  type t = spec option TT.t

  let create () = TT.create 4096
  let find = TT.find_opt

  let add c f verdict = if not (TT.mem c f) then TT.add c f verdict

  let length = TT.length
end

(* --- Don't-care-aware identification ------------------------------------- *)

let dc_matches ~care_on ~dc s =
  let n = Truthtable.arity care_on in
  Array.length s.perm = n
  && Truthtable.arity dc = n
  &&
  let g = spec_table n s in
  let diff = Truthtable.lxor_ g care_on in
  (* every disagreement must be a don't-care *)
  Truthtable.is_const (Truthtable.land_ diff (Truthtable.lnot dc)) = Some false

(* Under permutation [perm], does some interval agree with the cares? Use the
   tightest interval spanning the care minterms of [pos] and require its
   interior to avoid care minterms of [neg]. *)
let dc_span f_pos f_neg perm ~complemented =
  let pos = Truthtable.permute f_pos perm in
  let neg = Truthtable.permute f_neg perm in
  match Truthtable.minterms pos with
  | [] -> None
  | first :: rest ->
    let lo = first in
    let hi = List.fold_left (fun _ m -> m) first rest in
    let ok = ref true in
    for m = lo to hi do
      if Truthtable.get neg m then ok := false
    done;
    if !ok then Some { perm; lo; hi; complemented } else None

let identify_dc ?(budget = 200) rng ~care_on ~dc =
  let n = Truthtable.arity care_on in
  if Truthtable.arity dc <> n then invalid_arg "identify_dc: arity mismatch";
  let care_off = Truthtable.lnot (Truthtable.lor_ care_on dc) in
  let try_perm perm =
    match dc_span care_on care_off perm ~complemented:false with
    | Some s -> Some s
    | None -> dc_span care_off care_on perm ~complemented:true
  in
  if n = 0 then try_perm [||]
  else if n <= 8 && factorial n <= budget then
    Seq.fold_left
      (fun acc p ->
        match acc with Some _ -> acc | None -> try_perm (Array.of_list p))
      None
      (permutations (List.init n (fun i -> i + 1)))
  else begin
    let identity = Array.init n (fun i -> i + 1) in
    let rec sample k =
      if k >= budget then None
      else begin
        let p = Array.copy identity in
        Rng.shuffle rng p;
        match try_perm p with Some s -> Some s | None -> sample (k + 1)
      end
    in
    match try_perm identity with Some s -> Some s | None -> sample 1
  end
