(** Comparison-function identification (Definition 1 of the paper).

    A function [f(y_1..y_n)] is a comparison function iff there is a
    permutation [(x_1..x_n)] of its inputs and bounds [L <= U] such that the
    minterms with [f = 1] are exactly those whose decimal value (x_1 = MSB)
    lies in [L..U]. Following the paper's experiments, a function whose
    OFF-set is an interval is also accepted and realised as a complemented
    comparison unit.

    Two identification engines are provided:
    - {!identify_exact}: a complete recursive decomposition. [f] is an
      interval under MSB [x] iff the cofactor pair splits as (interval, empty),
      (empty, interval) or (suffix, prefix) — the last case requiring one
      {e shared} permutation of the remaining variables, searched jointly with
      memoisation.
    - {!identify_sampled}: the paper's method — try a budget of sampled
      permutations and test contiguity directly. Incomplete but cheap;
      exhaustive (hence complete) when [n! <= budget]. *)

type spec = {
  perm : int array;
      (** [perm.(j)] is the original variable (1-based) placed at position
          [j] (0-based, MSB first). *)
  lo : int;
  hi : int;
  complemented : bool;
      (** When true, the OFF-set of the original function is [lo..hi] and the
          unit output must be inverted. *)
}

val pp_spec : Format.formatter -> spec -> unit

val spec_table : int -> spec -> Truthtable.t
(** The function a spec denotes, over [n] variables in original order. *)

val check : Truthtable.t -> spec -> bool
(** Does the spec denote exactly this function? *)

val identify_exact : Truthtable.t -> spec option
(** Complete for constants too: a constant-true function yields the full
    interval, constant-false the complement of the full interval. *)

val identify_sampled : ?budget:int -> Rng.t -> Truthtable.t -> spec option
(** Default budget: 200 permutations, as in the paper's experiments. *)

type engine = Exact | Sampled of int
(** Identification engine selector used by the resynthesis procedures. *)

val identify : engine -> Rng.t -> Truthtable.t -> spec option

(** Run-scoped identification cache (DESIGN.md §12).

    Maps a truth table — keyed on its packed words via {!Truthtable.equal}
    and {!Truthtable.hash}, no canonical string is ever built — to the
    identification verdict [spec option]. The resynthesis engine shares one
    cache across every candidate, root and pass of a run: the same small
    cone functions recur constantly, and {!identify_exact} is a pure
    function of the table, so a verdict never needs invalidation.

    Only deterministic verdicts may be cached ({!Exact} engine — the
    sampled engine's outcome depends on the per-candidate random stream, so
    caching it would change results between cache-on and cache-off runs).
    The cache itself is not synchronised: concurrent readers are safe only
    while no writer runs. The engine's pool path therefore has workers look
    up against the frozen cache and report misses back for the
    orchestrating domain to merge (see DESIGN.md §12). *)
module Cache : sig
  type t

  val create : unit -> t

  val find : t -> Truthtable.t -> spec option option
  (** [Some verdict] when the table has been identified before —
      [verdict = None] records "not a comparison function". *)

  val add : t -> Truthtable.t -> spec option -> unit
  (** Record a verdict. Adding a key twice keeps the first verdict (for a
      deterministic engine both are equal, so merge order cannot matter). *)

  val length : t -> int
  (** Number of distinct tables cached. *)
end

val identify_dc :
  ?budget:int -> Rng.t -> care_on:Truthtable.t -> dc:Truthtable.t -> spec option
(** Don't-care-aware identification (the paper's first "remaining issue",
    Sec. 6): find a permutation under which the care ON-set spans an interval
    whose interior contains only ON or don't-care minterms (dually for the
    complemented form). The returned spec's function agrees with the target
    on every care minterm but may differ on don't-cares — the caller must
    justify that those combinations cannot occur. Sampled permutations only
    (default budget 200; exhaustive when [n!] fits the budget). *)

val dc_matches : care_on:Truthtable.t -> dc:Truthtable.t -> spec -> bool
(** Does the spec's function agree with [care_on] outside [dc]? *)
