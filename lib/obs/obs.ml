(* Process-wide probe registry behind a single on/off word.

   Counters and histograms are plain records of [Atomic.t] cells, so pool
   workers update them without locks. The span tree is shared across
   domains and guarded by [mu]; each domain tracks its own current-span
   stack in domain-local storage, so concurrent spans from different
   domains aggregate into the same tree without interleaving corruption.
   The registry mutex is also reused for idempotent probe registration.

   The on/off switch is one atomic int with three independent bits —
   metrics (counters, histograms, span tree), event tracing (per-domain
   event buffers, Chrome trace export) and the decision journal (per-domain
   event buffers, JSONL file) — so the fully-disabled fast path in every
   probe is still a single atomic load and one predictable branch. *)

let state = Atomic.make 0
let metrics_bit = 1
let trace_bit = 2
let journal_bit = 4

let rec set_bit b =
  let s = Atomic.get state in
  if not (Atomic.compare_and_set state s (s lor b)) then set_bit b

let rec clear_bit b =
  let s = Atomic.get state in
  if not (Atomic.compare_and_set state s (s land lnot b)) then clear_bit b

let enabled () = Atomic.get state land metrics_bit <> 0
let enable () = set_bit metrics_bit
let disable () = clear_bit metrics_bit

(* The one clock of the subsystem (see the .mli caveat: this is wall time,
   not a monotonic clock, so consumers clamp durations to [>= 0]). *)
let now () = Unix.gettimeofday ()

let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* --- counters ------------------------------------------------------------ *)

type counter = { c_name : string; c_help : string; c_v : int Atomic.t }

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let counters_order : counter list ref = ref [] (* reversed *)

module Counter = struct
  type t = counter

  let make ?(help = "") name =
    locked (fun () ->
        match Hashtbl.find_opt counters_tbl name with
        | Some c -> c
        | None ->
          let c = { c_name = name; c_help = help; c_v = Atomic.make 0 } in
          Hashtbl.add counters_tbl name c;
          counters_order := c :: !counters_order;
          c)

  let incr c = if Atomic.get state land metrics_bit <> 0 then Atomic.incr c.c_v

  let add c n =
    if Atomic.get state land metrics_bit <> 0 then
      ignore (Atomic.fetch_and_add c.c_v n)

  let value c = Atomic.get c.c_v
  let name c = c.c_name
end

(* --- histograms ---------------------------------------------------------- *)

type histogram = {
  h_name : string;
  h_help : string;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_min : int Atomic.t;
  h_max : int Atomic.t;
  h_buckets : int Atomic.t array; (* 64 power-of-two buckets *)
}

let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
let histograms_order : histogram list ref = ref []

(* bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 in
    let v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    !i
  end

let rec atomic_min cell x =
  let cur = Atomic.get cell in
  if x < cur && not (Atomic.compare_and_set cell cur x) then atomic_min cell x

let rec atomic_max cell x =
  let cur = Atomic.get cell in
  if x > cur && not (Atomic.compare_and_set cell cur x) then atomic_max cell x

module Histogram = struct
  type t = histogram

  let make ?(help = "") name =
    locked (fun () ->
        match Hashtbl.find_opt histograms_tbl name with
        | Some h -> h
        | None ->
          let h =
            {
              h_name = name;
              h_help = help;
              h_count = Atomic.make 0;
              h_sum = Atomic.make 0;
              h_min = Atomic.make max_int;
              h_max = Atomic.make min_int;
              h_buckets = Array.init 64 (fun _ -> Atomic.make 0);
            }
          in
          Hashtbl.add histograms_tbl name h;
          histograms_order := h :: !histograms_order;
          h)

  let observe h v =
    if Atomic.get state land metrics_bit <> 0 then begin
      Atomic.incr h.h_count;
      ignore (Atomic.fetch_and_add h.h_sum v);
      atomic_min h.h_min v;
      atomic_max h.h_max v;
      Atomic.incr h.h_buckets.(bucket_of v)
    end

  let count h = Atomic.get h.h_count
  let sum h = Atomic.get h.h_sum
end

(* --- event tracing -------------------------------------------------------- *)

(* Bounded per-domain event buffers. Each domain appends to a private,
   fixed-capacity buffer (no locking, no allocation beyond the event
   record), so tracing never blocks a worker and never grows without
   bound; a full buffer counts drops instead.

   Balance invariant: a Chrome trace wants every B (begin) matched by an E
   (end) on the same tid. Emitting a B therefore also *reserves* one slot
   for its future E ([reserved]), and a B that does not fit pushes [false]
   on [span_ok] so the matching end is suppressed with it. The invariant
   [len + reserved <= capacity] guarantees a reserved E always has room:
   drops can lose whole spans but can never unbalance the stream. *)

module Trace = struct
  type phase = B | E | I | X

  type event = {
    ev_name : string;
    ev_cat : string;
    ev_ph : phase;
    ev_ts : float; (* raw [now ()] at emission *)
    ev_dur : float; (* X only, seconds, >= 0 *)
  }

  let dummy_event = { ev_name = ""; ev_cat = ""; ev_ph = I; ev_ts = 0.; ev_dur = 0. }

  type ring = {
    r_tid : int; (* Domain.self of the owning domain *)
    r_gen : int; (* reset generation this ring belongs to *)
    r_events : event array; (* fixed capacity *)
    mutable r_len : int;
    mutable r_reserved : int; (* slots promised to pending E events *)
    mutable r_dropped : int;
    mutable r_span_ok : bool list; (* per open span: was its B recorded? *)
  }

  (* Export epoch: timestamps are exported relative to process start so
     they stay small and positive (clamped, the clock is wall time). *)
  let epoch = now ()

  let default_capacity = 65_536
  let capacity_cell = Atomic.make default_capacity
  let set_capacity n = Atomic.set capacity_cell (max 16 n)
  let capacity () = Atomic.get capacity_cell

  (* All rings ever registered in the current generation, guarded by [mu].
     [reset] empties the list and bumps the generation; a domain whose
     cached ring is stale re-registers a fresh one, so buffers from
     finished pool domains are reclaimed at every reset. *)
  let rings : ring list ref = ref [] (* reversed registration order *)
  let generation = Atomic.make 0

  let ring_key : ring option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let get_ring () =
    let slot = Domain.DLS.get ring_key in
    let gen = Atomic.get generation in
    match !slot with
    | Some r when r.r_gen = gen -> r
    | _ ->
      let r =
        {
          r_tid = (Domain.self () :> int);
          r_gen = gen;
          r_events = Array.make (Atomic.get capacity_cell) dummy_event;
          r_len = 0;
          r_reserved = 0;
          r_dropped = 0;
          r_span_ok = [];
        }
      in
      locked (fun () -> rings := r :: !rings);
      slot := Some r;
      r

  let enabled () = Atomic.get state land trace_bit <> 0
  let enable () = set_bit trace_bit
  let disable () = clear_bit trace_bit

  let push r ev =
    r.r_events.(r.r_len) <- ev;
    r.r_len <- r.r_len + 1

  let has_room r extra = r.r_len + r.r_reserved + extra <= Array.length r.r_events

  (* Internal emitters: callers have already checked [enabled] (or, for
     span ends, captured the decision at span entry — an end must always
     pop [r_span_ok], even if tracing was switched off mid-span). *)

  let emit_begin ~cat name =
    let r = get_ring () in
    if has_room r 2 then begin
      push r { ev_name = name; ev_cat = cat; ev_ph = B; ev_ts = now (); ev_dur = 0. };
      r.r_reserved <- r.r_reserved + 1;
      r.r_span_ok <- true :: r.r_span_ok
    end
    else begin
      r.r_dropped <- r.r_dropped + 1;
      r.r_span_ok <- false :: r.r_span_ok
    end

  let emit_end ~cat name =
    let r = get_ring () in
    match r.r_span_ok with
    | true :: tl ->
      r.r_span_ok <- tl;
      r.r_reserved <- r.r_reserved - 1;
      push r { ev_name = name; ev_cat = cat; ev_ph = E; ev_ts = now (); ev_dur = 0. }
    | false :: tl ->
      r.r_span_ok <- tl;
      r.r_dropped <- r.r_dropped + 1
    | [] ->
      (* unmatched end (tracing enabled mid-span): drop, never unbalance *)
      r.r_dropped <- r.r_dropped + 1

  let instant ?(cat = "sft") name =
    if Atomic.get state land trace_bit <> 0 then begin
      let r = get_ring () in
      if has_room r 1 then
        push r { ev_name = name; ev_cat = cat; ev_ph = I; ev_ts = now (); ev_dur = 0. }
      else r.r_dropped <- r.r_dropped + 1
    end

  let complete ?(cat = "sft") name ~ts ~dur =
    if Atomic.get state land trace_bit <> 0 then begin
      let r = get_ring () in
      if has_room r 1 then
        push r
          { ev_name = name; ev_cat = cat; ev_ph = X; ev_ts = ts; ev_dur = max 0. dur }
      else r.r_dropped <- r.r_dropped + 1
    end

  type summary = { rings : int; recorded : int; dropped : int }

  let stats () =
    locked (fun () ->
        List.fold_left
          (fun acc r ->
            {
              rings = acc.rings + 1;
              recorded = acc.recorded + r.r_len;
              dropped = acc.dropped + r.r_dropped;
            })
          { rings = 0; recorded = 0; dropped = 0 }
          !rings)

  let reset () =
    locked (fun () ->
        rings := [];
        Atomic.incr generation)

  (* Chrome trace-event JSON (the "JSON array format" Perfetto and
     chrome://tracing accept): one object per event, one [pid] for the
     process, the owning domain's id as [tid]. Timestamps and durations
     are microseconds; [ts] is relative to [epoch] and clamped to >= 0
     (the clock is wall time and may step). *)

  let phase_string = function B -> "B" | E -> "E" | I -> "i" | X -> "X"

  let event_json tid ev =
    let base =
      [
        ("name", Obs_json.String ev.ev_name);
        ("cat", Obs_json.String ev.ev_cat);
        ("ph", Obs_json.String (phase_string ev.ev_ph));
        ("ts", Obs_json.Float (max 0. ((ev.ev_ts -. epoch) *. 1e6)));
        ("pid", Obs_json.Int 1);
        ("tid", Obs_json.Int tid);
      ]
    in
    let extra =
      match ev.ev_ph with
      | X -> [ ("dur", Obs_json.Float (ev.ev_dur *. 1e6)) ]
      | I -> [ ("s", Obs_json.String "t") ]
      | B | E -> []
    in
    Obs_json.Obj (base @ extra)

  let metadata_json tid =
    Obs_json.Obj
      [
        ("name", Obs_json.String "thread_name");
        ("ph", Obs_json.String "M");
        ("pid", Obs_json.Int 1);
        ("tid", Obs_json.Int tid);
        ( "args",
          Obs_json.Obj
            [ ("name", Obs_json.String (Printf.sprintf "domain%d" tid)) ] );
      ]

  let dropped_json tid count =
    Obs_json.Obj
      [
        ("name", Obs_json.String "trace.dropped");
        ("cat", Obs_json.String "trace");
        ("ph", Obs_json.String "i");
        ("ts", Obs_json.Float (max 0. ((now () -. epoch) *. 1e6)));
        ("pid", Obs_json.Int 1);
        ("tid", Obs_json.Int tid);
        ("s", Obs_json.String "t");
        ("args", Obs_json.Obj [ ("count", Obs_json.Int count) ]);
      ]

  let to_json_value () =
    locked (fun () ->
        let rs =
          List.rev !rings
          |> List.filter (fun r -> r.r_len > 0 || r.r_dropped > 0)
        in
        let per_ring r =
          let events = List.init r.r_len (fun i -> event_json r.r_tid r.r_events.(i)) in
          let drops = if r.r_dropped > 0 then [ dropped_json r.r_tid r.r_dropped ] else [] in
          (metadata_json r.r_tid :: events) @ drops
        in
        Obs_json.List (List.concat_map per_ring rs))

  let to_json () = Obs_json.to_string (to_json_value ())

  let write_file file =
    let oc = open_out file in
    output_string oc (to_json ());
    output_char oc '\n';
    close_out oc
end

(* --- decision journal ----------------------------------------------------- *)

(* Append-only structured run record (DESIGN.md §16). Same shape as the
   trace rings: each domain appends decision events to a private bounded
   buffer (one atomic fetch-and-add for the global sequence id, no locks),
   and [finish] — the single writer — merges every buffer in sequence order
   and streams the run out as JSONL. A full buffer counts drops; journaling
   never blocks a worker and never perturbs the computation it records. *)

module Journal = struct
  type event = {
    je_seq : int;
    je_ts : float; (* raw [now ()] at emission *)
    je_kind : string;
    je_fields : (string * Obs_json.t) list;
  }

  let dummy_event = { je_seq = 0; je_ts = 0.; je_kind = ""; je_fields = [] }

  type buf = {
    b_tid : int; (* Domain.self of the owning domain *)
    b_gen : int; (* reset generation this buffer belongs to *)
    b_events : event array; (* fixed capacity *)
    mutable b_len : int;
    mutable b_dropped : int;
  }

  let default_capacity = 65_536
  let capacity_cell = Atomic.make default_capacity
  let set_capacity n = Atomic.set capacity_cell (max 16 n)
  let capacity () = Atomic.get capacity_cell

  (* Global sequence ids give the merged stream a total order that matches
     emission order regardless of which domain recorded an event. *)
  let seq = Atomic.make 0

  (* Open-journal metadata (destination path, producing command, open
     timestamp) and the buffer registry, both guarded by [mu]; generation
     bumps reclaim stale per-domain buffers exactly like the trace rings. *)
  let meta : (string * string * float) option ref = ref None
  let bufs : buf list ref = ref [] (* reversed registration order *)
  let generation = Atomic.make 0

  let buf_key : buf option ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref None)

  let get_buf () =
    let slot = Domain.DLS.get buf_key in
    let gen = Atomic.get generation in
    match !slot with
    | Some b when b.b_gen = gen -> b
    | _ ->
      let b =
        {
          b_tid = (Domain.self () :> int);
          b_gen = gen;
          b_events = Array.make (Atomic.get capacity_cell) dummy_event;
          b_len = 0;
          b_dropped = 0;
        }
      in
      locked (fun () -> bufs := b :: !bufs);
      slot := Some b;
      b

  let enabled () = Atomic.get state land journal_bit <> 0

  let emit kind fields =
    if Atomic.get state land journal_bit <> 0 then begin
      let b = get_buf () in
      if b.b_len < Array.length b.b_events then begin
        let s = Atomic.fetch_and_add seq 1 in
        b.b_events.(b.b_len) <-
          { je_seq = s; je_ts = now (); je_kind = kind; je_fields = fields };
        b.b_len <- b.b_len + 1
      end
      else b.b_dropped <- b.b_dropped + 1
    end

  type summary = { buffers : int; recorded : int; dropped : int }

  let stats () =
    locked (fun () ->
        List.fold_left
          (fun acc b ->
            {
              buffers = acc.buffers + 1;
              recorded = acc.recorded + b.b_len;
              dropped = acc.dropped + b.b_dropped;
            })
          { buffers = 0; recorded = 0; dropped = 0 }
          !bufs)

  let reset () =
    locked (fun () -> bufs := []);
    Atomic.incr generation

  let start ?capacity ~cmd path =
    (match capacity with Some n -> set_capacity n | None -> ());
    locked (fun () ->
        meta := Some (path, cmd, now ());
        bufs := []);
    Atomic.incr generation;
    Atomic.set seq 0;
    set_bit journal_bit

  let version = 1

  let event_json ~t0 tid e =
    Obs_json.Obj
      (("ev", Obs_json.String e.je_kind)
      :: ("seq", Obs_json.Int e.je_seq)
      :: ("ts", Obs_json.Float (max 0. (e.je_ts -. t0)))
      :: ("dom", Obs_json.Int tid)
      :: e.je_fields)

  let finish () =
    clear_bit journal_bit;
    let opened, bs =
      locked (fun () ->
          let r = (!meta, !bufs) in
          meta := None;
          bufs := [];
          r)
    in
    Atomic.incr generation;
    match opened with
    | None -> { buffers = 0; recorded = 0; dropped = 0 }
    | Some (path, cmd, t0) ->
      let events =
        List.concat_map
          (fun b -> List.init b.b_len (fun i -> (b.b_tid, b.b_events.(i))))
          bs
        |> List.sort (fun (_, a) (_, b) -> Int.compare a.je_seq b.je_seq)
      in
      let dropped = List.fold_left (fun acc b -> acc + b.b_dropped) 0 bs in
      let summary =
        { buffers = List.length bs; recorded = List.length events; dropped }
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let line v =
            output_string oc (Obs_json.to_string v);
            output_char oc '\n'
          in
          line
            (Obs_json.Obj
               [
                 ("ev", Obs_json.String "journal_begin");
                 ("journal_version", Obs_json.Int version);
                 ("tool", Obs_json.String "sft");
                 ("cmd", Obs_json.String cmd);
                 ("ts", Obs_json.Float t0);
               ]);
          List.iter (fun (tid, e) -> line (event_json ~t0 tid e)) events;
          line
            (Obs_json.Obj
               [
                 ("ev", Obs_json.String "journal_end");
                 ("events", Obs_json.Int summary.recorded);
                 ("dropped", Obs_json.Int dropped);
                 ("wall_s", Obs_json.Float (max 0. (now () -. t0)));
                 ( "counters",
                   Obs_json.Obj
                     (List.rev_map
                        (fun c -> (c.c_name, Obs_json.Int (Atomic.get c.c_v)))
                        !counters_order) );
               ]));
      summary
end

(* --- spans --------------------------------------------------------------- *)

type node = {
  s_name : string;
  mutable s_calls : int;
  mutable s_wall : float;
  s_kids : (string, node) Hashtbl.t;
  mutable s_kid_order : string list; (* reversed *)
}

let fresh_node name =
  { s_name = name; s_calls = 0; s_wall = 0.; s_kids = Hashtbl.create 4; s_kid_order = [] }

let root = fresh_node ""

(* Per-domain stack of open spans; a worker domain starts at the root. *)
let stack_key : node list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

(* --- runtime sampler ------------------------------------------------------ *)

(* Low-rate process-health sampler: GC deltas ([Gc.quick_stat] is
   domain-local in OCaml 5, so only the main domain samples), peak RSS from
   /proc, and per-domain pool busy counters. Each sample moves the
   [runtime.*] counters and, when a journal is open, appends a
   [runtime_sample] event; [maybe_sample] rate-limits so it can sit on hot
   exits (span close, pool fan-out drain) without measurable cost. *)

module Runtime = struct
  let samples_c = Counter.make "runtime.samples"
  let minor_c = Counter.make "runtime.minor_words"
  let major_c = Counter.make "runtime.major_words"
  let compactions_c = Counter.make "runtime.compactions"
  let maxrss_c = Counter.make "runtime.maxrss_kb"

  type sampler = {
    mutable s_init : bool;
    mutable s_last : float; (* [now ()] of the previous sample *)
    mutable s_minor : float; (* cumulative Gc words at the previous sample *)
    mutable s_major : float;
    mutable s_compactions : int;
    mutable s_count : int;
  }

  let sampler =
    { s_init = false; s_last = 0.; s_minor = 0.; s_major = 0.; s_compactions = 0; s_count = 0 }

  let interval_cell = Atomic.make 0.25
  let set_interval s = Atomic.set interval_cell (max 0.01 s)

  (* Peak resident set (kB) from /proc/self/status VmHWM; 0 where absent. *)
  let maxrss_kb () =
    match open_in "/proc/self/status" with
    | exception Sys_error _ -> 0
    | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            let rest = String.sub line 6 (String.length line - 6) in
            int_of_float
              (try Scanf.sscanf rest " %d" (fun n -> float_of_int n) with _ -> 0.)
          else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

  (* Busy-time snapshot of the pool's per-domain counters (every counter
     named pool.domainN...), reported inside journal samples so a report can
     plot utilisation. *)
  let busy_fields () =
    let cs = locked (fun () -> !counters_order) in
    List.filter_map
      (fun c ->
        if String.length c.c_name > 11 && String.sub c.c_name 0 11 = "pool.domain" then
          Some (c.c_name, Obs_json.Int (Atomic.get c.c_v))
        else None)
      (List.rev cs)

  let sample_locked () =
    let q = Gc.quick_stat () in
    let t = now () in
    if not sampler.s_init then begin
      sampler.s_init <- true;
      sampler.s_minor <- q.Gc.minor_words;
      sampler.s_major <- q.Gc.major_words;
      sampler.s_compactions <- q.Gc.compactions
    end;
    let dminor = max 0. (q.Gc.minor_words -. sampler.s_minor) in
    let dmajor = max 0. (q.Gc.major_words -. sampler.s_major) in
    let dcompact = max 0 (q.Gc.compactions - sampler.s_compactions) in
    sampler.s_minor <- q.Gc.minor_words;
    sampler.s_major <- q.Gc.major_words;
    sampler.s_compactions <- q.Gc.compactions;
    sampler.s_last <- t;
    sampler.s_count <- sampler.s_count + 1;
    let rss = maxrss_kb () in
    (* Counters are monotonic: keep maxrss at its peak by adding the
       difference rather than overwriting. *)
    let prev_rss = Counter.value maxrss_c in
    (dminor, dmajor, dcompact, q.Gc.heap_words, rss, max 0 (rss - prev_rss))

  let sample () =
    if Atomic.get state land (metrics_bit lor journal_bit) <> 0
       && Domain.is_main_domain ()
    then begin
      let span =
        match !(Domain.DLS.get stack_key) with n :: _ -> n.s_name | [] -> ""
      in
      let dminor, dmajor, dcompact, heap_words, rss, drss =
        locked sample_locked
      in
      Counter.incr samples_c;
      Counter.add minor_c (int_of_float dminor);
      Counter.add major_c (int_of_float dmajor);
      Counter.add compactions_c dcompact;
      Counter.add maxrss_c drss;
      if Atomic.get state land journal_bit <> 0 then
        Journal.emit "runtime_sample"
          [
            ("span", Obs_json.String span);
            ("minor_words_d", Obs_json.Float dminor);
            ("major_words_d", Obs_json.Float dmajor);
            ("compactions_d", Obs_json.Int dcompact);
            ("heap_words", Obs_json.Int heap_words);
            ("maxrss_kb", Obs_json.Int rss);
            ("busy_us", Obs_json.Obj (busy_fields ()));
          ]
    end

  let maybe_sample () =
    if Atomic.get state land (metrics_bit lor journal_bit) <> 0
       && Domain.is_main_domain ()
    then begin
      let due =
        locked (fun () ->
            now () -. sampler.s_last >= Atomic.get interval_cell
            || not sampler.s_init)
      in
      if due then sample ()
    end

  let samples () = locked (fun () -> sampler.s_count)

  let reset () =
    locked (fun () ->
        sampler.s_init <- false;
        sampler.s_last <- 0.;
        sampler.s_minor <- 0.;
        sampler.s_major <- 0.;
        sampler.s_compactions <- 0;
        sampler.s_count <- 0)
end

module Span = struct
  let with_ name f =
    let s = Atomic.get state in
    if s = 0 then f ()
    else begin
      let metrics = s land metrics_bit <> 0 in
      let tracing = s land trace_bit <> 0 in
      let journaling = s land journal_bit <> 0 in
      let node =
        if not metrics then None
        else begin
          let stack = Domain.DLS.get stack_key in
          let parent = match !stack with n :: _ -> n | [] -> root in
          let node =
            locked (fun () ->
                match Hashtbl.find_opt parent.s_kids name with
                | Some n -> n
                | None ->
                  let n = fresh_node name in
                  Hashtbl.add parent.s_kids name n;
                  parent.s_kid_order <- name :: parent.s_kid_order;
                  n)
          in
          stack := node :: !stack;
          Some node
        end
      in
      if tracing then Trace.emit_begin ~cat:"span" name;
      let t0 = now () in
      Fun.protect
        ~finally:(fun () ->
          (* Wall time can step backwards: never account a negative span. *)
          let dt = max 0. (now () -. t0) in
          if tracing then Trace.emit_end ~cat:"span" name;
          if journaling then begin
            Journal.emit "span"
              [ ("name", Obs_json.String name); ("dur_s", Obs_json.Float dt) ];
            Runtime.maybe_sample ()
          end;
          match node with
          | None -> ()
          | Some node ->
            let stack = Domain.DLS.get stack_key in
            (match !stack with _ :: tl -> stack := tl | [] -> ());
            locked (fun () ->
                node.s_calls <- node.s_calls + 1;
                node.s_wall <- node.s_wall +. dt))
        f
    end

  type info = { name : string; calls : int; wall : float; children : info list }

  let rec info_of n =
    {
      name = n.s_name;
      calls = n.s_calls;
      wall = n.s_wall;
      children =
        List.rev_map (fun k -> info_of (Hashtbl.find n.s_kids k)) n.s_kid_order;
    }

  let snapshot () =
    locked (fun () -> (info_of root).children)
end

(* --- reset --------------------------------------------------------------- *)

let reset () =
  locked (fun () ->
      List.iter (fun c -> Atomic.set c.c_v 0) !counters_order;
      List.iter
        (fun h ->
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0;
          Atomic.set h.h_min max_int;
          Atomic.set h.h_max min_int;
          Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
        !histograms_order;
      Hashtbl.reset root.s_kids;
      root.s_kid_order <- [];
      root.s_calls <- 0;
      root.s_wall <- 0.);
  Trace.reset ();
  Journal.reset ();
  Runtime.reset ()

(* --- exporters ----------------------------------------------------------- *)

module Export = struct
  let counters () =
    List.rev_map (fun c -> (c.c_name, Atomic.get c.c_v)) !counters_order

  let histogram_json h =
    let buckets = ref [] in
    for i = 63 downto 0 do
      let n = Atomic.get h.h_buckets.(i) in
      if n > 0 then
        buckets := Obs_json.Obj [ ("pow2", Obs_json.Int i); ("count", Obs_json.Int n) ] :: !buckets
    done;
    let count = Atomic.get h.h_count in
    Obs_json.Obj
      [
        ("count", Obs_json.Int count);
        ("sum", Obs_json.Int (Atomic.get h.h_sum));
        ("min", if count = 0 then Obs_json.Null else Obs_json.Int (Atomic.get h.h_min));
        ("max", if count = 0 then Obs_json.Null else Obs_json.Int (Atomic.get h.h_max));
        ("buckets", Obs_json.List !buckets);
      ]

  let rec span_json (s : Span.info) =
    Obs_json.Obj
      [
        ("name", Obs_json.String s.Span.name);
        ("calls", Obs_json.Int s.Span.calls);
        ("wall_seconds", Obs_json.Float s.Span.wall);
        ("children", Obs_json.List (List.map span_json s.Span.children));
      ]

  let to_json_value () =
    Obs_json.Obj
      [
        ("schema_version", Obs_json.Int 1);
        ("enabled", Obs_json.Bool (enabled ()));
        ("counters", Obs_json.Obj (List.map (fun (n, v) -> (n, Obs_json.Int v)) (counters ())));
        ( "histograms",
          Obs_json.Obj
            (List.rev_map (fun h -> (h.h_name, histogram_json h)) !histograms_order) );
        ("trace", Obs_json.List (List.map span_json (Span.snapshot ())));
      ]

  let to_json () = Obs_json.to_string (to_json_value ())

  let trace_text () =
    let b = Buffer.create 256 in
    let rec walk depth (s : Span.info) =
      Buffer.add_string b
        (Printf.sprintf "%*s%-*s calls %8d  wall %10.6fs\n" (2 * depth) ""
           (max 1 (32 - (2 * depth)))
           s.Span.name s.Span.calls s.Span.wall);
      List.iter (walk (depth + 1)) s.Span.children
    in
    let spans = Span.snapshot () in
    if spans = [] then Buffer.add_string b "  (no spans recorded)\n"
    else List.iter (walk 1) spans;
    Buffer.contents b

  let to_text () =
    let b = Buffer.create 1024 in
    Buffer.add_string b "== metrics ==\ncounters:\n";
    List.iter
      (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-32s %12d\n" n v))
      (counters ());
    Buffer.add_string b "histograms:\n";
    List.iter
      (fun h ->
        let count = Atomic.get h.h_count in
        Buffer.add_string b
          (Printf.sprintf "  %-32s count %8d  sum %12d  min %d  max %d\n" h.h_name
             count (Atomic.get h.h_sum)
             (if count = 0 then 0 else Atomic.get h.h_min)
             (if count = 0 then 0 else Atomic.get h.h_max)))
      (List.rev !histograms_order);
    Buffer.add_string b "trace:\n";
    Buffer.add_string b (trace_text ());
    Buffer.contents b

  let write_file file =
    let oc = open_out file in
    output_string oc (to_json ());
    output_char oc '\n';
    close_out oc
end
