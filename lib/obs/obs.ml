(* Process-wide probe registry behind a single on/off switch.

   Counters and histograms are plain records of [Atomic.t] cells, so pool
   workers update them without locks. The span tree is shared across
   domains and guarded by [mu]; each domain tracks its own current-span
   stack in domain-local storage, so concurrent spans from different
   domains aggregate into the same tree without interleaving corruption.
   The registry mutex is also reused for idempotent probe registration. *)

let on = Atomic.make false
let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let now () = Unix.gettimeofday ()

let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* --- counters ------------------------------------------------------------ *)

type counter = { c_name : string; c_help : string; c_v : int Atomic.t }

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 64
let counters_order : counter list ref = ref [] (* reversed *)

module Counter = struct
  type t = counter

  let make ?(help = "") name =
    locked (fun () ->
        match Hashtbl.find_opt counters_tbl name with
        | Some c -> c
        | None ->
          let c = { c_name = name; c_help = help; c_v = Atomic.make 0 } in
          Hashtbl.add counters_tbl name c;
          counters_order := c :: !counters_order;
          c)

  let incr c = if Atomic.get on then Atomic.incr c.c_v
  let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.c_v n)
  let value c = Atomic.get c.c_v
  let name c = c.c_name
end

(* --- histograms ---------------------------------------------------------- *)

type histogram = {
  h_name : string;
  h_help : string;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_min : int Atomic.t;
  h_max : int Atomic.t;
  h_buckets : int Atomic.t array; (* 64 power-of-two buckets *)
}

let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16
let histograms_order : histogram list ref = ref []

(* bucket 0: v <= 0; bucket i >= 1: 2^(i-1) <= v < 2^i *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 0 in
    let v = ref v in
    while !v > 0 do
      incr i;
      v := !v lsr 1
    done;
    !i
  end

let rec atomic_min cell x =
  let cur = Atomic.get cell in
  if x < cur && not (Atomic.compare_and_set cell cur x) then atomic_min cell x

let rec atomic_max cell x =
  let cur = Atomic.get cell in
  if x > cur && not (Atomic.compare_and_set cell cur x) then atomic_max cell x

module Histogram = struct
  type t = histogram

  let make ?(help = "") name =
    locked (fun () ->
        match Hashtbl.find_opt histograms_tbl name with
        | Some h -> h
        | None ->
          let h =
            {
              h_name = name;
              h_help = help;
              h_count = Atomic.make 0;
              h_sum = Atomic.make 0;
              h_min = Atomic.make max_int;
              h_max = Atomic.make min_int;
              h_buckets = Array.init 64 (fun _ -> Atomic.make 0);
            }
          in
          Hashtbl.add histograms_tbl name h;
          histograms_order := h :: !histograms_order;
          h)

  let observe h v =
    if Atomic.get on then begin
      Atomic.incr h.h_count;
      ignore (Atomic.fetch_and_add h.h_sum v);
      atomic_min h.h_min v;
      atomic_max h.h_max v;
      Atomic.incr h.h_buckets.(bucket_of v)
    end

  let count h = Atomic.get h.h_count
  let sum h = Atomic.get h.h_sum
end

(* --- spans --------------------------------------------------------------- *)

type node = {
  s_name : string;
  mutable s_calls : int;
  mutable s_wall : float;
  s_kids : (string, node) Hashtbl.t;
  mutable s_kid_order : string list; (* reversed *)
}

let fresh_node name =
  { s_name = name; s_calls = 0; s_wall = 0.; s_kids = Hashtbl.create 4; s_kid_order = [] }

let root = fresh_node ""

(* Per-domain stack of open spans; a worker domain starts at the root. *)
let stack_key : node list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

module Span = struct
  let with_ name f =
    if not (Atomic.get on) then f ()
    else begin
      let stack = Domain.DLS.get stack_key in
      let parent = match !stack with n :: _ -> n | [] -> root in
      let node =
        locked (fun () ->
            match Hashtbl.find_opt parent.s_kids name with
            | Some n -> n
            | None ->
              let n = fresh_node name in
              Hashtbl.add parent.s_kids name n;
              parent.s_kid_order <- name :: parent.s_kid_order;
              n)
      in
      stack := node :: !stack;
      let t0 = now () in
      Fun.protect
        ~finally:(fun () ->
          let dt = now () -. t0 in
          (match !stack with _ :: tl -> stack := tl | [] -> ());
          locked (fun () ->
              node.s_calls <- node.s_calls + 1;
              node.s_wall <- node.s_wall +. dt))
        f
    end

  type info = { name : string; calls : int; wall : float; children : info list }

  let rec info_of n =
    {
      name = n.s_name;
      calls = n.s_calls;
      wall = n.s_wall;
      children =
        List.rev_map (fun k -> info_of (Hashtbl.find n.s_kids k)) n.s_kid_order;
    }

  let snapshot () =
    locked (fun () -> (info_of root).children)
end

(* --- reset --------------------------------------------------------------- *)

let reset () =
  locked (fun () ->
      List.iter (fun c -> Atomic.set c.c_v 0) !counters_order;
      List.iter
        (fun h ->
          Atomic.set h.h_count 0;
          Atomic.set h.h_sum 0;
          Atomic.set h.h_min max_int;
          Atomic.set h.h_max min_int;
          Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
        !histograms_order;
      Hashtbl.reset root.s_kids;
      root.s_kid_order <- [];
      root.s_calls <- 0;
      root.s_wall <- 0.)

(* --- exporters ----------------------------------------------------------- *)

module Export = struct
  let counters () =
    List.rev_map (fun c -> (c.c_name, Atomic.get c.c_v)) !counters_order

  let histogram_json h =
    let buckets = ref [] in
    for i = 63 downto 0 do
      let n = Atomic.get h.h_buckets.(i) in
      if n > 0 then
        buckets := Obs_json.Obj [ ("pow2", Obs_json.Int i); ("count", Obs_json.Int n) ] :: !buckets
    done;
    let count = Atomic.get h.h_count in
    Obs_json.Obj
      [
        ("count", Obs_json.Int count);
        ("sum", Obs_json.Int (Atomic.get h.h_sum));
        ("min", if count = 0 then Obs_json.Null else Obs_json.Int (Atomic.get h.h_min));
        ("max", if count = 0 then Obs_json.Null else Obs_json.Int (Atomic.get h.h_max));
        ("buckets", Obs_json.List !buckets);
      ]

  let rec span_json (s : Span.info) =
    Obs_json.Obj
      [
        ("name", Obs_json.String s.Span.name);
        ("calls", Obs_json.Int s.Span.calls);
        ("wall_seconds", Obs_json.Float s.Span.wall);
        ("children", Obs_json.List (List.map span_json s.Span.children));
      ]

  let to_json_value () =
    Obs_json.Obj
      [
        ("schema_version", Obs_json.Int 1);
        ("enabled", Obs_json.Bool (Atomic.get on));
        ("counters", Obs_json.Obj (List.map (fun (n, v) -> (n, Obs_json.Int v)) (counters ())));
        ( "histograms",
          Obs_json.Obj
            (List.rev_map (fun h -> (h.h_name, histogram_json h)) !histograms_order) );
        ("trace", Obs_json.List (List.map span_json (Span.snapshot ())));
      ]

  let to_json () = Obs_json.to_string (to_json_value ())

  let trace_text () =
    let b = Buffer.create 256 in
    let rec walk depth (s : Span.info) =
      Buffer.add_string b
        (Printf.sprintf "%*s%-*s calls %8d  wall %10.6fs\n" (2 * depth) ""
           (max 1 (32 - (2 * depth)))
           s.Span.name s.Span.calls s.Span.wall);
      List.iter (walk (depth + 1)) s.Span.children
    in
    let spans = Span.snapshot () in
    if spans = [] then Buffer.add_string b "  (no spans recorded)\n"
    else List.iter (walk 1) spans;
    Buffer.contents b

  let to_text () =
    let b = Buffer.create 1024 in
    Buffer.add_string b "== metrics ==\ncounters:\n";
    List.iter
      (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-32s %12d\n" n v))
      (counters ());
    Buffer.add_string b "histograms:\n";
    List.iter
      (fun h ->
        let count = Atomic.get h.h_count in
        Buffer.add_string b
          (Printf.sprintf "  %-32s count %8d  sum %12d  min %d  max %d\n" h.h_name
             count (Atomic.get h.h_sum)
             (if count = 0 then 0 else Atomic.get h.h_min)
             (if count = 0 then 0 else Atomic.get h.h_max)))
      (List.rev !histograms_order);
    Buffer.add_string b "trace:\n";
    Buffer.add_string b (trace_text ());
    Buffer.contents b

  let write_file file =
    let oc = open_out file in
    output_string oc (to_json ());
    output_char oc '\n';
    close_out oc
end
