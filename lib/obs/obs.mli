(** Observability: counters, histograms, hierarchical span timers, bounded
    event tracing and a structured decision journal.

    A process-wide registry of named probes with text and JSON exporters.
    Everything is safe to use from {!Domain} pool workers: counter and
    histogram updates are single atomic operations, span bookkeeping takes a
    mutex only on span entry/exit (never inside the timed region), and trace
    and journal events go to a private per-domain buffer with no locking at
    all.

    {b Disabled is free.} The whole subsystem sits behind one global state
    word with three independent bits — metrics ({!enable}), event tracing
    ({!Trace.enable}) and the decision journal ({!Journal.start}) — off by
    default. A disabled probe is a single atomic load and a predictable
    branch — a few nanoseconds — so probes may sit in hot loops. Probes
    never influence the computation they observe: enabling or disabling
    observability cannot change any result bit.

    {b Reset vs. journal.} {!reset} clears {e recorded data} — counters,
    histograms, the span tree, trace buffers, buffered journal events and
    the runtime sampler's baselines — but does not close an open journal:
    the destination file and producing command set by {!Journal.start}
    survive, and only {!Journal.finish} writes the file. A [reset] between
    [start] and [finish] therefore yields a journal that covers just the
    post-reset window.

    {b Clock caveat.} All timing uses {!now}, which is wall-clock time
    ([Unix.gettimeofday]) — the container has no monotonic-clock dependency.
    Wall time can step (NTP, suspend), so every consumer of the clock in
    this library clamps computed durations to [>= 0]; absolute timestamps
    may still jump and are only "monotonic-ish". Instrumented code should
    call {!now} rather than reading its own clock, so a future switch to a
    monotonic source is one-line.

    {b Probe naming convention} (see DESIGN.md §9): lowercase
    [subsystem.metric] with dots as separators, e.g. [fsim.patterns],
    [engine.cut_size], [pool.domain3.busy_us]. Spans use the same style
    ([fsim.batch], [engine.pass], [bench.table6]). Counter names ending in
    [_us] hold microseconds. *)

val enabled : unit -> bool
(** Whether the metrics bit (counters, histograms, span tree) is on. *)

val enable : unit -> unit
(** Switch metrics collection on. Independent of {!Trace.enable} and
    {!Journal.start}. *)

val disable : unit -> unit
(** Switch metrics collection off. Recorded data is kept (see {!reset}). *)

val reset : unit -> unit
(** Zero every counter and histogram, drop the recorded span tree, discard
    all trace and journal buffers and re-arm the runtime sampler's GC/RSS
    baselines ({!Runtime.reset}). Registered probe definitions survive
    (names stay in the registry), and an open journal stays open — see the
    header note on reset vs. journal. *)

val now : unit -> float
(** Wall-clock seconds — the single clock behind span timing, trace events
    and pool busy accounting, exposed so instrumented code does not need
    its own timing dependency. {b Not monotonic}: see the clock caveat
    above; clamp any duration computed from two reads to [>= 0]. *)

module Counter : sig
  type t

  val make : ?help:string -> string -> t
  (** Register (or retrieve — [make] is idempotent per name) a monotonic
      counter. Typically called once at module initialisation. *)

  val incr : t -> unit
  (** Add one. A single atomic increment when metrics are on; a single
      atomic load when off. *)

  val add : t -> int -> unit
  (** Add [n] (callers pass [n >= 0]; counters are monotonic). *)

  val value : t -> int
  (** Current value. Reads are always live, even with metrics off. *)

  val name : t -> string
  (** The registered probe name, e.g. ["fsim.patterns"]. *)
end

module Histogram : sig
  type t

  val make : ?help:string -> string -> t
  (** Register (or retrieve) a histogram with power-of-two buckets:
      bucket 0 counts observations [v <= 0], bucket [i >= 1] counts
      [2{^i-1} <= v < 2{^i}]. *)

  val observe : t -> int -> unit
  (** Record one observation (bucketed by power of two; also tracks count,
      sum, min and max). One atomic load when metrics are off. *)

  val count : t -> int
  (** Number of observations recorded. *)

  val sum : t -> int
  (** Sum of all observed values. *)
end

module Trace : sig
  (** Event-level timeline: who ran what, on which domain, when.

      Every participating domain owns a private fixed-capacity buffer of
      events; emission is append-only with no locking, so tracing never
      blocks a worker. A full buffer {e drops} further events (counted in
      {!stats}) instead of growing or overwriting — memory is bounded by
      [capacity () * live domains] regardless of circuit size.

      Events follow the Chrome trace-event model: [B]/[E] begin/end pairs
      (fed automatically by {!Span.with_}), [i] instants (explicit probes)
      and [X] complete events with a duration (pool chunk execution).
      {b Balance guarantee:} a [B] also reserves buffer space for its [E],
      and a dropped [B] suppresses its matching [E], so the exported stream
      always has balanced begin/end pairs per (tid, name) — even under
      overflow. *)

  val enabled : unit -> bool
  (** Whether the tracing bit is on. *)

  val enable : unit -> unit
  (** Switch event collection on. Tracing is independent of the metrics
      bit: {!Span.with_} emits events whenever tracing is on, and records
      the aggregate span tree whenever metrics are on. *)

  val disable : unit -> unit
  (** Switch event collection off. Buffered events are kept for export. *)

  val set_capacity : int -> unit
  (** Per-domain buffer capacity in events (default 65536, clamped to
      [>= 16]). Affects buffers created afterwards — call it before
      {!enable} (or after {!reset}) from the orchestrating domain. *)

  val capacity : unit -> int
  (** The capacity newly created per-domain buffers will get. *)

  val instant : ?cat:string -> string -> unit
  (** Record an [i] (instant) event on the calling domain's timeline.
      [cat] defaults to ["sft"]. One atomic load when tracing is off. *)

  val complete : ?cat:string -> string -> ts:float -> dur:float -> unit
  (** Record an [X] (complete) event: a slice that started at [ts] (a raw
      {!now} reading) and lasted [dur] seconds (clamped to [>= 0]). *)

  type summary = { rings : int; recorded : int; dropped : int }

  val stats : unit -> summary
  (** Buffer totals across all domains that emitted events since the last
      {!reset}. [dropped > 0] means the capacity was too small for the run
      (raise it with {!set_capacity}); results are unaffected either way. *)

  val reset : unit -> unit
  (** Discard every buffer. Also performed by {!Obs.reset}. *)

  val to_json_value : unit -> Obs_json.t
  (** The recorded timeline as a Chrome trace-event JSON array (the "JSON
      array format" accepted by Perfetto / chrome://tracing): one object
      per event with [name], [cat], [ph] (["B"|"E"|"i"|"X"]), [ts]
      (microseconds, relative to process start, clamped [>= 0]), [pid] 1
      and the owning domain id as [tid]; [X] events carry [dur]
      (microseconds). Each domain's stream is prefixed with an [M]
      (metadata) [thread_name] event and, when events were dropped,
      suffixed with a [trace.dropped] instant whose [args.count] is the
      drop count.

      Call after parallel work has quiesced (pools shut down / joined):
      buffers are read without synchronisation. *)

  val to_json : unit -> string
  (** {!to_json_value} rendered compactly on one line. *)

  val write_file : string -> unit
  (** Write {!to_json} (plus a trailing newline) to a file — the CLI's
      [--trace-out FILE]. *)
end

module Journal : sig
  (** Append-only structured decision journal (DESIGN.md §16).

      Records {e typed decision events} — splice accepts and rollbacks,
      identification verdicts with their cache source, PODEM aborts and SAT
      escalation outcomes, redundancy proofs, CEC verdicts, span closes,
      runtime samples — so a finished run can be analysed offline with
      [sft report]. Same buffering contract as {!Trace}: each domain
      appends to a private bounded buffer (no locks on the emit path; a
      full buffer counts drops instead of blocking or growing), and
      {!finish} — the single writer — merges every buffer in global
      sequence order and streams the run out as JSONL.

      {b File format} (one compact {!Obs_json} object per line):
      a [journal_begin] header carrying [journal_version], the producing
      command and the absolute open timestamp; then one line per event with
      [ev] (the kind), [seq] (global emission order across domains), [ts]
      (seconds since the header timestamp, clamped [>= 0]), [dom] (emitting
      domain id) and the event's own fields; then a [journal_end] footer
      with event/drop totals, wall seconds and a snapshot of every
      registered counter. *)

  val enabled : unit -> bool
  (** Whether the journal bit is on ({!start} called, {!finish} not yet).
      Call sites building non-trivial field lists should gate on this so a
      disabled probe stays one atomic load. *)

  val start : ?capacity:int -> cmd:string -> string -> unit
  (** [start ~cmd path] opens a journal destined for [path], tagging the
      header with the producing command [cmd] (e.g. ["optimize"]). Drops
      any events buffered since the previous journal and resets the global
      sequence counter. [capacity] overrides the per-domain buffer capacity
      (default 65536, clamped to [>= 16]) for buffers created afterwards.
      Nothing is written until {!finish}. *)

  val emit : string -> (string * Obs_json.t) list -> unit
  (** [emit kind fields] appends one event to the calling domain's buffer,
      stamping it with the next global sequence id and the current {!now}.
      No-op (one atomic load) when the journal is off; never blocks. *)

  val set_capacity : int -> unit
  (** Per-domain buffer capacity in events (default 65536, clamped to
      [>= 16]); the sticky form of {!start}'s [capacity]. Affects buffers
      created afterwards. *)

  val capacity : unit -> int
  (** The capacity newly created per-domain buffers will get. *)

  type summary = { buffers : int; recorded : int; dropped : int }

  val stats : unit -> summary
  (** Buffer totals for the currently buffered (unwritten) events.
      [dropped > 0] means per-domain capacity was too small for the run. *)

  val finish : unit -> summary
  (** Close the journal: switch the bit off, merge all buffers in sequence
      order, write the JSONL file (header, events, footer) and return what
      was written. Returns zeros without touching the filesystem if no
      journal was open. Call after parallel work has quiesced, as with
      {!Trace.to_json_value}. *)

  val reset : unit -> unit
  (** Discard buffered events (the open journal, if any, stays open). Also
      performed by {!Obs.reset}. *)
end

module Runtime : sig
  (** Low-rate process-health sampler: GC churn, peak RSS and pool busy
      time.

      Each sample reads [Gc.quick_stat] {e on the main domain only} (GC
      statistics are domain-local in OCaml 5), computes deltas against the
      previous sample, and publishes them twice: as monotonic [runtime.*]
      counters in the metrics export ([runtime.samples], [runtime.minor_words],
      [runtime.major_words], [runtime.compactions], [runtime.maxrss_kb] —
      the latter kept at the peak by adding differences) and, when a
      journal is open, as a [runtime_sample] journal event additionally
      carrying the innermost open span, the live heap size and a snapshot
      of the per-domain [pool.domainN.*] busy counters. Peak RSS comes from
      [/proc/self/status] ([VmHWM]), reported as 0 where unavailable. *)

  val sample : unit -> unit
  (** Take one sample now (main domain, metrics or journal on; otherwise a
      no-op). Call at run boundaries to anchor the baselines / flush the
      final deltas. *)

  val maybe_sample : unit -> unit
  (** Rate-limited {!sample}: does nothing unless the configured interval
      has elapsed since the previous sample. Cheap enough for hot exits —
      one atomic load when both metrics and journal are off, and
      {!Span.with_} calls it on every span close while journaling. *)

  val set_interval : float -> unit
  (** Minimum seconds between {!maybe_sample} samples (default 0.25,
      clamped to [>= 0.01]). *)

  val samples : unit -> int
  (** Samples taken since the last {!reset}. *)

  val reset : unit -> unit
  (** Forget the sampler's baselines and sample count, so the next sample
      re-anchors against current GC/RSS readings instead of reporting a
      cross-reset delta. Also performed by {!Obs.reset}. *)
end

module Span : sig
  val with_ : string -> (unit -> 'a) -> 'a
  (** [with_ name f] times [f ()] and accounts it to the trace-tree node
      [name] under the innermost enclosing span of the {e current domain}
      (pool workers therefore root their spans at the top level). Wall
      clock and call count accumulate across calls; reentrant and
      exception-safe; durations are clamped to [>= 0] (wall clock). When
      {!Trace.enabled}, entry and exit additionally emit [B]/[E] events on
      the calling domain's timeline. When the whole subsystem is disabled
      this is exactly [f ()]. *)

  type info = {
    name : string;
    calls : int;
    wall : float;  (** total wall-clock seconds across [calls] *)
    children : info list;
  }

  val snapshot : unit -> info list
  (** Consistent copy of the recorded span forest (creation order). *)
end

module Export : sig
  val counters : unit -> (string * int) list
  (** Registered counters in creation order. *)

  val to_json_value : unit -> Obs_json.t
  (** The full registry as JSON. Schema (version 1, see DESIGN.md §9):
      {v
      { "schema_version": 1,
        "enabled": <bool>,
        "counters": { "<name>": <int>, ... },
        "histograms": { "<name>": { "count", "sum", "min", "max",
                                    "buckets": [ {"pow2": i, "count": n} ] } },
        "trace": [ { "name", "calls", "wall_seconds", "children": [...] } ] }
      v} *)

  val to_json : unit -> string
  (** [to_json_value] rendered compactly on one line. *)

  val to_text : unit -> string
  (** Human-readable dump: counters, histograms, then the span tree. *)

  val trace_text : unit -> string
  (** Just the span tree, indented two spaces per level. *)

  val write_file : string -> unit
  (** Write [to_json ()] (plus a trailing newline) to a file. *)
end
