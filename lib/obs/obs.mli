(** Observability: counters, histograms, hierarchical span timers and
    bounded event tracing.

    A process-wide registry of named probes with text and JSON exporters.
    Everything is safe to use from {!Domain} pool workers: counter and
    histogram updates are single atomic operations, span bookkeeping takes a
    mutex only on span entry/exit (never inside the timed region), and trace
    events go to a private per-domain buffer with no locking at all.

    {b Disabled is free.} The whole subsystem sits behind one global state
    word with two independent bits — metrics ({!enable}) and event tracing
    ({!Trace.enable}) — off by default. A disabled probe is a single atomic
    load and a predictable branch — a few nanoseconds — so probes may sit in
    hot loops. Probes never influence the computation they observe: enabling
    or disabling observability cannot change any result bit.

    {b Clock caveat.} All timing uses {!now}, which is wall-clock time
    ([Unix.gettimeofday]) — the container has no monotonic-clock dependency.
    Wall time can step (NTP, suspend), so every consumer of the clock in
    this library clamps computed durations to [>= 0]; absolute timestamps
    may still jump and are only "monotonic-ish". Instrumented code should
    call {!now} rather than reading its own clock, so a future switch to a
    monotonic source is one-line.

    {b Probe naming convention} (see DESIGN.md §9): lowercase
    [subsystem.metric] with dots as separators, e.g. [fsim.patterns],
    [engine.cut_size], [pool.domain3.busy_us]. Spans use the same style
    ([fsim.batch], [engine.pass], [bench.table6]). Counter names ending in
    [_us] hold microseconds. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every counter and histogram, drop the recorded span tree and
    discard all trace buffers. Registered probe definitions survive (names
    stay in the registry). *)

val now : unit -> float
(** Wall-clock seconds — the single clock behind span timing, trace events
    and pool busy accounting, exposed so instrumented code does not need
    its own timing dependency. {b Not monotonic}: see the clock caveat
    above; clamp any duration computed from two reads to [>= 0]. *)

module Counter : sig
  type t

  val make : ?help:string -> string -> t
  (** Register (or retrieve — [make] is idempotent per name) a monotonic
      counter. Typically called once at module initialisation. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Histogram : sig
  type t

  val make : ?help:string -> string -> t
  (** Register (or retrieve) a histogram with power-of-two buckets:
      bucket 0 counts observations [v <= 0], bucket [i >= 1] counts
      [2{^i-1} <= v < 2{^i}]. *)

  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int
end

module Trace : sig
  (** Event-level timeline: who ran what, on which domain, when.

      Every participating domain owns a private fixed-capacity buffer of
      events; emission is append-only with no locking, so tracing never
      blocks a worker. A full buffer {e drops} further events (counted in
      {!stats}) instead of growing or overwriting — memory is bounded by
      [capacity () * live domains] regardless of circuit size.

      Events follow the Chrome trace-event model: [B]/[E] begin/end pairs
      (fed automatically by {!Span.with_}), [i] instants (explicit probes)
      and [X] complete events with a duration (pool chunk execution).
      {b Balance guarantee:} a [B] also reserves buffer space for its [E],
      and a dropped [B] suppresses its matching [E], so the exported stream
      always has balanced begin/end pairs per (tid, name) — even under
      overflow. *)

  val enabled : unit -> bool

  val enable : unit -> unit
  (** Switch event collection on. Tracing is independent of the metrics
      bit: {!Span.with_} emits events whenever tracing is on, and records
      the aggregate span tree whenever metrics are on. *)

  val disable : unit -> unit

  val set_capacity : int -> unit
  (** Per-domain buffer capacity in events (default 65536, clamped to
      [>= 16]). Affects buffers created afterwards — call it before
      {!enable} (or after {!reset}) from the orchestrating domain. *)

  val capacity : unit -> int

  val instant : ?cat:string -> string -> unit
  (** Record an [i] (instant) event on the calling domain's timeline.
      [cat] defaults to ["sft"]. One atomic load when tracing is off. *)

  val complete : ?cat:string -> string -> ts:float -> dur:float -> unit
  (** Record an [X] (complete) event: a slice that started at [ts] (a raw
      {!now} reading) and lasted [dur] seconds (clamped to [>= 0]). *)

  type summary = { rings : int; recorded : int; dropped : int }

  val stats : unit -> summary
  (** Buffer totals across all domains that emitted events since the last
      {!reset}. [dropped > 0] means the capacity was too small for the run
      (raise it with {!set_capacity}); results are unaffected either way. *)

  val reset : unit -> unit
  (** Discard every buffer. Also performed by {!Obs.reset}. *)

  val to_json_value : unit -> Obs_json.t
  (** The recorded timeline as a Chrome trace-event JSON array (the "JSON
      array format" accepted by Perfetto / chrome://tracing): one object
      per event with [name], [cat], [ph] (["B"|"E"|"i"|"X"]), [ts]
      (microseconds, relative to process start, clamped [>= 0]), [pid] 1
      and the owning domain id as [tid]; [X] events carry [dur]
      (microseconds). Each domain's stream is prefixed with an [M]
      (metadata) [thread_name] event and, when events were dropped,
      suffixed with a [trace.dropped] instant whose [args.count] is the
      drop count.

      Call after parallel work has quiesced (pools shut down / joined):
      buffers are read without synchronisation. *)

  val to_json : unit -> string

  val write_file : string -> unit
  (** Write {!to_json} (plus a trailing newline) to a file — the CLI's
      [--trace-out FILE]. *)
end

module Span : sig
  val with_ : string -> (unit -> 'a) -> 'a
  (** [with_ name f] times [f ()] and accounts it to the trace-tree node
      [name] under the innermost enclosing span of the {e current domain}
      (pool workers therefore root their spans at the top level). Wall
      clock and call count accumulate across calls; reentrant and
      exception-safe; durations are clamped to [>= 0] (wall clock). When
      {!Trace.enabled}, entry and exit additionally emit [B]/[E] events on
      the calling domain's timeline. When the whole subsystem is disabled
      this is exactly [f ()]. *)

  type info = {
    name : string;
    calls : int;
    wall : float;  (** total wall-clock seconds across [calls] *)
    children : info list;
  }

  val snapshot : unit -> info list
  (** Consistent copy of the recorded span forest (creation order). *)
end

module Export : sig
  val counters : unit -> (string * int) list
  (** Registered counters in creation order. *)

  val to_json_value : unit -> Obs_json.t
  (** The full registry as JSON. Schema (version 1, see DESIGN.md §9):
      {v
      { "schema_version": 1,
        "enabled": <bool>,
        "counters": { "<name>": <int>, ... },
        "histograms": { "<name>": { "count", "sum", "min", "max",
                                    "buckets": [ {"pow2": i, "count": n} ] } },
        "trace": [ { "name", "calls", "wall_seconds", "children": [...] } ] }
      v} *)

  val to_json : unit -> string
  (** [to_json_value] rendered compactly on one line. *)

  val to_text : unit -> string
  (** Human-readable dump: counters, histograms, then the span tree. *)

  val trace_text : unit -> string
  (** Just the span tree, indented two spaces per level. *)

  val write_file : string -> unit
  (** Write [to_json ()] (plus a trailing newline) to a file. *)
end
