(** Observability: counters, histograms and hierarchical span timers.

    A process-wide registry of named probes with text and JSON exporters.
    Everything is safe to use from {!Domain} pool workers: counter and
    histogram updates are single atomic operations, span bookkeeping takes a
    mutex only on span entry/exit (never inside the timed region).

    {b Disabled is free.} The whole subsystem sits behind one global switch,
    off by default. A disabled probe is a single atomic load and a
    predictable branch — a few nanoseconds — so probes may sit in hot loops.
    Probes never influence the computation they observe: enabling or
    disabling observability cannot change any result bit.

    {b Probe naming convention} (see DESIGN.md §9): lowercase
    [subsystem.metric] with dots as separators, e.g. [fsim.patterns],
    [engine.cut_size], [pool.domain3.busy_us]. Spans use the same style
    ([fsim.batch], [engine.pass], [bench.table6]). Counter names ending in
    [_us] hold microseconds. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every counter and histogram and drop the recorded span tree.
    Registered probe definitions survive (names stay in the registry). *)

val now : unit -> float
(** Wall-clock seconds (the clock used for span timing), exposed so
    instrumented code does not need its own timing dependency. *)

module Counter : sig
  type t

  val make : ?help:string -> string -> t
  (** Register (or retrieve — [make] is idempotent per name) a monotonic
      counter. Typically called once at module initialisation. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Histogram : sig
  type t

  val make : ?help:string -> string -> t
  (** Register (or retrieve) a histogram with power-of-two buckets:
      bucket 0 counts observations [v <= 0], bucket [i >= 1] counts
      [2{^i-1} <= v < 2{^i}]. *)

  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int
end

module Span : sig
  val with_ : string -> (unit -> 'a) -> 'a
  (** [with_ name f] times [f ()] and accounts it to the trace-tree node
      [name] under the innermost enclosing span of the {e current domain}
      (pool workers therefore root their spans at the top level). Wall
      clock and call count accumulate across calls; reentrant and
      exception-safe. When observability is disabled this is exactly
      [f ()]. *)

  type info = {
    name : string;
    calls : int;
    wall : float;  (** total wall-clock seconds across [calls] *)
    children : info list;
  }

  val snapshot : unit -> info list
  (** Consistent copy of the recorded span forest (creation order). *)
end

module Export : sig
  val counters : unit -> (string * int) list
  (** Registered counters in creation order. *)

  val to_json_value : unit -> Obs_json.t
  (** The full registry as JSON. Schema (version 1, see DESIGN.md §9):
      {v
      { "schema_version": 1,
        "enabled": <bool>,
        "counters": { "<name>": <int>, ... },
        "histograms": { "<name>": { "count", "sum", "min", "max",
                                    "buckets": [ {"pow2": i, "count": n} ] } },
        "trace": [ { "name", "calls", "wall_seconds", "children": [...] } ] }
      v} *)

  val to_json : unit -> string
  (** [to_json_value] rendered compactly on one line. *)

  val to_text : unit -> string
  (** Human-readable dump: counters, histograms, then the span tree. *)

  val trace_text : unit -> string
  (** Just the span tree, indented two spaces per level. *)

  val write_file : string -> unit
  (** Write [to_json ()] (plus a trailing newline) to a file. *)
end
