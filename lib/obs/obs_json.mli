(** Minimal JSON values, printer and parser.

    Just enough JSON for the metrics/trace exporters and their validators:
    no external dependency, no streaming, strings are assumed UTF-8. The
    printer emits compact single-line documents; [parse] accepts anything
    the printer emits plus ordinary standards-compliant JSON (escapes,
    [\uXXXX], nested containers, exponent floats). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). Floats are printed
    with ["%.12g"] and always contain a ['.'] or exponent so they re-parse
    as [Float]. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. Numbers
    without ['.'], ['e'] or ['E'] parse as [Int] (falling back to [Float]
    when they exceed the native int range). Containers may nest at most
    512 deep — beyond that [parse] returns [Error] instead of risking a
    stack overflow. *)

val member : string -> t -> t option
(** [member key (Obj fields)] looks up [key]; [None] on other constructors. *)
