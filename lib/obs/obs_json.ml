type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printer ------------------------------------------------------------- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_to_string f =
  let s = Printf.sprintf "%.12g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' || c = 'i') s
  then s
  else s ^ ".0"

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v -> Buffer.add_string b (float_to_string v)
  | String s -> add_escaped b s
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        add_escaped b k;
        Buffer.add_char b ':';
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- parser -------------------------------------------------------------- *)

exception Fail of string

type state = { text : string; mutable pos : int }

let fail st msg = raise (Fail (Printf.sprintf "at offset %d: %s" st.pos msg))
let peek st = if st.pos < String.length st.text then Some st.text.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.text
    &&
    match st.text.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail st (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.text && String.sub st.text st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar value as UTF-8 (surrogate pairs are not combined;
   each half is encoded independently, which is enough for our exporters —
   they never emit astral-plane characters). *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.text then fail st "truncated \\u escape";
          let hex = String.sub st.text st.pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some u ->
            st.pos <- st.pos + 4;
            add_utf8 b u
          | None -> fail st "invalid \\u escape")
        | c -> fail st (Printf.sprintf "invalid escape \\%C" c)));
      loop ()
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char b c;
      loop ()
  in
  loop ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.text && is_num_char st.text.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.text start (st.pos - start) in
  let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "invalid number %S" s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "invalid number %S" s))

(* Containers may nest at most this deep. The recursive-descent parser
   uses the OCaml stack, so an adversarial "[[[[..." document would
   otherwise escape as [Stack_overflow] instead of a clean [Error]. *)
let max_depth = 512

let rec parse_value st depth =
  if depth > max_depth then
    fail st (Printf.sprintf "nesting deeper than %d levels" max_depth);
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st (depth + 1) in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec elems acc =
        let v = parse_value st (depth + 1) in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elems (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (elems [])
    end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse text =
  let st = { text; pos = 0 } in
  match parse_value st 0 with
  | v ->
    skip_ws st;
    if st.pos <> String.length text then
      Result.Error "trailing garbage after document"
    else Ok v
  | exception Fail msg -> Result.Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None
