(** Regression diffing between two bench-harness [--json] snapshots.

    [diff] parses both snapshots with {!Obs_json}, aligns circuits,
    sections, speedup rows, CEC verdicts and coverage counters by name,
    and renders every aligned comparison as one {!Table} row. A numeric
    comparison regresses when the new value is worse than the old by
    more than [threshold] percent; a CEC comparison regresses whenever a
    pair previously proved [equivalent] no longer is, at any threshold.

    Alignment is on the intersection of the two snapshots, so a
    [--only]/[--only-circuits] smoke run can be diffed against a full
    baseline — but if nothing at all aligns, or the snapshots disagree
    on [schema_version], the result is an [Error] (exit 2), never a
    vacuous pass. *)

type status =
  | Clean  (** no comparison regressed *)
  | Regressions of int  (** number of regressed comparisons *)

val default_metrics : string list
(** ["gates"; "paths"; "coverage"; "wall"; "speedup"; "cec"] — the valid
    values for [metrics], in rendering order. *)

val diff :
  ?threshold:float ->
  ?metrics:string list ->
  old_name:string ->
  old_text:string ->
  new_name:string ->
  new_text:string ->
  unit ->
  (string * status, string) result
(** [diff ~old_name ~old_text ~new_name ~new_text ()] compares the two
    snapshot texts ([*_name] only labels the output). Returns the
    rendered report plus a {!status}, or [Error msg] when a snapshot is
    malformed, the schema versions differ, an unknown metric was
    requested, or nothing is comparable. [threshold] defaults to [5.]
    (percent); [metrics] defaults to {!default_metrics}. *)

val exit_code : (string * status, string) result -> int
(** CLI exit-code mapping: [Ok (_, Clean)] is 0, [Ok (_, Regressions _)]
    is 1, [Error _] is 2. *)
