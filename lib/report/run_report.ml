type funnel = {
  candidates : int;
  identified : int;
  verified : int;
  committed : int;
}

type phase = { ph_name : string; ph_calls : int; ph_wall : float }

type t = {
  path : string;
  cmd : string;
  events : int;
  dropped : int;
  truncated : bool;
  wall_s : float;
  counters : (string * int) list; (* footer snapshot; [] when truncated *)
  spans : (string, int * float) Hashtbl.t;
  (* Tallies keyed by a qualified label, e.g. "identify/fresh",
     "sat_escalation/redundant", "cec_check/equivalent". *)
  tallies : (string, int) Hashtbl.t;
  accepts : int;
  rollbacks : int;
  gain : int; (* summed accepted gain *)
  samples : int;
  minor_words : float;
  major_words : float;
  compactions : int;
  peak_rss_kb : int;
}

let supported_version = 1

(* --- field access --------------------------------------------------------- *)

let str_field k j =
  match Obs_json.member k j with Some (Obs_json.String s) -> Some s | _ -> None

let int_field k j =
  match Obs_json.member k j with
  | Some (Obs_json.Int i) -> Some i
  | Some (Obs_json.Float f) -> Some (int_of_float f)
  | _ -> None

let float_field k j =
  match Obs_json.member k j with
  | Some (Obs_json.Float f) -> Some f
  | Some (Obs_json.Int i) -> Some (float_of_int i)
  | _ -> None

(* --- loading -------------------------------------------------------------- *)

let read_lines path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let lines = ref [] in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        Ok (List.rev !lines))

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let tally t key = Option.value ~default:0 (Hashtbl.find_opt t.tallies key)

let load path =
  match read_lines path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok [] -> Error (Printf.sprintf "%s: empty file" path)
  | Ok (header :: rest) -> (
    match Obs_json.parse header with
    | Error _ -> Error (Printf.sprintf "%s: not a journal (bad header)" path)
    | Ok h -> (
      match (str_field "ev" h, int_field "journal_version" h) with
      | Some "journal_begin", Some v when v = supported_version ->
        let cmd = Option.value ~default:"?" (str_field "cmd" h) in
        let run =
          ref
            {
              path;
              cmd;
              events = 0;
              dropped = 0;
              truncated = true;
              wall_s = 0.;
              counters = [];
              spans = Hashtbl.create 16;
              tallies = Hashtbl.create 16;
              accepts = 0;
              rollbacks = 0;
              gain = 0;
              samples = 0;
              minor_words = 0.;
              major_words = 0.;
              compactions = 0;
              peak_rss_kb = 0;
            }
        in
        let stop = ref false in
        List.iter
          (fun line ->
            if not !stop then
              match Obs_json.parse line with
              | Error _ -> stop := true (* torn tail: keep what we have *)
              | Ok j -> (
                let r = !run in
                match str_field "ev" j with
                | None -> stop := true
                | Some "journal_end" ->
                  let counters =
                    match Obs_json.member "counters" j with
                    | Some (Obs_json.Obj kvs) ->
                      List.filter_map
                        (fun (k, v) ->
                          match v with
                          | Obs_json.Int n -> Some (k, n)
                          | _ -> None)
                        kvs
                    | _ -> []
                  in
                  run :=
                    {
                      r with
                      truncated = false;
                      dropped = Option.value ~default:0 (int_field "dropped" j);
                      wall_s = Option.value ~default:r.wall_s (float_field "wall_s" j);
                      counters;
                    };
                  stop := true
                | Some kind ->
                  let r = { r with events = r.events + 1 } in
                  (* Truncated runs have no footer: keep the high-water
                     timestamp as a wall-time stand-in. *)
                  let r =
                    match float_field "ts" j with
                    | Some ts when ts > r.wall_s -> { r with wall_s = ts }
                    | _ -> r
                  in
                  let r =
                    match kind with
                    | "span" ->
                      let name = Option.value ~default:"?" (str_field "name" j) in
                      let dur = Option.value ~default:0. (float_field "dur_s" j) in
                      let calls, wall =
                        Option.value ~default:(0, 0.)
                          (Hashtbl.find_opt r.spans name)
                      in
                      Hashtbl.replace r.spans name (calls + 1, wall +. dur);
                      r
                    | "runtime_sample" ->
                      {
                        r with
                        samples = r.samples + 1;
                        minor_words =
                          r.minor_words
                          +. Option.value ~default:0. (float_field "minor_words_d" j);
                        major_words =
                          r.major_words
                          +. Option.value ~default:0. (float_field "major_words_d" j);
                        compactions =
                          r.compactions
                          + Option.value ~default:0 (int_field "compactions_d" j);
                        peak_rss_kb =
                          max r.peak_rss_kb
                            (Option.value ~default:0 (int_field "maxrss_kb" j));
                      }
                    | "splice_accept" ->
                      {
                        r with
                        accepts = r.accepts + 1;
                        gain = r.gain + Option.value ~default:0 (int_field "gain" j);
                      }
                    | "splice_rollback" -> { r with rollbacks = r.rollbacks + 1 }
                    | "identify" ->
                      let src = Option.value ~default:"?" (str_field "src" j) in
                      bump r.tallies ("identify/" ^ src) 1;
                      (match Obs_json.member "verdict" j with
                      | Some (Obs_json.Bool true) ->
                        bump r.tallies ("identify_pos/" ^ src) 1
                      | _ -> ());
                      r
                    | "sat_escalation" ->
                      let o = Option.value ~default:"?" (str_field "outcome" j) in
                      bump r.tallies ("sat_escalation/" ^ o) 1;
                      r
                    | "cec_check" ->
                      let v = Option.value ~default:"?" (str_field "verdict" j) in
                      bump r.tallies ("cec_check/" ^ v) 1;
                      r
                    | "redundancy_proof" ->
                      let m = Option.value ~default:"?" (str_field "method" j) in
                      bump r.tallies ("redundancy_proof/" ^ m) 1;
                      r
                    | kind ->
                      (* podem_abort, commit_flush, cec_unknown, and any
                         event kind a newer writer may add. *)
                      bump r.tallies kind 1;
                      r
                  in
                  run := r))
          rest;
        Ok !run
      | Some "journal_begin", Some v ->
        Error (Printf.sprintf "%s: unsupported journal_version %d" path v)
      | _ -> Error (Printf.sprintf "%s: not a journal (no journal_begin)" path)))

(* --- accessors ------------------------------------------------------------ *)

let path t = t.path
let cmd t = t.cmd
let events t = t.events
let dropped t = t.dropped
let truncated t = t.truncated
let wall_s t = t.wall_s

let counter t name =
  Option.value ~default:0 (List.assoc_opt name t.counters)

let funnel t =
  {
    candidates = counter t "engine.candidates";
    identified = counter t "engine.realised";
    verified = t.accepts + t.rollbacks;
    committed = t.accepts;
  }

let funnel_ok t =
  let f = funnel t in
  f.committed <= f.verified
  && (t.truncated
     || (f.verified <= f.identified && f.identified <= f.candidates))

let phases t =
  Hashtbl.fold
    (fun name (calls, wall) acc ->
      { ph_name = name; ph_calls = calls; ph_wall = wall } :: acc)
    t.spans []
  |> List.sort (fun a b ->
         match Float.compare b.ph_wall a.ph_wall with
         | 0 -> String.compare a.ph_name b.ph_name
         | c -> c)

(* --- text rendering ------------------------------------------------------- *)

let pct part total = if total <= 0. then 0. else 100. *. part /. total

let render t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "== run report: %s ==\ncmd %s   events %s   dropped %s   wall %.3fs%s\n"
       t.path t.cmd (Table.int t.events) (Table.int t.dropped) t.wall_s
       (if t.truncated then "   [TRUNCATED: no footer]" else ""));
  (match phases t with
  | [] -> ()
  | ps ->
    let tbl =
      Table.create ~title:"phases (span closes)"
        ~columns:[ "phase"; "calls"; "wall s"; "% wall" ]
    in
    List.iter
      (fun p ->
        Table.add_row tbl
          [
            p.ph_name;
            Table.int p.ph_calls;
            Printf.sprintf "%.4f" p.ph_wall;
            Printf.sprintf "%.1f" (pct p.ph_wall t.wall_s);
          ])
      ps;
    Buffer.add_string b (Table.render tbl));
  if t.samples > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "runtime: %d samples, %.3g minor words, %.3g major words, %d compactions, peak rss %s kB\n"
         t.samples t.minor_words t.major_words t.compactions
         (Table.int t.peak_rss_kb));
  let f = funnel t in
  if f.candidates + f.identified + f.verified + f.committed > 0 then
    Buffer.add_string b
      (Printf.sprintf
         "funnel: %s candidates -> %s identified -> %s verified -> %s committed (gain %s)%s\n"
         (Table.int f.candidates) (Table.int f.identified)
         (Table.int f.verified) (Table.int f.committed) (Table.int t.gain)
         (if funnel_ok t then "" else "   [FUNNEL VIOLATION]"));
  let tally_table title prefix labels =
    let rows =
      List.filter_map
        (fun l ->
          let n = tally t (prefix ^ "/" ^ l) in
          if n = 0 then None else Some (l, n))
        labels
    in
    if rows <> [] then begin
      let tbl = Table.create ~title ~columns:[ "kind"; "count" ] in
      List.iter (fun (l, n) -> Table.add_row tbl [ l; Table.int n ]) rows;
      Buffer.add_string b (Table.render tbl)
    end
  in
  tally_table "identification sources" "identify"
    [ "fresh"; "run_cache"; "idcache_raw"; "idcache_class" ];
  tally_table "sat escalations" "sat_escalation" [ "test"; "redundant"; "unknown" ];
  tally_table "redundancy proofs" "redundancy_proof" [ "podem"; "sat" ];
  tally_table "cec checks" "cec_check" [ "equivalent"; "counterexample"; "unknown" ];
  let misc =
    List.filter_map
      (fun k ->
        let n = tally t k in
        if n = 0 then None else Some (Printf.sprintf "%s %s" k (Table.int n)))
      [ "podem_abort"; "commit_flush"; "cec_unknown" ]
  in
  if misc <> [] then
    Buffer.add_string b (String.concat ", " misc ^ "\n");
  Buffer.contents b

(* --- JSON ----------------------------------------------------------------- *)

let tallies_json t prefix labels =
  Obs_json.Obj
    (List.map (fun l -> (l, Obs_json.Int (tally t (prefix ^ "/" ^ l)))) labels)

let run_json t =
  let f = funnel t in
  Obs_json.Obj
    [
      ("path", Obs_json.String t.path);
      ("cmd", Obs_json.String t.cmd);
      ("events", Obs_json.Int t.events);
      ("dropped", Obs_json.Int t.dropped);
      ("truncated", Obs_json.Bool t.truncated);
      ("wall_s", Obs_json.Float t.wall_s);
      ( "funnel",
        Obs_json.Obj
          [
            ("candidates", Obs_json.Int f.candidates);
            ("identified", Obs_json.Int f.identified);
            ("verified", Obs_json.Int f.verified);
            ("committed", Obs_json.Int f.committed);
            ("gain", Obs_json.Int t.gain);
            ("funnel_ok", Obs_json.Bool (funnel_ok t));
          ] );
      ( "phases",
        Obs_json.List
          (List.map
             (fun p ->
               Obs_json.Obj
                 [
                   ("name", Obs_json.String p.ph_name);
                   ("calls", Obs_json.Int p.ph_calls);
                   ("wall_s", Obs_json.Float p.ph_wall);
                 ])
             (phases t)) );
      ( "runtime",
        Obs_json.Obj
          [
            ("samples", Obs_json.Int t.samples);
            ("minor_words", Obs_json.Float t.minor_words);
            ("major_words", Obs_json.Float t.major_words);
            ("compactions", Obs_json.Int t.compactions);
            ("peak_rss_kb", Obs_json.Int t.peak_rss_kb);
          ] );
      ( "identify",
        tallies_json t "identify"
          [ "fresh"; "run_cache"; "idcache_raw"; "idcache_class" ] );
      ( "sat_escalations",
        tallies_json t "sat_escalation" [ "test"; "redundant"; "unknown" ] );
      ("redundancy_proofs", tallies_json t "redundancy_proof" [ "podem"; "sat" ]);
      ( "cec_checks",
        tallies_json t "cec_check" [ "equivalent"; "counterexample"; "unknown" ]
      );
      ("podem_aborts", Obs_json.Int (tally t "podem_abort"));
      ("commit_flushes", Obs_json.Int (tally t "commit_flush"));
    ]

let to_json_value runs =
  Obs_json.Obj
    [
      ("report_version", Obs_json.Int 1);
      ("funnel_ok", Obs_json.Bool (List.for_all funnel_ok runs));
      ("runs", Obs_json.List (List.map run_json runs));
    ]

(* --- diff ----------------------------------------------------------------- *)

let diff a b =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "== report diff: %s (A) vs %s (B) ==\n" a.path b.path);
  let tbl =
    Table.create ~title:"run comparison" ~columns:[ "metric"; "A"; "B"; "delta" ]
  in
  let delta av bv =
    if av = 0. then if bv = 0. then "-" else "new"
    else Printf.sprintf "%+.1f%%" (100. *. (bv -. av) /. av)
  in
  let frow name av bv fmt =
    Table.add_row tbl [ name; fmt av; fmt bv; delta av bv ]
  in
  let irow name av bv =
    frow name (float_of_int av) (float_of_int bv) (fun v ->
        Table.int (int_of_float v))
  in
  frow "wall_s" a.wall_s b.wall_s (Printf.sprintf "%.4f");
  irow "events" a.events b.events;
  irow "dropped" a.dropped b.dropped;
  let fa = funnel a and fb = funnel b in
  irow "candidates" fa.candidates fb.candidates;
  irow "identified" fa.identified fb.identified;
  irow "verified" fa.verified fb.verified;
  irow "committed" fa.committed fb.committed;
  irow "gain" a.gain b.gain;
  frow "minor_words" a.minor_words b.minor_words (Printf.sprintf "%.3g");
  frow "major_words" a.major_words b.major_words (Printf.sprintf "%.3g");
  irow "peak_rss_kb" a.peak_rss_kb b.peak_rss_kb;
  Buffer.add_string buf (Table.render tbl);
  let names =
    List.sort_uniq String.compare
      (List.map (fun p -> p.ph_name) (phases a)
      @ List.map (fun p -> p.ph_name) (phases b))
  in
  if names <> [] then begin
    let ptbl =
      Table.create ~title:"phase wall s"
        ~columns:[ "phase"; "A"; "B"; "delta" ]
    in
    List.iter
      (fun name ->
        let wall t =
          match Hashtbl.find_opt t.spans name with Some (_, w) -> w | None -> 0.
        in
        let av = wall a and bv = wall b in
        Table.add_row ptbl
          [
            name;
            Printf.sprintf "%.4f" av;
            Printf.sprintf "%.4f" bv;
            delta av bv;
          ])
      names;
    Buffer.add_string buf (Table.render ptbl)
  end;
  Buffer.contents buf
