(* Diff two bench-harness --json snapshots (BENCH_results.json) and decide
   whether the new one regresses on the old one.

   The aligner is deliberately forgiving about coverage — snapshots from
   --only / --only-circuits runs simply compare on their intersection —
   but strict about meaning: schema versions must match, and a snapshot
   that fails to parse, or a pair with nothing comparable at all, is
   "incomparable" (exit 2) rather than a vacuous pass. *)

type direction =
  | Lower_better
  | Higher_better

type metric = {
  m_key : string; (* --metrics name *)
  m_dir : direction;
  m_rows : snapshot -> snapshot -> (string * float * float) list;
      (* aligned (item, old, new) pairs *)
}

and snapshot = {
  sn_version : int;
  sn_mode : string;
  sn_circuits : (string * (float * float option)) list; (* gates2, paths *)
  sn_sections : (string * float) list; (* id -> wall seconds *)
  sn_speedups : (string * float) list; (* "kernel/circuit" -> speedup *)
  sn_cec : (string * string) list; (* "circuit/pair" -> verdict *)
  sn_counters : (string * float) list;
}

(* --- snapshot parsing ----------------------------------------------------- *)

let num = function
  | Obs_json.Int i -> Some (float_of_int i)
  | Obs_json.Float f -> Some f
  | _ -> None

let str = function Obs_json.String s -> Some s | _ -> None

let supported_versions = [ 1; 2 ]

let parse_snapshot ~name text =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error (name ^ ": " ^ m)) fmt in
  let* doc =
    match Obs_json.parse text with
    | Ok doc -> Ok doc
    | Error msg -> fail "invalid JSON: %s" msg
  in
  let* version =
    match Obs_json.member "schema_version" doc with
    | Some (Obs_json.Int v) ->
      if List.mem v supported_versions then Ok v
      else
        fail "unsupported schema_version %d (this tool understands %s)" v
          (String.concat ", " (List.map string_of_int supported_versions))
    | Some _ -> fail "schema_version is not an integer"
    | None -> fail "schema_version missing (not a bench --json snapshot?)"
  in
  let list_field key =
    match Obs_json.member key doc with
    | Some (Obs_json.List xs) -> xs
    | Some _ | None -> []
  in
  let mode =
    match Obs_json.member "mode" doc with Some (Obs_json.String m) -> m | _ -> ""
  in
  let circuits =
    List.filter_map
      (fun row ->
        match
          ( Option.bind (Obs_json.member "name" row) str,
            Option.bind (Obs_json.member "gates2" row) num )
        with
        | Some n, Some g ->
          Some (n, (g, Option.bind (Obs_json.member "paths" row) num))
        | _ -> None)
      (list_field "circuits")
  in
  let sections =
    List.filter_map
      (fun row ->
        match
          ( Option.bind (Obs_json.member "id" row) str,
            Option.bind (Obs_json.member "wall_seconds" row) num )
        with
        | Some id, Some w -> Some (id, w)
        | _ -> None)
      (list_field "sections")
  in
  let speedups =
    List.filter_map
      (fun row ->
        match
          ( Option.bind (Obs_json.member "kernel" row) str,
            Option.bind (Obs_json.member "circuit" row) str,
            Option.bind (Obs_json.member "speedup" row) num )
        with
        | Some k, Some c, Some s -> Some (k ^ "/" ^ c, s)
        | _ -> None)
      (list_field "speedups")
  in
  let cec =
    List.filter_map
      (fun row ->
        match
          ( Option.bind (Obs_json.member "circuit" row) str,
            Option.bind (Obs_json.member "pair" row) str,
            Option.bind (Obs_json.member "verdict" row) str )
        with
        | Some c, Some p, Some v -> Some (c ^ "/" ^ p, v)
        | _ -> None)
      (list_field "cec")
  in
  let counters =
    match
      Option.bind (Obs_json.member "metrics" doc) (Obs_json.member "counters")
    with
    | Some (Obs_json.Obj kvs) ->
      List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (num v)) kvs
    | _ -> []
  in
  Ok
    {
      sn_version = version;
      sn_mode = mode;
      sn_circuits = circuits;
      sn_sections = sections;
      sn_speedups = speedups;
      sn_cec = cec;
      sn_counters = counters;
    }

(* --- metric definitions --------------------------------------------------- *)

let align old_rows new_rows =
  List.filter_map
    (fun (item, ov) ->
      match List.assoc_opt item new_rows with
      | Some nv -> Some (item, ov, nv)
      | None -> None)
    old_rows

(* Coverage counters: detections reported by the two random-pattern
   campaigns. More detected faults from the same harness = better. *)
let coverage_keys = [ "fsim.faults_dropped"; "pdf.faults_detected" ]

let metrics_table =
  [
    {
      m_key = "gates";
      m_dir = Lower_better;
      m_rows =
        (fun o n ->
          align
            (List.map (fun (k, (g, _)) -> (k, g)) o.sn_circuits)
            (List.map (fun (k, (g, _)) -> (k, g)) n.sn_circuits));
    };
    {
      m_key = "paths";
      m_dir = Lower_better;
      m_rows =
        (fun o n ->
          let paths_of c =
            List.filter_map
              (fun (k, (_, p)) -> Option.map (fun p -> (k, p)) p)
              c.sn_circuits
          in
          align (paths_of o) (paths_of n));
    };
    {
      m_key = "coverage";
      m_dir = Higher_better;
      m_rows =
        (fun o n ->
          let pick c =
            List.filter (fun (k, _) -> List.mem k coverage_keys) c.sn_counters
          in
          align (pick o) (pick n));
    };
    {
      m_key = "wall";
      m_dir = Lower_better;
      m_rows = (fun o n -> align o.sn_sections n.sn_sections);
    };
    {
      m_key = "speedup";
      m_dir = Higher_better;
      m_rows = (fun o n -> align o.sn_speedups n.sn_speedups);
    };
  ]

let default_metrics = List.map (fun m -> m.m_key) metrics_table @ [ "cec" ]

(* --- diffing -------------------------------------------------------------- *)

type status =
  | Clean
  | Regressions of int

(* Percentage by which [nv] is worse than [ov] (0 when equal or better).
   A metric appearing from, or collapsing to, zero counts as 100%. *)
let worsening dir ov nv =
  let worse = match dir with Lower_better -> nv -. ov | Higher_better -> ov -. nv in
  if worse <= 0. then 0.
  else if Float.abs ov > 0. then 100. *. worse /. Float.abs ov
  else 100.

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Table.int (int_of_float v)
  else Printf.sprintf "%.4f" v

let fmt_delta v =
  if Float.is_integer v && Float.abs v < 1e15 then
    let s = Table.int (int_of_float v) in
    if v >= 0. then "+" ^ s else s
  else Printf.sprintf "%+.4f" v

let diff ?(threshold = 5.) ?(metrics = default_metrics) ~old_name ~old_text
    ~new_name ~new_text () =
  let ( let* ) = Result.bind in
  let* () =
    match
      List.filter (fun k -> not (List.mem k default_metrics)) metrics
    with
    | [] -> Ok ()
    | bad ->
      Error
        (Printf.sprintf "unknown metric%s %s (known: %s)"
           (if List.length bad > 1 then "s" else "")
           (String.concat ", " bad)
           (String.concat ", " default_metrics))
  in
  let* old_sn = parse_snapshot ~name:old_name old_text in
  let* new_sn = parse_snapshot ~name:new_name new_text in
  let* () =
    if old_sn.sn_version <> new_sn.sn_version then
      Error
        (Printf.sprintf
           "schema versions differ (%s is v%d, %s is v%d): regenerate the \
            older snapshot before diffing"
           old_name old_sn.sn_version new_name new_sn.sn_version)
    else Ok ()
  in
  let t =
    Table.create
      ~title:(Printf.sprintf "bench-diff — %s vs %s" old_name new_name)
      ~columns:[ "metric"; "item"; "old"; "new"; "delta"; "worse%"; "status" ]
  in
  let compared = ref 0 in
  let regressions = ref 0 in
  let numeric m =
    List.iter
      (fun (item, ov, nv) ->
        incr compared;
        let w = worsening m.m_dir ov nv in
        let regressed = w > threshold in
        if regressed then incr regressions;
        let status =
          if regressed then "REGRESSION"
          else if w > 0. then "ok (within threshold)"
          else if (match m.m_dir with
                  | Lower_better -> nv < ov
                  | Higher_better -> nv > ov)
          then "improved"
          else "ok"
        in
        Table.add_row t
          [
            m.m_key; item; fmt_value ov; fmt_value nv; fmt_delta (nv -. ov);
            Printf.sprintf "%.1f" w; status;
          ])
      (m.m_rows old_sn new_sn)
  in
  List.iter (fun m -> if List.mem m.m_key metrics then numeric m) metrics_table;
  (* CEC verdicts are pass/fail, not a percentage: any aligned pair whose
     proof degrades from `equivalent' is a regression at every threshold. *)
  if List.mem "cec" metrics then
    List.iter
      (fun (item, ov, nv) ->
        incr compared;
        let regressed = ov = "equivalent" && nv <> "equivalent" in
        if regressed then incr regressions;
        Table.add_row t
          [
            "cec"; item; ov; nv;
            (if ov = nv then "=" else "changed");
            "-";
            (if regressed then "REGRESSION" else "ok");
          ])
      (List.filter_map
         (fun (item, ov) ->
           Option.map (fun nv -> (item, ov, nv)) (List.assoc_opt item new_sn.sn_cec))
         old_sn.sn_cec);
  if !compared = 0 then
    Error
      (Printf.sprintf
         "nothing comparable between %s and %s for metrics %s (disjoint \
          circuit/section sets?)"
         old_name new_name (String.concat "," metrics))
  else
    let summary =
      Printf.sprintf
        "%d comparison%s, %d regression%s (threshold %.1f%%, old mode %S, new \
         mode %S)\n"
        !compared
        (if !compared = 1 then "" else "s")
        !regressions
        (if !regressions = 1 then "" else "s")
        threshold old_sn.sn_mode new_sn.sn_mode
    in
    Ok
      ( Table.render t ^ summary,
        if !regressions = 0 then Clean else Regressions !regressions )

let exit_code = function
  | Ok (_, Clean) -> 0
  | Ok (_, Regressions _) -> 1
  | Error _ -> 2
