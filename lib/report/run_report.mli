(** Loading and rendering {!Obs.Journal} run journals — the [sft report]
    back end.

    A journal (DESIGN.md §16) is JSONL: a [journal_begin] header, one line
    per decision event, and a [journal_end] footer with counter totals.
    {!load} parses one file into an aggregate {!t}: per-phase wall time
    from [span] events, GC/RSS movement from [runtime_sample] events, the
    decision funnel, cache-effectiveness and SAT-escalation tallies.
    Truncated journals (crashed run, no footer) still load — [truncated]
    is set and footer-derived fields fall back to zero.

    {b Decision funnel.} [candidates] is every cut enumerated by the
    engine (counter [engine.candidates]); [identified] the subset whose
    function was identified as a comparison function (counter
    [engine.realised]); [verified] the replacements that reached the
    splice-and-verify step ([splice_accept] + [splice_rollback] events);
    [committed] those that survived it ([splice_accept] events). A
    well-formed optimize journal satisfies
    [committed <= verified <= identified <= candidates]; {!funnel_ok}
    checks exactly that (vacuously true for journals of runs that never
    enumerate cuts, e.g. [atpg]). *)

type funnel = {
  candidates : int;
  identified : int;
  verified : int;
  committed : int;
}

type phase = { ph_name : string; ph_calls : int; ph_wall : float }
(** One aggregated span name: close count and summed duration. *)

type t
(** One loaded journal. *)

val load : string -> (t, string) result
(** [load path] parses the journal at [path]. [Error] when the file is
    unreadable, does not start with a [journal_begin] header, or carries a
    [journal_version] this reader does not understand. A parse failure
    {e after} the header marks the run [truncated] instead of failing. *)

val path : t -> string
(** The file the journal was loaded from. *)

val cmd : t -> string
(** The producing command recorded in the header (e.g. ["optimize"]). *)

val events : t -> int
(** Event lines actually read (header/footer excluded). *)

val dropped : t -> int
(** Events dropped at record time (footer value; 0 when truncated). *)

val truncated : t -> bool
(** True when the journal has no parseable [journal_end] footer. *)

val wall_s : t -> float
(** Footer wall seconds; when truncated, the highest event timestamp. *)

val funnel : t -> funnel
(** The run's decision funnel (see header comment). *)

val funnel_ok : t -> bool
(** [committed <= verified <= identified <= candidates], with the
    counter-derived stages skipped when the journal is truncated (their
    source is the footer). *)

val phases : t -> phase list
(** Aggregated [span] events, heaviest first. *)

val render : t -> string
(** Human-readable report: header, phase table, runtime/GC summary,
    decision funnel, identification-source and SAT-escalation tables —
    sections with no data are omitted. *)

val to_json_value : t list -> Obs_json.t
(** All loaded runs as one JSON document:
    [{"report_version": 1, "funnel_ok": <all runs>, "runs": [...]}].
    The top-level [funnel_ok] is the conjunction over runs so scripts can
    gate on one field. *)

val diff : t -> t -> string
(** Run-to-run comparison in the spirit of [bench-diff]: wall, events,
    funnel stages, GC movement and per-phase wall side by side with
    percentage deltas (phases aligned by name over the union). *)
