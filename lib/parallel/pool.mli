(** Reusable [Domain]-based worker pool for the embarrassingly parallel
    inner loops of the toolchain (fault campaigns, wave simulation,
    candidate scoring).

    A pool represents a fixed budget of [domains] computation domains: the
    calling domain (slot 0) plus [domains - 1] spawned worker domains
    (slots 1 .. domains-1). Work is described as a range [0 .. n-1] split into
    chunks; idle participants grab chunks from a shared atomic counter, so
    load balancing is dynamic but the mapping from index to result is
    deterministic — results are merged back in index order regardless of
    which domain computed them.

    A pool whose [domains] is 1 spawns nothing and runs every submission
    inline in the calling domain: the serial code path and the parallel
    code path are the same code.

    Determinism contract: as long as the supplied work functions are
    deterministic per index and do not communicate through shared mutable
    state (other than writing to disjoint slots of caller-owned arrays),
    every [map]/[map_chunks]/[for_chunks] call yields results identical to
    a serial left-to-right execution.

    When {!Obs.enabled} is on, every chunk execution is accounted to the
    counters [pool.chunks] (total chunks) and [pool.domain<slot>.busy_us]
    (per-slot busy microseconds, aggregated across pools); when
    {!Obs.Trace.enabled}, each chunk additionally emits a [pool.chunk]
    complete ([X]) event on the executing domain's timeline. Disabled
    probes cost nothing on the chunk path. *)

type t

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core for
    the rest of the process. This is the default [?domains] everywhere a
    knob is exposed. *)

val domains_of_flag : int -> int
(** Canonical interpretation of a user-facing [--domains] / config value:
    any [n <= 0] means "pick for me" ({!default_domains}), [1] forces the
    serial path, [n >= 2] is taken literally. The CLI, the bench harness
    and the campaign/engine config records all resolve through this single
    function. *)

val create : ?domains:int -> unit -> t
(** Spawn a pool of [domains - 1] worker domains ([domains] defaults to
    {!default_domains}; values [<= 1] are clamped to 1 and spawn nothing).
    Pools hold OS-level resources — release with {!shutdown}, or prefer
    {!with_pool}. *)

val domains : t -> int
(** Total participating domains (including the caller), i.e. the number of
    distinct [slot] values work functions can observe. *)

val shutdown : t -> unit
(** Stop and join all worker domains. Idempotent. The pool must not be
    used afterwards. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)

val for_chunks :
  t ->
  ?chunk:int ->
  ?serial_below:int ->
  n:int ->
  (slot:int -> lo:int -> hi:int -> unit) ->
  unit
(** [for_chunks t ~n body] covers the range [0 .. n-1] with disjoint chunks
    [body ~slot ~lo ~hi] executed across the pool. [slot] identifies the
    executing participant ([0 <= slot < domains t]); a given slot is only
    ever active in one chunk at a time, so per-slot scratch state needs no
    locking. [chunk] sets the chunk length (default: [n] split into about
    4 chunks per participant). Exceptions raised by [body] are re-raised
    in the caller after the whole submission has drained. With one domain
    (or [n = 1]) this is exactly [body ~slot:0 ~lo:0 ~hi:n].

    [serial_below] (default 0: never) is the work-size cutoff: submissions
    with [n < serial_below] run inline on the calling domain even on a
    multi-domain pool, because publishing a job and waking workers costs
    more than it buys on tiny ranges. The inline path is the same code the
    1-domain pool runs, so the determinism contract is unaffected. Each
    cutoff decision is recorded in the [pool.serial_cutoff] counter
    (submissions kept inline) or [pool.parallel_jobs] (submissions fanned
    out) when {!Obs.enabled}. *)

val map_chunks :
  t ->
  ?chunk:int ->
  ?serial_below:int ->
  state:(int -> 's) ->
  f:('s -> int -> 'a -> 'b) ->
  'a array ->
  'b array
(** Ordered parallel map with per-worker state. [state slot] is called at
    most once per slot per invocation (lazily, on the slot's first chunk)
    to build worker-local scratch state — e.g. a simulator instance — and
    [f st i x] computes the result for index [i]. The returned array
    satisfies [result.(i) = f st i arr.(i)] with indices in their original
    positions (deterministic ordered merge). *)

val map : t -> ?chunk:int -> ?serial_below:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_chunks] without per-worker state. *)

val map_sub :
  t -> ?chunk:int -> ?serial_below:int -> lo:int -> len:int ->
  ('a -> 'b) -> 'a array -> 'b array
(** [map_sub t ~lo ~len f arr] is [map t f (Array.sub arr lo len)] without
    the copy: an ordered parallel map over the slice
    [arr.(lo) .. arr.(lo + len - 1)], returning a [len]-element array.
    This is the wave-submission entry point of the conflict-graph commit
    scheduler (DESIGN.md §17): each independent-set wave of queued splices
    is a consecutive sub-range of the decision-order queue, and its local
    verifications fan out here while mutations stay on the caller. Raises
    [Invalid_argument] if the slice is out of bounds. *)
