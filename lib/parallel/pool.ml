(* Domain pool with chunked work stealing from a shared atomic counter.

   One job is in flight at a time (submissions come from a single
   orchestrating domain). Workers park on a condition variable between
   jobs; a job is published by bumping [generation] under the pool mutex,
   which also gives the happens-before edge that publishes the caller's
   writes (input arrays, closures) to the workers. Completion is detected
   by an atomic count of unfinished chunks; the final decrement signals
   the job's own condition variable, which publishes the workers' writes
   (result slots) back to the caller. *)

type job = {
  body : int -> int -> int -> unit; (* slot lo hi *)
  n : int;
  chunk : int;
  nchunks : int;
  next : int Atomic.t;
  pending : int Atomic.t; (* chunks not yet completed *)
  mutable error : (exn * Printexc.raw_backtrace) option;
  jm : Mutex.t;
  jdone : Condition.t;
}

type t = {
  n_domains : int;
  mutable workers : unit Domain.t array;
  m : Mutex.t;
  work_ready : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable stopped : bool;
  busy : Obs.Counter.t array; (* per-slot busy time, pool.domain<slot>.busy_us *)
}

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let domains_of_flag n = if n <= 0 then default_domains () else n

(* Per-domain busy-time counters are keyed by slot, not by pool, so every
   pool of the process aggregates into the same probes (idempotent
   [Obs.Counter.make]). Created lazily: a process that never builds a pool
   registers nothing. *)
let chunks_counter = lazy (Obs.Counter.make ~help:"pool chunks executed" "pool.chunks")

(* Work-size cutoff accounting: submissions kept inline because they were
   smaller than the caller's [serial_below] threshold vs. submissions that
   actually fanned out. *)
let cutoff_counter =
  lazy
    (Obs.Counter.make ~help:"pooled submissions run inline by the work-size cutoff"
       "pool.serial_cutoff")

let fanout_counter =
  lazy
    (Obs.Counter.make ~help:"pooled submissions fanned out across domains"
       "pool.parallel_jobs")

let busy_counters : (int, Obs.Counter.t) Hashtbl.t = Hashtbl.create 8
let busy_mu = Mutex.create ()

let busy_counter slot =
  Mutex.lock busy_mu;
  let c =
    match Hashtbl.find_opt busy_counters slot with
    | Some c -> c
    | None ->
      let c =
        Obs.Counter.make
          ~help:"busy microseconds in this pool slot"
          (Printf.sprintf "pool.domain%d.busy_us" slot)
      in
      Hashtbl.add busy_counters slot c;
      c
  in
  Mutex.unlock busy_mu;
  c

let run_chunks j slot =
  let continue_ = ref true in
  while !continue_ do
    let c = Atomic.fetch_and_add j.next 1 in
    if c >= j.nchunks then continue_ := false
    else begin
      let lo = c * j.chunk in
      let hi = min j.n (lo + j.chunk) in
      (* Once a chunk failed, later chunks are skipped (their results would
         be discarded anyway); the unsynchronised read may miss a fresh
         error and run one extra chunk, which is harmless. *)
      (if j.error = None then
         try j.body slot lo hi
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock j.jm;
           if j.error = None then j.error <- Some (e, bt);
           Mutex.unlock j.jm);
      if Atomic.fetch_and_add j.pending (-1) = 1 then begin
        Mutex.lock j.jm;
        Condition.broadcast j.jdone;
        Mutex.unlock j.jm
      end
    end
  done

let rec worker_loop t slot seen =
  Mutex.lock t.m;
  while (not t.stopped) && t.generation = seen do
    Condition.wait t.work_ready t.m
  done;
  let stop = t.stopped in
  let gen = t.generation in
  let job = t.job in
  Mutex.unlock t.m;
  if not stop then begin
    (* [job] can be [None] if the other participants already drained it and
       the caller moved on; just wait for the next generation. *)
    (match job with Some j -> run_chunks j slot | None -> ());
    worker_loop t slot gen
  end

let create ?domains () =
  let n_domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  let t =
    {
      n_domains;
      workers = [||];
      m = Mutex.create ();
      work_ready = Condition.create ();
      job = None;
      generation = 0;
      stopped = false;
      busy = Array.init n_domains busy_counter;
    }
  in
  if n_domains > 1 then
    t.workers <-
      Array.init (n_domains - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t (i + 1) 0));
  t

let domains t = t.n_domains

let shutdown t =
  Mutex.lock t.m;
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.m;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let for_chunks t ?chunk ?(serial_below = 0) ~n body =
  if n < 0 then invalid_arg "Pool.for_chunks: negative range";
  (* Chunk bodies are timed only when observability (metrics or event
     tracing) is on; the disabled path runs the raw body with no clock
     reads. The busy-time delta is clamped to >= 0: Obs.now is wall time
     and may step backwards. *)
  let body =
    if not (Obs.enabled () || Obs.Trace.enabled ()) then body
    else
      fun ~slot ~lo ~hi ->
        let t0 = Obs.now () in
        Fun.protect
          ~finally:(fun () ->
            let dt = Obs.now () -. t0 in
            Obs.Trace.complete ~cat:"pool" "pool.chunk" ~ts:t0 ~dur:dt;
            Obs.Counter.add t.busy.(slot) (max 0 (int_of_float (dt *. 1e6)));
            Obs.Counter.incr (Lazy.force chunks_counter))
          (fun () -> body ~slot ~lo ~hi)
  in
  if n > 0 then
    if t.n_domains <= 1 || n = 1 then body ~slot:0 ~lo:0 ~hi:n
    else if n < serial_below then begin
      (* Too little work to amortise job publication and wake-ups: run it
         inline on the calling domain. Same code path as a 1-domain pool,
         so results are unchanged by construction. *)
      Obs.Counter.incr (Lazy.force cutoff_counter);
      body ~slot:0 ~lo:0 ~hi:n
    end
    else begin
      Obs.Counter.incr (Lazy.force fanout_counter);
      let chunk =
        match chunk with
        | Some c when c > 0 -> c
        | Some _ -> invalid_arg "Pool.for_chunks: chunk must be positive"
        | None -> max 1 ((n + (t.n_domains * 4) - 1) / (t.n_domains * 4))
      in
      let nchunks = (n + chunk - 1) / chunk in
      let j =
        {
          body = (fun slot lo hi -> body ~slot ~lo ~hi);
          n;
          chunk;
          nchunks;
          next = Atomic.make 0;
          pending = Atomic.make nchunks;
          error = None;
          jm = Mutex.create ();
          jdone = Condition.create ();
        }
      in
      Mutex.lock t.m;
      t.job <- Some j;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.m;
      run_chunks j 0;
      Mutex.lock j.jm;
      while Atomic.get j.pending > 0 do
        Condition.wait j.jdone j.jm
      done;
      Mutex.unlock j.jm;
      Mutex.lock t.m;
      t.job <- None;
      Mutex.unlock t.m;
      (* The fan-out has drained and the orchestrating domain is about to
         return to serial work: a natural, low-rate spot to sample process
         health (GC deltas, RSS, per-domain busy time). One atomic load
         when neither metrics nor a journal is active. *)
      Obs.Runtime.maybe_sample ();
      match j.error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let map_chunks t ?chunk ?serial_below ~state ~f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    (* Each slot only ever touches its own entry, so no locking. *)
    let states = Array.make t.n_domains None in
    for_chunks t ?chunk ?serial_below ~n (fun ~slot ~lo ~hi ->
        let st =
          match states.(slot) with
          | Some st -> st
          | None ->
            let st = state slot in
            states.(slot) <- Some st;
            st
        in
        for i = lo to hi - 1 do
          out.(i) <- Some (f st i arr.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let map t ?chunk ?serial_below f arr =
  map_chunks t ?chunk ?serial_below ~state:(fun _ -> ()) ~f:(fun () _ x -> f x) arr

(* Wave submission: the commit scheduler lands a queue of splices in
   consecutive independent-set waves, and each wave is a sub-range of the
   same decision-order array. Mapping the slice in place avoids one copy
   per wave. *)
let map_sub t ?chunk ?serial_below ~lo ~len f arr =
  if lo < 0 || len < 0 || lo + len > Array.length arr then
    invalid_arg "Pool.map_sub: slice out of bounds";
  if len = 0 then [||]
  else begin
    let out = Array.make len None in
    for_chunks t ?chunk ?serial_below ~n:len (fun ~slot:_ ~lo:clo ~hi:chi ->
        for i = clo to chi - 1 do
          out.(i) <- Some (f arr.(lo + i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end
