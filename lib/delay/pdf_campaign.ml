type result = {
  total_paths : int;
  total_faults : int;
  detected : int;
  last_effective_pattern : int;
  patterns_applied : int;
}

let pp_result ppf r =
  Format.fprintf ppf "paths %d, faults %d, detected %d, eff.pair %d (of %d)"
    r.total_paths r.total_faults r.detected r.last_effective_pattern
    r.patterns_applied

let count_robust cmp waves =
  let size = Compiled.size cmp in
  let cnt = Array.make size 0 in
  Array.iter
    (fun id ->
      match Compiled.kind cmp id with
      | Gate.Input -> if Wave.has_transition waves.(id) then cnt.(id) <- 1
      | Gate.Const0 | Gate.Const1 -> ()
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        let fins = Compiled.fanins cmp id in
        let acc = ref 0 in
        Array.iter
          (fun f ->
            if cnt.(f) > 0 && Robust.propagates cmp waves ~from_:f ~gate:id
            then acc := !acc + cnt.(f))
          fins;
        cnt.(id) <- !acc)
    (Compiled.order cmp);
  Array.fold_left (fun acc o -> acc + cnt.(o)) 0 (Compiled.outputs cmp)

type campaign = {
  cmp : Compiled.t;
  labels : int array;
  bases : int array; (* per output index *)
  total_paths : int;
  detected_bits : Bytes.t;
  mutable detected : int;
  mutable marked_budget : int;
}

let bit_get b i = Char.code (Bytes.get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let byte = i lsr 3 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lor (1 lsl (i land 7))))

exception Budget_exhausted

(* Mark every robustly detected path fault of the loaded test. Returns the
   number of newly detected faults. *)
let mark st waves =
  let fresh = ref 0 in
  let rec dfs node offset =
    match Compiled.kind st.cmp node with
    | Gate.Input ->
      if Wave.has_transition waves.(node) then begin
        st.marked_budget <- st.marked_budget - 1;
        if st.marked_budget < 0 then raise Budget_exhausted;
        let dir = if waves.(node).Wave.final then 0 else 1 in
        let fid = (2 * offset) + dir in
        if not (bit_get st.detected_bits fid) then begin
          bit_set st.detected_bits fid;
          incr fresh
        end
      end
    | Gate.Const0 | Gate.Const1 -> ()
    | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
    | Gate.Xor | Gate.Xnor ->
      let fins = Compiled.fanins st.cmp node in
      let skipped = ref 0 in
      Array.iter
        (fun f ->
          if Robust.propagates st.cmp waves ~from_:f ~gate:node then
            dfs f (offset + !skipped);
          skipped := !skipped + st.labels.(f))
        fins
  in
  Array.iteri
    (fun k o ->
      (* A length-one path (PO is a PI) is handled by the Input case. *)
      dfs o st.bases.(k))
    (Compiled.outputs st.cmp);
  st.detected <- st.detected + !fresh;
  !fresh

(* Observability probes (see Obs). The marking DFS carries none; pair-level
   accounting happens once per consumed pair in [consume]. *)
let pairs_c = Obs.Counter.make ~help:"two-pattern tests applied" "pdf.pairs"
let effective_c = Obs.Counter.make ~help:"pairs detecting a new path fault" "pdf.pairs_effective"
let detected_c = Obs.Counter.make ~help:"path faults robustly detected" "pdf.faults_detected"
let gap_h = Obs.Histogram.make ~help:"pairs between effective pairs" "pdf.effective_gap"

type config = {
  max_pairs : int;
  stop_window : int;
  max_marked_paths : int;
  domains : int;
  seed : int64;
  obs : bool;
}

let default =
  {
    max_pairs = 2_000_000;
    stop_window = 20_000;
    max_marked_paths = 50_000_000;
    domains = 0;
    seed = 1L;
    obs = false;
  }

let exec cfg c =
  if cfg.obs then Obs.enable ();
  let max_pairs = cfg.max_pairs in
  let stop_window = cfg.stop_window in
  let max_marked_paths = cfg.max_marked_paths in
  let seed = cfg.seed in
  let domains = Pool.domains_of_flag cfg.domains in
  let cmp = Compiled.of_circuit c in
  let labels =
    try Paths.labels c
    with Paths.Overflow -> failwith "Pdf_campaign.exec: path count overflow"
  in
  let outs = Compiled.outputs cmp in
  let bases = Array.make (Array.length outs) 0 in
  let total = ref 0 in
  Array.iteri
    (fun k o ->
      bases.(k) <- !total;
      total := !total + labels.(o))
    outs;
  let total_paths = !total in
  if total_paths > 50_000_000 then
    failwith "Pdf_campaign.exec: too many path faults";
  let st =
    {
      cmp;
      labels;
      bases;
      total_paths;
      detected_bits = Bytes.make (((2 * total_paths) + 7) / 8) '\000';
      detected = 0;
      marked_budget = max_marked_paths;
    }
  in
  let rng = Rng.create seed in
  let n_pi = Array.length (Compiled.inputs cmp) in
  let random_vec () = Array.init n_pi (fun _ -> Rng.bool rng) in
  (* Both code paths draw pairs through the same function so the random
     stream is consumed identically pair by pair. *)
  let draw_pair () =
    let v1 = random_vec () and v2 = random_vec () in
    (v1, v2)
  in
  let last_effective = ref 0 in
  let applied = ref 0 in
  let continue_ () =
    !applied < max_pairs
    && !applied - !last_effective < stop_window
    && st.detected < 2 * total_paths
  in
  let consume waves =
    incr applied;
    let fresh = mark st waves in
    Obs.Counter.incr pairs_c;
    if fresh > 0 then begin
      Obs.Trace.instant ~cat:"pdf" "pdf.effective";
      Obs.Counter.incr effective_c;
      Obs.Counter.add detected_c fresh;
      Obs.Histogram.observe gap_h (!applied - !last_effective);
      last_effective := !applied
    end
  in
  let serial () =
    while continue_ () do
      let v1, v2 = draw_pair () in
      let waves = Wave.simulate cmp ~v1 ~v2 in
      consume waves
    done
  in
  (* Parallel campaign: two-pattern tests are drawn in blocks, their wave
     simulations (the dominant cost) fan out across the pool, and the
     marking pass stays serial in pair order. The serial stopping rule is
     re-evaluated before each pair is consumed; pairs simulated beyond the
     stopping point are discarded, so the result — [patterns_applied],
     [last_effective_pattern], the detected set and the marking budget —
     is bit-identical to the serial run. *)
  let parallel pool =
    let block = Pool.domains pool * 4 in
    let stop = ref false in
    while (not !stop) && continue_ () do
      let m = min block (max_pairs - !applied) in
      let pairs = Array.make m ([||], [||]) in
      for j = 0 to m - 1 do
        pairs.(j) <- draw_pair ()
      done;
      let waves =
        (* A wave simulation is heavy, so fan-out pays off already at a
           handful of pairs; only near-empty trailing blocks stay inline. *)
        Pool.map pool ~chunk:1 ~serial_below:4
          (fun (v1, v2) -> Wave.simulate cmp ~v1 ~v2)
          pairs
      in
      let j = ref 0 in
      while (not !stop) && !j < m do
        if continue_ () then begin
          consume waves.(!j);
          incr j
        end
        else stop := true
      done
    done
  in
  Obs.Span.with_ "pdf.campaign" (fun () ->
      try if domains <= 1 then serial () else Pool.with_pool ~domains parallel
      with Budget_exhausted -> ());
  {
    total_paths;
    total_faults = 2 * total_paths;
    detected = st.detected;
    last_effective_pattern = !last_effective;
    patterns_applied = !applied;
  }
