(** Random-pattern robust path-delay-fault campaigns (Table 7 machinery).

    Path faults are indexed without materialising path lists: paths are
    numbered in the DFS order of {!Paths.enumerate} using the Procedure-1
    labels, and each path contributes two faults (rising and falling at its
    primary input). Per test, the robustly-detected paths form the paths of
    the subgraph of robustly-propagating gate pins; they are marked by a
    backward DFS that touches only detected paths. *)

type result = {
  total_paths : int;
  total_faults : int;  (** [2 * total_paths] *)
  detected : int;
  last_effective_pattern : int;  (** 1-based pair index; 0 if none *)
  patterns_applied : int;  (** number of two-pattern tests *)
}

val pp_result : Format.formatter -> result -> unit

val count_robust : Compiled.t -> Wave.t array -> int
(** Number of path faults robustly detected by the loaded test (each path
    detected in exactly one direction), counted by dynamic programming in
    linear time. *)

val run :
  ?max_pairs:int ->
  ?stop_window:int ->
  ?max_marked_paths:int ->
  ?domains:int ->
  seed:int64 ->
  Circuit.t ->
  result
(** Apply random two-pattern tests until [stop_window] (default 20_000)
    consecutive pairs detect nothing new, or [max_pairs] (default 2_000_000)
    is reached. [max_marked_paths] (default 50_000_000) bounds total marking
    work. Raises [Failure] if the circuit has more than 100 million path
    faults.

    [domains] (default {!Pool.default_domains}) fans the per-pair wave
    simulations out over a domain pool in blocks while path marking stays
    serial in pair order; the result is bit-identical to the serial run,
    which [domains = 1] selects explicitly. *)
