(** Random-pattern robust path-delay-fault campaigns (Table 7 machinery).

    Path faults are indexed without materialising path lists: paths are
    numbered in the DFS order of {!Paths.enumerate} using the Procedure-1
    labels, and each path contributes two faults (rising and falling at its
    primary input). Per test, the robustly-detected paths form the paths of
    the subgraph of robustly-propagating gate pins; they are marked by a
    backward DFS that touches only detected paths. *)

type result = {
  total_paths : int;
  total_faults : int;  (** [2 * total_paths] *)
  detected : int;
  last_effective_pattern : int;  (** 1-based pair index; 0 if none *)
  patterns_applied : int;  (** number of two-pattern tests *)
}

val pp_result : Format.formatter -> result -> unit

val count_robust : Compiled.t -> Wave.t array -> int
(** Number of path faults robustly detected by the loaded test (each path
    detected in exactly one direction), counted by dynamic programming in
    linear time. *)

type config = {
  max_pairs : int;  (** two-pattern test budget (default 2_000_000). *)
  stop_window : int;
      (** stop after this many consecutive ineffective pairs
          (default 20_000). *)
  max_marked_paths : int;
      (** total path-marking work budget (default 50_000_000). *)
  domains : int;
      (** domain-pool width, resolved by {!Pool.domains_of_flag}: [<= 0]
          picks the recommended width, [1] forces the serial path. The
          result is bit-identical for every value. *)
  seed : int64;
  obs : bool;  (** force-enable {!Obs} collection for this run. *)
}

val default : config

val exec : config -> Circuit.t -> result
(** Apply random two-pattern tests until [config.stop_window] consecutive
    pairs detect nothing new, or [config.max_pairs] is reached.
    [config.max_marked_paths] bounds total marking work. Raises [Failure]
    if the circuit has more than 50 million paths.

    With [config.domains <> 1] the per-pair wave simulations fan out over
    a domain pool in blocks while path marking stays serial in pair order;
    the result is bit-identical to the serial run.

    Observability (when enabled): counters [pdf.pairs],
    [pdf.pairs_effective], [pdf.faults_detected]; histogram
    [pdf.effective_gap] (pairs elapsed since the previous effective pair,
    observed at each effective pair); span [pdf.campaign]. *)
