(** Append-only disk store for identification verdicts (DESIGN.md §15).

    One binary file per cache directory ({!file}): a fixed header (magic
    {!magic} + format {!version}, little-endian) followed by checksummed
    records, one per cached entry. The format is crash-safe by
    construction — appends write whole records under an advisory lock, the
    initial header is published atomically (write-temp + rename), and
    readers, which never lock, stop at the first invalid record so a torn
    tail costs only itself. Writers truncate torn tails (and republish
    over version-mismatched or corrupt headers) before appending. *)

type entry =
  | Raw of Truthtable.t * Comparison_fn.spec option
      (** An exact identification verdict for the table, replayed verbatim
          on a warm start. *)
  | Npn_neg of Truthtable.t * int
      (** A canonical representative plus pushed phase ({!Npn.push_phase})
          recording "no function of this class-and-phase is a comparison
          function". *)
(** One persisted cache entry. *)

val magic : string
(** The 6-byte file magic, ["SFTIDC"]. *)

val version : int
(** Format version written into and required from the header; a mismatch
    makes {!load} return nothing and the next {!append} rewrite the
    file. *)

val file : dir:string -> string
(** [file ~dir] is the store's path inside cache directory [dir]. *)

val load : string -> entry list
(** [load path] reads every valid record, in file order, stopping silently
    at the first torn or corrupt one; a missing file or unusable header
    yields [[]]. Lock-free — safe concurrently with writers. *)

val append : string -> entry list -> unit
(** [append path entries] appends under the advisory lock ([path ^
    ".lock"]), creating the directory and publishing a fresh header first
    when needed, and repairing any torn tail or bad header found. Entries
    land in list order as one write. *)
