(* Layered, optionally disk-persistent identification cache (DESIGN.md §15).

   Two layers, looked up in order:

   1. Raw layer: packed table -> exact [Comparison_fn.identify_exact]
      verdict. A hit replays the recorded spec verbatim, so cached runs
      build byte-identical circuits — the spec determines the unit, the
      unit the splice.

   2. NPN layer: (canonical table, pushed phase) -> "not a comparison
      function". Only negative verdicts live here: a canonical-key match
      with equal pushed phase proves the queried function differs from a
      known-negative one by an input permutation and an output negation
      only (Npn.push_phase), and comparison-function-ness is invariant
      under exactly those two — so serving [None] is sound and exact.
      Positive verdicts cannot ride the class key: comparison-function-ness
      is *not* invariant under input negation (DESIGN.md §15 has the
      counterexample), and even a sound mapped-back spec could differ from
      [identify_exact]'s own choice, breaking bit-identity.

   Canonicalisation runs only on a raw miss — once per distinct table per
   run — and its cost is metered in [idcache.canon_ns].

   Concurrency contract (the engine's frozen-read/deferred-merge
   discipline, DESIGN.md §12): [find] is read-only and safe from pool
   workers against a frozen cache (per-entry hit counts are atomics);
   [record] and [finish] must only be called by the orchestrating domain
   between batches. The disk store adds cross-process sharing: entries
   loaded at [create], fresh entries appended at [finish] under the
   store's advisory lock. *)

module TT = Hashtbl.Make (struct
  type t = Truthtable.t

  let equal = Truthtable.equal
  let hash = Truthtable.hash
end)

module TTP = Hashtbl.Make (struct
  type t = Truthtable.t * int

  let equal (a, pa) (b, pb) = pa = pb && Truthtable.equal a b
  let hash (a, p) = ((Truthtable.hash a * 0x01000193) lxor p) land max_int
end)

type verdict = Comparison_fn.spec option

type raw_entry = {
  verdict : verdict;
  from_disk : bool;
  hits : int Atomic.t;
}

type neg_entry = {
  nfrom_disk : bool;
  nhits : int Atomic.t;
}

type t = {
  raw : raw_entry TT.t;
  npn : neg_entry TTP.t;
  file : string option;
  mutable fresh : Id_store.entry list; (* newest first; flushed in order *)
}

type miss = {
  m_table : Truthtable.t;
  m_repr : Truthtable.t;
  m_psi : int;
}

type lookup =
  | Hit of verdict
  | Neg_hit
  | Miss of miss

let hits_c =
  Obs.Counter.make ~help:"identification verdicts served from the raw-key cache"
    "idcache.hits"

let misses_c =
  Obs.Counter.make ~help:"identification verdicts computed and cached" "idcache.misses"

let npn_hits_c =
  Obs.Counter.make ~help:"negative verdicts served from the NPN class layer"
    "idcache.npn_hits"

let disk_hits_c =
  Obs.Counter.make ~help:"cache hits on entries loaded from the disk store"
    "idcache.disk_hits"

let canon_ns_c =
  Obs.Counter.make ~help:"nanoseconds spent NPN-canonicalising cache misses"
    "idcache.canon_ns"

let class_hits_h =
  Obs.Histogram.make ~help:"hits per cached class over the run (hit classes only)"
    "idcache.class_hits"

let create ?dir () =
  let raw = TT.create 1024 in
  let npn = TTP.create 1024 in
  let file = Option.map (fun d -> Id_store.file ~dir:d) dir in
  (match file with
  | None -> ()
  | Some path ->
    List.iter
      (function
        | Id_store.Raw (tbl, v) ->
          if not (TT.mem raw tbl) then
            TT.add raw tbl { verdict = v; from_disk = true; hits = Atomic.make 0 }
        | Id_store.Npn_neg (repr, psi) ->
          if not (TTP.mem npn (repr, psi)) then
            TTP.add npn (repr, psi) { nfrom_disk = true; nhits = Atomic.make 0 })
      (Id_store.load path));
  { raw; npn; file; fresh = [] }

let length t = TT.length t.raw
let npn_length t = TTP.length t.npn

let find t f =
  match TT.find_opt t.raw f with
  | Some e ->
    Atomic.incr e.hits;
    Obs.Counter.incr hits_c;
    if e.from_disk then Obs.Counter.incr disk_hits_c;
    if Obs.Journal.enabled () then
      Obs.Journal.emit "identify"
        [
          ( "src",
            Obs_json.String (if e.from_disk then "idcache_raw" else "run_cache")
          );
          ("verdict", Obs_json.Bool (e.verdict <> None));
        ];
    Hit e.verdict
  | None -> (
    let canonical =
      if Obs.enabled () then begin
        let t0 = Obs.now () in
        let c = Npn.canon f in
        Obs.Counter.add canon_ns_c (int_of_float ((Obs.now () -. t0) *. 1e9));
        c
      end
      else Npn.canon f
    in
    match TTP.find_opt t.npn (canonical.Npn.repr, canonical.Npn.psi) with
    | Some ne ->
      Atomic.incr ne.nhits;
      Obs.Counter.incr npn_hits_c;
      if ne.nfrom_disk then Obs.Counter.incr disk_hits_c;
      if Obs.Journal.enabled () then
        Obs.Journal.emit "identify"
          [
            ("src", Obs_json.String "idcache_class");
            ("verdict", Obs_json.Bool false);
            ("disk", Obs_json.Bool ne.nfrom_disk);
          ];
      Neg_hit
    | None ->
      Obs.Counter.incr misses_c;
      Miss { m_table = f; m_repr = canonical.Npn.repr; m_psi = canonical.Npn.psi })

let record t m v =
  if Obs.Journal.enabled () then
    Obs.Journal.emit "identify"
      [
        ("src", Obs_json.String "fresh"); ("verdict", Obs_json.Bool (v <> None));
      ];
  if not (TT.mem t.raw m.m_table) then begin
    TT.add t.raw m.m_table { verdict = v; from_disk = false; hits = Atomic.make 0 };
    t.fresh <- Id_store.Raw (m.m_table, v) :: t.fresh;
    match v with
    | Some _ -> ()
    | None ->
      if not (TTP.mem t.npn (m.m_repr, m.m_psi)) then begin
        TTP.add t.npn (m.m_repr, m.m_psi)
          { nfrom_disk = false; nhits = Atomic.make 0 };
        t.fresh <- Id_store.Npn_neg (m.m_repr, m.m_psi) :: t.fresh
      end
  end

let flush t =
  (match (t.file, t.fresh) with
  | Some path, (_ :: _ as fresh) -> Id_store.append path (List.rev fresh)
  | _ -> ());
  t.fresh <- []

let finish t =
  TT.iter
    (fun _ e ->
      let h = Atomic.get e.hits in
      if h > 0 then Obs.Histogram.observe class_hits_h h)
    t.raw;
  TTP.iter
    (fun _ ne ->
      let h = Atomic.get ne.nhits in
      if h > 0 then Obs.Histogram.observe class_hits_h h)
    t.npn;
  flush t
