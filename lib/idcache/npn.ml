(* Exact NPN canonicalisation of packed truth tables.

   The NPN orbit of an n-input function f is everything reachable by input
   negation (N), input permutation (P) and output negation (N) — the group
   of 2^(n+1) * n! transforms. The canonical representative is defined as
   the minimum, under {!Truthtable.compare}, of an orbit-invariant
   *candidate subset* of the orbit (so every member of an orbit
   canonicalises to the same table), and the pruning below only ever
   shrinks the enumeration to that subset, never the subset itself:

   - output polarity: a candidate's ON-set size is at most 2^(n-1)
     (complement when above; both polarities when exactly half);
   - input phases: for every variable, popcount(cofactor var=0) <=
     popcount(cofactor var=1) (negate the variable when above; both phases
     on a tie). A variable's cofactor popcounts are invariant under the
     other variables' phases and permutations, so they can be fixed
     independently, per output polarity.
   - variable order: the (p0, p1) signature pairs are non-decreasing left
     to right, so only permutations within equal-signature tie groups are
     enumerated.

   All three conditions are predicates on the *candidate* table, hence
   intrinsic to the orbit: the surviving set is the same no matter which
   orbit member the search starts from. Typical functions have few ties
   and canonicalise in a handful of word-level kernel calls
   ({!Truthtable.flip}, {!Truthtable.permute}); the degenerate worst case
   (parity-like functions, everything tied) enumerates the full
   2 * 2^n * n! candidates — 92,160 one-word tables at n = 6.

   DESIGN.md §15 walks a K = 3 example through the same steps. *)

type transform = {
  pi : int array;
  phase : int;
  negate : bool;
}

let identity n = { pi = Array.init n (fun j -> j + 1); phase = 0; negate = false }

let apply tr f =
  let n = Truthtable.arity f in
  if Array.length tr.pi <> n then invalid_arg "Npn.apply: arity mismatch";
  let g = ref f in
  for i = 1 to n do
    if tr.phase land (1 lsl (i - 1)) <> 0 then g := Truthtable.flip !g ~var:i
  done;
  let g = Truthtable.permute !g tr.pi in
  if tr.negate then Truthtable.lnot g else g

(* The phase mask seen from the canonical side: canonical position [j]
   sources variable [pi.(j)], so its phase bit is [phase]'s bit for that
   source variable. Two tables canonicalising to the same representative
   *with the same pushed phase* differ only by an input permutation and an
   output negation — the sound key of the cache's NPN layer (DESIGN.md
   §15). *)
let push_phase tr =
  let psi = ref 0 in
  Array.iteri
    (fun j v -> if tr.phase land (1 lsl (v - 1)) <> 0 then psi := !psi lor (1 lsl j))
    tr.pi;
  !psi

type canonical = {
  repr : Truthtable.t;
  tr : transform;
  psi : int;
}

(* All orderings of [l], lexicographic in the member order of [l]. *)
let rec perms = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x -> List.map (fun r -> x :: r) (perms (List.filter (fun y -> y <> x) l)))
      l

(* Cartesian product of per-group permutations, concatenated in group
   order: every enumerated [pi] keeps each tie group inside its signature
   slot. *)
let group_perms groups =
  List.fold_right
    (fun g acc -> List.concat_map (fun p -> List.map (fun rest -> p @ rest) acc) (perms g))
    groups [ [] ]

let canon f =
  let n = Truthtable.arity f in
  let total = 1 lsl n in
  let on = Truthtable.popcount f in
  let polarities =
    if 2 * on < total then [ false ]
    else if 2 * on > total then [ true ]
    else [ false; true ]
  in
  let best = ref None in
  let consider cand tr =
    match !best with
    | Some (b, _) when Truthtable.compare b cand <= 0 -> ()
    | _ -> best := Some (cand, tr)
  in
  List.iter
    (fun negate ->
      let f0 = if negate then Truthtable.lnot f else f in
      (* Per-variable cofactor signature on the polarity-fixed table. *)
      let sig_ = Array.make (n + 1) (0, 0) in
      let forced = ref 0 in
      let ties = ref [] in
      for i = n downto 1 do
        let p0 = Truthtable.popcount (Truthtable.cofactor f0 ~var:i false) in
        let p1 = Truthtable.popcount (Truthtable.cofactor f0 ~var:i true) in
        if p0 > p1 then forced := !forced lor (1 lsl (i - 1))
        else if p0 = p1 then ties := i :: !ties;
        sig_.(i) <- (min p0 p1, max p0 p1)
      done;
      (* Group variables by signature, groups in ascending signature order,
         members ascending. *)
      let vars = List.init n (fun i -> i + 1) in
      let sorted =
        List.stable_sort (fun a b -> compare (sig_.(a), a) (sig_.(b), b)) vars
      in
      let groups =
        List.fold_right
          (fun v acc ->
            match acc with
            | (g :: gs) when sig_.(List.hd g) = sig_.(v) -> (v :: g) :: gs
            | _ -> [ v ] :: acc)
          sorted []
      in
      let pis = List.map Array.of_list (group_perms groups) in
      (* Pre-apply the forced flips once; tie flips stack on top. *)
      let base = ref f0 in
      for i = 1 to n do
        if !forced land (1 lsl (i - 1)) <> 0 then base := Truthtable.flip !base ~var:i
      done;
      let tie_arr = Array.of_list !ties in
      let ntie = Array.length tie_arr in
      for tm = 0 to (1 lsl ntie) - 1 do
        let flipped = ref !base in
        let tie_mask = ref 0 in
        for b = 0 to ntie - 1 do
          if tm land (1 lsl b) <> 0 then begin
            flipped := Truthtable.flip !flipped ~var:tie_arr.(b);
            tie_mask := !tie_mask lor (1 lsl (tie_arr.(b) - 1))
          end
        done;
        let phase = !forced lor !tie_mask in
        List.iter
          (fun pi -> consider (Truthtable.permute !flipped pi) { pi; phase; negate })
          pis
      done)
    polarities;
  match !best with
  | None -> assert false
  | Some (repr, tr) -> { repr; tr; psi = push_phase tr }
