(** Exact NPN canonicalisation of packed truth tables (DESIGN.md §15).

    Two functions are NPN-equivalent when one is reachable from the other
    by negating inputs (N), permuting inputs (P) and negating the output
    (N). {!canon} computes a canonical representative of that orbit — the
    minimum under {!Truthtable.compare} of an orbit-invariant candidate
    set — together with the transform that reaches it, so equality of
    representatives decides equivalence exactly. The search is pruned by
    ON-set size (output polarity), cofactor popcounts (input phases) and
    sorted cofactor signatures (permutations restricted to tie groups);
    all pruning predicates are properties of the candidate table itself,
    which is what keeps the canonical form well defined. Exact for every
    supported arity; sized for the engine's K <= 6 tables, where even the
    fully-tied worst case enumerates only 2 * 2^6 * 6! one-word
    candidates. *)

type transform = {
  pi : int array;  (** Input permutation, {!Truthtable.permute} convention:
                       position [j] (0-based) of the transformed variable
                       order sources variable [pi.(j)] (1-based). *)
  phase : int;  (** Input negation mask over the {e source} variables: bit
                    [i - 1] set means [x_i] is negated before permuting. *)
  negate : bool;  (** Whether the output is complemented. *)
}
(** One NPN transform, acting as negate-inputs, then permute, then
    optionally complement the output (see {!apply}). *)

type canonical = {
  repr : Truthtable.t;  (** The canonical representative of the orbit. *)
  tr : transform;  (** A transform with [apply tr f = repr], the first
                       achiever in a fixed enumeration order. *)
  psi : int;  (** [push_phase tr]: the phase mask seen from the canonical
                  side (bit [j] is [phase]'s bit for source variable
                  [pi.(j)]). *)
}
(** Result of {!canon}. *)

val identity : int -> transform
(** [identity n] is the transform fixing every [n]-input function. *)

val apply : transform -> Truthtable.t -> Truthtable.t
(** [apply tr f] negates the inputs of [f] per [tr.phase], permutes them by
    [tr.pi], and complements the output when [tr.negate] — word-level
    kernels throughout ({!Truthtable.flip}, {!Truthtable.permute}). *)

val push_phase : transform -> int
(** The phase mask expressed in canonical variable positions: bit [j] of
    [push_phase tr] is bit [tr.pi.(j) - 1] of [tr.phase]. Two functions
    whose {!canon} results share both [repr] and this value differ by an
    input permutation and an output negation only — the soundness basis of
    the cache's NPN layer ({!Idcache}). *)

val canon : Truthtable.t -> canonical
(** [canon f] is the canonical representative of [f]'s NPN orbit, the
    transform reaching it and the pushed phase. [canon f = canon g] on the
    [repr] field iff [f] and [g] are NPN-equivalent; the whole result is a
    deterministic function of the table. *)
