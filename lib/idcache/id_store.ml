(* Disk persistence for identification verdicts (DESIGN.md §15).

   One append-only binary file per cache directory:

     header   "SFTIDC" (6 bytes) + version u16 LE
     records  kind u8 | arity u8 | payload | fnv1a-32 of the record bytes

   kind 1 (raw verdict): the packed table words (LE), then the exact
   verdict — tag u8 0/1, and for tag 1 the spec (arity perm bytes, lo u16,
   hi u16, complemented u8). kind 2 (NPN negative): the canonical table
   words, then the pushed phase psi u16.

   Recovery rules. A reader stops at the first structurally invalid or
   checksum-failing record and keeps the prefix: a crash mid-append (the
   only writer failure mode — every append is one write of whole records)
   costs at most the torn tail. A bad header (magic or version mismatch)
   reads as empty. Writers repair rather than tolerate: under the advisory
   lock they re-scan, truncate any torn tail (or republish a fresh header
   over a bad one, atomically via write-temp + rename), and only then
   append. Readers never lock. *)

type entry =
  | Raw of Truthtable.t * Comparison_fn.spec option
  | Npn_neg of Truthtable.t * int

let magic = "SFTIDC"
let version = 1
let header_len = 8
let file ~dir = Filename.concat dir "idcache.bin"

let nwords n = if n <= 6 then 1 else 1 lsl (n - 6)

(* --- encoding ---------------------------------------------------------- *)

let fnv1a s pos len =
  let h = ref 0x811C9DC5 in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code s.[i]) * 0x01000193 land 0xFFFFFFFF
  done;
  !h

let add_record buf body =
  let b = Buffer.create 64 in
  body b;
  let s = Buffer.contents b in
  Buffer.add_string buf s;
  Buffer.add_int32_le buf (Int32.of_int (fnv1a s 0 (String.length s)))

let add_table buf t =
  Buffer.add_uint8 buf (Truthtable.arity t);
  Array.iter (Buffer.add_int64_le buf) (Truthtable.words t)

let encode buf = function
  | Raw (t, v) ->
    add_record buf (fun buf ->
        Buffer.add_uint8 buf 1;
        add_table buf t;
        match v with
        | None -> Buffer.add_uint8 buf 0
        | Some (s : Comparison_fn.spec) ->
          Buffer.add_uint8 buf 1;
          Array.iter (Buffer.add_uint8 buf) s.perm;
          Buffer.add_uint16_le buf s.lo;
          Buffer.add_uint16_le buf s.hi;
          Buffer.add_uint8 buf (if s.complemented then 1 else 0))
  | Npn_neg (t, psi) ->
    add_record buf (fun buf ->
        Buffer.add_uint8 buf 2;
        add_table buf t;
        Buffer.add_uint16_le buf psi)

(* --- decoding ---------------------------------------------------------- *)

(* Decode one record at [pos]; [None] on anything structurally invalid or
   truncated — the caller treats that position as the end of the valid
   prefix. *)
let decode s pos =
  let len = String.length s in
  let ok_perm n perm =
    let seen = Array.make (n + 1) false in
    Array.for_all
      (fun v -> v >= 1 && v <= n && not seen.(v) && (seen.(v) <- true; true))
      perm
  in
  if pos + 2 > len then None
  else begin
    let kind = Char.code s.[pos] in
    let n = Char.code s.[pos + 1] in
    if (kind <> 1 && kind <> 2) || n < 1 || n > 16 then None
    else begin
      let nw = nwords n in
      let words_end = pos + 2 + (8 * nw) in
      if words_end > len then None
      else begin
        let table () =
          Truthtable.of_words n
            (Array.init nw (fun i -> String.get_int64_le s (pos + 2 + (8 * i))))
        in
        let finish body_end entry =
          if body_end + 4 > len then None
          else if
            Int32.to_int (String.get_int32_le s body_end) land 0xFFFFFFFF
            <> fnv1a s pos (body_end - pos)
          then None
          else Some (entry (), body_end + 4)
        in
        match kind with
        | 1 ->
          if words_end + 1 > len then None
          else begin
            match Char.code s.[words_end] with
            | 0 -> finish (words_end + 1) (fun () -> Raw (table (), None))
            | 1 ->
              let body_end = words_end + 1 + n + 5 in
              if body_end > len then None
              else begin
                let perm = Array.init n (fun i -> Char.code s.[words_end + 1 + i]) in
                let lo = String.get_uint16_le s (words_end + 1 + n) in
                let hi = String.get_uint16_le s (words_end + 3 + n) in
                let compl_ = Char.code s.[words_end + 5 + n] in
                if (not (ok_perm n perm)) || lo > hi || hi >= 1 lsl n || compl_ > 1
                then None
                else
                  finish body_end (fun () ->
                      Raw
                        ( table (),
                          Some
                            { Comparison_fn.perm; lo; hi; complemented = compl_ = 1 }
                        ))
              end
            | _ -> None
          end
        | _ ->
          let body_end = words_end + 2 in
          if body_end > len then None
          else begin
            let psi = String.get_uint16_le s (words_end) in
            if psi >= 1 lsl n then None
            else finish body_end (fun () -> Npn_neg (table (), psi))
          end
      end
    end
  end

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let header_ok s =
  String.length s >= header_len
  && String.sub s 0 6 = magic
  && String.get_uint16_le s 6 = version

(* Entries plus the byte length of the valid prefix; [None] prefix length
   means the header itself is unusable. *)
let parse s =
  if not (header_ok s) then ([], None)
  else begin
    let rec go pos acc =
      match decode s pos with
      | Some (e, pos') -> go pos' (e :: acc)
      | None -> (List.rev acc, Some pos)
    in
    go header_len []
  end

let load path =
  match read_file path with
  | None -> []
  | Some s -> fst (parse s)

(* --- writing ----------------------------------------------------------- *)

let rec mkdirs d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Atomically publish a file holding just the header: written to a temp
   name in the same directory, then renamed into place — a reader sees
   either the old file or the new one, never a partial header. *)
let publish_empty path =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".idcache" ".tmp" in
  let oc = open_out_bin tmp in
  let buf = Buffer.create header_len in
  Buffer.add_string buf magic;
  Buffer.add_uint16_le buf version;
  output_string oc (Buffer.contents buf);
  close_out oc;
  Unix.rename tmp path

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let with_lock path f =
  mkdirs (Filename.dirname path);
  let lock_fd =
    Unix.openfile (path ^ ".lock") [ Unix.O_CREAT; Unix.O_WRONLY ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close lock_fd)
    (fun () ->
      Unix.lockf lock_fd Unix.F_LOCK 0;
      Fun.protect ~finally:(fun () -> Unix.lockf lock_fd Unix.F_ULOCK 0) f)

let append path entries =
  if entries <> [] then
    with_lock path (fun () ->
        (* Under the lock: find the valid prefix as it stands now (another
           process may have appended since we loaded), repair a torn tail
           or a bad header, then append whole records in one write. *)
        let valid_end =
          match read_file path with
          | None ->
            publish_empty path;
            header_len
          | Some s -> (
            match parse s with
            | _, Some pos -> pos
            | _, None ->
              publish_empty path;
              header_len)
        in
        let buf = Buffer.create 1024 in
        List.iter (encode buf) entries;
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            Unix.ftruncate fd valid_end;
            ignore (Unix.lseek fd 0 Unix.SEEK_END);
            write_all fd (Buffer.contents buf)))
