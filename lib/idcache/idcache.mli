(** NPN-canonical, disk-persistent identification cache (DESIGN.md §15).

    The resynthesis engine asks the same question — "is this K-input
    function a comparison function, and under which spec?" — tens of
    thousands of times per run, and the same small functions recur across
    candidates, circuits and runs. This cache layers two lookups over the
    exact identifier:

    - a {e raw layer} keyed on the packed table, replaying the exact
      {!Comparison_fn.identify_exact} verdict (positive or negative)
      verbatim — warm results are byte-identical to cold ones;
    - an {e NPN layer} keyed on ({!Npn.canon} representative, pushed
      phase), serving only {e negative} verdicts: equal canonical key and
      phase prove the query differs from a known non-comparison function
      by input permutation + output negation, under which
      comparison-function-ness is invariant. (Positive verdicts never ride
      the class key — identification is {e not} invariant under input
      negation, and a mapped-back spec could differ from the identifier's
      own choice.)

    With a cache directory, entries load at {!create} and fresh ones are
    appended at {!finish} through {!Id_store}, sharing verdicts across
    runs and processes. Thread contract: {!find} is read-only (safe from
    pool workers against a frozen cache), {!record}/{!finish} belong to
    the orchestrating domain — the engine's frozen-read/deferred-merge
    discipline, which keeps [domains = 1] and [domains = n] bit-identical.

    Probes: [idcache.hits] (raw hits), [idcache.npn_hits],
    [idcache.disk_hits], [idcache.misses], [idcache.canon_ns], and the
    [idcache.class_hits] histogram (hits per cached class over a run). *)

type t
(** A cache instance; one per engine run (or shared across runs via the
    disk store). *)

type verdict = Comparison_fn.spec option
(** An exact identification verdict; [None] means "not a comparison
    function". *)

type miss
(** A failed lookup, carrying the canonical key computed on the way — pass
    it back to {!record} with the freshly computed verdict. *)

type lookup =
  | Hit of verdict
      (** Raw-layer hit: the recorded exact verdict, replayed verbatim. *)
  | Neg_hit
      (** NPN-layer hit: the function is provably not a comparison
          function (treat as a [None] verdict). *)
  | Miss of miss
      (** Not cached; identify and {!record} the result. *)
(** Result of {!find}. *)

val create : ?dir:string -> unit -> t
(** [create ()] is an empty in-memory cache; [create ~dir ()] additionally
    loads every valid entry of [dir]'s disk store ({!Id_store.load}) and
    arranges for {!finish} to append this run's fresh entries there. *)

val find : t -> Truthtable.t -> lookup
(** Look a table up, raw layer first; a raw miss pays one NPN
    canonicalisation ({!Npn.canon}, metered in [idcache.canon_ns]) to try
    the class layer. Read-only — never mutates the cache beyond atomic
    per-entry hit counts, so concurrent calls from pool workers are
    safe. *)

val record : t -> miss -> verdict -> unit
(** Merge a computed verdict for an earlier {!Miss} into the cache (raw
    layer always; NPN layer too when negative). First verdict wins — for
    the deterministic exact engine duplicates are equal, so merge order
    cannot matter. Orchestrating domain only. *)

val length : t -> int
(** Number of distinct raw tables cached. *)

val npn_length : t -> int
(** Number of distinct negative NPN classes cached. *)

val flush : t -> unit
(** Append the entries recorded since the last flush to the disk store (a
    no-op without [~dir]). *)

val finish : t -> unit
(** End-of-run hook: observes the per-class hit histogram and runs
    {!flush}. *)
