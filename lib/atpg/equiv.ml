type answer =
  | Equivalent
  | Counterexample of bool array
  | Unknown

let import ~into c pi_map =
  (* Copy circuit [c] into [into], feeding its inputs from [pi_map] (node ids
     of [into], indexed like [Circuit.inputs c]). Returns the mapped output
     node ids. *)
  let remap = Array.make (Circuit.size c) (-1) in
  Array.iteri (fun i pi -> remap.(pi) <- pi_map.(i)) (Circuit.inputs c);
  Array.iter
    (fun id ->
      match Circuit.kind c id with
      | Gate.Input -> ()
      | Gate.Const0 -> remap.(id) <- Circuit.add_const into false
      | Gate.Const1 -> remap.(id) <- Circuit.add_const into true
      | k ->
        let fins = Array.map (fun f -> remap.(f)) (Circuit.fanins c id) in
        remap.(id) <- Circuit.add_gate into k fins)
    (Circuit.topo_order c);
  Array.map (fun o -> remap.(o)) (Circuit.outputs c)

let miter a b =
  if Circuit.num_inputs a <> Circuit.num_inputs b
     || Circuit.num_outputs a <> Circuit.num_outputs b
  then invalid_arg "Equiv.miter: interface mismatch";
  let m = Circuit.create ~name:"miter" () in
  let pis = Array.init (Circuit.num_inputs a) (fun i -> Circuit.add_input ~name:(Printf.sprintf "x%d" i) m) in
  let oa = import ~into:m a pis in
  let ob = import ~into:m b pis in
  let diffs = Array.map2 (fun u v -> Circuit.add_gate m Gate.Xor [| u; v |]) oa ob in
  let out =
    if Array.length diffs = 1 then diffs.(0)
    else Circuit.add_gate m Gate.Or diffs
  in
  Circuit.mark_output ~name:"diff" m out;
  m

let check ?(backtrack_limit = Limits.default.Limits.equiv_backtracks)
    ?(sim_patterns = 2048) ~seed a b =
  let m = miter a b in
  let cmp = Compiled.of_circuit m in
  let n_pi = Array.length (Compiled.inputs cmp) in
  let out = (Compiled.outputs cmp).(0) in
  let rng = Rng.create seed in
  let counterexample = ref None in
  let batch = ref 0 in
  let batches = (sim_patterns + 63) / 64 in
  while !counterexample = None && !batch < batches do
    let words = Array.init n_pi (fun _ -> Rng.next64 rng) in
    let values = Compiled.simulate cmp words in
    if values.(out) <> 0L then begin
      let bit = ref 0 in
      while Int64.logand (Int64.shift_right_logical values.(out) !bit) 1L = 0L do
        incr bit
      done;
      let vec =
        Array.map
          (fun w -> Int64.logand (Int64.shift_right_logical w !bit) 1L = 1L)
          words
      in
      counterexample := Some vec
    end;
    incr batch
  done;
  match !counterexample with
  | Some vec -> Counterexample vec
  | None -> (
    let fault = { Fault.site = Fault.Stem out; stuck = false } in
    match Podem.generate ~backtrack_limit m fault with
    | Podem.Test vec -> Counterexample vec
    | Podem.Untestable -> Equivalent
    | Podem.Aborted -> Unknown)
