type t = {
  justify_backtracks : int;
  podem_backtracks : int;
  equiv_backtracks : int;
  sat_conflicts : int;
}

let default =
  {
    justify_backtracks = 200;
    podem_backtracks = 1000;
    equiv_backtracks = 20_000;
    sat_conflicts = 100_000;
  }
