(** SAT-based exact test generation and redundancy proofs for stuck-at
    faults.

    The escalation tier above {!Podem}: where PODEM's bounded search answers
    [Aborted], this module gives an exact verdict by encoding the fault
    miter into the incremental {!Sat} solver. The good circuit is encoded
    once per engine; for each fault only the {e fanout cone} of the fault
    site is re-encoded as a faulty copy, reading the good copy's literals
    for every fanin outside the cone — {!Cnf}'s structural hashing then
    collapses all logic the fault cannot influence, so the per-fault miter
    is proportional to the cone, not the circuit. Output differences are
    XOR-ed, guarded behind a fresh activation literal, decided with
    {!Sat.solve_assuming} and retired with a unit clause, which lets one
    solver carry learned clauses across a whole fault list.

    Soundness is asymmetric, mirroring [Cec]: a [Sat] model is decoded into
    an input vector and replayed through {!Fsim} — a detecting vector is
    never reported on the solver's word alone (a disagreement raises
    [Failure]) — while [Redundant] rests on the UNSAT proof, which the test
    suite cross-checks against exhaustive simulation on small circuits.

    Observability (when enabled): counters [atpg.sat_escalations],
    [atpg.sat_redundant] (plus the solver's own [sat.conflicts] and
    [sat.propagations]); span [atpg.sat]. *)

type outcome =
  | Test of bool array
      (** A detecting input vector (indexed like [Circuit.inputs]),
          replay-verified by the fault simulator. *)
  | Redundant  (** Proved undetectable: no input vector exposes the fault. *)
  | Unknown of int
      (** The conflict budget (payload) ran out before a verdict. *)

val pp_outcome : Format.formatter -> outcome -> unit

type t
(** A per-circuit escalation engine: one incremental solver holding the
    good-circuit CNF, the structural-hash environment and a fault simulator
    for replay. Single-owner mutable state; invalidated if the circuit is
    mutated after {!create}. *)

val create : ?limits:Limits.t -> Circuit.t -> t
(** Encode the (unmodified) circuit once. [limits.sat_conflicts] becomes
    the per-fault conflict budget. *)

val run : t -> Fault.t -> outcome
(** Decide one fault on the shared engine. Cheap to call repeatedly: each
    call adds the fault's cone and one activation variable, and retires the
    miter afterwards. *)

type escalation = {
  escalated : int;  (** faults submitted *)
  tests : (Fault.t * bool array) list;  (** detecting vectors found *)
  redundant : Fault.t list;  (** proved undetectable *)
  unknown : (Fault.t * int) list;
      (** still undecided, with the exhausted conflict budget *)
}

val escalate : ?limits:Limits.t -> Circuit.t -> Fault.t list -> escalation
(** Run every fault through one shared engine (created only when the list
    is non-empty); result lists preserve the input order. *)
