type outcome =
  | Test of bool array
  | Untestable
  | Aborted

let pp_outcome ppf = function
  | Test v ->
    Format.fprintf ppf "test ";
    Array.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) v
  | Untestable -> Format.pp_print_string ppf "untestable"
  | Aborted -> Format.pp_print_string ppf "aborted"

exception Abort

type state = {
  cmp : Compiled.t;
  stuck : Tv.v; (* forced faulty value at the site *)
  site_stem : int; (* node whose good value activates the fault *)
  fault_gate : int; (* gate with the faulty pin, -1 for stem faults *)
  fault_pin : int;
  stem_node : int; (* node carrying the forced value, -1 for branch faults *)
  pi_value : Tv.v array; (* per node id, X when unassigned; only PIs used *)
  good : Tv.v array;
  faul : Tv.v array;
  mutable backtracks : int;
  limit : int;
}

let eval_node values st id =
  let fins = Compiled.fanins st.cmp id in
  Tv.eval (Compiled.kind st.cmp id) (Array.map (fun f -> values.(f)) fins)

let eval_faulty st id =
  if id = st.stem_node then st.stuck
  else begin
    let fins = Compiled.fanins st.cmp id in
    let vals =
      Array.mapi
        (fun pin f ->
          if id = st.fault_gate && pin = st.fault_pin then st.stuck
          else st.faul.(f))
        fins
    in
    match Compiled.kind st.cmp id with
    | Gate.Input -> st.faul.(id)
    | k -> Tv.eval k vals
  end

let imply st =
  Array.iter
    (fun id ->
      match Compiled.kind st.cmp id with
      | Gate.Input ->
        st.good.(id) <- st.pi_value.(id);
        st.faul.(id) <- (if id = st.stem_node then st.stuck else st.pi_value.(id))
      | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not | Gate.And | Gate.Or
      | Gate.Nand | Gate.Nor | Gate.Xor | Gate.Xnor ->
        st.good.(id) <- eval_node st.good st id;
        st.faul.(id) <- eval_faulty st id)
    (Compiled.order st.cmp)

let has_d st id =
  Tv.known st.good.(id) && Tv.known st.faul.(id)
  && not (Tv.equal st.good.(id) st.faul.(id))

let composite_x st id = not (Tv.known st.good.(id)) || not (Tv.known st.faul.(id))

let detected st =
  Array.exists (fun po -> has_d st po) (Compiled.outputs st.cmp)

(* D-frontier: gates whose output is composite-X with a D on some input
   (including the injected faulty pin). *)
let d_frontier st =
  let frontier = ref [] in
  Array.iter
    (fun id ->
      match Compiled.kind st.cmp id with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
      | Gate.Buf | Gate.Not | Gate.And | Gate.Or | Gate.Nand | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        if composite_x st id then begin
          let fins = Compiled.fanins st.cmp id in
          let d_in = ref false in
          Array.iteri
            (fun pin f ->
              let fv =
                if id = st.fault_gate && pin = st.fault_pin then st.stuck
                else st.faul.(f)
              in
              let gv = st.good.(f) in
              if Tv.known gv && Tv.known fv && not (Tv.equal gv fv) then
                d_in := true)
            fins;
          if !d_in then frontier := id :: !frontier
        end)
    (Compiled.order st.cmp);
  List.rev !frontier

(* Is there a path of composite-X lines from some frontier gate to a PO? *)
let x_path_exists st frontier =
  let size = Compiled.size st.cmp in
  let visited = Bytes.make size '\000' in
  let rec dfs id =
    if Bytes.get visited id = '\001' then false
    else begin
      Bytes.set visited id '\001';
      if not (composite_x st id) then false
      else if Compiled.is_po st.cmp id then true
      else Array.exists dfs (Compiled.fanouts st.cmp id)
    end
  in
  List.exists
    (fun g ->
      (* the frontier gate's own output is composite-X; search from it *)
      Bytes.fill visited 0 size '\000';
      dfs g)
    frontier

let backtrace st node v =
  let rec walk node v =
    match Compiled.kind st.cmp node with
    | Gate.Input -> Some (node, v)
    | Gate.Const0 | Gate.Const1 -> None
    | Gate.Buf -> walk (Compiled.fanins st.cmp node).(0) v
    | Gate.Not -> walk (Compiled.fanins st.cmp node).(0) (Tv.lnot v)
    | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
      let kind = Compiled.kind st.cmp node in
      let invert = Gate.inverting kind in
      let phase = if invert then Tv.lnot v else v in
      let fins = Compiled.fanins st.cmp node in
      let x_input =
        Array.fold_left
          (fun acc f ->
            match acc with
            | Some _ -> acc
            | None -> if Tv.known st.good.(f) then None else Some f)
          None fins
      in
      (match x_input with
      | None -> None
      | Some f ->
        (* For And/Nand, reaching output-phase 1 needs all inputs 1; phase 0
           is reached by any single 0. Either way the chosen X input gets the
           phase value itself for And (dually Or). *)
        let target =
          match kind with
          | Gate.And | Gate.Nand -> phase
          | Gate.Or | Gate.Nor -> phase
          | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not
          | Gate.Xor | Gate.Xnor -> assert false
        in
        walk f target)
    | Gate.Xor | Gate.Xnor ->
      let invert = Gate.inverting (Compiled.kind st.cmp node) in
      let phase = if invert then Tv.lnot v else v in
      let fins = Compiled.fanins st.cmp node in
      let x_input = ref None in
      let parity = ref Tv.F in
      Array.iter
        (fun f ->
          if Tv.known st.good.(f) then parity := Tv.lxor_ !parity st.good.(f)
          else if !x_input = None then x_input := Some f)
        fins;
      (match !x_input with
      | None -> None
      | Some f -> walk f (Tv.lxor_ phase !parity))
  in
  walk node v

type verdict = Found | Exhausted

(* Observability probes: one counter bump per decision / backtrack / abort,
   nothing inside implication or frontier computation. *)
let decisions_c = Obs.Counter.make ~help:"PI assignments tried" "podem.decisions"
let backtracks_c = Obs.Counter.make ~help:"decision reversals" "podem.backtracks"
let aborted_c = Obs.Counter.make ~help:"searches hitting the backtrack limit" "podem.aborted"

let rec search st =
  imply st;
  if detected st then Found
  else begin
    let site_gv = st.good.(st.site_stem) in
    if Tv.known site_gv && Tv.equal site_gv st.stuck then Exhausted
    else begin
      let objective =
        if not (Tv.known site_gv) then Some (st.site_stem, Tv.lnot st.stuck)
        else begin
          (* Fault is activated: extend the D-frontier. *)
          let frontier = d_frontier st in
          match frontier with
          | [] -> None
          | _ :: _ when not (x_path_exists st frontier) -> None
          | g :: _ ->
            let fins = Compiled.fanins st.cmp g in
            let side = ref None in
            Array.iter
              (fun f -> if !side = None && not (Tv.known st.good.(f)) then side := Some f)
              fins;
            (match !side with
            | Some f ->
              let v =
                match Gate.controlling (Compiled.kind st.cmp g) with
                | Some c -> Tv.of_bool (not c)
                | None -> Tv.F (* XOR side inputs: any value propagates *)
              in
              Some (f, v)
            | None ->
              (* output X but all inputs known: impossible for total gates *)
              None)
        end
      in
      match objective with
      | None -> Exhausted
      | Some (node, v) -> (
        match backtrace st node v with
        | None -> Exhausted
        | Some (pi, pv) ->
          let try_value value =
            Obs.Counter.incr decisions_c;
            st.pi_value.(pi) <- value;
            search st
          in
          (match try_value pv with
          | Found -> Found
          | Exhausted ->
            st.backtracks <- st.backtracks + 1;
            Obs.Counter.incr backtracks_c;
            if st.backtracks > st.limit then raise Abort;
            (match try_value (Tv.lnot pv) with
            | Found -> Found
            | Exhausted ->
              st.pi_value.(pi) <- Tv.X;
              Exhausted)))
    end
  end

let generate ?(backtrack_limit = Limits.default.Limits.podem_backtracks) c
    (f : Fault.t) =
  let cmp = Compiled.of_circuit c in
  let stuck = Tv.of_bool f.Fault.stuck in
  let site_stem, fault_gate, fault_pin, stem_node =
    match f.Fault.site with
    | Fault.Stem u -> (u, -1, -1, u)
    | Fault.Branch (g, pin) -> ((Circuit.fanins c g).(pin), g, pin, -1)
  in
  let size = Compiled.size cmp in
  let st =
    {
      cmp;
      stuck;
      site_stem;
      fault_gate;
      fault_pin;
      stem_node;
      pi_value = Array.make size Tv.X;
      good = Array.make size Tv.X;
      faul = Array.make size Tv.X;
      backtracks = 0;
      limit = backtrack_limit;
    }
  in
  match search st with
  | Found ->
    let vec =
      Array.map
        (fun pi -> match st.pi_value.(pi) with Tv.T -> true | Tv.F | Tv.X -> false)
        (Compiled.inputs cmp)
    in
    Test vec
  | Exhausted -> Untestable
  | exception Abort ->
    Obs.Counter.incr aborted_c;
    Obs.Trace.instant ~cat:"atpg" "podem.aborted";
    if Obs.Journal.enabled () then
      Obs.Journal.emit "podem_abort"
        (Fault.journal_fields f
        @ [ ("backtracks", Obs_json.Int st.backtracks) ]);
    Aborted

type stats = {
  tested : int;
  untestable : int;
  aborted : int;
  tests : (Fault.t * bool array) list;
  aborted_faults : Fault.t list;
}

let generate_all ?backtrack_limit c faults =
  Obs.Span.with_ "podem.generate_all" (fun () ->
      List.fold_left
        (fun acc f ->
          match generate ?backtrack_limit c f with
          | Test v -> { acc with tested = acc.tested + 1; tests = (f, v) :: acc.tests }
          | Untestable -> { acc with untestable = acc.untestable + 1 }
          | Aborted ->
            {
              acc with
              aborted = acc.aborted + 1;
              aborted_faults = f :: acc.aborted_faults;
            })
        { tested = 0; untestable = 0; aborted = 0; tests = []; aborted_faults = [] }
        faults)
