(** Line justification: find a primary-input assignment producing required
    values on internal lines, or prove none exists.

    This is the PODEM search without a fault: decisions on primary inputs,
    objectives from unjustified targets, full three-valued implication. Used
    to prove input combinations of a subcircuit unreachable (controllability
    don't-cares) — the paper's first "remaining issue" (Sec. 6). *)

type verdict =
  | Sat of bool array  (** a primary-input vector achieving the targets *)
  | Unsat
  | Unknown  (** backtrack limit exceeded *)

val search :
  ?backtrack_limit:int ->
  ?rng:Rng.t ->
  ?prefer:bool array ->
  Circuit.t ->
  (int * bool) list ->
  verdict
(** [search c targets] with [targets] a list of (node id, required value).
    Default backtrack limit: {!Limits.default}.[justify_backtracks]. With
    [rng], backtrace tie-breaks are
    randomised, so repeated calls explore different witnesses; completeness
    of the [Unsat] verdict is unaffected. [prefer] supplies values for
    primary inputs the search left unassigned (default all-false); the
    two-frame path-delay test generator passes the first vector so
    unconstrained inputs stay stable. *)

val reachable_exhaustive : Circuit.t -> (int * bool) list -> bool
(** Ground truth by exhaustive simulation (<= 20 inputs); for testing. *)
