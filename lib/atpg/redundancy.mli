(** Redundancy identification and removal (the [15] stand-in).

    A stuck-at fault proved untestable lets the faulty line be tied to the
    stuck value without changing the circuit function; constant propagation
    then shrinks the logic. Removing one redundancy can change the status of
    others, so candidates are re-verified right before each removal and the
    whole analysis iterates to a fixpoint.

    Proofs come from two engines: PODEM within {!Limits.t}[.podem_backtracks]
    decides most faults, and every fault it aborts escalates to the exact
    {!Sat_atpg} decision procedure (unless [~sat:false]), so a fault only
    stays undecided when the SAT conflict budget also runs out. *)

type report = {
  removed : int;  (** redundant faults removed (lines tied off) *)
  proved_redundant_sat : int;
      (** subset of [removed] whose justifying proof came from the SAT
          escalation rather than PODEM *)
  aborted : int;
      (** faults left undecided by both engines in the final pass (kept) *)
  passes : int;
}

val pp_report : Format.formatter -> report -> unit

type candidates = {
  untestable : Fault.t list;  (** proved untestable by PODEM *)
  sat_redundant : Fault.t list;
      (** PODEM-aborted faults proved redundant by {!Sat_atpg} *)
  unresolved : (Fault.t * int) list;
      (** still undecided, with the exhausted conflict (SAT) or backtrack
          (PODEM-only mode) budget *)
}

val find_untestable :
  ?limits:Limits.t ->
  ?sat:bool ->
  ?prefilter_patterns:int ->
  seed:int64 ->
  Circuit.t ->
  candidates
(** Classify the collapsed faults surviving a random-pattern prefilter.
    [sat] (default [true]) escalates PODEM aborts to {!Sat_atpg.escalate}
    on a shared incremental solver. *)

val remove :
  ?limits:Limits.t ->
  ?sat:bool ->
  ?prefilter_patterns:int ->
  seed:int64 ->
  Circuit.t ->
  report
(** Remove redundancies in place (the circuit is mutated and swept). *)

val make_irredundant :
  ?limits:Limits.t ->
  ?sat:bool ->
  ?prefilter_patterns:int ->
  seed:int64 ->
  Circuit.t ->
  Circuit.t * report
(** Non-destructive: returns a compacted irredundant copy. *)
