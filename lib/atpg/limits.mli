(** Shared search budgets for the bounded test-generation engines.

    Every bounded search in the ATPG layer draws its default effort from
    this one record instead of scattering magic numbers per module, so the
    relative sizing is documented and tunable in one place:

    - [justify_backtracks] ([200]) — {!Justify.search} runs inside tight
      inner loops (don't-care extraction, PDF two-frame justification)
      where many calls are made and each answer is advisory.
    - [podem_backtracks] ([1000]) — {!Podem.generate} decides a single
      fault; an abort is escalated (see {!Sat_atpg}) rather than retried.
    - [equiv_backtracks] ([20_000]) — {!Equiv.check} proves a whole-miter
      property once per query and can afford a deep search.
    - [sat_conflicts] ([100_000]) — conflict budget per fault for the SAT
      escalation path, matching [Cec.default_budget].

    [default] is the record every engine falls back to when its caller
    passes nothing. *)

type t = {
  justify_backtracks : int;
  podem_backtracks : int;
  equiv_backtracks : int;
  sat_conflicts : int;
}

val default : t
(** [{ justify_backtracks = 200; podem_backtracks = 1000;
       equiv_backtracks = 20_000; sat_conflicts = 100_000 }]. *)
