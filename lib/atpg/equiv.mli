(** Miter-based equivalence checking, using PODEM as the decision engine. *)

type answer =
  | Equivalent
  | Counterexample of bool array
  | Unknown  (** the backtrack limit was exceeded *)

val miter : Circuit.t -> Circuit.t -> Circuit.t
(** Fresh circuit whose single output is 1 iff the two circuits (matched
    positionally on inputs and outputs) disagree. *)

val check :
  ?backtrack_limit:int -> ?sim_patterns:int -> seed:int64 ->
  Circuit.t -> Circuit.t -> answer
(** Random simulation first (fast counterexamples), then PODEM on the miter
    output stuck-at-0: the fault is untestable iff the miter never raises,
    i.e. the circuits are equivalent. Default backtrack limit:
    {!Limits.default}.[equiv_backtracks]. *)
