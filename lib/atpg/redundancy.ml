type report = {
  removed : int;
  aborted : int;
  passes : int;
}

let pp_report ppf r =
  Format.fprintf ppf "redundancy removal: %d removed, %d unresolved, %d passes"
    r.removed r.aborted r.passes

let find_untestable ?(backtrack_limit = 1000) ?(prefilter_patterns = 4096) ~seed c =
  let survivors =
    Campaign.survivors
      { Campaign.default with max_patterns = prefilter_patterns; seed }
      c
  in
  let untestable = ref [] in
  let aborted = ref 0 in
  List.iter
    (fun f ->
      match Podem.generate ~backtrack_limit c f with
      | Podem.Test _ -> ()
      | Podem.Untestable -> untestable := f :: !untestable
      | Podem.Aborted -> incr aborted)
    survivors;
  (List.rev !untestable, !aborted)

let tie_off c (f : Fault.t) =
  let const = Circuit.add_const c f.Fault.stuck in
  (match f.Fault.site with
  | Fault.Stem u -> Circuit.retarget c ~from_:u ~to_:const
  | Fault.Branch (g, pin) ->
    let fins = Array.copy (Circuit.fanins c g) in
    fins.(pin) <- const;
    Circuit.set_fanins c g fins);
  Cleanup.simplify c

let structurally_valid c (f : Fault.t) =
  match f.Fault.site with
  | Fault.Stem u -> Circuit.is_alive c u
  | Fault.Branch (g, pin) -> Circuit.is_alive c g && pin < Circuit.fanin_count c g

let remove ?backtrack_limit ?prefilter_patterns ~seed c =
  let removed = ref 0 in
  let aborted = ref 0 in
  let passes = ref 0 in
  let continue = ref true in
  while !continue do
    incr passes;
    let untestable, ab = find_untestable ?backtrack_limit ?prefilter_patterns ~seed c in
    aborted := ab;
    match untestable with
    | [] -> continue := false
    | candidates ->
      (* Removing one redundancy can make another candidate testable, so
         each is re-proved against the current circuit right before its
         tie-off. An untestability proof on the current circuit justifies the
         tie-off even if earlier removals rewired the site. *)
      List.iter
        (fun f ->
          if structurally_valid c f then
            match Podem.generate ?backtrack_limit c f with
            | Podem.Untestable ->
              tie_off c f;
              incr removed
            | Podem.Test _ | Podem.Aborted -> ())
        candidates
  done;
  { removed = !removed; aborted = !aborted; passes = !passes }

let make_irredundant ?backtrack_limit ?prefilter_patterns ~seed c =
  let work = Circuit.copy c in
  let report = remove ?backtrack_limit ?prefilter_patterns ~seed work in
  let fresh, _ = Circuit.compact work in
  (fresh, report)
