type report = {
  removed : int;
  proved_redundant_sat : int;
  aborted : int;
  passes : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "redundancy removal: %d removed (%d SAT-proved), %d unresolved, %d passes"
    r.removed r.proved_redundant_sat r.aborted r.passes

type candidates = {
  untestable : Fault.t list;
  sat_redundant : Fault.t list;
  unresolved : (Fault.t * int) list;
}

let find_untestable ?(limits = Limits.default) ?(sat = true)
    ?(prefilter_patterns = 4096) ~seed c =
  let survivors =
    Campaign.survivors
      { Campaign.default with max_patterns = prefilter_patterns; seed }
      c
  in
  let untestable = ref [] in
  let aborted = ref [] in
  List.iter
    (fun f ->
      match
        Podem.generate ~backtrack_limit:limits.Limits.podem_backtracks c f
      with
      | Podem.Test _ -> ()
      | Podem.Untestable -> untestable := f :: !untestable
      | Podem.Aborted -> aborted := f :: !aborted)
    survivors;
  let aborted = List.rev !aborted in
  if sat then begin
    let esc = Sat_atpg.escalate ~limits c aborted in
    {
      untestable = List.rev !untestable;
      sat_redundant = esc.Sat_atpg.redundant;
      unresolved = esc.Sat_atpg.unknown;
    }
  end
  else
    {
      untestable = List.rev !untestable;
      sat_redundant = [];
      unresolved =
        List.map (fun f -> (f, limits.Limits.podem_backtracks)) aborted;
    }

let tie_off c (f : Fault.t) =
  let const = Circuit.add_const c f.Fault.stuck in
  (match f.Fault.site with
  | Fault.Stem u -> Circuit.retarget c ~from_:u ~to_:const
  | Fault.Branch (g, pin) ->
    let fins = Array.copy (Circuit.fanins c g) in
    fins.(pin) <- const;
    Circuit.set_fanins c g fins);
  Cleanup.simplify c

let structurally_valid c (f : Fault.t) =
  match f.Fault.site with
  | Fault.Stem u -> Circuit.is_alive c u
  | Fault.Branch (g, pin) -> Circuit.is_alive c g && pin < Circuit.fanin_count c g

let remove ?(limits = Limits.default) ?(sat = true) ?prefilter_patterns ~seed c =
  let removed = ref 0 in
  let removed_sat = ref 0 in
  let aborted = ref 0 in
  let passes = ref 0 in
  let continue = ref true in
  while !continue do
    incr passes;
    let found = find_untestable ~limits ~sat ?prefilter_patterns ~seed c in
    aborted := List.length found.unresolved;
    match found.untestable @ found.sat_redundant with
    | [] -> continue := false
    | candidates ->
      (* Removing one redundancy can make another candidate testable, so
         each is re-proved against the current circuit right before its
         tie-off. An untestability proof on the current circuit justifies the
         tie-off even if earlier removals rewired the site. PODEM aborts on
         the re-proof escalate to a fresh SAT engine (the mutations above
         invalidate any shared encoding), whose exact verdict either
         justifies the tie-off or returns the fault to the undecided pool. *)
      List.iter
        (fun f ->
          if structurally_valid c f then
            match
              Podem.generate ~backtrack_limit:limits.Limits.podem_backtracks c
                f
            with
            | Podem.Untestable ->
              tie_off c f;
              if Obs.Journal.enabled () then
                Obs.Journal.emit "redundancy_proof"
                  (Fault.journal_fields f
                  @ [ ("method", Obs_json.String "podem") ]);
              incr removed
            | Podem.Test _ -> ()
            | Podem.Aborted ->
              if sat then begin
                let engine = Sat_atpg.create ~limits c in
                match Sat_atpg.run engine f with
                | Sat_atpg.Redundant ->
                  tie_off c f;
                  if Obs.Journal.enabled () then
                    Obs.Journal.emit "redundancy_proof"
                      (Fault.journal_fields f
                      @ [ ("method", Obs_json.String "sat") ]);
                  incr removed;
                  incr removed_sat
                | Sat_atpg.Test _ | Sat_atpg.Unknown _ -> ()
              end)
        candidates
  done;
  {
    removed = !removed;
    proved_redundant_sat = !removed_sat;
    aborted = !aborted;
    passes = !passes;
  }

let make_irredundant ?limits ?sat ?prefilter_patterns ~seed c =
  let work = Circuit.copy c in
  let report = remove ?limits ?sat ?prefilter_patterns ~seed work in
  let fresh, _ = Circuit.compact work in
  (fresh, report)
