(** PODEM test-pattern generation for single stuck-at faults.

    Classic PODEM: decisions are made only on primary inputs, objectives are
    derived from fault activation and the D-frontier, and implication is a
    full dual (good/faulty) three-valued forward simulation. A backtrack
    limit bounds the search; exceeding it yields [Aborted], exhausting it
    yields a proof of untestability. *)

type outcome =
  | Test of bool array
      (** A detecting input vector (don't-cares filled with 0). *)
  | Untestable
  | Aborted

val pp_outcome : Format.formatter -> outcome -> unit

val generate : ?backtrack_limit:int -> Circuit.t -> Fault.t -> outcome
(** Default backtrack limit: {!Limits.default}.[podem_backtracks].

    Observability (when enabled): counters [podem.decisions],
    [podem.backtracks], [podem.aborted]. *)

type stats = {
  tested : int;
  untestable : int;
  aborted : int;
  tests : (Fault.t * bool array) list;
  aborted_faults : Fault.t list;
      (** the faults behind [aborted], most recent first — the worklist for
          SAT escalation (see {!Sat_atpg.escalate}). *)
}

val generate_all : ?backtrack_limit:int -> Circuit.t -> Fault.t list -> stats
