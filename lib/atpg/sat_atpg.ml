(* SAT-based test generation and redundancy proofs for single stuck-at
   faults. One incremental solver holds the good circuit; each fault adds
   only its fanout cone as a faulty copy (nodes outside the cone share the
   good copy's literals) plus an activation-guarded miter clause, so a
   whole escalation sweep amortises the encoding and the learned clauses. *)

type outcome =
  | Test of bool array
  | Redundant
  | Unknown of int

let pp_outcome ppf = function
  | Test v ->
    Format.fprintf ppf "test ";
    Array.iter (fun b -> Format.pp_print_char ppf (if b then '1' else '0')) v
  | Redundant -> Format.pp_print_string ppf "redundant"
  | Unknown budget -> Format.fprintf ppf "unknown (budget %d conflicts)" budget

let escalations_c =
  Obs.Counter.make ~help:"faults escalated to SAT" "atpg.sat_escalations"

let redundant_c =
  Obs.Counter.make ~help:"faults proved redundant by SAT" "atpg.sat_redundant"

type t = {
  circuit : Circuit.t;
  fsim : Fsim.t;
  sat : Sat.t;
  env : Cnf.env;
  node_lit : int array;  (* good-copy literal per node id *)
  pi_vars : int array;  (* solver variable per input position *)
  budget : int;
}

let create ?(limits = Limits.default) c =
  let cmp = Compiled.of_circuit c in
  let sat = Sat.create () in
  let env = Cnf.create sat in
  let pi_vars = Array.map (fun _ -> Sat.new_var sat) (Circuit.inputs c) in
  let pi_lits = Array.map Sat.lit pi_vars in
  let node_lit = Cnf.encode_nodes env ~pi_lits c in
  {
    circuit = c;
    fsim = Fsim.create cmp;
    sat;
    env;
    node_lit;
    pi_vars;
    budget = limits.Limits.sat_conflicts;
  }

(* Fanout cone of [root] (root included), as a node-id mask: the only nodes
   whose value a fault at/below [root] can change. *)
let fanout_cone c root =
  let mask = Array.make (Circuit.size c) false in
  let rec visit id =
    if not mask.(id) then begin
      mask.(id) <- true;
      List.iter visit (Circuit.fanouts c id)
    end
  in
  visit root;
  mask

(* Encode the faulty copy of the fault's fanout cone; returns the faulty
   literal per node ([Cnf.no_lit] outside the cone). Fanins outside the
   cone read the good copy's literals — structural hashing then collapses
   everything the fault cannot influence. *)
let encode_faulty t (f : Fault.t) mask =
  let c = t.circuit in
  let env = t.env in
  let stuck_lit = if f.Fault.stuck then Cnf.ltrue env else Cnf.lfalse env in
  let flit = Array.make (Circuit.size c) Cnf.no_lit in
  let fanin_lit gate pin fi =
    let base = if mask.(fi) then flit.(fi) else t.node_lit.(fi) in
    match f.Fault.site with
    | Fault.Branch (g, p) when g = gate && p = pin -> stuck_lit
    | _ -> base
  in
  Array.iter
    (fun id ->
      if mask.(id) then
        flit.(id) <-
          (match f.Fault.site with
          | Fault.Stem u when u = id -> stuck_lit
          | _ -> (
            match Circuit.kind c id with
            | Gate.Input -> t.node_lit.(id)
            | Gate.Const0 -> Cnf.lfalse env
            | Gate.Const1 -> Cnf.ltrue env
            | kind ->
              let fins = Circuit.fanins c id in
              let args =
                Array.to_list (Array.mapi (fun pin fi -> fanin_lit id pin fi) fins)
              in
              (match kind with
              | Gate.Buf -> List.hd args
              | Gate.Not -> Sat.neg (List.hd args)
              | Gate.And -> Cnf.and_lits env args
              | Gate.Or -> Cnf.or_lits env args
              | Gate.Nand -> Sat.neg (Cnf.and_lits env args)
              | Gate.Nor -> Sat.neg (Cnf.or_lits env args)
              | Gate.Xor -> Cnf.xor_lits env args
              | Gate.Xnor -> Sat.neg (Cnf.xor_lits env args)
              | Gate.Input | Gate.Const0 | Gate.Const1 -> assert false))))
    (Circuit.topo_order c);
  flit

let decode_model t =
  Array.map (fun v -> Sat.value t.sat v) t.pi_vars

(* Replay a SAT test vector through the fault simulator; the solver must
   never fabricate a detecting vector the simulator rejects. *)
let validate_test t f vec =
  if not (Fsim.detect_single t.fsim f vec) then
    failwith
      "Sat_atpg.run: solver returned a vector the fault simulator does not \
       confirm (solver or encoder bug)"

let run t (f : Fault.t) =
  Obs.Span.with_ "atpg.sat" (fun () ->
      Obs.Counter.incr escalations_c;
      let c = t.circuit in
      let root =
        match f.Fault.site with Fault.Stem u -> u | Fault.Branch (g, _) -> g
      in
      let mask = fanout_cone c root in
      let flit = encode_faulty t f mask in
      let diffs =
        Array.to_list (Circuit.outputs c)
        |> List.filter_map (fun o ->
               if not mask.(o) then None
               else
                 let d = Cnf.xor_lits t.env [ t.node_lit.(o); flit.(o) ] in
                 if d = Cnf.lfalse t.env then None else Some d)
      in
      let journal outcome =
        if Obs.Journal.enabled () then
          Obs.Journal.emit "sat_escalation"
            (Fault.journal_fields f
            @ [ ("outcome", Obs_json.String outcome) ])
      in
      match diffs with
      | [] ->
        (* Every reachable output hashes to its good-copy literal: the
           fault provably never changes a primary output. *)
        Obs.Counter.incr redundant_c;
        journal "redundant";
        Redundant
      | _ ->
        let act = Sat.lit (Sat.new_var t.sat) in
        Sat.add_clause t.sat (Array.of_list (Sat.neg act :: diffs));
        let options =
          { Sat.Options.default with Sat.Options.budget = Some t.budget }
        in
        let result = Sat.solve_assuming ~options t.sat [| act |] in
        (* Retire the miter either way: later queries must not pay for it. *)
        Sat.add_clause t.sat [| Sat.neg act |];
        (match result with
        | Sat.Sat ->
          let vec = decode_model t in
          validate_test t f vec;
          journal "test";
          Test vec
        | Sat.Unsat ->
          Obs.Counter.incr redundant_c;
          journal "redundant";
          Redundant
        | Sat.Unknown ->
          Obs.Trace.instant ~cat:"atpg" "atpg.sat_budget_exhausted";
          journal "unknown";
          Unknown t.budget))

type escalation = {
  escalated : int;
  tests : (Fault.t * bool array) list;
  redundant : Fault.t list;
  unknown : (Fault.t * int) list;
}

let escalate ?limits c faults =
  match faults with
  | [] -> { escalated = 0; tests = []; redundant = []; unknown = [] }
  | _ ->
    let t = create ?limits c in
    let acc =
      List.fold_left
        (fun acc f ->
          match run t f with
          | Test v -> { acc with tests = (f, v) :: acc.tests }
          | Redundant -> { acc with redundant = f :: acc.redundant }
          | Unknown b -> { acc with unknown = (f, b) :: acc.unknown })
        { escalated = List.length faults; tests = []; redundant = []; unknown = [] }
        faults
    in
    {
      acc with
      tests = List.rev acc.tests;
      redundant = List.rev acc.redundant;
      unknown = List.rev acc.unknown;
    }
