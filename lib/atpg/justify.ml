type verdict =
  | Sat of bool array
  | Unsat
  | Unknown

exception Abort

type state = {
  cmp : Compiled.t;
  targets : (int * Tv.v) array;
  pi_value : Tv.v array;
  values : Tv.v array;
  mutable backtracks : int;
  limit : int;
  rng : Rng.t option;  (* randomises backtrace tie-breaks for retries *)
}

let imply st =
  Array.iter
    (fun id ->
      match Compiled.kind st.cmp id with
      | Gate.Input -> st.values.(id) <- st.pi_value.(id)
      | k ->
        let fins = Compiled.fanins st.cmp id in
        st.values.(id) <- Tv.eval k (Array.map (fun f -> st.values.(f)) fins))
    (Compiled.order st.cmp)

let status st =
  (* Conflict: a target line is known and wrong. Satisfied: all targets hold. *)
  let conflict = ref false in
  let open_target = ref None in
  Array.iter
    (fun (node, want) ->
      let v = st.values.(node) in
      if Tv.known v then begin
        if not (Tv.equal v want) then conflict := true
      end
      else if !open_target = None then open_target := Some (node, want))
    st.targets;
  if !conflict then `Conflict
  else match !open_target with None -> `Satisfied | Some t -> `Open t

(* Pick an unassigned fanin; with an rng, pick uniformly among them. *)
let pick_x st fins =
  let xs = Array.to_list fins |> List.filter (fun f -> not (Tv.known st.values.(f))) in
  match (xs, st.rng) with
  | [], _ -> None
  | x :: _, None -> Some x
  | xs, Some rng -> Some (List.nth xs (Rng.int rng (List.length xs)))

let backtrace st node v =
  let rec walk node v =
    match Compiled.kind st.cmp node with
    | Gate.Input -> if Tv.known st.values.(node) then None else Some (node, v)
    | Gate.Const0 | Gate.Const1 -> None
    | Gate.Buf -> walk (Compiled.fanins st.cmp node).(0) v
    | Gate.Not -> walk (Compiled.fanins st.cmp node).(0) (Tv.lnot v)
    | (Gate.And | Gate.Nand | Gate.Or | Gate.Nor) as kind ->
      let invert = Gate.inverting kind in
      let phase = if invert then Tv.lnot v else v in
      let fins = Compiled.fanins st.cmp node in
      Option.bind (pick_x st fins) (fun f -> walk f phase)
    | (Gate.Xor | Gate.Xnor) as kind ->
      let invert = Gate.inverting kind in
      let phase = if invert then Tv.lnot v else v in
      let fins = Compiled.fanins st.cmp node in
      let x_input = ref None in
      let parity = ref Tv.F in
      Array.iter
        (fun f ->
          if Tv.known st.values.(f) then parity := Tv.lxor_ !parity st.values.(f)
          else if !x_input = None then x_input := Some f)
        fins;
      Option.bind !x_input (fun f -> walk f (Tv.lxor_ phase !parity))
  in
  walk node v

type outcome = Found | Exhausted

let rec search_rec st =
  imply st;
  match status st with
  | `Satisfied -> Found
  | `Conflict -> Exhausted
  | `Open (node, want) -> (
    match backtrace st node want with
    | None -> Exhausted
    | Some (pi, pv) ->
      let attempt value =
        st.pi_value.(pi) <- value;
        search_rec st
      in
      (match attempt pv with
      | Found -> Found
      | Exhausted ->
        st.backtracks <- st.backtracks + 1;
        if st.backtracks > st.limit then raise Abort;
        (match attempt (Tv.lnot pv) with
        | Found -> Found
        | Exhausted ->
          st.pi_value.(pi) <- Tv.X;
          Exhausted)))

let search ?(backtrack_limit = Limits.default.Limits.justify_backtracks) ?rng ?prefer c
    targets =
  let cmp = Compiled.of_circuit c in
  let size = Compiled.size cmp in
  let st =
    {
      cmp;
      targets = Array.of_list (List.map (fun (n, b) -> (n, Tv.of_bool b)) targets);
      pi_value = Array.make size Tv.X;
      values = Array.make size Tv.X;
      backtracks = 0;
      limit = backtrack_limit;
      rng;
    }
  in
  match search_rec st with
  | Found ->
    let fill i =
      match prefer with Some p -> p.(i) | None -> false
    in
    let vec =
      Array.mapi
        (fun i pi ->
          match st.pi_value.(pi) with Tv.T -> true | Tv.F -> false | Tv.X -> fill i)
        (Compiled.inputs cmp)
    in
    Sat vec
  | Exhausted -> Unsat
  | exception Abort -> Unknown

let reachable_exhaustive c targets =
  let n = Circuit.num_inputs c in
  if n > 20 then invalid_arg "Justify.reachable_exhaustive: too many inputs";
  let found = ref false in
  for m = 0 to (1 lsl n) - 1 do
    if not !found then begin
      let vec = Array.init n (fun j -> m land (1 lsl (n - 1 - j)) <> 0) in
      let values = Eval.node_values c vec in
      if List.for_all (fun (node, want) -> values.(node) = want) targets then
        found := true
    end
  done;
  !found
