type options = {
  max_additions : int;
  max_trials : int;
  sim_patterns : int;
  backtrack_limit : int;  (* proof budget for wire additions *)
  removal_backtracks : int;  (* proof budget inside redundancy removal *)
  seed : int64;
}

let default_options =
  {
    max_additions = 40;
    max_trials = 400;
    sim_patterns = 1024;
    backtrack_limit = 500;
    removal_backtracks = 120;
    seed = 1L;
  }

type stats = {
  additions : int;
  removals : int;
  gates_before : int;
  gates_after : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "%d additions, %d removals; gates %d -> %d" s.additions
    s.removals s.gates_before s.gates_after

let is_andor c id =
  match Circuit.kind c id with
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> true
  | Gate.Input | Gate.Const0 | Gate.Const1 | Gate.Buf | Gate.Not | Gate.Xor
  | Gate.Xnor -> false

(* Bit-parallel node values over several 64-pattern batches. *)
let sim_batches c ~patterns ~seed =
  let cmp = Compiled.of_circuit c in
  let rng = Rng.create seed in
  let n_pi = Array.length (Compiled.inputs cmp) in
  let batches = max 1 ((patterns + 63) / 64) in
  Array.init batches (fun _ ->
      Compiled.simulate cmp (Array.init n_pi (fun _ -> Rng.next64 rng)))

(* Does the simulation show gd's and/or-phase at the non-controlled value
   while ns is at the controlling value? If so the wire addition would change
   gd's local function on some simulated pattern. *)
let filter_passes c values_batches gd ns =
  let kind = Circuit.kind c gd in
  let invert = Gate.inverting kind in
  let or_like = match kind with Gate.Or | Gate.Nor -> true | _ -> false in
  Array.for_all
    (fun values ->
      let out = if invert then Int64.lognot values.(gd) else values.(gd) in
      let conflict =
        if or_like then Int64.logand (Int64.lognot out) values.(ns)
        else Int64.logand out (Int64.lognot values.(ns))
      in
      conflict = 0L)
    values_batches

let transitive_fanout c gd =
  let seen = Bytes.make (Circuit.size c) '\000' in
  let rec mark id =
    if Bytes.get seen id = '\000' then begin
      Bytes.set seen id '\001';
      List.iter mark (Circuit.fanouts c id)
    end
  in
  mark gd;
  seen

(* Add [ns] as an extra input of [gd] and prove the addition redundant: the
   new pin's stuck-at-non-controlling fault must be untestable. On failure
   the gate is restored. *)
let try_addition opts c gd ns =
  let old_fanins = Array.copy (Circuit.fanins c gd) in
  let pin = Array.length old_fanins in
  let kind = Circuit.kind c gd in
  let stuck_nc =
    match Gate.controlling kind with
    | Some controlling -> not controlling
    | None -> assert false
  in
  Circuit.set_fanins c gd (Array.append old_fanins [| ns |]);
  let fault = { Fault.site = Fault.Branch (gd, pin); stuck = stuck_nc } in
  match Podem.generate ~backtrack_limit:opts.backtrack_limit c fault with
  | Podem.Untestable -> true
  | Podem.Test _ | Podem.Aborted ->
    Circuit.set_fanins c gd old_fanins;
    false

(* Merge functionally equivalent (or complementary) gates: candidates share a
   64xB-bit simulation signature; each pair is then proved by justification
   search on a temporary XOR/XNOR (UNSAT <=> equivalent). The survivor is the
   topologically earliest node, so retargeting cannot create cycles. This is
   the node-substitution move of RAR-family optimizers. *)
let merge_equivalents opts c ~seed =
  let batches = sim_batches c ~patterns:opts.sim_patterns ~seed in
  let order = Circuit.topo_order c in
  let topo_pos = Array.make (Circuit.size c) max_int in
  Array.iteri (fun i id -> topo_pos.(id) <- i) order;
  let signature id =
    let buf = Buffer.create 64 in
    Array.iter (fun values -> Buffer.add_string buf (Int64.to_string values.(id))) batches;
    Buffer.contents buf
  in
  let inv_signature id =
    let buf = Buffer.create 64 in
    Array.iter
      (fun values -> Buffer.add_string buf (Int64.to_string (Int64.lognot values.(id))))
      batches;
    Buffer.contents buf
  in
  let groups : (string, int list) Hashtbl.t = Hashtbl.create 97 in
  Array.iter
    (fun id ->
      match Circuit.kind c id with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
      | _ ->
        let key = signature id in
        Hashtbl.replace groups key (id :: (try Hashtbl.find groups key with Not_found -> [])))
    order;
  let prove_equal ~complement a b =
    let kind = if complement then Gate.Xnor else Gate.Xor in
    let probe = Circuit.add_gate c kind [| a; b |] in
    let verdict = Justify.search ~backtrack_limit:opts.removal_backtracks c [ (probe, true) ] in
    Circuit.delete c probe;
    verdict = Justify.Unsat
  in
  let merged = ref 0 in
  let try_merge ~complement rep m =
    if
      Circuit.is_alive c rep && Circuit.is_alive c m && rep <> m
      && topo_pos.(rep) < topo_pos.(m)
      && prove_equal ~complement rep m
    then begin
      let target =
        if complement then Circuit.add_gate c Gate.Not [| rep |] else rep
      in
      Circuit.retarget c ~from_:m ~to_:target;
      ignore (Circuit.sweep c);
      incr merged
    end
  in
  Hashtbl.iter
    (fun _key members ->
      match List.sort (fun a b -> compare topo_pos.(a) topo_pos.(b)) members with
      | [] | [ _ ] -> ()
      | rep :: rest -> List.iter (fun m -> try_merge ~complement:false rep m) rest)
    groups;
  (* complementary pairs: a gate whose inverted signature matches another *)
  Array.iter
    (fun id ->
      if Circuit.is_alive c id then
        match Circuit.kind c id with
        | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
        | _ -> (
          match Hashtbl.find_opt groups (inv_signature id) with
          | None -> ()
          | Some members ->
            List.iter
              (fun m ->
                if Circuit.is_alive c m && topo_pos.(id) < topo_pos.(m) then
                  try_merge ~complement:true id m)
              members))
    order;
  !merged

let optimize ?(options = default_options) c =
  let opts = options in
  let rng = Rng.create opts.seed in
  let gates_before = Circuit.two_input_gate_count c in
  let removals = ref 0 in
  let additions = ref 0 in
  let removal_seed = ref (Rng.next64 rng) in
  let remove () =
    let r =
      Redundancy.remove
        ~limits:
          { Limits.default with Limits.podem_backtracks = opts.removal_backtracks }
        ~prefilter_patterns:16_384 ~seed:!removal_seed c
    in
    removal_seed := Rng.next64 rng;
    removals := !removals + r.Redundancy.removed
  in
  remove ();
  (* node substitution rounds: merge equivalent/complementary gates, then
     clean up, until no merge is found *)
  let rec merge_rounds n =
    if n > 0 then begin
      let merged = merge_equivalents opts c ~seed:(Rng.next64 rng) in
      removals := !removals + merged;
      if merged > 0 then begin
        remove ();
        merge_rounds (n - 1)
      end
    end
  in
  merge_rounds 4;
  let improving = ref true in
  while !improving && !additions < opts.max_additions do
    improving := false;
    let values = sim_batches c ~patterns:opts.sim_patterns ~seed:(Rng.next64 rng) in
    let nodes =
      let acc = ref [] in
      Circuit.iter_live c (fun id -> acc := id :: !acc);
      Array.of_list !acc
    in
    let gates = Array.of_list (List.filter (is_andor c) (Array.to_list nodes)) in
    Rng.shuffle rng gates;
    let trials = ref 0 in
    let gi = ref 0 in
    while (not !improving) && !trials < opts.max_trials && !gi < Array.length gates do
      let gd = gates.(!gi) in
      incr gi;
      if Circuit.is_alive c gd && is_andor c gd then begin
        let tfo = transitive_fanout c gd in
        let already = Array.to_list (Circuit.fanins c gd) in
        let sources = Array.copy nodes in
        Rng.shuffle rng sources;
        let si = ref 0 in
        while (not !improving) && !trials < opts.max_trials && !si < Array.length sources
        do
          let ns = sources.(!si) in
          incr si;
          if
            Circuit.is_alive c ns && ns <> gd
            && Bytes.get tfo ns = '\000'
            && (not (List.mem ns already))
            && (match Circuit.kind c ns with
               | Gate.Const0 | Gate.Const1 -> false
               | _ -> true)
            && filter_passes c values gd ns
          then begin
            incr trials;
            let snapshot = Circuit.copy c in
            if try_addition opts c gd ns then begin
              let before = Circuit.two_input_gate_count snapshot in
              let saved_removals = !removals in
              remove ();
              if Circuit.two_input_gate_count c < before then begin
                incr additions;
                improving := true
              end
              else begin
                (* unproductive addition: roll everything back *)
                Circuit.overwrite c ~with_:snapshot;
                removals := saved_removals
              end
            end
          end
        done
      end
    done
  done;
  {
    additions = !additions;
    removals = !removals;
    gates_before;
    gates_after = Circuit.two_input_gate_count c;
  }
