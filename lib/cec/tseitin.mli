(** Tseitin CNF encoding of netlists, with structural hashing.

    Translates {!Circuit.t} logic into clauses over a {!Sat} solver, one
    definitional variable per distinct gate. Encoding is literal-based, so
    inverting kinds are free: [Not]/[Nand]/[Nor]/[Xnor] return the negation
    of the underlying [Buf]/[And]/[Or]/[Xor] literal without extra variables
    or clauses. [Or] is canonicalised to [And] by De Morgan.

    Structural hashing keys every [And]/[Xor] node on its (sorted, constant-
    folded, deduplicated) fanin literals: encoding two circuits into the same
    environment collapses their shared logic to shared variables. This is
    what makes per-replacement miters in the resynthesis engine cheap — the
    untouched cone of both snapshots maps to the {e same} literals and drops
    out of the equivalence problem entirely. *)

type env
(** An encoding environment: a solver plus the structural-hash table and the
    designated constant-true literal. *)

val create : Sat.t -> env
(** Fresh environment over [sat]; allocates the constant-true variable and
    asserts it with a unit clause. *)

val ltrue : env -> int
(** The literal that is true in every model of the environment. *)

val lfalse : env -> int
(** Negation of {!ltrue}. *)

val and_lits : env -> int list -> int
(** Conjunction of literals: folds constants, deduplicates, recognises
    complementary pairs, then hashes. The empty conjunction is {!ltrue}. *)

val or_lits : env -> int list -> int
(** Disjunction, via De Morgan on {!and_lits}; the empty disjunction is
    {!lfalse}. *)

val xor_lits : env -> int list -> int
(** Parity of the literals (the netlist semantics of k-ary [Xor]). *)

val encode : env -> pi_lits:int array -> Circuit.t -> int array
(** Encode a whole circuit: [pi_lits.(j)] is the literal driving primary
    input [j] (indexed like {!Circuit.inputs}); the result holds one literal
    per primary output (indexed like {!Circuit.outputs}). The circuit is not
    modified. Raises [Invalid_argument] if [pi_lits] is shorter than the
    circuit's input list. *)
