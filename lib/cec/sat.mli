(** Minimal CDCL SAT solver for combinational equivalence checking.

    A self-contained conflict-driven clause-learning solver in the MiniSat
    lineage: two-watched-literal propagation, first-UIP conflict analysis
    with non-chronological backjumping, VSIDS-style decaying variable
    activities (binary max-heap), phase saving and Luby-sequence restarts.
    No preprocessing and no learned-clause deletion — the CNFs produced by
    {!Tseitin} for resynthesis miters are small and heavily structurally
    shared, and the conflict budget bounds memory growth.

    Variables are dense non-negative integers handed out by {!new_var}.
    Literals are integers [2*v] (positive) and [2*v + 1] (negated); use
    {!lit}, {!neg}, {!var_of} and {!is_neg} instead of relying on the
    encoding. The solver is single-owner mutable state: one [t] per check,
    not shared across domains. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val lit : int -> int
(** Positive literal of a variable. *)

val neg : int -> int
(** Negation of a literal (involutive). *)

val var_of : int -> int
(** Variable underlying a literal. *)

val is_neg : int -> bool
(** Whether the literal is the negated phase of its variable. *)

val add_clause : t -> int array -> unit
(** Add a clause (a disjunction of literals). Clauses may only be added
    before {!solve} is called. Tautologies are dropped, duplicate literals
    merged; an empty clause (or a contradicting pair of unit clauses) makes
    the instance trivially unsatisfiable. *)

type outcome =
  | Sat  (** A satisfying assignment exists; read it with {!value}. *)
  | Unsat  (** Proved unsatisfiable. *)
  | Unknown  (** Conflict budget exhausted before a verdict. *)

val solve : ?budget:int -> t -> outcome
(** Run the CDCL loop. [budget] bounds the total number of conflicts
    (default: unlimited). After [Sat] every variable is assigned and
    {!value} reads the model; after [Unsat] or [Unknown] the solver state
    is unspecified and the instance should be discarded. *)

val value : t -> int -> bool
(** Model value of a variable (meaningful only after {!solve} = [Sat]). *)

val num_vars : t -> int
val num_clauses : t -> int
(** Problem clauses added so far (learned clauses excluded). *)

val decisions : t -> int
val conflicts : t -> int
val propagations : t -> int
(** Cumulative search statistics across all {!solve} calls on this
    solver. *)
