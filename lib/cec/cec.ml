(* Miter-based combinational equivalence checking on top of Sat/Cnf. *)

exception Interface_mismatch of string

type verdict =
  | Equivalent
  | Counterexample of bool array
  | Unknown of int

let pp_verdict ppf = function
  | Equivalent -> Format.pp_print_string ppf "equivalent"
  | Counterexample v ->
    Format.fprintf ppf "counterexample %s"
      (String.concat ""
         (Array.to_list (Array.map (fun b -> if b then "1" else "0") v)))
  | Unknown budget -> Format.fprintf ppf "unknown (budget %d conflicts)" budget

type stats = {
  outputs_checked : int;
  vars : int;
  clauses : int;
  decisions : int;
  conflicts : int;
  propagations : int;
}

let default_budget = 100_000

let checks_c = Obs.Counter.make ~help:"equivalence checks run" "cec.checks"
let equivalent_c = Obs.Counter.make ~help:"checks proved equivalent" "cec.equivalent"
let cex_c = Obs.Counter.make ~help:"checks with a counterexample" "cec.counterexample"
let unknown_c = Obs.Counter.make ~help:"checks hitting the budget" "cec.unknown"
let decisions_c = Obs.Counter.make ~help:"SAT decisions" "cec.decisions"
let conflicts_c = Obs.Counter.make ~help:"SAT conflicts" "cec.conflicts"
let propagations_c = Obs.Counter.make ~help:"SAT propagations" "cec.propagations"
let miter_vars_h = Obs.Histogram.make ~help:"variables per output miter" "cec.miter_vars"

(* --- interface matching --------------------------------------------------- *)

(* Names when every entry is present, non-empty and unique. *)
let complete_unique names =
  let ok = ref true in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun n ->
      match n with
      | None | Some "" -> ok := false
      | Some n ->
        if Hashtbl.mem seen n then ok := false else Hashtbl.add seen n ())
    names;
  if !ok then Some (Array.map Option.get names) else None

let same_name_set a b =
  let sa = Array.copy a and sb = Array.copy b in
  Array.sort compare sa;
  Array.sort compare sb;
  sa = sb

(* [pi_map.(j)] is the input position of circuit [a] matched to input
   position [j] of circuit [b]: by name when both sides carry complete
   identical name sets, positionally otherwise. *)
let match_inputs a b =
  let ia = Circuit.inputs a and ib = Circuit.inputs b in
  if Array.length ia <> Array.length ib then
    raise
      (Interface_mismatch
         (Printf.sprintf "input counts differ: %d vs %d" (Array.length ia)
            (Array.length ib)));
  let na = complete_unique (Array.map (Circuit.node_name a) ia) in
  let nb = complete_unique (Array.map (Circuit.node_name b) ib) in
  match (na, nb) with
  | Some na, Some nb when same_name_set na nb ->
    let index = Hashtbl.create (Array.length na) in
    Array.iteri (fun i n -> Hashtbl.add index n i) na;
    Array.map (fun n -> Hashtbl.find index n) nb
  | _ -> Array.init (Array.length ib) Fun.id

(* Output pairs [(i, j)] — position [i] of [a] against position [j] of [b] —
   ordered by [i]; by name under the same rules as inputs. *)
let match_outputs a b =
  let n = Circuit.num_outputs a in
  if n <> Circuit.num_outputs b then
    raise
      (Interface_mismatch
         (Printf.sprintf "output counts differ: %d vs %d" n
            (Circuit.num_outputs b)));
  let names c =
    complete_unique
      (Array.map (fun s -> if s = "" then None else Some s) (Circuit.output_names c))
  in
  match (names a, names b) with
  | Some na, Some nb when same_name_set na nb ->
    let index = Hashtbl.create n in
    Array.iteri (fun j nm -> Hashtbl.add index nm j) nb;
    Array.init n (fun i -> (i, Hashtbl.find index na.(i)))
  | _ -> Array.init n (fun i -> (i, i))

(* --- per-output miters ---------------------------------------------------- *)

(* Transitive-fanin cone of [root], as a node-id mask. *)
let cone c root =
  let mask = Array.make (Circuit.size c) false in
  let rec visit id =
    if not mask.(id) then begin
      mask.(id) <- true;
      match Circuit.kind c id with
      | Gate.Input | Gate.Const0 | Gate.Const1 -> ()
      | _ -> Array.iter visit (Circuit.fanins c id)
    end
  in
  visit root;
  mask

(* Encode just the cone of [root]; returns its literal. *)
let encode_cone env ~pi_lits ~order ~input_pos c root =
  let mask = cone c root in
  let node_lit = Array.make (Circuit.size c) min_int in
  Array.iter
    (fun id ->
      if mask.(id) then
        node_lit.(id) <-
          (match Circuit.kind c id with
          | Gate.Input -> pi_lits.(input_pos.(id))
          | Gate.Const0 -> Cnf.lfalse env
          | Gate.Const1 -> Cnf.ltrue env
          | kind ->
            let args =
              Array.to_list
                (Array.map (fun f -> node_lit.(f)) (Circuit.fanins c id))
            in
            (match kind with
            | Gate.Buf -> List.hd args
            | Gate.Not -> Sat.neg (List.hd args)
            | Gate.And -> Cnf.and_lits env args
            | Gate.Or -> Cnf.or_lits env args
            | Gate.Nand -> Sat.neg (Cnf.and_lits env args)
            | Gate.Nor -> Sat.neg (Cnf.or_lits env args)
            | Gate.Xor -> Cnf.xor_lits env args
            | Gate.Xnor -> Sat.neg (Cnf.xor_lits env args)
            | Gate.Input | Gate.Const0 | Gate.Const1 -> assert false)))
    order;
  node_lit.(root)

(* Map node id -> input position, for PI literal lookup. *)
let input_positions c =
  let pos = Array.make (Circuit.size c) (-1) in
  Array.iteri (fun j id -> pos.(id) <- j) (Circuit.inputs c);
  pos

type pair_result = {
  pr_verdict : verdict;
  pr_stats : stats;
}

(* One output pair: build a fresh solver holding both cones (structural
   hashing shares their common logic) and decide the XOR of the roots. *)
let check_pair ~budget a b pi_map orders (i, j) =
  let order_a, order_b = orders in
  let sat = Sat.create () in
  let env = Cnf.create sat in
  let n = Circuit.num_inputs a in
  let pi_lits_a = Array.init n (fun _ -> Sat.lit (Sat.new_var sat)) in
  let pi_lits_b = Array.map (fun k -> pi_lits_a.(k)) pi_map in
  let la =
    encode_cone env ~pi_lits:pi_lits_a ~order:order_a
      ~input_pos:(input_positions a) a
      (Circuit.outputs a).(i)
  in
  let lb =
    encode_cone env ~pi_lits:pi_lits_b ~order:order_b
      ~input_pos:(input_positions b) b
      (Circuit.outputs b).(j)
  in
  let stats () =
    {
      outputs_checked = 1;
      vars = Sat.num_vars sat;
      clauses = Sat.num_clauses sat;
      decisions = Sat.decisions sat;
      conflicts = Sat.conflicts sat;
      propagations = Sat.propagations sat;
    }
  in
  Obs.Histogram.observe miter_vars_h (Sat.num_vars sat);
  if la = lb then { pr_verdict = Equivalent; pr_stats = stats () }
  else begin
    (* Assert the miter output: the two roots differ. *)
    let diff = Cnf.xor_lits env [ la; lb ] in
    Sat.add_clause sat [| diff |];
    let verdict =
      let options = { Sat.Options.default with Sat.Options.budget = Some budget } in
      match Sat.solve ~options sat with
      | Sat.Unsat -> Equivalent
      | Sat.Unknown -> Unknown budget
      | Sat.Sat ->
        Counterexample (Array.map (fun l -> Sat.value sat (Sat.var_of l)) pi_lits_a)
    in
    { pr_verdict = verdict; pr_stats = stats () }
  end

(* Replay a counterexample through the reference simulator; a solver bug must
   never surface as a false inequivalence. *)
let validate_cex a b pi_map pairs cex =
  let vb = Array.map (fun k -> cex.(k)) pi_map in
  let oa = Eval.run a cex and ob = Eval.run b vb in
  if not (Array.exists (fun (i, j) -> oa.(i) <> ob.(j)) pairs) then
    failwith
      "Cec.check: solver returned an assignment that does not distinguish \
       the circuits (solver or encoder bug)"

let zero_stats =
  {
    outputs_checked = 0;
    vars = 0;
    clauses = 0;
    decisions = 0;
    conflicts = 0;
    propagations = 0;
  }

let add_stats s1 s2 =
  {
    outputs_checked = s1.outputs_checked + s2.outputs_checked;
    vars = s1.vars + s2.vars;
    clauses = s1.clauses + s2.clauses;
    decisions = s1.decisions + s2.decisions;
    conflicts = s1.conflicts + s2.conflicts;
    propagations = s1.propagations + s2.propagations;
  }

(* Encode both circuits fully into one throwaway environment and keep only
   the output pairs whose roots do NOT hash to the same literal: pairs the
   structural hash already collapses are equivalent by construction and need
   no solving. After a local rewrite almost every output survives this
   filter, which is what makes per-replacement verification in the engine
   affordable on large circuits. *)
let structural_filter a b pi_map pairs =
  let sat = Sat.create () in
  let env = Cnf.create sat in
  let n = Circuit.num_inputs a in
  let pi_a = Array.init n (fun _ -> Sat.lit (Sat.new_var sat)) in
  let pi_b = Array.map (fun k -> pi_a.(k)) pi_map in
  let la = Cnf.encode env ~pi_lits:pi_a a in
  let lb = Cnf.encode env ~pi_lits:pi_b b in
  Array.of_list
    (List.filter (fun (i, j) -> la.(i) <> lb.(j)) (Array.to_list pairs))

let check_stats ?(budget = default_budget) ?pool a b =
  Obs.Span.with_ "cec.check" (fun () ->
      Obs.Counter.incr checks_c;
      let pi_map = match_inputs a b in
      let all_pairs = match_outputs a b in
      let pairs = structural_filter a b pi_map all_pairs in
      let orders = (Circuit.topo_order a, Circuit.topo_order b) in
      let results =
        match pool with
        | Some pool when Array.length pairs > 1 ->
          Pool.map pool ~chunk:1 (check_pair ~budget a b pi_map orders) pairs
        | _ ->
          (* Serial path: stop at the first counterexample — it is the
             lowest-indexed one, which is also what the pool path reports. *)
          let n = Array.length pairs in
          let acc = ref [] in
          (try
             for idx = 0 to n - 1 do
               let r = check_pair ~budget a b pi_map orders pairs.(idx) in
               acc := r :: !acc;
               match r.pr_verdict with
               | Counterexample _ -> raise Exit
               | Equivalent | Unknown _ -> ()
             done
           with Exit -> ());
          Array.of_list (List.rev !acc)
      in
      let stats = Array.fold_left (fun s r -> add_stats s r.pr_stats) zero_stats results in
      let verdict =
        (* A counterexample (lowest output index first) beats Unknown. *)
        let cex =
          Array.find_opt
            (fun r -> match r.pr_verdict with Counterexample _ -> true | _ -> false)
            results
        in
        match cex with
        | Some { pr_verdict = Counterexample v; _ } ->
          validate_cex a b pi_map all_pairs v;
          Counterexample v
        | _ ->
          if Array.exists (fun r -> r.pr_verdict <> Equivalent) results then
            Unknown budget
          else Equivalent
      in
      (match verdict with
      | Equivalent -> Obs.Counter.incr equivalent_c
      | Counterexample _ ->
        Obs.Counter.incr cex_c;
        Obs.Trace.instant ~cat:"cec" "cec.counterexample"
      | Unknown _ ->
        Obs.Counter.incr unknown_c;
        Obs.Trace.instant ~cat:"cec" "cec.budget_exhausted");
      Obs.Counter.add decisions_c stats.decisions;
      Obs.Counter.add conflicts_c stats.conflicts;
      Obs.Counter.add propagations_c stats.propagations;
      if Obs.Journal.enabled () then
        Obs.Journal.emit "cec_check"
          [
            ( "verdict",
              Obs_json.String
                (match verdict with
                | Equivalent -> "equivalent"
                | Counterexample _ -> "counterexample"
                | Unknown _ -> "unknown") );
            ("outputs", Obs_json.Int (Array.length results));
            ("conflicts", Obs_json.Int stats.conflicts);
            ("decisions", Obs_json.Int stats.decisions);
          ];
      (verdict, stats))

let check ?budget ?pool a b = fst (check_stats ?budget ?pool a b)

(* Deprecated re-exports: the solver and encoder moved to the standalone
   sft.sat library. Kept one release, mirroring the PR-2/PR-3 convention. *)
module Sat_alias = Sat
module Tseitin_alias = Cnf
module Sat = Sat_alias
module Tseitin = Tseitin_alias
