(** SAT-based combinational equivalence checking (CEC).

    Proves two netlists functionally identical — or produces a concrete
    distinguishing input vector — by building a {e miter}: both circuits are
    Tseitin-encoded into one solver over shared primary-input variables
    (structural hashing collapses common logic), matched outputs are XOR-ed,
    and the disjunction of the XOR literals is asserted. The miter is
    unsatisfiable iff the circuits are equivalent.

    Primary inputs and outputs are matched by name when both circuits carry
    a complete, duplicate-free and identical name set, and positionally
    otherwise (the counts must agree either way); {!Interface_mismatch} is
    raised when no matching exists.

    Soundness guard: a [Sat] answer from the solver is only reported as
    {!Counterexample} after the assignment has been replayed through
    {!Eval.run} on both circuits and confirmed to produce differing outputs
    — a solver or encoder bug therefore cannot fabricate a false
    inequivalence (it raises [Failure] instead). [Equivalent] answers rest
    on the solver's UNSAT proof, which the qcheck harness cross-validates
    against exhaustive simulation (see [test/test_cec.ml]).

    Observability (when {!Obs.enabled}): counters [cec.checks],
    [cec.equivalent], [cec.counterexample], [cec.unknown], [cec.decisions],
    [cec.conflicts], [cec.propagations]; histogram [cec.miter_vars]; span
    [cec.check]. *)

exception Interface_mismatch of string
(** The two circuits cannot be compared: differing input/output counts, or
    irreconcilable names. The message is human-readable. *)

type verdict =
  | Equivalent  (** UNSAT miter: the circuits agree on every input. *)
  | Counterexample of bool array
      (** A distinguishing assignment, indexed like [Circuit.inputs] of the
          {e first} circuit, validated through {!Eval.run} on both. *)
  | Unknown of int
      (** The conflict budget (payload) was exhausted with no verdict. *)

val pp_verdict : Format.formatter -> verdict -> unit

type stats = {
  outputs_checked : int;  (** miter output pairs actually solved *)
  vars : int;  (** solver variables across all miters of this check *)
  clauses : int;  (** problem clauses (learned clauses excluded) *)
  decisions : int;
  conflicts : int;
  propagations : int;
}

val default_budget : int
(** Conflict budget per output-pair miter when [?budget] is omitted
    (100_000 — far above anything the resynthesis miters need). *)

val check : ?budget:int -> ?pool:Pool.t -> Circuit.t -> Circuit.t -> verdict
(** [check a b] decides functional equivalence of [a] and [b]. The check is
    split per matched output pair — each pair gets its own miter restricted
    to its transitive fanin cones — and pairs are distributed over [pool]
    when one is supplied (the verdict is identical for every pool width:
    the counterexample reported is always the one for the lowest-numbered
    differing output). Neither circuit is modified. *)

val check_stats :
  ?budget:int -> ?pool:Pool.t -> Circuit.t -> Circuit.t -> verdict * stats
(** Like {!check} but also returns aggregated solver statistics, summed
    across all per-output miters (conflict/decision counts are what the
    bench harness records per circuit). *)

(** {2 Deprecated aliases}

    The CDCL solver and the Tseitin encoder moved to the standalone
    [sft.sat] library; these aliases are kept for one release. *)

module Sat = Sat
[@@deprecated "use Sat from sft.sat directly"]

module Tseitin = Cnf
[@@deprecated "use Cnf from sft.sat directly"]
