type entry = {
  name : string;
  profile : Circuit_gen.profile;
  paper_inputs : int;
  paper_outputs : int;
  paper_gates2 : int;
  paper_paths : int;
}

let mk name ~pi ~po ~gates ~depth ~combine ~xor ~seed ~paper:(pin, pout, pg, pp) =
  {
    name;
    profile =
      {
        Circuit_gen.name;
        n_pi = pi;
        n_po = po;
        n_gates = gates;
        depth;
        combine_pct = combine;
        xor_pct = xor;
        seed;
      };
    paper_inputs = pin;
    paper_outputs = pout;
    paper_gates2 = pg;
    paper_paths = pp;
  }

(* Interface sizes follow the paper (Table 5); the four largest circuits are
   scaled down (DESIGN.md, Sec. 7). Window sizes are calibrated so that the
   depth and path-count orders of magnitude track the paper's circuits. *)
let all =
  [
    mk "irs1423" ~pi:91 ~po:79 ~gates:560 ~depth:28 ~combine:20 ~xor:6 ~seed:1423L
      ~paper:(91, 79, 491, 42_089);
    mk "irs5378" ~pi:214 ~po:224 ~gates:1500 ~depth:15 ~combine:15 ~xor:3 ~seed:5378L
      ~paper:(214, 224, 1394, 10_976);
    mk "irs9234" ~pi:247 ~po:248 ~gates:2050 ~depth:25 ~combine:25 ~xor:4 ~seed:9234L
      ~paper:(247, 248, 1929, 109_283);
    mk "irs13207" ~pi:350 ~po:394 ~gates:1450 ~depth:26 ~combine:26 ~xor:3 ~seed:13207L
      ~paper:(699, 788, 2737, 261_312);
    mk "irs15850" ~pi:244 ~po:272 ~gates:1420 ~depth:40 ~combine:36 ~xor:4 ~seed:15850L
      ~paper:(611, 680, 3361, 23_003_369);
    mk "irs35932" ~pi:352 ~po:410 ~gates:2100 ~depth:12 ~combine:15 ~xor:2 ~seed:35932L
      ~paper:(1763, 2048, 9900, 58_645);
    mk "irs38417" ~pi:333 ~po:348 ~gates:2050 ~depth:30 ~combine:32 ~xor:3 ~seed:38417L
      ~paper:(1664, 1742, 9698, 1_192_971);
    mk "irs38584" ~pi:218 ~po:255 ~gates:1900 ~depth:28 ~combine:30 ~xor:3 ~seed:38584L
      ~paper:(1455, 1700, 12037, 565_433);
  ]

let small =
  List.filter
    (fun e -> List.mem e.name [ "irs1423"; "irs5378"; "irs9234"; "irs13207" ])
    all

let find name = List.find (fun e -> e.name = name) all

let cache : (string, Circuit.t) Hashtbl.t = Hashtbl.create 8

(* Prepared circuits are also cached on disk so the expensive redundancy
   removal runs once, not once per process. Candidate directories: the
   SFT_DATA environment variable, then data/benchmarks relative to the
   working directory and its parents (so `dune exec` from the repo works). *)
let data_dirs () =
  let env = match Sys.getenv_opt "SFT_DATA" with Some d -> [ d ] | None -> [] in
  let rec parents acc dir depth =
    if depth = 0 then List.rev acc
    else
      parents
        (Filename.concat dir "data/benchmarks" :: acc)
        (Filename.concat dir "..") (depth - 1)
  in
  env @ parents [] "." 5

let cached_file name =
  List.find_map
    (fun dir ->
      let path = Filename.concat dir (name ^ ".bench") in
      if Sys.file_exists path then Some path else None)
    (data_dirs ())

let store_file name c =
  match
    List.find_opt
      (fun dir -> Sys.file_exists dir && Sys.is_directory dir)
      (data_dirs ())
  with
  | Some dir -> Bench_format.write_file (Filename.concat dir (name ^ ".bench")) c
  | None -> ()

let cached e = cached_file e.name <> None

let prepare e =
  let raw = Circuit_gen.generate e.profile in
  let irredundant, _report =
    Redundancy.make_irredundant
      ~limits:{ Limits.default with Limits.podem_backtracks = 400 }
      ~prefilter_patterns:8192
      ~seed:(Int64.add e.profile.Circuit_gen.seed 77L) raw
  in
  Circuit.set_name irredundant e.name;
  irredundant

let build e =
  match Hashtbl.find_opt cache e.name with
  | Some c -> Circuit.copy c
  | None ->
    let c =
      match cached_file e.name with
      | Some path -> Bench_format.read_file path
      | None ->
        let c = prepare e in
        store_file e.name c;
        c
    in
    Circuit.set_name c e.name;
    Hashtbl.replace cache e.name c;
    Circuit.copy c

let c17_text =
  "INPUT(G1)\nINPUT(G2)\nINPUT(G3)\nINPUT(G6)\nINPUT(G7)\n\
   OUTPUT(G22)\nOUTPUT(G23)\n\
   G10 = NAND(G1, G3)\n\
   G11 = NAND(G3, G6)\n\
   G16 = NAND(G2, G11)\n\
   G19 = NAND(G11, G7)\n\
   G22 = NAND(G10, G16)\n\
   G23 = NAND(G16, G19)\n"

let c17 () = Bench_format.of_string ~name:"c17" c17_text
