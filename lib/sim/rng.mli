(** Deterministic pseudo-random sources.

    All experiment randomness flows through these so every run is
    reproducible from its seed. *)

type t

val create : int64 -> t
(** Splitmix64 stream seeded explicitly. *)

val copy : t -> t
val next64 : t -> int64
val int : t -> int -> int
(** Uniform over [0 .. bound - 1]; [bound] must be positive. *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val split : t -> t
(** Independent child stream (advances the parent). *)
