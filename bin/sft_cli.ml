(* sft — command-line front end for the synthesis-for-testability library.

   Circuits are read from ISCAS-style .bench files ("-" reads stdin), or
   taken from the built-in benchmark registry with --bench NAME.

   Every subcommand accepts --metrics [text|json|FILE], --trace, and
   --trace-out FILE (Chrome trace-event export; observability, see Obs and
   DESIGN.md §9 and §11); optimize/check/fsim/atpg additionally accept
   --journal FILE (structured decision journal, DESIGN.md §16, analysed
   with `sft report`). With --metrics json the metrics document owns
   stdout and all human-readable output moves to stderr, so
   `sft fsim --metrics json -` composes in a pipe. *)

open Cmdliner

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("sft: " ^ msg);
      exit 1)
    fmt

let load ~file ~bench =
  match (file, bench) with
  | Some "-", None -> (
    match Bench_format.parse ~name:"stdin" (In_channel.input_all In_channel.stdin) with
    | Ok c -> c
    | Error e -> die "stdin: %s" (Bench_format.error_to_string e))
  | Some f, None -> (
    match Bench_format.parse_file f with
    | Ok c -> c
    | Error e -> die "%s: %s" f (Bench_format.error_to_string e))
  | None, Some b -> Benchmarks.build (Benchmarks.find b)
  | Some _, Some _ -> die "give either FILE or --bench, not both"
  | None, None -> die "give a .bench FILE or --bench NAME"

let file_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Input .bench netlist ($(b,-) reads standard input).")

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"NAME"
        ~doc:"Use a built-in benchmark stand-in (irs1423, irs5378, ..., see $(b,sft list)).")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Write the resulting netlist to OUT.")

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Computation domains for parallel execution: 0 picks the \
           recommended domain count, 1 forces the serial path. Results are \
           identical for every value.")

(* --- observability plumbing ---------------------------------------------- *)

type metrics =
  | MNone
  | MText
  | MJson
  | MFile of string

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"SINK"
        ~doc:
          "Collect observability metrics and emit them when the command \
           finishes: $(b,text) prints a readable dump, $(b,json) prints the \
           JSON document on stdout (human output moves to stderr), anything \
           else is a file path that receives the JSON.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Collect span timings and print the trace tree to stderr.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record begin/end/instant events while the command runs and write \
           them to FILE as a Chrome trace-event JSON array (open with \
           chrome://tracing or Perfetto).")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Record a structured decision journal to FILE as JSONL while the \
           command runs: splice accepts/rollbacks with cut and gain, \
           identification verdicts tagged by cache source, PODEM aborts and \
           their SAT-escalation outcomes, redundancy proofs, CEC verdicts \
           and periodic runtime (GC/RSS) samples. Analyse afterwards with \
           $(b,sft report). Implies metrics collection; results are \
           bit-identical with or without a journal.")

(* [with_obs ~cmd metrics trace trace_out body] runs [body ppf] with
   observability enabled as requested and exports the registry afterwards
   (also on failure, so an interrupted run still reports what it measured).
   [journal], where a command offers it, opens an [Obs.Journal] destined for
   the given file and tagged with [cmd]; journaling needs the funnel
   counters, so it switches metrics collection on too. [ppf] is where the
   command's human-readable output goes: stderr when stdout carries JSON. *)
let with_obs ?journal ~cmd metrics trace trace_out body =
  let metrics =
    match metrics with
    | None -> MNone
    | Some "text" -> MText
    | Some "json" -> MJson
    | Some path -> MFile path
  in
  if metrics <> MNone || trace then Obs.enable ();
  if trace_out <> None then Obs.Trace.enable ();
  (match journal with
  | Some path ->
    Obs.enable ();
    Obs.Journal.start ~cmd path;
    (* Anchor the GC/RSS baselines so the first periodic sample reports a
       run-relative delta, not process-lifetime totals. *)
    Obs.Runtime.sample ()
  | None -> ());
  let ppf = if metrics = MJson then Format.err_formatter else Format.std_formatter in
  Fun.protect
    ~finally:(fun () ->
      Format.pp_print_flush ppf ();
      (match journal with
      | Some path ->
        Obs.Runtime.sample ();
        let s = Obs.Journal.finish () in
        if s.Obs.Journal.dropped > 0 then
          Printf.eprintf "sft: journal %s: %d event(s) dropped (buffers full)\n"
            path s.Obs.Journal.dropped
      | None -> ());
      if trace then prerr_string (Obs.Export.trace_text ());
      (match trace_out with
      | Some path ->
        Obs.Trace.write_file path;
        let s = Obs.Trace.stats () in
        if s.Obs.Trace.dropped > 0 then
          Printf.eprintf "sft: trace %s: %d event(s) dropped (buffers full)\n"
            path s.Obs.Trace.dropped
      | None -> ());
      match metrics with
      | MNone -> ()
      | MText -> print_string (Obs.Export.to_text ())
      | MJson -> print_endline (Obs.Export.to_json ())
      | MFile path -> Obs.Export.write_file path)
    (fun () -> body ppf)

let save ppf output c =
  match output with
  | Some path ->
    Bench_format.write_file path c;
    Format.fprintf ppf "wrote %s@." path
  | None -> ()

let print_stats ppf c =
  let paths = try Table.int (Paths.total c) with Paths.Overflow -> "overflow" in
  Format.fprintf ppf
    "%s: inputs %d, outputs %d, gates %d (eq. 2-input %d), paths %s, depth %d (logic %d)@."
    (Circuit.name c) (Circuit.num_inputs c) (Circuit.num_outputs c)
    (Circuit.num_gates c)
    (Circuit.two_input_gate_count c)
    paths (Levelize.depth c) (Levelize.depth_logic c)

(* --- stats ---------------------------------------------------------------- *)

let stats_cmd =
  let run file bench metrics trace trace_out =
    with_obs ~cmd:"stats" metrics trace trace_out (fun ppf ->
        let c = load ~file ~bench in
        print_stats ppf c)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print circuit statistics (Procedure 1 path count included).")
    Term.(const run $ file_arg $ bench_arg $ metrics_arg $ trace_arg $ trace_out_arg)

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    let t =
      Table.create ~title:"built-in benchmark stand-ins"
        ~columns:[ "name"; "inputs"; "outputs"; "paper 2-inp"; "paper paths" ]
    in
    List.iter
      (fun e ->
        Table.add_row t
          [
            e.Benchmarks.name;
            string_of_int e.Benchmarks.profile.Circuit_gen.n_pi;
            string_of_int e.Benchmarks.profile.Circuit_gen.n_po;
            Table.int e.Benchmarks.paper_gates2;
            Table.int e.Benchmarks.paper_paths;
          ])
      Benchmarks.all;
    Table.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark stand-ins.")
    Term.(const run $ const ())

(* --- gen ------------------------------------------------------------------ *)

let gen_cmd =
  let run name raw output metrics trace trace_out =
    with_obs ~cmd:"gen" metrics trace trace_out (fun ppf ->
        let e = Benchmarks.find name in
        let c =
          if raw then Circuit_gen.generate e.Benchmarks.profile else Benchmarks.build e
        in
        print_stats ppf c;
        save ppf output c)
  in
  let name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  let raw =
    Arg.(value & flag & info [ "raw" ] ~doc:"Skip the redundancy-removal preparation step.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a benchmark stand-in and optionally write it out.")
    Term.(const run $ name_arg $ raw $ output_arg $ metrics_arg $ trace_arg $ trace_out_arg)

(* --- optimize ------------------------------------------------------------- *)

let optimize_cmd =
  let run file bench objective k engine budget no_merge verify dontcares units
      no_id_cache cache_dir incremental commit_batch no_worklist scheduler
      domains output metrics trace trace_out journal =
    with_obs ?journal ~cmd:"optimize" metrics trace trace_out (fun ppf ->
        let c = load ~file ~bench in
        let objective =
          match objective with
          | "gates" -> Engine.Gates
          | "paths" -> Engine.Paths
          | other -> die "unknown objective %S" other
        in
        let engine =
          match engine with
          | "exact" -> Comparison_fn.Exact
          | "sampled" -> Comparison_fn.Sampled budget
          | other -> die "unknown engine %S" other
        in
        let scheduler =
          match scheduler with
          | "flush" -> Engine.Flush
          | "graph" -> Engine.Graph
          | other -> die "unknown scheduler %S" other
        in
        let options =
          {
            Engine.default_options with
            Engine.k;
            engine;
            merge = not no_merge;
            verify_global = verify;
            use_dontcares = dontcares;
            max_units = units;
            id_cache = not no_id_cache;
            cache_dir;
            incremental =
              Option.value incremental
                ~default:Engine.default_options.Engine.incremental;
            commit_batch;
            worklist = not no_worklist;
            scheduler;
            domains;
          }
        in
        let stats = Engine.optimize objective options c in
        Format.fprintf ppf "%a@." Engine.pp_stats stats;
        print_stats ppf c;
        save ppf output c)
  in
  let objective =
    Arg.(
      value & opt string "gates"
      & info [ "objective" ] ~docv:"OBJ"
          ~doc:"$(b,gates) for Procedure 2, $(b,paths) for Procedure 3.")
  in
  let k = Arg.(value & opt int 6 & info [ "k" ] ~doc:"Subcircuit input limit K.") in
  let engine =
    Arg.(
      value & opt string "exact"
      & info [ "engine" ] ~doc:"Identification engine: $(b,exact) or $(b,sampled).")
  in
  let budget =
    Arg.(value & opt int 200 & info [ "budget" ] ~doc:"Permutation budget for --engine sampled.")
  in
  let no_merge = Arg.(value & flag & info [ "no-merge" ] ~doc:"Disable chain-gate merging.") in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Random-pattern equivalence check after each pass.")
  in
  let dontcares =
    Arg.(
      value & flag
      & info [ "dontcares" ]
          ~doc:"Exploit controllability don't-cares (paper Sec. 6, issue 1).")
  in
  let units =
    Arg.(
      value & opt int 1
      & info [ "units" ]
          ~doc:"Allow covers of up to this many comparison units (Sec. 6, issue 2).")
  in
  let no_id_cache =
    Arg.(
      value & flag
      & info [ "no-id-cache" ]
          ~doc:
            "Disable the run-scoped identification cache (results are \
             bit-identical either way; this is a debugging escape hatch).")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the identification cache in $(docv)/idcache.bin \
             (DESIGN.md Sec. 15): warm-start from the store if present and \
             append this run's fresh verdicts at the end. Safe to share \
             across concurrent runs; results are bit-identical cold, warm \
             or with the cache off.")
  in
  let incremental =
    Arg.(
      value
      & vflag None
          [
            ( Some true,
              info [ "incremental" ]
                ~doc:
                  "Track dirty regions across passes and re-enumerate only \
                   roots whose footprint a splice touched (the default; \
                   results are bit-identical to a full re-enumeration)." );
            ( Some false,
              info [ "no-incremental" ]
                ~doc:
                  "Re-enumerate every cut on every pass and commit each \
                   splice immediately — the full (pre-incremental) engine, \
                   kept as a debugging escape hatch." );
          ])
  in
  let commit_batch =
    Arg.(
      value
      & opt int Engine.default_options.Engine.commit_batch
      & info [ "commit-batch" ] ~docv:"N"
          ~doc:
            "Defer up to $(docv) accepted splices and land them in one \
             flush whose local verification fans out across --domains \
             (1 commits immediately; results are bit-identical either way).")
  in
  let no_worklist =
    Arg.(
      value & flag
      & info [ "no-worklist" ]
          ~doc:
            "Scan every root of the circuit each pass instead of popping \
             dirty roots from the ordered worklist (DESIGN.md Sec. 17). \
             Results are bit-identical; this is a debugging escape hatch.")
  in
  let scheduler =
    Arg.(
      value & opt string "graph"
      & info [ "scheduler" ] ~docv:"SCHED"
          ~doc:
            "Commit-queue landing discipline (DESIGN.md Sec. 17): \
             $(b,graph) lands only the splices a touched root can observe \
             and verifies independent sets concurrently; $(b,flush) lands \
             the whole queue on any touch. Results are bit-identical \
             either way.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Resynthesise with comparison units (Procedures 2 and 3 of the paper).")
    Term.(
      const run $ file_arg $ bench_arg $ objective $ k $ engine $ budget $ no_merge
      $ verify $ dontcares $ units $ no_id_cache $ cache_dir $ incremental
      $ commit_batch $ no_worklist $ scheduler $ domains_arg $ output_arg
      $ metrics_arg $ trace_arg $ trace_out_arg $ journal_arg)

(* --- check ----------------------------------------------------------------- *)

let check_cmd =
  let run file_a file_b budget domains metrics trace trace_out journal =
    let code =
      with_obs ?journal ~cmd:"check" metrics trace trace_out (fun ppf ->
          let a = load ~file:(Some file_a) ~bench:None in
          let b = load ~file:(Some file_b) ~bench:None in
          let result =
            let domains = Pool.domains_of_flag domains in
            if domains <= 1 then Cec.check_stats ~budget a b
            else
              Pool.with_pool ~domains (fun pool ->
                  Cec.check_stats ~budget ~pool a b)
          in
          match result with
          | exception Cec.Interface_mismatch msg ->
            die "%s vs %s: %s" file_a file_b msg
          | verdict, s ->
            Format.fprintf ppf
              "%s vs %s: %a (%d outputs solved, %d vars, %d clauses, %d \
               decisions, %d conflicts)@."
              file_a file_b Cec.pp_verdict verdict s.Cec.outputs_checked
              s.Cec.vars s.Cec.clauses s.Cec.decisions s.Cec.conflicts;
            (match verdict with
            | Cec.Counterexample v ->
              let ia = Circuit.inputs a in
              Array.iteri
                (fun i bit ->
                  let n =
                    match Circuit.node_name a ia.(i) with
                    | Some n -> n
                    | None -> Printf.sprintf "pi%d" i
                  in
                  Format.fprintf ppf "  %s = %d@." n (Bool.to_int bit))
                v;
              1
            | Cec.Equivalent -> 0
            | Cec.Unknown _ -> 2))
    in
    if code <> 0 then exit code
  in
  let file_a =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"A" ~doc:"First .bench netlist ($(b,-) reads standard input).")
  in
  let file_b =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"B" ~doc:"Second .bench netlist.")
  in
  let budget =
    Arg.(
      value
      & opt int Cec.default_budget
      & info [ "budget" ] ~docv:"N"
          ~doc:"SAT conflict budget per output miter; exhausted budget reports unknown.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Prove two netlists functionally equivalent with a SAT miter \
          (DESIGN.md \xc2\xa710). Inputs and outputs are matched by name when both \
          sides carry complete unique name sets, positionally otherwise. Exit \
          status: 0 equivalent, 1 counterexample (printed as an input \
          assignment), 2 budget exhausted.")
    Term.(
      const run $ file_a $ file_b $ budget $ domains_arg $ metrics_arg $ trace_arg
      $ trace_out_arg $ journal_arg)

(* --- rar ------------------------------------------------------------------ *)

let rar_cmd =
  let run file bench additions trials seed output metrics trace trace_out =
    with_obs ~cmd:"rar" metrics trace trace_out (fun ppf ->
        let c = load ~file ~bench in
        let options =
          { Rar.default_options with Rar.max_additions = additions; max_trials = trials; seed }
        in
        let stats = Rar.optimize ~options c in
        Format.fprintf ppf "%a@." Rar.pp_stats stats;
        print_stats ppf c;
        save ppf output c)
  in
  let additions = Arg.(value & opt int 40 & info [ "additions" ] ~doc:"Accepted-addition budget.") in
  let trials = Arg.(value & opt int 400 & info [ "trials" ] ~doc:"Proof attempts per round.") in
  Cmd.v
    (Cmd.info "rar" ~doc:"Redundancy-addition-and-removal baseline (RAMBO_C stand-in).")
    Term.(
      const run $ file_arg $ bench_arg $ additions $ trials $ seed_arg $ output_arg
      $ metrics_arg $ trace_arg $ trace_out_arg)

(* --- redundancy ------------------------------------------------------------ *)

let redundancy_cmd =
  let run file bench no_sat seed output metrics trace trace_out =
    with_obs ~cmd:"redundancy" metrics trace trace_out (fun ppf ->
        let c = load ~file ~bench in
        let report = Redundancy.remove ~sat:(not no_sat) ~seed c in
        Format.fprintf ppf "%a@." Redundancy.pp_report report;
        print_stats ppf c;
        save ppf output c)
  in
  let no_sat =
    Arg.(
      value & flag
      & info [ "no-sat" ]
          ~doc:"Keep PODEM aborts undecided instead of escalating them to SAT.")
  in
  Cmd.v
    (Cmd.info "redundancy" ~doc:"Remove stuck-at redundancies (the paper's [15] step).")
    Term.(
      const run $ file_arg $ bench_arg $ no_sat $ seed_arg $ output_arg $ metrics_arg $ trace_arg $ trace_out_arg)

(* --- fsim ------------------------------------------------------------------ *)

(* Shared by fsim/atpg: summarise a SAT escalation and list every residual
   undecided fault with the conflict budget it exhausted. *)
let pp_escalation ppf c (esc : Sat_atpg.escalation) =
  Format.fprintf ppf "sat-atpg: escalated %d, tests %d, redundant %d, unknown %d@."
    esc.Sat_atpg.escalated
    (List.length esc.Sat_atpg.tests)
    (List.length esc.Sat_atpg.redundant)
    (List.length esc.Sat_atpg.unknown);
  List.iter
    (fun (f, budget) ->
      Format.fprintf ppf "  undecided %a (budget %d conflicts)@." (Fault.pp c) f
        budget)
    esc.Sat_atpg.unknown

let sat_atpg_flag =
  Arg.(
    value & flag
    & info [ "sat-atpg" ]
        ~doc:
          "Escalate every fault PODEM aborts to the exact SAT decision \
           procedure; proved-redundant faults are excluded from the coverage \
           denominator.")

let fsim_cmd =
  let run file bench patterns domains seed sat_atpg metrics trace trace_out journal =
    with_obs ?journal ~cmd:"fsim" metrics trace trace_out (fun ppf ->
        let c = load ~file ~bench in
        let cfg = { Campaign.default with max_patterns = patterns; domains; seed } in
        if not sat_atpg then
          Format.fprintf ppf "%a@." Campaign.pp_result (Campaign.exec cfg c)
        else begin
          let r, survivors = Campaign.exec_survivors cfg c in
          Format.fprintf ppf "%a@." Campaign.pp_result r;
          let stats = Podem.generate_all c survivors in
          Format.fprintf ppf "podem on %d survivors: tested %d, untestable %d, aborted %d@."
            (List.length survivors) stats.Podem.tested stats.Podem.untestable
            stats.Podem.aborted;
          let esc = Sat_atpg.escalate c stats.Podem.aborted_faults in
          pp_escalation ppf c esc;
          let detected =
            r.Campaign.detected + stats.Podem.tested
            + List.length esc.Sat_atpg.tests
          in
          let redundant =
            stats.Podem.untestable + List.length esc.Sat_atpg.redundant
          in
          let testable = r.Campaign.total_faults - redundant in
          let coverage =
            if testable = 0 then 100.0
            else 100.0 *. float_of_int detected /. float_of_int testable
          in
          Format.fprintf ppf
            "exact coverage: %d/%d testable faults (%.2f%%), %d redundant excluded@."
            detected testable coverage redundant
        end)
  in
  let patterns =
    Arg.(value & opt int 100_000 & info [ "patterns" ] ~doc:"Random pattern budget.")
  in
  Cmd.v
    (Cmd.info "fsim" ~doc:"Random-pattern stuck-at fault simulation campaign (Table 6).")
    Term.(
      const run $ file_arg $ bench_arg $ patterns $ domains_arg $ seed_arg
      $ sat_atpg_flag $ metrics_arg $ trace_arg $ trace_out_arg $ journal_arg)

(* --- atpg ------------------------------------------------------------------ *)

let atpg_cmd =
  let run file bench limit sat_atpg metrics trace trace_out journal =
    with_obs ?journal ~cmd:"atpg" metrics trace trace_out (fun ppf ->
        let c = load ~file ~bench in
        let faults = Fault.collapsed c in
        let stats = Podem.generate_all ~backtrack_limit:limit c faults in
        Format.fprintf ppf "faults %d: tested %d, untestable %d, aborted %d@."
          (List.length faults) stats.Podem.tested stats.Podem.untestable
          stats.Podem.aborted;
        if sat_atpg && stats.Podem.aborted > 0 then
          pp_escalation ppf c (Sat_atpg.escalate c stats.Podem.aborted_faults))
  in
  let limit =
    Arg.(
      value
      & opt int Limits.default.Limits.podem_backtracks
      & info [ "backtracks" ] ~doc:"PODEM backtrack limit.")
  in
  Cmd.v (Cmd.info "atpg" ~doc:"Run PODEM on every collapsed stuck-at fault.")
    Term.(
      const run $ file_arg $ bench_arg $ limit $ sat_atpg_flag $ metrics_arg
      $ trace_arg $ trace_out_arg $ journal_arg)

(* --- pdf ------------------------------------------------------------------ *)

let pdf_cmd =
  let run file bench pairs window domains seed metrics trace trace_out =
    with_obs ~cmd:"pdf" metrics trace trace_out (fun ppf ->
        let c = load ~file ~bench in
        let r =
          Pdf_campaign.exec
            {
              Pdf_campaign.default with
              max_pairs = pairs;
              stop_window = window;
              domains;
              seed;
            }
            c
        in
        Format.fprintf ppf "%a@." Pdf_campaign.pp_result r)
  in
  let pairs = Arg.(value & opt int 200_000 & info [ "pairs" ] ~doc:"Two-pattern test budget.") in
  let window =
    Arg.(value & opt int 20_000 & info [ "window" ] ~doc:"Stop after this many ineffective pairs.")
  in
  Cmd.v
    (Cmd.info "pdf"
       ~doc:"Random-pattern robust path-delay-fault campaign (Table 7).")
    Term.(
      const run $ file_arg $ bench_arg $ pairs $ window $ domains_arg $ seed_arg
      $ metrics_arg $ trace_arg $ trace_out_arg)

(* --- map ------------------------------------------------------------------ *)

let map_cmd =
  let run file bench metrics trace trace_out =
    with_obs ~cmd:"map" metrics trace trace_out (fun ppf ->
        let c = load ~file ~bench in
        let r = Mapper.map c in
        Format.fprintf ppf "%s: literals %d, longest path %d cells, cells used %d@."
          (Circuit.name c) r.Mapper.literals r.Mapper.longest r.Mapper.cells_used)
  in
  Cmd.v (Cmd.info "map" ~doc:"Technology-map the circuit and report literals/depth (Table 4).")
    Term.(const run $ file_arg $ bench_arg $ metrics_arg $ trace_arg $ trace_out_arg)

(* --- identify --------------------------------------------------------------- *)

let identify_cmd =
  let run n minterms =
    let ms =
      String.split_on_char ',' minterms
      |> List.filter (fun s -> String.trim s <> "")
      |> List.map (fun s -> int_of_string (String.trim s))
    in
    let f = Truthtable.of_minterms n ms in
    match Comparison_fn.identify_exact f with
    | None -> print_endline "not a comparison function (nor is its complement)"
    | Some spec ->
      Format.printf "comparison function: %a@." Comparison_fn.pp_spec spec;
      let built = Comparison_unit.build ~n spec in
      print_string (Comparison_unit.describe built)
  in
  let n = Arg.(required & opt (some int) None & info [ "n" ] ~doc:"Number of variables.") in
  let minterms =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MINTERMS" ~doc:"Comma-separated ON-set minterms, e.g. 1,5,6,9,10,14.")
  in
  Cmd.v
    (Cmd.info "identify"
       ~doc:"Identify a comparison function and print its comparison unit.")
    Term.(const run $ n $ minterms)

(* --- sop ------------------------------------------------------------------- *)

let sop_cmd =
  let run n minterms output metrics trace trace_out =
    with_obs ~cmd:"sop" metrics trace trace_out (fun ppf ->
        let ms =
          String.split_on_char ',' minterms
          |> List.filter (fun s -> String.trim s <> "")
          |> List.map (fun s -> int_of_string (String.trim s))
        in
        let f = Truthtable.of_minterms n ms in
        let cover = Sop.minimise f in
        Format.fprintf ppf "%d cubes, %d literals:@." (List.length cover) (Sop.literals cover);
        List.iter (fun cube -> Format.fprintf ppf "  %a@." (Sop.pp_cube ~n) cube) cover;
        let c = Sop.to_circuit n cover in
        print_stats ppf c;
        save ppf output c)
  in
  let n = Arg.(required & opt (some int) None & info [ "n" ] ~doc:"Number of variables.") in
  let minterms =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MINTERMS" ~doc:"Comma-separated ON-set minterms.")
  in
  Cmd.v
    (Cmd.info "sop" ~doc:"Minimise to two-level form (Quine-McCluskey) and build the netlist.")
    Term.(const run $ n $ minterms $ output_arg $ metrics_arg $ trace_arg $ trace_out_arg)

(* --- pdfatpg ----------------------------------------------------------------- *)

let pdfatpg_cmd =
  let run file bench limit max_paths seed metrics trace trace_out =
    with_obs ~cmd:"pdfatpg" metrics trace trace_out (fun ppf ->
        let c = load ~file ~bench in
        let s = Pdf_atpg.classify_all ~backtrack_limit:limit ~max_paths ~seed c in
        Format.fprintf ppf "%a@." Pdf_atpg.pp_summary s)
  in
  let limit =
    Arg.(value & opt int 2000 & info [ "backtracks" ] ~doc:"Justification budget per frame.")
  in
  let max_paths =
    Arg.(value & opt int 20_000 & info [ "max-paths" ] ~doc:"Path enumeration cap.")
  in
  Cmd.v
    (Cmd.info "pdfatpg"
       ~doc:"Classify every path delay fault as robustly testable/untestable (exact ATPG).")
    Term.(const run $ file_arg $ bench_arg $ limit $ max_paths $ seed_arg $ metrics_arg $ trace_arg $ trace_out_arg)

(* --- bench-diff -------------------------------------------------------------- *)

let bench_diff_cmd =
  let run old_file new_file threshold metrics =
    let read path =
      try In_channel.with_open_bin path In_channel.input_all
      with Sys_error msg -> die "%s" msg
    in
    let metrics =
      match metrics with
      | None -> None
      | Some spec ->
        Some
          (String.split_on_char ',' spec
          |> List.map String.trim
          |> List.filter (fun s -> s <> ""))
    in
    let result =
      Bench_diff.diff ~threshold ?metrics ~old_name:old_file
        ~old_text:(read old_file) ~new_name:new_file ~new_text:(read new_file)
        ()
    in
    (match result with
    | Ok (report, _) -> print_string report
    | Error msg -> prerr_endline ("sft: bench-diff: " ^ msg));
    exit (Bench_diff.exit_code result)
  in
  let old_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"Baseline snapshot (bench harness $(b,--json) output).")
  in
  let new_file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate snapshot to compare against OLD.")
  in
  let threshold =
    Arg.(
      value & opt float 5.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:
            "Regression tolerance in percent: a metric must be worse than OLD \
             by more than PCT to count as a regression (CEC verdicts ignore \
             the threshold). Use $(b,0) for a strict gate on deterministic \
             metrics.")
  in
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"LIST"
          ~doc:
            (Printf.sprintf
               "Comma-separated metrics to compare (default: all). Known: %s."
               (String.concat ", " Bench_diff.default_metrics)))
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Diff two bench-harness $(b,--json) snapshots and flag regressions. \
          Compares circuits, wall times, speedups, coverage counters and CEC \
          verdicts on the intersection of the two files. Exit status: 0 no \
          regression, 1 regression beyond the threshold, 2 incomparable \
          (parse error, schema mismatch, or nothing aligned).")
    Term.(const run $ old_file $ new_file $ threshold $ metrics)

(* --- report ------------------------------------------------------------------ *)

let report_cmd =
  let run files diff json output =
    let load path =
      match Run_report.load path with
      | Ok r -> r
      | Error msg -> die "report: %s" msg
    in
    let emit text =
      match output with
      | Some path -> Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text)
      | None -> print_string text
    in
    match diff with
    | true -> (
      match files with
      | [ a; b ] ->
        let a = load a and b = load b in
        emit (Run_report.diff a b);
        if not (Run_report.funnel_ok a && Run_report.funnel_ok b) then exit 1
      | _ -> die "report: --diff takes exactly two journals")
    | false ->
      if files = [] then die "report: give at least one journal file";
      let runs = List.map load files in
      if json then
        emit (Obs_json.to_string (Run_report.to_json_value runs) ^ "\n")
      else
        emit (String.concat "" (List.map Run_report.render runs));
      List.iter
        (fun r ->
          if Run_report.dropped r > 0 then
            Printf.eprintf "sft: report: %s dropped %d event(s) at record time\n"
              (Run_report.path r) (Run_report.dropped r);
          if Run_report.truncated r then
            Printf.eprintf "sft: report: %s is truncated (no footer)\n"
              (Run_report.path r))
        runs;
      if not (List.for_all Run_report.funnel_ok runs) then begin
        prerr_endline "sft: report: decision-funnel invariant violated";
        exit 1
      end
  in
  let files =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"JOURNAL" ~doc:"Journal file(s) written by $(b,--journal).")
  in
  let diff =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Compare exactly two journals side by side (wall, funnel, GC, \
             per-phase wall) instead of reporting each one.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the report as a single JSON document (report_version 1) \
             with a top-level $(b,funnel_ok) conjunction for scripting.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Analyse decision journals recorded with $(b,--journal): per-phase \
          wall/GC breakdown, the decision funnel (candidates, identified, \
          verified, committed), identification-source and SAT-escalation \
          tables. Exit status: 0 ok, 1 the decision-funnel invariant \
          (committed <= verified <= identified <= candidates) is violated.")
    Term.(const run $ files $ diff $ json $ output_arg)

let () =
  let doc = "synthesis-for-testability with comparison units (Pomeranz & Reddy, DAC'95)" in
  let info = Cmd.info "sft" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        stats_cmd;
        list_cmd;
        gen_cmd;
        optimize_cmd;
        check_cmd;
        rar_cmd;
        redundancy_cmd;
        fsim_cmd;
        atpg_cmd;
        pdf_cmd;
        map_cmd;
        identify_cmd;
        sop_cmd;
        pdfatpg_cmd;
        bench_diff_cmd;
        report_cmd;
      ]
  in
  exit (Cmd.eval group)
